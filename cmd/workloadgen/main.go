// Command workloadgen generates and inspects the synthetic benchmarks:
// table sizes, query counts, sample SQL, and estimator q-error statistics.
//
// Usage:
//
//	workloadgen -workload job -scale 0.5 [-sql 5] [-qerr]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/foss-db/foss/internal/engine/exec"
	"github.com/foss-db/foss/internal/optimizer"
	"github.com/foss-db/foss/internal/workload"
)

func main() {
	var (
		wl    = flag.String("workload", "job", "workload: job | tpcds | stack")
		scale = flag.Float64("scale", 0.5, "data scale factor")
		seed  = flag.Int64("seed", 1, "random seed")
		nSQL  = flag.Int("sql", 3, "number of sample queries to print as SQL")
		qerr  = flag.Bool("qerr", false, "measure estimator q-error over the workload")
	)
	flag.Parse()

	w, err := workload.Load(*wl, workload.Options{Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("workload %s (seed=%d scale=%.2f)\n", w.Name, *seed, *scale)
	fmt.Printf("  %d tables, %d rows total, %d train / %d test queries, max %d tables/query\n",
		len(w.DB.Tables), w.DB.TotalRows(), len(w.Train), len(w.Test), w.MaxTables)

	names := append([]string(nil), w.DB.Schema.Order...)
	sort.Slice(names, func(i, j int) bool {
		return w.DB.Table(names[i]).NumRows() > w.DB.Table(names[j]).NumRows()
	})
	fmt.Println("  tables by size:")
	for _, n := range names {
		fmt.Printf("    %-24s %8d rows\n", n, w.DB.Table(n).NumRows())
	}
	for i := 0; i < *nSQL && i < len(w.Train); i++ {
		fmt.Printf("  sample %s: %s\n", w.Train[i].ID, w.Train[i].SQL())
	}

	if *qerr {
		opt := optimizer.New(w.DB, w.Stats)
		ex := exec.New(w.DB)
		var qes []float64
		for _, q := range w.All() {
			cp, err := opt.Plan(q)
			if err != nil {
				continue
			}
			res := ex.Execute(cp, 0)
			est, truth := cp.Root.EstRows, float64(res.OutRows)
			if est < 1 {
				est = 1
			}
			if truth < 1 {
				truth = 1
			}
			qe := est / truth
			if qe < 1 {
				qe = 1 / qe
			}
			qes = append(qes, qe)
		}
		sort.Float64s(qes)
		pct := func(p float64) float64 { return qes[int(p*float64(len(qes)-1))] }
		fmt.Printf("  final-cardinality q-error: median=%.1f p90=%.1f max=%.1f\n",
			pct(0.5), pct(0.9), qes[len(qes)-1])
	}
}
