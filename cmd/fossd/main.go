// Command fossd trains FOSS on one workload and evaluates it against the
// expert optimizer on the train/test splits. Training fans episode
// collection out over -workers goroutines; evaluation serves queries
// concurrently through the runtime's cached optimize path. With -online it
// then runs the online doctor loop over a drifting query stream: feedback
// ingestion, drift-aware background retraining, and zero-downtime model
// hot-swap, reported against a frozen copy of the offline model.
//
// Usage:
//
//	fossd -workload job -scale 0.5 -iters 6 -sim 120 -real 30 -validate 30 -workers 4
//	fossd -workload job -scale 0.5 -iters 4 -online -drift selectivity -sync-retrain
//	fossd -workload job -backend gaussim -iters 4
//	fossd -workload job -iters 4 -serve-http :8475
//	fossd -workload job -iters 4 -serve-http :8475 -state-dir ./state
//	fossd -iters 4 -serve-http :8475 -state-dir ./state \
//	      -tenants acme,globex -tenant-spec 'globex=backend:gaussim'
//
// With -serve-http the trained doctor stays up as a JSON HTTP service
// (POST /v1/optimize, POST /v1/feedback, GET /v1/stats, POST /v1/checkpoint,
// POST /v1/catalog for live DDL) until interrupted.
//
// With -state-dir the doctor is durable: trained weights checkpoint to disk
// (atomically, on every hot-swap and every -checkpoint-every records),
// executed-plan feedback journals to a WAL before ingestion, and a restart
// with the same -state-dir warm-starts — model, execution buffer, and epoch
// recover from disk, the WAL tail replays, and serving resumes bit-identical
// to the pre-crash replica with no retraining.
//
// With -tenants / -tenant-spec fossd serves a sharded multi-tenant fleet:
// one full doctor per tenant (own backend, workload, plan cache, and
// <state-dir>/<tenant>/ durability) behind /v1/t/{tenant}/... endpoints,
// sharing one bounded worker pool. SIGTERM drains the fleet losslessly —
// in-flight requests finish, retrains drain (or are canceled past
// -drain-timeout), a final checkpoint lands per tenant — so the next boot
// warm-starts every tenant bit-identically.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	goruntime "runtime"
	"time"

	"github.com/foss-db/foss/internal/backend"
	"github.com/foss-db/foss/internal/core"
	"github.com/foss-db/foss/internal/learner"
	"github.com/foss-db/foss/internal/metrics"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/runtime"
	"github.com/foss-db/foss/internal/shard"
	"github.com/foss-db/foss/internal/store"
	"github.com/foss-db/foss/internal/workload"
)

func defaultWorkers() int {
	n := goruntime.NumCPU()
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

func main() {
	var (
		wl          = flag.String("workload", "job", "workload: job | tpcds | stack")
		scale       = flag.Float64("scale", 0.5, "data scale factor")
		seed        = flag.Int64("seed", 1, "random seed")
		iters       = flag.Int("iters", 6, "training iterations")
		simEp       = flag.Int("sim", 120, "simulated episodes per iteration")
		realEp      = flag.Int("real", 30, "real episodes per iteration")
		validate    = flag.Int("validate", 30, "promising plans validated per iteration")
		agents      = flag.Int("agents", 1, "number of agents")
		maxSteps    = flag.Int("maxsteps", 3, "episode length")
		verbose     = flag.Bool("v", false, "per-query output")
		diag        = flag.Bool("diag", false, "print candidate sequences with true latencies")
		rollouts    = flag.Int("rollouts", 4, "inference rollouts per agent")
		workers     = flag.Int("workers", 1, "training episode fan-out; 1 (default) is the sequential reproducible baseline — trained models depend on this value, so raise it only when wall-clock matters more than cross-machine comparability")
		evalWorkers = flag.Int("eval-workers", defaultWorkers(), "evaluation request fan-out (plan choices are per-query deterministic, so this never changes results)")
		cacheSize   = flag.Int("cache", 256, "plan cache capacity in entries (0 disables)")
		backendName = flag.String("backend", "selinger", "optimizer backend: selinger | gaussim")
		serveHTTP   = flag.String("serve-http", "", "after training, serve the doctor as a JSON HTTP service on this address (e.g. :8475)")
		stateDir    = flag.String("state-dir", "", "durable state directory (checkpoints + feedback WAL); with -serve-http, a directory holding a checkpoint warm-starts the doctor from disk, skipping training; with -tenants, each tenant gets <state-dir>/<tenant>/")
		ckEvery     = flag.Int("checkpoint-every", 64, "recorded executions between periodic checkpoints when -state-dir is set (0 = only on hot-swaps and POST /v1/checkpoint)")

		tenants      = flag.String("tenants", "", "comma-separated tenant names: serve a sharded multi-tenant fleet (requires -serve-http); each tenant gets a full doctor over the default workload/backend/scale with a name-derived seed")
		tenantSpec   = flag.String("tenant-spec", "", "heterogeneous tenants: 'name=key:val,...;name2=...' with keys workload|backend|scale|seed|leader (merges with -tenants)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "shutdown budget: in-flight retrains past it are canceled (final checkpoints are still taken)")

		role            = flag.String("role", "leader", "replica role for -tenants mode: leader trains/journals/checkpoints; follower boots from the leader's newest checkpoint, serves read-only, and hot-swaps each published generation (needs -leader-addr or a shared -state-dir)")
		leaderAddr      = flag.String("leader-addr", "", "leader base URL for -role follower (e.g. http://host:8475); checkpoints replicate over /v1/t/{tenant}/repl/* and /v1/feedback forwards to the leader")
		replInterval    = flag.Duration("repl-interval", 500*time.Millisecond, "follower manifest poll cadence — the replication-lag SLO")
		replBootTimeout = flag.Duration("repl-boot-timeout", 2*time.Minute, "how long a follower boot waits for the leader's first checkpoint")

		gateMode     = flag.Bool("gate", false, "run as a fleet gate instead of a doctor: consistent-hash tenant routing over -gate-members, proxying /v1/t/{tenant}/* (uses -serve-http as the listen address)")
		gateMembers  = flag.String("gate-members", "", "comma-separated fleet member addresses for -gate (host:port or http://host:port)")
		gateFailover = flag.Bool("gate-failover", false, "retry the next member in a tenant's preference list when the owner is unreachable (transport errors only)")
		gateVNodes   = flag.Int("gate-vnodes", 0, "virtual nodes per member on the gate's hash ring (0 = default)")

		online       = flag.Bool("online", false, "after training, run the online doctor loop over a drift scenario (feedback ingestion, drift-aware background retraining, zero-downtime hot-swap)")
		drift        = flag.String("drift", "selectivity", "drift scenario for -online: template-mix | selectivity | novel-template | schema-evolution (applies a live DDL batch at the shift)")
		driftSeed    = flag.Int64("drift-seed", 7, "drift scenario seed")
		preLen       = flag.Int("pre", 40, "queries served before the distribution shift")
		postLen      = flag.Int("post", 80, "queries served after the distribution shift")
		window       = flag.Int("window", 16, "drift detector rolling window (records)")
		threshold    = flag.Float64("threshold", 1.1, "mean regression-vs-expert ratio that signals drift")
		noveltyFrac  = flag.Float64("novelty", 0.5, "novel-fingerprint window fraction that signals drift (0 disables)")
		retrainIters = flag.Int("retrain-iters", 2, "learner iterations per background retrain")
		syncRetrain  = flag.Bool("sync-retrain", false, "retrain synchronously inside Record (deterministic) instead of in the background")

		tierMemory = flag.Bool("tier-memory", true, "tier-0 plan memory: pin feedback-proven plans per fingerprint and serve repeats in microseconds (invalidated on hot-swap, persisted with -state-dir)")
		tierGreedy = flag.Bool("tier-greedy", false, "tier-1 greedy micro-planner: statistics-free join ordering for seen-but-unpinned fingerprints (plans may differ from the doctor's until feedback escalates them)")

		advisor    = flag.Bool("advisor", true, "async self-diagnosis advisor: watch the feedback stream off the serve path and emit structured findings (regression-vs-expert, plan-memory thrash, cooldown-blocked drift, schema churn) on GET /v1/advisor")
		advisorWin = flag.Int("advisor-window", 64, "advisor regression window (records); a regression finding needs a full window")
	)
	flag.Parse()

	// Gate mode: no doctor at all — just the consistent-hash front end.
	if *gateMode {
		if *serveHTTP == "" || *gateMembers == "" {
			fmt.Fprintln(os.Stderr, "-gate requires -serve-http (listen address) and -gate-members")
			os.Exit(1)
		}
		if err := runGate(*serveHTTP, *gateMembers, *gateFailover, *gateVNodes); err != nil {
			fmt.Fprintln(os.Stderr, "gate:", err)
			os.Exit(1)
		}
		return
	}

	// Sharded multi-tenant mode: the fleet path owns workload loading,
	// training/warm-start, serving, and the drain lifecycle per tenant.
	if *tenants != "" || *tenantSpec != "" {
		if *serveHTTP == "" {
			fmt.Fprintln(os.Stderr, "-tenants/-tenant-spec require -serve-http")
			os.Exit(1)
		}
		specs, err := parseTenantSpecs(*tenants, *tenantSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tenants:", err)
			os.Exit(1)
		}
		cfg := core.DefaultConfig()
		cfg.Seed = *seed
		cfg.MaxSteps = *maxSteps
		cfg.Agents = *agents
		cfg.Workers = *workers
		cfg.PlanCache = *cacheSize
		cfg.Learner.Iterations = *iters
		cfg.Learner.RealPerIter = *realEp
		cfg.Learner.SimPerIter = *simEp
		cfg.Learner.ValidatePerIter = *validate
		cfg.Learner.InferenceRollouts = *rollouts
		o := onlineOpts{
			window: *window, threshold: *threshold, noveltyFrac: *noveltyFrac,
			retrainIters: *retrainIters, sync: *syncRetrain, ckEvery: *ckEvery,
			tierMemory: *tierMemory, tierGreedy: *tierGreedy,
			advisor: *advisor, advisorWin: *advisorWin,
		}
		err = runSharded(context.Background(), shard.Config{
			System:           cfg,
			Loop:             o.loopConfig(),
			Defaults:         shard.TenantSpec{Workload: *wl, Backend: *backendName, Scale: *scale, Seed: *seed},
			StateDir:         *stateDir,
			Workers:          *workers,
			CheckpointOnBoot: *stateDir != "" && *role != "follower",
			Role:             *role,
			LeaderAddr:       *leaderAddr,
			ReplInterval:     *replInterval,
			ReplBootTimeout:  *replBootTimeout,
		}, specs, *serveHTTP, *drainTimeout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleet:", err)
			os.Exit(1)
		}
		return
	}

	if *role == "follower" {
		fmt.Fprintln(os.Stderr, "-role follower requires fleet mode (-tenants / -tenant-spec)")
		os.Exit(1)
	}

	start := time.Now()
	w, err := workload.Load(*wl, workload.Options{Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "load:", err)
		os.Exit(1)
	}
	fmt.Printf("workload %s: %d tables, %d rows, %d train / %d test queries\n",
		w.Name, len(w.DB.Tables), w.DB.TotalRows(), len(w.Train), len(w.Test))

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.MaxSteps = *maxSteps
	cfg.Agents = *agents
	cfg.Workers = *workers
	cfg.PlanCache = *cacheSize
	cfg.Learner.Iterations = *iters
	cfg.Learner.RealPerIter = *realEp
	cfg.Learner.SimPerIter = *simEp
	cfg.Learner.ValidatePerIter = *validate
	cfg.Learner.InferenceRollouts = *rollouts
	be, err := backend.New(*backendName, w.DB, w.Stats)
	if err != nil {
		fmt.Fprintln(os.Stderr, "backend:", err)
		os.Exit(1)
	}
	sys, err := core.New(w, cfg, core.WithBackend(be))
	if err != nil {
		fmt.Fprintln(os.Stderr, "new:", err)
		os.Exit(1)
	}
	fmt.Printf("runtime: backend=%s workers=%d eval-workers=%d cache=%d\n", be.Name(), *workers, *evalWorkers, *cacheSize)

	var st *store.Store
	if *stateDir != "" {
		st, err = store.Open(*stateDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "state-dir:", err)
			os.Exit(1)
		}
		defer st.Close()
	}
	// Warm restart: a state directory holding a checkpoint means the trained
	// doctor already exists on disk — recover it and serve instead of
	// retraining from scratch. The -online drift demo always trains (it
	// narrates adaptation from a known starting point).
	warm := false
	if st != nil && *serveHTTP != "" && !*online {
		if m, ok := st.Latest(); ok {
			warm = true
			fmt.Printf("warm restart: found checkpoint %s (epoch %d, backend %s) in %s — skipping training\n",
				m.Checkpoint, m.Epoch, m.Backend, *stateDir)
		}
	}

	ctx := context.Background()
	if !warm {
		err = sys.TrainContext(ctx, func(st learner.IterStats) {
			fmt.Printf("iter %d: buffer=%d aamLoss=%.3f aamAcc=%.2f ppoKL=%.4f validated=%d elapsed=%s\n",
				st.Iter, st.BufferSize, st.AAMLoss, st.AAMAccuracy, st.PPO.ApproxKL, st.Validated,
				time.Since(start).Truncate(time.Second))
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "train:", err)
			os.Exit(1)
		}
	}

	// Evaluation serves queries concurrently through the runtime: requests
	// fan out over the pool, results land in per-query slots so output and
	// aggregate metrics stay deterministic.
	pool := runtime.NewPool(*evalWorkers)
	eval := func(name string, qs []*query.Query) {
		type row struct {
			foss, pg metrics.QueryResult
			ok       bool
		}
		rows := make([]row, len(qs))
		pool.Run(len(qs), func(_, i int) {
			q := qs[i]
			fcp, _, ot, err := sys.OptimizeCachedContext(ctx, q)
			if err != nil {
				fmt.Fprintf(os.Stderr, "optimize %s: %v\n", q.ID, err)
				return
			}
			ecp, eot, err := sys.ExpertPlan(q)
			if err != nil {
				return
			}
			fl, el := sys.Execute(fcp), sys.Execute(ecp)
			rows[i] = row{
				foss: metrics.QueryResult{QueryID: q.ID, LatencyMs: fl, OptTimeMs: ot.Seconds() * 1000},
				pg:   metrics.QueryResult{QueryID: q.ID, LatencyMs: el, OptTimeMs: eot.Seconds() * 1000},
				ok:   true,
			}
		})
		var fossRes, pgRes []metrics.QueryResult
		wins, losses, changed := 0, 0, 0
		for i, r := range rows {
			if !r.ok {
				continue
			}
			fossRes = append(fossRes, r.foss)
			pgRes = append(pgRes, r.pg)
			fl, el := r.foss.LatencyMs, r.pg.LatencyMs
			if fl < el*0.99 {
				wins++
			} else if fl > el*1.01 {
				losses++
			}
			if fl != el {
				changed++
			}
			if *verbose {
				fmt.Printf("  %-10s expert=%9.3fms foss=%9.3fms speedup=%5.2fx\n", qs[i].ID, el, fl, el/fl)
			}
		}
		fmt.Printf("%s: WRL=%.3f GMRL=%.3f wins=%d losses=%d changed=%d/%d\n",
			name, metrics.WRL(fossRes, pgRes), metrics.GMRL(fossRes, pgRes), wins, losses, changed, len(qs))
	}
	if !warm {
		eval("train", w.Train)
		eval("test ", w.Test)
		printCacheStats(sys)
	}
	if *diag && !warm {
		fmt.Println("--- test candidate diagnosis ---")
		diagnose(sys, w.Test)
	}

	if *online {
		fmt.Println("--- online doctor loop ---")
		frozen := buildFrozen(sys)
		err := runOnline(ctx, sys, frozen, w, onlineOpts{
			kind:         *drift,
			driftSeed:    *driftSeed,
			pre:          *preLen,
			post:         *postLen,
			window:       *window,
			threshold:    *threshold,
			noveltyFrac:  *noveltyFrac,
			retrainIters: *retrainIters,
			sync:         *syncRetrain,
			st:           st,
			ckEvery:      *ckEvery,
			tierMemory:   *tierMemory,
			tierGreedy:   *tierGreedy,
			advisor:      *advisor,
			advisorWin:   *advisorWin,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "online:", err)
			os.Exit(1)
		}
	}
	if *serveHTTP != "" {
		if err := runHTTP(sys, w, *serveHTTP, onlineOpts{
			window:       *window,
			threshold:    *threshold,
			noveltyFrac:  *noveltyFrac,
			retrainIters: *retrainIters,
			sync:         *syncRetrain,
			st:           st,
			ckEvery:      *ckEvery,
			drain:        *drainTimeout,
			tierMemory:   *tierMemory,
			tierGreedy:   *tierGreedy,
			advisor:      *advisor,
			advisorWin:   *advisorWin,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "serve-http:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("training time: %s\n", sys.TrainingTime().Truncate(time.Millisecond))
}
