// Command fossd trains FOSS on one workload and evaluates it against the
// expert optimizer on the train/test splits. Training fans episode
// collection out over -workers goroutines; evaluation serves queries
// concurrently through the runtime's cached optimize path.
//
// Usage:
//
//	fossd -workload job -scale 0.5 -iters 6 -sim 120 -real 30 -validate 30 -workers 4
package main

import (
	"flag"
	"fmt"
	"os"
	goruntime "runtime"
	"time"

	"github.com/foss-db/foss/internal/core"
	"github.com/foss-db/foss/internal/learner"
	"github.com/foss-db/foss/internal/metrics"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/runtime"
	"github.com/foss-db/foss/internal/workload"
)

func defaultWorkers() int {
	n := goruntime.NumCPU()
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

func main() {
	var (
		wl          = flag.String("workload", "job", "workload: job | tpcds | stack")
		scale       = flag.Float64("scale", 0.5, "data scale factor")
		seed        = flag.Int64("seed", 1, "random seed")
		iters       = flag.Int("iters", 6, "training iterations")
		simEp       = flag.Int("sim", 120, "simulated episodes per iteration")
		realEp      = flag.Int("real", 30, "real episodes per iteration")
		validate    = flag.Int("validate", 30, "promising plans validated per iteration")
		agents      = flag.Int("agents", 1, "number of agents")
		maxSteps    = flag.Int("maxsteps", 3, "episode length")
		verbose     = flag.Bool("v", false, "per-query output")
		diag        = flag.Bool("diag", false, "print candidate sequences with true latencies")
		rollouts    = flag.Int("rollouts", 4, "inference rollouts per agent")
		workers     = flag.Int("workers", 1, "training episode fan-out; 1 (default) is the sequential reproducible baseline — trained models depend on this value, so raise it only when wall-clock matters more than cross-machine comparability")
		evalWorkers = flag.Int("eval-workers", defaultWorkers(), "evaluation request fan-out (plan choices are per-query deterministic, so this never changes results)")
		cacheSize   = flag.Int("cache", 256, "plan cache capacity in entries (0 disables)")
	)
	flag.Parse()

	start := time.Now()
	w, err := workload.Load(*wl, workload.Options{Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "load:", err)
		os.Exit(1)
	}
	fmt.Printf("workload %s: %d tables, %d rows, %d train / %d test queries\n",
		w.Name, len(w.DB.Tables), w.DB.TotalRows(), len(w.Train), len(w.Test))

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.MaxSteps = *maxSteps
	cfg.Agents = *agents
	cfg.Workers = *workers
	cfg.PlanCache = *cacheSize
	cfg.Learner.Iterations = *iters
	cfg.Learner.RealPerIter = *realEp
	cfg.Learner.SimPerIter = *simEp
	cfg.Learner.ValidatePerIter = *validate
	cfg.Learner.InferenceRollouts = *rollouts
	sys, err := core.New(w, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "new:", err)
		os.Exit(1)
	}
	fmt.Printf("runtime: workers=%d eval-workers=%d cache=%d\n", *workers, *evalWorkers, *cacheSize)

	err = sys.Train(func(st learner.IterStats) {
		fmt.Printf("iter %d: buffer=%d aamLoss=%.3f aamAcc=%.2f ppoKL=%.4f validated=%d elapsed=%s\n",
			st.Iter, st.BufferSize, st.AAMLoss, st.AAMAccuracy, st.PPO.ApproxKL, st.Validated,
			time.Since(start).Truncate(time.Second))
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}

	// Evaluation serves queries concurrently through the runtime: requests
	// fan out over the pool, results land in per-query slots so output and
	// aggregate metrics stay deterministic.
	pool := runtime.NewPool(*evalWorkers)
	eval := func(name string, qs []*query.Query) {
		type row struct {
			foss, pg metrics.QueryResult
			ok       bool
		}
		rows := make([]row, len(qs))
		pool.Run(len(qs), func(_, i int) {
			q := qs[i]
			fcp, _, ot, err := sys.OptimizeCached(q)
			if err != nil {
				fmt.Fprintf(os.Stderr, "optimize %s: %v\n", q.ID, err)
				return
			}
			ecp, eot, err := sys.ExpertPlan(q)
			if err != nil {
				return
			}
			fl, el := sys.Execute(fcp), sys.Execute(ecp)
			rows[i] = row{
				foss: metrics.QueryResult{QueryID: q.ID, LatencyMs: fl, OptTimeMs: ot.Seconds() * 1000},
				pg:   metrics.QueryResult{QueryID: q.ID, LatencyMs: el, OptTimeMs: eot.Seconds() * 1000},
				ok:   true,
			}
		})
		var fossRes, pgRes []metrics.QueryResult
		wins, losses, changed := 0, 0, 0
		for i, r := range rows {
			if !r.ok {
				continue
			}
			fossRes = append(fossRes, r.foss)
			pgRes = append(pgRes, r.pg)
			fl, el := r.foss.LatencyMs, r.pg.LatencyMs
			if fl < el*0.99 {
				wins++
			} else if fl > el*1.01 {
				losses++
			}
			if fl != el {
				changed++
			}
			if *verbose {
				fmt.Printf("  %-10s expert=%9.3fms foss=%9.3fms speedup=%5.2fx\n", qs[i].ID, el, fl, el/fl)
			}
		}
		fmt.Printf("%s: WRL=%.3f GMRL=%.3f wins=%d losses=%d changed=%d/%d\n",
			name, metrics.WRL(fossRes, pgRes), metrics.GMRL(fossRes, pgRes), wins, losses, changed, len(qs))
	}
	eval("train", w.Train)
	eval("test ", w.Test)
	printCacheStats(sys)
	if *diag {
		fmt.Println("--- test candidate diagnosis ---")
		diagnose(sys, w.Test)
	}
	fmt.Printf("training time: %s\n", sys.TrainingTime().Truncate(time.Millisecond))
}
