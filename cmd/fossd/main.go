// Command fossd trains FOSS on one workload and evaluates it against the
// expert optimizer on the train/test splits.
//
// Usage:
//
//	fossd -workload job -scale 0.5 -iters 6 -sim 120 -real 30 -validate 30
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/foss-db/foss/internal/core"
	"github.com/foss-db/foss/internal/learner"
	"github.com/foss-db/foss/internal/metrics"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "job", "workload: job | tpcds | stack")
		scale    = flag.Float64("scale", 0.5, "data scale factor")
		seed     = flag.Int64("seed", 1, "random seed")
		iters    = flag.Int("iters", 6, "training iterations")
		simEp    = flag.Int("sim", 120, "simulated episodes per iteration")
		realEp   = flag.Int("real", 30, "real episodes per iteration")
		validate = flag.Int("validate", 30, "promising plans validated per iteration")
		agents   = flag.Int("agents", 1, "number of agents")
		maxSteps = flag.Int("maxsteps", 3, "episode length")
		verbose  = flag.Bool("v", false, "per-query output")
		diag     = flag.Bool("diag", false, "print candidate sequences with true latencies")
		rollouts = flag.Int("rollouts", 4, "inference rollouts per agent")
	)
	flag.Parse()

	start := time.Now()
	w, err := workload.Load(*wl, workload.Options{Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "load:", err)
		os.Exit(1)
	}
	fmt.Printf("workload %s: %d tables, %d rows, %d train / %d test queries\n",
		w.Name, len(w.DB.Tables), w.DB.TotalRows(), len(w.Train), len(w.Test))

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.MaxSteps = *maxSteps
	cfg.Agents = *agents
	cfg.Learner.Iterations = *iters
	cfg.Learner.RealPerIter = *realEp
	cfg.Learner.SimPerIter = *simEp
	cfg.Learner.ValidatePerIter = *validate
	cfg.Learner.InferenceRollouts = *rollouts
	sys, err := core.New(w, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "new:", err)
		os.Exit(1)
	}

	err = sys.Train(func(st learner.IterStats) {
		fmt.Printf("iter %d: buffer=%d aamLoss=%.3f aamAcc=%.2f ppoKL=%.4f validated=%d elapsed=%s\n",
			st.Iter, st.BufferSize, st.AAMLoss, st.AAMAccuracy, st.PPO.ApproxKL, st.Validated,
			time.Since(start).Truncate(time.Second))
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}

	eval := func(name string, qs []*query.Query) {
		var fossRes, pgRes []metrics.QueryResult
		wins, losses, changed := 0, 0, 0
		for _, q := range qs {
			fcp, ot, err := sys.Optimize(q)
			if err != nil {
				fmt.Fprintf(os.Stderr, "optimize %s: %v\n", q.ID, err)
				continue
			}
			ecp, eot, err := sys.ExpertPlan(q)
			if err != nil {
				continue
			}
			fl, el := sys.Execute(fcp), sys.Execute(ecp)
			fossRes = append(fossRes, metrics.QueryResult{QueryID: q.ID, LatencyMs: fl, OptTimeMs: ot.Seconds() * 1000})
			pgRes = append(pgRes, metrics.QueryResult{QueryID: q.ID, LatencyMs: el, OptTimeMs: eot.Seconds() * 1000})
			if fl < el*0.99 {
				wins++
			} else if fl > el*1.01 {
				losses++
			}
			if fl != el {
				changed++
			}
			if *verbose {
				fmt.Printf("  %-10s expert=%9.3fms foss=%9.3fms speedup=%5.2fx\n", q.ID, el, fl, el/fl)
			}
		}
		fmt.Printf("%s: WRL=%.3f GMRL=%.3f wins=%d losses=%d changed=%d/%d\n",
			name, metrics.WRL(fossRes, pgRes), metrics.GMRL(fossRes, pgRes), wins, losses, changed, len(qs))
	}
	eval("train", w.Train)
	eval("test ", w.Test)
	if *diag {
		fmt.Println("--- test candidate diagnosis ---")
		diagnose(sys, w.Test)
	}
	fmt.Printf("training time: %s\n", sys.TrainingTime().Truncate(time.Millisecond))
}
