package main

// The -tenants / -tenant-spec mode: boot a sharded, multi-tenant doctor
// fleet behind one HTTP listener. Every tenant gets a full doctor — its own
// backend, workload, plan cache, serve-id ring, and <state-dir>/<tenant>/
// durable state — while all tenants share one bounded worker pool. SIGTERM
// drains the whole fleet losslessly: HTTP stops taking requests, in-flight
// handlers finish, every shard awaits (or past -drain-timeout, cancels) its
// background retrain and takes a final checkpoint, and only then does the
// process exit — so the next boot warm-starts every tenant bit-identically.
//
//	fossd -serve-http :8475 -tenants acme,globex -state-dir ./state
//	fossd -serve-http :8475 -tenant-spec 'acme=backend:gaussim,scale:0.35;globex=backend:selinger'

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/foss-db/foss/internal/service"
	"github.com/foss-db/foss/internal/shard"
)

// parseTenantSpecs merges -tenants (bare names) and -tenant-spec
// (name=key:val,... entries separated by ';') into one ordered spec list.
// A name appearing in both collapses to the detailed spec.
func parseTenantSpecs(tenants, tenantSpec string) ([]shard.TenantSpec, error) {
	specs := map[string]shard.TenantSpec{}
	var order []string
	add := func(s shard.TenantSpec) {
		if _, seen := specs[s.Name]; !seen {
			order = append(order, s.Name)
		}
		specs[s.Name] = s
	}
	for _, name := range strings.Split(tenants, ",") {
		if name = strings.TrimSpace(name); name != "" {
			add(shard.TenantSpec{Name: name})
		}
	}
	for _, entry := range strings.Split(tenantSpec, ";") {
		if entry = strings.TrimSpace(entry); entry == "" {
			continue
		}
		name, kvs, _ := strings.Cut(entry, "=")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("tenant-spec entry %q has no tenant name", entry)
		}
		s := shard.TenantSpec{Name: name}
		if kvs != "" {
			for _, kv := range strings.Split(kvs, ",") {
				k, v, ok := strings.Cut(strings.TrimSpace(kv), ":")
				if !ok {
					return nil, fmt.Errorf("tenant-spec %q: want key:val, got %q", name, kv)
				}
				var err error
				switch k {
				case "workload":
					s.Workload = v
				case "backend":
					s.Backend = v
				case "scale":
					s.Scale, err = strconv.ParseFloat(v, 64)
				case "seed":
					s.Seed, err = strconv.ParseInt(v, 10, 64)
				case "leader":
					// Cut split at the first colon only, so URL values
					// ("leader:http://h:8475") keep their own colons intact.
					s.Leader = v
				default:
					return nil, fmt.Errorf("tenant-spec %q: unknown key %q (want workload|backend|scale|seed|leader)", name, k)
				}
				if err != nil {
					return nil, fmt.Errorf("tenant-spec %q: bad %s %q: %v", name, k, v, err)
				}
			}
		}
		add(s)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("no tenants named (use -tenants a,b or -tenant-spec)")
	}
	out := make([]shard.TenantSpec, 0, len(order))
	for _, name := range order {
		out = append(out, specs[name])
	}
	return out, nil
}

// runSharded boots the fleet and serves the multi-tenant wire surface until
// SIGINT/SIGTERM, then drains it.
func runSharded(ctx context.Context, cfg shard.Config, specs []shard.TenantSpec, addr string, drain time.Duration) error {
	cfg.OnEvent = func(tenant, event string) {
		fmt.Printf("tenant %s: %s\n", tenant, event)
	}
	start := time.Now()
	router, err := shard.NewRouter(ctx, cfg, specs)
	if err != nil {
		return err
	}
	fmt.Printf("fleet up: %d tenant(s) %v in %s (shared pool: %d workers)\n",
		len(router.Names()), router.Names(), time.Since(start).Truncate(time.Millisecond), router.Pool().Workers())

	srv := &http.Server{Addr: addr, Handler: service.NewMultiHTTPServer(router)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\ndraining fleet...")
		// Order matters for losslessness: stop the listener and wait for
		// in-flight handlers first (their Serve/Record calls complete
		// normally), then drain the shards (final checkpoint per tenant),
		// then let the store locks go with the router.
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "http shutdown:", err)
		}
		if err := router.Close(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "drain:", err)
		}
	}()

	fmt.Printf("serving multi-tenant HTTP on %s\n", addr)
	fmt.Println("  POST /v1/t/{tenant}/optimize    {\"query_id\": ...} | inline specs; \"execute\": true for a full turn")
	fmt.Println("  POST /v1/t/{tenant}/feedback    {\"serve_id\": ..., \"latency_ms\": ...}")
	fmt.Println("  GET  /v1/t/{tenant}/stats       POST /v1/t/{tenant}/checkpoint")
	fmt.Println("  GET  /v1/t/{tenant}/explain/{serve_id}   GET /v1/t/{tenant}/advisor")
	fmt.Println("  GET  /v1/t/{tenant}/metrics     GET /metrics (aggregate, tenant-labeled)")
	fmt.Println("  GET  /v1/stats (aggregate)      GET|POST /v1/tenants")
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-done
	fmt.Println("fleet drained cleanly")
	return nil
}
