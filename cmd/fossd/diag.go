package main

import (
	"fmt"

	"github.com/foss-db/foss/internal/core"
	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
)

// printCacheStats surfaces the runtime plan-cache counters after an
// evaluation pass.
func printCacheStats(sys *core.System) {
	st := sys.RT.CacheStats()
	fmt.Printf("plan cache: hits=%d misses=%d evictions=%d hitRate=%.1f%% size=%d/%d\n",
		st.Hits, st.Misses, st.Evictions, 100*st.HitRate(), st.Size, st.Capacity)
}

// diagnose prints, for each query, the greedy candidate sequence with true
// latencies and what the AAM selector chose (enabled with -diag).
func diagnose(sys *core.System, qs []*query.Query) {
	for _, q := range qs {
		pl := sys.Planners[0]
		simEnv := &planner.SimEnv{Model: sys.AAM, MaxSteps: pl.Cfg.MaxSteps}
		orig, err := pl.OriginalEval(q)
		if err != nil {
			fmt.Println(q.ID, "err:", err)
			continue
		}
		ep, err := pl.RunEpisodeFrom(q, orig, simEnv, nil, false)
		if err != nil {
			fmt.Println(q.ID, "err:", err)
			continue
		}
		chosen := planner.SelectBest(sys.AAM, ep.Candidates, pl.Cfg.MaxSteps)
		fmt.Printf("%-8s cands=%d |", q.ID, len(ep.Candidates))
		for _, c := range ep.Candidates {
			lat := sys.Execute(c.CP)
			mark := " "
			if c == chosen {
				mark = "*"
			}
			fmt.Printf(" s%d%s=%.0fms", c.Step, mark, lat)
		}
		fmt.Println()
	}
}
