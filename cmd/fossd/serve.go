package main

// The -serve-http mode: keep the trained doctor up as a JSON HTTP service so
// the online loop can take traffic from outside the process.
//
//	curl -s localhost:8475/v1/optimize -d '{"query_id": "1_1", "execute": true}'
//	curl -s localhost:8475/v1/feedback -d '{"serve_id": "s1", "latency_ms": 42.5}'
//	curl -s localhost:8475/v1/stats

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/foss-db/foss/internal/core"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/service"
	"github.com/foss-db/foss/internal/workload"
)

// runHTTP enables the online loop (unless -online already did) and serves
// the wire surface until SIGINT/SIGTERM. With a state directory, the loop
// either warm-starts from the latest checkpoint (recovering model, buffer,
// and epoch, then replaying the WAL tail) or — on a cold start — writes an
// initial checkpoint so the freshly trained model is durable before the
// first request lands.
func runHTTP(sys *core.System, w *workload.Workload, addr string, o onlineOpts) error {
	if sys.Online() == nil {
		if o.st != nil {
			info, err := sys.RecoverOnline(o.loopConfig(), o.st)
			if err != nil {
				return err
			}
			if info.Recovered {
				fmt.Printf("recovered from %s: checkpoint=%s epoch=%d buffer=%d walReplayed=%d\n",
					o.st.Dir(), info.Checkpoint, info.Epoch, info.BufferRestored, info.WALReplayed)
			} else {
				if _, err := sys.Online().Checkpoint(); err != nil {
					return fmt.Errorf("initial checkpoint: %w", err)
				}
				fmt.Printf("durable state: cold start, initial checkpoint written to %s\n", o.st.Dir())
			}
		} else if err := sys.EnableOnline(o.loopConfig()); err != nil {
			return err
		}
	}

	byID := map[string]*query.Query{}
	for _, q := range w.All() {
		byID[q.ID] = q
	}
	handler := service.NewHTTPServer(sys.Online(), service.HTTPOptions{
		Resolve: func(id string) *query.Query { return byID[id] },
	})
	srv := &http.Server{Addr: addr, Handler: handler}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\nshutting down...")
		drain := o.drain
		if drain <= 0 {
			drain = 15 * time.Second
		}
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		// Listener first: in-flight handlers finish their Serve/Record
		// normally. Then the loop: stop intake, await (or past the drain
		// budget, cancel) the background retrain, final checkpoint. The
		// store itself closes with main's defer, after this returns —
		// checkpoint before WAL release, never the reverse.
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "http shutdown:", err)
		}
		if err := sys.Close(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "drain:", err)
		}
	}()

	fmt.Printf("serving HTTP on %s (backend=%s, %d known query ids)\n", addr, sys.BackendName(), len(byID))
	fmt.Println("  POST /v1/optimize   {\"query_id\": \"...\"} | {\"query_ids\": [...]} | inline specs; add \"execute\": true for a full doctor-loop turn")
	fmt.Println("  POST /v1/feedback   {\"serve_id\": \"...\", \"latency_ms\": ...}")
	fmt.Println("  GET  /v1/stats")
	fmt.Println("  POST /v1/checkpoint  (force a durable checkpoint; requires -state-dir)")
	fmt.Println("  GET  /v1/explain/{serve_id}  (served vs expert plan, hint diff, tier decision, candidate scores)")
	fmt.Println("  GET  /v1/advisor     (async self-diagnosis findings)")
	fmt.Println("  GET  /metrics        (Prometheus text format)")
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-done
	fmt.Printf("drained cleanly; final online stats: %s\n", sys.OnlineStats())
	return nil
}
