package main

// The -online mode: after offline training, run the full doctor loop
// (Serve → Execute → Record) over a deterministic drift scenario, letting the
// drift detector trigger background retrains and hot-swaps, then compare the
// adaptive system against a frozen copy of the offline model on the shifted
// tail.

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/foss-db/foss/internal/core"
	"github.com/foss-db/foss/internal/service"
	"github.com/foss-db/foss/internal/store"
	"github.com/foss-db/foss/internal/tier"
	"github.com/foss-db/foss/internal/workload"
)

// onlineOpts carries the -online flag group plus the durability wiring.
type onlineOpts struct {
	kind         string
	driftSeed    int64
	pre, post    int
	window       int
	threshold    float64
	noveltyFrac  float64
	retrainIters int
	sync         bool
	st           *store.Store // nil = in-memory loop
	ckEvery      int
	drain        time.Duration // shutdown budget for -serve-http's lifecycle
	tierMemory   bool          // tier-0 plan memory (-tier-memory)
	tierGreedy   bool          // tier-1 greedy micro-planner (-tier-greedy)
	advisor      bool          // async advisor (-advisor)
	advisorWin   int           // regression window (-advisor-window)
}

// loopConfig assembles the service configuration shared by -online and
// -serve-http, including the durability store when -state-dir is set.
func (o onlineOpts) loopConfig() service.Config {
	return service.Config{
		Detector: service.DetectorConfig{
			Window:      o.window,
			Threshold:   o.threshold,
			MinSamples:  o.window / 2,
			NoveltyFrac: o.noveltyFrac,
		},
		Cooldown:          o.window,
		RetrainIterations: o.retrainIters,
		RetrainQueries:    2 * o.window,
		Background:        !o.sync,
		Store:             o.st,
		CheckpointEvery:   o.ckEvery,
		Tier:              tier.Config{Memory: o.tierMemory, Greedy: o.tierGreedy},
		Advisor:           service.AdvisorConfig{Enabled: o.advisor, Window: o.advisorWin},
	}
}

// runOnline drives the online doctor loop over a drift scenario and prints
// segment summaries plus the frozen-model comparison.
func runOnline(ctx context.Context, sys *core.System, frozen *core.System, w *workload.Workload, o onlineOpts) error {
	scen, err := workload.Drift(w, workload.DriftKind(o.kind), workload.DriftOptions{
		Seed: o.driftSeed, PreLen: o.pre, PostLen: o.post,
	})
	if err != nil {
		return err
	}
	err = sys.EnableOnline(o.loopConfig())
	if err != nil {
		return err
	}
	fmt.Printf("online: drift=%s pre=%d post=%d window=%d threshold=%.2f novelty=%.2f background=%v\n",
		o.kind, o.pre, o.post, o.window, o.threshold, o.noveltyFrac, !o.sync)

	stream := scen.Stream()
	lats := make([]float64, len(stream))
	firstSwap := -1
	start := time.Now()
	for i, q := range stream {
		if i == scen.ShiftAt() && len(scen.DDL) > 0 {
			// Schema-evolution scenarios land their DDL batch exactly at the
			// shift: the live catalog moves under the doctor mid-stream.
			epoch, err := sys.Online().ApplyDDL(scen.DDL)
			if err != nil {
				return fmt.Errorf("apply ddl at shift: %w", err)
			}
			if frozen != nil {
				// The frozen model's weights stay offline, but it must plan
				// and execute in the same evolved world — otherwise the
				// post-shift comparison measures two different schemas. The
				// clone shares the live system's catalog world, so the batch
				// is already applied; the clone only needs to repoint.
				if err := frozen.ResyncCatalog(); err != nil {
					return fmt.Errorf("resync frozen copy after ddl: %w", err)
				}
			}
			fmt.Printf("ddl applied at shift (%d statements) — catalog epoch %d\n", len(scen.DDL), epoch)
		}
		_, lat, err := sys.ServeStepContext(ctx, q)
		if err != nil {
			return fmt.Errorf("serve %s: %w", q.ID, err)
		}
		lats[i] = lat
		if firstSwap < 0 && sys.OnlineStats().Swaps > 0 {
			firstSwap = i
		}
	}
	sys.Online().Wait() // drain any in-flight background retrain
	elapsed := time.Since(start)

	segMean := func(lo, hi int) float64 {
		if hi <= lo {
			return 0
		}
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += lats[i]
		}
		return sum / float64(hi-lo)
	}
	shift := scen.ShiftAt()
	fmt.Printf("pre-shift  mean latency: %9.3fms over %d queries\n", segMean(0, shift), shift)
	fmt.Printf("post-shift mean latency: %9.3fms over %d queries\n", segMean(shift, len(stream)), len(stream)-shift)
	fmt.Printf("%s\n", sys.OnlineStats())

	// Frozen comparison on the post-shift segment: what the offline model
	// would have served with no feedback loop.
	if frozen != nil {
		frozenSum, onlineSum := 0.0, 0.0
		for i := shift; i < len(stream); i++ {
			cp, _, err := frozen.OptimizeContext(ctx, stream[i])
			if err != nil {
				return err
			}
			frozenSum += frozen.Execute(cp)
			onlineSum += lats[i]
		}
		n := float64(len(stream) - shift)
		fmt.Printf("post-shift frozen model: %9.3fms  online: %9.3fms  (%.2fx)\n",
			frozenSum/n, onlineSum/n, (frozenSum/n)/(onlineSum/n))
	}
	switch st := sys.OnlineStats(); {
	case firstSwap >= 0:
		fmt.Printf("first hot-swap after %d served queries\n", firstSwap+1)
	case st.Swaps > 0:
		fmt.Println("hot-swap completed after the stream drained (background retrain outlived serving; use -sync-retrain to adapt mid-stream)")
	default:
		fmt.Println("no hot-swap triggered (stream too calm for the thresholds)")
	}
	fmt.Printf("online loop wall-clock: %s\n", elapsed.Truncate(time.Millisecond))
	return nil
}

// buildFrozen clones the trained system into a frozen baseline replica.
func buildFrozen(sys *core.System) *core.System {
	frozen, err := sys.Clone()
	if err != nil {
		fmt.Fprintln(os.Stderr, "frozen replica:", err)
		return nil
	}
	return frozen
}
