package main

// The -gate mode: fossd as a fleet front end with no doctor of its own.
// Shared by cmd/fossgate, which is the same gate as a standalone binary.
//
//	fossd -gate -serve-http :8400 -gate-members 127.0.0.1:8475,127.0.0.1:8476 -gate-failover

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/foss-db/foss/internal/gate"
)

// runGate serves the consistent-hash tenant router until SIGINT/SIGTERM.
func runGate(addr, members string, failover bool, vnodes int) error {
	var list []string
	for _, m := range strings.Split(members, ",") {
		if m = strings.TrimSpace(m); m != "" {
			list = append(list, m)
		}
	}
	p, err := gate.NewProxy(gate.Options{Members: list, VNodes: vnodes, Failover: failover})
	if err != nil {
		return err
	}

	srv := &http.Server{Addr: addr, Handler: p}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\ngate shutting down...")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "gate shutdown:", err)
		}
	}()

	fmt.Printf("gate up on %s: %d member(s), failover=%v\n", addr, len(p.Ring().Members()), failover)
	fmt.Println("  /v1/t/{tenant}/*  → proxied to the tenant's owner on the hash ring")
	fmt.Println("  GET /metrics      → merged fleet exposition (instance-labeled) + foss_gate_* counters")
	fmt.Println("  GET /v1/stats     → per-member stats keyed by address")
	fmt.Println("  GET /v1/gate      → membership; ?tenant=x shows x's preference list")
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-done
	fmt.Println("gate stopped")
	return nil
}
