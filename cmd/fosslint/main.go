// Command fosslint runs FOSS's in-tree static-analysis suite: six analyzers
// that mechanically enforce the invariants the codebase's PRs established —
// seeded determinism on decision paths, lifecycle-tracked goroutines,
// errors.Is-only sentinel comparisons, fsync-before-rename durability,
// ctx-first exported APIs, and counter-before-histogram stats ordering.
//
// Usage:
//
//	fosslint [-json] [-rules r1,r2] [-unscoped] [-list] [packages...]
//
// Packages default to ./... . Exit status is 0 when clean, 1 when findings
// were reported, 2 on usage or load errors. Findings print one per line as
//
//	file:line: [rule] message
//
// and can be suppressed in source with //lint:ignore <rule> <reason>
// (reason mandatory; suppressions are counted in the summary).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/foss-db/foss/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonReport is the -json output shape (stable tooling contract).
type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
	Counts   jsonCounts    `json:"counts"`
	Duration float64       `json:"duration_ms"`
}

type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

type jsonCounts struct {
	Findings         int `json:"findings"`
	Suppressed       int `json:"suppressed"`
	IgnoreDirectives int `json:"ignore_directives"`
	Packages         int `json:"packages"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fosslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		asJSON   = fs.Bool("json", false, "emit findings as a JSON report")
		rules    = fs.String("rules", "", "comma-separated rule subset (default: all)")
		unscoped = fs.Bool("unscoped", false, "lift per-rule package/file scoping (fixture verification)")
		list     = fs.Bool("list", false, "list rules and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	opts := lint.Options{Patterns: fs.Args(), Unscoped: *unscoped}
	if *rules != "" {
		opts.Rules = strings.Split(*rules, ",")
	}
	sum, err := lint.Run(opts)
	if err != nil {
		fmt.Fprintf(stderr, "fosslint: %v\n", err)
		return 2
	}

	wd, _ := os.Getwd()
	rel := func(path string) string {
		if wd != "" {
			if r, err := filepath.Rel(wd, path); err == nil && !strings.HasPrefix(r, "..") {
				return r
			}
		}
		return path
	}

	if *asJSON {
		rep := jsonReport{
			Findings: []jsonFinding{},
			Counts: jsonCounts{
				Findings:         len(sum.Findings),
				Suppressed:       sum.Suppressed,
				IgnoreDirectives: sum.IgnoreDirectives,
				Packages:         sum.Packages,
			},
			Duration: float64(sum.Duration.Microseconds()) / 1e3,
		}
		for _, d := range sum.Findings {
			rep.Findings = append(rep.Findings, jsonFinding{
				File: rel(d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
				Rule: d.Rule, Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "fosslint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range sum.Findings {
			fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Rule, d.Message)
		}
		fmt.Fprintf(stderr, "fosslint: %d finding(s), %d suppressed by %d ignore directive(s), %d package(s), %s\n",
			len(sum.Findings), sum.Suppressed, sum.IgnoreDirectives, sum.Packages,
			sum.Duration.Round(1e6))
	}
	if len(sum.Findings) > 0 {
		return 1
	}
	return 0
}
