package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const (
	fixtureDeterminism = "../../internal/lint/testdata/determinism"
	fixtureIgnore      = "../../internal/lint/testdata/ignore"
	cleanPkg           = "../../internal/fosserr"
)

// TestExitCodes pins the driver's contract: 0 clean, 1 findings, 2 errors.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		exit int
	}{
		{"clean package", []string{cleanPkg}, 0},
		{"seeded violations", []string{"-unscoped", fixtureDeterminism}, 1},
		{"rule not firing when deselected", []string{"-unscoped", "-rules", "fsyncrename", fixtureDeterminism}, 0},
		{"unknown rule", []string{"-rules", "nope", cleanPkg}, 2},
		{"bad pattern", []string{"./does-not-exist-xyz"}, 2},
		{"list rules", []string{"-list"}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(c.args, &stdout, &stderr); got != c.exit {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", got, c.exit, &stdout, &stderr)
			}
		})
	}
}

// TestTextOutputShape: findings print as "file:line: [rule] message".
func TestTextOutputShape(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-unscoped", "-rules", "determinism", fixtureDeterminism}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", got, &stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no findings printed")
	}
	for _, l := range lines {
		if !strings.Contains(l, ".go:") || !strings.Contains(l, ": [determinism] ") {
			t.Errorf("finding line %q does not match file:line: [rule] message", l)
		}
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("summary missing from stderr: %q", stderr.String())
	}
}

// TestJSONShape: the -json report is stable, parseable tooling input.
func TestJSONShape(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-json", "-unscoped", "-rules", "determinism", fixtureDeterminism}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", got, &stderr)
	}
	var rep jsonReport
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("unmarshaling -json output: %v\n%s", err, &stdout)
	}
	if len(rep.Findings) == 0 || rep.Counts.Findings != len(rep.Findings) {
		t.Fatalf("inconsistent counts: %+v", rep.Counts)
	}
	for _, f := range rep.Findings {
		if f.File == "" || f.Line <= 0 || f.Rule != "determinism" || f.Message == "" {
			t.Errorf("malformed finding: %+v", f)
		}
	}
	if rep.Counts.Packages != 1 {
		t.Errorf("packages = %d, want 1", rep.Counts.Packages)
	}
	if rep.Duration <= 0 {
		t.Errorf("duration_ms = %v, want > 0", rep.Duration)
	}
}

// TestIgnoreDirectives: a valid //lint:ignore suppresses and is counted; a
// reasonless or ruleless one is itself a finding and suppresses nothing.
func TestIgnoreDirectives(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-json", "-unscoped", fixtureIgnore}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", got, &stderr)
	}
	var rep jsonReport
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("unmarshaling: %v", err)
	}
	byRule := map[string]int{}
	for _, f := range rep.Findings {
		byRule[f.Rule]++
	}
	if byRule["ignore"] != 2 {
		t.Errorf("ignore findings = %d, want 2 (one reasonless, one ruleless): %+v", byRule["ignore"], rep.Findings)
	}
	if byRule["determinism"] != 1 {
		t.Errorf("determinism findings = %d, want 1 (reasonless directive must not suppress): %+v", byRule["determinism"], rep.Findings)
	}
	if rep.Counts.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", rep.Counts.Suppressed)
	}
	if rep.Counts.IgnoreDirectives != 3 {
		t.Errorf("ignore_directives = %d, want 3", rep.Counts.IgnoreDirectives)
	}
}
