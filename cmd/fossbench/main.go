// Command fossbench regenerates the paper's tables and figures.
//
// Usage:
//
//	fossbench [-scale 0.5] [-seed 1] [-fast] [-workload job] <experiment>
//
// where <experiment> is one of: table1, fig4, fig5, fig6, fig7, fig8,
// table2, fig9, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/foss-db/foss/internal/experiments"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.5, "data scale factor")
		seed  = flag.Int64("seed", 1, "random seed")
		fast  = flag.Bool("fast", false, "reduced training budgets")
		wl    = flag.String("workload", "job", "workload for single-workload experiments")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: fossbench [flags] table1|fig4|fig5|fig6|fig7|fig8|table2|fig9|all")
		os.Exit(2)
	}
	opts := experiments.Opts{Scale: *scale, Seed: *seed, Fast: *fast}
	out := os.Stdout

	run := func(name string) error {
		switch name {
		case "table1":
			_, err := experiments.TableI(out, nil, opts)
			return err
		case "fig4":
			rows, err := experiments.TableI(out, nil, opts)
			if err != nil {
				return err
			}
			experiments.Fig4(out, rows)
			return nil
		case "fig5":
			_, err := experiments.Fig5(out, *wl, opts)
			return err
		case "fig6":
			_, err := experiments.Fig6(out, *wl, opts)
			return err
		case "fig7":
			_, err := experiments.Fig7(out, *wl, opts)
			return err
		case "fig8":
			_, err := experiments.Fig8(out, *wl, opts)
			return err
		case "table2":
			_, err := experiments.TableII(out, *wl, opts)
			return err
		case "fig9":
			_, err := experiments.Fig9(out, *wl, opts, nil)
			return err
		case "all":
			rows, err := experiments.TableI(out, nil, opts)
			if err != nil {
				return err
			}
			experiments.Fig4(out, rows)
			for _, f := range []func() error{
				func() error { _, err := experiments.Fig5(out, *wl, opts); return err },
				func() error { _, err := experiments.Fig6(out, *wl, opts); return err },
				func() error { _, err := experiments.Fig7(out, *wl, opts); return err },
				func() error { _, err := experiments.Fig8(out, *wl, opts); return err },
				func() error { _, err := experiments.TableII(out, *wl, opts); return err },
				func() error { _, err := experiments.Fig9(out, *wl, opts, nil); return err },
			} {
				if err := f(); err != nil {
					return err
				}
			}
			return nil
		}
		return fmt.Errorf("unknown experiment %q", name)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "fossbench:", err)
		os.Exit(1)
	}
}
