// Command fossgate fronts a replicated fossd fleet: a consistent-hash ring
// maps each tenant onto one fleet member with minimal movement when
// membership changes, and every /v1/t/{tenant}/* request is proxied to the
// owning process. /metrics and /v1/stats fan out to the whole fleet and
// merge, so one scrape (one dashboard) sees every member.
//
// Usage:
//
//	fossgate -listen :8400 -members 127.0.0.1:8475,127.0.0.1:8476,127.0.0.1:8477
//	fossgate -listen :8400 -members ... -failover
//
// With -failover a request whose owner is unreachable (transport error, not
// an HTTP error status) retries against the next member in the tenant's
// preference list — pointed at followers, that keeps reads served through a
// leader crash.
//
// The gate holds no state: it can restart or run replicated behind a TCP
// load balancer without any handoff. fossd -gate is the same gate embedded
// in the main binary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/foss-db/foss/internal/gate"
)

func main() {
	var (
		listen   = flag.String("listen", ":8400", "gate listen address")
		members  = flag.String("members", "", "comma-separated fleet member addresses (host:port or http://host:port)")
		failover = flag.Bool("failover", false, "retry the next member in a tenant's preference list when the owner is unreachable")
		vnodes   = flag.Int("vnodes", 0, "virtual nodes per member on the hash ring (0 = default)")
	)
	flag.Parse()

	var list []string
	for _, m := range strings.Split(*members, ",") {
		if m = strings.TrimSpace(m); m != "" {
			list = append(list, m)
		}
	}
	p, err := gate.NewProxy(gate.Options{Members: list, VNodes: *vnodes, Failover: *failover})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gate:", err)
		os.Exit(1)
	}

	srv := &http.Server{Addr: *listen, Handler: p}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("\ngate shutting down...")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "gate shutdown:", err)
		}
	}()

	fmt.Printf("gate up on %s: %d member(s), failover=%v\n", *listen, len(p.Ring().Members()), *failover)
	for _, m := range p.Ring().Members() {
		fmt.Printf("  member %s\n", m)
	}
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "gate:", err)
		os.Exit(1)
	}
	<-done
	fmt.Println("gate stopped")
}
