// Benchmarks regenerating every table and figure of the paper's evaluation
// section at reduced training budgets (-fast). Each bench runs its
// experiment once per iteration and reports wall-clock; use cmd/fossbench
// for full-budget runs and readable reports.
package foss_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/core"
	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/experiments"
	"github.com/foss-db/foss/internal/gate"
	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/runtime"
	"github.com/foss-db/foss/internal/service"
	"github.com/foss-db/foss/internal/shard"
	"github.com/foss-db/foss/internal/store"
	"github.com/foss-db/foss/internal/tier"
	"github.com/foss-db/foss/internal/workload"
)

// benchOpts keeps every experiment small enough for testing.B cycles.
func benchOpts() experiments.Opts {
	return experiments.Opts{Scale: 0.2, Seed: 1, Fast: true}
}

// BenchmarkTrainParallel measures the FOSS training loop on the JOB workload
// at different episode fan-outs. workers=1 is the sequential reference path;
// higher widths exercise the runtime pool's deterministic episode
// partitioning. Compare ns/op across sub-benchmarks for the speedup.
func BenchmarkTrainParallel(b *testing.B) {
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.35})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.StateNet = aam.StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
				cfg.Workers = workers
				cfg.Learner.Iterations = 2
				cfg.Learner.RealPerIter = 12
				cfg.Learner.SimPerIter = 80
				cfg.Learner.ValidatePerIter = 12
				sys, err := core.New(w, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.Train(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeOnline measures one full online doctor-loop turn
// (Serve → Execute → Record) on a trained system with the plan cache warm
// and drift triggers disabled: the steady-state serving cost of the online
// subsystem, reported per request.
func BenchmarkServeOnline(b *testing.B) {
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.35})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.StateNet = aam.StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	cfg.PlanCache = 256
	cfg.Learner.Iterations = 1
	cfg.Learner.RealPerIter = 6
	cfg.Learner.SimPerIter = 20
	cfg.Learner.ValidatePerIter = 6
	cfg.Learner.InferenceRollouts = 2
	sys, err := core.New(w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Train(nil); err != nil {
		b.Fatal(err)
	}
	err = sys.EnableOnline(service.Config{
		// thresholds no serving pattern can trip: the bench isolates the
		// request path from retraining
		Detector:          service.DetectorConfig{Window: 32, Threshold: 1e12, MinSamples: 32, NoveltyFrac: 0},
		Cooldown:          1 << 30,
		RetrainIterations: 1,
		Background:        true,
	})
	if err != nil {
		b.Fatal(err)
	}
	queries := w.Train
	// Warmup: one pass fills the plan cache and the expert-latency cache so
	// the timed loop (which may be a single iteration under -benchtime 1x)
	// measures steady state, not first-touch misses.
	for _, q := range queries {
		if _, _, err := sys.ServeStep(q); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.ServeStep(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// tieredBenchSystem trains the BenchmarkServeOnline fixture and enables the
// online loop with the given tier configuration.
func tieredBenchSystem(b *testing.B, tc tier.Config) *core.System {
	b.Helper()
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.35})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.StateNet = aam.StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	cfg.PlanCache = 256
	cfg.Learner.Iterations = 1
	cfg.Learner.RealPerIter = 6
	cfg.Learner.SimPerIter = 20
	cfg.Learner.ValidatePerIter = 6
	cfg.Learner.InferenceRollouts = 2
	sys, err := core.New(w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Train(nil); err != nil {
		b.Fatal(err)
	}
	err = sys.EnableOnline(service.Config{
		Detector:          service.DetectorConfig{Window: 32, Threshold: 1e12, MinSamples: 32, NoveltyFrac: 0},
		Cooldown:          1 << 30,
		RetrainIterations: 1,
		Background:        true,
		Tier:              tc,
	})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkServeTiered measures the tiered serving path. "repeat" is the
// tier-0 hit: a fingerprint promoted into plan memory served over and over —
// one atomic load plus one read-locked map lookup, the path the tiering
// exists to create (compare against BenchmarkServeOnline's full turn).
// "novel" is the router's overhead on never-promoted traffic: the same
// serving loop as BenchmarkServeOnline with tiering enabled but an
// unreachable promotion threshold, so every request routes to tier 2.
func BenchmarkServeTiered(b *testing.B) {
	b.Run("repeat", func(b *testing.B) {
		sys := tieredBenchSystem(b, tier.Config{Memory: true, PromoteAfter: 2})
		ctx := context.Background()
		q := sys.W.Train[0]
		promoted := false
		for i := 0; i < 10 && !promoted; i++ {
			res, err := sys.ServeContext(ctx, q)
			if err != nil {
				b.Fatal(err)
			}
			promoted = res.Tier == tier.Tier0
			// A latency below any expert baseline: every record is a win.
			sys.Online().Record(q, res.Eval, 0.001)
		}
		if !promoted {
			b.Fatal("fixture never promoted a pin")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := sys.ServeContext(ctx, q)
			if err != nil {
				b.Fatal(err)
			}
			if res.Tier != tier.Tier0 {
				b.Fatalf("tier %d mid-bench, want 0", res.Tier)
			}
		}
	})
	b.Run("novel", func(b *testing.B) {
		sys := tieredBenchSystem(b, tier.Config{Memory: true, PromoteAfter: 1 << 30})
		queries := sys.W.Train
		for _, q := range queries { // warmup as in BenchmarkServeOnline
			if _, _, err := sys.ServeStep(q); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := sys.ServeStep(queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCatalogApply measures one live DDL apply on a trained, tiered
// online loop: the copy-on-write world rebuild (storage, statistics,
// backend), the bumped-epoch republish, and the tier invalidation — the
// whole schema-evolution critical section, with no store attached so the
// number is the in-memory apply cost. Iterations alternate drop-index /
// add-index on the same hot column so every statement is valid.
func BenchmarkCatalogApply(b *testing.B) {
	sys := tieredBenchSystem(b, tier.Config{Memory: true, PromoteAfter: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kind := catalog.DDLDropIndex
		if i%2 == 1 {
			kind = catalog.DDLAddIndex
		}
		if _, err := sys.Online().ApplyDDL([]catalog.DDL{{Kind: kind, Table: "title", Column: "id"}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTier0RewarmAfterDDL measures the serving cost of a migration:
// one DDL apply (which invalidates every tier-0 pin) plus the serves it
// takes the hot fingerprint to re-earn its pin and land back on tier 0 —
// the end-to-end latency tax a schema change levies on plan memory.
func BenchmarkTier0RewarmAfterDDL(b *testing.B) {
	sys := tieredBenchSystem(b, tier.Config{Memory: true, PromoteAfter: 2})
	ctx := context.Background()
	q := sys.W.Train[0]
	rewarm := func() {
		for i := 0; i < 10; i++ {
			res, err := sys.ServeContext(ctx, q)
			if err != nil {
				b.Fatal(err)
			}
			if res.Tier == tier.Tier0 {
				return
			}
			sys.Online().Record(q, res.Eval, 0.001)
		}
		b.Fatal("fingerprint never re-promoted after DDL")
	}
	rewarm() // initial promotion, outside the timed loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kind := catalog.DDLDropIndex
		if i%2 == 1 {
			kind = catalog.DDLAddIndex
		}
		if _, err := sys.Online().ApplyDDL([]catalog.DDL{{Kind: kind, Table: "title", Column: "id"}}); err != nil {
			b.Fatal(err)
		}
		rewarm()
	}
}

// BenchmarkServeWithMetrics measures the steady-state serve turn with the
// observability surface active and under scrape pressure: every op is the
// same Serve → Execute → Record turn as BenchmarkServeOnline (each landing
// in the per-tier latency histogram), while a background scraper snapshots
// the histograms and counters at a Prometheus-like cadence. Compare ns/op
// against BenchmarkServeOnline directly — the recording path is two atomic
// adds plus a bit-length per serve, budgeted at <=2% overhead.
func BenchmarkServeWithMetrics(b *testing.B) {
	sys := tieredBenchSystem(b, tier.Config{})
	queries := sys.W.Train
	for _, q := range queries { // warmup as in BenchmarkServeOnline
		if _, _, err := sys.ServeStep(q); err != nil {
			b.Fatal(err)
		}
	}
	lp := sys.Online()
	stop := make(chan struct{})
	donescrape := make(chan struct{})
	go func() {
		defer close(donescrape)
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				_ = lp.ServeHistograms()
				_ = lp.Stats()
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.ServeStep(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-donescrape
	if lp.ServeHistograms()[tier.Tier2].Count() == 0 {
		b.Fatal("no serve landed in the histogram; the metrics path was not exercised")
	}
}

// BenchmarkTierRouter isolates the routing decision itself: one pinned
// lookup (tier-0 hit) and one unknown fingerprint (tier-2 fallthrough) per
// op, on a router holding a pin.
func BenchmarkTierRouter(b *testing.B) {
	m := tier.NewMemory(tier.Config{Memory: true, Greedy: true, PromoteAfter: 1})
	id := runtime.Identity{Backend: "selinger", Epoch: 1}
	q := &query.Query{
		ID: "r", Template: "t",
		Tables:  []query.TableRef{{Table: "ta", Alias: "a"}},
		Filters: []query.Filter{{Alias: "a", Col: "c", Op: query.Eq, Val: 1}},
	}
	fp := q.Fingerprint()
	icp, ok := tier.Greedy(q)
	if !ok {
		b.Fatal("greedy rejected the fixture query")
	}
	pe := &planner.PlanEval{Q: q, ICP: icp}
	if out := m.Observe(id, fp, q, pe, 1, 10); !out.Promoted {
		b.Fatalf("fixture did not promote: %+v", out)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := m.Route(id, fp); d.Tier != tier.Tier0 {
			b.Fatal("pinned fingerprint missed")
		}
		if d := m.Route(id, fp+1); d.Tier != tier.Tier2 {
			b.Fatal("unknown fingerprint hit")
		}
	}
}

// BenchmarkServeBatch measures batched doctor inference on a trained system
// with the plan cache disabled (every request does real model work): "seq"
// serves a fixed 16-query set one ServeContext at a time, "batch" serves the
// same set through one ServeBatch call whose candidates share a single
// stacked AAM scoring pass. Identical work per op — compare ns/op directly
// for the batching win.
func BenchmarkServeBatch(b *testing.B) {
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.35})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.StateNet = aam.StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	cfg.PlanCache = 0 // measure inference, not cache hits
	cfg.Learner.Iterations = 1
	cfg.Learner.RealPerIter = 6
	cfg.Learner.SimPerIter = 20
	cfg.Learner.ValidatePerIter = 6
	cfg.Learner.InferenceRollouts = 2
	sys, err := core.New(w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Train(nil); err != nil {
		b.Fatal(err)
	}
	err = sys.EnableOnline(service.Config{
		Detector:   service.DetectorConfig{Window: 32, Threshold: 1e12, MinSamples: 32},
		Cooldown:   1 << 30,
		Background: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	queries := w.Train[:16]

	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				if _, err := sys.ServeContext(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.ServeBatch(ctx, queries); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// durableBenchSystem trains a tiny doctor with a durable online loop rooted
// at dir, the shared fixture of the durability benchmarks.
func durableBenchSystem(b *testing.B, dir string) (*core.System, *store.Store) {
	b.Helper()
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.35})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.StateNet = aam.StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	cfg.Learner.Iterations = 1
	cfg.Learner.RealPerIter = 6
	cfg.Learner.SimPerIter = 20
	cfg.Learner.ValidatePerIter = 6
	cfg.Learner.InferenceRollouts = 2
	sys, err := core.New(w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Train(nil); err != nil {
		b.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	_, err = sys.RecoverOnline(service.Config{
		Detector:   service.DetectorConfig{Window: 32, Threshold: 1e12, MinSamples: 32},
		Cooldown:   1 << 30,
		Background: false,
	}, st)
	if err != nil {
		b.Fatal(err)
	}
	return sys, st
}

// BenchmarkCheckpoint measures one durable checkpoint of a live doctor:
// quiesce + model save + buffer export + seal + atomic file write + manifest
// repoint — the cost the loop pays on every hot-swap and every
// CheckpointEvery-th record.
func BenchmarkCheckpoint(b *testing.B) {
	sys, _ := durableBenchSystem(b, b.TempDir())
	// A realistic buffer: some served feedback beyond the training fills.
	for _, q := range sys.W.Train[:8] {
		if _, _, err := sys.ServeStep(q); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Online().Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALReplay measures a warm restart: load the checkpoint from
// disk, rebuild the execution buffer, and replay a 32-record WAL tail
// (deterministic hint re-completion + re-encoding per record) into a fresh
// system — the recovery path a crashed fossd walks before serving again.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	sys, origStore := durableBenchSystem(b, dir)
	if _, err := sys.Online().Checkpoint(); err != nil {
		b.Fatal(err)
	}
	// Everything recorded after the checkpoint lives only in the WAL tail.
	for i := 0; i < 32; i++ {
		q := sys.W.Train[i%len(sys.W.Train)]
		if _, _, err := sys.ServeStep(q); err != nil {
			b.Fatal(err)
		}
	}
	cfg := sys.Cfg
	cfg.Seed = 99
	// Release the live doctor's directory lock: each timed recovery below
	// opens the state dir the way a restarted process would.
	if err := origStore.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		fresh, err := core.New(sys.W, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		info, err := fresh.RecoverOnline(service.Config{
			Detector:   service.DetectorConfig{Window: 32, Threshold: 1e12, MinSamples: 32},
			Cooldown:   1 << 30,
			Background: false,
		}, st)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if !info.Recovered || info.WALReplayed == 0 {
			b.Fatalf("recovery did not replay: %+v", info)
		}
		st.Close()
		b.StartTimer()
	}
}

// BenchmarkShardedServe measures multi-tenant serving through the shard
// router: one full doctor-loop turn per op, round-robined across the fleet,
// with every tenant sharing one bounded worker pool. Compare tenants=1
// against tenants=4 — per-request cost should stay flat as the fleet grows,
// because shards share nothing on the request path (the shared pool only
// carries training fan-out).
func BenchmarkShardedServe(b *testing.B) {
	for _, tenants := range []int{1, 4} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			sysCfg := core.DefaultConfig()
			sysCfg.StateNet = aam.StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
			sysCfg.PlanCache = 256
			sysCfg.Learner.Iterations = 1
			sysCfg.Learner.RealPerIter = 6
			sysCfg.Learner.SimPerIter = 20
			sysCfg.Learner.ValidatePerIter = 6
			sysCfg.Learner.InferenceRollouts = 2
			specs := make([]shard.TenantSpec, tenants)
			for i := range specs {
				specs[i] = shard.TenantSpec{Name: fmt.Sprintf("t%d", i)}
			}
			router, err := shard.NewRouter(context.Background(), shard.Config{
				System: sysCfg,
				Loop: service.Config{
					Detector:   service.DetectorConfig{Window: 32, Threshold: 1e12, MinSamples: 32},
					Cooldown:   1 << 30,
					Background: true,
				},
				Defaults: shard.TenantSpec{Workload: "job", Scale: 0.35, Seed: 1},
				Workers:  2,
			}, specs)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { router.Close(context.Background()) })
			names := router.Names()
			shards := make([]*shard.Shard, len(names))
			for i, name := range names {
				sh, err := router.Get(name)
				if err != nil {
					b.Fatal(err)
				}
				shards[i] = sh
				// Warmup fills each tenant's plan cache and expert baseline.
				for _, q := range sh.W.Train {
					if _, _, err := sh.Step(context.Background(), q); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sh := shards[i%len(shards)]
				q := sh.W.Train[i%len(sh.W.Train)]
				if _, _, err := sh.Step(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGateProxy measures one serving round-trip through the fleet
// gate: HTTP in at the gate, consistent-hash owner lookup, proxied optimize
// on the owning member, response relayed back. Compare against
// BenchmarkShardedServe for the wire + routing overhead on top of the
// in-process serve path.
func BenchmarkGateProxy(b *testing.B) {
	sysCfg := core.DefaultConfig()
	sysCfg.StateNet = aam.StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	sysCfg.PlanCache = 256
	sysCfg.Learner.Iterations = 1
	sysCfg.Learner.RealPerIter = 6
	sysCfg.Learner.SimPerIter = 20
	sysCfg.Learner.ValidatePerIter = 6
	sysCfg.Learner.InferenceRollouts = 2
	router, err := shard.NewRouter(context.Background(), shard.Config{
		System: sysCfg,
		Loop: service.Config{
			Detector:   service.DetectorConfig{Window: 32, Threshold: 1e12, MinSamples: 32},
			Cooldown:   1 << 30,
			Background: true,
		},
		Defaults: shard.TenantSpec{Workload: "job", Scale: 0.35, Seed: 1},
		Workers:  2,
	}, []shard.TenantSpec{{Name: "t0"}})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { router.Close(context.Background()) })
	member := httptest.NewServer(service.NewMultiHTTPServer(router))
	b.Cleanup(member.Close)
	p, err := gate.NewProxy(gate.Options{Members: []string{member.URL}})
	if err != nil {
		b.Fatal(err)
	}
	gw := httptest.NewServer(p)
	b.Cleanup(gw.Close)

	sh, err := router.Get("t0")
	if err != nil {
		b.Fatal(err)
	}
	post := func(qid string) {
		resp, err := http.Post(gw.URL+"/v1/t/t0/optimize", "application/json",
			strings.NewReader(`{"query_id": "`+qid+`"}`))
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("gate optimize: %s", resp.Status)
		}
	}
	for _, q := range sh.W.Train {
		post(q.ID) // warm plan caches through the full proxied path
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post(sh.W.Train[i%len(sh.W.Train)].ID)
	}
}

// BenchmarkTableI_JOB regenerates the JOB column of Table I (all six
// optimizers, WRL/GMRL train+test, workload runtime).
func BenchmarkTableI_JOB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableI(io.Discard, []string{"job"}, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI_TPCDS regenerates the TPC-DS column of Table I.
func BenchmarkTableI_TPCDS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableI(io.Discard, []string{"tpcds"}, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI_Stack regenerates the Stack column of Table I.
func BenchmarkTableI_Stack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableI(io.Discard, []string{"stack"}, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4_Speedup derives Fig. 4's relative-speedup bars from a JOB
// Table I run.
func BenchmarkFig4_Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableI(io.Discard, []string{"job"}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		experiments.Fig4(io.Discard, rows)
	}
}

// BenchmarkFig5_TrainingCurves regenerates the JOB training curves of Fig 5.
func BenchmarkFig5_TrainingCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(io.Discard, "job", benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6_OptTime regenerates the optimization-time box plots of Fig 6.
func BenchmarkFig6_OptTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(io.Discard, "job", benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7_StepsDist regenerates the maxsteps step-distribution of Fig 7.
func BenchmarkFig7_StepsDist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(io.Discard, "job", benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8_KnownBest regenerates the ranked-savings curves of Fig 8.
func BenchmarkFig8_KnownBest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(io.Discard, "job", benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII_Ablations regenerates the design-choice Table II.
func BenchmarkTableII_Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(io.Discard, "job", benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9_AblationCurves regenerates the GMRL ablation curves of Fig 9
// (restricted to the two cheapest configs to keep bench cycles bounded).
func BenchmarkFig9_AblationCurves(b *testing.B) {
	cfgs := []experiments.AblationName{experiments.Maxsteps2, experiments.OffPenalty}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(io.Discard, "job", benchOpts(), cfgs); err != nil {
			b.Fatal(err)
		}
	}
}
