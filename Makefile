GO ?= go

.PHONY: all build test race vet ci ci-quick bench clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full verification pipeline: vet + build + race tests + determinism checks
# (+ the workers=4 speedup measurement on multi-core machines).
ci:
	scripts/ci.sh

ci-quick:
	scripts/ci.sh --quick

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

clean:
	$(GO) clean ./...
