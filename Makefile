GO ?= go

.PHONY: all build test race vet lint ci ci-quick bench bench-all clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-invariant static analysis (see cmd/fosslint and the README's
# "Static analysis" section). Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/fosslint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full verification pipeline: vet + build + race tests + determinism checks
# (+ the workers=4 speedup measurement on multi-core machines).
ci:
	scripts/ci.sh

ci-quick:
	scripts/ci.sh --quick

# Perf snapshot: parallel-training + online-serving + tiered-serving +
# batched-serving + durability (checkpoint, WAL replay) + sharded
# multi-tenant serving benchmarks plus the fosslint wall-time figure,
# written to BENCH_10.json (see scripts/bench.sh; BENCHTIME=3x make bench
# for longer runs, CPUS=1,2,4 to sweep GOMAXPROCS).
bench:
	scripts/bench.sh

# Every benchmark in the repo, one iteration each (paper tables/figures).
bench-all:
	$(GO) test -run xxx -bench . -benchtime 1x .

clean:
	$(GO) clean ./...
