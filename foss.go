// Package foss is a from-scratch Go reproduction of "FOSS: A Self-Learned
// Doctor for Query Optimizer" (ICDE 2024). FOSS starts from the plan a
// traditional cost-based optimizer produced and repairs it with a short
// sequence of fine-grained edits — swapping two tables in the left-deep join
// order or overriding a join's physical method — selected by a PPO-trained
// agent. An asymmetric advantage model compares candidate plans pairwise,
// acting both as the plan selector at inference time and as the reward
// indicator of a simulated environment that lets the agent bootstrap on
// cheap experience.
//
// The package bundles everything the paper depends on, implemented in pure
// Go: a column-store engine with a deterministic latency model, a
// Selinger-style optimizer with hint steering, histogram statistics with
// realistic estimation error, a tensor autograd library with
// masked-attention transformers, PPO, three synthetic benchmarks (JOB,
// TPC-DS, Stack), and the four learned-optimizer baselines the paper
// compares against (Bao, Balsa, Loger, HybridQO).
//
// Quick start:
//
//	w, _ := foss.LoadWorkload("job", foss.WorkloadOptions{Seed: 1, Scale: 0.5})
//	sys, _ := foss.New(w, foss.DefaultConfig())
//	_ = sys.Train(nil)
//	plan, optTime, _ := sys.Optimize(w.Test[0])
//	latency := sys.Execute(plan)
//
// Online doctor loop (the paper's self-learned doctor kept learning after
// deployment — drift-aware background retraining with zero-downtime model
// hot-swap):
//
//	_ = sys.EnableOnline(foss.DefaultOnlineConfig())
//	for _, q := range liveQueries {
//		res, _ := sys.Serve(q)              // lock-free w.r.t. retraining
//		lat := sys.Execute(res.Eval.CP)
//		_ = sys.Record(q, res.Eval, lat)    // feedback -> buffer -> drift -> retrain
//	}
//	fmt.Println(sys.OnlineStats())          // drift/retrain/swap counters
package foss

import (
	"github.com/foss-db/foss/internal/core"
	"github.com/foss-db/foss/internal/service"
	"github.com/foss-db/foss/internal/workload"
)

// Config re-exports the FOSS system configuration.
type Config = core.Config

// System re-exports the assembled FOSS system.
type System = core.System

// Workload re-exports a loaded benchmark.
type Workload = workload.Workload

// WorkloadOptions re-exports workload generation options.
type WorkloadOptions = workload.Options

// DefaultConfig returns the paper-mirroring configuration at repository
// scale.
func DefaultConfig() Config { return core.DefaultConfig() }

// New assembles a FOSS system over a loaded workload.
func New(w *Workload, cfg Config) (*System, error) { return core.New(w, cfg) }

// LoadWorkload generates one of the three benchmarks: "job", "tpcds",
// "stack".
func LoadWorkload(name string, opts WorkloadOptions) (*Workload, error) {
	return workload.Load(name, opts)
}

// WorkloadNames lists the available benchmarks.
func WorkloadNames() []string { return workload.Names() }

// OnlineConfig re-exports the online doctor loop configuration
// (System.EnableOnline).
type OnlineConfig = service.Config

// OnlineStats re-exports the loop's counters (System.OnlineStats).
type OnlineStats = service.Stats

// ServeResult re-exports one served request (System.Serve).
type ServeResult = service.Result

// DriftDetectorConfig re-exports the rolling drift-detector tuning.
type DriftDetectorConfig = service.DetectorConfig

// DefaultOnlineConfig returns the serving-oriented loop configuration:
// 32-record rolling window, 1.15 mean regression threshold, 60% novelty
// fraction, background retraining.
func DefaultOnlineConfig() OnlineConfig { return service.DefaultConfig() }

// DriftKind re-exports the drift scenario kinds ("template-mix",
// "selectivity", "novel-template").
type DriftKind = workload.DriftKind

// DriftOptions re-exports drift scenario generation options.
type DriftOptions = workload.DriftOptions

// DriftScenario re-exports a generated two-phase drifted query stream.
type DriftScenario = workload.DriftScenario

// LoadDrift generates a deterministic drift scenario over a loaded workload.
func LoadDrift(w *Workload, kind DriftKind, opts DriftOptions) (*DriftScenario, error) {
	return workload.Drift(w, kind, opts)
}

// DriftKinds lists the available drift scenario kinds.
func DriftKinds() []DriftKind { return workload.DriftKinds() }
