// Package foss is a from-scratch Go reproduction of "FOSS: A Self-Learned
// Doctor for Query Optimizer" (ICDE 2024). FOSS starts from the plan a
// traditional cost-based optimizer produced and repairs it with a short
// sequence of fine-grained edits — swapping two tables in the left-deep join
// order or overriding a join's physical method — selected by a PPO-trained
// agent. An asymmetric advantage model compares candidate plans pairwise,
// acting both as the plan selector at inference time and as the reward
// indicator of a simulated environment that lets the agent bootstrap on
// cheap experience.
//
// The doctor is backend-generic, mirroring the paper's PostgreSQL and
// openGauss validation targets: every interaction with the underlying engine
// goes through the Backend interface (expert plan enumeration, hint-steered
// replanning, execution), and two backends ship — "selinger" (the default
// synthetic engine) and "gaussim" (a hash-centric engine with a different
// cost model and operator preferences).
//
// The package bundles everything the paper depends on, implemented in pure
// Go: a column-store engine with a deterministic latency model, a
// Selinger-style optimizer with hint steering, histogram statistics with
// realistic estimation error, a tensor autograd library with
// masked-attention transformers, PPO, three synthetic benchmarks (JOB,
// TPC-DS, Stack), and the four learned-optimizer baselines the paper
// compares against (Bao, Balsa, Loger, HybridQO).
//
// Quick start (the context-aware API; the old Optimize(q)/Serve(q)/Train
// signatures remain as thin deprecated wrappers):
//
//	ctx := context.Background()
//	w, _ := foss.LoadWorkload("job", foss.WorkloadOptions{Seed: 1, Scale: 0.5})
//	sys, _ := foss.New(w, foss.DefaultConfig())
//	_ = sys.TrainContext(ctx, nil)
//	plan, optTime, _ := sys.OptimizeContext(ctx, w.Test[0])
//	latency := sys.Execute(plan)
//
//	// batched serving: one stacked AAM scoring pass across the batch
//	plans, _, _ := sys.OptimizeBatch(ctx, w.Test)
//
// Targeting a different optimizer backend:
//
//	be, _ := foss.NewBackend("gaussim", w)
//	sys, _ := foss.New(w, foss.DefaultConfig(), foss.WithBackend(be))
//
// Online doctor loop (the paper's self-learned doctor kept learning after
// deployment — drift-aware background retraining with zero-downtime model
// hot-swap):
//
//	_ = sys.EnableOnline(foss.DefaultOnlineConfig())
//	for _, q := range liveQueries {
//		res, _ := sys.ServeContext(ctx, q)    // lock-free w.r.t. retraining
//		lat := sys.Execute(res.Eval.CP)
//		_ = sys.Record(q, res.Eval, lat)      // feedback -> buffer -> drift -> retrain
//	}
//	fmt.Println(sys.OnlineStats())            // drift/retrain/swap counters
//
// The same loop is reachable over the wire: cmd/fossd -serve-http exposes
// /v1/optimize, /v1/feedback, /v1/stats, and /v1/checkpoint as a JSON HTTP
// service (see internal/service and the README's endpoint reference).
//
// Observability rides on the same surface: GET /metrics is a dependency-free
// Prometheus text scrape (per-tier serve-latency histograms plus every loop
// counter; tenant-labeled under the fleet server), GET /v1/explain/{serve_id}
// reconstructs why a served plan won (served vs expert, hint diff, tier
// decision, per-candidate AAM scores), and GET /v1/advisor reports the async
// advisor's structured findings — see AdvisorConfig and Finding.
//
// Durable serving: attach a state directory and the doctor's accumulated
// experience survives restarts — every Record journals to a feedback WAL
// before ingestion, checkpoints land atomically on every hot-swap, and a
// warm restart recovers model weights, execution buffer, and epoch from
// disk, serving bit-identical plans with no retraining:
//
//	st, _ := foss.OpenStateDir("state")
//	cfg := foss.DefaultOnlineConfig()
//	info, _ := sys.RecoverOnline(cfg, st) // warm start restores; cold start just attaches
//
// Snapshots travel in a versioned, checksummed, backend-tagged envelope:
// Load rejects cross-backend blobs (ErrBackendMismatch), version skew
// (ErrSnapshotVersion), and corruption (ErrSnapshotCorrupt) instead of
// restoring weights into a system they were never trained for.
//
// Tiered serving: repeat traffic can skip the model entirely. With
// OnlineConfig.Tier enabled the loop fronts tier 2 (the full AAM pass) with
// a learned router over two fast paths — tier 0, a persistent plan memory
// that pins a fingerprint's best plan after it beats the expert baseline
// PromoteAfter times (a hit is one allocation-free map lookup), and tier 1,
// a statistics-free greedy join orderer for fingerprints with history but no
// pin. A regression past EscalateRatio escalates the fingerprint back to
// tier 2, a hot-swap invalidates every pin in the same step that bumps the
// epoch, and pins survive restarts through the checkpoint. Decisions are a
// pure function of the feedback stream, so replays reproduce them exactly:
//
//	cfg := foss.DefaultOnlineConfig()
//	cfg.Tier = foss.TierConfig{Memory: true, Greedy: true}
//	_ = sys.EnableOnline(cfg)
//	res, _ := sys.ServeContext(ctx, q) // res.Tier: 0, 1, or 2
//
// Multi-tenant serving: a ShardRouter turns one process into a fleet of
// doctors — one full shard (system, loop, plan cache, state directory) per
// tenant, routed by tenant key, sharing one bounded worker pool:
//
//	router, _ := foss.NewShardRouter(ctx, foss.ShardConfig{
//		System:   foss.DefaultConfig(),
//		Loop:     foss.DefaultOnlineConfig(),
//		StateDir: "state", Workers: 4,
//	}, []foss.TenantSpec{{Name: "acme"}, {Name: "globex", Backend: "gaussim"}})
//	sh, _ := router.Get("acme")
//	res, _ := sh.Serve(ctx, q)
//	defer router.Close(ctx) // drain: final checkpoint per tenant, locks released
//
// Every doctor has a lossless shutdown path: System.Close (and
// ShardRouter.Close for fleets) stops intake, awaits — or past the context
// deadline, cancels — in-flight background retrains, and takes a final
// checkpoint per store, so a SIGTERM deploy warm-restarts bit-identically,
// not just a kill -9. State directories are single-writer: a second Open of
// a live one fails with ErrStoreLocked instead of corrupting the WAL.
//
// Failures are classified by sentinel errors (ErrNoPlan, ErrNotOnline, ...)
// that errors.Is recognizes through every wrapping layer.
package foss

import (
	"context"

	"github.com/foss-db/foss/internal/backend"
	"github.com/foss-db/foss/internal/core"
	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/service"
	"github.com/foss-db/foss/internal/shard"
	"github.com/foss-db/foss/internal/store"
	"github.com/foss-db/foss/internal/tier"
	"github.com/foss-db/foss/internal/workload"
)

// Config re-exports the FOSS system configuration.
type Config = core.Config

// System re-exports the assembled FOSS system.
type System = core.System

// Workload re-exports a loaded benchmark.
type Workload = workload.Workload

// WorkloadOptions re-exports workload generation options.
type WorkloadOptions = workload.Options

// Backend re-exports the pluggable optimizer-backend contract: a backend
// supplies schema and statistics, enumerates its native expert plan,
// completes hint-steered replans, and executes plans for observed latency.
// The doctor above it is backend-generic.
type Backend = backend.Backend

// Option re-exports the functional options accepted by New.
type Option = core.Option

// WithBackend builds the system over an explicit backend instead of the
// default Selinger engine.
func WithBackend(b Backend) Option { return core.WithBackend(b) }

// WithWorkers overrides Config.Workers.
func WithWorkers(n int) Option { return core.WithWorkers(n) }

// WithPlanCache overrides Config.PlanCache.
func WithPlanCache(entries int) Option { return core.WithPlanCache(entries) }

// DefaultConfig returns the paper-mirroring configuration at repository
// scale.
func DefaultConfig() Config { return core.DefaultConfig() }

// New assembles a FOSS system over a loaded workload. Functional options
// select the backend and override serving-oriented tunables.
func New(w *Workload, cfg Config, opts ...Option) (*System, error) { return core.New(w, cfg, opts...) }

// NewBackend constructs a registered backend ("selinger", "gaussim") over a
// loaded workload's data and statistics.
func NewBackend(name string, w *Workload) (Backend, error) {
	return backend.New(name, w.DB, w.Stats)
}

// BackendNames lists the registered backends.
func BackendNames() []string { return backend.Names() }

// LoadWorkload generates one of the three benchmarks: "job", "tpcds",
// "stack".
func LoadWorkload(name string, opts WorkloadOptions) (*Workload, error) {
	return workload.Load(name, opts)
}

// WorkloadNames lists the available benchmarks.
func WorkloadNames() []string { return workload.Names() }

// Sentinel errors of the public API; match with errors.Is.
var (
	ErrBadConfig       = fosserr.ErrBadConfig
	ErrUnknownWorkload = fosserr.ErrUnknownWorkload
	ErrUnknownBackend  = fosserr.ErrUnknownBackend
	ErrNoPlan          = fosserr.ErrNoPlan
	ErrNoCandidate     = fosserr.ErrNoCandidate
	ErrNotOnline       = fosserr.ErrNotOnline
	ErrBackendMismatch = fosserr.ErrBackendMismatch
	ErrSnapshotVersion = fosserr.ErrSnapshotVersion
	ErrSnapshotCorrupt = fosserr.ErrSnapshotCorrupt
	ErrNoStore         = fosserr.ErrNoStore
	ErrLoopClosed      = fosserr.ErrLoopClosed
	ErrServeIDExpired  = fosserr.ErrServeIDExpired
	ErrStoreLocked     = fosserr.ErrStoreLocked
	ErrUnknownTenant   = fosserr.ErrUnknownTenant
	ErrNotLeader       = fosserr.ErrNotLeader
	ErrCatalogStale    = fosserr.ErrCatalogStale
	ErrCatalogMismatch = fosserr.ErrCatalogMismatch
)

// StateStore re-exports the durability store: the state directory holding
// versioned model checkpoints, the recovery manifest, and the append-only
// feedback WAL. Attach one via OnlineConfig.Store (journal + checkpoint a
// live loop) or System.RecoverOnline (warm restart from disk).
type StateStore = store.Store

// RecoveryInfo re-exports what System.RecoverOnline restored from disk.
type RecoveryInfo = core.RecoveryInfo

// OpenStateDir opens (creating if needed) a durable state directory.
func OpenStateDir(dir string) (*StateStore, error) { return store.Open(dir) }

// ReadStateStore re-exports the read-only view of a state directory:
// follower replicas tail a live leader's checkpoints through one without
// contending for the writer lock (readers share LOCK.read; writers still
// exclude each other on LOCK).
type ReadStateStore = store.ReadStore

// OpenStateDirReadOnly opens an existing state directory read-only. Any
// number of readers coexist with one live writer; a second writer is still
// refused with ErrStoreLocked.
func OpenStateDirReadOnly(dir string) (*ReadStateStore, error) { return store.OpenReadOnly(dir) }

// OnlineConfig re-exports the online doctor loop configuration
// (System.EnableOnline).
type OnlineConfig = service.Config

// OnlineStats re-exports the loop's counters (System.OnlineStats).
type OnlineStats = service.Stats

// ServeResult re-exports one served request (System.ServeContext).
type ServeResult = service.Result

// DriftDetectorConfig re-exports the rolling drift-detector tuning.
type DriftDetectorConfig = service.DetectorConfig

// TierConfig re-exports the tiered-serving configuration
// (OnlineConfig.Tier): tier-0 plan memory, the tier-1 greedy micro-planner,
// the promotion win streak, and the escalation ratio. The zero value
// disables tiering. Per-tier serve counters and latencies appear in
// OnlineStats (Tier0Hits, Tier1Hits, Tier2Serves, Promotions, Demotions,
// PinnedPlans), and every ServeResult carries the tier that answered it.
type TierConfig = tier.Config

// AdvisorConfig re-exports the async self-diagnosis advisor's tuning
// (OnlineConfig.Advisor). When enabled, the loop runs a background analyst
// over the feedback stream — the record path pays one non-blocking channel
// send — emitting structured Findings surfaced by GET /v1/advisor and
// Loop.AdvisorFindings.
type AdvisorConfig = service.AdvisorConfig

// Finding re-exports one advisor emission: a kind (FindingRegression,
// FindingPlanThrash, FindingCooldownBlocked), the epoch and offending
// fingerprint where relevant, and a human-readable detail line.
type Finding = service.Finding

// Advisor finding kinds.
const (
	// FindingRegression: a sustained fraction of recent traffic ran slower
	// than the expert baseline.
	FindingRegression = service.FindingRegression
	// FindingPlanThrash: a fingerprint keeps cycling through tier-0
	// promotion and demotion.
	FindingPlanThrash = service.FindingPlanThrash
	// FindingCooldownBlocked: the drift detector keeps firing while the
	// retrain cooldown suppresses the trigger.
	FindingCooldownBlocked = service.FindingCooldownBlocked
)

// HTTPOptions re-exports the wire-surface configuration (NewHTTPServer).
type HTTPOptions = service.HTTPOptions

// NewHTTPServer exposes a system's online loop as the JSON HTTP service
// (/v1/optimize, /v1/feedback, /v1/stats). EnableOnline must have been
// called.
func NewHTTPServer(sys *System, opts HTTPOptions) (*service.HTTPServer, error) {
	lp := sys.Online()
	if lp == nil {
		return nil, ErrNotOnline
	}
	return service.NewHTTPServer(lp, opts), nil
}

// DefaultOnlineConfig returns the serving-oriented loop configuration:
// 32-record rolling window, 1.15 mean regression threshold, 60% novelty
// fraction, background retraining.
func DefaultOnlineConfig() OnlineConfig { return service.DefaultConfig() }

// ---- multi-tenant sharded serving ----

// TenantSpec re-exports one shard's identity: tenant name plus the
// workload/backend/scale/seed its doctor is generated over (zero fields
// inherit ShardConfig.Defaults; a zero seed derives a stable per-tenant
// seed from the name).
type TenantSpec = shard.TenantSpec

// ShardConfig re-exports the fleet configuration: per-shard system and loop
// templates, the state-dir root (each tenant gets <StateDir>/<tenant>/),
// and the shared worker-pool width.
type ShardConfig = shard.Config

// ShardRouter re-exports the tenant router: N independent doctor shards
// behind one Get/Create/Close surface, also implementing the HTTP
// TenantRegistry.
type ShardRouter = shard.Router

// Shard re-exports one tenant's doctor (system, workload, wire surface,
// private store).
type Shard = shard.Shard

// NewShardRouter boots a fleet: one shard per spec — trained, or
// warm-started from its own checkpoint when the state dir holds one.
func NewShardRouter(ctx context.Context, cfg ShardConfig, specs []TenantSpec) (*ShardRouter, error) {
	return shard.NewRouter(ctx, cfg, specs)
}

// TenantRegistry re-exports the surface NewTenantHTTPServer serves —
// ShardRouter implements it.
type TenantRegistry = service.TenantRegistry

// WireTenantSpec re-exports the POST /v1/tenants request body.
type WireTenantSpec = service.WireTenantSpec

// NewTenantHTTPServer exposes a tenant registry (typically a ShardRouter)
// as the multi-tenant JSON HTTP service: /v1/t/{tenant}/optimize|feedback|
// stats|checkpoint, the aggregate /v1/stats roll-up, and GET|POST
// /v1/tenants.
func NewTenantHTTPServer(reg TenantRegistry) *service.MultiHTTPServer {
	return service.NewMultiHTTPServer(reg)
}

// DriftKind re-exports the drift scenario kinds ("template-mix",
// "selectivity", "novel-template").
type DriftKind = workload.DriftKind

// DriftOptions re-exports drift scenario generation options.
type DriftOptions = workload.DriftOptions

// DriftScenario re-exports a generated two-phase drifted query stream.
type DriftScenario = workload.DriftScenario

// LoadDrift generates a deterministic drift scenario over a loaded workload.
func LoadDrift(w *Workload, kind DriftKind, opts DriftOptions) (*DriftScenario, error) {
	return workload.Drift(w, kind, opts)
}

// DriftKinds lists the available drift scenario kinds.
func DriftKinds() []DriftKind { return workload.DriftKinds() }
