// Package experiments reproduces every table and figure of the paper's
// evaluation section on this repository's substrate: Table I (WRL/GMRL and
// workload runtime for six optimizers on three workloads), Fig. 4 (relative
// speedups), Fig. 5 (training curves), Fig. 6 (optimization-time box plots),
// Fig. 7 (step distribution of known-best plans under different maxsteps),
// Fig. 8 (ranked time savings of known-best plans), Table II and Fig. 9
// (design-choice ablations).
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/foss-db/foss/internal/backend"
	"github.com/foss-db/foss/internal/baselines/balsa"
	"github.com/foss-db/foss/internal/baselines/bao"
	"github.com/foss-db/foss/internal/baselines/hybridqo"
	"github.com/foss-db/foss/internal/baselines/loger"
	"github.com/foss-db/foss/internal/core"
	"github.com/foss-db/foss/internal/learner"
	"github.com/foss-db/foss/internal/metrics"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/workload"
)

// Method is the uniform view of an optimizer under evaluation.
type Method interface {
	Name() string
	// Train fits the method on its workload's training split. onStep fires
	// after each internal pass/iteration (training-curve hook).
	Train(onStep func(step int)) error
	// Plan produces the execution plan and the optimization time.
	Plan(q *query.Query) (*plan.CP, time.Duration, error)
	// KnownBest reports the best executed latency per query id observed
	// during training (nil if the method executes nothing).
	KnownBest() map[string]float64
	// TrainingTime is cumulative wall-clock spent in Train.
	TrainingTime() time.Duration
}

// Opts sizes an experiment run.
type Opts struct {
	Scale float64
	Seed  int64
	Fast  bool // reduced training budgets (tests, quick benches)
	// Backend selects the optimizer backend under evaluation ("" = the
	// default "selinger"; "gaussim" reruns an experiment on the openGauss-
	// flavored engine, mirroring the paper's cross-DBMS validation).
	Backend string
}

// NewBackend builds the backend an experiment targets.
func (o Opts) NewBackend(w *workload.Workload) (backend.Backend, error) {
	return backend.New(o.Backend, w.DB, w.Stats)
}

// ExpertName names the expert baseline after the engine it fronts, the way
// the paper does (PostgreSQL for the default engine, openGauss for the
// port).
func ExpertName(backendName string) string {
	if backendName == "gaussim" {
		return "openGauss"
	}
	return "PostgreSQL"
}

// DefaultOpts is the standard configuration used by cmd/fossbench.
func DefaultOpts() Opts { return Opts{Scale: 0.5, Seed: 1} }

// ---- method adapters ----

type pgMethod struct {
	name string
	be   backend.Backend
	w    *workload.Workload
	kb   map[string]float64
}

// NewPostgreSQL wraps the default backend's native optimizer as the expert
// baseline.
func NewPostgreSQL(w *workload.Workload) Method {
	return NewExpert(ExpertName(""), backend.NewSelinger(w.DB, w.Stats), w)
}

// NewExpert wraps any backend's native optimizer as the expert baseline.
func NewExpert(name string, be backend.Backend, w *workload.Workload) Method {
	return &pgMethod{name: name, be: be, w: w, kb: map[string]float64{}}
}

func (p *pgMethod) Name() string                  { return p.name }
func (p *pgMethod) Train(func(int)) error         { return nil }
func (p *pgMethod) TrainingTime() time.Duration   { return 0 }
func (p *pgMethod) KnownBest() map[string]float64 { return p.kb }

func (p *pgMethod) Plan(q *query.Query) (*plan.CP, time.Duration, error) {
	start := time.Now()
	cp, err := p.be.Plan(q)
	return cp, time.Since(start), err
}

type fossMethod struct {
	sys *core.System
}

// NewFOSS wraps a core.System as a Method.
func NewFOSS(sys *core.System) Method { return &fossMethod{sys} }

func (f *fossMethod) Name() string { return "FOSS" }

func (f *fossMethod) Train(onStep func(int)) error {
	return f.sys.TrainContext(context.Background(), func(st learner.IterStats) {
		if onStep != nil {
			onStep(st.Iter)
		}
	})
}

func (f *fossMethod) Plan(q *query.Query) (*plan.CP, time.Duration, error) {
	return f.sys.OptimizeContext(context.Background(), q)
}

func (f *fossMethod) KnownBest() map[string]float64 {
	out := map[string]float64{}
	for qid, pe := range f.sys.Learner.KnownBest() {
		out[qid] = pe.Latency
	}
	return out
}

func (f *fossMethod) TrainingTime() time.Duration { return f.sys.TrainingTime() }

type baoMethod struct{ b *bao.Bao }

// NewBao wraps Bao.
func NewBao(b *bao.Bao) Method { return &baoMethod{b} }

func (m *baoMethod) Name() string { return "Bao" }
func (m *baoMethod) Train(onStep func(int)) error {
	return m.b.Train(onStep)
}
func (m *baoMethod) Plan(q *query.Query) (*plan.CP, time.Duration, error) { return m.b.Plan(q) }
func (m *baoMethod) KnownBest() map[string]float64                        { return m.b.KnownBest() }
func (m *baoMethod) TrainingTime() time.Duration                          { return m.b.TrainingTime() }

type balsaMethod struct{ b *balsa.Balsa }

// NewBalsa wraps Balsa.
func NewBalsa(b *balsa.Balsa) Method { return &balsaMethod{b} }

func (m *balsaMethod) Name() string { return "Balsa" }
func (m *balsaMethod) Train(onStep func(int)) error {
	return m.b.Train(onStep)
}
func (m *balsaMethod) Plan(q *query.Query) (*plan.CP, time.Duration, error) { return m.b.Plan(q) }
func (m *balsaMethod) KnownBest() map[string]float64                        { return m.b.KnownBest() }
func (m *balsaMethod) TrainingTime() time.Duration                          { return m.b.TrainingTime() }

type logerMethod struct{ l *loger.Loger }

// NewLoger wraps Loger.
func NewLoger(l *loger.Loger) Method { return &logerMethod{l} }

func (m *logerMethod) Name() string { return "Loger" }
func (m *logerMethod) Train(onStep func(int)) error {
	return m.l.Train(onStep)
}
func (m *logerMethod) Plan(q *query.Query) (*plan.CP, time.Duration, error) { return m.l.Plan(q) }
func (m *logerMethod) KnownBest() map[string]float64                        { return m.l.KnownBest() }
func (m *logerMethod) TrainingTime() time.Duration                          { return m.l.TrainingTime() }

type hqoMethod struct{ h *hybridqo.HybridQO }

// NewHybridQO wraps HybridQO.
func NewHybridQO(h *hybridqo.HybridQO) Method { return &hqoMethod{h} }

func (m *hqoMethod) Name() string { return "HybridQO" }
func (m *hqoMethod) Train(onStep func(int)) error {
	return m.h.Train(onStep)
}
func (m *hqoMethod) Plan(q *query.Query) (*plan.CP, time.Duration, error) { return m.h.Plan(q) }
func (m *hqoMethod) KnownBest() map[string]float64                        { return m.h.KnownBest() }
func (m *hqoMethod) TrainingTime() time.Duration                          { return m.h.TrainingTime() }

// BuildMethods constructs all six methods over one loaded workload.
func BuildMethods(w *workload.Workload, opts Opts) []Method {
	fossCfg := core.DefaultConfig()
	fossCfg.Seed = opts.Seed
	baoCfg := bao.DefaultConfig()
	balsaCfg := balsa.DefaultConfig()
	logerCfg := loger.DefaultConfig()
	hqoCfg := hybridqo.DefaultConfig()
	baoCfg.Seed, balsaCfg.Seed, logerCfg.Seed, hqoCfg.Seed = opts.Seed, opts.Seed, opts.Seed, opts.Seed
	if opts.Fast {
		fossCfg.Learner.Iterations = 3
		fossCfg.Learner.SimPerIter = 60
		fossCfg.Learner.RealPerIter = 15
		fossCfg.Learner.ValidatePerIter = 15
		baoCfg.PassCount, balsaCfg.PassCount, logerCfg.PassCount, hqoCfg.PassCount = 1, 1, 1, 1
		hqoCfg.Simulations = 15
	} else {
		fossCfg.Learner.Iterations = 8
		fossCfg.Learner.SimPerIter = 180
		fossCfg.Learner.RealPerIter = 30
		fossCfg.Learner.ValidatePerIter = 30
	}
	sys, err := core.New(w, fossCfg)
	if err != nil {
		panic(err)
	}
	return []Method{
		NewPostgreSQL(w),
		NewBao(bao.New(w, baoCfg)),
		NewBalsa(balsa.New(w, balsaCfg)),
		NewLoger(loger.New(w, logerCfg)),
		NewHybridQO(hybridqo.New(w, hqoCfg)),
		NewFOSS(sys),
	}
}

// Evaluate measures a trained method on a query set. Plans are executed with
// a guard timeout of 20× the expert latency (counted at the cap if hit),
// mirroring the paper's TLE handling for runaway learned plans.
func Evaluate(m Method, w *workload.Workload, qs []*query.Query) []metrics.QueryResult {
	return EvaluateOn(backend.NewSelinger(w.DB, w.Stats), m, w, qs)
}

// EvaluateOn is Evaluate against an explicit backend: plans execute on that
// backend's latency surface and the runaway guard comes from its own expert
// plan, so cross-backend comparisons stay apples-to-apples.
func EvaluateOn(be backend.Backend, m Method, w *workload.Workload, qs []*query.Query) []metrics.QueryResult {
	var out []metrics.QueryResult
	for _, q := range qs {
		cp, ot, err := m.Plan(q)
		if err != nil {
			continue
		}
		guard := 0.0
		if ecp, err := be.Plan(q); err == nil {
			guard = be.Execute(ecp, 0).LatencyMs * 20
		}
		res := be.Execute(cp, guard)
		lat := res.LatencyMs
		if res.TimedOut {
			lat = guard
		}
		out = append(out, metrics.QueryResult{QueryID: q.ID, LatencyMs: lat, OptTimeMs: ot.Seconds() * 1000})
	}
	return out
}

// fprintf writes to w, ignoring errors (report sinks are in-memory or stdout).
func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}
