package experiments

import (
	"io"
	"sort"
	"time"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/core"
	"github.com/foss-db/foss/internal/metrics"
	"github.com/foss-db/foss/internal/workload"
)

// TableIRow is one method's measurements on one workload.
type TableIRow struct {
	Method            string
	Workload          string
	WRLTrain, WRLTest float64
	GMRLTrain         float64
	GMRLTest          float64
	RuntimeSec        float64 // total test-workload runtime (ET+OT)
}

// TableI trains all six methods on each workload and reports the paper's
// Table I metrics. Workload names default to all three.
func TableI(out io.Writer, names []string, opts Opts) ([]TableIRow, error) {
	if len(names) == 0 {
		names = workload.Names()
	}
	var rows []TableIRow
	for _, name := range names {
		w, err := workload.Load(name, workload.Options{Seed: opts.Seed, Scale: opts.Scale})
		if err != nil {
			return nil, err
		}
		var expertTrain, expertTest []metrics.QueryResult
		for _, m := range BuildMethods(w, opts) {
			fprintf(out, "# training %s on %s...\n", m.Name(), name)
			if err := m.Train(nil); err != nil {
				fprintf(out, "# %s on %s failed: %v (recorded as TLE)\n", m.Name(), name, err)
				rows = append(rows, TableIRow{Method: m.Name(), Workload: name})
				continue
			}
			trainRes := Evaluate(m, w, w.Train)
			testRes := Evaluate(m, w, w.Test)
			if m.Name() == "PostgreSQL" {
				expertTrain, expertTest = trainRes, testRes
			}
			rows = append(rows, TableIRow{
				Method:     m.Name(),
				Workload:   name,
				WRLTrain:   metrics.WRL(trainRes, expertTrain),
				WRLTest:    metrics.WRL(testRes, expertTest),
				GMRLTrain:  metrics.GMRL(trainRes, expertTrain),
				GMRLTest:   metrics.GMRL(testRes, expertTest),
				RuntimeSec: metrics.TotalRuntime(testRes) / 1000,
			})
		}
	}
	PrintTableI(out, rows)
	return rows, nil
}

// PrintTableI renders rows in the paper's layout.
func PrintTableI(out io.Writer, rows []TableIRow) {
	fprintf(out, "\nTABLE I: WRL / GMRL (train, test) and test-workload runtime\n")
	fprintf(out, "%-11s %-7s %9s %9s %10s %10s %12s\n",
		"Method", "WL", "WRL/train", "WRL/test", "GMRL/train", "GMRL/test", "Runtime(s)")
	for _, r := range rows {
		fprintf(out, "%-11s %-7s %9.2f %9.2f %10.2f %10.2f %12.2f\n",
			r.Method, r.Workload, r.WRLTrain, r.WRLTest, r.GMRLTrain, r.GMRLTest, r.RuntimeSec)
	}
}

// Fig4Row is FOSS's relative speedup versus another method on one workload.
type Fig4Row struct {
	Versus   string
	Workload string
	Speedup  float64 // (other total runtime) / (FOSS total runtime), test split
}

// Fig4 derives the relative-speedup bars of Fig. 4 from Table I rows.
func Fig4(out io.Writer, rows []TableIRow) []Fig4Row {
	fossRT := map[string]float64{}
	for _, r := range rows {
		if r.Method == "FOSS" {
			fossRT[r.Workload] = r.RuntimeSec
		}
	}
	var out4 []Fig4Row
	for _, r := range rows {
		if r.Method == "FOSS" || fossRT[r.Workload] == 0 || r.RuntimeSec == 0 {
			continue
		}
		out4 = append(out4, Fig4Row{Versus: r.Method, Workload: r.Workload, Speedup: r.RuntimeSec / fossRT[r.Workload]})
	}
	fprintf(out, "\nFIG 4: relative speedup of FOSS vs other methods (test runtime ratio)\n")
	for _, r := range out4 {
		fprintf(out, "  %-7s vs %-11s %6.2fx\n", r.Workload, r.Versus, r.Speedup)
	}
	return out4
}

// Fig5Point is one point on a training curve.
type Fig5Point struct {
	Method     string
	Step       int
	ElapsedSec float64
	Speedup    float64 // expert test runtime / method test runtime
}

// Fig5 records test-split speedup-vs-expert after every training pass of
// every learned method on one workload.
func Fig5(out io.Writer, name string, opts Opts) ([]Fig5Point, error) {
	w, err := workload.Load(name, workload.Options{Seed: opts.Seed, Scale: opts.Scale})
	if err != nil {
		return nil, err
	}
	pg := NewPostgreSQL(w)
	expertRes := Evaluate(pg, w, w.Test)
	expertRT := metrics.TotalRuntime(expertRes)
	var points []Fig5Point
	for _, m := range BuildMethods(w, opts) {
		if m.Name() == "PostgreSQL" {
			continue
		}
		start := time.Now()
		mm := m
		err := mm.Train(func(step int) {
			res := Evaluate(mm, w, w.Test)
			sp := expertRT / metrics.TotalRuntime(res)
			points = append(points, Fig5Point{Method: mm.Name(), Step: step,
				ElapsedSec: time.Since(start).Seconds(), Speedup: sp})
		})
		if err != nil {
			fprintf(out, "# %s TLE: %v\n", mm.Name(), err)
		}
	}
	fprintf(out, "\nFIG 5: training curves on %s (speedup vs expert, test split)\n", name)
	for _, p := range points {
		fprintf(out, "  %-11s step=%d t=%6.1fs speedup=%5.2fx\n", p.Method, p.Step, p.ElapsedSec, p.Speedup)
	}
	return points, nil
}

// Fig6Row is one method's optimization-time distribution on the full JOB.
type Fig6Row struct {
	Method string
	Box    metrics.BoxStats // milliseconds
}

// Fig6 measures optimization time (SQL in → plan out) per method on the
// entire workload, after training.
func Fig6(out io.Writer, name string, opts Opts) ([]Fig6Row, error) {
	w, err := workload.Load(name, workload.Options{Seed: opts.Seed, Scale: opts.Scale})
	if err != nil {
		return nil, err
	}
	var rows []Fig6Row
	for _, m := range BuildMethods(w, opts) {
		if err := m.Train(nil); err != nil {
			continue
		}
		var times []float64
		for _, q := range w.All() {
			if _, ot, err := m.Plan(q); err == nil {
				times = append(times, ot.Seconds()*1000)
			}
		}
		rows = append(rows, Fig6Row{Method: m.Name(), Box: metrics.Box(times)})
	}
	fprintf(out, "\nFIG 6: optimization time on %s (ms)\n", name)
	fprintf(out, "%-11s %8s %8s %8s %8s %8s\n", "Method", "min", "p25", "median", "p75", "max")
	for _, r := range rows {
		fprintf(out, "%-11s %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			r.Method, r.Box.Min, r.Box.P25, r.Box.Median, r.Box.P75, r.Box.Max)
	}
	return rows, nil
}

// Fig7Row is the step distribution of known-best plans for one maxsteps.
type Fig7Row struct {
	MaxSteps int
	Counts   []int // Counts[s] = queries whose known best plan took s steps
}

// Fig7 trains FOSS with maxsteps ∈ {2,3,4,5} and reports where the known
// best plans sit in the edit-step distribution.
func Fig7(out io.Writer, name string, opts Opts) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, ms := range []int{2, 3, 4, 5} {
		w, err := workload.Load(name, workload.Options{Seed: opts.Seed, Scale: opts.Scale})
		if err != nil {
			return nil, err
		}
		cfg := fossConfig(opts)
		cfg.MaxSteps = ms
		sys, err := core.New(w, cfg)
		if err != nil {
			return nil, err
		}
		if err := sys.Train(nil); err != nil {
			return nil, err
		}
		counts := make([]int, ms+1)
		for _, pe := range sys.Learner.KnownBest() {
			if pe.Step <= ms {
				counts[pe.Step]++
			}
		}
		rows = append(rows, Fig7Row{MaxSteps: ms, Counts: counts})
	}
	fprintf(out, "\nFIG 7: steps distribution of known best plans per maxsteps (%s)\n", name)
	for _, r := range rows {
		fprintf(out, "  maxsteps=%d:", r.MaxSteps)
		for s, c := range r.Counts {
			fprintf(out, " step%d=%d", s, c)
		}
		fprintf(out, "\n")
	}
	return rows, nil
}

// Fig8Row is one method's ranked time-savings curve.
type Fig8Row struct {
	Method  string
	Savings []float64 // sorted descending, one entry per query
}

// Fig8 trains each method on the full workload and ranks the time-savings
// ratio of its known best plan per query relative to the original plans.
func Fig8(out io.Writer, name string, opts Opts) ([]Fig8Row, error) {
	w, err := workload.Load(name, workload.Options{Seed: opts.Seed, Scale: opts.Scale})
	if err != nil {
		return nil, err
	}
	pg := NewPostgreSQL(w)
	origLat := map[string]float64{}
	for _, r := range Evaluate(pg, w, w.All()) {
		origLat[r.QueryID] = r.LatencyMs
	}
	var rows []Fig8Row
	for _, m := range BuildMethods(w, opts) {
		if m.Name() == "PostgreSQL" {
			continue
		}
		if err := m.Train(nil); err != nil {
			fprintf(out, "# %s TLE: %v\n", m.Name(), err)
			continue
		}
		kb := m.KnownBest()
		var savings []float64
		for qid, base := range origLat {
			lat, ok := kb[qid]
			if !ok {
				lat = base // never executed a better plan: savings 0
			}
			savings = append(savings, metrics.SavingsRatio(base, lat))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(savings)))
		rows = append(rows, Fig8Row{Method: m.Name(), Savings: savings})
	}
	fprintf(out, "\nFIG 8: ranked time-savings ratios of known best plans (%s)\n", name)
	for _, r := range rows {
		n25, n75 := 0, 0
		for _, s := range r.Savings {
			if s >= 0.25 {
				n25++
			}
			if s >= 0.75 {
				n75++
			}
		}
		fprintf(out, "  %-11s queries with >=25%% savings: %d, >=75%%: %d (of %d)\n",
			r.Method, n25, n75, len(r.Savings))
	}
	return rows, nil
}

func fossConfig(opts Opts) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = opts.Seed
	cfg.StateNet = aam.StateNetConfig{DModel: 32, Heads: 2, Layers: 1, FFDim: 64, StateDim: 32}
	if opts.Fast {
		cfg.Learner.Iterations = 3
		cfg.Learner.SimPerIter = 60
		cfg.Learner.RealPerIter = 15
		cfg.Learner.ValidatePerIter = 15
	} else {
		cfg.Learner.Iterations = 8
		cfg.Learner.SimPerIter = 180
		cfg.Learner.RealPerIter = 30
		cfg.Learner.ValidatePerIter = 30
	}
	return cfg
}
