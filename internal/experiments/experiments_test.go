package experiments

import (
	"io"
	"strings"
	"testing"

	"github.com/foss-db/foss/internal/metrics"
	"github.com/foss-db/foss/internal/workload"
)

// tinyOpts keeps experiment smoke tests to a few seconds each.
func tinyOpts() Opts { return Opts{Scale: 0.08, Seed: 1, Fast: true} }

func TestBuildMethodsNamesAndOrder(t *testing.T) {
	w := loadTiny(t)
	ms := BuildMethods(w, tinyOpts())
	want := []string{"PostgreSQL", "Bao", "Balsa", "Loger", "HybridQO", "FOSS"}
	if len(ms) != len(want) {
		t.Fatalf("%d methods, want %d", len(ms), len(want))
	}
	for i, m := range ms {
		if m.Name() != want[i] {
			t.Fatalf("method %d = %s, want %s", i, m.Name(), want[i])
		}
	}
}

func loadTiny(t *testing.T) *workload.Workload {
	t.Helper()
	o := tinyOpts()
	w, err := workload.Load("job", workload.Options{Seed: o.Seed, Scale: o.Scale})
	if err != nil {
		t.Fatal(err)
	}
	w.Train = w.Train[:15]
	w.Test = w.Test[:6]
	return w
}

func TestEvaluateProducesResults(t *testing.T) {
	w := loadTiny(t)
	pg := NewPostgreSQL(w)
	res := Evaluate(pg, w, w.Test)
	if len(res) != len(w.Test) {
		t.Fatalf("evaluated %d of %d queries", len(res), len(w.Test))
	}
	for _, r := range res {
		if r.LatencyMs <= 0 {
			t.Fatalf("%s: non-positive latency", r.QueryID)
		}
	}
}

func TestPostgresSelfWRLIsOne(t *testing.T) {
	w := loadTiny(t)
	pg := NewPostgreSQL(w)
	a := Evaluate(pg, w, w.Test)
	b := Evaluate(pg, w, w.Test)
	// GMRL of identical latency sets must be exactly 1 (OT may differ
	// between runs; GMRL excludes it)
	g := metrics.GMRL(a, b)
	if g < 0.999 || g > 1.001 {
		t.Fatalf("expert self-GMRL = %f", g)
	}
}

func TestFig4Derivation(t *testing.T) {
	rows := []TableIRow{
		{Method: "PostgreSQL", Workload: "job", RuntimeSec: 100},
		{Method: "Bao", Workload: "job", RuntimeSec: 30},
		{Method: "FOSS", Workload: "job", RuntimeSec: 20},
	}
	var sb strings.Builder
	out := Fig4(&sb, rows)
	if len(out) != 2 {
		t.Fatalf("fig4 rows = %d", len(out))
	}
	for _, r := range out {
		switch r.Versus {
		case "PostgreSQL":
			if r.Speedup != 5 {
				t.Fatalf("speedup vs pg = %f", r.Speedup)
			}
		case "Bao":
			if r.Speedup != 1.5 {
				t.Fatalf("speedup vs bao = %f", r.Speedup)
			}
		}
	}
}

func TestAblationConfigsDiffer(t *testing.T) {
	base := ablationConfig(Maxsteps3, tinyOpts())
	for _, ab := range AllAblations() {
		cfg := ablationConfig(ab, tinyOpts())
		switch ab {
		case Maxsteps2:
			if cfg.MaxSteps != 2 {
				t.Fatal("maxsteps2 wrong")
			}
		case Maxsteps5:
			if cfg.MaxSteps != 5 {
				t.Fatal("maxsteps5 wrong")
			}
		case OffSimulated:
			if !cfg.DisableSimulatedEnv {
				t.Fatal("off-simulated wrong")
			}
		case OffPenalty:
			if !cfg.DisablePenalty {
				t.Fatal("off-penalty wrong")
			}
		case OffValidation:
			if !cfg.DisableValidation {
				t.Fatal("off-validation wrong")
			}
		case TwoAgents:
			if cfg.Agents != 2 {
				t.Fatal("two-agents wrong")
			}
		}
	}
	if base.MaxSteps != 3 {
		t.Fatal("default maxsteps wrong")
	}
}

func TestTableISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table I run")
	}
	rows, err := TableI(io.Discard, []string{"job"}, tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("Table I rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Method == "PostgreSQL" && (r.WRLTest < 0.99 || r.WRLTest > 1.01) {
			t.Fatalf("expert WRL vs itself = %f", r.WRLTest)
		}
	}
}
