package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/foss-db/foss/internal/core"
	"github.com/foss-db/foss/internal/learner"
	"github.com/foss-db/foss/internal/metrics"
	"github.com/foss-db/foss/internal/workload"
)

// AblationName identifies a Table II configuration.
type AblationName string

// Table II configurations.
const (
	Maxsteps2     AblationName = "2-Maxsteps"
	Maxsteps3     AblationName = "3-Maxsteps (FOSS)"
	Maxsteps4     AblationName = "4-Maxsteps"
	Maxsteps5     AblationName = "5-Maxsteps"
	OffSimulated  AblationName = "Off-Simulated"
	OffPenalty    AblationName = "Off-Penalty"
	OffValidation AblationName = "Off-Validation"
	TwoAgents     AblationName = "2-Agents"
)

// AllAblations lists Table II's rows in order.
func AllAblations() []AblationName {
	return []AblationName{
		Maxsteps2, Maxsteps3, Maxsteps4, Maxsteps5,
		OffSimulated, OffPenalty, OffValidation, TwoAgents,
	}
}

// ablationConfig maps a name to a core.Config.
func ablationConfig(name AblationName, opts Opts) core.Config {
	cfg := fossConfig(opts)
	switch name {
	case Maxsteps2:
		cfg.MaxSteps = 2
	case Maxsteps3:
		cfg.MaxSteps = 3
	case Maxsteps4:
		cfg.MaxSteps = 4
	case Maxsteps5:
		cfg.MaxSteps = 5
	case OffSimulated:
		cfg.DisableSimulatedEnv = true
		// the paper reduces episodes when every interaction is real
		cfg.Learner.SimPerIter = 0
	case OffPenalty:
		cfg.DisablePenalty = true
	case OffValidation:
		cfg.DisableValidation = true
	case TwoAgents:
		cfg.Agents = 2
	}
	return cfg
}

// TableIIRow is one ablation's result.
type TableIIRow struct {
	Config       AblationName
	TrainTimeSec float64
	OptTimeMs    float64 // mean optimization time per query
	GMRL         float64 // on the entire workload (paper's Table II protocol)
}

// TableII runs all Table II ablations on one workload (the paper uses JOB).
func TableII(out io.Writer, name string, opts Opts) ([]TableIIRow, error) {
	var rows []TableIIRow
	for _, ab := range AllAblations() {
		row, _, err := RunAblation(out, name, ab, opts, false)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	PrintTableII(out, rows)
	return rows, nil
}

// RunAblation trains one configuration and measures it on the entire
// workload. If curve is true, per-iteration GMRL checkpoints are returned
// (Fig. 9).
func RunAblation(out io.Writer, name string, ab AblationName, opts Opts, curve bool) (TableIIRow, []Fig9Point, error) {
	w, err := workload.Load(name, workload.Options{Seed: opts.Seed, Scale: opts.Scale})
	if err != nil {
		return TableIIRow{}, nil, err
	}
	cfg := ablationConfig(ab, opts)
	be, err := opts.NewBackend(w)
	if err != nil {
		return TableIIRow{}, nil, err
	}
	sys, err := core.New(w, cfg, core.WithBackend(be))
	if err != nil {
		return TableIIRow{}, nil, err
	}
	m := NewFOSS(sys)
	pg := NewExpert(ExpertName(opts.Backend), be, w)
	expert := EvaluateOn(be, pg, w, w.All())

	var points []Fig9Point
	trainStart := time.Now()
	err = sys.Train(func(st learner.IterStats) {
		if !curve {
			return
		}
		res := EvaluateOn(be, m, w, w.All())
		points = append(points, Fig9Point{
			Config:     ab,
			Iter:       st.Iter,
			ElapsedSec: time.Since(trainStart).Seconds(),
			GMRL:       metrics.GMRL(res, expert),
		})
	})
	if err != nil {
		return TableIIRow{}, nil, fmt.Errorf("ablation %s: %w", ab, err)
	}

	res := EvaluateOn(be, m, w, w.All())
	meanOpt := 0.0
	for _, r := range res {
		meanOpt += r.OptTimeMs
	}
	if len(res) > 0 {
		meanOpt /= float64(len(res))
	}
	row := TableIIRow{
		Config:       ab,
		TrainTimeSec: sys.TrainingTime().Seconds(),
		OptTimeMs:    meanOpt,
		GMRL:         metrics.GMRL(res, expert),
	}
	return row, points, nil
}

// PrintTableII renders Table II.
func PrintTableII(out io.Writer, rows []TableIIRow) {
	fprintf(out, "\nTABLE II: design-choice configurations\n")
	fprintf(out, "%-20s %14s %18s %8s\n", "Experiment", "TrainTime(s)", "OptTime(ms/query)", "GMRL")
	for _, r := range rows {
		fprintf(out, "%-20s %14.1f %18.2f %8.3f\n", r.Config, r.TrainTimeSec, r.OptTimeMs, r.GMRL)
	}
}

// Fig9Point is one checkpoint of a GMRL-vs-training curve.
type Fig9Point struct {
	Config     AblationName
	Iter       int
	ElapsedSec float64
	GMRL       float64
}

// Fig9 produces GMRL training curves for the ablation configurations.
func Fig9(out io.Writer, name string, opts Opts, configs []AblationName) ([]Fig9Point, error) {
	if len(configs) == 0 {
		configs = AllAblations()
	}
	var all []Fig9Point
	for _, ab := range configs {
		_, pts, err := RunAblation(out, name, ab, opts, true)
		if err != nil {
			return nil, err
		}
		all = append(all, pts...)
	}
	fprintf(out, "\nFIG 9: GMRL during training per configuration (%s)\n", name)
	for _, p := range all {
		fprintf(out, "  %-20s iter=%d t=%6.1fs GMRL=%.3f\n", p.Config, p.Iter, p.ElapsedSec, p.GMRL)
	}
	return all, nil
}
