package rl

import (
	"math"
	"math/rand"
	"testing"

	"github.com/foss-db/foss/internal/nn"
)

// A 5-state chain MDP: states 0..4, actions {0: left, 1: right}; reaching
// state 4 gives reward 1 and ends. Optimal policy always goes right.
type chainEnv struct{ state int }

func (e *chainEnv) reset() int { e.state = 0; return e.state }
func (e *chainEnv) step(a int) (next int, reward float64, done bool) {
	if a == 1 {
		e.state++
	} else if e.state > 0 {
		e.state--
	}
	if e.state == 4 {
		return e.state, 1, true
	}
	return e.state, -0.01, false
}

func stateVec(s int) *nn.Tensor {
	d := make([]float64, 5)
	d[s] = 1
	return nn.NewTensor(d, 1, 5)
}

func TestPPOLearnsChain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	policy := NewPolicy(rng, 5, 32, 2)
	opt := nn.NewAdam(policy.Params(), 3e-3)
	opt.ClipNorm = 5
	cfg := DefaultConfig()
	cfg.Epochs = 4

	env := &chainEnv{}
	for iter := 0; iter < 60; iter++ {
		var trans []Transition
		for ep := 0; ep < 10; ep++ {
			s := env.reset()
			for step := 0; step < 20; step++ {
				sv := stateVec(s)
				a, lp := policy.Sample(rng, sv, nil)
				v := policy.Value(sv).Detach().Item()
				next, r, done := env.step(a)
				cur := s
				trans = append(trans, Transition{
					Recompute: func() *nn.Tensor { return stateVec(cur) },
					Action:    a, LogProb: lp, Reward: r, Value: v, Done: done,
				})
				s = next
				if done {
					break
				}
			}
			if !trans[len(trans)-1].Done {
				trans[len(trans)-1].Done = true
			}
		}
		Update(opt, policy, trans, cfg)
	}

	// Greedy policy should go right from every state.
	for s := 0; s < 4; s++ {
		if a := policy.Greedy(stateVec(s), nil); a != 1 {
			t.Fatalf("greedy action at state %d is %d, want 1 (right)", s, a)
		}
	}
}

func TestPPORespectsActionMask(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	policy := NewPolicy(rng, 5, 16, 4)
	mask := []bool{false, true, false, true}
	for i := 0; i < 200; i++ {
		a, _ := policy.Sample(rng, stateVec(i%5), mask)
		if !mask[a] {
			t.Fatalf("sampled illegal action %d", a)
		}
	}
	if a := policy.Greedy(stateVec(0), mask); !mask[a] {
		t.Fatalf("greedy chose illegal action %d", a)
	}
}

func TestGAEComputation(t *testing.T) {
	trans := []Transition{
		{Reward: 1, Value: 0.5, Done: false},
		{Reward: 0, Value: 0.4, Done: true},
	}
	adv, ret := gae(trans, 0.9, 1.0)
	// step 1 (terminal): delta = 0 - 0.4 = -0.4
	if math.Abs(adv[1]-(-0.4)) > 1e-9 {
		t.Fatalf("adv[1] = %f", adv[1])
	}
	// step 0: delta = 1 + 0.9*0.4 - 0.5 = 0.86; adv = 0.86 + 0.9*(-0.4) = 0.5
	if math.Abs(adv[0]-0.5) > 1e-9 {
		t.Fatalf("adv[0] = %f", adv[0])
	}
	if math.Abs(ret[0]-(adv[0]+0.5)) > 1e-9 {
		t.Fatalf("ret[0] = %f", ret[0])
	}
}

func TestGAEResetsAcrossEpisodes(t *testing.T) {
	// Two one-step episodes; the second must not leak into the first.
	trans := []Transition{
		{Reward: 1, Value: 0, Done: true},
		{Reward: -1, Value: 0, Done: true},
	}
	adv, _ := gae(trans, 0.99, 0.95)
	if math.Abs(adv[0]-1) > 1e-9 || math.Abs(adv[1]-(-1)) > 1e-9 {
		t.Fatalf("adv = %v, episodes leaked", adv)
	}
}

func TestUpdateEmptyIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	policy := NewPolicy(rng, 5, 8, 2)
	opt := nn.NewAdam(policy.Params(), 1e-3)
	st := Update(opt, policy, nil, DefaultConfig())
	if st.Epochs != 0 {
		t.Fatal("update on empty batch should do nothing")
	}
}

func TestClampAndMinHelpers(t *testing.T) {
	x := nn.NewTensor([]float64{0.5, 1.0, 1.5, 2.5}, 1, 4)
	c := clampTensor(x, 0.8, 1.2)
	want := []float64{0.8, 1.0, 1.2, 1.2}
	for i := range want {
		if math.Abs(c.Data[i]-want[i]) > 1e-9 {
			t.Fatalf("clamp: %v", c.Data)
		}
	}
	a := nn.NewTensor([]float64{1, 5}, 1, 2)
	b := nn.NewTensor([]float64{3, 2}, 1, 2)
	m := minTensor(a, b)
	if m.Data[0] != 1 || m.Data[1] != 2 {
		t.Fatalf("min: %v", m.Data)
	}
}
