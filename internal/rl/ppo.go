// Package rl implements Proximal Policy Optimization (clipped surrogate,
// generalized advantage estimation, entropy bonus, approximate-KL early
// stopping) over arbitrary state-representation producers. The paper uses
// PPO "due to its effectiveness in mitigating differences in the action
// distribution before and after agent updates through KL divergence", which
// matters because the AAM-backed simulated environment assumes the agent's
// behaviour drifts slowly between AAM refreshes.
package rl

import (
	"math"
	"math/rand"

	"github.com/foss-db/foss/internal/nn"
)

// Transition is one step of experience. StateVec values are the *detached*
// state representations at collection time; Recompute closures rebuild the
// graph at update time so gradients flow through the state network.
type Transition struct {
	Recompute func() *nn.Tensor // rebuilds statevec [1, D] with graph
	Mask      []bool            // legal actions at this state
	Action    int               // chosen action (0-based)
	LogProb   float64           // log π(a|s) at collection time
	Reward    float64
	Value     float64 // V(s) at collection time
	Done      bool    // episode boundary after this transition
}

// Policy is the actor-critic head over state vectors.
type Policy struct {
	Actor  *nn.MLP // StateDim -> hidden -> numActions
	Critic *nn.MLP // StateDim -> hidden -> 1
}

// NewPolicy builds the actor-critic heads.
func NewPolicy(rng *rand.Rand, stateDim, hidden, numActions int) *Policy {
	return &Policy{
		Actor:  nn.NewMLP(rng, stateDim, hidden, numActions),
		Critic: nn.NewMLP(rng, stateDim, hidden, 1),
	}
}

// Params implements nn.Module.
func (p *Policy) Params() []*nn.Tensor {
	return append(p.Actor.Params(), p.Critic.Params()...)
}

// Logits returns masked action logits for a state vector.
func (p *Policy) Logits(statevec *nn.Tensor, mask []bool) *nn.Tensor {
	logits := p.Actor.Forward(statevec)
	if mask != nil {
		logits = nn.MaskedFill(logits, mask, -1e9)
	}
	return logits
}

// Value returns V(s).
func (p *Policy) Value(statevec *nn.Tensor) *nn.Tensor {
	return p.Critic.Forward(statevec)
}

// Sample draws an action from the masked policy distribution; returns the
// action and its log-probability. Exploration is the caller's rng.
func (p *Policy) Sample(rng *rand.Rand, statevec *nn.Tensor, mask []bool) (int, float64) {
	logits := p.Logits(statevec, mask).Detach()
	probs := softmax(logits.Data)
	u := rng.Float64()
	acc := 0.0
	for i, pr := range probs {
		acc += pr
		if u <= acc {
			return i, math.Log(math.Max(pr, 1e-12))
		}
	}
	// numeric fallthrough: pick the last legal action
	for i := len(probs) - 1; i >= 0; i-- {
		if mask == nil || mask[i] {
			return i, math.Log(math.Max(probs[i], 1e-12))
		}
	}
	return 0, math.Log(1e-12)
}

// Greedy returns the argmax legal action.
func (p *Policy) Greedy(statevec *nn.Tensor, mask []bool) int {
	logits := p.Logits(statevec, mask).Detach()
	best, bi := math.Inf(-1), 0
	for i, v := range logits.Data {
		if (mask == nil || mask[i]) && v > best {
			best, bi = v, i
		}
	}
	return bi
}

func softmax(xs []float64) []float64 {
	out := make([]float64, len(xs))
	maxv := math.Inf(-1)
	for _, v := range xs {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	for i, v := range xs {
		out[i] = math.Exp(v - maxv)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Config holds PPO hyperparameters.
type Config struct {
	Gamma       float64 // discount
	Lambda      float64 // GAE
	ClipEps     float64
	EntropyCoef float64
	ValueCoef   float64
	Epochs      int
	BatchSize   int
	LR          float64
	TargetKL    float64 // early-stop threshold on approximate KL
	Seed        int64
}

// DefaultConfig returns standard PPO settings tuned for the short episodes
// (maxsteps ≤ 5) of the planner MDP.
func DefaultConfig() Config {
	return Config{
		Gamma: 0.99, Lambda: 0.95, ClipEps: 0.2,
		EntropyCoef: 0.01, ValueCoef: 0.5,
		Epochs: 4, BatchSize: 32, LR: 3e-4, TargetKL: 0.03, Seed: 1,
	}
}

// Stats summarizes one Update call.
type Stats struct {
	PolicyLoss float64
	ValueLoss  float64
	Entropy    float64
	ApproxKL   float64
	Epochs     int // epochs actually run before KL early stop
}

// Update runs clipped-PPO epochs over the transitions, updating both the
// policy heads and (through the Recompute closures) the state network.
// opt must manage the union of all trainable parameters.
func Update(opt *nn.Adam, policy *Policy, trans []Transition, cfg Config) Stats {
	if len(trans) == 0 {
		return Stats{}
	}
	adv, ret := gae(trans, cfg.Gamma, cfg.Lambda)
	normalize(adv)

	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(trans))
	for i := range idx {
		idx[i] = i
	}
	var stats Stats
	for ep := 0; ep < cfg.Epochs; ep++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		klSum, klCount := 0.0, 0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			opt.ZeroGrad()
			var loss *nn.Tensor
			for _, i := range idx[start:end] {
				t := trans[i]
				sv := t.Recompute()
				logits := policy.Logits(sv, t.Mask)
				logp := nn.LogSoftmax(logits)
				lpA := nn.Row(logp, 0)
				sel := nn.Cols(lpA, t.Action, 1) // log π_new(a|s)

				// ratio = exp(logp_new - logp_old)
				ratio := nn.Exp(nn.AddScalar(sel, -t.LogProb))
				surr1 := nn.Scale(ratio, adv[i])
				clipped := clampTensor(ratio, 1-cfg.ClipEps, 1+cfg.ClipEps)
				surr2 := nn.Scale(clipped, adv[i])
				pl := nn.Neg(minTensor(surr1, surr2))

				v := policy.Value(sv)
				dv := nn.AddScalar(v, -ret[i])
				vl := nn.Scale(nn.Mul(dv, dv), cfg.ValueCoef)

				// entropy of masked distribution
				probs := nn.Softmax(logits)
				ent := nn.Neg(nn.Sum(nn.Mul(probs, maskedLogP(logp, t.Mask))))
				el := nn.Scale(ent, -cfg.EntropyCoef)

				term := nn.Add(nn.Add(pl, vl), el)
				if loss == nil {
					loss = term
				} else {
					loss = nn.Add(loss, term)
				}

				klSum += t.LogProb - sel.Data[0]
				klCount++
			}
			loss = nn.Scale(loss, 1/float64(end-start))
			loss.Backward()
			opt.Step()
			stats.PolicyLoss = loss.Item()
		}
		stats.Epochs = ep + 1
		if klCount > 0 {
			stats.ApproxKL = klSum / float64(klCount)
			if cfg.TargetKL > 0 && stats.ApproxKL > cfg.TargetKL {
				break
			}
		}
	}
	return stats
}

// maskedLogP replaces -1e9-driven logp at illegal positions with 0
// contribution by zeroing them (probs there are ~0 anyway, but 0·(-1e9)
// would produce NaN-scale noise).
func maskedLogP(logp *nn.Tensor, mask []bool) *nn.Tensor {
	if mask == nil {
		return logp
	}
	return nn.MaskedFill(logp, mask, 0)
}

func clampTensor(x *nn.Tensor, lo, hi float64) *nn.Tensor {
	// clip(x) = lo + relu(x-lo) - relu(x-hi)
	a := nn.ReLU(nn.AddScalar(x, -lo))
	b := nn.ReLU(nn.AddScalar(x, -hi))
	return nn.AddScalar(nn.Sub(a, b), lo)
}

func minTensor(a, b *nn.Tensor) *nn.Tensor {
	// min(a,b) = a - relu(a-b)
	return nn.Sub(a, nn.ReLU(nn.Sub(a, b)))
}

// gae computes generalized advantage estimates and returns (advantages,
// value targets).
func gae(trans []Transition, gamma, lambda float64) (adv, ret []float64) {
	n := len(trans)
	adv = make([]float64, n)
	ret = make([]float64, n)
	running := 0.0
	for i := n - 1; i >= 0; i-- {
		nextV := 0.0
		if !trans[i].Done && i+1 < n {
			nextV = trans[i+1].Value
		}
		delta := trans[i].Reward + gamma*nextV - trans[i].Value
		if trans[i].Done {
			running = 0
		}
		running = delta + gamma*lambda*running
		adv[i] = running
		ret[i] = adv[i] + trans[i].Value
	}
	return adv, ret
}

func normalize(xs []float64) {
	if len(xs) < 2 {
		return
	}
	m, s := 0.0, 0.0
	for _, v := range xs {
		m += v
	}
	m /= float64(len(xs))
	for _, v := range xs {
		s += (v - m) * (v - m)
	}
	s = math.Sqrt(s/float64(len(xs))) + 1e-8
	for i := range xs {
		xs[i] = (xs[i] - m) / s
	}
}
