package runtime

// Identity is the composite serving identity every plan-keyed structure is
// scoped by: the optimizer backend that completes plans, the model epoch
// (hot-swap generation) that chooses them, and the catalog epoch (schema
// generation) they were planned against. The runtime LRU and the tier
// router's plan memory both build their keys through Identity.Key, so every
// epoch source feeds both caches from one place and can never desynchronize
// them: a DDL bump makes stale entries unreachable in the LRU and the tier
// memory in the same instant, exactly like a hot-swap or backend rekey.
type Identity struct {
	Backend string
	Epoch   uint64
	Catalog uint64
}

// PlanKey scopes one query fingerprint to a serving identity.
type PlanKey struct {
	Identity
	Fp uint64
}

// Key binds a query fingerprint to this identity.
func (id Identity) Key(fp uint64) PlanKey { return PlanKey{Identity: id, Fp: fp} }
