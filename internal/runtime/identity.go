package runtime

// Identity is the composite serving identity every plan-keyed structure is
// scoped by: the optimizer backend that completes plans and the model epoch
// (hot-swap generation) that chooses them. The runtime LRU and the tier
// router's plan memory both build their keys through Identity.Key, so a
// future epoch source (catalog versioning, cache-generation bumps) feeds
// both caches from one place and can never desynchronize them.
type Identity struct {
	Backend string
	Epoch   uint64
}

// PlanKey scopes one query fingerprint to a serving identity.
type PlanKey struct {
	Identity
	Fp uint64
}

// Key binds a query fingerprint to this identity.
func (id Identity) Key(fp uint64) PlanKey { return PlanKey{Identity: id, Fp: fp} }
