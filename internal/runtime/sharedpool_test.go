package runtime

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSharedPoolMatchesTransientAssignment: the shared pool preserves the
// determinism contract — job j runs as worker j mod W, each lane in
// increasing job order — so a system fanning out on a shared pool computes
// exactly what it would on a private one.
func TestSharedPoolMatchesTransientAssignment(t *testing.T) {
	const workers, jobs = 3, 20
	p := NewShared(workers)
	defer p.Close()

	var mu sync.Mutex
	gotWorker := make([]int, jobs)
	orderByWorker := map[int][]int{}
	p.Run(jobs, func(w, j int) {
		mu.Lock()
		defer mu.Unlock()
		gotWorker[j] = w
		orderByWorker[w] = append(orderByWorker[w], j)
	})
	for j := 0; j < jobs; j++ {
		if gotWorker[j] != j%workers {
			t.Fatalf("job %d ran as worker %d, want %d", j, gotWorker[j], j%workers)
		}
	}
	for w, js := range orderByWorker {
		for i := 1; i < len(js); i++ {
			if js[i] < js[i-1] {
				t.Fatalf("worker %d ran jobs out of order: %v", w, js)
			}
		}
	}
}

// TestSharedPoolBoundsConcurrency: K callers fanning out together never
// exceed the pool width in simultaneously running jobs — the whole point of
// sharing one pool across tenants.
func TestSharedPoolBoundsConcurrency(t *testing.T) {
	const workers, callers = 2, 5
	p := NewShared(workers)
	defer p.Close()

	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Run(6, func(_, _ int) {
				n := running.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				running.Add(-1)
			})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeded the pool width %d", got, workers)
	}
}

// TestSharedPoolCancelWhileQueued: a caller whose context expires while its
// lanes are still queued behind other tenants' work returns promptly with
// ctx.Err() instead of blocking until a worker frees — the request path's
// deadline survives pool contention.
func TestSharedPoolCancelWhileQueued(t *testing.T) {
	p := NewShared(1)
	defer p.Close()

	release := make(chan struct{})
	var occupying sync.WaitGroup
	occupying.Add(1)
	go func() {
		defer occupying.Done()
		p.Run(1, func(_, _ int) { <-release }) // park the only worker
	}()
	time.Sleep(10 * time.Millisecond) // let the blocker reach the worker

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := p.RunCtx(ctx, 4, func(_, _ int) { t.Error("job ran despite queued cancellation") })
	if err == nil {
		t.Fatal("queued RunCtx returned nil after its deadline expired")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("queued RunCtx blocked %v past its deadline", elapsed)
	}
	close(release)
	occupying.Wait()
}

// TestSharedPoolCloseFallsBackInline: a Run racing (or following) Close
// neither panics nor loses jobs — lanes degrade to inline execution.
func TestSharedPoolCloseFallsBackInline(t *testing.T) {
	p := NewShared(2)
	p.Close()
	p.Close() // idempotent

	var count atomic.Int64
	if err := p.RunCtx(context.Background(), 7, func(_, _ int) { count.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 7 {
		t.Fatalf("post-close Run completed %d/7 jobs", count.Load())
	}
}
