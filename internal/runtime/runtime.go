package runtime

import (
	"context"
	"fmt"
	"sync"

	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
)

// Source produces optimized plans for queries. The learner implements it;
// the indirection keeps this package free of training-loop dependencies.
// Both methods honor context cancellation.
type Source interface {
	Optimize(ctx context.Context, q *query.Query) (*planner.PlanEval, error)
	// OptimizeBatch doctors many queries with shared batched model inference;
	// out[i] corresponds to qs[i].
	OptimizeBatch(ctx context.Context, qs []*query.Query) ([]*planner.PlanEval, error)
}

// Config sizes the runtime.
type Config struct {
	// Workers bounds the episode/request fan-out. <=1 means sequential.
	Workers int
	// CacheSize is the plan-cache capacity in entries; 0 disables caching.
	CacheSize int
	// BackendID identifies the optimizer backend the cached plans were
	// completed by. It is mixed into every cache key, so plans can never be
	// served across backends — even across a backend swap that reuses this
	// runtime.
	BackendID string
	// Pool, when non-nil, is used instead of a freshly built pool — the hook
	// by which many systems (the shard router's tenants) share one bounded
	// worker pool. Its width overrides Workers; the caller keeps ownership
	// (and, for shared pools, the Close duty).
	Pool *Pool
}

// DefaultConfig returns a serving-oriented runtime configuration.
func DefaultConfig() Config {
	return Config{Workers: 1, CacheSize: 256}
}

// Runtime owns the worker pool and the plan cache, and arbitrates between
// the exclusive training path and the shared serving path: any number of
// Optimize calls may run concurrently (model forwards are read-only), while
// Exclusive (training, weight loading, backend swaps) waits for in-flight
// requests and blocks new ones. Cached plans are keyed by the shared
// composite PlanKey (backend identity × cache epoch × query fingerprint)
// and invalidated whenever the models change.
type Runtime struct {
	cfg    Config
	pool   *Pool
	cache  *LRU[PlanKey, *planner.PlanEval]
	source Source

	// mu is the train/serve arbiter: Optimize holds it shared, Exclusive
	// holds it exclusively. It also guards backendID and catalogEpoch.
	mu           sync.RWMutex
	backendID    string
	catalogEpoch uint64
}

// New assembles a runtime over a plan-producing source.
func New(cfg Config, source Source) *Runtime {
	pool := cfg.Pool
	if pool == nil {
		pool = NewPool(cfg.Workers)
	}
	return &Runtime{
		cfg:       cfg,
		pool:      pool,
		cache:     NewLRU[PlanKey, *planner.PlanEval](cfg.CacheSize),
		source:    source,
		backendID: cfg.BackendID,
	}
}

// Pool returns the shared worker pool.
func (r *Runtime) Pool() *Pool { return r.pool }

// BackendID returns the backend identity the cache is currently scoped to.
func (r *Runtime) BackendID() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.backendID
}

// identityLocked builds the cache's current composite identity. Caller holds
// mu (shared or exclusive). Mixing the LRU's own invalidation epoch into the
// key means the plan cache and any sibling structure keyed through the same
// Identity (the tier router's plan memory) agree on when an entry became
// stale — one invalidation source, two caches, no desynchronization.
func (r *Runtime) identityLocked() Identity {
	return Identity{Backend: r.backendID, Epoch: r.cache.Epoch(), Catalog: r.catalogEpoch}
}

// Optimize returns the chosen plan for the query, serving from the plan
// cache when possible. The boolean reports a cache hit. Safe for concurrent
// use. Cancellation is honored before planning starts and inside the source;
// a request already blocked behind an exclusive section completes its wait.
func (r *Runtime) Optimize(ctx context.Context, q *query.Query) (*planner.PlanEval, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	key := r.identityLocked().Key(q.Fingerprint())
	if pe, ok := r.cache.Get(key); ok {
		return pe, true, nil
	}
	pe, err := r.source.Optimize(ctx, q)
	if err != nil {
		return nil, false, err
	}
	r.cache.Put(key, pe)
	return pe, false, nil
}

// OptimizeBatch serves a batch of queries in one pass: cache hits are
// resolved immediately, and all misses go to the source's batched path,
// which shares one stacked model inference across them. hits[i] reports
// whether out[i] came from the cache. On error (including cancellation) no
// partial results are returned.
func (r *Runtime) OptimizeBatch(ctx context.Context, qs []*query.Query) (out []*planner.PlanEval, hits []bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out = make([]*planner.PlanEval, len(qs))
	hits = make([]bool, len(qs))
	// Misses are deduplicated by cache key: a batch carrying the same cold
	// query N times pays candidate generation once (plan choices are
	// fingerprint-deterministic, so sharing the result is exact).
	var missKeys []PlanKey
	var missQs []*query.Query
	missIdx := map[PlanKey][]int{}
	id := r.identityLocked()
	for i, q := range qs {
		key := id.Key(q.Fingerprint())
		if pe, ok := r.cache.Get(key); ok {
			out[i], hits[i] = pe, true
			continue
		}
		if _, seen := missIdx[key]; !seen {
			missKeys = append(missKeys, key)
			missQs = append(missQs, q)
		}
		missIdx[key] = append(missIdx[key], i)
	}
	if len(missQs) == 0 {
		return out, hits, nil
	}
	pes, err := r.source.OptimizeBatch(ctx, missQs)
	if err != nil {
		return nil, nil, err
	}
	for j, key := range missKeys {
		for _, i := range missIdx[key] {
			out[i] = pes[j]
		}
		r.cache.Put(key, pes[j])
	}
	return out, hits, nil
}

// Shared runs fn holding the serving-side shared lock: concurrent with
// Optimize and other Shared calls (all read-only on the models), mutually
// exclusive with Exclusive sections. Weight snapshots (Save) run under it
// so they can never observe a half-applied Load/Train.
func (r *Runtime) Shared(fn func() error) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return fn()
}

// Exclusive runs fn with the serving path quiesced (no Optimize in flight)
// and invalidates the plan cache afterwards, since fn is assumed to have
// changed the models the cached plans were chosen by.
func (r *Runtime) Exclusive(fn func() error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	err := fn()
	r.cache.Invalidate()
	return err
}

// Rekey atomically switches the cache's backend identity (quiescing the
// serving path), runs fn — the caller's backend-pointer swap — inside the
// same exclusive section, and invalidates every cached plan. If fn errors
// the identity and cache are left untouched. Entries cached under the
// previous backend become doubly unreachable: dropped by the invalidation
// and, even if one were resurrected, unreachable under the new composite
// key. fn may be nil.
func (r *Runtime) Rekey(backendID string, fn func() error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if fn != nil {
		if err := fn(); err != nil {
			return err
		}
	}
	r.backendID = backendID
	r.cache.Invalidate()
	return nil
}

// CatalogEpoch returns the catalog (schema) epoch the cache is currently
// scoped to.
func (r *Runtime) CatalogEpoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.catalogEpoch
}

// RekeyCatalog atomically advances the cache's catalog epoch (quiescing the
// serving path), runs fn — the caller's schema/backend repoint — inside the
// same exclusive section, and invalidates every cached plan. The sibling of
// Rekey for schema evolution: entries planned against the old schema are
// dropped by the invalidation and, even if resurrected, unreachable under
// the new composite key. If fn errors the epoch and cache are untouched.
// fn may be nil. The epoch only moves forward; a stale epoch is rejected
// without running fn.
func (r *Runtime) RekeyCatalog(epoch uint64, fn func() error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if epoch < r.catalogEpoch {
		return fmt.Errorf("runtime: catalog epoch moved backwards (%d < %d)", epoch, r.catalogEpoch)
	}
	if fn != nil {
		if err := fn(); err != nil {
			return err
		}
	}
	r.catalogEpoch = epoch
	r.cache.Invalidate()
	return nil
}

// CacheStats snapshots the plan-cache counters.
func (r *Runtime) CacheStats() CacheStats { return r.cache.Stats() }

// CacheEpoch returns the plan cache's invalidation count: every currently
// cached plan was chosen by the models live at this epoch.
func (r *Runtime) CacheEpoch() uint64 { return r.cache.Epoch() }

// InvalidateCache drops all cached plans (e.g. after loading a snapshot
// outside Exclusive).
func (r *Runtime) InvalidateCache() { r.cache.Invalidate() }
