package runtime

import (
	"sync"

	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
)

// Backend produces an optimized plan for a query. The learner implements it;
// the indirection keeps this package free of training-loop dependencies.
type Backend interface {
	Optimize(q *query.Query) (*planner.PlanEval, error)
}

// Config sizes the runtime.
type Config struct {
	// Workers bounds the episode/request fan-out. <=1 means sequential.
	Workers int
	// CacheSize is the plan-cache capacity in entries; 0 disables caching.
	CacheSize int
}

// DefaultConfig returns a serving-oriented runtime configuration.
func DefaultConfig() Config {
	return Config{Workers: 1, CacheSize: 256}
}

// Runtime owns the worker pool and the plan cache, and arbitrates between
// the exclusive training path and the shared serving path: any number of
// Optimize calls may run concurrently (model forwards are read-only), while
// Exclusive (training, weight loading) waits for in-flight requests and
// blocks new ones. Cached plans are keyed by query fingerprint and
// invalidated whenever the models change.
type Runtime struct {
	cfg     Config
	pool    *Pool
	cache   *LRU[*planner.PlanEval]
	backend Backend

	// mu is the train/serve arbiter: Optimize holds it shared, Exclusive
	// holds it exclusively.
	mu sync.RWMutex
}

// New assembles a runtime over a plan-producing backend.
func New(cfg Config, backend Backend) *Runtime {
	return &Runtime{
		cfg:     cfg,
		pool:    NewPool(cfg.Workers),
		cache:   NewLRU[*planner.PlanEval](cfg.CacheSize),
		backend: backend,
	}
}

// Pool returns the shared worker pool.
func (r *Runtime) Pool() *Pool { return r.pool }

// Optimize returns the chosen plan for the query, serving from the plan
// cache when possible. The boolean reports a cache hit. Safe for concurrent
// use.
func (r *Runtime) Optimize(q *query.Query) (*planner.PlanEval, bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	key := q.Fingerprint()
	if pe, ok := r.cache.Get(key); ok {
		return pe, true, nil
	}
	pe, err := r.backend.Optimize(q)
	if err != nil {
		return nil, false, err
	}
	r.cache.Put(key, pe)
	return pe, false, nil
}

// Exclusive runs fn with the serving path quiesced (no Optimize in flight)
// and invalidates the plan cache afterwards, since fn is assumed to have
// changed the models the cached plans were chosen by.
func (r *Runtime) Exclusive(fn func() error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	err := fn()
	r.cache.Invalidate()
	return err
}

// CacheStats snapshots the plan-cache counters.
func (r *Runtime) CacheStats() CacheStats { return r.cache.Stats() }

// CacheEpoch returns the plan cache's invalidation count: every currently
// cached plan was chosen by the models live at this epoch.
func (r *Runtime) CacheEpoch() uint64 { return r.cache.Epoch() }

// InvalidateCache drops all cached plans (e.g. after loading a snapshot
// outside Exclusive).
func (r *Runtime) InvalidateCache() { r.cache.Invalidate() }
