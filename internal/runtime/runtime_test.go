package runtime

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
)

func TestPoolRunsEveryJobOnItsWorker(t *testing.T) {
	p := NewPool(3)
	var mu sync.Mutex
	workerOf := map[int]int{}
	p.Run(17, func(w, j int) {
		mu.Lock()
		workerOf[j] = w
		mu.Unlock()
	})
	if len(workerOf) != 17 {
		t.Fatalf("ran %d jobs, want 17", len(workerOf))
	}
	for j, w := range workerOf {
		if w != j%3 {
			t.Fatalf("job %d ran on worker %d, want %d", j, w, j%3)
		}
	}
}

func TestPoolWorkerProcessesJobsInOrder(t *testing.T) {
	p := NewPool(4)
	var mu sync.Mutex
	seq := map[int][]int{}
	p.Run(23, func(w, j int) {
		mu.Lock()
		seq[w] = append(seq[w], j)
		mu.Unlock()
	})
	for w, jobs := range seq {
		for i := 1; i < len(jobs); i++ {
			if jobs[i] <= jobs[i-1] {
				t.Fatalf("worker %d ran jobs out of order: %v", w, jobs)
			}
		}
	}
}

func TestPoolSingleWorkerRunsInline(t *testing.T) {
	p := NewPool(0) // clamps to 1
	if p.Workers() != 1 {
		t.Fatalf("width %d", p.Workers())
	}
	order := []int{}
	p.Run(5, func(w, j int) { order = append(order, j) }) // no lock: must be inline
	for i, j := range order {
		if i != j {
			t.Fatalf("inline order broken: %v", order)
		}
	}
}

func TestLRUHitMissEvict(t *testing.T) {
	c := NewLRU[uint64, int](2)
	if _, ok := c.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, 10)
	c.Put(2, 20)
	if v, ok := c.Get(1); !ok || v != 10 {
		t.Fatalf("get 1 = %v %v", v, ok)
	}
	c.Put(3, 30) // evicts 2 (1 was just promoted)
	if _, ok := c.Get(2); ok {
		t.Fatal("evicted entry still present")
	}
	if _, ok := c.Get(3); !ok {
		t.Fatal("newest entry missing")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", st.HitRate())
	}
}

func TestLRUInvalidate(t *testing.T) {
	c := NewLRU[uint64, string](4)
	c.Put(7, "x")
	c.Invalidate()
	if c.Len() != 0 {
		t.Fatal("invalidate left entries")
	}
	if _, ok := c.Get(7); ok {
		t.Fatal("invalidated entry still served")
	}
}

// TestLRUEpochAdvancesOnInvalidate: the epoch is the hot-swap staleness
// proof — it must count every invalidation and nothing else.
func TestLRUEpochAdvancesOnInvalidate(t *testing.T) {
	c := NewLRU[uint64, string](4)
	if c.Epoch() != 0 {
		t.Fatalf("fresh cache epoch %d", c.Epoch())
	}
	c.Put(1, "x")
	c.Get(1)
	if c.Epoch() != 0 {
		t.Fatal("get/put must not advance the epoch")
	}
	c.Invalidate()
	c.Invalidate()
	if c.Epoch() != 2 {
		t.Fatalf("epoch %d after two invalidations", c.Epoch())
	}
	if st := c.Stats(); st.Epoch != 2 {
		t.Fatalf("stats epoch %d", st.Epoch)
	}
}

// TestRuntimeCacheEpoch: Exclusive (train/load) must bump the runtime's
// cache epoch so serving layers can label plan generations.
func TestRuntimeCacheEpoch(t *testing.T) {
	rt := New(Config{Workers: 1, CacheSize: 8}, &countingBackend{})
	if rt.CacheEpoch() != 0 {
		t.Fatalf("fresh runtime epoch %d", rt.CacheEpoch())
	}
	if err := rt.Exclusive(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	rt.InvalidateCache()
	if rt.CacheEpoch() != 2 {
		t.Fatalf("epoch %d after Exclusive + InvalidateCache", rt.CacheEpoch())
	}
}

func TestLRUZeroCapacityDisabled(t *testing.T) {
	c := NewLRU[uint64, int](0)
	c.Put(1, 1)
	if _, ok := c.Get(1); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

// TestLRUZeroCapacityStatsStayZero is the regression test for the phantom
// miss counter: a disabled cache must report zeroed stats, not a 0% hit
// rate over misses it "served" — there is no cache for those counters to
// describe.
func TestLRUZeroCapacityStatsStayZero(t *testing.T) {
	c := NewLRU[uint64, int](0)
	for i := uint64(0); i < 50; i++ {
		c.Get(i)
		c.Put(i, int(i))
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Evictions != 0 || st.Size != 0 {
		t.Fatalf("disabled cache accumulated stats: %+v", st)
	}
	if st.HitRate() != 0 {
		t.Fatalf("disabled cache hit rate %v", st.HitRate())
	}
	// An enabled cache still counts (the fix must not disable counting
	// everywhere).
	e := NewLRU[uint64, int](2)
	e.Get(1)
	e.Put(1, 1)
	e.Get(1)
	if st := e.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("enabled cache stats: %+v", st)
	}
}

type countingBackend struct {
	calls atomic.Int64
}

func (b *countingBackend) Optimize(ctx context.Context, q *query.Query) (*planner.PlanEval, error) {
	b.calls.Add(1)
	return &planner.PlanEval{Q: q}, nil
}

func (b *countingBackend) OptimizeBatch(ctx context.Context, qs []*query.Query) ([]*planner.PlanEval, error) {
	out := make([]*planner.PlanEval, len(qs))
	for i, q := range qs {
		b.calls.Add(1)
		out[i] = &planner.PlanEval{Q: q}
	}
	return out, nil
}

func testQuery(i int) *query.Query {
	return &query.Query{
		ID:     fmt.Sprintf("q%d", i),
		Tables: []query.TableRef{{Table: fmt.Sprintf("t%d", i), Alias: "a"}},
	}
}

func TestRuntimeCachesByFingerprint(t *testing.T) {
	b := &countingBackend{}
	rt := New(Config{Workers: 2, CacheSize: 8}, b)

	q := testQuery(1)
	if _, hit, err := rt.Optimize(context.Background(), q); err != nil || hit {
		t.Fatalf("first call: hit=%v err=%v", hit, err)
	}
	if _, hit, err := rt.Optimize(context.Background(), q); err != nil || !hit {
		t.Fatalf("second call: hit=%v err=%v", hit, err)
	}
	// A structurally identical query with a different ID also hits.
	q2 := testQuery(1)
	q2.ID = "other"
	if _, hit, _ := rt.Optimize(context.Background(), q2); !hit {
		t.Fatal("structurally identical query missed the cache")
	}
	if b.calls.Load() != 1 {
		t.Fatalf("backend called %d times, want 1", b.calls.Load())
	}
}

func TestRuntimeExclusiveInvalidatesCache(t *testing.T) {
	b := &countingBackend{}
	rt := New(Config{Workers: 1, CacheSize: 8}, b)
	q := testQuery(2)
	rt.Optimize(context.Background(), q)
	if err := rt.Exclusive(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := rt.Optimize(context.Background(), q); hit {
		t.Fatal("cache served a stale plan after Exclusive")
	}
	if b.calls.Load() != 2 {
		t.Fatalf("backend called %d times, want 2", b.calls.Load())
	}
}

func TestRuntimeConcurrentOptimize(t *testing.T) {
	b := &countingBackend{}
	rt := New(Config{Workers: 4, CacheSize: 32}, b)
	queries := make([]*query.Query, 8)
	for i := range queries {
		queries[i] = testQuery(i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, _, err := rt.Optimize(context.Background(), queries[(g+i)%len(queries)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := rt.CacheStats()
	if st.Hits+st.Misses != 400 {
		t.Fatalf("lookups %d, want 400", st.Hits+st.Misses)
	}
	if st.Hits < 300 {
		t.Fatalf("unexpectedly few hits: %+v", st)
	}
}

// TestRuntimeCacheKeyedByBackend: the same fingerprint under different
// backend identities must occupy distinct cache slots — plans can never be
// served across backends, even before any invalidation runs.
func TestRuntimeCacheKeyedByBackend(t *testing.T) {
	b := &countingBackend{}
	rt := New(Config{Workers: 1, CacheSize: 8, BackendID: "selinger"}, b)
	q := testQuery(3)
	ctx := context.Background()
	rt.Optimize(ctx, q)
	if _, hit, _ := rt.Optimize(ctx, q); !hit {
		t.Fatal("warm entry missed under original backend")
	}
	if err := rt.Rekey("gaussim", nil); err != nil {
		t.Fatal(err)
	}
	if rt.BackendID() != "gaussim" {
		t.Fatalf("backend id %q after rekey", rt.BackendID())
	}
	if _, hit, _ := rt.Optimize(ctx, q); hit {
		t.Fatal("plan served across backends after a swap")
	}
	// Swapping back must also start cold: the old entry was invalidated.
	if err := rt.Rekey("selinger", nil); err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := rt.Optimize(ctx, q); hit {
		t.Fatal("stale pre-swap plan resurrected after swapping back")
	}
}

// TestRuntimeRekeyAbortsOnError: a failed swap callback must leave identity
// and cache untouched.
func TestRuntimeRekeyAbortsOnError(t *testing.T) {
	b := &countingBackend{}
	rt := New(Config{Workers: 1, CacheSize: 8, BackendID: "selinger"}, b)
	ctx := context.Background()
	q := testQuery(4)
	rt.Optimize(ctx, q)
	wantErr := fmt.Errorf("swap veto")
	if err := rt.Rekey("gaussim", func() error { return wantErr }); err != wantErr {
		t.Fatalf("err = %v, want veto", err)
	}
	if rt.BackendID() != "selinger" {
		t.Fatalf("identity changed on failed swap: %q", rt.BackendID())
	}
	if _, hit, _ := rt.Optimize(ctx, q); !hit {
		t.Fatal("cache dropped on failed swap")
	}
}

// TestRuntimeOptimizeBatch: hits resolve from cache, misses go to the
// batched source path, and the composite result preserves order.
func TestRuntimeOptimizeBatch(t *testing.T) {
	b := &countingBackend{}
	rt := New(Config{Workers: 2, CacheSize: 32}, b)
	ctx := context.Background()
	warm := testQuery(0)
	rt.Optimize(ctx, warm)
	qs := []*query.Query{warm, testQuery(1), testQuery(2), warm}
	pes, hits, err := rt.OptimizeBatch(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pes) != 4 || len(hits) != 4 {
		t.Fatalf("len %d/%d", len(pes), len(hits))
	}
	// warm hits twice (second occurrence resolves in the same pass), the two
	// cold queries miss.
	if !hits[0] || hits[1] || hits[2] {
		t.Fatalf("hits = %v", hits)
	}
	for i, pe := range pes {
		if pe == nil || pe.Q != qs[i] {
			t.Fatalf("result %d misaligned", i)
		}
	}
	// batch misses went through OptimizeBatch: 1 warm call + 2 more
	if got := b.calls.Load(); got != 3 {
		t.Fatalf("source calls %d, want 3", got)
	}
	if _, hit, _ := rt.Optimize(ctx, testQuery(2)); !hit {
		t.Fatal("batch results not cached")
	}

	// duplicate cold queries in one batch collapse to a single source call
	cold := testQuery(9)
	before := b.calls.Load()
	pes2, _, err := rt.OptimizeBatch(ctx, []*query.Query{cold, testQuery(9), cold})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.calls.Load() - before; got != 1 {
		t.Fatalf("duplicate cold queries cost %d source calls, want 1", got)
	}
	if pes2[0] != pes2[1] || pes2[1] != pes2[2] {
		t.Fatal("duplicate cold queries did not share the result")
	}
}

// TestRuntimeOptimizeCanceled: a canceled context short-circuits before any
// planning work.
func TestRuntimeOptimizeCanceled(t *testing.T) {
	b := &countingBackend{}
	rt := New(Config{Workers: 1, CacheSize: 8}, b)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := rt.Optimize(ctx, testQuery(5)); err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := rt.OptimizeBatch(ctx, []*query.Query{testQuery(5)}); err != context.Canceled {
		t.Fatalf("batch err = %v", err)
	}
	if b.calls.Load() != 0 {
		t.Fatal("source invoked despite canceled context")
	}
}

// TestPoolRunCtxStopsDispatching: cancellation mid-run prevents undispatched
// jobs from starting and surfaces the context error.
func TestPoolRunCtxStopsDispatching(t *testing.T) {
	p := NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := p.RunCtx(ctx, 1000, func(w, j int) {
		if ran.Add(1) == 3 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("all %d jobs ran despite cancellation", n)
	}
}
