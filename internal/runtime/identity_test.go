package runtime

import "testing"

// TestIdentityKeyComposite: PlanKey is the one composite identity both the
// runtime plan cache and the tier plan memory key on — equal only when
// backend, epoch, and fingerprint all agree, so an epoch bump (hot-swap) or
// a backend switch makes every prior key unreachable in both structures at
// once.
func TestIdentityKeyComposite(t *testing.T) {
	base := Identity{Backend: "selinger", Epoch: 1}
	k := base.Key(42)
	if k != (PlanKey{Identity: base, Fp: 42}) {
		t.Fatalf("key composition broken: %+v", k)
	}
	distinct := []PlanKey{
		Identity{Backend: "selinger", Epoch: 2}.Key(42), // hot-swap
		Identity{Backend: "gaussim", Epoch: 1}.Key(42),  // backend switch
		base.Key(43), // different query
	}
	for i, d := range distinct {
		if d == k {
			t.Fatalf("case %d: stale identity collides with live key", i)
		}
	}
	if base.Key(42) != k {
		t.Fatal("identical identity must reproduce the identical key")
	}
}
