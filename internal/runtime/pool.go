// Package runtime is the concurrency layer of FOSS: a deterministic bounded
// worker pool used by the training loop's episode fan-out, an LRU plan cache
// keyed by query fingerprint, and a Runtime that arbitrates between the
// exclusive training path and the shared, cached serving path. It sits below
// core (which wires it to the learner) and above the model layers, and
// deliberately knows nothing about training itself — only how to run work
// deterministically in parallel and how to serve plans fast.
package runtime

import (
	"context"
	"sync"
)

// Pool is a bounded worker pool with a deterministic job→worker assignment:
// job j always runs on worker j mod W, and each worker processes its jobs in
// increasing order. With any per-worker state seeded from the worker id
// (e.g. RNG streams), a Run's outcome depends only on W and the jobs — never
// on goroutine scheduling.
//
// A pool built by NewPool is transient: each Run spawns its own goroutines
// and owns the full width. A pool built by NewShared is backed by W
// persistent worker goroutines that many callers dispatch onto
// concurrently — K tenants sharing one pool run at most W jobs at any
// moment instead of K×W. The determinism contract is identical in both
// modes: the lane index (not the OS worker) is what fn receives, so job j
// still sees worker j mod W.
type Pool struct {
	workers int

	// tasks is non-nil only in shared mode: lane closures are dispatched to
	// the persistent workers through it. closed gates dispatch after Close —
	// late Runs fall back to running their lanes inline rather than racing a
	// shut-down pool.
	tasks     chan func()
	closed    chan struct{}
	closeOnce sync.Once
}

// NewPool creates a transient pool of the given width (clamped to at least
// 1): each Run spawns its own goroutines.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// NewShared creates a pool backed by `workers` persistent goroutines that
// every Run dispatches onto. Use it to bound total fan-out across many
// independent callers (the shard router hands one shared pool to every
// tenant's system). Callers must Close a shared pool to release its workers.
func NewShared(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, tasks: make(chan func()), closed: make(chan struct{})}
	for i := 0; i < workers; i++ {
		go func() {
			for {
				select {
				case f := <-p.tasks:
					f()
				case <-p.closed:
					return
				}
			}
		}()
	}
	return p
}

// Close releases a shared pool's worker goroutines. Idempotent; a no-op on
// transient pools. Runs already dispatched finish normally (Close does not
// wait for them); Runs arriving after Close execute inline on the caller.
func (p *Pool) Close() {
	if p.tasks == nil {
		return
	}
	p.closeOnce.Do(func() { close(p.closed) })
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// Run executes jobs 0..n-1 across the pool and blocks until all complete.
// Worker w runs jobs w, w+W, w+2W, ... in that order. A single-worker pool
// runs every job inline on the calling goroutine.
func (p *Pool) Run(n int, fn func(worker, job int)) {
	_ = p.RunCtx(context.Background(), n, fn)
}

// RunCtx is Run honoring cancellation: every worker checks the context
// before starting each job and stops dispatching once it is done, so an
// in-flight fan-out returns promptly on deadline (bounded by the longest
// single job already running). Jobs that were skipped simply never ran —
// callers that need completeness must treat a non-nil return as "results are
// partial". Returns ctx.Err() after all workers have drained.
func (p *Pool) RunCtx(ctx context.Context, n int, fn func(worker, job int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if p.tasks != nil {
		return p.runShared(ctx, n, fn)
	}
	if p.workers == 1 {
		for j := 0; j < n; j++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, j)
		}
		return ctx.Err()
	}
	var wg sync.WaitGroup
	for w := 0; w < p.workers && w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := w; j < n; j += p.workers {
				if ctx.Err() != nil {
					return
				}
				fn(w, j)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

// runShared partitions the jobs into W lanes (lane w runs jobs w, w+W, ...
// in order, exactly like the transient path) and dispatches each lane to the
// persistent workers. Lanes from concurrent Runs interleave over the same W
// goroutines, so total concurrency stays bounded at the pool width no matter
// how many callers fan out at once. Cancellation is honored while queued:
// a caller whose context expires before a worker frees up stops dispatching
// and returns once its already-running lanes drain — its remaining jobs
// simply never ran, the same partial-results contract as the transient
// path. After Close, lanes run inline on the caller — a shutdown race
// degrades to sequential execution, never to a panic or a lost job.
func (p *Pool) runShared(ctx context.Context, n int, fn func(worker, job int)) error {
	var wg sync.WaitGroup
	lanes := p.workers
	if lanes > n {
		lanes = n
	}
dispatch:
	for w := 0; w < lanes; w++ {
		w := w
		wg.Add(1)
		lane := func() {
			defer wg.Done()
			for j := w; j < n; j += p.workers {
				if ctx.Err() != nil {
					return
				}
				fn(w, j)
			}
		}
		select {
		case p.tasks <- lane:
		case <-p.closed:
			lane()
		case <-ctx.Done():
			wg.Done() // this lane was never dispatched; don't wait for it
			break dispatch
		}
	}
	wg.Wait()
	return ctx.Err()
}
