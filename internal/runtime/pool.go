// Package runtime is the concurrency layer of FOSS: a deterministic bounded
// worker pool used by the training loop's episode fan-out, an LRU plan cache
// keyed by query fingerprint, and a Runtime that arbitrates between the
// exclusive training path and the shared, cached serving path. It sits below
// core (which wires it to the learner) and above the model layers, and
// deliberately knows nothing about training itself — only how to run work
// deterministically in parallel and how to serve plans fast.
package runtime

import (
	"context"
	"sync"
)

// Pool is a bounded worker pool with a deterministic job→worker assignment:
// job j always runs on worker j mod W, and each worker processes its jobs in
// increasing order. With any per-worker state seeded from the worker id
// (e.g. RNG streams), a Run's outcome depends only on W and the jobs — never
// on goroutine scheduling.
type Pool struct {
	workers int
}

// NewPool creates a pool of the given width (clamped to at least 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// Run executes jobs 0..n-1 across the pool and blocks until all complete.
// Worker w runs jobs w, w+W, w+2W, ... in that order. A single-worker pool
// runs every job inline on the calling goroutine.
func (p *Pool) Run(n int, fn func(worker, job int)) {
	_ = p.RunCtx(context.Background(), n, fn)
}

// RunCtx is Run honoring cancellation: every worker checks the context
// before starting each job and stops dispatching once it is done, so an
// in-flight fan-out returns promptly on deadline (bounded by the longest
// single job already running). Jobs that were skipped simply never ran —
// callers that need completeness must treat a non-nil return as "results are
// partial". Returns ctx.Err() after all workers have drained.
func (p *Pool) RunCtx(ctx context.Context, n int, fn func(worker, job int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if p.workers == 1 {
		for j := 0; j < n; j++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, j)
		}
		return ctx.Err()
	}
	var wg sync.WaitGroup
	for w := 0; w < p.workers && w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := w; j < n; j += p.workers {
				if ctx.Err() != nil {
					return
				}
				fn(w, j)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}
