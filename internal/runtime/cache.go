package runtime

import (
	"container/list"
	"sync"
)

// CacheStats is a point-in-time snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Size      int
	Capacity  int
	// Epoch counts invalidations: every entry currently cached was inserted
	// at this epoch, so a serving layer that bumps the epoch on model swaps
	// can prove no plan outlives the model that chose it.
	Epoch uint64
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// LRU is a thread-safe least-recently-used cache with hit/miss/eviction
// counters, generic over the key so callers can key entries on composite
// identities (the runtime keys plans on backend × query fingerprint). The
// zero capacity means "disabled": every Get misses and Put is a no-op, so
// callers never need to special-case an absent cache.
type LRU[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[K]*list.Element

	hits, misses, evictions, epoch uint64
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// NewLRU creates an LRU holding at most capacity entries.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 0 {
		capacity = 0
	}
	return &LRU[K, V]{cap: capacity, ll: list.New(), items: map[K]*list.Element{}}
}

// Get returns the cached value for key and whether it was present, promoting
// the entry to most-recently-used. A disabled cache (capacity 0) misses
// without counting: there is no cache whose effectiveness the counters
// could describe, so stats stay zeroed instead of reporting a misleading
// 0% hit rate.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	if c.cap == 0 {
		var zero V
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put inserts or refreshes an entry, evicting the least-recently-used one
// when over capacity.
func (c *LRU[K, V]) Put(key K, val V) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[K, V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[K, V]{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[K, V]).key)
		c.evictions++
	}
}

// Invalidate drops every entry and advances the epoch (hit/miss counters are
// preserved). Called whenever the models behind the cached plans change, i.e.
// after training or a model hot-swap.
func (c *LRU[K, V]) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = map[K]*list.Element{}
	c.epoch++
}

// Epoch returns the invalidation count.
func (c *LRU[K, V]) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Len returns the current entry count.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the counters.
func (c *LRU[K, V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      c.ll.Len(),
		Capacity:  c.cap,
		Epoch:     c.epoch,
	}
}
