// Package optimizer implements the traditional cost-based query optimizer
// that FOSS doctors: a Selinger-style dynamic program over left-deep join
// trees choosing join order, join methods, and access paths from estimated
// cardinalities — plus the two steering mechanisms the paper relies on:
//
//   - HintedPlan: the pg_hint_plan analog. Given an ICP (join order + join
//     methods) it completes a full plan honoring the ICP exactly, choosing
//     the remaining details (access paths) with its own expert knowledge.
//   - Config.Disabled: Bao-style coarse hints that forbid whole operator
//     classes for the entire query.
//
// All cost arithmetic uses estimated cardinalities from internal/engine/stats;
// the estimation error against the executor's true cardinalities is the
// optimizer regret FOSS learns to repair.
package optimizer

import (
	"fmt"
	"math"
	"math/bits"

	"github.com/foss-db/foss/internal/engine/cost"
	"github.com/foss-db/foss/internal/engine/stats"
	"github.com/foss-db/foss/internal/engine/storage"
	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/query"
)

// Config alters the optimizer's search space (coarse hints).
type Config struct {
	DisabledJoins      map[plan.JoinMethod]bool // Bao-style "set enable_hashjoin=off"
	DisableIndexScan   bool
	AllowCrossProducts bool
}

// Optimizer plans queries against one database + statistics catalog.
type Optimizer struct {
	DB     *storage.DB
	Stats  *stats.Catalog
	Params cost.Params
}

// New creates an optimizer with the standard (believed) cost constants.
func New(db *storage.DB, st *stats.Catalog) *Optimizer {
	return &Optimizer{DB: db, Stats: st, Params: cost.OptimizerParams()}
}

// NewWithParams creates an optimizer that believes custom cost constants —
// the planning half of an alternative engine backend whose operator
// preferences differ from the Selinger defaults.
func NewWithParams(db *storage.DB, st *stats.Catalog, p cost.Params) *Optimizer {
	return &Optimizer{DB: db, Stats: st, Params: p}
}

// scanChoice is the chosen access path for one alias.
type scanChoice struct {
	method  plan.ScanMethod
	idxCol  string
	idxFlt  int
	cost    float64
	outRows float64
}

// chooseScan selects the cheapest access path for an alias.
func (o *Optimizer) chooseScan(q *query.Query, alias string, cfg Config) scanChoice {
	table := q.TableOf(alias)
	ts := o.Stats.Table(table)
	meta := o.DB.Table(table).Meta
	baseRows := float64(o.DB.Table(table).NumRows())
	filters := q.FiltersOn(alias)
	outRows := o.Stats.ScanRows(q, alias)

	best := scanChoice{
		method:  plan.SeqScan,
		idxFlt:  -1,
		cost:    o.Params.SeqScanCost(baseRows, len(filters)),
		outRows: outRows,
	}
	if cfg.DisableIndexScan || ts == nil {
		return best
	}
	for fi, f := range filters {
		if f.Op != query.Eq {
			continue
		}
		ci := meta.ColIndex(f.Col)
		if ci < 0 || !meta.Columns[ci].Indexed {
			continue
		}
		cs := ts.Cols[f.Col]
		if cs == nil {
			continue
		}
		matches := baseRows * cs.EqSelectivity(f.Val)
		if matches < 1 {
			matches = 1
		}
		c := o.Params.IndexScanCost(baseRows, matches, len(filters)-1)
		if c < best.cost {
			best = scanChoice{method: plan.IndexScan, idxCol: f.Col, idxFlt: fi, cost: c, outRows: outRows}
		}
	}
	return best
}

// innerIndexInfo reports whether the inner (right, base-table) side of a join
// has an index usable for the join: indexed on the inner join column.
func (o *Optimizer) innerIndexInfo(q *query.Query, innerAlias string, preds []query.JoinPred) (indexed bool, sortedCol string) {
	meta := o.DB.Table(q.TableOf(innerAlias)).Meta
	for _, p := range preds {
		col := p.RC
		if p.RA != innerAlias {
			col = p.LC
		}
		ci := meta.ColIndex(col)
		if ci >= 0 && meta.Columns[ci].Indexed {
			return true, col
		}
	}
	return false, ""
}

// joinOutRows estimates the cardinality of joining a subset (leftRows) with
// the scan output of alias via preds, under the classic NDV formula with
// independence across multiple predicates.
func (o *Optimizer) joinOutRows(q *query.Query, leftRows, rightRows float64, preds []query.JoinPred) float64 {
	out := leftRows * rightRows
	for _, p := range preds {
		out *= o.Stats.JoinSelectivity(q.TableOf(p.LA), p.LC, q.TableOf(p.RA), p.RC)
	}
	if out < 1 {
		out = 1
	}
	return out
}

// joinCost returns the estimated cost of one join step with the given method.
func (o *Optimizer) joinCost(q *query.Query, m plan.JoinMethod, lRows, rRows, outRows float64,
	innerAlias string, preds []query.JoinPred) float64 {
	switch m {
	case plan.HashJoin:
		return o.Params.HashJoinCost(lRows, rRows, outRows)
	case plan.MergeJoin:
		_, sortedCol := o.innerIndexInfo(q, innerAlias, preds)
		return o.Params.MergeJoinCost(lRows, rRows, outRows, false, sortedCol != "")
	case plan.NestLoop:
		indexed, _ := o.innerIndexInfo(q, innerAlias, preds)
		innerBase := float64(o.DB.Table(q.TableOf(innerAlias)).NumRows())
		return o.Params.NestLoopCost(lRows, innerBase, outRows, indexed)
	}
	panic("optimizer: unknown join method")
}

// dpEntry is the best left-deep plan found for one table subset.
type dpEntry struct {
	cost    float64
	rows    float64
	order   []int
	methods []plan.JoinMethod
}

// Plan runs the Selinger DP with the default configuration.
func (o *Optimizer) Plan(q *query.Query) (*plan.CP, error) {
	return o.PlanWithConfig(q, Config{})
}

// PlanWithConfig runs the Selinger DP honoring coarse hints.
func (o *Optimizer) PlanWithConfig(q *query.Query, cfg Config) (*plan.CP, error) {
	n := q.NumTables()
	if n == 0 {
		return nil, fmt.Errorf("optimizer: empty query %s: %w", q.ID, fosserr.ErrNoPlan)
	}
	if n > 20 {
		return nil, fmt.Errorf("optimizer: %d tables exceeds DP limit: %w", n, fosserr.ErrNoPlan)
	}
	aliases := q.Aliases()
	scans := make([]scanChoice, n)
	for i, a := range aliases {
		scans[i] = o.chooseScan(q, a, cfg)
	}
	methods := enabledMethods(cfg)
	if len(methods) == 0 {
		return nil, fmt.Errorf("optimizer: all join methods disabled: %w", fosserr.ErrNoPlan)
	}

	dp := make(map[uint32]*dpEntry, 1<<uint(n))
	for i := 0; i < n; i++ {
		dp[1<<uint(i)] = &dpEntry{cost: scans[i].cost, rows: scans[i].outRows, order: []int{i}}
	}
	full := uint32(1<<uint(n)) - 1

	// Enumerate subsets in increasing popcount so every predecessor exists.
	for size := 2; size <= n; size++ {
		for s := uint32(1); s <= full; s++ {
			if bits.OnesCount32(s) != size {
				continue
			}
			var best *dpEntry
			for t := 0; t < n; t++ {
				bit := uint32(1) << uint(t)
				if s&bit == 0 {
					continue
				}
				prev := dp[s&^bit]
				if prev == nil {
					continue
				}
				set := map[string]bool{}
				for _, pi := range prev.order {
					set[aliases[pi]] = true
				}
				preds := q.JoinsBetween(set, aliases[t])
				if len(preds) == 0 && !cfg.AllowCrossProducts {
					continue
				}
				outRows := o.joinOutRows(q, prev.rows, scans[t].outRows, preds)
				for _, m := range methods {
					jc := o.joinCost(q, m, prev.rows, scans[t].outRows, outRows, aliases[t], preds)
					// NestLoop accesses the inner relation through its join
					// formula (index descents or repeated base scans); the
					// standalone inner scan is not additionally charged.
					scanC := scans[t].cost
					if m == plan.NestLoop {
						scanC = 0
					}
					total := prev.cost + scanC + jc
					if best == nil || total < best.cost {
						order := append(append([]int(nil), prev.order...), t)
						ms := append(append([]plan.JoinMethod(nil), prev.methods...), m)
						best = &dpEntry{cost: total, rows: outRows, order: order, methods: ms}
					}
				}
			}
			if best != nil {
				dp[s] = best
			}
		}
	}
	e := dp[full]
	if e == nil {
		// Disconnected join graph with cross products forbidden: retry
		// permitting them (PostgreSQL would also produce the cross join).
		if !cfg.AllowCrossProducts {
			cfg.AllowCrossProducts = true
			return o.PlanWithConfig(q, cfg)
		}
		return nil, fmt.Errorf("optimizer: no plan found for %s: %w", q.ID, fosserr.ErrNoPlan)
	}
	icp := plan.ICP{}
	for _, i := range e.order {
		icp.Order = append(icp.Order, aliases[i])
	}
	icp.Methods = e.methods
	return o.buildCP(q, icp, scans, aliases)
}

func enabledMethods(cfg Config) []plan.JoinMethod {
	var ms []plan.JoinMethod
	for _, m := range []plan.JoinMethod{plan.HashJoin, plan.MergeJoin, plan.NestLoop} {
		if cfg.DisabledJoins == nil || !cfg.DisabledJoins[m] {
			ms = append(ms, m)
		}
	}
	return ms
}

// HintedPlan completes a full plan that honors the ICP exactly: the join
// order and join methods are taken verbatim; scans and annotations are
// filled in by the optimizer (the pg_hint_plan contract).
func (o *Optimizer) HintedPlan(q *query.Query, icp plan.ICP) (*plan.CP, error) {
	n := q.NumTables()
	if len(icp.Order) != n || len(icp.Methods) != n-1 {
		return nil, fmt.Errorf("optimizer: ICP arity mismatch for %s: %d tables vs %d/%d: %w", q.ID, n, len(icp.Order), len(icp.Methods), fosserr.ErrNoPlan)
	}
	aliases := q.Aliases()
	pos := map[string]int{}
	for i, a := range aliases {
		pos[a] = i
	}
	scans := make([]scanChoice, n)
	for i, a := range aliases {
		scans[i] = o.chooseScan(q, a, Config{})
	}
	for _, a := range icp.Order {
		if _, ok := pos[a]; !ok {
			return nil, fmt.Errorf("optimizer: ICP references unknown alias %q: %w", a, fosserr.ErrNoPlan)
		}
	}
	return o.buildCP(q, icp, scans, aliases)
}

// buildCP materializes the plan tree for a concrete ICP with annotations.
func (o *Optimizer) buildCP(q *query.Query, icp plan.ICP, scans []scanChoice, aliases []string) (*plan.CP, error) {
	pos := map[string]int{}
	for i, a := range aliases {
		pos[a] = i
	}
	mkScan := func(alias string) *plan.Node {
		sc := scans[pos[alias]]
		return &plan.Node{
			Alias:    alias,
			Scan:     sc.method,
			IdxCol:   sc.idxCol,
			IdxFlt:   sc.idxFlt,
			ScanPred: q.FiltersOn(alias),
			EstRows:  sc.outRows,
			EstCost:  sc.cost,
		}
	}
	cur := mkScan(icp.Order[0])
	set := map[string]bool{icp.Order[0]: true}
	rows := cur.EstRows
	totalCost := cur.EstCost
	for i := 1; i < len(icp.Order); i++ {
		next := icp.Order[i]
		preds := q.JoinsBetween(set, next)
		right := mkScan(next)
		m := icp.Methods[i-1]
		outRows := o.joinOutRows(q, rows, right.EstRows, preds)
		jc := o.joinCost(q, m, rows, right.EstRows, outRows, next, preds)
		if m == plan.NestLoop {
			totalCost += jc // inner access is inside the NLJ formula
		} else {
			totalCost += right.EstCost + jc
		}
		cur = &plan.Node{
			Method:  m,
			Preds:   preds,
			Left:    cur,
			Right:   right,
			EstRows: outRows,
			EstCost: totalCost,
		}
		set[next] = true
		rows = outRows
	}
	return &plan.CP{Root: cur, Q: q}, nil
}

// EstimatedCost returns the root cumulative estimated cost of a plan.
func EstimatedCost(cp *plan.CP) float64 {
	if cp == nil || cp.Root == nil {
		return math.Inf(1)
	}
	if cp.Root.IsScan() {
		return cp.Root.EstCost
	}
	return cp.Root.EstCost
}

// PartialPlan builds an annotated left-deep plan over a *subset* of the
// query's tables (a construction prefix), used by the plan-constructor
// baselines (Balsa, Loger) to evaluate partial states. order lists the
// joined aliases bottom-up; methods has len(order)-1 entries.
func (o *Optimizer) PartialPlan(q *query.Query, order []string, methods []plan.JoinMethod) (*plan.CP, error) {
	if len(order) == 0 || len(methods) != len(order)-1 {
		return nil, fmt.Errorf("optimizer: partial plan arity mismatch (%d tables, %d methods)", len(order), len(methods))
	}
	aliases := q.Aliases()
	scans := make([]scanChoice, len(aliases))
	for i, a := range aliases {
		scans[i] = o.chooseScan(q, a, Config{})
	}
	icp := plan.ICP{Order: order, Methods: methods}
	return o.buildCP(q, icp, scans, aliases)
}

// CheapestMethod returns the estimated-cheapest join method for extending a
// left-deep prefix (leftRows estimated) with the given inner alias, among
// the allowed set (nil = all). Used by Loger's method-restriction actions.
func (o *Optimizer) CheapestMethod(q *query.Query, leftRows float64, innerAlias string, preds []query.JoinPred, allowed map[plan.JoinMethod]bool) plan.JoinMethod {
	rRows := o.Stats.ScanRows(q, innerAlias)
	outRows := o.joinOutRows(q, leftRows, rRows, preds)
	best, bestC := plan.HashJoin, math.Inf(1)
	for _, m := range []plan.JoinMethod{plan.HashJoin, plan.MergeJoin, plan.NestLoop} {
		if allowed != nil && !allowed[m] {
			continue
		}
		c := o.joinCost(q, m, leftRows, rRows, outRows, innerAlias, preds)
		if c < bestC {
			bestC, best = c, m
		}
	}
	return best
}

// PlanWithPrefix runs the Selinger DP with the leading join order forced to
// the given prefix (HybridQO's leading-order hint). The prefix's internal
// methods are chosen by cost; the DP extends freely afterwards.
func (o *Optimizer) PlanWithPrefix(q *query.Query, prefix []string) (*plan.CP, error) {
	if len(prefix) == 0 {
		return o.Plan(q)
	}
	aliases := q.Aliases()
	pos := map[string]int{}
	for i, a := range aliases {
		pos[a] = i
	}
	for _, a := range prefix {
		if _, ok := pos[a]; !ok {
			return nil, fmt.Errorf("optimizer: prefix references unknown alias %q", a)
		}
	}
	scans := make([]scanChoice, len(aliases))
	for i, a := range aliases {
		scans[i] = o.chooseScan(q, a, Config{})
	}
	// Greedily choose methods within the prefix by cost.
	set := map[string]bool{prefix[0]: true}
	rows := scans[pos[prefix[0]]].outRows
	cost := scans[pos[prefix[0]]].cost
	var methods []plan.JoinMethod
	for i := 1; i < len(prefix); i++ {
		next := prefix[i]
		preds := q.JoinsBetween(set, next)
		m := o.CheapestMethod(q, rows, next, preds, nil)
		outRows := o.joinOutRows(q, rows, scans[pos[next]].outRows, preds)
		jc := o.joinCost(q, m, rows, scans[pos[next]].outRows, outRows, next, preds)
		if m == plan.NestLoop {
			cost += jc
		} else {
			cost += scans[pos[next]].cost + jc
		}
		methods = append(methods, m)
		set[next] = true
		rows = outRows
	}
	if len(prefix) == len(aliases) {
		return o.buildCP(q, plan.ICP{Order: prefix, Methods: methods}, scans, aliases)
	}
	// Extend greedily-by-DP over remaining tables: standard DP seeded with
	// the prefix state. For simplicity (and because prefixes are short), we
	// extend greedily by cheapest next (table, method), which preserves the
	// hint semantics: the leading order steers, the optimizer completes.
	order := append([]string(nil), prefix...)
	for len(order) < len(aliases) {
		bestCost := math.Inf(1)
		var bestAlias string
		var bestMethod plan.JoinMethod
		var bestRows float64
		for _, a := range aliases {
			if set[a] {
				continue
			}
			preds := q.JoinsBetween(set, a)
			if len(preds) == 0 {
				continue
			}
			for _, m := range []plan.JoinMethod{plan.HashJoin, plan.MergeJoin, plan.NestLoop} {
				outRows := o.joinOutRows(q, rows, scans[pos[a]].outRows, preds)
				jc := o.joinCost(q, m, rows, scans[pos[a]].outRows, outRows, a, preds)
				total := jc
				if m != plan.NestLoop {
					total += scans[pos[a]].cost
				}
				if total < bestCost {
					bestCost, bestAlias, bestMethod, bestRows = total, a, m, outRows
				}
			}
		}
		if bestAlias == "" {
			// disconnected remainder: take any remaining alias via cross join
			for _, a := range aliases {
				if !set[a] {
					bestAlias, bestMethod = a, plan.HashJoin
					bestRows = rows * scans[pos[a]].outRows
					break
				}
			}
		}
		order = append(order, bestAlias)
		methods = append(methods, bestMethod)
		set[bestAlias] = true
		rows = bestRows
	}
	return o.buildCP(q, plan.ICP{Order: order, Methods: methods}, scans, aliases)
}
