package optimizer

import (
	"testing"

	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/engine/stats"
	"github.com/foss-db/foss/internal/engine/storage"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/query"
)

func chainDB(t *testing.T) (*storage.DB, *stats.Catalog, *query.Query) {
	t.Helper()
	s := catalog.NewSchema()
	s.AddTable(catalog.NewTable("a", catalog.Column{Name: "id", Indexed: true}, catalog.Column{Name: "v"}))
	s.AddTable(catalog.NewTable("b", catalog.Column{Name: "id", Indexed: true}, catalog.Column{Name: "a_id", Indexed: true}))
	s.AddTable(catalog.NewTable("c", catalog.Column{Name: "id", Indexed: true}, catalog.Column{Name: "b_id", Indexed: true}))
	s.AddTable(catalog.NewTable("d", catalog.Column{Name: "id", Indexed: true}, catalog.Column{Name: "c_id", Indexed: true}))
	db := storage.NewDB(s)
	for i := 0; i < 200; i++ {
		db.Table("a").AppendRow(int64(i), int64(i%7))
	}
	for i := 0; i < 800; i++ {
		db.Table("b").AppendRow(int64(i), int64(i%200))
	}
	for i := 0; i < 1200; i++ {
		db.Table("c").AppendRow(int64(i), int64(i%800))
	}
	for i := 0; i < 600; i++ {
		db.Table("d").AppendRow(int64(i), int64(i%1200))
	}
	db.BuildAllIndexes()
	q := &query.Query{
		ID: "chain",
		Tables: []query.TableRef{
			{Table: "a", Alias: "a"}, {Table: "b", Alias: "b"},
			{Table: "c", Alias: "c"}, {Table: "d", Alias: "d"},
		},
		Joins: []query.JoinPred{
			{LA: "b", LC: "a_id", RA: "a", RC: "id"},
			{LA: "c", LC: "b_id", RA: "b", RC: "id"},
			{LA: "d", LC: "c_id", RA: "c", RC: "id"},
		},
		Filters: []query.Filter{{Alias: "a", Col: "v", Op: query.Eq, Val: 3}},
	}
	return db, stats.Build(db, 1.0, 1), q
}

func TestPartialPlanCoversPrefixOnly(t *testing.T) {
	db, st, q := chainDB(t)
	opt := New(db, st)
	cp, err := opt.PartialPlan(q, []string{"a", "b"}, []plan.JoinMethod{plan.HashJoin})
	if err != nil {
		t.Fatal(err)
	}
	icp, err := plan.Extract(cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(icp.Order) != 2 || icp.Order[0] != "a" || icp.Order[1] != "b" {
		t.Fatalf("partial order = %v", icp.Order)
	}
	if icp.Methods[0] != plan.HashJoin {
		t.Fatalf("partial method = %v", icp.Methods[0])
	}
	if _, err := opt.PartialPlan(q, []string{"a", "b"}, nil); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestPlanWithPrefixHonorsPrefix(t *testing.T) {
	db, st, q := chainDB(t)
	opt := New(db, st)
	for _, prefix := range [][]string{{"d"}, {"c", "d"}, {"b", "c", "d"}} {
		cp, err := opt.PlanWithPrefix(q, prefix)
		if err != nil {
			t.Fatal(err)
		}
		icp, err := plan.Extract(cp)
		if err != nil {
			t.Fatal(err)
		}
		if len(icp.Order) != 4 {
			t.Fatalf("plan covers %d tables", len(icp.Order))
		}
		for i, a := range prefix {
			if icp.Order[i] != a {
				t.Fatalf("prefix %v not honored: order %v", prefix, icp.Order)
			}
		}
	}
	if _, err := opt.PlanWithPrefix(q, []string{"zz"}); err == nil {
		t.Fatal("unknown prefix alias accepted")
	}
}

func TestPlanWithEmptyPrefixEqualsPlan(t *testing.T) {
	db, st, q := chainDB(t)
	opt := New(db, st)
	a, err := opt.PlanWithPrefix(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := opt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	ia, _ := plan.Extract(a)
	ib, _ := plan.Extract(b)
	if !ia.Equal(ib) {
		t.Fatalf("empty prefix diverges: %v vs %v", ia, ib)
	}
}

func TestCheapestMethodRespectsRestriction(t *testing.T) {
	db, st, q := chainDB(t)
	opt := New(db, st)
	preds := []query.JoinPred{q.Joins[0]}
	free := opt.CheapestMethod(q, 10, "a", preds, nil)
	restricted := opt.CheapestMethod(q, 10, "a", preds,
		map[plan.JoinMethod]bool{plan.HashJoin: true})
	if restricted != plan.HashJoin {
		t.Fatalf("restriction ignored: got %v", restricted)
	}
	_ = free // free choice may legitimately differ
}

func TestDPBeatsWorstHintedPlan(t *testing.T) {
	// The DP's chosen plan should have estimated cost no worse than any
	// hinted plan's estimate (it optimizes exactly that objective).
	db, st, q := chainDB(t)
	opt := New(db, st)
	best, err := opt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	alt, err := opt.HintedPlan(q, plan.ICP{
		Order:   []string{"d", "c", "b", "a"},
		Methods: []plan.JoinMethod{plan.MergeJoin, plan.MergeJoin, plan.MergeJoin},
	})
	if err != nil {
		t.Fatal(err)
	}
	if EstimatedCost(best) > EstimatedCost(alt)+1e-6 {
		t.Fatalf("DP cost %f exceeds hinted alternative %f", EstimatedCost(best), EstimatedCost(alt))
	}
}
