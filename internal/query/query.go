// Package query represents select-project-join queries structurally: a set
// of table references (with aliases), equi-join predicates, and single-table
// filter predicates. FOSS, the traditional optimizer, and all baselines
// consume this representation; no SQL parsing is involved (workloads are
// generated programmatically), but Query can render itself as SQL text.
package query

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// CmpOp is a comparison operator in a filter predicate.
type CmpOp int

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
	Between // Val <= x <= Hi
	In      // x ∈ Set
)

func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Between:
		return "BETWEEN"
	case In:
		return "IN"
	}
	return "?"
}

// Filter is a single-table predicate alias.Col op Val.
type Filter struct {
	Alias string
	Col   string
	Op    CmpOp
	Val   int64
	Hi    int64   // upper bound for Between
	Set   []int64 // members for In
}

// JoinPred is an equi-join predicate LA.LC = RA.RC between two aliases.
type JoinPred struct {
	LA, LC string
	RA, RC string
}

// Touches reports whether the predicate involves the alias.
func (j JoinPred) Touches(alias string) bool { return j.LA == alias || j.RA == alias }

// Other returns the alias on the opposite side, or "".
func (j JoinPred) Other(alias string) string {
	switch alias {
	case j.LA:
		return j.RA
	case j.RA:
		return j.LA
	}
	return ""
}

// TableRef binds an alias to a base table.
type TableRef struct {
	Table string
	Alias string
}

// Query is a full SPJ query. A Query is immutable once it enters a serving
// path (planners, caches, and the tier router all share the pointer); the
// memoized fingerprint relies on that contract.
type Query struct {
	ID       string // unique within a workload, e.g. "1b" or "q7_3"
	Template string // template name, e.g. "t1"
	Tables   []TableRef
	Joins    []JoinPred
	Filters  []Filter

	// fp memoizes Fingerprint: rendering SQL text per call allocates, and the
	// serving fast path must not. 0 means "not yet computed" (a computed zero
	// is remapped to 1 — both unreachable in practice for FNV-1a over SQL).
	fp atomic.Uint64
}

// NumTables returns the number of joined relations.
func (q *Query) NumTables() int { return len(q.Tables) }

// TableOf returns the base table bound to an alias ("" if unknown).
func (q *Query) TableOf(alias string) string {
	for _, t := range q.Tables {
		if t.Alias == alias {
			return t.Table
		}
	}
	return ""
}

// Aliases returns all aliases in declaration order.
func (q *Query) Aliases() []string {
	as := make([]string, len(q.Tables))
	for i, t := range q.Tables {
		as[i] = t.Alias
	}
	return as
}

// FiltersOn returns the filters that apply to the alias.
func (q *Query) FiltersOn(alias string) []Filter {
	var fs []Filter
	for _, f := range q.Filters {
		if f.Alias == alias {
			fs = append(fs, f)
		}
	}
	return fs
}

// JoinsBetween returns every join predicate connecting an alias in the set
// with the candidate alias.
func (q *Query) JoinsBetween(set map[string]bool, alias string) []JoinPred {
	var js []JoinPred
	for _, j := range q.Joins {
		if j.LA == alias && set[j.RA] {
			js = append(js, j)
		} else if j.RA == alias && set[j.LA] {
			js = append(js, j)
		}
	}
	return js
}

// Adjacent returns the aliases directly joined to the given alias, sorted.
func (q *Query) Adjacent(alias string) []string {
	seen := map[string]bool{}
	for _, j := range q.Joins {
		if o := j.Other(alias); o != "" {
			seen[o] = true
		}
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// IsConnectedOrder reports whether the left-deep join order is free of cross
// products: every prefix of length ≥2 must be connected via join predicates.
func (q *Query) IsConnectedOrder(order []string) bool {
	if len(order) < 2 {
		return true
	}
	set := map[string]bool{order[0]: true}
	for _, a := range order[1:] {
		if len(q.JoinsBetween(set, a)) == 0 {
			return false
		}
		set[a] = true
	}
	return true
}

// Connected reports whether the whole join graph is connected.
func (q *Query) Connected() bool {
	if len(q.Tables) == 0 {
		return true
	}
	seen := map[string]bool{q.Tables[0].Alias: true}
	frontier := []string{q.Tables[0].Alias}
	for len(frontier) > 0 {
		a := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, b := range q.Adjacent(a) {
			if !seen[b] {
				seen[b] = true
				frontier = append(frontier, b)
			}
		}
	}
	return len(seen) == len(q.Tables)
}

// SQL renders the query as SQL text for display and logging.
func (q *Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT COUNT(*) FROM ")
	for i, t := range q.Tables {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s AS %s", t.Table, t.Alias)
	}
	var conds []string
	for _, j := range q.Joins {
		conds = append(conds, fmt.Sprintf("%s.%s = %s.%s", j.LA, j.LC, j.RA, j.RC))
	}
	for _, f := range q.Filters {
		switch f.Op {
		case Between:
			conds = append(conds, fmt.Sprintf("%s.%s BETWEEN %d AND %d", f.Alias, f.Col, f.Val, f.Hi))
		case In:
			vals := make([]string, len(f.Set))
			for i, v := range f.Set {
				vals[i] = fmt.Sprint(v)
			}
			conds = append(conds, fmt.Sprintf("%s.%s IN (%s)", f.Alias, f.Col, strings.Join(vals, ", ")))
		default:
			conds = append(conds, fmt.Sprintf("%s.%s %s %d", f.Alias, f.Col, f.Op, f.Val))
		}
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	b.WriteString(";")
	return b.String()
}

// Fingerprint returns a stable hash of the query's structure (tables, join
// predicates, filters — everything that determines its plan space). Two
// structurally identical queries share a fingerprint regardless of ID, which
// is what plan caches key on. The hash is memoized: repeat calls are a
// single atomic load, which keeps the tier-0 serving path allocation-free.
func (q *Query) Fingerprint() uint64 {
	if h := q.fp.Load(); h != 0 {
		return h
	}
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range []byte(q.SQL()) {
		h ^= uint64(b)
		h *= prime
	}
	if h == 0 {
		h = 1 // keep 0 as the "unset" sentinel
	}
	q.fp.Store(h)
	return h
}

// Validate checks structural sanity: aliases unique and resolvable, join
// predicates and filters referencing declared aliases.
func (q *Query) Validate() error {
	seen := map[string]bool{}
	for _, t := range q.Tables {
		if seen[t.Alias] {
			return fmt.Errorf("query %s: duplicate alias %q", q.ID, t.Alias)
		}
		seen[t.Alias] = true
	}
	for _, j := range q.Joins {
		if !seen[j.LA] || !seen[j.RA] {
			return fmt.Errorf("query %s: join references unknown alias %v", q.ID, j)
		}
		if j.LA == j.RA {
			return fmt.Errorf("query %s: self-join predicate on single alias %q", q.ID, j.LA)
		}
	}
	for _, f := range q.Filters {
		if !seen[f.Alias] {
			return fmt.Errorf("query %s: filter references unknown alias %q", q.ID, f.Alias)
		}
	}
	return nil
}
