package query

import (
	"strings"
	"testing"
)

func sampleQuery() *Query {
	return &Query{
		ID: "s1",
		Tables: []TableRef{
			{Table: "title", Alias: "t"}, {Table: "cast_info", Alias: "ci"}, {Table: "name", Alias: "n"},
		},
		Joins: []JoinPred{
			{LA: "ci", LC: "movie_id", RA: "t", RC: "id"},
			{LA: "ci", LC: "person_id", RA: "n", RC: "id"},
		},
		Filters: []Filter{
			{Alias: "t", Col: "year", Op: Gt, Val: 2000},
			{Alias: "n", Col: "gender", Op: Eq, Val: 1},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := sampleQuery().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	q := sampleQuery()
	q.Filters = append(q.Filters, Filter{Alias: "zz", Col: "x", Op: Eq})
	if err := q.Validate(); err == nil {
		t.Fatal("unknown filter alias accepted")
	}
	q = sampleQuery()
	q.Tables = append(q.Tables, TableRef{Table: "x", Alias: "t"})
	if err := q.Validate(); err == nil {
		t.Fatal("duplicate alias accepted")
	}
	q = sampleQuery()
	q.Joins = append(q.Joins, JoinPred{LA: "t", LC: "a", RA: "t", RC: "b"})
	if err := q.Validate(); err == nil {
		t.Fatal("self-join predicate accepted")
	}
}

func TestAdjacencyAndConnectivity(t *testing.T) {
	q := sampleQuery()
	adj := q.Adjacent("ci")
	if len(adj) != 2 || adj[0] != "n" || adj[1] != "t" {
		t.Fatalf("Adjacent(ci) = %v", adj)
	}
	if !q.Connected() {
		t.Fatal("star query must be connected")
	}
	if !q.IsConnectedOrder([]string{"t", "ci", "n"}) {
		t.Fatal("t-ci-n order is connected")
	}
	if q.IsConnectedOrder([]string{"t", "n", "ci"}) {
		t.Fatal("t-n prefix has no join predicate; order must be rejected")
	}
	q.Joins = q.Joins[:1] // drop ci-n: n is now disconnected
	if q.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestJoinsBetween(t *testing.T) {
	q := sampleQuery()
	set := map[string]bool{"t": true, "n": true}
	js := q.JoinsBetween(set, "ci")
	if len(js) != 2 {
		t.Fatalf("JoinsBetween = %v", js)
	}
	if len(q.JoinsBetween(map[string]bool{"t": true}, "n")) != 0 {
		t.Fatal("t and n are not directly joined")
	}
}

func TestFiltersOnAndTableOf(t *testing.T) {
	q := sampleQuery()
	if fs := q.FiltersOn("t"); len(fs) != 1 || fs[0].Col != "year" {
		t.Fatalf("FiltersOn(t) = %v", fs)
	}
	if q.TableOf("ci") != "cast_info" || q.TableOf("zz") != "" {
		t.Fatal("TableOf broken")
	}
}

func TestSQLRendering(t *testing.T) {
	q := sampleQuery()
	q.Filters = append(q.Filters,
		Filter{Alias: "t", Col: "year", Op: Between, Val: 1990, Hi: 2000},
		Filter{Alias: "n", Col: "code", Op: In, Set: []int64{1, 2, 3}},
	)
	sql := q.SQL()
	for _, want := range []string{
		"SELECT COUNT(*)", "title AS t", "ci.movie_id = t.id",
		"t.year > 2000", "n.gender = 1", "BETWEEN 1990 AND 2000", "IN (1, 2, 3)",
	} {
		if !strings.Contains(sql, want) {
			t.Fatalf("SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestJoinPredHelpers(t *testing.T) {
	j := JoinPred{LA: "a", LC: "x", RA: "b", RC: "y"}
	if !j.Touches("a") || !j.Touches("b") || j.Touches("c") {
		t.Fatal("Touches broken")
	}
	if j.Other("a") != "b" || j.Other("b") != "a" || j.Other("c") != "" {
		t.Fatal("Other broken")
	}
}

func TestCmpOpStrings(t *testing.T) {
	ops := map[CmpOp]string{Eq: "=", Ne: "<>", Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Between: "BETWEEN", In: "IN"}
	for op, want := range ops {
		if op.String() != want {
			t.Fatalf("%v.String() = %q", int(op), op.String())
		}
	}
}
