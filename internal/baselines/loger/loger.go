// Package loger reimplements Loger (Chen et al., VLDB 2023) on this
// repository's substrate. Like Balsa it learns the join order bottom-up from
// scratch, but — its distinguishing idea — instead of committing to a
// physical join method per step, the learned policy only *restricts* the
// method set, and the traditional optimizer's cost model picks the cheapest
// method inside the restriction. This keeps expert knowledge in the loop for
// the part cost models do well, which is why Loger converges faster and
// plans more robustly than fully-from-scratch constructors.
package loger

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/engine/exec"
	"github.com/foss-db/foss/internal/nn"
	"github.com/foss-db/foss/internal/optimizer"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/planenc"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/workload"
)

// Restriction is one method-restriction action.
type Restriction struct {
	Name    string
	Allowed map[plan.JoinMethod]bool
}

// Restrictions returns Loger's restriction set.
func Restrictions() []Restriction {
	all := map[plan.JoinMethod]bool{plan.HashJoin: true, plan.MergeJoin: true, plan.NestLoop: true}
	no := func(m plan.JoinMethod) map[plan.JoinMethod]bool {
		out := map[plan.JoinMethod]bool{}
		for k, v := range all {
			if k != m {
				out[k] = v
			}
		}
		return out
	}
	return []Restriction{
		{"free", all},
		{"no_hash", no(plan.HashJoin)},
		{"no_merge", no(plan.MergeJoin)},
		{"no_nl", no(plan.NestLoop)},
	}
}

// Config tunes training.
type Config struct {
	Epsilon    float64
	Epochs     int
	LR         float64
	Seed       int64
	PassCount  int
	TimeoutMul float64
	StateNet   aam.StateNetConfig
}

// DefaultConfig returns repository-scale settings.
func DefaultConfig() Config {
	return Config{Epsilon: 0.25, Epochs: 2, LR: 1e-3, Seed: 1, PassCount: 3, TimeoutMul: 4,
		StateNet: aam.StateNetConfig{DModel: 32, Heads: 2, Layers: 1, FFDim: 64, StateDim: 32}}
}

// Loger is one instance.
type Loger struct {
	W   *workload.Workload
	Cfg Config

	enc   *planenc.Encoder
	opt   *optimizer.Optimizer
	exec  *exec.Executor
	state *aam.StateNet
	head  *nn.MLP
	adam  *nn.Adam
	rng   *rand.Rand

	experience []expPoint
	knownBest  map[string]float64
	trainTime  time.Duration
	expertLat  map[string]float64
}

type expPoint struct {
	enc    *planenc.Encoded
	logLat float64
}

// New builds an untrained Loger.
func New(w *workload.Workload, cfg Config) *Loger {
	rng := rand.New(rand.NewSource(cfg.Seed))
	enc := planenc.NewEncoder(w.DB.Schema)
	state := aam.NewStateNet(rng, cfg.StateNet, enc.NumTables, enc.NumCols)
	head := nn.NewMLP(rng, cfg.StateNet.StateDim, 64, 1)
	params := append(state.Params(), head.Params()...)
	adam := nn.NewAdam(params, cfg.LR)
	adam.ClipNorm = 5
	return &Loger{
		W: w, Cfg: cfg,
		enc: enc, opt: optimizer.New(w.DB, w.Stats), exec: exec.New(w.DB),
		state: state, head: head, adam: adam, rng: rng,
		knownBest: map[string]float64{}, expertLat: map[string]float64{},
	}
}

func (l *Loger) valueOf(cp *plan.CP) float64 {
	sv := l.state.Forward(l.enc.Encode(cp), 0)
	return l.head.Forward(sv).Detach().Item()
}

// construct builds a plan: learned (table, restriction) choices, expert
// method selection within the restriction.
func (l *Loger) construct(q *query.Query, explore bool) (*plan.CP, error) {
	aliases := q.Aliases()
	n := len(aliases)
	joined := map[string]bool{}
	var order []string
	var methods []plan.JoinMethod

	// start from the estimated-smallest filtered table (Loger uses the DB's
	// cardinalities for its starting heuristic)
	first := aliases[0]
	bestRows := math.Inf(1)
	for _, a := range aliases {
		if r := l.W.Stats.ScanRows(q, a); r < bestRows {
			bestRows, first = r, a
		}
	}
	if explore && l.rng.Float64() < l.Cfg.Epsilon {
		first = aliases[l.rng.Intn(n)]
	}
	order = append(order, first)
	joined[first] = true
	leftRows := l.W.Stats.ScanRows(q, first)

	for len(order) < n {
		type choice struct {
			alias  string
			method plan.JoinMethod
			value  float64
		}
		var choices []choice
		for _, a := range aliases {
			if joined[a] {
				continue
			}
			preds := q.JoinsBetween(joined, a)
			if len(preds) == 0 {
				continue
			}
			for _, r := range Restrictions() {
				m := l.opt.CheapestMethod(q, leftRows, a, preds, r.Allowed)
				cp, err := l.opt.PartialPlan(q, append(append([]string(nil), order...), a), append(append([]plan.JoinMethod(nil), methods...), m))
				if err != nil {
					continue
				}
				choices = append(choices, choice{a, m, l.valueOf(cp)})
			}
		}
		if len(choices) == 0 {
			for _, a := range aliases {
				if !joined[a] {
					choices = append(choices, choice{a, plan.HashJoin, 0})
					break
				}
			}
		}
		var pick choice
		if explore && l.rng.Float64() < l.Cfg.Epsilon {
			pick = choices[l.rng.Intn(len(choices))]
		} else {
			pick = choices[0]
			for _, c := range choices[1:] {
				if c.value < pick.value {
					pick = c
				}
			}
		}
		order = append(order, pick.alias)
		methods = append(methods, pick.method)
		joined[pick.alias] = true
		leftRows = l.W.Stats.ScanRows(q, pick.alias) * leftRows // coarse running estimate
	}
	return l.opt.PartialPlan(q, order, methods)
}

func (l *Loger) expertLatency(q *query.Query) float64 {
	if v, ok := l.expertLat[q.ID]; ok {
		return v
	}
	cp, err := l.opt.Plan(q)
	if err != nil {
		l.expertLat[q.ID] = 1000
		return 1000
	}
	v := l.exec.Execute(cp, 0).LatencyMs
	l.expertLat[q.ID] = v
	return v
}

// Train runs PassCount passes of construct-execute-refit.
func (l *Loger) Train(onPass func(pass int)) error {
	start := time.Now()
	defer func() { l.trainTime += time.Since(start) }()
	for pass := 0; pass < l.Cfg.PassCount; pass++ {
		for _, q := range l.W.Train {
			cp, err := l.construct(q, true)
			if err != nil {
				return fmt.Errorf("loger: construct %s: %w", q.ID, err)
			}
			timeout := l.expertLatency(q) * l.Cfg.TimeoutMul
			res := l.exec.Execute(cp, timeout)
			lat := res.LatencyMs
			if res.TimedOut {
				lat = timeout * 2
			}
			l.record(q, cp, lat, res.TimedOut)
		}
		l.refreshModel()
		if onPass != nil {
			onPass(pass)
		}
	}
	return nil
}

func (l *Loger) record(q *query.Query, cp *plan.CP, latency float64, timedOut bool) {
	l.experience = append(l.experience, expPoint{l.enc.Encode(cp), math.Log(math.Max(latency, 1e-3))})
	if !timedOut {
		if cur, ok := l.knownBest[q.ID]; !ok || latency < cur {
			l.knownBest[q.ID] = latency
		}
	}
}

func (l *Loger) refreshModel() {
	if len(l.experience) == 0 {
		return
	}
	idx := l.rng.Perm(len(l.experience))
	for ep := 0; ep < l.Cfg.Epochs; ep++ {
		for _, i := range idx {
			pt := l.experience[i]
			l.adam.ZeroGrad()
			sv := l.state.Forward(pt.enc, 0)
			pred := l.head.Forward(sv)
			diff := nn.AddScalar(pred, -pt.logLat)
			loss := nn.Mean(nn.Mul(diff, diff))
			loss.Backward()
			l.adam.Step()
		}
	}
}

// Plan constructs the greedy plan for a query.
func (l *Loger) Plan(q *query.Query) (*plan.CP, time.Duration, error) {
	startT := time.Now()
	cp, err := l.construct(q, false)
	if err != nil {
		return nil, 0, err
	}
	return cp, time.Since(startT), nil
}

// KnownBest returns the best executed latency per query seen in training.
func (l *Loger) KnownBest() map[string]float64 { return l.knownBest }

// TrainingTime reports wall-clock spent training.
func (l *Loger) TrainingTime() time.Duration { return l.trainTime }
