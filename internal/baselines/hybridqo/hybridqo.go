// Package hybridqo reimplements HybridQO (Yu et al., VLDB 2022) on this
// repository's substrate: a hybrid cost-based/learning-based optimizer that
// uses Monte Carlo Tree Search over *leading join-order prefixes*, hands
// each promising prefix to the traditional optimizer as a hint, and selects
// among the completed candidate plans with a learned value model (plus the
// unhinted expert plan as a candidate). The search space sits between Bao's
// coarse hints and FOSS's fine-grained edits: the hint fixes only how the
// plan starts.
package hybridqo

import (
	"math"
	"math/rand"
	"time"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/engine/exec"
	"github.com/foss-db/foss/internal/nn"
	"github.com/foss-db/foss/internal/optimizer"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/planenc"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/workload"
)

// Config tunes search and training.
type Config struct {
	MaxPrefixLen int     // depth of the prefix tree
	Simulations  int     // MCTS simulations per query
	UCTc         float64 // exploration constant
	TopK         int     // candidate prefixes handed to the optimizer
	Epsilon      float64 // training exploration
	Epochs       int
	LR           float64
	Seed         int64
	PassCount    int
	StateNet     aam.StateNetConfig
}

// DefaultConfig returns repository-scale settings.
func DefaultConfig() Config {
	return Config{
		MaxPrefixLen: 3, Simulations: 40, UCTc: 1.2, TopK: 4,
		Epsilon: 0.2, Epochs: 2, LR: 1e-3, Seed: 1, PassCount: 3,
		StateNet: aam.StateNetConfig{DModel: 32, Heads: 2, Layers: 1, FFDim: 64, StateDim: 32},
	}
}

// HybridQO is one instance.
type HybridQO struct {
	W   *workload.Workload
	Cfg Config

	enc   *planenc.Encoder
	opt   *optimizer.Optimizer
	exec  *exec.Executor
	state *aam.StateNet
	head  *nn.MLP
	adam  *nn.Adam
	rng   *rand.Rand

	experience []expPoint
	knownBest  map[string]float64
	trainTime  time.Duration
}

type expPoint struct {
	enc    *planenc.Encoded
	logLat float64
}

// New builds an untrained HybridQO.
func New(w *workload.Workload, cfg Config) *HybridQO {
	rng := rand.New(rand.NewSource(cfg.Seed))
	enc := planenc.NewEncoder(w.DB.Schema)
	state := aam.NewStateNet(rng, cfg.StateNet, enc.NumTables, enc.NumCols)
	head := nn.NewMLP(rng, cfg.StateNet.StateDim, 64, 1)
	params := append(state.Params(), head.Params()...)
	adam := nn.NewAdam(params, cfg.LR)
	adam.ClipNorm = 5
	return &HybridQO{
		W: w, Cfg: cfg,
		enc: enc, opt: optimizer.New(w.DB, w.Stats), exec: exec.New(w.DB),
		state: state, head: head, adam: adam, rng: rng,
		knownBest: map[string]float64{},
	}
}

func (h *HybridQO) predict(cp *plan.CP) float64 {
	sv := h.state.Forward(h.enc.Encode(cp), 0)
	return h.head.Forward(sv).Detach().Item()
}

// mctsNode is one prefix in the search tree.
type mctsNode struct {
	prefix   []string
	children []*mctsNode
	visits   int
	total    float64 // sum of rewards (negative predicted log-latency)
	expanded bool
}

// searchPrefixes runs MCTS and returns the TopK best-visited prefixes.
func (h *HybridQO) searchPrefixes(q *query.Query) [][]string {
	root := &mctsNode{}
	var leaves []*mctsNode

	rollout := func(n *mctsNode) float64 {
		cp, err := h.opt.PlanWithPrefix(q, n.prefix)
		if err != nil {
			return -10
		}
		// reward: negative predicted log-latency (higher is better)
		return -h.predict(cp)
	}

	expand := func(n *mctsNode) {
		n.expanded = true
		if len(n.prefix) >= h.Cfg.MaxPrefixLen {
			return
		}
		set := map[string]bool{}
		for _, a := range n.prefix {
			set[a] = true
		}
		for _, a := range q.Aliases() {
			if set[a] {
				continue
			}
			if len(n.prefix) > 0 && len(q.JoinsBetween(set, a)) == 0 {
				continue
			}
			child := &mctsNode{prefix: append(append([]string(nil), n.prefix...), a)}
			n.children = append(n.children, child)
			leaves = append(leaves, child)
		}
	}

	expand(root)
	for s := 0; s < h.Cfg.Simulations; s++ {
		// selection
		node := root
		for node.expanded && len(node.children) > 0 {
			best, bestU := node.children[0], math.Inf(-1)
			for _, c := range node.children {
				var u float64
				if c.visits == 0 {
					u = math.Inf(1)
				} else {
					u = c.total/float64(c.visits) +
						h.Cfg.UCTc*math.Sqrt(math.Log(float64(node.visits+1))/float64(c.visits))
				}
				if u > bestU {
					bestU, best = u, c
				}
			}
			node = best
		}
		if !node.expanded {
			expand(node)
		}
		r := rollout(node)
		// backprop along the prefix path
		for n := root; ; {
			n.visits++
			n.total += r
			if n == node || len(n.children) == 0 {
				break
			}
			var next *mctsNode
			for _, c := range n.children {
				if len(c.prefix) <= len(node.prefix) && samePrefix(c.prefix, node.prefix[:len(c.prefix)]) {
					next = c
					break
				}
			}
			if next == nil {
				break
			}
			n = next
		}
	}

	// rank visited prefixes by mean reward
	type scored struct {
		prefix []string
		mean   float64
	}
	var all []scored
	var collect func(n *mctsNode)
	collect = func(n *mctsNode) {
		if n.visits > 0 && len(n.prefix) > 0 {
			all = append(all, scored{n.prefix, n.total / float64(n.visits)})
		}
		for _, c := range n.children {
			collect(c)
		}
	}
	collect(root)
	// partial selection sort of TopK
	k := h.Cfg.TopK
	if k > len(all) {
		k = len(all)
	}
	for i := 0; i < k; i++ {
		bi := i
		for j := i + 1; j < len(all); j++ {
			if all[j].mean > all[bi].mean {
				bi = j
			}
		}
		all[i], all[bi] = all[bi], all[i]
	}
	out := make([][]string, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, all[i].prefix)
	}
	return out
}

func samePrefix(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// candidates completes the top prefixes into full plans, always including
// the unhinted expert plan.
func (h *HybridQO) candidates(q *query.Query) []*plan.CP {
	var cps []*plan.CP
	seen := map[string]bool{}
	add := func(cp *plan.CP) {
		icp, err := plan.Extract(cp)
		if err != nil || seen[icp.Key()] {
			return
		}
		seen[icp.Key()] = true
		cps = append(cps, cp)
	}
	if cp, err := h.opt.Plan(q); err == nil {
		add(cp)
	}
	for _, prefix := range h.searchPrefixes(q) {
		if cp, err := h.opt.PlanWithPrefix(q, prefix); err == nil {
			add(cp)
		}
	}
	return cps
}

// Train runs PassCount passes over the training workload.
func (h *HybridQO) Train(onPass func(pass int)) error {
	start := time.Now()
	defer func() { h.trainTime += time.Since(start) }()
	for pass := 0; pass < h.Cfg.PassCount; pass++ {
		for _, q := range h.W.Train {
			cands := h.candidates(q)
			if len(cands) == 0 {
				continue
			}
			var chosen *plan.CP
			if h.rng.Float64() < h.Cfg.Epsilon {
				chosen = cands[h.rng.Intn(len(cands))]
			} else {
				best := math.Inf(1)
				for _, cp := range cands {
					if v := h.predict(cp); v < best {
						best, chosen = v, cp
					}
				}
			}
			res := h.exec.Execute(chosen, 0)
			h.record(q, chosen, res.LatencyMs)
		}
		h.refreshModel()
		if onPass != nil {
			onPass(pass)
		}
	}
	return nil
}

func (h *HybridQO) record(q *query.Query, cp *plan.CP, latency float64) {
	h.experience = append(h.experience, expPoint{h.enc.Encode(cp), math.Log(math.Max(latency, 1e-3))})
	if cur, ok := h.knownBest[q.ID]; !ok || latency < cur {
		h.knownBest[q.ID] = latency
	}
}

func (h *HybridQO) refreshModel() {
	if len(h.experience) == 0 {
		return
	}
	idx := h.rng.Perm(len(h.experience))
	for ep := 0; ep < h.Cfg.Epochs; ep++ {
		for _, i := range idx {
			pt := h.experience[i]
			h.adam.ZeroGrad()
			sv := h.state.Forward(pt.enc, 0)
			pred := h.head.Forward(sv)
			diff := nn.AddScalar(pred, -pt.logLat)
			loss := nn.Mean(nn.Mul(diff, diff))
			loss.Backward()
			h.adam.Step()
		}
	}
}

// Plan returns the predicted-best candidate for a query.
func (h *HybridQO) Plan(q *query.Query) (*plan.CP, time.Duration, error) {
	startT := time.Now()
	cands := h.candidates(q)
	if len(cands) == 0 {
		cp, err := h.opt.Plan(q)
		return cp, time.Since(startT), err
	}
	best, bestV := cands[0], math.Inf(1)
	for _, cp := range cands {
		if v := h.predict(cp); v < bestV {
			bestV, best = v, cp
		}
	}
	return best, time.Since(startT), nil
}

// KnownBest returns the best executed latency per query seen in training.
func (h *HybridQO) KnownBest() map[string]float64 { return h.knownBest }

// TrainingTime reports wall-clock spent training.
func (h *HybridQO) TrainingTime() time.Duration { return h.trainTime }
