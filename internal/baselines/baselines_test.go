// Package baselines_test exercises all four baseline reimplementations on a
// shared small workload: training runs, plans are valid left-deep trees over
// the right tables, optimization times are measured, and the methods'
// defining search-space properties hold.
package baselines_test

import (
	"testing"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/baselines/balsa"
	"github.com/foss-db/foss/internal/baselines/bao"
	"github.com/foss-db/foss/internal/baselines/hybridqo"
	"github.com/foss-db/foss/internal/baselines/loger"
	"github.com/foss-db/foss/internal/engine/exec"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/workload"
)

var smallNet = aam.StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}

func smallWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// trim the training split so baseline tests stay fast
	w.Train = w.Train[:25]
	return w
}

func checkPlan(t *testing.T, w *workload.Workload, q *query.Query, cp *plan.CP) {
	t.Helper()
	if cp == nil || cp.Root == nil {
		t.Fatalf("%s: nil plan", q.ID)
	}
	icp, err := plan.Extract(cp)
	if err != nil {
		t.Fatalf("%s: not left-deep: %v", q.ID, err)
	}
	if len(icp.Order) != q.NumTables() {
		t.Fatalf("%s: plan covers %d tables, query has %d", q.ID, len(icp.Order), q.NumTables())
	}
	seen := map[string]bool{}
	for _, a := range icp.Order {
		if q.TableOf(a) == "" || seen[a] {
			t.Fatalf("%s: bad alias %q in plan order", q.ID, a)
		}
		seen[a] = true
	}
	// plan must execute without error
	res := exec.New(w.DB).Execute(cp, 0)
	if res.LatencyMs <= 0 {
		t.Fatalf("%s: non-positive latency", q.ID)
	}
}

func TestBaoTrainsAndPlans(t *testing.T) {
	w := smallWorkload(t)
	cfg := bao.DefaultConfig()
	cfg.PassCount = 1
	cfg.StateNet = smallNet
	b := bao.New(w, cfg)
	if err := b.Train(nil); err != nil {
		t.Fatal(err)
	}
	if len(b.KnownBest()) == 0 {
		t.Fatal("Bao executed nothing during training")
	}
	for _, q := range w.Train[:5] {
		cp, ot, err := b.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		if ot <= 0 {
			t.Fatal("optimization time not measured")
		}
		checkPlan(t, w, q, cp)
	}
	if b.TrainingTime() <= 0 {
		t.Fatal("training time not recorded")
	}
}

func TestBaoHintSetsAreFive(t *testing.T) {
	hs := bao.DefaultHintSets()
	if len(hs) != 5 {
		t.Fatalf("Bao default arms = %d, want 5 (paper default)", len(hs))
	}
}

func TestBalsaTrainsAndPlans(t *testing.T) {
	w := smallWorkload(t)
	cfg := balsa.DefaultConfig()
	cfg.PassCount = 1
	cfg.StateNet = smallNet
	b := balsa.New(w, cfg)
	if err := b.Train(nil); err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Train[:5] {
		cp, _, err := b.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		checkPlan(t, w, q, cp)
	}
}

func TestLogerTrainsAndPlans(t *testing.T) {
	w := smallWorkload(t)
	cfg := loger.DefaultConfig()
	cfg.PassCount = 1
	cfg.StateNet = smallNet
	l := loger.New(w, cfg)
	if err := l.Train(nil); err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Train[:5] {
		cp, _, err := l.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		checkPlan(t, w, q, cp)
	}
}

func TestLogerRestrictions(t *testing.T) {
	rs := loger.Restrictions()
	if len(rs) != 4 {
		t.Fatalf("restriction count = %d", len(rs))
	}
	if len(rs[0].Allowed) != 3 {
		t.Fatal("free restriction must allow all methods")
	}
	for _, r := range rs[1:] {
		if len(r.Allowed) != 2 {
			t.Fatalf("restriction %s allows %d methods, want 2", r.Name, len(r.Allowed))
		}
	}
}

func TestHybridQOTrainsAndPlans(t *testing.T) {
	w := smallWorkload(t)
	cfg := hybridqo.DefaultConfig()
	cfg.PassCount = 1
	cfg.Simulations = 10
	cfg.StateNet = smallNet
	h := hybridqo.New(w, cfg)
	if err := h.Train(nil); err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Train[:5] {
		cp, _, err := h.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		checkPlan(t, w, q, cp)
	}
}

func TestTrainingCurvesFire(t *testing.T) {
	w := smallWorkload(t)
	cfg := bao.DefaultConfig()
	cfg.PassCount = 2
	cfg.StateNet = smallNet
	b := bao.New(w, cfg)
	var passes []int
	if err := b.Train(func(p int) { passes = append(passes, p) }); err != nil {
		t.Fatal(err)
	}
	if len(passes) != 2 || passes[0] != 0 || passes[1] != 1 {
		t.Fatalf("onPass sequence = %v", passes)
	}
}
