// Package balsa reimplements Balsa (Yang et al., SIGMOD 2022) on this
// repository's substrate: an end-to-end learned optimizer that constructs
// left-deep plans from scratch — no expert optimizer in the loop — choosing
// at every step which table to join next and with which physical method,
// guided by a learned value network over partial-plan encodings and trained
// on executed latencies. Like the original, it has no original-plan safety
// net: early in training it emits catastrophic plans (the paper reports TLE
// on Stack for exactly this reason), which the harness bounds with timeouts.
package balsa

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/engine/exec"
	"github.com/foss-db/foss/internal/nn"
	"github.com/foss-db/foss/internal/optimizer"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/planenc"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/workload"
)

// Config tunes training.
type Config struct {
	Epsilon    float64 // exploration rate
	Epochs     int     // value-net epochs per refresh
	LR         float64
	Seed       int64
	PassCount  int     // passes over the training workload
	TimeoutMul float64 // execution timeout as a multiple of the expert latency
	StateNet   aam.StateNetConfig
}

// DefaultConfig returns repository-scale settings.
func DefaultConfig() Config {
	return Config{Epsilon: 0.3, Epochs: 2, LR: 1e-3, Seed: 1, PassCount: 3, TimeoutMul: 4,
		StateNet: aam.StateNetConfig{DModel: 32, Heads: 2, Layers: 1, FFDim: 64, StateDim: 32}}
}

// Balsa is one instance.
type Balsa struct {
	W   *workload.Workload
	Cfg Config

	enc   *planenc.Encoder
	opt   *optimizer.Optimizer // used only to annotate partial plans and execute baselines for timeouts
	exec  *exec.Executor
	state *aam.StateNet
	head  *nn.MLP
	adam  *nn.Adam
	rng   *rand.Rand

	experience []expPoint
	knownBest  map[string]float64
	trainTime  time.Duration
	expertLat  map[string]float64
}

type expPoint struct {
	enc    *planenc.Encoded
	logLat float64
}

// New builds an untrained Balsa.
func New(w *workload.Workload, cfg Config) *Balsa {
	rng := rand.New(rand.NewSource(cfg.Seed))
	enc := planenc.NewEncoder(w.DB.Schema)
	state := aam.NewStateNet(rng, cfg.StateNet, enc.NumTables, enc.NumCols)
	head := nn.NewMLP(rng, cfg.StateNet.StateDim, 64, 1)
	params := append(state.Params(), head.Params()...)
	adam := nn.NewAdam(params, cfg.LR)
	adam.ClipNorm = 5
	return &Balsa{
		W: w, Cfg: cfg,
		enc: enc, opt: optimizer.New(w.DB, w.Stats), exec: exec.New(w.DB),
		state: state, head: head, adam: adam, rng: rng,
		knownBest: map[string]float64{}, expertLat: map[string]float64{},
	}
}

// valueOf scores a (partial or complete) plan: predicted log-latency.
func (b *Balsa) valueOf(cp *plan.CP) float64 {
	sv := b.state.Forward(b.enc.Encode(cp), 0)
	return b.head.Forward(sv).Detach().Item()
}

// construct builds a complete plan from scratch. explore enables
// epsilon-greedy choices.
func (b *Balsa) construct(q *query.Query, explore bool) (*plan.CP, plan.ICP, error) {
	aliases := q.Aliases()
	n := len(aliases)
	joined := map[string]bool{}
	var order []string
	var methods []plan.JoinMethod

	// first table: smallest predicted value among single-table plans (or
	// random under exploration)
	pickFirst := func() string {
		if explore && b.rng.Float64() < b.Cfg.Epsilon {
			return aliases[b.rng.Intn(n)]
		}
		best, bestV := aliases[0], math.Inf(1)
		for _, a := range aliases {
			cp, err := b.opt.PartialPlan(q, []string{a}, nil)
			if err != nil {
				continue
			}
			if v := b.valueOf(cp); v < bestV {
				bestV, best = v, a
			}
		}
		return best
	}
	first := pickFirst()
	order = append(order, first)
	joined[first] = true

	for len(order) < n {
		type choice struct {
			alias  string
			method plan.JoinMethod
			value  float64
		}
		var choices []choice
		for _, a := range aliases {
			if joined[a] {
				continue
			}
			if len(q.JoinsBetween(joined, a)) == 0 {
				continue // avoid cross products, as Balsa's action space does
			}
			for _, m := range []plan.JoinMethod{plan.HashJoin, plan.MergeJoin, plan.NestLoop} {
				cp, err := b.opt.PartialPlan(q, append(append([]string(nil), order...), a), append(append([]plan.JoinMethod(nil), methods...), m))
				if err != nil {
					continue
				}
				choices = append(choices, choice{a, m, b.valueOf(cp)})
			}
		}
		if len(choices) == 0 {
			// disconnected remainder: join any remaining table by hash
			for _, a := range aliases {
				if !joined[a] {
					choices = append(choices, choice{a, plan.HashJoin, 0})
					break
				}
			}
		}
		var pick choice
		if explore && b.rng.Float64() < b.Cfg.Epsilon {
			pick = choices[b.rng.Intn(len(choices))]
		} else {
			pick = choices[0]
			for _, c := range choices[1:] {
				if c.value < pick.value {
					pick = c
				}
			}
		}
		order = append(order, pick.alias)
		methods = append(methods, pick.method)
		joined[pick.alias] = true
	}
	icp := plan.ICP{Order: order, Methods: methods}
	cp, err := b.opt.PartialPlan(q, order, methods)
	if err != nil {
		return nil, plan.ICP{}, err
	}
	return cp, icp, nil
}

// expertLatency caches the expert plan latency (used only to bound
// catastrophic plans with a timeout, as the original uses query timeouts).
func (b *Balsa) expertLatency(q *query.Query) float64 {
	if v, ok := b.expertLat[q.ID]; ok {
		return v
	}
	cp, err := b.opt.Plan(q)
	if err != nil {
		b.expertLat[q.ID] = 1000
		return 1000
	}
	v := b.exec.Execute(cp, 0).LatencyMs
	b.expertLat[q.ID] = v
	return v
}

// Train runs PassCount construction-execute-refit passes.
func (b *Balsa) Train(onPass func(pass int)) error {
	start := time.Now()
	defer func() { b.trainTime += time.Since(start) }()
	for pass := 0; pass < b.Cfg.PassCount; pass++ {
		for _, q := range b.W.Train {
			cp, _, err := b.construct(q, true)
			if err != nil {
				return fmt.Errorf("balsa: construct %s: %w", q.ID, err)
			}
			timeout := b.expertLatency(q) * b.Cfg.TimeoutMul
			res := b.exec.Execute(cp, timeout)
			lat := res.LatencyMs
			if res.TimedOut {
				lat = timeout * 2 // pessimistic label for timeouts
			}
			b.record(q, cp, lat, res.TimedOut)
		}
		b.refreshModel()
		if onPass != nil {
			onPass(pass)
		}
	}
	return nil
}

func (b *Balsa) record(q *query.Query, cp *plan.CP, latency float64, timedOut bool) {
	b.experience = append(b.experience, expPoint{b.enc.Encode(cp), math.Log(math.Max(latency, 1e-3))})
	if !timedOut {
		if cur, ok := b.knownBest[q.ID]; !ok || latency < cur {
			b.knownBest[q.ID] = latency
		}
	}
}

func (b *Balsa) refreshModel() {
	if len(b.experience) == 0 {
		return
	}
	idx := b.rng.Perm(len(b.experience))
	for ep := 0; ep < b.Cfg.Epochs; ep++ {
		for _, i := range idx {
			pt := b.experience[i]
			b.adam.ZeroGrad()
			sv := b.state.Forward(pt.enc, 0)
			pred := b.head.Forward(sv)
			diff := nn.AddScalar(pred, -pt.logLat)
			loss := nn.Mean(nn.Mul(diff, diff))
			loss.Backward()
			b.adam.Step()
		}
	}
}

// Plan constructs the greedy plan for a query.
func (b *Balsa) Plan(q *query.Query) (*plan.CP, time.Duration, error) {
	startT := time.Now()
	cp, _, err := b.construct(q, false)
	if err != nil {
		return nil, 0, err
	}
	return cp, time.Since(startT), nil
}

// KnownBest returns the best executed latency per query seen in training.
func (b *Balsa) KnownBest() map[string]float64 { return b.knownBest }

// TrainingTime reports wall-clock spent training.
func (b *Balsa) TrainingTime() time.Duration { return b.trainTime }
