// Package bao reimplements Bao (Marcus et al., SIGMOD 2021) on this
// repository's substrate: a plan-steerer that plans each query under a small
// set of coarse hint sets (disabling whole operator classes for the entire
// query), predicts each candidate plan's latency with a learned tree-encoder
// value model, and executes the predicted-best plan. Training alternates
// epsilon-greedy hint selection with value-model regression on observed
// latencies — the contextual-bandit structure of the original system
// (Thompson sampling is replaced by epsilon-greedy; the candidate structure,
// coarse hints, and value-model role are preserved).
package bao

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/engine/exec"
	"github.com/foss-db/foss/internal/nn"
	"github.com/foss-db/foss/internal/optimizer"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/planenc"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/workload"
)

// HintSet is one coarse steering configuration.
type HintSet struct {
	Name     string
	Disabled map[plan.JoinMethod]bool
	NoIndex  bool
}

// DefaultHintSets returns Bao's default five arms.
func DefaultHintSets() []HintSet {
	return []HintSet{
		{Name: "default"},
		{Name: "no_nestloop", Disabled: map[plan.JoinMethod]bool{plan.NestLoop: true}},
		{Name: "no_hashjoin", Disabled: map[plan.JoinMethod]bool{plan.HashJoin: true}},
		{Name: "no_mergejoin", Disabled: map[plan.JoinMethod]bool{plan.MergeJoin: true}},
		{Name: "hash_only", Disabled: map[plan.JoinMethod]bool{plan.NestLoop: true, plan.MergeJoin: true}},
	}
}

// Config tunes training.
type Config struct {
	Epsilon   float64 // exploration rate during training
	Epochs    int     // value-model epochs per refresh
	LR        float64
	Seed      int64
	PassCount int // passes over the training workload
	StateNet  aam.StateNetConfig
}

// DefaultConfig returns repository-scale settings.
func DefaultConfig() Config {
	return Config{Epsilon: 0.25, Epochs: 3, LR: 1e-3, Seed: 1, PassCount: 3,
		StateNet: aam.StateNetConfig{DModel: 32, Heads: 2, Layers: 1, FFDim: 64, StateDim: 32}}
}

// Bao is one trained instance.
type Bao struct {
	W     *workload.Workload
	Cfg   Config
	Hints []HintSet

	enc   *planenc.Encoder
	opt   *optimizer.Optimizer
	exec  *exec.Executor
	state *aam.StateNet
	head  *nn.MLP // statevec -> predicted log-latency
	adam  *nn.Adam
	rng   *rand.Rand

	experience []experiencePoint
	knownBest  map[string]float64
	trainTime  time.Duration
}

type experiencePoint struct {
	enc    *planenc.Encoded
	logLat float64
}

// New builds an untrained Bao over a workload.
func New(w *workload.Workload, cfg Config) *Bao {
	rng := rand.New(rand.NewSource(cfg.Seed))
	enc := planenc.NewEncoder(w.DB.Schema)
	state := aam.NewStateNet(rng, cfg.StateNet, enc.NumTables, enc.NumCols)
	head := nn.NewMLP(rng, cfg.StateNet.StateDim, 64, 1)
	params := append(state.Params(), head.Params()...)
	adam := nn.NewAdam(params, cfg.LR)
	adam.ClipNorm = 5
	return &Bao{
		W: w, Cfg: cfg, Hints: DefaultHintSets(),
		enc: enc, opt: optimizer.New(w.DB, w.Stats), exec: exec.New(w.DB),
		state: state, head: head, adam: adam, rng: rng,
		knownBest: map[string]float64{},
	}
}

// candidates plans the query under every hint set (deduplicated by ICP).
func (b *Bao) candidates(q *query.Query) []*plan.CP {
	var cps []*plan.CP
	seen := map[string]bool{}
	for _, h := range b.Hints {
		cp, err := b.opt.PlanWithConfig(q, optimizer.Config{DisabledJoins: h.Disabled, DisableIndexScan: h.NoIndex})
		if err != nil {
			continue
		}
		icp, err := plan.Extract(cp)
		if err != nil {
			continue
		}
		if seen[icp.Key()] {
			continue
		}
		seen[icp.Key()] = true
		cps = append(cps, cp)
	}
	return cps
}

// predict returns the value model's latency estimate (ms) for a plan.
func (b *Bao) predict(cp *plan.CP) float64 {
	sv := b.state.Forward(b.enc.Encode(cp), 0)
	return math.Exp(b.head.Forward(sv).Detach().Item())
}

// Train runs PassCount epsilon-greedy passes over the training workload.
// onPass, if non-nil, is invoked after each pass (training-curve hooks).
func (b *Bao) Train(onPass func(pass int)) error {
	start := time.Now()
	defer func() { b.trainTime += time.Since(start) }()
	for pass := 0; pass < b.Cfg.PassCount; pass++ {
		for _, q := range b.W.Train {
			cands := b.candidates(q)
			if len(cands) == 0 {
				return fmt.Errorf("bao: no candidate plans for %s", q.ID)
			}
			var chosen *plan.CP
			if b.rng.Float64() < b.Cfg.Epsilon || len(b.experience) == 0 {
				chosen = cands[b.rng.Intn(len(cands))]
			} else {
				best := math.Inf(1)
				for _, cp := range cands {
					if p := b.predict(cp); p < best {
						best, chosen = p, cp
					}
				}
			}
			res := b.exec.Execute(chosen, 0)
			b.record(q, chosen, res.LatencyMs)
		}
		b.refreshModel()
		if onPass != nil {
			onPass(pass)
		}
	}
	return nil
}

func (b *Bao) record(q *query.Query, cp *plan.CP, latency float64) {
	b.experience = append(b.experience, experiencePoint{b.enc.Encode(cp), math.Log(math.Max(latency, 1e-3))})
	if cur, ok := b.knownBest[q.ID]; !ok || latency < cur {
		b.knownBest[q.ID] = latency
	}
}

// refreshModel retrains the value model on all experience.
func (b *Bao) refreshModel() {
	if len(b.experience) == 0 {
		return
	}
	idx := b.rng.Perm(len(b.experience))
	for ep := 0; ep < b.Cfg.Epochs; ep++ {
		for _, i := range idx {
			pt := b.experience[i]
			b.adam.ZeroGrad()
			sv := b.state.Forward(pt.enc, 0)
			pred := b.head.Forward(sv)
			diff := nn.AddScalar(pred, -pt.logLat)
			loss := nn.Mean(nn.Mul(diff, diff))
			loss.Backward()
			b.adam.Step()
		}
	}
}

// Plan selects the predicted-best hint-set plan for a query.
func (b *Bao) Plan(q *query.Query) (*plan.CP, time.Duration, error) {
	startT := time.Now()
	cands := b.candidates(q)
	if len(cands) == 0 {
		return nil, 0, fmt.Errorf("bao: no candidates for %s", q.ID)
	}
	best, bestV := cands[0], math.Inf(1)
	for _, cp := range cands {
		if v := b.predict(cp); v < bestV {
			bestV, best = v, cp
		}
	}
	return best, time.Since(startT), nil
}

// KnownBest returns the best executed latency per query seen in training.
func (b *Bao) KnownBest() map[string]float64 { return b.knownBest }

// TrainingTime reports wall-clock spent training.
func (b *Bao) TrainingTime() time.Duration { return b.trainTime }
