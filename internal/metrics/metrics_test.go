package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func res(id string, lat, opt float64) QueryResult {
	return QueryResult{QueryID: id, LatencyMs: lat, OptTimeMs: opt}
}

func TestWRLIdentity(t *testing.T) {
	rs := []QueryResult{res("a", 100, 10), res("b", 50, 5)}
	if w := WRL(rs, rs); math.Abs(w-1) > 1e-12 {
		t.Fatalf("WRL self = %f", w)
	}
	if g := GMRL(rs, rs); math.Abs(g-1) > 1e-12 {
		t.Fatalf("GMRL self = %f", g)
	}
}

func TestWRLHalved(t *testing.T) {
	expert := []QueryResult{res("a", 100, 0), res("b", 300, 0)}
	learned := []QueryResult{res("a", 50, 0), res("b", 150, 0)}
	if w := WRL(learned, expert); math.Abs(w-0.5) > 1e-12 {
		t.Fatalf("WRL = %f, want 0.5", w)
	}
	if g := GMRL(learned, expert); math.Abs(g-0.5) > 1e-12 {
		t.Fatalf("GMRL = %f, want 0.5", g)
	}
}

func TestWRLIncludesOptTime(t *testing.T) {
	expert := []QueryResult{res("a", 100, 0)}
	learned := []QueryResult{res("a", 50, 50)} // execution halved, OT eats it
	if w := WRL(learned, expert); math.Abs(w-1) > 1e-12 {
		t.Fatalf("WRL = %f, want 1.0 (OT included)", w)
	}
	// GMRL ignores optimization time by definition
	if g := GMRL(learned, expert); math.Abs(g-0.5) > 1e-12 {
		t.Fatalf("GMRL = %f, want 0.5 (OT excluded)", g)
	}
}

func TestGMRLIsGeometric(t *testing.T) {
	expert := []QueryResult{res("a", 100, 0), res("b", 100, 0)}
	learned := []QueryResult{res("a", 25, 0), res("b", 400, 0)} // 0.25 and 4
	if g := GMRL(learned, expert); math.Abs(g-1) > 1e-9 {
		t.Fatalf("GMRL = %f, want 1.0 (geometric mean of 0.25 and 4)", g)
	}
}

func TestWRLMissingQueriesIgnored(t *testing.T) {
	expert := []QueryResult{res("a", 100, 0)}
	learned := []QueryResult{res("a", 50, 0), res("zz", 1e9, 0)}
	if w := WRL(learned, expert); math.Abs(w-0.5) > 1e-12 {
		t.Fatalf("WRL = %f, unmatched query leaked in", w)
	}
}

func TestEmptyInputsAreNaN(t *testing.T) {
	if !math.IsNaN(WRL(nil, nil)) || !math.IsNaN(GMRL(nil, nil)) {
		t.Fatal("empty metric inputs must be NaN")
	}
}

func TestQuantileAndBox(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("median = %f", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("min = %f", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("max = %f", q)
	}
	b := Box(xs)
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.P25 != 2 || b.P75 != 4 {
		t.Fatalf("box = %+v", b)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("quantile of empty must be NaN")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(a, b, c, d, e float64, q1, q2 float64) bool {
		for _, v := range []float64{a, b, c, d, e, q1, q2} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		lo, hi := math.Abs(q1)-math.Floor(math.Abs(q1)), math.Abs(q2)-math.Floor(math.Abs(q2))
		if lo > hi {
			lo, hi = hi, lo
		}
		xs := []float64{a, b, c, d, e}
		return Quantile(xs, lo) <= Quantile(xs, hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSavingsRatio(t *testing.T) {
	if s := SavingsRatio(100, 25); math.Abs(s-0.75) > 1e-12 {
		t.Fatalf("savings = %f", s)
	}
	if s := SavingsRatio(100, 200); math.Abs(s+1) > 1e-12 {
		t.Fatalf("negative savings = %f", s)
	}
	if s := SavingsRatio(0, 10); s != 0 {
		t.Fatalf("zero base savings = %f", s)
	}
}

func TestTotalRuntimeAndGeoMean(t *testing.T) {
	rs := []QueryResult{res("a", 10, 1), res("b", 20, 2)}
	if tot := TotalRuntime(rs); math.Abs(tot-33) > 1e-12 {
		t.Fatalf("total = %f", tot)
	}
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean = %f", g)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Fatal("geomean of empty must be NaN")
	}
}
