// Package metrics implements the paper's evaluation metrics: Workload
// Relevant Latency (WRL) and Geometric Mean Relevant Latency (GMRL), plus
// the quantile helpers used by the optimization-time and known-best-plan
// analyses.
package metrics

import (
	"math"
	"sort"
)

// QueryResult is one query's measurement under one optimizer.
type QueryResult struct {
	QueryID   string
	LatencyMs float64 // execution latency ET
	OptTimeMs float64 // optimization time OT (SQL in → plan out)
}

// WRL = Σ(ET_l + OT_l) / Σ(ET_e + OT_e): total-workload latency of the
// learned optimizer relative to the expert. <1 means the learned optimizer
// is faster overall.
func WRL(learned, expert []QueryResult) float64 {
	num, den := 0.0, 0.0
	em := byID(expert)
	for _, l := range learned {
		e, ok := em[l.QueryID]
		if !ok {
			continue
		}
		num += l.LatencyMs + l.OptTimeMs
		den += e.LatencyMs + e.OptTimeMs
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// GMRL = (Π ET_l/ET_e)^(1/|W|): per-query optimization effectiveness.
func GMRL(learned, expert []QueryResult) float64 {
	em := byID(expert)
	logSum, n := 0.0, 0
	for _, l := range learned {
		e, ok := em[l.QueryID]
		if !ok || e.LatencyMs <= 0 || l.LatencyMs <= 0 {
			continue
		}
		logSum += math.Log(l.LatencyMs / e.LatencyMs)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(logSum / float64(n))
}

// TotalRuntime sums ET + OT over the result set, in milliseconds.
func TotalRuntime(rs []QueryResult) float64 {
	t := 0.0
	for _, r := range rs {
		t += r.LatencyMs + r.OptTimeMs
	}
	return t
}

func byID(rs []QueryResult) map[string]QueryResult {
	m := make(map[string]QueryResult, len(rs))
	for _, r := range rs {
		m[r.QueryID] = r
	}
	return m
}

// Quantile returns the q-quantile (0..1) of xs by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// BoxStats summarizes a distribution for the Fig. 6 box plots.
type BoxStats struct {
	Min, P25, Median, P75, Max float64
}

// Box computes box-plot statistics.
func Box(xs []float64) BoxStats {
	return BoxStats{
		Min:    Quantile(xs, 0),
		P25:    Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		P75:    Quantile(xs, 0.75),
		Max:    Quantile(xs, 1),
	}
}

// SavingsRatio returns 1 − lat/base (the time-saving fraction of Fig. 8),
// clamped to (−∞, 1].
func SavingsRatio(base, lat float64) float64 {
	if base <= 0 {
		return 0
	}
	return 1 - lat/base
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	s, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(s / float64(n))
}
