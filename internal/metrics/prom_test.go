package metrics

// Unit tests for the serving-side half of the package: histogram bucket
// placement at the bound edges, snapshot consistency, zero-allocation
// Observe, and the exposition writer's format (cumulative buckets, label
// escaping, single-family headers).

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestHistogramBucketEdges pins the bucket index at and around every bound:
// bucket k holds (2^(k-1)µs, 2^k µs], bucket 0 everything ≤ 1µs, and the
// overflow slot everything past the last finite bound.
func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0}, // clamped, not a panic
		{time.Nanosecond, 0},
		{time.Microsecond, 0},     // exactly the bucket-0 bound
		{time.Microsecond + 1, 1}, // first past it
		{2 * time.Microsecond, 1}, // exactly bound 1
		{2*time.Microsecond + 1, 2},
		{time.Millisecond, 10},             // 1ms = 1000·2^10 ns? no: 2^10µs = 1.024ms
		{2 * time.Second, HistBuckets - 1}, // inside the last finite bucket (~2.1s)
		{time.Hour, HistBuckets},           // +Inf overflow
	}
	bounds := HistBounds()
	for _, c := range cases {
		var h Histogram
		h.Observe(c.d)
		s := h.Snapshot()
		got := -1
		for i, n := range s.Counts {
			if n == 1 {
				got = i
				break
			}
		}
		if got != c.want {
			t.Fatalf("Observe(%v) landed in bucket %d, want %d", c.d, got, c.want)
		}
		// Cross-check against the exported bounds: the observation must be ≤
		// its bucket's bound and > the previous one.
		if c.want < HistBuckets {
			sec := c.d.Seconds()
			if sec < 0 {
				sec = 0
			}
			if sec > bounds[c.want] {
				t.Fatalf("Observe(%v): %g above its bound %g", c.d, sec, bounds[c.want])
			}
			if c.want > 0 && sec <= bounds[c.want-1] {
				t.Fatalf("Observe(%v): %g not above the previous bound %g", c.d, sec, bounds[c.want-1])
			}
		}
	}
	// The misleading-looking case above, spelled out: 1ms is under the
	// 2^10µs = 1.024ms bound but over 2^9µs = 512µs, so it must sit in
	// bucket 10 — verified by the loop.
}

// TestHistogramSnapshot: Count is the bucket sum, SumSeconds accumulates,
// and bounds are strictly increasing.
func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(time.Microsecond)
	h.Observe(time.Millisecond)
	h.Observe(time.Second)
	s := h.Snapshot()
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	want := (time.Microsecond + time.Millisecond + time.Second).Seconds()
	if diff := s.SumSeconds - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("SumSeconds = %g, want %g", s.SumSeconds, want)
	}
	bounds := HistBounds()
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not increasing at %d: %g then %g", i, bounds[i-1], bounds[i])
		}
	}
}

// TestHistogramObserveZeroAllocs: the record path's budget — Observe must
// not allocate.
func TestHistogramObserveZeroAllocs(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Observe(37 * time.Microsecond) }); n != 0 {
		t.Fatalf("Observe allocates %.1f per run, want 0", n)
	}
}

// TestExpoHistogramSeries: cumulative buckets end at +Inf == _count, and the
// family header appears exactly once.
func TestExpoHistogramSeries(t *testing.T) {
	var h Histogram
	h.Observe(time.Microsecond)     // bucket 0
	h.Observe(3 * time.Microsecond) // bucket 2
	h.Observe(time.Hour)            // +Inf
	var e Expo
	e.Family("lat", "help text", "histogram")
	e.Hist("lat", []Label{{"tier", "0"}}, h.Snapshot())
	out := e.String()

	if !strings.HasPrefix(out, "# HELP lat help text\n# TYPE lat histogram\n") {
		t.Fatalf("header wrong:\n%s", out)
	}
	if strings.Count(out, "# TYPE lat ") != 1 {
		t.Fatalf("family declared more than once:\n%s", out)
	}
	for _, want := range []string{
		`lat_bucket{tier="0",le="1e-06"} 1`,
		`lat_bucket{tier="0",le="4e-06"} 2`,
		`lat_bucket{tier="0",le="+Inf"} 3`,
		`lat_count{tier="0"} 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Cumulative monotonicity across every bucket line, in order.
	var prev uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_bucket") {
			continue
		}
		v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket series not cumulative at %q", line)
		}
		prev = v
	}
}

// TestExpoLabelEscaping: backslash, quote, and newline in label values are
// escaped per the exposition format.
func TestExpoLabelEscaping(t *testing.T) {
	var e Expo
	e.Family("m", "h", "gauge")
	e.Sample("m", []Label{{"tenant", `a"b\c` + "\nd"}}, 1)
	want := `m{tenant="a\"b\\c\nd"} 1` + "\n"
	if !strings.HasSuffix(e.String(), want) {
		t.Fatalf("escaping wrong:\n%q\nwant suffix\n%q", e.String(), want)
	}
}
