package metrics

// prom.go — the serving-side half of the package: a dependency-free,
// allocation-free latency histogram and a Prometheus text-exposition-format
// writer. The paper-eval half (WRL/GMRL) measures the doctor offline; this
// half is how a live doctor is watched.
//
// The histogram is built for the tier-0 serve path's zero-allocation budget:
// a fixed array of atomic bucket counters (no slice header, no map, no
// lock), log₂-spaced bounds from 1µs to ~2s, and an Observe that is two
// atomic adds plus a bit-length computation. Because every bucket counter
// only ever increases, the cumulative `le` series derived from a snapshot is
// monotonic both within one scrape (prefix sums) and across scrapes — the
// property the CI metrics gate asserts.

import (
	"io"
	"math/bits"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of finite histogram buckets. Bucket k holds
// observations in (2^(k-1)µs, 2^k µs]; bucket 0 holds everything ≤ 1µs and
// the extra slot past the last bound holds the +Inf overflow. 22 buckets
// span 1µs .. ~2.1s, which covers microsecond tier-0 hits through
// multi-second pathological plans.
const HistBuckets = 22

// histBoundNs returns bucket i's upper bound in nanoseconds: 1µs·2^i.
func histBoundNs(i int) int64 { return int64(1000) << uint(i) }

// HistBounds returns the finite bucket upper bounds in seconds (the
// Prometheus `le` values, excluding +Inf).
func HistBounds() [HistBuckets]float64 {
	var b [HistBuckets]float64
	for i := range b {
		b[i] = float64(histBoundNs(i)) / 1e9
	}
	return b
}

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
// The zero value is ready; Observe never allocates.
type Histogram struct {
	counts [HistBuckets + 1]atomic.Uint64 // per-bucket (non-cumulative); last = +Inf overflow
	sumNs  atomic.Int64
}

// Observe records one latency. Allocation-free: two atomic adds and a
// bit-length bucket index.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.sumNs.Add(ns)
	// Smallest k with ns ≤ 1000·2^k: for ns in (1000·2^(k-1), 1000·2^k] the
	// quotient (ns-1)/1000 has bit length exactly k; ns ≤ 1µs lands in 0.
	idx := 0
	if ns > 1000 {
		idx = bits.Len64(uint64(ns-1) / 1000)
		if idx > HistBuckets {
			idx = HistBuckets // +Inf overflow slot
		}
	}
	h.counts[idx].Add(1)
}

// HistSnapshot is one consistent-enough reading of a Histogram: the
// per-bucket counts are individually exact and only ever grow, and Count is
// derived as their sum — so the cumulative series is internally consistent
// by construction (the +Inf cumulative count always equals Count).
type HistSnapshot struct {
	Counts     [HistBuckets + 1]uint64
	SumSeconds float64
}

// Snapshot reads the histogram. Buckets are read low-to-high after the sum,
// so a snapshot taken under concurrent Observe calls never reports a sum
// missing an already-counted observation's latency by more than the
// observations in flight.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.SumSeconds = float64(h.sumNs.Load()) / 1e9
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Count returns the total number of observations in the snapshot (the Σ of
// the bucket counts — never a separately-raced counter).
func (s HistSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// ---- Prometheus text exposition format ----

// Label is one name="value" pair on a metric sample.
type Label struct {
	Key, Value string
}

// Expo accumulates metric families in the Prometheus text exposition format
// (version 0.0.4). Callers must emit each family exactly once (one Family
// call, then every sample of that family) — the format forbids repeating
// # TYPE blocks for one metric name.
type Expo struct {
	b strings.Builder
}

// Family writes the # HELP / # TYPE header for one metric family.
// typ is "counter", "gauge", or "histogram".
func (e *Expo) Family(name, help, typ string) {
	e.b.WriteString("# HELP ")
	e.b.WriteString(name)
	e.b.WriteByte(' ')
	e.b.WriteString(help)
	e.b.WriteString("\n# TYPE ")
	e.b.WriteString(name)
	e.b.WriteByte(' ')
	e.b.WriteString(typ)
	e.b.WriteByte('\n')
}

// Sample writes one sample line: name{labels} value.
func (e *Expo) Sample(name string, labels []Label, value float64) {
	e.sampleStr(name, labels, strconv.FormatFloat(value, 'g', -1, 64))
}

// Uint writes one sample line with an integer value (counters).
func (e *Expo) Uint(name string, labels []Label, v uint64) {
	e.sampleStr(name, labels, strconv.FormatUint(v, 10))
}

func (e *Expo) sampleStr(name string, labels []Label, value string) {
	e.b.WriteString(name)
	e.writeLabels(labels)
	e.b.WriteByte(' ')
	e.b.WriteString(value)
	e.b.WriteByte('\n')
}

func (e *Expo) writeLabels(labels []Label) {
	if len(labels) == 0 {
		return
	}
	e.b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			e.b.WriteByte(',')
		}
		e.b.WriteString(l.Key)
		e.b.WriteString(`="`)
		e.b.WriteString(escapeLabel(l.Value))
		e.b.WriteByte('"')
	}
	e.b.WriteByte('}')
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Hist writes one histogram series: the cumulative le buckets (including
// +Inf), _sum, and _count, all carrying the given labels. The cumulative
// counts are prefix sums of the snapshot's monotonic per-bucket counters,
// and _count is the +Inf cumulative value — internally consistent by
// construction.
func (e *Expo) Hist(name string, labels []Label, s HistSnapshot) {
	ls := make([]Label, len(labels), len(labels)+1)
	copy(ls, labels)
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		cum += s.Counts[i]
		bound := float64(histBoundNs(i)) / 1e9
		e.sampleStr(name+"_bucket",
			append(ls, Label{"le", strconv.FormatFloat(bound, 'g', -1, 64)}),
			strconv.FormatUint(cum, 10))
	}
	cum += s.Counts[HistBuckets]
	e.sampleStr(name+"_bucket", append(ls, Label{"le", "+Inf"}), strconv.FormatUint(cum, 10))
	e.Sample(name+"_sum", labels, s.SumSeconds)
	e.Uint(name+"_count", labels, cum)
}

// WriteTo writes the accumulated exposition to w.
func (e *Expo) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, e.b.String())
	return int64(n), err
}

// String returns the accumulated exposition.
func (e *Expo) String() string { return e.b.String() }

// Len returns the accumulated byte length.
func (e *Expo) Len() int { return e.b.Len() }
