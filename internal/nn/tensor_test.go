package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// numGrad computes the finite-difference gradient of f with respect to x.
func numGrad(f func() float64, x *Tensor) []float64 {
	const h = 1e-6
	g := make([]float64, len(x.Data))
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		fp := f()
		x.Data[i] = orig - h
		fm := f()
		x.Data[i] = orig
		g[i] = (fp - fm) / (2 * h)
	}
	return g
}

func checkGrad(t *testing.T, name string, f func() *Tensor, inputs ...*Tensor) {
	t.Helper()
	out := f()
	out.Backward()
	for k, in := range inputs {
		ng := numGrad(func() float64 { return f().Item() }, in)
		for i := range ng {
			if math.Abs(ng[i]-in.Grad[i]) > 1e-4*(1+math.Abs(ng[i])) {
				t.Fatalf("%s: input %d elem %d: analytic %.8f vs numeric %.8f", name, k, i, in.Grad[i], ng[i])
			}
		}
		in.ZeroGrad()
	}
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := Zeros(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t.Param()
}

func TestGradElementwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randTensor(rng, 3, 4)
	b := randTensor(rng, 3, 4)
	checkGrad(t, "add", func() *Tensor { return Sum(Add(a, b)) }, a, b)
	checkGrad(t, "sub", func() *Tensor { return Sum(Sub(a, b)) }, a, b)
	checkGrad(t, "mul", func() *Tensor { return Sum(Mul(a, b)) }, a, b)
	checkGrad(t, "scale", func() *Tensor { return Sum(Scale(a, 2.5)) }, a)
	checkGrad(t, "tanh", func() *Tensor { return Sum(Tanh(a)) }, a)
	checkGrad(t, "sigmoid", func() *Tensor { return Sum(Sigmoid(a)) }, a)
	checkGrad(t, "exp", func() *Tensor { return Sum(Exp(a)) }, a)
	checkGrad(t, "mean", func() *Tensor { return Mean(Mul(a, a)) }, a)
}

func TestGradReLU(t *testing.T) {
	// Use values away from the kink so finite differences are valid.
	a := NewTensor([]float64{1.5, -2.0, 0.7, -0.3, 2.2, -1.1}, 2, 3).Param()
	checkGrad(t, "relu", func() *Tensor { return Sum(ReLU(a)) }, a)
}

func TestGradLog(t *testing.T) {
	a := NewTensor([]float64{0.5, 1.5, 2.0, 3.0}, 2, 2).Param()
	checkGrad(t, "log", func() *Tensor { return Sum(Log(a)) }, a)
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randTensor(rng, 3, 5)
	b := randTensor(rng, 5, 2)
	checkGrad(t, "matmul", func() *Tensor { return Sum(MatMul(a, b)) }, a, b)
}

func TestGradSoftmaxLogSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randTensor(rng, 2, 4)
	w := randTensor(rng, 2, 4) // weighting makes the test non-trivial
	checkGrad(t, "softmax", func() *Tensor { return Sum(Mul(Softmax(a), w.Detach())) }, a)
	checkGrad(t, "logsoftmax", func() *Tensor { return Sum(Mul(LogSoftmax(a), w.Detach())) }, a)
}

func TestGradConcatColsTransposeRow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randTensor(rng, 3, 2)
	b := randTensor(rng, 3, 4)
	checkGrad(t, "concat", func() *Tensor { return Sum(Mul(Concat(a, b), Concat(a, b))) }, a, b)
	checkGrad(t, "cols", func() *Tensor { return Sum(Cols(b, 1, 2)) }, b)
	checkGrad(t, "transpose", func() *Tensor { return Sum(Mul(TransposeT(b), TransposeT(b))) }, b)
	checkGrad(t, "row", func() *Tensor { return Sum(Row(b, 1)) }, b)
	checkGrad(t, "rowsmean", func() *Tensor { return Sum(RowsMean(b, []bool{true, false, true})) }, b)
	checkGrad(t, "vstack", func() *Tensor { return Sum(VStack(Row(b, 0), Row(b, 2))) }, b)
}

func TestGradMaskedFill(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randTensor(rng, 2, 3)
	mask := []bool{true, false, true, true, true, false}
	checkGrad(t, "maskfill", func() *Tensor { return Sum(Softmax(MaskedFill(a, mask, -1e9))) }, a)
}

func TestGradLinearLayerNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	lin := NewLinear(rng, 4, 3)
	ln := NewLayerNorm(4)
	x := randTensor(rng, 2, 4)
	f := func() *Tensor { return Sum(Mul(lin.Forward(ln.Forward(x)), lin.Forward(ln.Forward(x)))) }
	checkGrad(t, "linear+ln", f, x, lin.W, lin.B, ln.Gamma, ln.Beta)
}

func TestGradEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	emb := NewEmbedding(rng, 10, 4)
	ids := []int{1, 3, 3, 9}
	checkGrad(t, "embedding", func() *Tensor { return Sum(Mul(emb.Forward(ids), emb.Forward(ids))) }, emb.W)
}

func TestGradAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	mha := NewMultiHeadAttention(rng, 8, 2)
	x := randTensor(rng, 3, 8)
	mask := []bool{
		true, true, false,
		true, true, true,
		false, true, true,
	}
	f := func() *Tensor { return Sum(Mul(mha.Forward(x, mask), mha.Forward(x, mask))) }
	checkGrad(t, "mha", f, x, mha.WQ.W, mha.WK.W, mha.WV.W, mha.WO.W)
}

func TestGradTransformerLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tl := NewTransformerLayer(rng, 8, 2, 16)
	x := randTensor(rng, 3, 8)
	f := func() *Tensor { return Sum(tl.Forward(x, nil)) }
	checkGrad(t, "transformer", f, x, tl.FF1.W, tl.Attn.WQ.W)
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 100 {
				return true // skip degenerate inputs
			}
		}
		x := NewTensor([]float64{a, b, c, d}, 1, 4)
		s := Softmax(x)
		sum := 0.0
		for _, v := range s.Data {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskedSoftmaxZeroesMasked(t *testing.T) {
	x := NewTensor([]float64{5, 1, 3}, 1, 3)
	s := Softmax(MaskedFill(x, []bool{true, false, true}, -1e9))
	if s.Data[1] > 1e-6 {
		t.Fatalf("masked position got probability %f", s.Data[1])
	}
	if math.Abs(s.Data[0]+s.Data[2]-1) > 1e-9 {
		t.Fatalf("unmasked probabilities do not sum to 1: %v", s.Data)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// minimize (w - 3)^2 elementwise
	w := Full(10, 1, 4).Param()
	opt := NewAdam([]*Tensor{w}, 0.1)
	target := Full(3, 1, 4)
	for i := 0; i < 500; i++ {
		opt.ZeroGrad()
		diff := Sub(w, target)
		loss := Sum(Mul(diff, diff))
		loss.Backward()
		opt.Step()
	}
	for _, v := range w.Data {
		if math.Abs(v-3) > 1e-2 {
			t.Fatalf("Adam failed to converge: %v", w.Data)
		}
	}
}

func TestAdamClipNorm(t *testing.T) {
	w := Full(1, 1, 2).Param()
	w.Grad[0], w.Grad[1] = 300, 400 // norm 500
	opt := NewAdam([]*Tensor{w}, 0.1)
	opt.ClipNorm = 5
	if n := opt.GradNorm(); math.Abs(n-500) > 1e-9 {
		t.Fatalf("grad norm %f", n)
	}
	opt.Step() // must not blow up the weights
	for _, v := range w.Data {
		if math.Abs(v-1) > 0.2 {
			t.Fatalf("clipped step moved too far: %v", w.Data)
		}
	}
}

func TestSaveLoadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m1 := NewMLP(rng, 4, 8, 2)
	m2 := NewMLP(rand.New(rand.NewSource(99)), 4, 8, 2)
	blob, err := SaveParams(m1)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(m2, blob); err != nil {
		t.Fatal(err)
	}
	x := randTensor(rng, 1, 4)
	y1 := m1.Forward(x.Detach())
	y2 := m2.Forward(x.Detach())
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatalf("loaded model diverges: %v vs %v", y1.Data, y2.Data)
		}
	}
}

func TestLoadParamsStructureMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m1 := NewMLP(rng, 4, 8, 2)
	m2 := NewMLP(rng, 4, 9, 2)
	blob, err := SaveParams(m1)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(m2, blob); err == nil {
		t.Fatal("expected structure mismatch error")
	}
}

func TestCopyParams(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	src := NewLinear(rng, 3, 3)
	dst := NewLinear(rand.New(rand.NewSource(13)), 3, 3)
	CopyParams(dst, src)
	for i := range src.W.Data {
		if dst.W.Data[i] != src.W.Data[i] {
			t.Fatal("CopyParams did not copy weights")
		}
	}
}

func TestTensorIndexing(t *testing.T) {
	x := NewTensor([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if x.At(1, 2) != 6 || x.At(0, 0) != 1 {
		t.Fatalf("At broken: %v", x.Data)
	}
	x.Set(42, 1, 1)
	if x.At(1, 1) != 42 {
		t.Fatal("Set broken")
	}
	c := x.Clone()
	c.Data[0] = -1
	if x.Data[0] == -1 {
		t.Fatal("Clone aliases data")
	}
}

func TestBackwardDiamondGraph(t *testing.T) {
	// y = a*a + a*a shares the node a through two paths; gradient must be 4a.
	a := NewTensor([]float64{3}, 1, 1).Param()
	sq := Mul(a, a)
	y := Sum(Add(sq, sq))
	y.Backward()
	if math.Abs(a.Grad[0]-12) > 1e-9 {
		t.Fatalf("diamond gradient %f, want 12", a.Grad[0])
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, 2, 16, 1)
	opt := NewAdam(m.Params(), 0.05)
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := []float64{0, 1, 1, 0}
	for epoch := 0; epoch < 2000; epoch++ {
		opt.ZeroGrad()
		x := NewTensor([]float64{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
		pred := Sigmoid(m.Forward(x))
		tgt := NewTensor(ys, 4, 1)
		diff := Sub(pred, tgt)
		loss := Mean(Mul(diff, diff))
		loss.Backward()
		opt.Step()
	}
	for i, xv := range xs {
		p := Sigmoid(m.Forward(NewTensor(xv, 1, 2))).Item()
		if math.Abs(p-ys[i]) > 0.25 {
			t.Fatalf("XOR not learned: input %v pred %f want %f", xv, p, ys[i])
		}
	}
}
