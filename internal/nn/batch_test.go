package nn

import (
	"math/rand"
	"testing"
)

func randParam(rng *rand.Rand, shape ...int) *Tensor {
	t := Zeros(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t.Param()
}

func TestGradRows(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randParam(rng, 5, 3)
	checkGrad(t, "rows", func() *Tensor { return Sum(Mul(Rows(a, 1, 3), Rows(a, 1, 3))) }, a)
}

func TestGradConcatRows(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randParam(rng, 2, 3)
	b := randParam(rng, 4, 3)
	checkGrad(t, "concatrows", func() *Tensor { return Sum(Mul(ConcatRows(a, b), ConcatRows(a, b))) }, a, b)
}

func TestGradSegmentMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randParam(rng, 6, 4)
	checkGrad(t, "segmentmean", func() *Tensor {
		return Sum(Mul(SegmentMean(a, []int{2, 1, 3}), SegmentMean(a, []int{2, 1, 3})))
	}, a)
}

func TestSegmentMeanMatchesRowsMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randParam(rng, 7, 5)
	lengths := []int{3, 4}
	got := SegmentMean(a, lengths).Detach()
	start := 0
	for s, n := range lengths {
		want := RowsMean(Rows(a, start, n), nil).Detach()
		for j := 0; j < 5; j++ {
			if got.Data[s*5+j] != want.Data[j] {
				t.Fatalf("segment %d col %d: %v != %v", s, j, got.Data[s*5+j], want.Data[j])
			}
		}
		start += n
	}
}

// TestForwardBlocksMatchesForward checks that batched block attention over a
// row-stacked input reproduces per-sequence attention bit-for-bit.
func TestForwardBlocksMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	layer := NewTransformerLayer(rng, 8, 2, 16)

	lengths := []int{3, 1, 4}
	masks := make([][]bool, len(lengths))
	var parts []*Tensor
	for i, n := range lengths {
		masks[i] = make([]bool, n*n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				masks[i][r*n+c] = r == c || r+c == n-1
			}
		}
		parts = append(parts, randParam(rng, n, 8))
	}
	stacked := ConcatRows(parts...)
	out := layer.ForwardBlocks(stacked, Blocks(lengths, masks)).Detach()

	start := 0
	for i, n := range lengths {
		want := layer.Forward(parts[i], masks[i]).Detach()
		for j := 0; j < n*8; j++ {
			if out.Data[start*8+j] != want.Data[j] {
				t.Fatalf("block %d elem %d: batch %v != sequential %v",
					i, j, out.Data[start*8+j], want.Data[j])
			}
		}
		start += n
	}
}
