package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Module is anything with trainable parameters.
type Module interface {
	// Params returns the trainable tensors of the module, in a stable order.
	Params() []*Tensor
}

// Linear is a fully-connected layer y = xW + b.
type Linear struct {
	W *Tensor // [in, out]
	B *Tensor // [1, out]
}

// NewLinear creates a Linear layer with Xavier-uniform initialization.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	limit := math.Sqrt(6.0 / float64(in+out))
	w := Zeros(in, out)
	for i := range w.Data {
		w.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return &Linear{W: w.Param(), B: Zeros(1, out).Param()}
}

// Forward applies the layer to a [batch, in] input.
func (l *Linear) Forward(x *Tensor) *Tensor {
	return AddRowVector(MatMul(x, l.W), l.B)
}

// Params implements Module.
func (l *Linear) Params() []*Tensor { return []*Tensor{l.W, l.B} }

// In returns the input width.
func (l *Linear) In() int { return l.W.Shape[0] }

// Out returns the output width.
func (l *Linear) Out() int { return l.W.Shape[1] }

// Embedding maps integer ids to dense vectors.
type Embedding struct {
	W *Tensor // [vocab, dim]
}

// NewEmbedding creates an embedding table with N(0, 0.1) initialization.
func NewEmbedding(rng *rand.Rand, vocab, dim int) *Embedding {
	w := Zeros(vocab, dim)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * 0.1
	}
	return &Embedding{W: w.Param()}
}

// Forward gathers rows for the given ids producing [len(ids), dim].
// Ids out of range are clamped to the last row (an explicit "other" bucket).
func (e *Embedding) Forward(ids []int) *Tensor {
	vocab, dim := e.W.Shape[0], e.W.Shape[1]
	d := make([]float64, len(ids)*dim)
	clamped := make([]int, len(ids))
	for i, id := range ids {
		if id < 0 || id >= vocab {
			id = vocab - 1
		}
		clamped[i] = id
		copy(d[i*dim:(i+1)*dim], e.W.Data[id*dim:(id+1)*dim])
	}
	out := newResult("embed", d, []int{len(ids), dim}, e.W)
	if out.parents != nil {
		out.backFn = func() {
			e.W.ensureGrad()
			for i, id := range clamped {
				for j := 0; j < dim; j++ {
					e.W.Grad[id*dim+j] += out.Grad[i*dim+j]
				}
			}
		}
	}
	return out
}

// Params implements Module.
func (e *Embedding) Params() []*Tensor { return []*Tensor{e.W} }

// LayerNorm normalizes each row of a 2-D tensor and applies a learned
// affine transform.
type LayerNorm struct {
	Gamma *Tensor
	Beta  *Tensor
	Eps   float64
}

// NewLayerNorm creates a LayerNorm over rows of width dim.
func NewLayerNorm(dim int) *LayerNorm {
	return &LayerNorm{Gamma: Full(1, 1, dim).Param(), Beta: Zeros(1, dim).Param(), Eps: 1e-5}
}

// Forward normalizes each row of x [rows, dim].
func (l *LayerNorm) Forward(x *Tensor) *Tensor {
	rows, dim := x.Shape[0], x.Shape[1]
	d := make([]float64, rows*dim)
	means := make([]float64, rows)
	invstd := make([]float64, rows)
	norm := make([]float64, rows*dim)
	for r := 0; r < rows; r++ {
		row := x.Data[r*dim : (r+1)*dim]
		m := 0.0
		for _, v := range row {
			m += v
		}
		m /= float64(dim)
		vr := 0.0
		for _, v := range row {
			vr += (v - m) * (v - m)
		}
		vr /= float64(dim)
		is := 1 / math.Sqrt(vr+l.Eps)
		means[r], invstd[r] = m, is
		for j, v := range row {
			n := (v - m) * is
			norm[r*dim+j] = n
			d[r*dim+j] = n*l.Gamma.Data[j] + l.Beta.Data[j]
		}
	}
	out := newResult("layernorm", d, x.Shape, x, l.Gamma, l.Beta)
	if out.parents != nil {
		out.backFn = func() {
			if l.Gamma.RequiresGrad {
				for r := 0; r < rows; r++ {
					for j := 0; j < dim; j++ {
						l.Gamma.Grad[j] += out.Grad[r*dim+j] * norm[r*dim+j]
						l.Beta.Grad[j] += out.Grad[r*dim+j]
					}
				}
			}
			if x.RequiresGrad || x.parents != nil {
				x.ensureGrad()
				for r := 0; r < rows; r++ {
					// dnorm_j = dout_j * gamma_j
					// dx = invstd * (dnorm - mean(dnorm) - norm * mean(dnorm*norm))
					var mdn, mdnn float64
					for j := 0; j < dim; j++ {
						dn := out.Grad[r*dim+j] * l.Gamma.Data[j]
						mdn += dn
						mdnn += dn * norm[r*dim+j]
					}
					mdn /= float64(dim)
					mdnn /= float64(dim)
					for j := 0; j < dim; j++ {
						dn := out.Grad[r*dim+j] * l.Gamma.Data[j]
						x.Grad[r*dim+j] += invstd[r] * (dn - mdn - norm[r*dim+j]*mdnn)
					}
				}
			}
		}
	}
	return out
}

// Params implements Module.
func (l *LayerNorm) Params() []*Tensor { return []*Tensor{l.Gamma, l.Beta} }

// MultiHeadAttention is masked multi-head self-attention over a single
// sequence of shape [seq, dim]. The mask is a seq×seq boolean matrix where
// mask[i*seq+j]==true means position i may attend to position j (the paper's
// reachability mask: attention score forced to zero between unreachable plan
// nodes).
type MultiHeadAttention struct {
	Heads int
	WQ    *Linear
	WK    *Linear
	WV    *Linear
	WO    *Linear
}

// NewMultiHeadAttention creates self-attention with the given model width and
// head count (dim must be divisible by heads).
func NewMultiHeadAttention(rng *rand.Rand, dim, heads int) *MultiHeadAttention {
	if dim%heads != 0 {
		panic(fmt.Sprintf("nn: dim %d not divisible by heads %d", dim, heads))
	}
	return &MultiHeadAttention{
		Heads: heads,
		WQ:    NewLinear(rng, dim, dim),
		WK:    NewLinear(rng, dim, dim),
		WV:    NewLinear(rng, dim, dim),
		WO:    NewLinear(rng, dim, dim),
	}
}

// Forward computes masked self-attention for x [seq, dim]. mask may be nil
// (full attention).
func (m *MultiHeadAttention) Forward(x *Tensor, mask []bool) *Tensor {
	seq, dim := x.Shape[0], x.Shape[1]
	dh := dim / m.Heads
	q := m.WQ.Forward(x)
	k := m.WK.Forward(x)
	v := m.WV.Forward(x)
	heads := make([]*Tensor, m.Heads)
	scale := 1 / math.Sqrt(float64(dh))
	for h := 0; h < m.Heads; h++ {
		qh := Cols(q, h*dh, dh)
		kh := Cols(k, h*dh, dh)
		vh := Cols(v, h*dh, dh)
		scores := Scale(MatMul(qh, TransposeT(kh)), scale) // [seq, seq]
		if mask != nil {
			scores = MaskedFill(scores, mask, -1e9)
		}
		attn := Softmax(scores)
		heads[h] = MatMul(attn, vh) // [seq, dh]
	}
	cat := Concat(heads...)
	_ = seq
	return m.WO.Forward(cat)
}

// Params implements Module.
func (m *MultiHeadAttention) Params() []*Tensor {
	var ps []*Tensor
	ps = append(ps, m.WQ.Params()...)
	ps = append(ps, m.WK.Params()...)
	ps = append(ps, m.WV.Params()...)
	ps = append(ps, m.WO.Params()...)
	return ps
}

// Cols extracts columns [start, start+n) of a 2-D tensor.
func Cols(a *Tensor, start, n int) *Tensor {
	rows, cols := a.Shape[0], a.Shape[1]
	if start < 0 || start+n > cols {
		panic("nn: Cols out of range")
	}
	d := make([]float64, rows*n)
	for r := 0; r < rows; r++ {
		copy(d[r*n:(r+1)*n], a.Data[r*cols+start:r*cols+start+n])
	}
	out := newResult("cols", d, []int{rows, n}, a)
	if out.parents != nil {
		out.backFn = func() {
			a.ensureGrad()
			for r := 0; r < rows; r++ {
				for j := 0; j < n; j++ {
					a.Grad[r*cols+start+j] += out.Grad[r*n+j]
				}
			}
		}
	}
	return out
}

// TransposeT returns the transpose of a 2-D tensor.
func TransposeT(a *Tensor) *Tensor {
	rows, cols := a.Shape[0], a.Shape[1]
	d := make([]float64, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			d[c*rows+r] = a.Data[r*cols+c]
		}
	}
	out := newResult("transpose", d, []int{cols, rows}, a)
	if out.parents != nil {
		out.backFn = func() {
			a.ensureGrad()
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					a.Grad[r*cols+c] += out.Grad[c*rows+r]
				}
			}
		}
	}
	return out
}

// TransformerLayer is a pre-norm transformer encoder block:
// x + MHA(LN(x)), then x + FFN(LN(x)).
type TransformerLayer struct {
	Attn *MultiHeadAttention
	LN1  *LayerNorm
	LN2  *LayerNorm
	FF1  *Linear
	FF2  *Linear
}

// NewTransformerLayer creates one encoder block with an ffDim-wide MLP.
func NewTransformerLayer(rng *rand.Rand, dim, heads, ffDim int) *TransformerLayer {
	return &TransformerLayer{
		Attn: NewMultiHeadAttention(rng, dim, heads),
		LN1:  NewLayerNorm(dim),
		LN2:  NewLayerNorm(dim),
		FF1:  NewLinear(rng, dim, ffDim),
		FF2:  NewLinear(rng, ffDim, dim),
	}
}

// Forward applies the block to x [seq, dim] with the given attention mask.
func (t *TransformerLayer) Forward(x *Tensor, mask []bool) *Tensor {
	h := Add(x, t.Attn.Forward(t.LN1.Forward(x), mask))
	return Add(h, t.FF2.Forward(ReLU(t.FF1.Forward(t.LN2.Forward(h)))))
}

// Params implements Module.
func (t *TransformerLayer) Params() []*Tensor {
	var ps []*Tensor
	ps = append(ps, t.Attn.Params()...)
	ps = append(ps, t.LN1.Params()...)
	ps = append(ps, t.LN2.Params()...)
	ps = append(ps, t.FF1.Params()...)
	ps = append(ps, t.FF2.Params()...)
	return ps
}

// MLP is a stack of Linear layers with ReLU between them (none after the
// final layer).
type MLP struct {
	Layers []*Linear
}

// NewMLP builds an MLP with the given layer widths, e.g. (rng, 64, 128, 1).
func NewMLP(rng *rand.Rand, widths ...int) *MLP {
	if len(widths) < 2 {
		panic("nn: MLP needs at least two widths")
	}
	m := &MLP{}
	for i := 0; i+1 < len(widths); i++ {
		m.Layers = append(m.Layers, NewLinear(rng, widths[i], widths[i+1]))
	}
	return m
}

// Forward applies the MLP to x [batch, in].
func (m *MLP) Forward(x *Tensor) *Tensor {
	for i, l := range m.Layers {
		x = l.Forward(x)
		if i+1 < len(m.Layers) {
			x = ReLU(x)
		}
	}
	return x
}

// Params implements Module.
func (m *MLP) Params() []*Tensor {
	var ps []*Tensor
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}
