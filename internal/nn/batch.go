package nn

import (
	"math"
	"sync"
)

// Batched building blocks: ops that let several independent sequences share
// one forward pass. A batch of plans is stacked row-wise into a single
// [ΣSeq, dim] tensor; the dense layers (projections, layer norms, MLPs) run
// once over the stacked rows, while attention is evaluated per contiguous
// block so no cross-sequence mixing (and no quadratic blow-up over the
// combined sequence) occurs. Row-wise ops make every batched result
// bit-identical to the corresponding sequential forward.

// Rows extracts the contiguous row range [start, start+n) of a 2-D tensor as
// an [n, cols] tensor.
func Rows(a *Tensor, start, n int) *Tensor {
	if len(a.Shape) != 2 {
		panic("nn: Rows expects a 2-D tensor")
	}
	rows, cols := a.Shape[0], a.Shape[1]
	if start < 0 || start+n > rows {
		panic("nn: Rows out of range")
	}
	d := make([]float64, n*cols)
	copy(d, a.Data[start*cols:(start+n)*cols])
	out := newResult("rows", d, []int{n, cols}, a)
	if out.parents != nil {
		out.backFn = func() {
			a.ensureGrad()
			for i := range out.Grad {
				a.Grad[start*cols+i] += out.Grad[i]
			}
		}
	}
	return out
}

// ConcatRows stacks 2-D tensors with equal column counts along dimension 0.
// Unlike VStack (which requires single-row inputs) the inputs may have any
// number of rows each.
func ConcatRows(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("nn: ConcatRows of nothing")
	}
	cols := ts[0].Shape[1]
	total := 0
	for _, t := range ts {
		if len(t.Shape) != 2 || t.Shape[1] != cols {
			panic("nn: ConcatRows column mismatch")
		}
		total += t.Shape[0]
	}
	d := make([]float64, total*cols)
	off := 0
	for _, t := range ts {
		copy(d[off:off+len(t.Data)], t.Data)
		off += len(t.Data)
	}
	out := newResult("concatrows", d, []int{total, cols}, ts...)
	if out.parents != nil {
		out.backFn = func() {
			off := 0
			for _, t := range ts {
				if t.RequiresGrad || t.parents != nil {
					t.ensureGrad()
					for i := range t.Data {
						t.Grad[i] += out.Grad[off+i]
					}
				}
				off += len(t.Data)
			}
		}
	}
	return out
}

// SegmentMean averages consecutive row segments of a [ΣSeq, cols] tensor:
// segment i covers lengths[i] rows, and the result is [len(lengths), cols].
// Rows are summed in order, so segment i's output is bit-identical to
// RowsMean over that segment alone.
func SegmentMean(a *Tensor, lengths []int) *Tensor {
	if len(a.Shape) != 2 {
		panic("nn: SegmentMean expects a 2-D tensor")
	}
	cols := a.Shape[1]
	total := 0
	for _, n := range lengths {
		total += n
	}
	if total != a.Shape[0] {
		panic("nn: SegmentMean lengths do not cover the tensor rows")
	}
	d := make([]float64, len(lengths)*cols)
	start := 0
	for s, n := range lengths {
		cnt := float64(n)
		if cnt == 0 {
			cnt = 1
		}
		for r := start; r < start+n; r++ {
			for j := 0; j < cols; j++ {
				d[s*cols+j] += a.Data[r*cols+j]
			}
		}
		for j := 0; j < cols; j++ {
			d[s*cols+j] /= cnt
		}
		start += n
	}
	out := newResult("segmentmean", d, []int{len(lengths), cols}, a)
	if out.parents != nil {
		out.backFn = func() {
			a.ensureGrad()
			start := 0
			for s, n := range lengths {
				cnt := float64(n)
				if cnt == 0 {
					cnt = 1
				}
				for r := start; r < start+n; r++ {
					for j := 0; j < cols; j++ {
						a.Grad[r*cols+j] += out.Grad[s*cols+j] / cnt
					}
				}
				start += n
			}
		}
	}
	return out
}

// Block describes one independent sequence inside a row-stacked batch: rows
// [Start, Start+N) belong to it, with its own N×N attention mask (nil =
// full attention within the block).
type Block struct {
	Start int
	N     int
	Mask  []bool
}

// Blocks builds contiguous block descriptors from per-sequence lengths and
// masks.
func Blocks(lengths []int, masks [][]bool) []Block {
	bs := make([]Block, len(lengths))
	fillBlocks(bs, lengths, masks)
	return bs
}

func fillBlocks(bs []Block, lengths []int, masks [][]bool) {
	start := 0
	for i, n := range lengths {
		var m []bool
		if masks != nil {
			m = masks[i]
		}
		bs[i] = Block{Start: start, N: n, Mask: m}
		start += n
	}
}

// BlockScratch is a pool-backed Block descriptor slice. Serving builds one
// per batched forward and drops it immediately after, so reuse removes the
// per-batch allocation. Reuse is safe because no autograd closure retains
// the slice: attention copies each Block by value and holds only its Mask,
// which the caller (the plan encoding) owns.
type BlockScratch struct {
	bs []Block
}

var blockPool = sync.Pool{New: func() any { return &BlockScratch{} }}

// BorrowBlocks is Blocks over pooled storage. Call Release once the forward
// pass that consumes Blocks() has completed.
func BorrowBlocks(lengths []int, masks [][]bool) *BlockScratch {
	s := blockPool.Get().(*BlockScratch)
	if cap(s.bs) < len(lengths) {
		s.bs = make([]Block, len(lengths))
	}
	s.bs = s.bs[:len(lengths)]
	fillBlocks(s.bs, lengths, masks)
	return s
}

// Blocks returns the descriptor slice, valid until Release.
func (s *BlockScratch) Blocks() []Block { return s.bs }

// Release hands the descriptors back to the pool. Mask pointers are cleared
// so the pool never pins a caller's mask alive.
func (s *BlockScratch) Release() {
	for i := range s.bs {
		s.bs[i].Mask = nil
	}
	blockPool.Put(s)
}

// ForwardBlocks computes masked self-attention independently within each
// block of the row-stacked input x [ΣSeq, dim], sharing the Q/K/V/output
// projection matmuls across blocks. Attention never crosses block
// boundaries, and each block's output rows are bit-identical to Forward on
// that block alone.
func (m *MultiHeadAttention) ForwardBlocks(x *Tensor, blocks []Block) *Tensor {
	dim := x.Shape[1]
	dh := dim / m.Heads
	q := m.WQ.Forward(x)
	k := m.WK.Forward(x)
	v := m.WV.Forward(x)
	scale := 1 / math.Sqrt(float64(dh))
	outBlocks := make([]*Tensor, len(blocks))
	for bi, b := range blocks {
		qb := Rows(q, b.Start, b.N)
		kb := Rows(k, b.Start, b.N)
		vb := Rows(v, b.Start, b.N)
		heads := make([]*Tensor, m.Heads)
		for h := 0; h < m.Heads; h++ {
			qh := Cols(qb, h*dh, dh)
			kh := Cols(kb, h*dh, dh)
			vh := Cols(vb, h*dh, dh)
			scores := Scale(MatMul(qh, TransposeT(kh)), scale)
			if b.Mask != nil {
				scores = MaskedFill(scores, b.Mask, -1e9)
			}
			heads[h] = MatMul(Softmax(scores), vh)
		}
		outBlocks[bi] = Concat(heads...)
	}
	return m.WO.Forward(ConcatRows(outBlocks...))
}

// ForwardBlocks applies the encoder block to a row-stacked batch: layer
// norms and the feed-forward MLP run over all rows at once, attention per
// block.
func (t *TransformerLayer) ForwardBlocks(x *Tensor, blocks []Block) *Tensor {
	h := Add(x, t.Attn.ForwardBlocks(t.LN1.Forward(x), blocks))
	return Add(h, t.FF2.Forward(ReLU(t.FF1.Forward(t.LN2.Forward(h)))))
}
