// Package nn is a small, dependency-free neural-network substrate: dense
// float64 tensors with reverse-mode automatic differentiation, the layers
// needed for a tree-transformer (linear, embedding, layer norm, masked
// multi-head attention) and the Adam optimizer.
//
// It exists because the paper's models (the planner's state network, the
// asymmetric advantage model, and the PPO actor-critic) must run without any
// external ML framework. Sizes are deliberately small so CPU training
// converges in minutes on the laptop-scale workloads this repository uses.
package nn

import (
	"fmt"
	"math"
)

// Tensor is a dense float64 tensor participating in an autograd graph.
// A Tensor produced by an op records its parents and a backward closure;
// calling Backward on a scalar output propagates gradients to every
// reachable tensor with RequiresGrad set.
type Tensor struct {
	Data  []float64
	Grad  []float64
	Shape []int

	RequiresGrad bool

	parents []*Tensor
	backFn  func()
	op      string
}

// NewTensor creates a tensor with the given shape backed by data.
// len(data) must equal the product of the shape dimensions.
func NewTensor(data []float64, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if len(data) != n {
		panic(fmt.Sprintf("nn: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{Data: data, Shape: append([]int(nil), shape...)}
}

// Zeros returns a zero-filled tensor of the given shape.
func Zeros(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	return &Tensor{Data: make([]float64, n), Shape: append([]int(nil), shape...)}
}

// Full returns a tensor filled with v.
func Full(v float64, shape ...int) *Tensor {
	t := Zeros(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Param marks the tensor as trainable and allocates its gradient buffer.
func (t *Tensor) Param() *Tensor {
	t.RequiresGrad = true
	if t.Grad == nil {
		t.Grad = make([]float64, len(t.Data))
	}
	return t
}

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Dim returns the length of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx...)] }

// Set assigns the element at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx...)] = v }

func (t *Tensor) offset(idx ...int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("nn: index rank %d does not match tensor rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	stride := 1
	for i := len(t.Shape) - 1; i >= 0; i-- {
		if idx[i] < 0 || idx[i] >= t.Shape[i] {
			panic(fmt.Sprintf("nn: index %v out of range for shape %v", idx, t.Shape))
		}
		off += idx[i] * stride
		stride *= t.Shape[i]
	}
	return off
}

// Item returns the sole element of a one-element tensor.
func (t *Tensor) Item() float64 {
	if len(t.Data) != 1 {
		panic("nn: Item on tensor with more than one element")
	}
	return t.Data[0]
}

// Clone returns a deep copy detached from the autograd graph.
func (t *Tensor) Clone() *Tensor {
	d := make([]float64, len(t.Data))
	copy(d, t.Data)
	return NewTensor(d, t.Shape...)
}

// Detach returns a view of the same data without graph history.
func (t *Tensor) Detach() *Tensor {
	return &Tensor{Data: t.Data, Shape: t.Shape}
}

func (t *Tensor) ensureGrad() {
	if t.Grad == nil {
		t.Grad = make([]float64, len(t.Data))
	}
}

// ZeroGrad clears the gradient buffer.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// needsGraph reports whether any input requires gradient tracking, in which
// case the op must record a backward function.
func needsGraph(ts ...*Tensor) bool {
	for _, t := range ts {
		if t != nil && (t.RequiresGrad || t.backFn != nil || len(t.parents) > 0) {
			return true
		}
	}
	return false
}

func newResult(op string, data []float64, shape []int, parents ...*Tensor) *Tensor {
	out := &Tensor{Data: data, Shape: append([]int(nil), shape...), op: op}
	if needsGraph(parents...) {
		out.parents = parents
		out.ensureGrad()
	}
	return out
}

// Backward runs reverse-mode autodiff from t, which must be scalar unless
// seed gradients were already written into t.Grad.
func (t *Tensor) Backward() {
	t.ensureGrad()
	if len(t.Data) == 1 {
		t.Grad[0] = 1
	} else {
		any := false
		for _, g := range t.Grad {
			if g != 0 {
				any = true
				break
			}
		}
		if !any {
			panic("nn: Backward on non-scalar tensor with zero seed gradient")
		}
	}

	// Topological order via iterative DFS.
	var order []*Tensor
	visited := map[*Tensor]bool{}
	type frame struct {
		t *Tensor
		i int
	}
	stack := []frame{{t, 0}}
	visited[t] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.t.parents) {
			p := f.t.parents[f.i]
			f.i++
			if p != nil && !visited[p] {
				visited[p] = true
				stack = append(stack, frame{p, 0})
			}
			continue
		}
		order = append(order, f.t)
		stack = stack[:len(stack)-1]
	}
	// order is child-after-parents; walk in reverse (outputs first).
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.backFn != nil {
			n.backFn()
		}
	}
}

// ----- element-wise ops -----

func sameShape(a, b *Tensor) {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("nn: shape mismatch %v vs %v", a.Shape, b.Shape))
	}
}

// Add returns a + b (element-wise; shapes must match).
func Add(a, b *Tensor) *Tensor {
	sameShape(a, b)
	d := make([]float64, len(a.Data))
	for i := range d {
		d[i] = a.Data[i] + b.Data[i]
	}
	out := newResult("add", d, a.Shape, a, b)
	if out.parents != nil {
		out.backFn = func() {
			if a.RequiresGrad || a.parents != nil {
				a.ensureGrad()
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if b.RequiresGrad || b.parents != nil {
				b.ensureGrad()
				for i := range out.Grad {
					b.Grad[i] += out.Grad[i]
				}
			}
		}
	}
	return out
}

// Sub returns a - b (element-wise).
func Sub(a, b *Tensor) *Tensor {
	sameShape(a, b)
	d := make([]float64, len(a.Data))
	for i := range d {
		d[i] = a.Data[i] - b.Data[i]
	}
	out := newResult("sub", d, a.Shape, a, b)
	if out.parents != nil {
		out.backFn = func() {
			if a.RequiresGrad || a.parents != nil {
				a.ensureGrad()
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if b.RequiresGrad || b.parents != nil {
				b.ensureGrad()
				for i := range out.Grad {
					b.Grad[i] -= out.Grad[i]
				}
			}
		}
	}
	return out
}

// Mul returns a * b (element-wise Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	sameShape(a, b)
	d := make([]float64, len(a.Data))
	for i := range d {
		d[i] = a.Data[i] * b.Data[i]
	}
	out := newResult("mul", d, a.Shape, a, b)
	if out.parents != nil {
		out.backFn = func() {
			if a.RequiresGrad || a.parents != nil {
				a.ensureGrad()
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i] * b.Data[i]
				}
			}
			if b.RequiresGrad || b.parents != nil {
				b.ensureGrad()
				for i := range out.Grad {
					b.Grad[i] += out.Grad[i] * a.Data[i]
				}
			}
		}
	}
	return out
}

// Scale returns a * s for scalar s.
func Scale(a *Tensor, s float64) *Tensor {
	d := make([]float64, len(a.Data))
	for i := range d {
		d[i] = a.Data[i] * s
	}
	out := newResult("scale", d, a.Shape, a)
	if out.parents != nil {
		out.backFn = func() {
			a.ensureGrad()
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i] * s
			}
		}
	}
	return out
}

// AddScalar returns a + s element-wise.
func AddScalar(a *Tensor, s float64) *Tensor {
	d := make([]float64, len(a.Data))
	for i := range d {
		d[i] = a.Data[i] + s
	}
	out := newResult("adds", d, a.Shape, a)
	if out.parents != nil {
		out.backFn = func() {
			a.ensureGrad()
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i]
			}
		}
	}
	return out
}

// Neg returns -a.
func Neg(a *Tensor) *Tensor { return Scale(a, -1) }

// ReLU applies max(0, x) element-wise.
func ReLU(a *Tensor) *Tensor {
	d := make([]float64, len(a.Data))
	for i, v := range a.Data {
		if v > 0 {
			d[i] = v
		}
	}
	out := newResult("relu", d, a.Shape, a)
	if out.parents != nil {
		out.backFn = func() {
			a.ensureGrad()
			for i := range out.Grad {
				if a.Data[i] > 0 {
					a.Grad[i] += out.Grad[i]
				}
			}
		}
	}
	return out
}

// Tanh applies tanh element-wise.
func Tanh(a *Tensor) *Tensor {
	d := make([]float64, len(a.Data))
	for i, v := range a.Data {
		d[i] = math.Tanh(v)
	}
	out := newResult("tanh", d, a.Shape, a)
	if out.parents != nil {
		out.backFn = func() {
			a.ensureGrad()
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i] * (1 - d[i]*d[i])
			}
		}
	}
	return out
}

// Sigmoid applies 1/(1+e^-x) element-wise.
func Sigmoid(a *Tensor) *Tensor {
	d := make([]float64, len(a.Data))
	for i, v := range a.Data {
		d[i] = 1 / (1 + math.Exp(-v))
	}
	out := newResult("sigmoid", d, a.Shape, a)
	if out.parents != nil {
		out.backFn = func() {
			a.ensureGrad()
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i] * d[i] * (1 - d[i])
			}
		}
	}
	return out
}

// Exp applies e^x element-wise.
func Exp(a *Tensor) *Tensor {
	d := make([]float64, len(a.Data))
	for i, v := range a.Data {
		d[i] = math.Exp(v)
	}
	out := newResult("exp", d, a.Shape, a)
	if out.parents != nil {
		out.backFn = func() {
			a.ensureGrad()
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i] * d[i]
			}
		}
	}
	return out
}

// Log applies natural log element-wise (inputs must be positive).
func Log(a *Tensor) *Tensor {
	d := make([]float64, len(a.Data))
	for i, v := range a.Data {
		d[i] = math.Log(v)
	}
	out := newResult("log", d, a.Shape, a)
	if out.parents != nil {
		out.backFn = func() {
			a.ensureGrad()
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i] / a.Data[i]
			}
		}
	}
	return out
}

// Sum reduces to a scalar.
func Sum(a *Tensor) *Tensor {
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	out := newResult("sum", []float64{s}, []int{1}, a)
	if out.parents != nil {
		out.backFn = func() {
			a.ensureGrad()
			g := out.Grad[0]
			for i := range a.Grad {
				a.Grad[i] += g
			}
		}
	}
	return out
}

// Mean reduces to the scalar average.
func Mean(a *Tensor) *Tensor {
	return Scale(Sum(a), 1/float64(len(a.Data)))
}

// Concat concatenates 2-D tensors [rows, ci] along the last dimension.
func Concat(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("nn: Concat of nothing")
	}
	rows := ts[0].Shape[0]
	total := 0
	for _, t := range ts {
		if len(t.Shape) != 2 || t.Shape[0] != rows {
			panic(fmt.Sprintf("nn: Concat shape mismatch %v", t.Shape))
		}
		total += t.Shape[1]
	}
	d := make([]float64, rows*total)
	off := 0
	for _, t := range ts {
		c := t.Shape[1]
		for r := 0; r < rows; r++ {
			copy(d[r*total+off:r*total+off+c], t.Data[r*c:(r+1)*c])
		}
		off += c
	}
	out := newResult("concat", d, []int{rows, total}, ts...)
	if out.parents != nil {
		out.backFn = func() {
			off := 0
			for _, t := range ts {
				c := t.Shape[1]
				if t.RequiresGrad || t.parents != nil {
					t.ensureGrad()
					for r := 0; r < rows; r++ {
						for j := 0; j < c; j++ {
							t.Grad[r*c+j] += out.Grad[r*total+off+j]
						}
					}
				}
				off += c
			}
		}
	}
	return out
}

// RowsMean averages a [rows, cols] tensor over rows, optionally weighted by
// a 0/1 keep mask of length rows (nil means keep all). Result is [1, cols].
func RowsMean(a *Tensor, keep []bool) *Tensor {
	if len(a.Shape) != 2 {
		panic("nn: RowsMean expects a 2-D tensor")
	}
	rows, cols := a.Shape[0], a.Shape[1]
	cnt := 0.0
	d := make([]float64, cols)
	for r := 0; r < rows; r++ {
		if keep != nil && !keep[r] {
			continue
		}
		cnt++
		for j := 0; j < cols; j++ {
			d[j] += a.Data[r*cols+j]
		}
	}
	if cnt == 0 {
		cnt = 1
	}
	for j := range d {
		d[j] /= cnt
	}
	out := newResult("rowsmean", d, []int{1, cols}, a)
	if out.parents != nil {
		out.backFn = func() {
			a.ensureGrad()
			for r := 0; r < rows; r++ {
				if keep != nil && !keep[r] {
					continue
				}
				for j := 0; j < cols; j++ {
					a.Grad[r*cols+j] += out.Grad[j] / cnt
				}
			}
		}
	}
	return out
}

// Row extracts row r of a 2-D tensor as a [1, cols] tensor.
func Row(a *Tensor, r int) *Tensor {
	if len(a.Shape) != 2 {
		panic("nn: Row expects a 2-D tensor")
	}
	cols := a.Shape[1]
	d := make([]float64, cols)
	copy(d, a.Data[r*cols:(r+1)*cols])
	out := newResult("row", d, []int{1, cols}, a)
	if out.parents != nil {
		out.backFn = func() {
			a.ensureGrad()
			for j := 0; j < cols; j++ {
				a.Grad[r*cols+j] += out.Grad[j]
			}
		}
	}
	return out
}

// VStack stacks k tensors of shape [1, cols] into [k, cols].
func VStack(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("nn: VStack of nothing")
	}
	cols := ts[0].Shape[len(ts[0].Shape)-1]
	d := make([]float64, len(ts)*cols)
	for i, t := range ts {
		if t.Size() != cols {
			panic("nn: VStack size mismatch")
		}
		copy(d[i*cols:(i+1)*cols], t.Data)
	}
	out := newResult("vstack", d, []int{len(ts), cols}, ts...)
	if out.parents != nil {
		out.backFn = func() {
			for i, t := range ts {
				if t.RequiresGrad || t.parents != nil {
					t.ensureGrad()
					for j := 0; j < cols; j++ {
						t.Grad[j] += out.Grad[i*cols+j]
					}
				}
			}
		}
	}
	return out
}

// MatMul multiplies a [m,k] by b [k,n] giving [m,n].
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("nn: MatMul shape mismatch %v x %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	d := make([]float64, m*n)
	for i := 0; i < m; i++ {
		ar := a.Data[i*k : (i+1)*k]
		dr := d[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ar[p]
			if av == 0 {
				continue
			}
			br := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				dr[j] += av * br[j]
			}
		}
	}
	out := newResult("matmul", d, []int{m, n}, a, b)
	if out.parents != nil {
		out.backFn = func() {
			if a.RequiresGrad || a.parents != nil {
				a.ensureGrad()
				// dA = dOut * B^T
				for i := 0; i < m; i++ {
					gr := out.Grad[i*n : (i+1)*n]
					agr := a.Grad[i*k : (i+1)*k]
					for p := 0; p < k; p++ {
						br := b.Data[p*n : (p+1)*n]
						s := 0.0
						for j := 0; j < n; j++ {
							s += gr[j] * br[j]
						}
						agr[p] += s
					}
				}
			}
			if b.RequiresGrad || b.parents != nil {
				b.ensureGrad()
				// dB = A^T * dOut
				for i := 0; i < m; i++ {
					ar := a.Data[i*k : (i+1)*k]
					gr := out.Grad[i*n : (i+1)*n]
					for p := 0; p < k; p++ {
						av := ar[p]
						if av == 0 {
							continue
						}
						bgr := b.Grad[p*n : (p+1)*n]
						for j := 0; j < n; j++ {
							bgr[j] += av * gr[j]
						}
					}
				}
			}
		}
	}
	return out
}

// AddRowVector adds a [1,n] bias to every row of a [m,n] tensor.
func AddRowVector(a, bias *Tensor) *Tensor {
	m, n := a.Shape[0], a.Shape[1]
	if bias.Size() != n {
		panic("nn: AddRowVector size mismatch")
	}
	d := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			d[i*n+j] = a.Data[i*n+j] + bias.Data[j]
		}
	}
	out := newResult("addrow", d, a.Shape, a, bias)
	if out.parents != nil {
		out.backFn = func() {
			if a.RequiresGrad || a.parents != nil {
				a.ensureGrad()
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if bias.RequiresGrad || bias.parents != nil {
				bias.ensureGrad()
				for i := 0; i < m; i++ {
					for j := 0; j < n; j++ {
						bias.Grad[j] += out.Grad[i*n+j]
					}
				}
			}
		}
	}
	return out
}

// Softmax applies a row-wise softmax to a 2-D tensor.
func Softmax(a *Tensor) *Tensor {
	m, n := a.Shape[0], a.Shape[1]
	d := make([]float64, m*n)
	for i := 0; i < m; i++ {
		softmaxRow(a.Data[i*n:(i+1)*n], d[i*n:(i+1)*n])
	}
	out := newResult("softmax", d, a.Shape, a)
	if out.parents != nil {
		out.backFn = func() {
			a.ensureGrad()
			for i := 0; i < m; i++ {
				or := d[i*n : (i+1)*n]
				gr := out.Grad[i*n : (i+1)*n]
				dot := 0.0
				for j := 0; j < n; j++ {
					dot += or[j] * gr[j]
				}
				for j := 0; j < n; j++ {
					a.Grad[i*n+j] += or[j] * (gr[j] - dot)
				}
			}
		}
	}
	return out
}

func softmaxRow(in, out []float64) {
	maxv := math.Inf(-1)
	for _, v := range in {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	for j, v := range in {
		e := math.Exp(v - maxv)
		out[j] = e
		sum += e
	}
	if sum == 0 {
		sum = 1
	}
	for j := range out {
		out[j] /= sum
	}
}

// LogSoftmax applies a row-wise log-softmax to a 2-D tensor.
func LogSoftmax(a *Tensor) *Tensor {
	m, n := a.Shape[0], a.Shape[1]
	d := make([]float64, m*n)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - maxv)
		}
		lse := maxv + math.Log(sum)
		for j, v := range row {
			d[i*n+j] = v - lse
		}
	}
	out := newResult("logsoftmax", d, a.Shape, a)
	if out.parents != nil {
		out.backFn = func() {
			a.ensureGrad()
			for i := 0; i < m; i++ {
				gr := out.Grad[i*n : (i+1)*n]
				gsum := 0.0
				for j := 0; j < n; j++ {
					gsum += gr[j]
				}
				for j := 0; j < n; j++ {
					p := math.Exp(d[i*n+j])
					a.Grad[i*n+j] += gr[j] - p*gsum
				}
			}
		}
	}
	return out
}

// MaskedFill returns a copy of a where positions with mask==false are set to
// value (no gradient flows into masked positions). a is 2-D, mask is row-major
// with the same number of elements.
func MaskedFill(a *Tensor, mask []bool, value float64) *Tensor {
	if len(mask) != len(a.Data) {
		panic("nn: MaskedFill mask length mismatch")
	}
	d := make([]float64, len(a.Data))
	for i, v := range a.Data {
		if mask[i] {
			d[i] = v
		} else {
			d[i] = value
		}
	}
	out := newResult("maskfill", d, a.Shape, a)
	if out.parents != nil {
		out.backFn = func() {
			a.ensureGrad()
			for i := range out.Grad {
				if mask[i] {
					a.Grad[i] += out.Grad[i]
				}
			}
		}
	}
	return out
}
