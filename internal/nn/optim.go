package nn

import (
	"bytes"
	"encoding/gob"
	"math"
)

// Adam implements the Adam optimizer with optional gradient clipping by
// global norm.
type Adam struct {
	LR       float64
	Beta1    float64
	Beta2    float64
	Eps      float64
	ClipNorm float64 // 0 disables clipping

	params []*Tensor
	m      [][]float64
	v      [][]float64
	t      int
}

// NewAdam creates an optimizer over params with the given learning rate.
func NewAdam(params []*Tensor, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	for _, p := range params {
		a.m = append(a.m, make([]float64, len(p.Data)))
		a.v = append(a.v, make([]float64, len(p.Data)))
	}
	return a
}

// ZeroGrad clears gradients on all managed parameters.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// GradNorm returns the global L2 norm of all parameter gradients.
func (a *Adam) GradNorm() float64 {
	s := 0.0
	for _, p := range a.params {
		for _, g := range p.Grad {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// Step applies one Adam update (with bias correction) to every parameter.
func (a *Adam) Step() {
	a.t++
	scale := 1.0
	if a.ClipNorm > 0 {
		if n := a.GradNorm(); n > a.ClipNorm {
			scale = a.ClipNorm / (n + 1e-12)
		}
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			g := p.Grad[j] * scale
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / bc1
			vh := v[j] / bc2
			p.Data[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// SaveParams serializes the parameter values (not optimizer state) of a
// module into a byte slice, in Params() order.
func SaveParams(m Module) ([]byte, error) {
	var vals [][]float64
	for _, p := range m.Params() {
		v := make([]float64, len(p.Data))
		copy(v, p.Data)
		vals = append(vals, v)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(vals); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LoadParams restores parameter values previously written by SaveParams.
// The module must have an identical parameter structure.
func LoadParams(m Module, data []byte) error {
	var vals [][]float64
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&vals); err != nil {
		return err
	}
	ps := m.Params()
	if len(vals) != len(ps) {
		return errParamMismatch(len(ps), len(vals))
	}
	for i, p := range ps {
		if len(vals[i]) != len(p.Data) {
			return errParamMismatch(len(p.Data), len(vals[i]))
		}
		copy(p.Data, vals[i])
	}
	return nil
}

type paramMismatchError struct{ want, got int }

func errParamMismatch(want, got int) error { return paramMismatchError{want, got} }

func (e paramMismatchError) Error() string {
	return "nn: parameter structure mismatch on load"
}

// CopyParams copies parameter values from src into dst (same structure).
func CopyParams(dst, src Module) {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		panic("nn: CopyParams structure mismatch")
	}
	for i := range dp {
		if len(dp[i].Data) != len(sp[i].Data) {
			panic("nn: CopyParams size mismatch")
		}
		copy(dp[i].Data, sp[i].Data)
	}
}
