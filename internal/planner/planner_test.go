package planner

import (
	"math"
	"math/rand"
	"testing"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/engine/exec"
	"github.com/foss-db/foss/internal/optimizer"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/planenc"
	"github.com/foss-db/foss/internal/workload"
)

func testPlanner(t *testing.T, maxSteps int) (*Planner, *workload.Workload, *exec.Executor) {
	t.Helper()
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	enc := planenc.NewEncoder(w.DB.Schema)
	opt := optimizer.New(w.DB, w.Stats)
	space := plan.NewSpace(w.MaxTables)
	cfg := DefaultConfig()
	cfg.MaxSteps = maxSteps
	netCfg := aam.StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	agent := NewAgent(rand.New(rand.NewSource(3)), netCfg, enc.NumTables, enc.NumCols, space.Size(), 32, 1e-3)
	return &Planner{Cfg: cfg, Space: space, Enc: enc, Opt: opt, Agent: agent}, w, exec.New(w.DB)
}

func TestEpisodeBasicsRealEnv(t *testing.T) {
	pl, w, ex := testPlanner(t, 3)
	env := &RealEnv{Exec: ex}
	q := w.Train[0]
	ep, err := pl.RunEpisode(q, env, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ep.Transitions) != 3 {
		t.Fatalf("expected 3 transitions, got %d", len(ep.Transitions))
	}
	if !ep.Transitions[2].Done {
		t.Fatal("final transition not marked done")
	}
	if len(ep.Candidates) < 1 || ep.Candidates[0].Step != 0 {
		t.Fatal("original plan must be candidate 0")
	}
	if ep.Final == nil {
		t.Fatal("no final plan selected")
	}
	if math.IsNaN(ep.OrigLatency) {
		t.Fatal("real env must execute the original plan")
	}
	// every candidate in a real-env episode has a latency
	for _, c := range ep.Candidates {
		if !c.HasLatency() {
			t.Fatalf("candidate at step %d not executed", c.Step)
		}
	}
}

func TestEpisodeCandidatesAreDistinctICPs(t *testing.T) {
	pl, w, ex := testPlanner(t, 4)
	env := &RealEnv{Exec: ex}
	ep, err := pl.RunEpisode(w.Train[2], env, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, c := range ep.Candidates {
		if seen[c.ICP.Key()] {
			t.Fatalf("duplicate ICP in candidates: %v", c.ICP)
		}
		seen[c.ICP.Key()] = true
	}
}

func TestEpisodeFinalNeverWorseUnderTrueAdv(t *testing.T) {
	// In the real environment the estimated-best tracking uses true
	// latencies, so Final must be at least as fast as the original.
	pl, w, ex := testPlanner(t, 3)
	env := &RealEnv{Exec: ex}
	for _, q := range w.Train[:8] {
		ep, err := pl.RunEpisode(q, env, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		orig := ep.Candidates[0]
		// ScoreOf(AdvInit) > 0 requires >5% improvement, so Final is within
		// 5% of (or better than) the original.
		if ep.Final.Latency > orig.Latency*1.0001 &&
			aam.ScoreOf(aam.AdvInit(orig.Latency, ep.Final.Latency)) > 0 {
			t.Fatalf("final plan slower than original yet scored better: %f vs %f",
				ep.Final.Latency, orig.Latency)
		}
	}
}

func TestPenaltyIsNonPositive(t *testing.T) {
	// With PenaltyGamma > 0, reward penalties only subtract: a transition's
	// reward can never exceed the maximum bounty (2 + eta * ebMax).
	pl, w, ex := testPlanner(t, 3)
	env := &RealEnv{Exec: ex}
	maxBounty := 2.0 + pl.Cfg.Eta*2.0
	for _, q := range w.Train[:5] {
		ep, err := pl.RunEpisode(q, env, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range ep.Transitions {
			if tr.Reward > maxBounty+1e-9 {
				t.Fatalf("reward %f exceeds max bounty %f", tr.Reward, maxBounty)
			}
		}
	}
}

func TestRepeatedICPGetsNoBounty(t *testing.T) {
	// Force a 2-step episode where the agent could revisit the original ICP
	// (swap twice). Rewards for the revisit must be penalty-only (<= 0).
	pl, w, ex := testPlanner(t, 2)
	pl.Cfg.Mask = plan.MaskConfig{} // allow swap-swap sequences
	env := &RealEnv{Exec: ex}
	sawRevisit := false
	for _, q := range w.Train[:20] {
		ep, err := pl.RunEpisode(q, env, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(ep.Transitions) == 2 && len(ep.Candidates) == 2 {
			// second action returned to an already-seen ICP
			sawRevisit = true
			if ep.Transitions[1].Reward > 0 {
				t.Fatalf("revisited ICP earned positive reward %f", ep.Transitions[1].Reward)
			}
		}
	}
	_ = sawRevisit // revisits are stochastic; the assertion above is the point
}

func TestSimEnvNeedsNoExecution(t *testing.T) {
	pl, w, _ := testPlanner(t, 3)
	netCfg := aam.StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	model := aam.NewModel(rand.New(rand.NewSource(4)), netCfg, pl.Enc.NumTables, pl.Enc.NumCols)
	env := &SimEnv{Model: model, MaxSteps: 3}
	ep, err := pl.RunEpisode(w.Train[1], env, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	// no candidate should carry a latency: nothing was executed
	for _, c := range ep.Candidates {
		if c.HasLatency() {
			t.Fatal("simulated episode executed a plan")
		}
	}
	if len(ep.Transitions) != 3 {
		t.Fatalf("expected 3 transitions, got %d", len(ep.Transitions))
	}
}

func TestSelectBestTemporalOrder(t *testing.T) {
	pl, w, ex := testPlanner(t, 3)
	netCfg := aam.StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	model := aam.NewModel(rand.New(rand.NewSource(5)), netCfg, pl.Enc.NumTables, pl.Enc.NumCols)
	env := &RealEnv{Exec: ex}
	ep, err := pl.RunEpisode(w.Train[0], env, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	best := SelectBest(model, ep.Candidates, 3)
	if best == nil {
		t.Fatal("SelectBest returned nil")
	}
	if SelectBest(model, nil, 3) != nil {
		t.Fatal("SelectBest on empty slice should be nil")
	}
}

func TestUpdateChangesPolicy(t *testing.T) {
	pl, w, ex := testPlanner(t, 3)
	env := &RealEnv{Exec: ex}
	var trans []interface{}
	_ = trans
	var all []EpisodeResult
	for _, q := range w.Train[:6] {
		ep, err := pl.RunEpisode(q, env, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, *ep)
	}
	before, _ := nnSnapshot(pl)
	var ts = all[0].Transitions
	for _, ep := range all[1:] {
		ts = append(ts, ep.Transitions...)
	}
	st := pl.Update(ts)
	if st.Epochs == 0 {
		t.Fatal("PPO did not run")
	}
	after, _ := nnSnapshot(pl)
	if before == after {
		t.Fatal("PPO update did not change the policy parameters")
	}
}

func nnSnapshot(pl *Planner) (float64, int) {
	s, n := 0.0, 0
	for _, p := range pl.Agent.Policy.Params() {
		for _, v := range p.Data {
			s += v
			n++
		}
	}
	return s, n
}
