// Package planner implements the paper's planner: the MDP whose states are
// complete plans (plus step status), whose actions are Swap/Override edits
// on the incomplete plan, and whose episodes iteratively doctor the
// traditional optimizer's original plan (Algorithm 1).
package planner

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/engine/exec"
	"github.com/foss-db/foss/internal/nn"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/planenc"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/rl"
)

// Steering is the slice of an optimizer backend the planner drives: expert
// plan enumeration (the episode's step-0 state) and hint-steered replanning
// (the state transition every Swap/Override edit goes through). Both
// *optimizer.Optimizer and backend.Backend satisfy it, keeping the planner
// backend-generic.
type Steering interface {
	Plan(q *query.Query) (*plan.CP, error)
	HintedPlan(q *query.Query, icp plan.ICP) (*plan.CP, error)
}

// PlanEval is one candidate plan in an episode's temporal sequence.
type PlanEval struct {
	Q        *query.Query
	ICP      plan.ICP
	CP       *plan.CP
	Enc      *planenc.Encoded
	Step     int     // 0 = original plan
	Latency  float64 // simulated ms; NaN until executed
	TimedOut bool
}

// HasLatency reports whether the plan has been executed.
func (p *PlanEval) HasLatency() bool { return !math.IsNaN(p.Latency) }

// StepStatus returns Step/maxsteps for the state encoding.
func (p *PlanEval) StepStatus(maxSteps int) float64 {
	return float64(p.Step) / float64(maxSteps)
}

// Environment provides reward signals: the real environment executes plans;
// the simulated environment queries the AAM.
type Environment interface {
	// Prepare readies a candidate for comparison. timeoutMs is the dynamic
	// timeout (1.5× the original plan's latency); the real environment
	// executes under it, the simulated environment ignores it.
	Prepare(pe *PlanEval, timeoutMs float64)
	// Adv returns the advantage class of r over l in {0..K-1}.
	Adv(l, r *PlanEval, maxSteps int) int
}

// Executor is the slice of an optimizer backend that runs plans: execution
// under a dynamic timeout with observed latency. Both *exec.Executor and
// backend.Backend satisfy it.
type Executor interface {
	Execute(cp *plan.CP, timeoutMs float64) exec.Result
}

// RealEnv executes candidates in the backend's executor.
type RealEnv struct {
	Exec Executor
	// OnExecuted, if set, is called after every execution (the learner uses
	// it to fill the execution buffer).
	OnExecuted func(pe *PlanEval)
}

// Prepare executes the plan under the dynamic timeout if not yet executed.
func (e *RealEnv) Prepare(pe *PlanEval, timeoutMs float64) {
	if pe.HasLatency() {
		return
	}
	res := e.Exec.Execute(pe.CP, timeoutMs)
	pe.Latency = res.LatencyMs
	pe.TimedOut = res.TimedOut
	if e.OnExecuted != nil {
		e.OnExecuted(pe)
	}
}

// Adv computes the true advantage class from executed latencies.
func (e *RealEnv) Adv(l, r *PlanEval, maxSteps int) int {
	return aam.ScoreOf(aam.AdvInit(l.Latency, r.Latency))
}

// SimEnv scores candidates with the asymmetric advantage model; no execution
// happens (the traditional optimizer has already acted as the state
// transitioner when the candidate was hinted into a complete plan).
type SimEnv struct {
	Model    *aam.Model
	MaxSteps int
}

// Prepare is a no-op in the simulated environment.
func (e *SimEnv) Prepare(pe *PlanEval, timeoutMs float64) {}

// Adv queries the AAM.
func (e *SimEnv) Adv(l, r *PlanEval, maxSteps int) int {
	return e.Model.Score(l.Enc, r.Enc, l.StepStatus(maxSteps), r.StepStatus(maxSteps))
}

// Config parameterizes the planner.
type Config struct {
	MaxSteps      int     // episode length (paper default 3)
	Eta           float64 // episode-bounty weight η (paper: 12)
	PenaltyGamma  float64 // penalty coefficient γ (paper: 2; 0 disables)
	TimeoutFactor float64 // dynamic timeout multiplier (paper: 1.5)
	Mask          plan.MaskConfig
	Hidden        int // policy/critic hidden width
	PPO           rl.Config
}

// DefaultConfig mirrors the paper's hyperparameters.
func DefaultConfig() Config {
	return Config{
		MaxSteps:      3,
		Eta:           12,
		PenaltyGamma:  2,
		TimeoutFactor: 1.5,
		Mask:          plan.MaskConfig{RestrictAfterSwap: true},
		Hidden:        128,
		PPO:           rl.DefaultConfig(),
	}
}

// Agent bundles the state network ϕ, the action selector π, and their
// optimizer.
type Agent struct {
	Phi    *aam.StateNet
	Policy *rl.Policy
	Opt    *nn.Adam
	Rng    *rand.Rand
}

// NewAgent creates an agent for the given action-space size.
func NewAgent(rng *rand.Rand, netCfg aam.StateNetConfig, numTables, numCols, numActions, hidden int, lr float64) *Agent {
	phi := aam.NewStateNet(rng, netCfg, numTables, numCols)
	pol := rl.NewPolicy(rng, netCfg.StateDim, hidden, numActions)
	params := append(phi.Params(), pol.Params()...)
	opt := nn.NewAdam(params, lr)
	opt.ClipNorm = 5
	return &Agent{Phi: phi, Policy: pol, Opt: opt, Rng: rng}
}

// Params implements nn.Module over the agent's trainable tensors (state
// network + policy heads), enabling save/load of trained agents.
func (a *Agent) Params() []*nn.Tensor {
	return append(a.Phi.Params(), a.Policy.Params()...)
}

// Planner drives episodes for one workload's schema.
type Planner struct {
	Cfg   Config
	Space plan.Space
	Enc   *planenc.Encoder
	Opt   Steering
	Agent *Agent
}

// Ref is one reference plan for the episode bounty: its evaluated plan and
// its reference bounty refb = AdvInit(lat(original), lat(ref)).
type Ref struct {
	Eval *PlanEval
	RefB float64
}

// EpisodeResult is everything one episode produced.
type EpisodeResult struct {
	Transitions []rl.Transition
	Candidates  []*PlanEval // temporal sequence, original first
	Final       *PlanEval   // estimated-optimal plan CP̄ (the output)
	OrigLatency float64     // NaN when unknown (pure simulated episodes)
}

// NewEval hints the ICP into a complete plan and encodes it.
func (p *Planner) NewEval(q *query.Query, icp plan.ICP, step int) (*PlanEval, error) {
	cp, err := p.Opt.HintedPlan(q, icp)
	if err != nil {
		return nil, err
	}
	return &PlanEval{Q: q, ICP: icp, CP: cp, Enc: p.Enc.Encode(cp), Step: step, Latency: math.NaN()}, nil
}

// OriginalEval plans the query with the traditional optimizer and wraps it
// as step-0 candidate.
func (p *Planner) OriginalEval(q *query.Query) (*PlanEval, error) {
	cp, err := p.Opt.Plan(q)
	if err != nil {
		return nil, err
	}
	icp, err := plan.Extract(cp)
	if err != nil {
		return nil, err
	}
	return &PlanEval{Q: q, ICP: icp, CP: cp, Enc: p.Enc.Encode(cp), Step: 0, Latency: math.NaN()}, nil
}

// RunEpisode executes Algorithm 1 for one query in the given environment.
// refs supplies the episode-bounty reference set (may be empty: episode
// bounty is then computed against the original plan only, via env.Adv).
// sample selects stochastic (training) vs greedy (inference) actions.
func (p *Planner) RunEpisode(q *query.Query, env Environment, refs []Ref, sample bool) (*EpisodeResult, error) {
	orig, err := p.OriginalEval(q)
	if err != nil {
		return nil, err
	}
	return p.RunEpisodeFrom(q, orig, env, refs, sample)
}

// RunEpisodeFrom is RunEpisode starting from a pre-planned original plan
// (lets callers cache the original). Stochastic actions draw from the
// agent's own RNG, so concurrent callers must use RunEpisodeWithRng.
func (p *Planner) RunEpisodeFrom(q *query.Query, orig *PlanEval, env Environment, refs []Ref, sample bool) (*EpisodeResult, error) {
	return p.RunEpisodeWithRng(q, orig, env, refs, sample, p.Agent.Rng)
}

// RunEpisodeWithRng is RunEpisodeFrom with an explicit RNG for action
// sampling. Episodes only read the agent's networks (forward passes), so any
// number of episodes may run concurrently for the same agent as long as each
// has its own RNG and no optimizer step runs meanwhile.
func (p *Planner) RunEpisodeWithRng(q *query.Query, orig *PlanEval, env Environment, refs []Ref, sample bool, rng *rand.Rand) (*EpisodeResult, error) {
	maxSteps := p.Cfg.MaxSteps
	// Dynamic timeout needs the original latency in the real environment.
	env.Prepare(orig, 0)
	timeout := 0.0
	if orig.HasLatency() {
		timeout = orig.Latency * p.Cfg.TimeoutFactor
	}

	res := &EpisodeResult{Candidates: []*PlanEval{orig}, OrigLatency: orig.Latency}
	seen := map[string]bool{orig.ICP.Key(): true}
	best := orig // CP̄: estimated optimal so far
	cur := orig
	var prevAction *plan.Action

	for t := 1; t <= maxSteps; t++ {
		mask := p.Space.Mask(cur.ICP, q, prevAction, p.Cfg.Mask)
		if !anyTrue(mask) {
			// fully restricted (can happen after a swap on a 2-table query
			// whose parent override is a no-op); relax to the general mask
			mask = p.Space.Mask(cur.ICP, q, nil, p.Cfg.Mask)
			if !anyTrue(mask) {
				break
			}
		}
		stepStatus := cur.StepStatus(maxSteps)
		sv := p.Agent.Phi.Forward(cur.Enc, stepStatus)
		var actionIdx int
		var logp float64
		if sample {
			actionIdx, logp = p.Agent.Policy.Sample(rng, sv, mask)
		} else {
			actionIdx = p.Agent.Policy.Greedy(sv, mask)
			logp = 0
		}
		value := p.Agent.Policy.Value(sv).Detach().Item()
		action := p.Space.Decode(actionIdx + 1)
		nextICP, err := p.Space.Apply(cur.ICP, action)
		if err != nil {
			return nil, fmt.Errorf("planner: masked action slipped through: %w", err)
		}
		next, err := p.NewEval(q, nextICP, t)
		if err != nil {
			return nil, err
		}
		env.Prepare(next, timeout)

		// Reward = Penalty (+ Bounty if this ICP is new in the episode).
		reward := -p.Cfg.PenaltyGamma * float64(t-plan.MinSteps(orig.ICP, nextICP))
		isNew := !seen[nextICP.Key()]
		if isNew {
			seen[nextICP.Key()] = true
			pb := float64(env.Adv(best, next, maxSteps))
			bounty := pb
			if t == maxSteps {
				// episode bounty applies only at the final step
				finalBest := best
				if env.Adv(best, next, maxSteps) > 0 {
					finalBest = next
				}
				bounty += p.Cfg.Eta * p.episodeBounty(env, refs, orig, finalBest, maxSteps)
			}
			reward += bounty
			res.Candidates = append(res.Candidates, next)
		}

		if env.Adv(best, next, maxSteps) > 0 {
			best = next
		}

		encCur, stCur := cur.Enc, stepStatus
		res.Transitions = append(res.Transitions, rl.Transition{
			Recompute: func() *nn.Tensor { return p.Agent.Phi.Forward(encCur, stCur) },
			Mask:      mask,
			Action:    actionIdx,
			LogProb:   logp,
			Reward:    reward,
			Value:     value,
			Done:      t == maxSteps,
		})
		prevAction = &action
		cur = next
	}
	if len(res.Transitions) > 0 {
		res.Transitions[len(res.Transitions)-1].Done = true
	}
	res.Final = best
	return res, nil
}

// episodeBounty computes eb = Σ_i (D̂(adv_i) + adv_i/l) · (refb_{i-1} − refb_i)
// over the reference set {best, median, original} with refb_0 = 1.
func (p *Planner) episodeBounty(env Environment, refs []Ref, orig, final *PlanEval, maxSteps int) float64 {
	if len(refs) == 0 {
		refs = []Ref{{Eval: orig, RefB: 0}}
	}
	const l = float64(len(aam.Partition)) // 2
	prev := 1.0
	eb := 0.0
	for _, ref := range refs {
		adv := env.Adv(ref.Eval, final, maxSteps)
		eb += (aam.Midpoint(adv) + float64(adv)/l) * (prev - ref.RefB)
		prev = ref.RefB
	}
	return eb
}

func anyTrue(mask []bool) bool {
	for _, m := range mask {
		if m {
			return true
		}
	}
	return false
}

// Update runs one PPO update over collected transitions.
func (p *Planner) Update(trans []rl.Transition) rl.Stats {
	return rl.Update(p.Agent.Opt, p.Agent.Policy, trans, p.Cfg.PPO)
}

// SelectBest applies the paper's temporal selection: walk the candidate
// sequence in generation order keeping the AAM-estimated best. All candidate
// state vectors are produced by one batched state-network pass, so the
// comparison chain costs N−1 cheap pairwise head evaluations instead of
// 2(N−1) full forwards.
func SelectBest(model *aam.Model, cands []*PlanEval, maxSteps int) *PlanEval {
	if len(cands) == 0 {
		return nil
	}
	if len(cands) == 1 {
		return cands[0]
	}
	encs := make([]*planenc.Encoded, len(cands))
	steps := make([]float64, len(cands))
	for i, c := range cands {
		encs[i] = c.Enc
		steps[i] = c.StepStatus(maxSteps)
	}
	sv := model.StatesBatch(encs, steps)
	best := 0
	for i := 1; i < len(cands); i++ {
		if model.ScoreStates(sv, best, i) > 0 {
			best = i
		}
	}
	return cands[best]
}

// CandidateScore describes one candidate of an explained selection: its hint
// set, where it sat in the episode, and the AAM's predicted advantage class
// of the WINNER over it (higher = the chosen plan is preferred by a larger
// margin class; 0 = no predicted advantage, and 0 for the chosen plan
// itself). Scores are relative comparisons under the model that ran the
// explanation, not absolute latency estimates.
type CandidateScore struct {
	ICPKey  string  `json:"icp_key"`
	Step    int     `json:"step"`
	EstCost float64 `json:"est_cost"`
	Score   int     `json:"score_vs_chosen"`
	Chosen  bool    `json:"chosen"`
}

// ExplainSelection reruns the temporal selection over a candidate pool and
// returns the winner's index plus a per-candidate score card. The winner is
// bit-identical to SelectBest on the same pool and model: the same pairwise
// comparison chain picks it, and the score card is derived from the same
// state matrix afterwards. Returns (-1, nil) on an empty pool.
func ExplainSelection(model *aam.Model, cands []*PlanEval, maxSteps int) (int, []CandidateScore) {
	if len(cands) == 0 {
		return -1, nil
	}
	scores := make([]CandidateScore, len(cands))
	for i, c := range cands {
		scores[i] = CandidateScore{ICPKey: c.ICP.Key(), Step: c.Step}
		if c.CP != nil && c.CP.Root != nil {
			scores[i].EstCost = c.CP.Root.EstCost
		}
	}
	if len(cands) == 1 {
		scores[0].Chosen = true
		return 0, scores
	}
	encs := make([]*planenc.Encoded, len(cands))
	steps := make([]float64, len(cands))
	for i, c := range cands {
		encs[i] = c.Enc
		steps[i] = c.StepStatus(maxSteps)
	}
	sv := model.StatesBatch(encs, steps)
	best := 0
	for i := 1; i < len(cands); i++ {
		if model.ScoreStates(sv, best, i) > 0 {
			best = i
		}
	}
	for i := range cands {
		if i == best {
			continue
		}
		// Class of the winner (r) over candidate i (l) — the mirror of the
		// selection chain's comparisons.
		scores[i].Score = model.ScoreStates(sv, i, best)
	}
	scores[best].Chosen = true
	return best, scores
}

// SelectBestMulti applies the temporal selection to many candidate pools at
// once: every candidate of every pool goes through ONE batched state-network
// pass, then each pool runs its own pairwise comparison chain over its slice
// of the shared state matrix. out[i] is bit-identical to
// SelectBest(model, pools[i], maxSteps) — batching shares the dense matmuls
// without perturbing any pool's selection.
func SelectBestMulti(model *aam.Model, pools [][]*PlanEval, maxSteps int) []*PlanEval {
	out := make([]*PlanEval, len(pools))
	total := 0
	for _, pool := range pools {
		total += len(pool)
	}
	if total == 0 {
		return out
	}
	encs := make([]*planenc.Encoded, 0, total)
	steps := make([]float64, 0, total)
	offsets := make([]int, len(pools))
	needBatch := false
	for pi, pool := range pools {
		offsets[pi] = len(encs)
		if len(pool) > 1 {
			needBatch = true
		}
		for _, c := range pool {
			encs = append(encs, c.Enc)
			steps = append(steps, c.StepStatus(maxSteps))
		}
	}
	if !needBatch {
		// every pool is empty or a singleton: no comparison needs the model
		for pi, pool := range pools {
			if len(pool) == 1 {
				out[pi] = pool[0]
			}
		}
		return out
	}
	sv := model.StatesBatch(encs, steps)
	for pi, pool := range pools {
		if len(pool) == 0 {
			continue
		}
		best := 0
		for i := 1; i < len(pool); i++ {
			if model.ScoreStates(sv, offsets[pi]+best, offsets[pi]+i) > 0 {
				best = i
			}
		}
		out[pi] = pool[best]
	}
	return out
}
