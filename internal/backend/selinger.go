package backend

import (
	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/engine/exec"
	"github.com/foss-db/foss/internal/engine/stats"
	"github.com/foss-db/foss/internal/engine/storage"
	"github.com/foss-db/foss/internal/optimizer"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/query"
)

// Selinger is the original synthetic engine behind the Backend interface:
// the Selinger-style dynamic-programming optimizer with the standard believed
// cost constants and the executor charging the standard truth constants. It
// delegates without any translation, so a doctor over this backend behaves
// bit-for-bit like the pre-interface system.
type Selinger struct {
	db       *storage.DB
	st       *stats.Catalog
	opt      *optimizer.Optimizer
	ex       *exec.Executor
	catEpoch uint64
}

// NewSelinger builds the default backend over a database + statistics pair,
// at catalog epoch 0.
func NewSelinger(db *storage.DB, st *stats.Catalog) *Selinger {
	return NewSelingerAt(db, st, 0)
}

// NewSelingerAt builds the backend at a specific catalog epoch (the DDL
// rebuild path).
func NewSelingerAt(db *storage.DB, st *stats.Catalog, catalogEpoch uint64) *Selinger {
	return &Selinger{db: db, st: st, opt: optimizer.New(db, st), ex: exec.New(db), catEpoch: catalogEpoch}
}

// Name implements Backend.
func (s *Selinger) Name() string { return "selinger" }

// Schema implements Backend.
func (s *Selinger) Schema() *catalog.Schema { return s.db.Schema }

// CatalogEpoch implements Backend.
func (s *Selinger) CatalogEpoch() uint64 { return s.catEpoch }

// Stats implements Backend.
func (s *Selinger) Stats() *stats.Catalog { return s.st }

// Plan implements Backend: the Selinger DP over left-deep join trees.
func (s *Selinger) Plan(q *query.Query) (*plan.CP, error) { return s.opt.Plan(q) }

// HintedPlan implements Backend: the pg_hint_plan contract.
func (s *Selinger) HintedPlan(q *query.Query, icp plan.ICP) (*plan.CP, error) {
	return s.opt.HintedPlan(q, icp)
}

// Execute implements Backend.
func (s *Selinger) Execute(cp *plan.CP, timeoutMs float64) exec.Result {
	return s.ex.Execute(cp, timeoutMs)
}

// PlanCoarse plans under Bao-style coarse hints (operator classes disabled
// for the whole query). Coarse hinting is a capability of this concrete
// backend, not part of the Backend contract — the doctor's fine-grained
// edits don't need it, only the baselines and comparisons do.
func (s *Selinger) PlanCoarse(q *query.Query, cfg optimizer.Config) (*plan.CP, error) {
	return s.opt.PlanWithConfig(q, cfg)
}

// Optimizer exposes the underlying cost-based optimizer for harnesses that
// need Selinger-specific machinery (baselines, experiments).
func (s *Selinger) Optimizer() *optimizer.Optimizer { return s.opt }
