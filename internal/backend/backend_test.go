package backend

import (
	"errors"
	"testing"

	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/optimizer"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/workload"
)

func loadW(t *testing.T) *workload.Workload {
	t.Helper()
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRegistry(t *testing.T) {
	w := loadW(t)
	for _, name := range Names() {
		b, err := New(name, w.DB, w.Stats)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Fatalf("Name() = %q, want %q", b.Name(), name)
		}
		if b.Schema() != w.DB.Schema || b.Stats() != w.Stats {
			t.Fatalf("%s: schema/stats not wired through", name)
		}
	}
	if _, err := New("oracle23ai", w.DB, w.Stats); !errors.Is(err, fosserr.ErrUnknownBackend) {
		t.Fatalf("unknown backend error = %v, want ErrUnknownBackend", err)
	}
	// "" selects the default backend.
	b, err := New("", w.DB, w.Stats)
	if err != nil || b.Name() != "selinger" {
		t.Fatalf("default backend = %v, %v", b, err)
	}
}

// TestSelingerDelegates pins the refactor contract: the Selinger backend is a
// pure pass-through over the original optimizer + executor.
func TestSelingerDelegates(t *testing.T) {
	w := loadW(t)
	be := NewSelinger(w.DB, w.Stats)
	opt := optimizer.New(w.DB, w.Stats)
	for _, q := range w.Train[:8] {
		want, err := opt.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := be.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		wi, _ := plan.Extract(want)
		gi, _ := plan.Extract(got)
		if !wi.Equal(gi) {
			t.Fatalf("%s: selinger plan %q != optimizer plan %q", q.ID, gi.Key(), wi.Key())
		}
		if gl, wl := be.Execute(got, 0).LatencyMs, be.Execute(want, 0).LatencyMs; gl != wl {
			t.Fatalf("%s: latency %v != %v", q.ID, gl, wl)
		}
	}
}

// TestBackendsDiverge proves gaussim is a genuinely different engine: over a
// query sample its expert choices or latency surface must differ from
// Selinger's, while both stay executable and hint-steerable.
func TestBackendsDiverge(t *testing.T) {
	w := loadW(t)
	sel := NewSelinger(w.DB, w.Stats)
	gau := NewGaussim(w.DB, w.Stats)

	planDiffers, latDiffers := false, false
	for _, q := range w.Train {
		scp, err := sel.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		gcp, err := gau.Plan(q)
		if err != nil {
			t.Fatalf("gaussim plan %s: %v", q.ID, err)
		}
		si, _ := plan.Extract(scp)
		gi, _ := plan.Extract(gcp)
		if !si.Equal(gi) {
			planDiffers = true
		}
		if sel.Execute(scp, 0).LatencyMs != gau.Execute(scp, 0).LatencyMs {
			latDiffers = true
		}

		// The hint contract must hold on both: steering gaussim with
		// Selinger's expert ICP reproduces that order and those methods.
		hcp, err := gau.HintedPlan(q, si)
		if err != nil {
			t.Fatalf("gaussim hinted %s: %v", q.ID, err)
		}
		hi, _ := plan.Extract(hcp)
		if !hi.Equal(si) {
			t.Fatalf("%s: gaussim hint not honored: %q != %q", q.ID, hi.Key(), si.Key())
		}
	}
	if !planDiffers {
		t.Fatal("gaussim chose identical expert plans to selinger on every query — cost model not differentiating")
	}
	if !latDiffers {
		t.Fatal("gaussim charged identical latencies to selinger on every plan — truth params not differentiating")
	}
}
