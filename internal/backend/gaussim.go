package backend

import (
	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/engine/cost"
	"github.com/foss-db/foss/internal/engine/exec"
	"github.com/foss-db/foss/internal/engine/stats"
	"github.com/foss-db/foss/internal/engine/storage"
	"github.com/foss-db/foss/internal/optimizer"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/query"
)

// Gaussim is the second backend, mirroring the paper's openGauss port: the
// same stored data and statistics, but a hash-centric cost model with
// different believed constants (cost.GaussOptimizerParams) and a different
// latency surface (cost.GaussTruthParams). Its expert plans prefer
// scan-hash-merge pipelines where Selinger reaches for index nested loops,
// and its regret — the gap the doctor learns to repair — sits in different
// queries, which is exactly what makes it a meaningful second target for the
// backend-generic doctor.
type Gaussim struct {
	db       *storage.DB
	st       *stats.Catalog
	opt      *optimizer.Optimizer
	ex       *exec.Executor
	catEpoch uint64
}

// NewGaussim builds the gaussim backend over a database + statistics pair,
// at catalog epoch 0.
func NewGaussim(db *storage.DB, st *stats.Catalog) *Gaussim {
	return NewGaussimAt(db, st, 0)
}

// NewGaussimAt builds the backend at a specific catalog epoch (the DDL
// rebuild path).
func NewGaussimAt(db *storage.DB, st *stats.Catalog, catalogEpoch uint64) *Gaussim {
	return &Gaussim{
		db:       db,
		st:       st,
		opt:      optimizer.NewWithParams(db, st, cost.GaussOptimizerParams()),
		ex:       exec.NewWithParams(db, cost.GaussTruthParams()),
		catEpoch: catalogEpoch,
	}
}

// Name implements Backend.
func (g *Gaussim) Name() string { return "gaussim" }

// Schema implements Backend.
func (g *Gaussim) Schema() *catalog.Schema { return g.db.Schema }

// CatalogEpoch implements Backend.
func (g *Gaussim) CatalogEpoch() uint64 { return g.catEpoch }

// Stats implements Backend.
func (g *Gaussim) Stats() *stats.Catalog { return g.st }

// Plan implements Backend: the same enumeration machinery as Selinger, but
// costed with gaussim's hash-centric beliefs — so the chosen orders, methods
// and access paths differ.
func (g *Gaussim) Plan(q *query.Query) (*plan.CP, error) { return g.opt.Plan(q) }

// HintedPlan implements Backend: hint completion under gaussim's beliefs
// (the same ICP can complete to different access paths than on Selinger).
func (g *Gaussim) HintedPlan(q *query.Query, icp plan.ICP) (*plan.CP, error) {
	return g.opt.HintedPlan(q, icp)
}

// Execute implements Backend, charging gaussim's truth constants.
func (g *Gaussim) Execute(cp *plan.CP, timeoutMs float64) exec.Result {
	return g.ex.Execute(cp, timeoutMs)
}
