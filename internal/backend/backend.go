// Package backend defines the optimizer-backend boundary of FOSS. The paper
// positions the doctor as a layer on top of an existing cost-based optimizer
// and validates it against two engines (PostgreSQL and openGauss); Backend is
// that boundary: a backend supplies the schema and statistics, enumerates its
// native expert plan, completes hint-steered replans (the pg_hint_plan
// contract), and executes plans for observed latency. Everything above —
// the AAM, the PPO learner, the runtime, and the online service — is
// backend-generic.
//
// Two implementations ship: Selinger (the original synthetic engine,
// bit-identical to the pre-interface behavior) and Gaussim (a hash-centric
// engine with a deliberately different cost model and operator preferences,
// mirroring the paper's openGauss port).
package backend

import (
	"fmt"

	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/engine/exec"
	"github.com/foss-db/foss/internal/engine/stats"
	"github.com/foss-db/foss/internal/engine/storage"
	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/query"
)

// Backend is one optimizer+executor substrate the doctor can steer.
// Implementations must be safe for concurrent use: Plan, HintedPlan, and
// Execute are all on the serving path.
type Backend interface {
	// Name identifies the backend ("selinger", "gaussim", ...). The runtime
	// keys its plan cache on it so plans never cross backends.
	Name() string

	// Schema exposes the backend's catalog (sizes the plan encoder).
	Schema() *catalog.Schema

	// CatalogEpoch is the catalog (schema) generation this backend was
	// derived at: 0 for the load-time schema, the versioned catalog's epoch
	// after a DDL apply rebuilds the backend over the evolved schema. The
	// runtime mixes it into every plan-cache key so plans never cross schema
	// generations.
	CatalogEpoch() uint64

	// Stats exposes the backend's statistics catalog (the believed
	// cardinalities the doctor's baselines and workload generators consult).
	Stats() *stats.Catalog

	// Plan enumerates the backend's native cost-based plan for the query —
	// the expert baseline the doctor edits. Errors wrap fosserr.ErrNoPlan
	// when no plan exists.
	Plan(q *query.Query) (*plan.CP, error)

	// HintedPlan completes a full plan honoring the ICP exactly (join order
	// and join methods verbatim; access paths chosen by the backend) — the
	// hint-steered replanning every plan edit goes through.
	HintedPlan(q *query.Query, icp plan.ICP) (*plan.CP, error)

	// Execute runs a plan to completion or timeout (timeoutMs <= 0 = none)
	// and reports the observed latency.
	Execute(cp *plan.CP, timeoutMs float64) exec.Result
}

// New constructs a registered backend by name over a database + statistics
// catalog, at catalog epoch 0. Unknown names wrap fosserr.ErrUnknownBackend.
func New(name string, db *storage.DB, st *stats.Catalog) (Backend, error) {
	return NewAt(name, db, st, 0)
}

// NewAt constructs a registered backend at a specific catalog epoch — the
// rebuild path after a DDL apply re-derives the database, statistics, and
// encoder sizing over the evolved schema.
func NewAt(name string, db *storage.DB, st *stats.Catalog, catalogEpoch uint64) (Backend, error) {
	switch name {
	case "selinger", "":
		return NewSelingerAt(db, st, catalogEpoch), nil
	case "gaussim":
		return NewGaussimAt(db, st, catalogEpoch), nil
	}
	return nil, fmt.Errorf("backend: %q: %w", name, fosserr.ErrUnknownBackend)
}

// Names lists the registered backends.
func Names() []string { return []string{"selinger", "gaussim"} }
