// Package fosserr defines the sentinel errors of the public FOSS API. Every
// layer wraps these with %w so callers can classify failures with errors.Is
// regardless of which internal package produced them; the root package foss
// re-exports them.
package fosserr

import "errors"

var (
	// ErrBadConfig reports an invalid system configuration (e.g. MaxSteps < 1).
	ErrBadConfig = errors.New("foss: invalid configuration")

	// ErrUnknownWorkload reports a workload name outside WorkloadNames().
	ErrUnknownWorkload = errors.New("foss: unknown workload")

	// ErrUnknownBackend reports a backend name outside BackendNames().
	ErrUnknownBackend = errors.New("foss: unknown backend")

	// ErrNoPlan reports that a backend could not produce any plan for a query
	// (empty query, arity over the enumeration limit, malformed hint).
	ErrNoPlan = errors.New("foss: no plan found")

	// ErrNoCandidate reports that the doctor produced no candidate plan to
	// select from (should not happen on well-formed queries: the original plan
	// is always a candidate).
	ErrNoCandidate = errors.New("foss: no candidate plan produced")

	// ErrNotOnline reports a Serve/Record/ServeBatch call before EnableOnline.
	ErrNotOnline = errors.New("foss: online loop not enabled")

	// ErrBackendMismatch reports an operation that would cross backend
	// boundaries, e.g. swapping in a backend over a different schema or
	// loading a snapshot trained under a different backend.
	ErrBackendMismatch = errors.New("foss: backend mismatch")

	// ErrSnapshotVersion reports a snapshot whose envelope version this build
	// does not speak (version skew between writer and reader).
	ErrSnapshotVersion = errors.New("foss: snapshot version mismatch")

	// ErrSnapshotCorrupt reports a snapshot or WAL record that failed its
	// integrity check (bad magic, checksum mismatch, truncation).
	ErrSnapshotCorrupt = errors.New("foss: snapshot corrupt")

	// ErrNoStore reports a durability operation (checkpoint, recovery) on a
	// loop that has no store attached.
	ErrNoStore = errors.New("foss: no durability store attached")

	// ErrLoopClosed reports a Serve/Record/Checkpoint call on an online loop
	// (or a route through a shard router) after Close began draining it.
	ErrLoopClosed = errors.New("foss: online loop closed")

	// ErrServeIDExpired reports feedback for a serve_id that was evicted from
	// the pending ring before its latency arrived — distinct from an id that
	// never existed, so clients can tell "report sooner" from "wrong id".
	ErrServeIDExpired = errors.New("foss: serve_id expired from pending ring")

	// ErrStoreLocked reports a second open of a state directory that another
	// live store (this process or another) already holds — two writers on one
	// WAL would corrupt it.
	ErrStoreLocked = errors.New("foss: state directory locked by another store")

	// ErrUnknownTenant reports a route to a tenant no shard serves.
	ErrUnknownTenant = errors.New("foss: unknown tenant")

	// ErrNotLeader reports a write (feedback, checkpoint, server-side
	// execute) addressed to a follower replica — only the tenant's leader
	// trains and journals; the wire surface answers 403 with the leader's
	// address so clients can redirect.
	ErrNotLeader = errors.New("foss: replica is a follower; writes go to the leader")

	// ErrCatalogStale reports a query that references schema objects the
	// live catalog no longer has (a table dropped by DDL) — the request is
	// rejected instead of planning against a stale schema.
	ErrCatalogStale = errors.New("foss: query references a stale catalog object")

	// ErrCatalogMismatch reports an operation that would cross catalog-epoch
	// boundaries, e.g. warm-starting from a checkpoint taken at a different
	// catalog epoch than the one the WAL's DDL records reconstruct — the
	// schema-evolution sibling of ErrBackendMismatch.
	ErrCatalogMismatch = errors.New("foss: catalog epoch mismatch")
)
