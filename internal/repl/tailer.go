package repl

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/foss-db/foss/internal/store"
)

// Config assembles a Tailer.
type Config struct {
	// Source is where checkpoints are fetched from.
	Source Source
	// Interval is the manifest poll cadence (default 500ms). One tail
	// interval is the replication-lag SLO: a model hot-swapped on the
	// leader serves on the follower within one interval plus the fetch.
	Interval time.Duration
	// Apply installs a fetched checkpoint into the serving loop (hot-swap).
	// Called from the tailer goroutine only, never concurrently.
	Apply func(m store.Manifest, ck store.Checkpoint) error
	// InitialEpoch/InitialWALSeq record the checkpoint the follower booted
	// from, so the tailer does not re-apply it on the first poll.
	InitialEpoch  uint64
	InitialWALSeq uint64
	// OnEvent, when set, receives one-line progress strings.
	OnEvent func(string)
}

// Stats snapshots replication progress — the /metrics repl gauges.
type Stats struct {
	// LastAppliedEpoch/WALSeq identify the newest checkpoint installed into
	// the serving loop.
	LastAppliedEpoch  uint64
	LastAppliedWALSeq uint64
	// LastSeenEpoch is the newest epoch the leader's manifest has named
	// (applied or not).
	LastSeenEpoch uint64
	// LagCheckpoints is LastSeenEpoch − LastAppliedEpoch: how many
	// published generations the follower has observed but not yet serving.
	LagCheckpoints uint64
	// AppliedSwaps counts checkpoints hot-swapped into the loop.
	AppliedSwaps uint64
	// FetchErrors counts failed manifest/checkpoint fetches and failed
	// applies (each transient: the next poll retries from scratch).
	FetchErrors uint64
}

// Tailer polls a Source and applies newly published checkpoints. A model
// is applied when its epoch advances past the last applied one; same-epoch
// republications (periodic checkpoints with a longer WAL horizon) carry
// identical weights and are skipped — a follower's buffer is never
// trained on, so only the generation matters.
type Tailer struct {
	cfg Config

	appliedEpoch atomic.Uint64
	appliedSeq   atomic.Uint64
	seenEpoch    atomic.Uint64
	swaps        atomic.Uint64
	errs         atomic.Uint64

	stop     chan struct{}
	done     chan struct{}
	startMu  sync.Mutex
	started  bool
	stopOnce sync.Once
}

// New builds a tailer (not yet polling; call Start).
func New(cfg Config) *Tailer {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	t := &Tailer{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	t.appliedEpoch.Store(cfg.InitialEpoch)
	t.appliedSeq.Store(cfg.InitialWALSeq)
	t.seenEpoch.Store(cfg.InitialEpoch)
	return t
}

// Start launches the poll loop.
func (t *Tailer) Start() {
	t.startMu.Lock()
	defer t.startMu.Unlock()
	if t.started {
		return
	}
	t.started = true
	go func() {
		defer close(t.done)
		ticker := time.NewTicker(t.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-ticker.C:
				ctx, cancel := context.WithTimeout(context.Background(), t.cfg.Interval*4+time.Second)
				_, _ = t.Poll(ctx)
				cancel()
			}
		}
	}()
}

// Poll runs one tail round: read the manifest, and if it names a newer
// generation than the last applied one, fetch + decode + apply it.
// Returns whether a checkpoint was applied. Errors are counted AND
// returned (the background loop counts them; tests and boot probes
// inspect them); a leader with no checkpoint yet is (false, nil).
func (t *Tailer) Poll(ctx context.Context) (bool, error) {
	m, ok, err := t.cfg.Source.Manifest(ctx)
	if err != nil {
		t.errs.Add(1)
		return false, err
	}
	if !ok {
		return false, nil
	}
	if m.Epoch > t.seenEpoch.Load() {
		t.seenEpoch.Store(m.Epoch)
	}
	if m.Epoch <= t.appliedEpoch.Load() {
		return false, nil
	}
	blob, err := t.cfg.Source.FetchCheckpoint(ctx, m.Checkpoint)
	if err != nil {
		t.errs.Add(1)
		return false, err
	}
	ck, _, err := store.DecodeCheckpoint(blob)
	if err != nil {
		t.errs.Add(1)
		return false, err
	}
	if err := t.cfg.Apply(m, ck); err != nil {
		t.errs.Add(1)
		return false, fmt.Errorf("repl: apply %s: %w", m.Checkpoint, err)
	}
	t.appliedEpoch.Store(ck.Epoch)
	t.appliedSeq.Store(ck.WALSeq)
	t.swaps.Add(1)
	if t.cfg.OnEvent != nil {
		t.cfg.OnEvent(fmt.Sprintf("applied checkpoint %s (epoch %d, walseq %d) from %s",
			m.Checkpoint, ck.Epoch, ck.WALSeq, t.cfg.Source))
	}
	return true, nil
}

// Stats snapshots replication progress.
func (t *Tailer) Stats() Stats {
	s := Stats{
		LastAppliedEpoch:  t.appliedEpoch.Load(),
		LastAppliedWALSeq: t.appliedSeq.Load(),
		LastSeenEpoch:     t.seenEpoch.Load(),
		AppliedSwaps:      t.swaps.Load(),
		FetchErrors:       t.errs.Load(),
	}
	if s.LastSeenEpoch > s.LastAppliedEpoch {
		s.LagCheckpoints = s.LastSeenEpoch - s.LastAppliedEpoch
	}
	return s
}

// Close stops the poll loop and waits for it to exit. Idempotent; safe on
// a never-started tailer.
func (t *Tailer) Close() {
	t.stopOnce.Do(func() { close(t.stop) })
	t.startMu.Lock()
	started := t.started
	t.startMu.Unlock()
	if started {
		<-t.done
	}
}

// WaitForCheckpoint polls the source until a manifest is published or ctx
// expires — the follower boot path's "leader not up yet" wait. Returns the
// manifest and its decoded checkpoint.
func WaitForCheckpoint(ctx context.Context, src Source, every time.Duration) (store.Manifest, store.Checkpoint, error) {
	if every <= 0 {
		every = 200 * time.Millisecond
	}
	var lastErr error
	for {
		m, ok, err := src.Manifest(ctx)
		if err != nil {
			lastErr = err
		} else if ok {
			blob, err := src.FetchCheckpoint(ctx, m.Checkpoint)
			if err == nil {
				ck, _, err := store.DecodeCheckpoint(blob)
				if err == nil {
					return m, ck, nil
				}
				lastErr = err
			} else {
				lastErr = err
			}
		}
		select {
		case <-ctx.Done():
			if lastErr != nil {
				return store.Manifest{}, store.Checkpoint{}, fmt.Errorf("repl: waiting for checkpoint from %s: %w (last: %v)", src, ctx.Err(), lastErr)
			}
			return store.Manifest{}, store.Checkpoint{}, fmt.Errorf("repl: waiting for checkpoint from %s: %w", src, ctx.Err())
		case <-time.After(every):
		}
	}
}
