// Package repl replicates a leader's checkpoints to follower processes: a
// Source abstracts where published checkpoints come from (the leader's
// state directory opened read-only, or the leader's HTTP replication
// endpoints), and a Tailer polls the manifest and hot-swaps newly published
// models into a follower's serving loop through the existing blue/green
// machinery. Followers never train; replication is pull-based and
// idempotent — a missed poll is caught up by the next one, because the
// manifest always names the complete latest checkpoint.
package repl

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/foss-db/foss/internal/store"
)

// Source is one place published checkpoints can be fetched from.
type Source interface {
	// Manifest returns the latest published manifest; ok=false when the
	// leader has not published a checkpoint yet (not an error — a follower
	// can boot before its leader's first checkpoint lands).
	Manifest(ctx context.Context) (store.Manifest, bool, error)
	// FetchCheckpoint returns the raw sealed blob of a checkpoint the
	// manifest named.
	FetchCheckpoint(ctx context.Context, name string) ([]byte, error)
	// String describes the source for logs.
	String() string
}

// DirSource tails a state directory on a shared filesystem — the leader's
// own directory or a synced copy — through a read-only store handle.
type DirSource struct {
	rs *store.ReadStore
}

// NewDirSource opens dir read-only (shared lock; fails if the path does not
// exist, coexists with the live writer).
func NewDirSource(dir string) (*DirSource, error) {
	rs, err := store.OpenReadOnly(dir)
	if err != nil {
		return nil, err
	}
	return &DirSource{rs: rs}, nil
}

// Manifest implements Source.
func (s *DirSource) Manifest(context.Context) (store.Manifest, bool, error) {
	m, ok := s.rs.Latest()
	return m, ok, nil
}

// FetchCheckpoint implements Source.
func (s *DirSource) FetchCheckpoint(_ context.Context, name string) ([]byte, error) {
	return s.rs.ReadCheckpoint(name)
}

// String implements Source.
func (s *DirSource) String() string { return "dir:" + s.rs.Dir() }

// Close releases the read lock.
func (s *DirSource) Close() error { return s.rs.Close() }

// HTTPSource tails a leader over its replication endpoints. base is the
// URL prefix up to (not including) "/repl/..." — "http://host:8475/v1" for
// a single-tenant leader, "http://host:8475/v1/t/{tenant}" for a tenant on
// a fleet leader.
type HTTPSource struct {
	base   string
	client *http.Client
}

// NewHTTPSource builds a source over a leader's replication endpoints.
func NewHTTPSource(base string) *HTTPSource {
	return &HTTPSource{base: base, client: &http.Client{Timeout: 30 * time.Second}}
}

// Manifest implements Source: GET {base}/repl/manifest. 404 means the
// leader has no checkpoint yet; anything else non-200 is an error.
func (s *HTTPSource) Manifest(ctx context.Context) (store.Manifest, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/repl/manifest", nil)
	if err != nil {
		return store.Manifest{}, false, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return store.Manifest{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return store.Manifest{}, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return store.Manifest{}, false, fmt.Errorf("repl: manifest fetch: %s: %s", resp.Status, body)
	}
	var m store.Manifest
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&m); err != nil {
		return store.Manifest{}, false, fmt.Errorf("repl: manifest decode: %w", err)
	}
	if m.Checkpoint == "" {
		return store.Manifest{}, false, nil
	}
	return m, true, nil
}

// FetchCheckpoint implements Source: GET {base}/repl/checkpoint/{name}. The
// blob's integrity is not trusted from the transport — DecodeCheckpoint
// re-validates the sealed envelope's checksum downstream.
func (s *HTTPSource) FetchCheckpoint(ctx context.Context, name string) ([]byte, error) {
	if !store.ValidCheckpointName(name) {
		return nil, fmt.Errorf("repl: invalid checkpoint name %q", name)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/repl/checkpoint/"+name, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("repl: checkpoint fetch %s: %s: %s", name, resp.Status, body)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("repl: checkpoint body %s: %w", name, err)
	}
	return blob, nil
}

// String implements Source.
func (s *HTTPSource) String() string { return "http:" + s.base }
