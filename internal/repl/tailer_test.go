package repl

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/foss-db/foss/internal/store"
)

// memSource is a scripted Source.
type memSource struct {
	mu    sync.Mutex
	m     store.Manifest
	ok    bool
	blobs map[string][]byte
	err   error
}

func (s *memSource) publish(epoch, seq uint64, blob []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	name := "ckpt"
	s.m = store.Manifest{Version: 1, Checkpoint: name, Backend: "fake", Epoch: epoch, WALSeq: seq}
	s.ok = true
	if s.blobs == nil {
		s.blobs = map[string][]byte{}
	}
	s.blobs[name] = blob
}

func (s *memSource) Manifest(context.Context) (store.Manifest, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m, s.ok, s.err
}

func (s *memSource) FetchCheckpoint(_ context.Context, name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.blobs[name]; ok {
		return b, nil
	}
	return nil, errors.New("no such checkpoint")
}

func (s *memSource) String() string { return "mem" }

// sealed produces a valid sealed checkpoint blob for the fake backend.
func sealed(t *testing.T, epoch, seq uint64) []byte {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	name, err := st.WriteCheckpoint("fake", store.Checkpoint{Model: []byte("m"), Epoch: epoch, WALSeq: seq})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := st.ReadCheckpoint(name)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestTailerAppliesOnEpochAdvance: applies exactly when the epoch moves
// past the applied one; same-epoch republications and stale manifests are
// skipped; stats track lag and swaps.
func TestTailerAppliesOnEpochAdvance(t *testing.T) {
	src := &memSource{}
	var applied []uint64
	tl := New(Config{
		Source:       src,
		InitialEpoch: 1,
		Apply: func(m store.Manifest, ck store.Checkpoint) error {
			applied = append(applied, ck.Epoch)
			return nil
		},
	})

	ctx := context.Background()
	// No manifest yet: quiet no-op.
	if ok, err := tl.Poll(ctx); ok || err != nil {
		t.Fatalf("empty source: ok=%v err=%v", ok, err)
	}
	// The boot checkpoint's epoch republished (longer WAL horizon): skip.
	src.publish(1, 50, sealed(t, 1, 50))
	if ok, err := tl.Poll(ctx); ok || err != nil {
		t.Fatalf("same-epoch republication applied: ok=%v err=%v", ok, err)
	}
	// A new generation: apply.
	src.publish(2, 60, sealed(t, 2, 60))
	if ok, err := tl.Poll(ctx); !ok || err != nil {
		t.Fatalf("epoch advance: ok=%v err=%v", ok, err)
	}
	// Idempotent: the same manifest does not re-apply.
	if ok, err := tl.Poll(ctx); ok || err != nil {
		t.Fatalf("re-poll re-applied: ok=%v err=%v", ok, err)
	}
	if len(applied) != 1 || applied[0] != 2 {
		t.Fatalf("applied = %v, want [2]", applied)
	}
	st := tl.Stats()
	if st.LastAppliedEpoch != 2 || st.LastAppliedWALSeq != 60 || st.AppliedSwaps != 1 || st.LagCheckpoints != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTailerCountsTransientErrors: source errors and apply failures are
// counted, lag is visible, and a later healthy poll recovers.
func TestTailerCountsTransientErrors(t *testing.T) {
	src := &memSource{}
	failApply := true
	tl := New(Config{
		Source: src,
		Apply: func(m store.Manifest, ck store.Checkpoint) error {
			if failApply {
				return errors.New("standby busy")
			}
			return nil
		},
	})
	ctx := context.Background()

	src.err = errors.New("connection refused")
	if _, err := tl.Poll(ctx); err == nil {
		t.Fatal("want manifest error")
	}
	src.err = nil

	src.publish(3, 10, sealed(t, 3, 10))
	if _, err := tl.Poll(ctx); err == nil {
		t.Fatal("want apply error")
	}
	st := tl.Stats()
	if st.FetchErrors != 2 {
		t.Fatalf("FetchErrors = %d, want 2", st.FetchErrors)
	}
	if st.LastSeenEpoch != 3 || st.LagCheckpoints != 3 {
		t.Fatalf("lag stats = %+v", st)
	}

	failApply = false
	if ok, err := tl.Poll(ctx); !ok || err != nil {
		t.Fatalf("recovery poll: ok=%v err=%v", ok, err)
	}
	if st := tl.Stats(); st.LagCheckpoints != 0 || st.AppliedSwaps != 1 {
		t.Fatalf("post-recovery stats = %+v", st)
	}
}

// TestDirSourceRoundTrip: a DirSource over a live writer's directory sees
// each published generation, and the blob decodes to the written image.
func TestDirSourceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	src, err := NewDirSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	ctx := context.Background()
	if _, ok, err := src.Manifest(ctx); ok || err != nil {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	if _, err := st.WriteCheckpoint("fake", store.Checkpoint{Model: []byte("weights"), Epoch: 4, WALSeq: 7}); err != nil {
		t.Fatal(err)
	}
	m, ok, err := src.Manifest(ctx)
	if !ok || err != nil {
		t.Fatalf("manifest: ok=%v err=%v", ok, err)
	}
	blob, err := src.FetchCheckpoint(ctx, m.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	ck, backend, err := store.DecodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	if backend != "fake" || ck.Epoch != 4 || string(ck.Model) != "weights" {
		t.Fatalf("round trip: backend=%q ck=%+v", backend, ck)
	}
}

// TestHTTPSourceAgainstHandler: HTTPSource speaks the wire protocol —
// 404 means not published, a blob round-trips byte-identical, and bad
// names are refused client-side.
func TestHTTPSourceAgainstHandler(t *testing.T) {
	blob := sealed(t, 9, 3)
	published := false
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/repl/manifest", func(w http.ResponseWriter, r *http.Request) {
		if !published {
			http.Error(w, `{"error":"no checkpoint"}`, http.StatusNotFound)
			return
		}
		m := store.Manifest{Version: 1, Checkpoint: "ckpt-00000009-000000000003.snap", Backend: "fake", Epoch: 9, WALSeq: 3}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"version":1,"checkpoint":"` + m.Checkpoint + `","backend":"fake","epoch":9,"wal_seq":3}`))
	})
	mux.HandleFunc("/v1/repl/checkpoint/", func(w http.ResponseWriter, r *http.Request) {
		w.Write(blob)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	src := NewHTTPSource(ts.URL + "/v1")
	ctx := context.Background()
	if _, ok, err := src.Manifest(ctx); ok || err != nil {
		t.Fatalf("pre-publish: ok=%v err=%v", ok, err)
	}
	published = true
	m, ok, err := src.Manifest(ctx)
	if !ok || err != nil || m.Epoch != 9 {
		t.Fatalf("manifest: ok=%v err=%v m=%+v", ok, err, m)
	}
	got, err := src.FetchCheckpoint(ctx, m.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if ck, _, err := store.DecodeCheckpoint(got); err != nil || ck.Epoch != 9 {
		t.Fatalf("decode fetched: err=%v", err)
	}
	if _, err := src.FetchCheckpoint(ctx, "../MANIFEST"); err == nil {
		t.Fatal("traversal name accepted")
	}
}

// TestWaitForCheckpoint: blocks until publication, honors ctx.
func TestWaitForCheckpoint(t *testing.T) {
	src := &memSource{}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, _, err := WaitForCheckpoint(ctx, src, 10*time.Millisecond); err == nil {
		t.Fatal("want timeout before publication")
	}

	blob := sealed(t, 2, 5)
	go func() {
		time.Sleep(30 * time.Millisecond)
		src.publish(2, 5, blob)
	}()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	m, ck, err := WaitForCheckpoint(ctx2, src, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 2 || ck.Epoch != 2 || ck.WALSeq != 5 {
		t.Fatalf("m=%+v ck.Epoch=%d", m, ck.Epoch)
	}
}
