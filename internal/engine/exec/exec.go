// Package exec executes complete plans against the column store and charges
// a deterministic simulated latency.
//
// Latency model. Every operator is charged the cost-model formula of its
// physical method evaluated over the *true* cardinalities the execution
// observes, using cost.TruthParams (which deviate slightly from the
// optimizer's believed constants — cost-model error on top of cardinality
// error). Join results are always computed with an efficient algorithm
// (hashing or index lookups) so execution stays fast, while the *charge*
// reflects the plan's chosen method: a nested loop without an index is
// charged |outer|·|inner| work even though its result is computed by
// hashing. This yields latencies that are deterministic, reproducible, and
// faithful to the relative economics of the operators — which is what the
// paper's learning signal needs.
//
// Timeouts. Execute aborts once charged work exceeds the budget, mirroring
// the paper's dynamic timeout (1.5× the original plan's latency) that keeps
// catastrophic candidate plans from stalling training.
package exec

import (
	"fmt"
	"math"

	"github.com/foss-db/foss/internal/engine/cost"
	"github.com/foss-db/foss/internal/engine/storage"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/query"
)

// Result reports one plan execution.
type Result struct {
	LatencyMs float64 // simulated latency (ms); if TimedOut, the budget value
	Work      float64 // charged work units
	OutRows   int     // final output cardinality (0 if timed out)
	TimedOut  bool
}

// Executor runs plans over one database.
type Executor struct {
	DB     *storage.DB
	Params cost.Params
}

// New creates an executor with the truth cost constants.
func New(db *storage.DB) *Executor {
	return &Executor{DB: db, Params: cost.TruthParams()}
}

// NewWithParams creates an executor charging custom cost constants — how a
// different engine backend (e.g. gaussim) gives the same stored data a
// different latency surface.
func NewWithParams(db *storage.DB, p cost.Params) *Executor {
	return &Executor{DB: db, Params: p}
}

// Execute runs the plan. timeoutMs <= 0 means no timeout.
func (e *Executor) Execute(cp *plan.CP, timeoutMs float64) Result {
	budget := math.Inf(1)
	if timeoutMs > 0 {
		budget = cost.FromMs(timeoutMs)
	}
	st := &execState{ex: e, q: cp.Q, budget: budget}
	rel, ok := st.run(cp.Root)
	if !ok {
		return Result{LatencyMs: timeoutMs, Work: st.work, TimedOut: true}
	}
	return Result{LatencyMs: cost.ToMs(st.work), Work: st.work, OutRows: len(rel.rows)}
}

// relation is an intermediate result: for each surviving combination, one
// base-table row id per joined alias.
type relation struct {
	aliases []string
	apos    map[string]int
	rows    [][]int32
}

func (r *relation) colOf(alias string) int { return r.apos[alias] }

type execState struct {
	ex     *Executor
	q      *query.Query
	work   float64
	budget float64
}

func (s *execState) charge(w float64) bool {
	s.work += w
	return s.work <= s.budget
}

// run evaluates a plan node; ok=false signals timeout.
func (s *execState) run(n *plan.Node) (*relation, bool) {
	if n.IsScan() {
		return s.runScan(n)
	}
	if n.Method == plan.NestLoop {
		return s.runNestLoop(n)
	}
	left, ok := s.run(n.Left)
	if !ok {
		return nil, false
	}
	right, ok := s.runScan(n.Right)
	if !ok {
		return nil, false
	}
	return s.runHashComputedJoin(n, left, right)
}

// runScan produces the filtered row ids of a base table and charges the
// access-path cost.
func (s *execState) runScan(n *plan.Node) (*relation, bool) {
	tbl := s.ex.DB.Table(s.q.TableOf(n.Alias))
	filters := n.ScanPred
	var ids []int32

	if n.Scan == plan.IndexScan && n.IdxFlt >= 0 && n.IdxFlt < len(filters) {
		f := filters[n.IdxFlt]
		ci := tbl.Meta.ColIndex(f.Col)
		cand := tbl.Lookup(ci, f.Val)
		residual := 0
		for fi := range filters {
			if fi != n.IdxFlt {
				residual++
			}
		}
		if !s.charge(s.ex.Params.IndexScanCost(float64(tbl.NumRows()), float64(len(cand)), residual)) {
			return nil, false
		}
		for _, r := range cand {
			if s.rowPasses(tbl, r, filters, n.IdxFlt) {
				ids = append(ids, r)
			}
		}
	} else {
		nRows := tbl.NumRows()
		if !s.charge(s.ex.Params.SeqScanCost(float64(nRows), len(filters))) {
			return nil, false
		}
		for r := 0; r < nRows; r++ {
			if s.rowPasses(tbl, int32(r), filters, -1) {
				ids = append(ids, int32(r))
			}
		}
	}
	rel := &relation{aliases: []string{n.Alias}, apos: map[string]int{n.Alias: 0}}
	rel.rows = make([][]int32, len(ids))
	for i, id := range ids {
		rel.rows[i] = []int32{id}
	}
	return rel, true
}

func (s *execState) rowPasses(tbl *storage.Table, r int32, filters []query.Filter, skip int) bool {
	for fi, f := range filters {
		if fi == skip {
			continue
		}
		ci := tbl.Meta.ColIndex(f.Col)
		if ci < 0 {
			return false
		}
		if !evalFilter(tbl.Value(ci, r), f) {
			return false
		}
	}
	return true
}

func evalFilter(v int64, f query.Filter) bool {
	switch f.Op {
	case query.Eq:
		return v == f.Val
	case query.Ne:
		return v != f.Val
	case query.Lt:
		return v < f.Val
	case query.Le:
		return v <= f.Val
	case query.Gt:
		return v > f.Val
	case query.Ge:
		return v >= f.Val
	case query.Between:
		return v >= f.Val && v <= f.Hi
	case query.In:
		for _, m := range f.Set {
			if v == m {
				return true
			}
		}
		return false
	}
	return false
}

// predCols resolves which side of each predicate belongs to the left
// relation vs the inner alias, returning (leftAlias, leftCol, innerCol) per
// predicate.
func splitPreds(preds []query.JoinPred, inner string) (lAlias, lCol, iCol []string) {
	for _, p := range preds {
		if p.RA == inner {
			lAlias = append(lAlias, p.LA)
			lCol = append(lCol, p.LC)
			iCol = append(iCol, p.RC)
		} else {
			lAlias = append(lAlias, p.RA)
			lCol = append(lCol, p.RC)
			iCol = append(iCol, p.LC)
		}
	}
	return
}

const outCheckBatch = 4096

// runHashComputedJoin computes the join result by hashing (regardless of the
// plan's method) and charges the method-specific cost from true cardinalities.
func (s *execState) runHashComputedJoin(n *plan.Node, left *relation, right *relation) (*relation, bool) {
	innerAlias := n.Right.Alias
	innerTbl := s.ex.DB.Table(s.q.TableOf(innerAlias))
	lRows, rRows := float64(len(left.rows)), float64(len(right.rows))

	// Method charge, pre-output: output tuples charged incrementally below.
	switch n.Method {
	case plan.HashJoin:
		if !s.charge(rRows*s.ex.Params.HashBuild + lRows*s.ex.Params.HashProbe) {
			return nil, false
		}
	case plan.MergeJoin:
		sorted := innerSortedOnJoinCol(innerTbl, n.Preds, innerAlias)
		c := (lRows + rRows) * s.ex.Params.MergeTuple
		if lRows >= 2 {
			c += lRows * math.Log2(lRows) * s.ex.Params.SortTuple
		}
		if !sorted && rRows >= 2 {
			c += rRows * math.Log2(rRows) * s.ex.Params.SortTuple
		}
		if !s.charge(c) {
			return nil, false
		}
	default:
		panic(fmt.Sprintf("exec: runHashComputedJoin on %v", n.Method))
	}

	lAlias, lCol, iCol := splitPreds(n.Preds, innerAlias)

	// Cross product: no predicates connect the sides.
	if len(n.Preds) == 0 {
		return s.crossProduct(left, right, innerAlias)
	}

	// Build on the inner side.
	build := map[uint64][]int32{}
	iColIdx := make([]int, len(iCol))
	for i, c := range iCol {
		iColIdx[i] = innerTbl.Meta.ColIndex(c)
	}
	for _, row := range right.rows {
		r := row[0]
		build[hashKeyTable(innerTbl, iColIdx, r)] = append(build[hashKeyTable(innerTbl, iColIdx, r)], r)
	}

	// Probe with the left relation.
	lTblIdx := make([]*storage.Table, len(lAlias))
	lColIdx := make([]int, len(lAlias))
	lRelPos := make([]int, len(lAlias))
	for i := range lAlias {
		lTblIdx[i] = s.ex.DB.Table(s.q.TableOf(lAlias[i]))
		lColIdx[i] = lTblIdx[i].Meta.ColIndex(lCol[i])
		lRelPos[i] = left.colOf(lAlias[i])
	}
	out := &relation{aliases: append(append([]string(nil), left.aliases...), innerAlias), apos: map[string]int{}}
	for i, a := range out.aliases {
		out.apos[a] = i
	}
	pending := 0
	for _, lrow := range left.rows {
		key := hashKeyLeft(lTblIdx, lColIdx, lRelPos, lrow)
		for _, r := range build[key] {
			if !joinValuesEqual(lTblIdx, lColIdx, lRelPos, lrow, innerTbl, iColIdx, r) {
				continue
			}
			nr := make([]int32, len(lrow)+1)
			copy(nr, lrow)
			nr[len(lrow)] = r
			out.rows = append(out.rows, nr)
			pending++
			if pending >= outCheckBatch {
				if !s.charge(float64(pending) * s.ex.Params.OutTuple) {
					return nil, false
				}
				pending = 0
			}
		}
	}
	if !s.charge(float64(pending) * s.ex.Params.OutTuple) {
		return nil, false
	}
	return out, true
}

// runNestLoop executes the nested-loop join. With an index on the inner join
// column it performs true index lookups per outer tuple (and charges them);
// without one it charges |outer|·|innerBase| and computes the result by
// hashing the filtered inner rows.
func (s *execState) runNestLoop(n *plan.Node) (*relation, bool) {
	left, ok := s.run(n.Left)
	if !ok {
		return nil, false
	}
	innerAlias := n.Right.Alias
	innerTbl := s.ex.DB.Table(s.q.TableOf(innerAlias))
	innerFilters := n.Right.ScanPred
	lRows := float64(len(left.rows))
	innerBase := float64(innerTbl.NumRows())

	lAlias, lCol, iCol := splitPreds(n.Preds, innerAlias)

	// pick an indexed inner join column, if any
	idxPred := -1
	for i, c := range iCol {
		ci := innerTbl.Meta.ColIndex(c)
		if ci >= 0 && innerTbl.HasIndex(ci) {
			idxPred = i
			break
		}
	}

	out := &relation{aliases: append(append([]string(nil), left.aliases...), innerAlias), apos: map[string]int{}}
	for i, a := range out.aliases {
		out.apos[a] = i
	}

	if len(n.Preds) == 0 {
		// cross nested loop: charge the naive formula, compute as product
		if !s.charge(lRows*s.ex.Params.NLOuter + lRows*innerBase*s.ex.Params.NLInner) {
			return nil, false
		}
		right, ok2 := s.runScanUncharged(n.Right)
		if !ok2 {
			return nil, false
		}
		return s.crossProduct(left, right, innerAlias)
	}

	if idxPred >= 0 {
		// Index nested loop, executed for real.
		if !s.charge(lRows * (s.ex.Params.NLOuter + s.ex.Params.IdxLookup*log2c(innerBase))) {
			return nil, false
		}
		la := s.q.TableOf(lAlias[idxPred])
		lt := s.ex.DB.Table(la)
		lci := lt.Meta.ColIndex(lCol[idxPred])
		lrp := left.colOf(lAlias[idxPred])
		ici := innerTbl.Meta.ColIndex(iCol[idxPred])

		lTblIdx := make([]*storage.Table, len(lAlias))
		lColIdx := make([]int, len(lAlias))
		lRelPos := make([]int, len(lAlias))
		iColIdx := make([]int, len(iCol))
		for i := range lAlias {
			lTblIdx[i] = s.ex.DB.Table(s.q.TableOf(lAlias[i]))
			lColIdx[i] = lTblIdx[i].Meta.ColIndex(lCol[i])
			lRelPos[i] = left.colOf(lAlias[i])
			iColIdx[i] = innerTbl.Meta.ColIndex(iCol[i])
		}

		pendingCand, pendingOut := 0, 0
		for _, lrow := range left.rows {
			v := lt.Value(lci, lrow[lrp])
			cands := innerTbl.Lookup(ici, v)
			pendingCand += len(cands)
			if pendingCand >= outCheckBatch {
				if !s.charge(float64(pendingCand) * s.ex.Params.IdxTuple) {
					return nil, false
				}
				pendingCand = 0
			}
			for _, r := range cands {
				if !s.rowPasses(innerTbl, r, innerFilters, -1) {
					continue
				}
				okAll := true
				for i := range lAlias {
					if i == idxPred {
						continue
					}
					if lTblIdx[i].Value(lColIdx[i], lrow[lRelPos[i]]) != innerTbl.Value(iColIdx[i], r) {
						okAll = false
						break
					}
				}
				if !okAll {
					continue
				}
				nr := make([]int32, len(lrow)+1)
				copy(nr, lrow)
				nr[len(lrow)] = r
				out.rows = append(out.rows, nr)
				pendingOut++
				if pendingOut >= outCheckBatch {
					if !s.charge(float64(pendingOut) * s.ex.Params.OutTuple) {
						return nil, false
					}
					pendingOut = 0
				}
			}
		}
		if !s.charge(float64(pendingCand)*s.ex.Params.IdxTuple + float64(pendingOut)*s.ex.Params.OutTuple) {
			return nil, false
		}
		return out, true
	}

	// Naive nested loop: charge the quadratic formula up front; if the budget
	// survives, compute the identical result via hashing.
	if !s.charge(lRows*s.ex.Params.NLOuter + lRows*innerBase*s.ex.Params.NLInner) {
		return nil, false
	}
	right, ok := s.runScanUncharged(n.Right)
	if !ok {
		return nil, false
	}
	saveWork := s.work
	rel, ok2 := s.runHashComputedJoinNoCharge(n, left, right)
	s.work = saveWork // hashing here is an implementation detail, not a charge
	if !ok2 {
		return nil, false
	}
	// output tuples are still charged
	if !s.charge(float64(len(rel.rows)) * s.ex.Params.OutTuple) {
		return nil, false
	}
	return rel, true
}

// runScanUncharged evaluates a scan's row set without charging (used when the
// enclosing operator's formula already covers inner access).
func (s *execState) runScanUncharged(n *plan.Node) (*relation, bool) {
	saved := s.work
	rel, ok := s.runScan(n)
	s.work = saved
	return rel, ok
}

// runHashComputedJoinNoCharge computes the join result by hashing without
// charging method costs (inner helper for the naive NLJ path).
func (s *execState) runHashComputedJoinNoCharge(n *plan.Node, left, right *relation) (*relation, bool) {
	tmp := &plan.Node{Method: plan.HashJoin, Preds: n.Preds, Left: n.Left, Right: n.Right}
	saved := s.work
	// give the helper unlimited budget: the caller already charged
	savedBudget := s.budget
	s.budget = math.Inf(1)
	rel, ok := s.runHashComputedJoin(tmp, left, right)
	s.budget = savedBudget
	s.work = saved
	return rel, ok
}

func (s *execState) crossProduct(left, right *relation, innerAlias string) (*relation, bool) {
	out := &relation{aliases: append(append([]string(nil), left.aliases...), innerAlias), apos: map[string]int{}}
	for i, a := range out.aliases {
		out.apos[a] = i
	}
	pending := 0
	for _, lrow := range left.rows {
		for _, rrow := range right.rows {
			nr := make([]int32, len(lrow)+1)
			copy(nr, lrow)
			nr[len(lrow)] = rrow[0]
			out.rows = append(out.rows, nr)
			pending++
			if pending >= outCheckBatch {
				if !s.charge(float64(pending) * s.ex.Params.OutTuple) {
					return nil, false
				}
				pending = 0
			}
		}
	}
	if !s.charge(float64(pending) * s.ex.Params.OutTuple) {
		return nil, false
	}
	return out, true
}

func innerSortedOnJoinCol(tbl *storage.Table, preds []query.JoinPred, inner string) bool {
	for _, p := range preds {
		col := p.RC
		if p.RA != inner {
			col = p.LC
		}
		ci := tbl.Meta.ColIndex(col)
		if ci >= 0 && tbl.HasIndex(ci) {
			return true
		}
	}
	return false
}

func log2c(x float64) float64 {
	if x < 2 {
		return 1
	}
	return math.Log2(x)
}

const fnvOffset = 14695981039346656037
const fnvPrime = 1099511628211

func mix(h uint64, v int64) uint64 {
	h ^= uint64(v)
	h *= fnvPrime
	return h
}

func hashKeyTable(tbl *storage.Table, cols []int, r int32) uint64 {
	h := uint64(fnvOffset)
	for _, c := range cols {
		h = mix(h, tbl.Value(c, r))
	}
	return h
}

func hashKeyLeft(tbls []*storage.Table, cols, relPos []int, lrow []int32) uint64 {
	h := uint64(fnvOffset)
	for i := range tbls {
		h = mix(h, tbls[i].Value(cols[i], lrow[relPos[i]]))
	}
	return h
}

func joinValuesEqual(lt []*storage.Table, lc, lp []int, lrow []int32, it *storage.Table, ic []int, r int32) bool {
	for i := range lt {
		if lt[i].Value(lc[i], lrow[lp[i]]) != it.Value(ic[i], r) {
			return false
		}
	}
	return true
}
