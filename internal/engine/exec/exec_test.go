package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/engine/stats"
	"github.com/foss-db/foss/internal/engine/storage"
	"github.com/foss-db/foss/internal/optimizer"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/query"
)

// testDB builds a small 3-table star: orders -> customers, orders -> items.
func testDB(t testing.TB, nCust, nItem, nOrd int, seed int64) *storage.DB {
	t.Helper()
	s := catalog.NewSchema()
	s.AddTable(catalog.NewTable("customer",
		catalog.Column{Name: "id", Indexed: true},
		catalog.Column{Name: "region"},
	))
	s.AddTable(catalog.NewTable("item",
		catalog.Column{Name: "id", Indexed: true},
		catalog.Column{Name: "price"},
	))
	s.AddTable(catalog.NewTable("orders",
		catalog.Column{Name: "id", Indexed: true},
		catalog.Column{Name: "cust_id", Indexed: true},
		catalog.Column{Name: "item_id", Indexed: true},
		catalog.Column{Name: "qty"},
	))
	s.AddFK("orders", "cust_id", "customer", "id")
	s.AddFK("orders", "item_id", "item", "id")
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB(s)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nCust; i++ {
		db.Table("customer").AppendRow(int64(i), int64(rng.Intn(5)))
	}
	for i := 0; i < nItem; i++ {
		db.Table("item").AppendRow(int64(i), int64(rng.Intn(100)))
	}
	for i := 0; i < nOrd; i++ {
		db.Table("orders").AppendRow(int64(i), int64(rng.Intn(nCust)), int64(rng.Intn(nItem)), int64(rng.Intn(10)))
	}
	db.BuildAllIndexes()
	return db
}

func starQ() *query.Query {
	return &query.Query{
		ID: "star",
		Tables: []query.TableRef{
			{Table: "orders", Alias: "o"},
			{Table: "customer", Alias: "c"},
			{Table: "item", Alias: "i"},
		},
		Joins: []query.JoinPred{
			{LA: "o", LC: "cust_id", RA: "c", RC: "id"},
			{LA: "o", LC: "item_id", RA: "i", RC: "id"},
		},
		Filters: []query.Filter{
			{Alias: "c", Col: "region", Op: query.Eq, Val: 2},
			{Alias: "i", Col: "price", Op: query.Lt, Val: 50},
		},
	}
}

// bruteForceCount counts the true result cardinality by triple loop.
func bruteForceCount(db *storage.DB, q *query.Query) int {
	o, c, i := db.Table("orders"), db.Table("customer"), db.Table("item")
	count := 0
	for oi := 0; oi < o.NumRows(); oi++ {
		for ci := 0; ci < c.NumRows(); ci++ {
			if o.Value(1, int32(oi)) != c.Value(0, int32(ci)) {
				continue
			}
			if c.Value(1, int32(ci)) != 2 {
				continue
			}
			for ii := 0; ii < i.NumRows(); ii++ {
				if o.Value(2, int32(oi)) != i.Value(0, int32(ii)) {
					continue
				}
				if i.Value(1, int32(ii)) >= 50 {
					continue
				}
				count++
			}
		}
	}
	return count
}

func planAllOrders(t *testing.T, db *storage.DB, q *query.Query) []*plan.CP {
	t.Helper()
	st := stats.Build(db, 1.0, 1)
	opt := optimizer.New(db, st)
	var cps []*plan.CP
	orders := [][]string{
		{"o", "c", "i"}, {"o", "i", "c"},
		{"c", "o", "i"}, {"i", "o", "c"},
	}
	for _, ord := range orders {
		for _, m1 := range []plan.JoinMethod{plan.HashJoin, plan.MergeJoin, plan.NestLoop} {
			for _, m2 := range []plan.JoinMethod{plan.HashJoin, plan.MergeJoin, plan.NestLoop} {
				icp := plan.ICP{Order: ord, Methods: []plan.JoinMethod{m1, m2}}
				cp, err := opt.HintedPlan(q, icp)
				if err != nil {
					t.Fatalf("HintedPlan(%v): %v", icp, err)
				}
				cps = append(cps, cp)
			}
		}
	}
	return cps
}

func TestExecutorMatchesBruteForceAcrossAllPlans(t *testing.T) {
	db := testDB(t, 50, 40, 400, 7)
	q := starQ()
	want := bruteForceCount(db, q)
	ex := New(db)
	for _, cp := range planAllOrders(t, db, q) {
		res := ex.Execute(cp, 0)
		if res.TimedOut {
			t.Fatalf("unexpected timeout for %s", cp)
		}
		if res.OutRows != want {
			t.Fatalf("plan produced %d rows, brute force %d:\n%s", res.OutRows, want, cp)
		}
	}
}

func TestExecutorDeterministic(t *testing.T) {
	db := testDB(t, 30, 30, 200, 3)
	q := starQ()
	cps := planAllOrders(t, db, q)
	ex := New(db)
	for _, cp := range cps {
		a := ex.Execute(cp, 0)
		b := ex.Execute(cp, 0)
		if a.LatencyMs != b.LatencyMs || a.OutRows != b.OutRows || a.Work != b.Work {
			t.Fatalf("execution not deterministic: %+v vs %+v", a, b)
		}
	}
}

func TestExecutorMethodsHaveDistinctCosts(t *testing.T) {
	db := testDB(t, 50, 40, 400, 7)
	q := starQ()
	st := stats.Build(db, 1.0, 1)
	opt := optimizer.New(db, st)
	ex := New(db)
	lat := map[plan.JoinMethod]float64{}
	for _, m := range []plan.JoinMethod{plan.HashJoin, plan.MergeJoin, plan.NestLoop} {
		icp := plan.ICP{Order: []string{"c", "o", "i"}, Methods: []plan.JoinMethod{m, plan.HashJoin}}
		cp, err := opt.HintedPlan(q, icp)
		if err != nil {
			t.Fatal(err)
		}
		lat[m] = ex.Execute(cp, 0).LatencyMs
	}
	if lat[plan.HashJoin] == lat[plan.MergeJoin] && lat[plan.MergeJoin] == lat[plan.NestLoop] {
		t.Fatalf("all methods charged identically: %v", lat)
	}
}

func TestExecutorTimeout(t *testing.T) {
	db := testDB(t, 200, 200, 5000, 9)
	q := starQ()
	st := stats.Build(db, 1.0, 1)
	opt := optimizer.New(db, st)
	cp, err := opt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	full := ex.Execute(cp, 0)
	if full.TimedOut {
		t.Fatal("full run should not time out")
	}
	cut := ex.Execute(cp, full.LatencyMs/4)
	if !cut.TimedOut {
		t.Fatalf("expected timeout at quarter budget (full=%.3fms)", full.LatencyMs)
	}
	if cut.LatencyMs != full.LatencyMs/4 {
		t.Fatalf("timeout latency should equal the budget: %f vs %f", cut.LatencyMs, full.LatencyMs/4)
	}
}

func TestHintFidelity(t *testing.T) {
	db := testDB(t, 30, 30, 300, 5)
	q := starQ()
	st := stats.Build(db, 1.0, 1)
	opt := optimizer.New(db, st)
	f := func(ordPick uint8, m1, m2 uint8) bool {
		orders := [][]string{{"o", "c", "i"}, {"o", "i", "c"}, {"c", "o", "i"}, {"i", "o", "c"}}
		icp := plan.ICP{
			Order:   orders[int(ordPick)%len(orders)],
			Methods: []plan.JoinMethod{plan.JoinMethod(m1 % 3), plan.JoinMethod(m2 % 3)},
		}
		cp, err := opt.HintedPlan(q, icp)
		if err != nil {
			return false
		}
		got, err := plan.Extract(cp)
		if err != nil {
			return false
		}
		return got.Equal(icp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizerPicksConnectedOrder(t *testing.T) {
	db := testDB(t, 50, 40, 400, 7)
	q := starQ()
	st := stats.Build(db, 1.0, 1)
	opt := optimizer.New(db, st)
	cp, err := opt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	icp, err := plan.Extract(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsConnectedOrder(icp.Order) {
		t.Fatalf("DP chose a cross-product order %v", icp.Order)
	}
}

func TestOptimizerRespectsDisabledJoins(t *testing.T) {
	db := testDB(t, 50, 40, 400, 7)
	q := starQ()
	st := stats.Build(db, 1.0, 1)
	opt := optimizer.New(db, st)
	cfg := optimizer.Config{DisabledJoins: map[plan.JoinMethod]bool{plan.HashJoin: true}}
	cp, err := opt.PlanWithConfig(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	icp, err := plan.Extract(cp)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range icp.Methods {
		if m == plan.HashJoin {
			t.Fatal("disabled method used")
		}
	}
}

func TestOptimizerChoosesIndexScanForSelectiveEq(t *testing.T) {
	db := testDB(t, 5000, 40, 400, 11)
	q := &query.Query{
		ID: "pt",
		Tables: []query.TableRef{
			{Table: "orders", Alias: "o"},
			{Table: "customer", Alias: "c"},
		},
		Joins:   []query.JoinPred{{LA: "o", LC: "cust_id", RA: "c", RC: "id"}},
		Filters: []query.Filter{{Alias: "c", Col: "id", Op: query.Eq, Val: 17}},
	}
	st := stats.Build(db, 1.0, 1)
	opt := optimizer.New(db, st)
	cp, err := opt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	// The scan on c (5000 rows, unique eq filter on indexed id) must be an
	// index scan.
	found := false
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		if n == nil {
			return
		}
		if n.IsScan() && n.Alias == "c" {
			found = n.Scan == plan.IndexScan
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(cp.Root)
	if !found {
		t.Fatalf("expected index scan on c:\n%s", cp)
	}
}

func TestStatsEstimatesWithinReason(t *testing.T) {
	db := testDB(t, 500, 200, 5000, 13)
	st := stats.Build(db, 1.0, 1)
	ts := st.Table("orders")
	if ts == nil || ts.Rows != 5000 {
		t.Fatalf("orders stats rows %v", ts)
	}
	cs := ts.Cols["cust_id"]
	if cs.NDV < 300 || cs.NDV > 500 {
		t.Fatalf("cust_id ndv %.0f, want ~500", cs.NDV)
	}
	// range selectivity of the full domain should be ~1
	if sel := cs.RangeSelectivity(cs.Min, cs.Max); sel < 0.95 || sel > 1.0 {
		t.Fatalf("full-range selectivity %f", sel)
	}
}

func TestSingleTablePlanExecutes(t *testing.T) {
	db := testDB(t, 50, 40, 400, 7)
	q := &query.Query{
		ID:      "single",
		Tables:  []query.TableRef{{Table: "customer", Alias: "c"}},
		Filters: []query.Filter{{Alias: "c", Col: "region", Op: query.Eq, Val: 2}},
	}
	st := stats.Build(db, 1.0, 1)
	opt := optimizer.New(db, st)
	cp, err := opt.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	res := New(db).Execute(cp, 0)
	want := 0
	c := db.Table("customer")
	for r := 0; r < c.NumRows(); r++ {
		if c.Value(1, int32(r)) == 2 {
			want++
		}
	}
	if res.OutRows != want {
		t.Fatalf("single table scan got %d rows, want %d", res.OutRows, want)
	}
}

func TestCrossProductWhenDisconnected(t *testing.T) {
	db := testDB(t, 10, 10, 20, 7)
	q := &query.Query{
		ID: "cross",
		Tables: []query.TableRef{
			{Table: "customer", Alias: "c"},
			{Table: "item", Alias: "i"},
		},
	}
	st := stats.Build(db, 1.0, 1)
	opt := optimizer.New(db, st)
	cp, err := opt.Plan(q) // must fall back to allowing the cross join
	if err != nil {
		t.Fatal(err)
	}
	res := New(db).Execute(cp, 0)
	if res.OutRows != 100 {
		t.Fatalf("cross product rows %d, want 100", res.OutRows)
	}
}
