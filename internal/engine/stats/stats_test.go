package stats

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/engine/storage"
	"github.com/foss-db/foss/internal/query"
)

func uniformTable(n int, mod int64) *storage.DB {
	s := catalog.NewSchema()
	s.AddTable(catalog.NewTable("t", catalog.Column{Name: "v"}))
	db := storage.NewDB(s)
	for i := 0; i < n; i++ {
		db.Table("t").AppendRow(int64(i) % mod)
	}
	return db
}

func TestEqSelectivityUniform(t *testing.T) {
	db := uniformTable(10000, 100)
	cat := Build(db, 1.0, 1)
	cs := cat.Table("t").Cols["v"]
	sel := cs.EqSelectivity(42)
	if sel < 0.005 || sel > 0.02 {
		t.Fatalf("eq selectivity %f, want ~0.01", sel)
	}
	if s := cs.EqSelectivity(1e9); s > 0.001 {
		t.Fatalf("out-of-domain selectivity %f", s)
	}
}

func TestRangeSelectivityUniform(t *testing.T) {
	db := uniformTable(10000, 100)
	cat := Build(db, 1.0, 1)
	cs := cat.Table("t").Cols["v"]
	if s := cs.RangeSelectivity(0, 49); s < 0.4 || s > 0.6 {
		t.Fatalf("half-range selectivity %f", s)
	}
	if s := cs.RangeSelectivity(cs.Min, cs.Max); s < 0.95 || s > 1.0 {
		t.Fatalf("full-range selectivity %f", s)
	}
	if s := cs.RangeSelectivity(500, 600); s > 0.001 {
		t.Fatalf("out-of-domain range selectivity %f", s)
	}
}

func TestSelectivityBoundsProperty(t *testing.T) {
	db := uniformTable(5000, 37)
	cat := Build(db, 1.0, 1)
	cs := cat.Table("t").Cols["v"]
	f := func(op uint8, v int64) bool {
		fl := query.Filter{Alias: "t", Col: "v", Op: query.CmpOp(op % 7), Val: v % 100, Hi: v%100 + 10}
		s := cs.FilterSelectivity(fl)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNDVEstimate(t *testing.T) {
	db := uniformTable(10000, 250)
	cat := Build(db, 1.0, 1)
	cs := cat.Table("t").Cols["v"]
	if cs.NDV < 200 || cs.NDV > 300 {
		t.Fatalf("NDV %f, want ~250", cs.NDV)
	}
}

func TestSamplingIntroducesError(t *testing.T) {
	// a sampled catalog must differ from the full-scan catalog (this error
	// is a feature: it is one of the estimator's realistic failure sources)
	rng := rand.New(rand.NewSource(9))
	s := catalog.NewSchema()
	s.AddTable(catalog.NewTable("t", catalog.Column{Name: "v"}))
	db := storage.NewDB(s)
	for i := 0; i < 20000; i++ {
		db.Table("t").AppendRow(rng.Int63n(5000))
	}
	full := Build(db, 1.0, 1)
	sampled := Build(db, 0.05, 1)
	fNDV := full.Table("t").Cols["v"].NDV
	sNDV := sampled.Table("t").Cols["v"].NDV
	if fNDV == sNDV {
		t.Fatal("sampling produced identical NDV; no estimation error source")
	}
	if sNDV > fNDV {
		t.Fatalf("sampled NDV %f exceeds full NDV %f", sNDV, fNDV)
	}
}

func TestJoinSelectivity(t *testing.T) {
	s := catalog.NewSchema()
	s.AddTable(catalog.NewTable("a", catalog.Column{Name: "k"}))
	s.AddTable(catalog.NewTable("b", catalog.Column{Name: "k"}))
	db := storage.NewDB(s)
	for i := 0; i < 1000; i++ {
		db.Table("a").AppendRow(int64(i % 100))
		db.Table("b").AppendRow(int64(i % 50))
	}
	cat := Build(db, 1.0, 1)
	sel := cat.JoinSelectivity("a", "k", "b", "k")
	if sel < 0.008 || sel > 0.012 { // 1/max(100,50) = 0.01
		t.Fatalf("join selectivity %f, want ~0.01", sel)
	}
}

func TestScanRowsFloor(t *testing.T) {
	db := uniformTable(100, 10)
	cat := Build(db, 1.0, 1)
	q := &query.Query{
		ID:      "f",
		Tables:  []query.TableRef{{Table: "t", Alias: "t"}},
		Filters: []query.Filter{{Alias: "t", Col: "v", Op: query.Eq, Val: 99999}},
	}
	if r := cat.ScanRows(q, "t"); r < 1 {
		t.Fatalf("ScanRows must be floored at 1, got %f", r)
	}
}
