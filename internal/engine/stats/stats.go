// Package stats builds per-column statistics (equi-depth histograms,
// distinct counts, min/max) from stored data and estimates predicate and
// join selectivities the way a traditional optimizer does: histograms per
// column combined under the independence assumption, and the classic
// |L⋈R| = |L||R| / max(ndv_L, ndv_R) join formula.
//
// These estimators are deliberately error-prone in exactly the ways real
// systems are: they are built from a sample, they assume column
// independence, and they know nothing about cross-column or cross-table
// correlations — which the synthetic workloads engineer on purpose. The
// resulting estimation error is the root cause of the suboptimal plans FOSS
// then repairs, mirroring the paper's premise.
package stats

import (
	"math"
	"math/rand"
	"sort"

	"github.com/foss-db/foss/internal/engine/storage"
	"github.com/foss-db/foss/internal/query"
)

// HistogramBuckets is the number of equi-depth buckets per column.
const HistogramBuckets = 16

// ColumnStats summarizes one column.
type ColumnStats struct {
	Min, Max  int64
	NDV       float64   // estimated number of distinct values
	Bounds    []int64   // bucket upper bounds (inclusive), equi-depth
	RowsTotal float64   // rows in the (sampled) column
	MCVs      []int64   // most common values
	MCVFracs  []float64 // their frequency fractions
}

// TableStats summarizes one table.
type TableStats struct {
	Rows float64 // true row count (cheap to maintain exactly, like pg_class)
	Cols map[string]*ColumnStats
}

// Catalog holds statistics for every table.
type Catalog struct {
	Tables map[string]*TableStats
}

// Build computes statistics over the database, sampling sampleFrac of the
// rows of each table (1.0 = full scan). Sampling is seeded for determinism.
func Build(db *storage.DB, sampleFrac float64, seed int64) *Catalog {
	rng := rand.New(rand.NewSource(seed))
	cat := &Catalog{Tables: map[string]*TableStats{}}
	for _, name := range db.Schema.Order {
		t := db.Table(name)
		ts := &TableStats{Rows: float64(t.NumRows()), Cols: map[string]*ColumnStats{}}
		n := t.NumRows()
		var sampleIDs []int32
		if sampleFrac >= 1 || n == 0 {
			sampleIDs = nil // full scan
		} else {
			k := int(float64(n) * sampleFrac)
			if k < 100 {
				k = 100
			}
			if k > n {
				k = n
			}
			sampleIDs = make([]int32, 0, k)
			for i := 0; i < k; i++ {
				sampleIDs = append(sampleIDs, int32(rng.Intn(n)))
			}
		}
		for ci, col := range t.Meta.Columns {
			ts.Cols[col.Name] = buildColumn(t.Cols[ci], sampleIDs)
		}
		cat.Tables[name] = ts
	}
	return cat
}

func buildColumn(data []int64, sampleIDs []int32) *ColumnStats {
	var vals []int64
	if sampleIDs == nil {
		vals = append([]int64(nil), data...)
	} else {
		vals = make([]int64, len(sampleIDs))
		for i, r := range sampleIDs {
			vals[i] = data[r]
		}
	}
	cs := &ColumnStats{RowsTotal: float64(len(vals))}
	if len(vals) == 0 {
		cs.NDV = 1
		return cs
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	cs.Min, cs.Max = vals[0], vals[len(vals)-1]

	// distinct count + most common values from the sorted sample
	type vc struct {
		v int64
		c int
	}
	var counts []vc
	cur, cnt := vals[0], 0
	for _, v := range vals {
		if v == cur {
			cnt++
		} else {
			counts = append(counts, vc{cur, cnt})
			cur, cnt = v, 1
		}
	}
	counts = append(counts, vc{cur, cnt})
	cs.NDV = float64(len(counts))
	sort.Slice(counts, func(a, b int) bool { return counts[a].c > counts[b].c })
	for i := 0; i < len(counts) && i < 8; i++ {
		frac := float64(counts[i].c) / float64(len(vals))
		if frac < 0.01 {
			break
		}
		cs.MCVs = append(cs.MCVs, counts[i].v)
		cs.MCVFracs = append(cs.MCVFracs, frac)
	}

	// equi-depth bucket bounds
	b := HistogramBuckets
	if b > len(vals) {
		b = len(vals)
	}
	for i := 1; i <= b; i++ {
		idx := i*len(vals)/b - 1
		cs.Bounds = append(cs.Bounds, vals[idx])
	}
	return cs
}

// EqSelectivity estimates the fraction of rows where col = v.
func (cs *ColumnStats) EqSelectivity(v int64) float64 {
	for i, m := range cs.MCVs {
		if m == v {
			return cs.MCVFracs[i]
		}
	}
	if v < cs.Min || v > cs.Max {
		return 0.5 / math.Max(cs.RowsTotal, 1) // tiny non-zero, like PG
	}
	// uniform over non-MCV distinct values
	mcvMass := 0.0
	for _, f := range cs.MCVFracs {
		mcvMass += f
	}
	rest := math.Max(cs.NDV-float64(len(cs.MCVs)), 1)
	return math.Max((1-mcvMass)/rest, 1e-9)
}

// RangeSelectivity estimates the fraction of rows with lo <= col <= hi
// using the equi-depth histogram (each bucket holds 1/len(Bounds) mass).
func (cs *ColumnStats) RangeSelectivity(lo, hi int64) float64 {
	if len(cs.Bounds) == 0 || lo > hi {
		return 0
	}
	if hi < cs.Min || lo > cs.Max {
		return 1e-9
	}
	if lo < cs.Min {
		lo = cs.Min
	}
	if hi > cs.Max {
		hi = cs.Max
	}
	per := 1.0 / float64(len(cs.Bounds))
	sel := 0.0
	prev := cs.Min
	for _, ub := range cs.Bounds {
		bLo, bUb := prev, ub
		prev = ub
		if bUb < lo || bLo > hi {
			continue
		}
		// overlap fraction within the bucket, assuming uniform spread
		width := float64(bUb-bLo) + 1
		oLo, oHi := bLo, bUb
		if lo > oLo {
			oLo = lo
		}
		if hi < oHi {
			oHi = hi
		}
		frac := (float64(oHi-oLo) + 1) / width
		if frac > 1 {
			frac = 1
		}
		sel += per * frac
	}
	if sel <= 0 {
		sel = 1e-9
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

// FilterSelectivity estimates the selectivity of a single filter predicate.
func (cs *ColumnStats) FilterSelectivity(f query.Filter) float64 {
	switch f.Op {
	case query.Eq:
		return cs.EqSelectivity(f.Val)
	case query.Ne:
		return math.Max(1-cs.EqSelectivity(f.Val), 1e-9)
	case query.Lt:
		return cs.RangeSelectivity(cs.Min, f.Val-1)
	case query.Le:
		return cs.RangeSelectivity(cs.Min, f.Val)
	case query.Gt:
		return cs.RangeSelectivity(f.Val+1, cs.Max)
	case query.Ge:
		return cs.RangeSelectivity(f.Val, cs.Max)
	case query.Between:
		return cs.RangeSelectivity(f.Val, f.Hi)
	case query.In:
		s := 0.0
		for _, v := range f.Set {
			s += cs.EqSelectivity(v)
		}
		if s > 1 {
			s = 1
		}
		return math.Max(s, 1e-9)
	}
	return 1
}

// Table returns stats for the named table (nil if absent).
func (c *Catalog) Table(name string) *TableStats { return c.Tables[name] }

// ScanSelectivity estimates the combined selectivity of all filters on one
// alias under the independence assumption.
func (c *Catalog) ScanSelectivity(q *query.Query, alias string) float64 {
	table := q.TableOf(alias)
	ts := c.Tables[table]
	if ts == nil {
		return 1
	}
	sel := 1.0
	for _, f := range q.FiltersOn(alias) {
		cs := ts.Cols[f.Col]
		if cs == nil {
			continue
		}
		sel *= cs.FilterSelectivity(f)
	}
	return sel
}

// ScanRows estimates the output cardinality of scanning alias with its
// filters applied.
func (c *Catalog) ScanRows(q *query.Query, alias string) float64 {
	table := q.TableOf(alias)
	ts := c.Tables[table]
	if ts == nil {
		return 1
	}
	rows := ts.Rows * c.ScanSelectivity(q, alias)
	if rows < 1 {
		rows = 1
	}
	return rows
}

// JoinSelectivity estimates the selectivity of an equi-join between the two
// columns using 1/max(ndv_l, ndv_r).
func (c *Catalog) JoinSelectivity(lTable, lCol, rTable, rCol string) float64 {
	lt, rt := c.Tables[lTable], c.Tables[rTable]
	if lt == nil || rt == nil {
		return 0.1
	}
	lc, rc := lt.Cols[lCol], rt.Cols[rCol]
	if lc == nil || rc == nil {
		return 0.1
	}
	ndv := math.Max(lc.NDV, rc.NDV)
	if ndv < 1 {
		ndv = 1
	}
	return 1 / ndv
}
