// Package cost defines the operator cost formulas shared by the traditional
// optimizer (which evaluates them over *estimated* cardinalities) and the
// executor's latency model (which evaluates them over *true* cardinalities,
// with slightly different constants to model cost-model error on top of
// cardinality error). Costs are abstract work units; the executor converts
// them to simulated milliseconds.
package cost

import "math"

// Params are the per-tuple cost constants of each physical operator.
type Params struct {
	SeqTuple   float64 // read one tuple in a sequential scan
	FilterEval float64 // evaluate one predicate on one tuple
	IdxLookup  float64 // one index descent (charged per probe, log-scaled)
	IdxTuple   float64 // fetch one matching tuple through an index
	HashBuild  float64 // insert one tuple into a hash table
	HashProbe  float64 // probe one tuple against a hash table
	SortTuple  float64 // per tuple per log2(n) of a sort
	MergeTuple float64 // advance one tuple in a merge
	NLOuter    float64 // per outer tuple bookkeeping in a nested loop
	NLInner    float64 // per inner tuple visited in a naive nested loop
	OutTuple   float64 // materialize one output tuple
}

// OptimizerParams are the constants the traditional optimizer *believes*.
// Relative to TruthParams they overprice index descents and underprice hash
// builds — the canonical direction of real planners (random-I/O pessimism,
// cache-miss blindness), and the reason the optimizer keeps choosing
// scan-and-hash pipelines where an index nested-loop chain is nearly free
// (the paper's query-1b anecdote).
func OptimizerParams() Params {
	return Params{
		SeqTuple:   1.0,
		FilterEval: 0.25,
		IdxLookup:  2.5,
		IdxTuple:   2.0,
		HashBuild:  1.5,
		HashProbe:  1.0,
		SortTuple:  1.0,
		MergeTuple: 0.7,
		NLOuter:    0.5,
		NLInner:    1.0,
		OutTuple:   0.3,
	}
}

// TruthParams are the constants the executor charges. They diverge from
// OptimizerParams in the directions real systems do: hashing is a bit more
// expensive than planners assume (cache misses on build), index descents
// cheaper (hot upper levels), merges slightly cheaper.
func TruthParams() Params {
	return Params{
		SeqTuple:   1.0,
		FilterEval: 0.25,
		IdxLookup:  1.2,
		IdxTuple:   1.6,
		HashBuild:  2.4,
		HashProbe:  1.3,
		SortTuple:  1.1,
		MergeTuple: 0.6,
		NLOuter:    0.5,
		NLInner:    1.0,
		OutTuple:   0.3,
	}
}

// GaussOptimizerParams are the constants the gaussim backend's planner
// believes (the openGauss-flavored port of the paper's second validation
// target). Its tuning is hash-centric: hash builds and probes are believed
// very cheap and sorts/merges cheap, while index descents are priced even
// more pessimistically than Selinger's (random-I/O fear dialed up). The
// believed economics therefore steer gaussim's expert plans toward
// scan-hash-merge pipelines where the Selinger backend would already reach
// for an index nested loop — a genuinely different operator preference for
// the doctor to learn per backend.
func GaussOptimizerParams() Params {
	return Params{
		SeqTuple:   0.9,
		FilterEval: 0.2,
		IdxLookup:  4.0,
		IdxTuple:   2.6,
		HashBuild:  1.1,
		HashProbe:  0.8,
		SortTuple:  0.9,
		MergeTuple: 0.55,
		NLOuter:    0.6,
		NLInner:    1.1,
		OutTuple:   0.3,
	}
}

// GaussTruthParams are the constants the gaussim backend's executor charges.
// The cost-model error runs in the same directions as Selinger's but from the
// gaussim belief baseline: the hash path is indeed cheaper than Selinger's
// hardware, yet not as cheap as the planner believes (cache misses on build),
// and the index path is far cheaper than believed (hot upper levels), so
// gaussim leaves index-nested-loop latency on the table the same way
// openGauss does in the paper's port.
func GaussTruthParams() Params {
	return Params{
		SeqTuple:   0.9,
		FilterEval: 0.2,
		IdxLookup:  1.1,
		IdxTuple:   1.5,
		HashBuild:  1.9,
		HashProbe:  1.05,
		SortTuple:  1.0,
		MergeTuple: 0.65,
		NLOuter:    0.6,
		NLInner:    1.05,
		OutTuple:   0.3,
	}
}

func log2(x float64) float64 {
	if x < 2 {
		return 1
	}
	return math.Log2(x)
}

// SeqScanCost returns the cost of a full scan of baseRows tuples applying
// nFilters predicates.
func (p Params) SeqScanCost(baseRows float64, nFilters int) float64 {
	return baseRows*p.SeqTuple + baseRows*float64(nFilters)*p.FilterEval
}

// IndexScanCost returns the cost of an index scan that descends once and
// retrieves matchRows tuples, applying nResidual residual predicates.
func (p Params) IndexScanCost(baseRows, matchRows float64, nResidual int) float64 {
	return p.IdxLookup*log2(baseRows) + matchRows*p.IdxTuple + matchRows*float64(nResidual)*p.FilterEval
}

// HashJoinCost returns the cost of building on the right input and probing
// with the left input, emitting outRows.
func (p Params) HashJoinCost(lRows, rRows, outRows float64) float64 {
	return rRows*p.HashBuild + lRows*p.HashProbe + outRows*p.OutTuple
}

// MergeJoinCost returns the cost of a sort-merge join. Either side may
// already be sorted on the join key (e.g. sorted index access on a base
// table), in which case its sort is skipped.
func (p Params) MergeJoinCost(lRows, rRows, outRows float64, lSorted, rSorted bool) float64 {
	c := (lRows+rRows)*p.MergeTuple + outRows*p.OutTuple
	if !lSorted {
		c += lRows * log2(lRows) * p.SortTuple
	}
	if !rSorted {
		c += rRows * log2(rRows) * p.SortTuple
	}
	return c
}

// NestLoopCost returns the cost of a nested-loop join with lRows outer
// tuples. If the inner side has an index on the join key (innerIndexed), each
// outer tuple costs one descent plus its matches; otherwise every outer tuple
// scans all innerBaseRows tuples.
func (p Params) NestLoopCost(lRows, innerBaseRows, outRows float64, innerIndexed bool) float64 {
	if innerIndexed {
		return lRows*(p.NLOuter+p.IdxLookup*log2(innerBaseRows)) + outRows*p.IdxTuple + outRows*p.OutTuple
	}
	return lRows*p.NLOuter + lRows*innerBaseRows*p.NLInner + outRows*p.OutTuple
}

// WorkUnitsPerMs converts abstract work units into simulated milliseconds.
// 150 units/ms puts typical full-scale workload queries in the paper's
// regime (hundreds of ms to seconds), so that real model-inference
// optimization time — tens of ms — relates to execution latency the way it
// does in the paper's WRL measurements.
const WorkUnitsPerMs = 150.0

// ToMs converts work units to simulated milliseconds.
func ToMs(work float64) float64 { return work / WorkUnitsPerMs }

// FromMs converts simulated milliseconds back to work units.
func FromMs(ms float64) float64 { return ms * WorkUnitsPerMs }
