package cost

import (
	"testing"
	"testing/quick"
)

func TestCostsArePositive(t *testing.T) {
	for _, p := range []Params{OptimizerParams(), TruthParams()} {
		f := func(l, r, o uint16) bool {
			lr, rr, or := float64(l)+1, float64(r)+1, float64(o)
			if p.SeqScanCost(lr, 2) <= 0 {
				return false
			}
			if p.IndexScanCost(lr, rr, 1) <= 0 {
				return false
			}
			if p.HashJoinCost(lr, rr, or) <= 0 {
				return false
			}
			if p.MergeJoinCost(lr, rr, or, false, false) <= 0 {
				return false
			}
			if p.NestLoopCost(lr, rr, or, true) <= 0 {
				return false
			}
			if p.NestLoopCost(lr, rr, or, false) <= 0 {
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIndexedNestLoopCheaperThanNaive(t *testing.T) {
	p := TruthParams()
	if p.NestLoopCost(100, 100000, 100, true) >= p.NestLoopCost(100, 100000, 100, false) {
		t.Fatal("indexed NLJ should beat naive NLJ on a large inner")
	}
}

func TestSortedMergeCheaper(t *testing.T) {
	p := TruthParams()
	if p.MergeJoinCost(1000, 1000, 100, true, true) >= p.MergeJoinCost(1000, 1000, 100, false, false) {
		t.Fatal("pre-sorted merge join should be cheaper")
	}
}

func TestOperatorCrossover(t *testing.T) {
	// tiny outer + indexed inner: NLJ must beat hash (the paper's 1b shape);
	// large outer: hash must win.
	p := TruthParams()
	inner := 100000.0
	if p.NestLoopCost(10, inner, 10, true) >= p.HashJoinCost(10, inner, 10)+inner*p.SeqTuple {
		t.Fatal("NLJ should win with a 10-row outer")
	}
	if p.NestLoopCost(1e6, inner, 1e6, true) <= p.HashJoinCost(1e6, inner, 1e6)+inner*p.SeqTuple {
		t.Fatal("hash should win with a million-row outer")
	}
}

func TestOptimizerBias(t *testing.T) {
	// The believed constants must overprice index access relative to truth —
	// the engineered cost-model error that biases the expert toward
	// scan-and-hash pipelines.
	b, tr := OptimizerParams(), TruthParams()
	if b.IdxLookup <= tr.IdxLookup {
		t.Fatal("believed index descent must be pricier than truth")
	}
	if b.HashBuild >= tr.HashBuild {
		t.Fatal("believed hash build must be cheaper than truth")
	}
}

func TestMsConversionRoundTrip(t *testing.T) {
	f := func(w uint32) bool {
		work := float64(w)
		rt := FromMs(ToMs(work))
		diff := rt - work
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-9*(work+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
