// Package storage is a tiny in-memory column store: tables hold one int64
// slice per column, with optional hash and sorted indexes on declared
// columns. It is the substrate both the executor (true cardinalities) and
// the statistics builder (estimates) read from.
package storage

import (
	"fmt"
	"sort"

	"github.com/foss-db/foss/internal/engine/catalog"
)

// Table holds the rows of one relation, column-major.
type Table struct {
	Meta *catalog.Table
	Cols [][]int64

	hashIdx   map[int]map[int64][]int32
	sortedIdx map[int][]int32 // row ids ordered by column value
}

// NewTable allocates an empty table for the given metadata.
func NewTable(meta *catalog.Table) *Table {
	return &Table{
		Meta:      meta,
		Cols:      make([][]int64, len(meta.Columns)),
		hashIdx:   map[int]map[int64][]int32{},
		sortedIdx: map[int][]int32{},
	}
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return len(t.Cols[0])
}

// AppendRow adds one row; the number of values must match the column count.
func (t *Table) AppendRow(vals ...int64) {
	if len(vals) != len(t.Cols) {
		panic(fmt.Sprintf("storage: row width %d != %d for table %s", len(vals), len(t.Cols), t.Meta.Name))
	}
	for i, v := range vals {
		t.Cols[i] = append(t.Cols[i], v)
	}
}

// BuildIndexes constructs hash and sorted indexes for every column whose
// catalog metadata declares Indexed. Call once after loading.
func (t *Table) BuildIndexes() {
	for i, c := range t.Meta.Columns {
		if c.Indexed {
			t.buildIndex(i)
		}
	}
}

func (t *Table) buildIndex(col int) {
	h := make(map[int64][]int32, t.NumRows())
	for r, v := range t.Cols[col] {
		h[v] = append(h[v], int32(r))
	}
	t.hashIdx[col] = h
	ids := make([]int32, t.NumRows())
	for r := range ids {
		ids[r] = int32(r)
	}
	vals := t.Cols[col]
	sort.Slice(ids, func(a, b int) bool { return vals[ids[a]] < vals[ids[b]] })
	t.sortedIdx[col] = ids
}

// HasIndex reports whether column col carries an index.
func (t *Table) HasIndex(col int) bool {
	_, ok := t.hashIdx[col]
	return ok
}

// Lookup returns the row ids whose column equals v (nil if no index).
func (t *Table) Lookup(col int, v int64) []int32 {
	idx, ok := t.hashIdx[col]
	if !ok {
		return nil
	}
	return idx[v]
}

// SortedRowIDs returns row ids ordered by the column value (nil if no index).
func (t *Table) SortedRowIDs(col int) []int32 { return t.sortedIdx[col] }

// Value returns the value of column col at row r.
func (t *Table) Value(col int, r int32) int64 { return t.Cols[col][r] }

// DB is a set of loaded tables under one schema.
type DB struct {
	Schema *catalog.Schema
	Tables map[string]*Table
}

// NewDB allocates empty tables for every table in the schema.
func NewDB(schema *catalog.Schema) *DB {
	db := &DB{Schema: schema, Tables: map[string]*Table{}}
	for _, n := range schema.Order {
		db.Tables[n] = NewTable(schema.Tables[n])
	}
	return db
}

// Table returns the named table or panics (tables exist for every schema
// entry by construction).
func (db *DB) Table(name string) *Table {
	t, ok := db.Tables[name]
	if !ok {
		panic(fmt.Sprintf("storage: unknown table %q", name))
	}
	return t
}

// BuildAllIndexes builds indexes on every declared-indexed column.
func (db *DB) BuildAllIndexes() {
	for _, t := range db.Tables {
		t.BuildIndexes()
	}
}

// TotalRows returns the sum of row counts over all tables.
func (db *DB) TotalRows() int {
	n := 0
	for _, t := range db.Tables {
		n += t.NumRows()
	}
	return n
}
