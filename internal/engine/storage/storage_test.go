package storage

import (
	"testing"

	"github.com/foss-db/foss/internal/engine/catalog"
)

func smallDB(t *testing.T) *DB {
	t.Helper()
	s := catalog.NewSchema()
	s.AddTable(catalog.NewTable("t",
		catalog.Column{Name: "id", Indexed: true},
		catalog.Column{Name: "v"},
	))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	db := NewDB(s)
	for i := 0; i < 100; i++ {
		db.Table("t").AppendRow(int64(i%10), int64(100-i))
	}
	db.BuildAllIndexes()
	return db
}

func TestAppendAndValue(t *testing.T) {
	db := smallDB(t)
	tbl := db.Table("t")
	if tbl.NumRows() != 100 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if tbl.Value(0, 13) != 3 || tbl.Value(1, 0) != 100 {
		t.Fatal("Value broken")
	}
	if db.TotalRows() != 100 {
		t.Fatalf("TotalRows = %d", db.TotalRows())
	}
}

func TestHashIndexLookup(t *testing.T) {
	db := smallDB(t)
	tbl := db.Table("t")
	if !tbl.HasIndex(0) {
		t.Fatal("declared index missing")
	}
	if tbl.HasIndex(1) {
		t.Fatal("undeclared index present")
	}
	hits := tbl.Lookup(0, 7)
	if len(hits) != 10 {
		t.Fatalf("lookup(7) = %d rows, want 10", len(hits))
	}
	for _, r := range hits {
		if tbl.Value(0, r) != 7 {
			t.Fatal("lookup returned wrong row")
		}
	}
	if tbl.Lookup(0, 999) != nil && len(tbl.Lookup(0, 999)) != 0 {
		t.Fatal("missing key should return empty")
	}
	if tbl.Lookup(1, 0) != nil {
		t.Fatal("lookup on unindexed column should be nil")
	}
}

func TestSortedIndex(t *testing.T) {
	db := smallDB(t)
	tbl := db.Table("t")
	ids := tbl.SortedRowIDs(0)
	if len(ids) != 100 {
		t.Fatalf("sorted ids = %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if tbl.Value(0, ids[i-1]) > tbl.Value(0, ids[i]) {
			t.Fatal("sorted index out of order")
		}
	}
}

func TestAppendRowWidthMismatchPanics(t *testing.T) {
	db := smallDB(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	db.Table("t").AppendRow(1)
}

func TestUnknownTablePanics(t *testing.T) {
	db := smallDB(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown table")
		}
	}()
	db.Table("nope")
}
