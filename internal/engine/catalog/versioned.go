package catalog

import (
	"fmt"
	"hash/fnv"
	"sync"
)

// DDLKind names one schema-evolution statement type.
type DDLKind string

// The supported DDL statement kinds.
const (
	DDLAddTable  DDLKind = "add-table"
	DDLDropTable DDLKind = "drop-table"
	DDLAddIndex  DDLKind = "add-index"
	DDLDropIndex DDLKind = "drop-index"
	DDLAddColumn DDLKind = "add-column"
)

// DDL is one schema-evolution statement. The struct is flat and
// gob/JSON-encodable so statements can travel the wire (the HTTP catalog
// endpoint) and the WAL (KindDDL records) unchanged.
type DDL struct {
	Kind    DDLKind    `json:"kind"`
	Table   string     `json:"table"`
	Column  string     `json:"column,omitempty"`  // index/column ops
	Type    ColumnType `json:"type,omitempty"`    // add-column
	Indexed bool       `json:"indexed,omitempty"` // add-column: create its index too
	Columns []Column   `json:"columns,omitempty"` // add-table
}

func (d DDL) String() string {
	switch d.Kind {
	case DDLAddTable:
		return fmt.Sprintf("add-table %s (%d cols)", d.Table, len(d.Columns))
	case DDLAddColumn:
		return fmt.Sprintf("add-column %s.%s", d.Table, d.Column)
	default:
		return fmt.Sprintf("%s %s.%s", d.Kind, d.Table, d.Column)
	}
}

// Clone returns a deep copy of the table metadata.
func (t *Table) Clone() *Table {
	c := &Table{
		Name:    t.Name,
		Columns: append([]Column(nil), t.Columns...),
		colIdx:  make(map[string]int, len(t.colIdx)),
	}
	for k, v := range t.colIdx {
		c.colIdx[k] = v
	}
	return c
}

// Clone returns a copy-on-write clone of the schema: the Tables map, Order
// slice, and FK slice are fresh, but the *Table values are shared with the
// receiver. Apply clones individual tables before mutating them, so a clone
// never aliases mutable state with its parent.
func (s *Schema) Clone() *Schema {
	c := &Schema{
		Tables: make(map[string]*Table, len(s.Tables)),
		Order:  append([]string(nil), s.Order...),
		FKs:    append([]ForeignKey(nil), s.FKs...),
	}
	for _, n := range s.Order {
		c.Tables[n] = s.Tables[n]
	}
	return c
}

// Apply returns a new schema with the DDL batch applied, leaving the
// receiver untouched (copy-on-write: unmodified tables are shared by
// pointer). The batch is atomic — any invalid statement rejects the whole
// batch with an error and no new schema. Apply never panics: it is the
// wire-facing sibling of the panicking builder methods.
func (s *Schema) Apply(ddls []DDL) (*Schema, error) {
	next := s.Clone()
	for i, d := range ddls {
		if err := next.applyOne(d); err != nil {
			return nil, fmt.Errorf("catalog: ddl %d (%s): %w", i, d, err)
		}
	}
	if err := next.Validate(); err != nil {
		return nil, err
	}
	return next, nil
}

func (s *Schema) applyOne(d DDL) error {
	if d.Table == "" {
		return fmt.Errorf("missing table name")
	}
	switch d.Kind {
	case DDLAddTable:
		if len(d.Columns) == 0 {
			return fmt.Errorf("add-table needs at least one column")
		}
		t, err := NewTableE(d.Table, d.Columns...)
		if err != nil {
			return err
		}
		return s.TryAddTable(t)
	case DDLDropTable:
		if _, ok := s.Tables[d.Table]; !ok {
			return fmt.Errorf("unknown table %q", d.Table)
		}
		delete(s.Tables, d.Table)
		order := s.Order[:0:0]
		for _, n := range s.Order {
			if n != d.Table {
				order = append(order, n)
			}
		}
		s.Order = order
		fks := s.FKs[:0:0]
		for _, fk := range s.FKs {
			if fk.FromTable != d.Table && fk.ToTable != d.Table {
				fks = append(fks, fk)
			}
		}
		s.FKs = fks
		return nil
	case DDLAddIndex, DDLDropIndex:
		t, ok := s.Tables[d.Table]
		if !ok {
			return fmt.Errorf("unknown table %q", d.Table)
		}
		ci := t.ColIndex(d.Column)
		if ci < 0 {
			return fmt.Errorf("unknown column %s.%s", d.Table, d.Column)
		}
		want := d.Kind == DDLAddIndex
		if t.Columns[ci].Indexed == want {
			return fmt.Errorf("column %s.%s already at indexed=%v", d.Table, d.Column, want)
		}
		ct := t.Clone() // COW: never mutate a table shared with the parent schema
		ct.Columns[ci].Indexed = want
		s.Tables[d.Table] = ct
		return nil
	case DDLAddColumn:
		t, ok := s.Tables[d.Table]
		if !ok {
			return fmt.Errorf("unknown table %q", d.Table)
		}
		if d.Column == "" {
			return fmt.Errorf("missing column name")
		}
		if t.HasColumn(d.Column) {
			return fmt.Errorf("duplicate column %s.%s", d.Table, d.Column)
		}
		ct := t.Clone()
		ct.colIdx[d.Column] = len(ct.Columns)
		ct.Columns = append(ct.Columns, Column{Name: d.Column, Type: d.Type, Indexed: d.Indexed})
		s.Tables[d.Table] = ct
		return nil
	default:
		return fmt.Errorf("unknown ddl kind %q", d.Kind)
	}
}

// Hash returns a deterministic canonical hash of the schema content: table
// order, every column's name/type/index flag, and the FK list. Two schemas
// with identical content hash identically across processes and restarts
// (FNV-1a over a canonical serialization; iteration goes through Order, never
// the Tables map).
func (s *Schema) Hash() uint64 {
	h := fnv.New64a()
	for _, n := range s.Order {
		t := s.Tables[n]
		fmt.Fprintf(h, "t|%s|", n)
		for _, c := range t.Columns {
			fmt.Fprintf(h, "c|%s|%d|%v|", c.Name, c.Type, c.Indexed)
		}
	}
	for _, fk := range s.FKs {
		fmt.Fprintf(h, "f|%s.%s>%s.%s|", fk.FromTable, fk.FromCol, fk.ToTable, fk.ToCol)
	}
	return h.Sum64()
}

// Versioned is a live catalog: an immutable base schema plus the ordered log
// of DDL statements applied since. Epoch counts applied statements, so a
// checkpoint carrying an epoch identifies an exact schema (base + log
// prefix), and replicas converge by replaying the log suffix. Reads return
// immutable snapshots; Apply publishes a new copy-on-write schema, so
// in-flight readers keep planning against the schema they started with.
type Versioned struct {
	mu     sync.RWMutex
	base   *Schema
	schema *Schema
	epoch  uint64
	log    []DDL
}

// NewVersioned wraps a base schema at epoch 0. The base is treated as
// immutable from here on.
func NewVersioned(base *Schema) *Versioned {
	return &Versioned{base: base, schema: base}
}

// Base returns the immutable epoch-0 schema the catalog started from. It
// never changes after construction, so no lock is taken.
func (v *Versioned) Base() *Schema { return v.base }

// Schema returns the current schema snapshot (immutable).
func (v *Versioned) Schema() *Schema {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.schema
}

// Epoch returns the catalog epoch: the count of DDL statements applied since
// the base schema. Monotonically increasing.
func (v *Versioned) Epoch() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.epoch
}

// Hash returns the canonical hash of the current schema.
func (v *Versioned) Hash() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.schema.Hash()
}

// Log returns a copy of the applied-DDL log (base → current schema).
func (v *Versioned) Log() []DDL {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return append([]DDL(nil), v.log...)
}

// Apply applies a DDL batch copy-on-write and, on success, publishes the new
// schema and bumps the epoch by the batch length. Returns the new schema and
// epoch. The batch is atomic: on error nothing is published.
func (v *Versioned) Apply(ddls []DDL) (*Schema, uint64, error) {
	if len(ddls) == 0 {
		return nil, 0, fmt.Errorf("catalog: empty ddl batch")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	next, err := v.schema.Apply(ddls)
	if err != nil {
		return nil, 0, err
	}
	v.schema = next
	v.epoch += uint64(len(ddls))
	v.log = append(v.log, ddls...)
	return next, v.epoch, nil
}

// LogSuffix returns the DDL statements applied after the given epoch — the
// replay delta that brings a peer at afterEpoch up to the current epoch. ok
// is false when afterEpoch is ahead of this catalog (nothing to give).
func (v *Versioned) LogSuffix(afterEpoch uint64) ([]DDL, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if afterEpoch > v.epoch {
		return nil, false
	}
	return append([]DDL(nil), v.log[afterEpoch:]...), true
}
