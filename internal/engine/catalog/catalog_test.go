package catalog

import "testing"

func TestSchemaBasics(t *testing.T) {
	s := NewSchema()
	s.AddTable(NewTable("a", Column{Name: "id", Indexed: true}, Column{Name: "x"}))
	s.AddTable(NewTable("b", Column{Name: "id"}, Column{Name: "a_id"}))
	s.AddFK("b", "a_id", "a", "id")
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Tables["a"].ColIndex("x") != 1 || s.Tables["a"].ColIndex("zz") != -1 {
		t.Fatal("ColIndex broken")
	}
	if !s.Tables["a"].HasColumn("id") || s.Tables["a"].HasColumn("nope") {
		t.Fatal("HasColumn broken")
	}
}

func TestValidateCatchesBadFK(t *testing.T) {
	s := NewSchema()
	s.AddTable(NewTable("a", Column{Name: "id"}))
	s.AddFK("a", "id", "missing", "id")
	if err := s.Validate(); err == nil {
		t.Fatal("FK to missing table accepted")
	}
	s2 := NewSchema()
	s2.AddTable(NewTable("a", Column{Name: "id"}))
	s2.AddTable(NewTable("b", Column{Name: "id"}))
	s2.AddFK("a", "missing_col", "b", "id")
	if err := s2.Validate(); err == nil {
		t.Fatal("FK on missing column accepted")
	}
}

func TestDuplicateTablePanics(t *testing.T) {
	s := NewSchema()
	s.AddTable(NewTable("a", Column{Name: "id"}))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate table")
		}
	}()
	s.AddTable(NewTable("a", Column{Name: "id"}))
}

func TestDuplicateColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate column")
		}
	}()
	NewTable("a", Column{Name: "id"}, Column{Name: "id"})
}

func TestStableIDs(t *testing.T) {
	s := NewSchema()
	s.AddTable(NewTable("z", Column{Name: "c1"}))
	s.AddTable(NewTable("a", Column{Name: "c1"}, Column{Name: "c2"}))
	tids := s.TableIDs()
	if tids["z"] != 0 || tids["a"] != 1 {
		t.Fatalf("TableIDs should follow declaration order: %v", tids)
	}
	cids := s.ColumnIDs()
	if cids["z.c1"] != 0 || cids["a.c1"] != 1 || cids["a.c2"] != 2 {
		t.Fatalf("ColumnIDs = %v", cids)
	}
}
