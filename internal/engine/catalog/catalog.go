// Package catalog defines schemas: tables, columns, foreign keys, and which
// columns carry indexes. All values in the engine are int64; string-typed
// columns are dictionary-encoded by the workload generators before load.
package catalog

import (
	"fmt"
	"sort"
)

// ColumnType distinguishes plain integers from dictionary-encoded strings.
// Both are stored as int64; the type only affects how workload generators
// produce values and how examples render them.
type ColumnType int

// Column types.
const (
	IntCol ColumnType = iota
	StrCol
)

// Column describes one attribute of a table.
type Column struct {
	Name    string
	Type    ColumnType
	Indexed bool // an index (hash + sorted) exists on this column
}

// Table is schema-level table metadata.
type Table struct {
	Name    string
	Columns []Column

	colIdx map[string]int
}

// NewTable creates table metadata with the given columns, panicking on a
// duplicate column. It exists for test fixtures and static workload builders
// whose schemas are compile-time constants; anything handling wire- or
// runtime-supplied schemas goes through NewTableE instead.
func NewTable(name string, cols ...Column) *Table {
	t, err := NewTableE(name, cols...)
	if err != nil {
		panic(err.Error())
	}
	return t
}

// NewTableE creates table metadata with the given columns, returning an
// error on a duplicate column name — the non-panicking constructor for DDL
// and other untrusted paths. The column slice is copied, so callers may
// reuse theirs.
func NewTableE(name string, cols ...Column) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: empty table name")
	}
	t := &Table{Name: name, Columns: append([]Column(nil), cols...), colIdx: map[string]int{}}
	for i, c := range t.Columns {
		if c.Name == "" {
			return nil, fmt.Errorf("catalog: empty column name in table %s", name)
		}
		if _, dup := t.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("catalog: duplicate column %s.%s", name, c.Name)
		}
		t.colIdx[c.Name] = i
	}
	return t, nil
}

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// HasColumn reports whether the table has the named column.
func (t *Table) HasColumn(name string) bool { return t.ColIndex(name) >= 0 }

// ForeignKey declares that FromTable.FromCol references ToTable.ToCol.
// The optimizer and workload generators use FKs to know which equi-joins are
// meaningful.
type ForeignKey struct {
	FromTable, FromCol string
	ToTable, ToCol     string
}

// Schema is a collection of tables plus their referential structure.
type Schema struct {
	Tables map[string]*Table
	Order  []string // deterministic table order
	FKs    []ForeignKey
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{Tables: map[string]*Table{}}
}

// AddTable registers a table, panicking on a duplicate name. Like NewTable,
// it is for compile-time-constant schemas; DDL paths use TryAddTable.
func (s *Schema) AddTable(t *Table) {
	if err := s.TryAddTable(t); err != nil {
		panic(err.Error())
	}
}

// TryAddTable registers a table, returning an error on a duplicate name —
// the non-panicking sibling of AddTable for wire-facing DDL.
func (s *Schema) TryAddTable(t *Table) error {
	if _, dup := s.Tables[t.Name]; dup {
		return fmt.Errorf("catalog: duplicate table %s", t.Name)
	}
	s.Tables[t.Name] = t
	s.Order = append(s.Order, t.Name)
	return nil
}

// AddFK registers a foreign-key relationship.
func (s *Schema) AddFK(fromTable, fromCol, toTable, toCol string) {
	s.FKs = append(s.FKs, ForeignKey{fromTable, fromCol, toTable, toCol})
}

// Validate checks that every FK references existing tables and columns.
func (s *Schema) Validate() error {
	for _, fk := range s.FKs {
		ft, ok := s.Tables[fk.FromTable]
		if !ok {
			return fmt.Errorf("catalog: fk references unknown table %q", fk.FromTable)
		}
		tt, ok := s.Tables[fk.ToTable]
		if !ok {
			return fmt.Errorf("catalog: fk references unknown table %q", fk.ToTable)
		}
		if !ft.HasColumn(fk.FromCol) {
			return fmt.Errorf("catalog: fk references unknown column %s.%s", fk.FromTable, fk.FromCol)
		}
		if !tt.HasColumn(fk.ToCol) {
			return fmt.Errorf("catalog: fk references unknown column %s.%s", fk.ToTable, fk.ToCol)
		}
	}
	names := append([]string(nil), s.Order...)
	sort.Strings(names)
	for i := 1; i < len(names); i++ {
		if names[i] == names[i-1] {
			return fmt.Errorf("catalog: duplicate table %q in order", names[i])
		}
	}
	return nil
}

// TableIDs returns a stable mapping table name → small integer id, used by
// the plan encoder's embedding vocabularies.
func (s *Schema) TableIDs() map[string]int {
	ids := make(map[string]int, len(s.Order))
	for i, n := range s.Order {
		ids[n] = i
	}
	return ids
}

// ColumnIDs returns a stable mapping "table.column" → small integer id.
func (s *Schema) ColumnIDs() map[string]int {
	ids := map[string]int{}
	n := 0
	for _, tn := range s.Order {
		for _, c := range s.Tables[tn].Columns {
			ids[tn+"."+c.Name] = n
			n++
		}
	}
	return ids
}
