package catalog

import (
	"fmt"
	"testing"
)

func baseSchema() *Schema {
	s := NewSchema()
	s.AddTable(NewTable("users", Column{Name: "id", Indexed: true}, Column{Name: "org"}))
	s.AddTable(NewTable("orders", Column{Name: "id", Indexed: true}, Column{Name: "user_id", Indexed: true}))
	s.AddFK("orders", "user_id", "users", "id")
	return s
}

func TestApplyCopyOnWrite(t *testing.T) {
	base := baseSchema()
	baseHash := base.Hash()
	next, err := base.Apply([]DDL{
		{Kind: DDLAddTable, Table: "events", Columns: []Column{{Name: "id", Indexed: true}, {Name: "user_id"}}},
		{Kind: DDLAddIndex, Table: "events", Column: "user_id"},
		{Kind: DDLDropIndex, Table: "orders", Column: "user_id"},
		{Kind: DDLAddColumn, Table: "users", Column: "region", Indexed: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The base must be untouched (COW), byte for byte.
	if base.Hash() != baseHash {
		t.Fatal("Apply mutated the base schema")
	}
	if len(base.Order) != 2 || base.Tables["users"].HasColumn("region") {
		t.Fatal("Apply mutated base tables")
	}
	if base.Tables["orders"].Columns[1].Indexed != true {
		t.Fatal("Apply mutated a shared table in place")
	}
	// The derived schema carries every change.
	if len(next.Order) != 3 || next.Order[2] != "events" {
		t.Fatalf("Order = %v", next.Order)
	}
	if !next.Tables["events"].Columns[1].Indexed {
		t.Fatal("add-index on events.user_id lost")
	}
	if next.Tables["orders"].Columns[1].Indexed {
		t.Fatal("drop-index on orders.user_id lost")
	}
	ci := next.Tables["users"].ColIndex("region")
	if ci != 2 || !next.Tables["users"].Columns[ci].Indexed {
		t.Fatal("add-column users.region lost")
	}
	// Unmodified structure is shared by pointer (the point of COW).
	if next.Tables["users"] == base.Tables["users"] {
		t.Fatal("modified table should have been cloned")
	}
}

func TestApplySharesUnmodifiedTables(t *testing.T) {
	base := baseSchema()
	next, err := base.Apply([]DDL{{Kind: DDLDropIndex, Table: "orders", Column: "user_id"}})
	if err != nil {
		t.Fatal(err)
	}
	if next.Tables["users"] != base.Tables["users"] {
		t.Fatal("untouched table should be shared by pointer")
	}
	if next.Tables["orders"] == base.Tables["orders"] {
		t.Fatal("touched table must be a clone")
	}
}

func TestApplyRejectsBadBatchAtomically(t *testing.T) {
	base := baseSchema()
	for _, ddls := range [][]DDL{
		{{Kind: DDLAddTable, Table: "users", Columns: []Column{{Name: "id"}}}},
		{{Kind: DDLAddTable, Table: "t", Columns: []Column{{Name: "a"}, {Name: "a"}}}},
		{{Kind: DDLDropTable, Table: "nope"}},
		{{Kind: DDLAddIndex, Table: "users", Column: "nope"}},
		{{Kind: DDLAddIndex, Table: "users", Column: "id"}},   // already indexed
		{{Kind: DDLDropIndex, Table: "users", Column: "org"}}, // not indexed
		{{Kind: DDLAddColumn, Table: "users", Column: "id"}},
		{{Kind: DDLAddColumn, Table: "nope", Column: "x"}},
		{{Kind: "rename-table", Table: "users"}},
		{{Kind: DDLAddTable, Table: "ok", Columns: []Column{{Name: "id"}}}, {Kind: DDLDropTable, Table: "missing"}},
	} {
		if _, err := base.Apply(ddls); err == nil {
			t.Fatalf("bad batch %v accepted", ddls)
		}
	}
	// Atomicity: the failing second statement above must not leak the first.
	if _, ok := base.Tables["ok"]; ok {
		t.Fatal("failed batch leaked a table into the base")
	}
}

func TestDropTableRemovesFKs(t *testing.T) {
	base := baseSchema()
	next, err := base.Apply([]DDL{{Kind: DDLDropTable, Table: "users"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(next.FKs) != 0 {
		t.Fatalf("FKs touching a dropped table must go with it: %v", next.FKs)
	}
	if err := next.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHashCanonical(t *testing.T) {
	a, b := baseSchema(), baseSchema()
	if a.Hash() != b.Hash() {
		t.Fatal("identical schemas must hash identically")
	}
	// Every dimension of content must move the hash.
	muts := [][]DDL{
		{{Kind: DDLAddTable, Table: "t", Columns: []Column{{Name: "id"}}}},
		{{Kind: DDLDropTable, Table: "orders"}},
		{{Kind: DDLAddIndex, Table: "users", Column: "org"}},
		{{Kind: DDLDropIndex, Table: "orders", Column: "user_id"}},
		{{Kind: DDLAddColumn, Table: "users", Column: "extra"}},
	}
	seen := map[uint64]bool{a.Hash(): true}
	for _, m := range muts {
		next, err := a.Apply(m)
		if err != nil {
			t.Fatal(err)
		}
		h := next.Hash()
		if seen[h] {
			t.Fatalf("mutation %v did not change the hash", m)
		}
		seen[h] = true
	}
}

func TestVersionedEpochAndLog(t *testing.T) {
	v := NewVersioned(baseSchema())
	if v.Epoch() != 0 {
		t.Fatalf("fresh catalog epoch = %d", v.Epoch())
	}
	h0 := v.Hash()
	_, ep, err := v.Apply([]DDL{
		{Kind: DDLDropIndex, Table: "orders", Column: "user_id"},
		{Kind: DDLAddColumn, Table: "users", Column: "region"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ep != 2 || v.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2 (one per statement)", ep)
	}
	if v.Hash() == h0 {
		t.Fatal("hash must move with the schema")
	}
	if _, _, err := v.Apply([]DDL{{Kind: DDLDropTable, Table: "nope"}}); err == nil {
		t.Fatal("bad batch accepted")
	}
	if v.Epoch() != 2 {
		t.Fatal("failed apply must not bump the epoch")
	}
	if _, _, err := v.Apply(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if got := len(v.Log()); got != 2 {
		t.Fatalf("log length = %d", got)
	}
	// Replaying the log over a fresh base converges to the same schema.
	replayed, err := baseSchema().Apply(v.Log())
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Hash() != v.Hash() {
		t.Fatal("log replay did not converge to the live schema")
	}
	// Suffix mechanics: a peer at epoch 1 needs exactly the second statement.
	suffix, ok := v.LogSuffix(1)
	if !ok || len(suffix) != 1 || suffix[0].Kind != DDLAddColumn {
		t.Fatalf("LogSuffix(1) = %v, %v", suffix, ok)
	}
	if _, ok := v.LogSuffix(3); ok {
		t.Fatal("suffix past the live epoch must report !ok")
	}
}

func TestErrorConstructors(t *testing.T) {
	if _, err := NewTableE("t", Column{Name: "a"}, Column{Name: "a"}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := NewTableE("", Column{Name: "a"}); err == nil {
		t.Fatal("empty table name accepted")
	}
	if _, err := NewTableE("t", Column{Name: ""}); err == nil {
		t.Fatal("empty column name accepted")
	}
	s := NewSchema()
	tab, err := NewTableE("t", Column{Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.TryAddTable(tab); err != nil {
		t.Fatal(err)
	}
	if err := s.TryAddTable(tab); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestVersionedConcurrentReaders(t *testing.T) {
	v := NewVersioned(baseSchema())
	done := make(chan error, 4)
	for r := 0; r < 3; r++ {
		go func() {
			var err error
			for i := 0; i < 200; i++ {
				s := v.Schema()
				// Snapshot coherence: whatever epoch we observe, the snapshot
				// itself must be internally consistent.
				if e := s.Validate(); e != nil {
					err = e
					break
				}
				_ = s.Hash()
			}
			done <- err
		}()
	}
	go func() {
		var err error
		for i := 0; i < 50; i++ {
			if _, _, e := v.Apply([]DDL{{Kind: DDLAddTable, Table: fmt.Sprintf("t%d", i), Columns: []Column{{Name: "id"}}}}); e != nil {
				err = e
				break
			}
		}
		done <- err
	}()
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if v.Epoch() != 50 {
		t.Fatalf("epoch = %d", v.Epoch())
	}
}
