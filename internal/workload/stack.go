package workload

import (
	"fmt"
	"math/rand"

	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/engine/stats"
	"github.com/foss-db/foss/internal/engine/storage"
	"github.com/foss-db/foss/internal/query"
)

// stackSchema declares a StackExchange-style schema: sites hosting
// questions, answers, tags, users, badges, comments, votes, and post links.
func stackSchema() *catalog.Schema {
	s := catalog.NewSchema()
	s.AddTable(catalog.NewTable("site", col("id", true), col("popularity", false)))
	s.AddTable(catalog.NewTable("account", col("id", true), col("creation_year", false)))
	s.AddTable(catalog.NewTable("so_user", col("id", true), col("site_id", true), col("account_id", true), col("reputation", false)))
	s.AddTable(catalog.NewTable("question", col("id", true), col("site_id", true), col("owner_id", true),
		col("creation_year", false), col("score", false), col("view_count", false)))
	s.AddTable(catalog.NewTable("answer", col("id", true), col("site_id", true), col("question_id", true),
		col("owner_id", true), col("score", false)))
	s.AddTable(catalog.NewTable("tag", col("id", true), col("site_id", true), col("name_hash", false)))
	s.AddTable(catalog.NewTable("tag_question", col("id", true), col("tag_id", true), col("question_id", true)))
	s.AddTable(catalog.NewTable("badge", col("id", true), col("site_id", true), col("user_id", true), col("name_hash", false), col("date_year", false)))
	s.AddTable(catalog.NewTable("comment", col("id", true), col("site_id", true), col("post_id", true), col("score", false)))
	s.AddTable(catalog.NewTable("post_link", col("id", true), col("site_id", true), col("q_from", true), col("q_to", true), col("link_type", false)))
	s.AddTable(catalog.NewTable("vote", col("id", true), col("site_id", true), col("post_id", true), col("vote_type", false)))

	s.AddFK("so_user", "site_id", "site", "id")
	s.AddFK("so_user", "account_id", "account", "id")
	s.AddFK("question", "site_id", "site", "id")
	s.AddFK("question", "owner_id", "so_user", "id")
	s.AddFK("answer", "site_id", "site", "id")
	s.AddFK("answer", "question_id", "question", "id")
	s.AddFK("answer", "owner_id", "so_user", "id")
	s.AddFK("tag", "site_id", "site", "id")
	s.AddFK("tag_question", "tag_id", "tag", "id")
	s.AddFK("tag_question", "question_id", "question", "id")
	s.AddFK("badge", "site_id", "site", "id")
	s.AddFK("badge", "user_id", "so_user", "id")
	s.AddFK("comment", "site_id", "site", "id")
	s.AddFK("comment", "post_id", "question", "id")
	s.AddFK("post_link", "q_from", "question", "id")
	s.AddFK("post_link", "q_to", "question", "id")
	s.AddFK("vote", "post_id", "question", "id")
	return s
}

// LoadStack generates the Stack-like workload: 12 templates × 10 queries,
// 8 train / 2 test per template.
func LoadStack(opts Options) (*Workload, error) {
	opts = opts.normalized()
	schema := stackSchema()
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	db := storage.NewDB(schema)
	rng := rand.New(rand.NewSource(opts.Seed))
	sc := opts.Scale

	nSite := 40
	nAccount := scaled(6000, sc)
	nUser := scaled(9000, sc)
	nQuestion := scaled(30000, sc)
	nTag := scaled(1200, sc)

	for i := 0; i < nSite; i++ {
		db.Table("site").AppendRow(int64(i), int64(zipfRank(rng, 100, 1.5)))
	}
	for i := 0; i < nAccount; i++ {
		db.Table("account").AppendRow(int64(i), int64(2008+rng.Intn(15)))
	}
	// users: site follows Zipf (stackoverflow = site 0 dominates); reputation
	// Zipf over users, correlated with id rank.
	for i := 0; i < nUser; i++ {
		rep := int64(1 + 100000/(1+zipfRank(rng, 1000, 0.7)+i/10))
		db.Table("so_user").AppendRow(int64(i), int64(zipfRank(rng, nSite, 2.0)), int64(rng.Intn(nAccount)), rep)
	}
	// questions: popular (low-id) questions get the views/scores and, below,
	// most of the answers — correlation the estimator cannot see.
	for i := 0; i < nQuestion; i++ {
		site := int64(zipfRank(rng, nSite, 2.0))
		year := int64(2008 + (i*14)/nQuestion + rng.Intn(2))
		if year > 2022 {
			year = 2022
		}
		score := int64(zipfRank(rng, 500, 2.0))
		if i < nQuestion/20 {
			score += 50
		}
		views := score*37 + int64(rng.Intn(100))
		db.Table("question").AppendRow(int64(i), site, int64(activeRank(rng, nUser, 1.6, 0.35)), year, score, views)
	}
	for i := 0; i < scaled(45000, sc); i++ {
		q := activeRank(rng, nQuestion, 1.6, 0.3)
		db.Table("answer").AppendRow(int64(i), int64(zipfRank(rng, nSite, 2.0)), int64(q),
			int64(activeRank(rng, nUser, 1.6, 0.35)), int64(zipfRank(rng, 200, 2.2)))
	}
	for i := 0; i < nTag; i++ {
		db.Table("tag").AppendRow(int64(i), int64(zipfRank(rng, nSite, 2.0)), int64(rng.Intn(600)))
	}
	for i := 0; i < scaled(40000, sc); i++ {
		db.Table("tag_question").AppendRow(int64(i), int64(activeRank(rng, nTag, 1.6, 0.4)), int64(activeRank(rng, nQuestion, 1.6, 0.3)))
	}
	for i := 0; i < scaled(15000, sc); i++ {
		db.Table("badge").AppendRow(int64(i), int64(zipfRank(rng, nSite, 2.0)), int64(activeRank(rng, nUser, 1.6, 0.35)),
			int64(rng.Intn(200)), int64(2008+rng.Intn(15)))
	}
	for i := 0; i < scaled(20000, sc); i++ {
		db.Table("comment").AppendRow(int64(i), int64(zipfRank(rng, nSite, 2.0)), int64(activeRank(rng, nQuestion, 1.6, 0.3)), int64(rng.Intn(20)))
	}
	for i := 0; i < scaled(5000, sc); i++ {
		db.Table("post_link").AppendRow(int64(i), int64(zipfRank(rng, nSite, 2.0)),
			int64(activeRank(rng, nQuestion, 1.6, 0.3)), int64(activeRank(rng, nQuestion, 1.6, 0.3)), int64(rng.Intn(3)))
	}
	for i := 0; i < scaled(30000, sc); i++ {
		db.Table("vote").AppendRow(int64(i), int64(zipfRank(rng, nSite, 2.0)), int64(activeRank(rng, nQuestion, 1.6, 0.3)), int64(rng.Intn(4)))
	}
	db.BuildAllIndexes()

	qs := stackQueries(rand.New(rand.NewSource(opts.Seed + 1)))
	mustValidate(qs, db)

	// 8 train / 2 test per template of 10.
	var train, test []*query.Query
	for i, q := range qs {
		if i%10 >= 8 {
			test = append(test, q)
		} else {
			train = append(train, q)
		}
	}

	return &Workload{
		Name:      "stack",
		DB:        db,
		Stats:     stats.Build(db, opts.StatsSampleFrac, opts.Seed+3),
		Train:     train,
		Test:      test,
		MaxTables: maxTables(qs),
	}, nil
}

// stackQueries builds 12 templates × 10 queries, named after the paper's
// selected Stack template numbers.
func stackQueries(rng *rand.Rand) []*query.Query {
	tQ, tA, tU := tr("question", "q"), tr("answer", "a"), tr("so_user", "u")
	tS, tT, tTQ := tr("site", "s"), tr("tag", "tg"), tr("tag_question", "tq")
	tB, tC, tPL, tV := tr("badge", "b"), tr("comment", "cm"), tr("post_link", "pl"), tr("vote", "v")
	tAcc := tr("account", "acc")

	jQS := jp("q", "site_id", "s", "id")
	jQU := jp("q", "owner_id", "u", "id")
	jAQ := jp("a", "question_id", "q", "id")
	jAU := jp("a", "owner_id", "u", "id")
	jTQQ := jp("tq", "question_id", "q", "id")
	jTQT := jp("tq", "tag_id", "tg", "id")
	jBU := jp("b", "user_id", "u", "id")
	jCQ := jp("cm", "post_id", "q", "id")
	jPLQ := jp("pl", "q_from", "q", "id")
	jVQ := jp("v", "post_id", "q", "id")
	jUS := jp("u", "site_id", "s", "id")
	jUAcc := jp("u", "account_id", "acc", "id")

	siteF := func(r *rand.Rand) int64 { return int64(r.Intn(5)) }
	yearF := func(r *rand.Rand) int64 { return int64(2009 + r.Intn(12)) }

	mk := func(name string, ts []query.TableRef, js []query.JoinPred, f func(*rand.Rand) []query.Filter) template {
		return template{name: "s" + name, tables: ts, joins: js, filters: f}
	}
	templates := []template{
		mk("1", []query.TableRef{tQ, tS, tU}, []query.JoinPred{jQS, jQU},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("s", "id", siteF(r)), fGt("u", "reputation", int64(100+r.Intn(5000)))}
			}),
		mk("4", []query.TableRef{tQ, tA, tU}, []query.JoinPred{jAQ, jAU},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fGt("q", "score", int64(r.Intn(30))), fGt("u", "reputation", int64(1000+r.Intn(20000)))}
			}),
		mk("5", []query.TableRef{tQ, tTQ, tT}, []query.JoinPred{jTQQ, jTQT},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fLt("tg", "name_hash", int64(20+r.Intn(100))), fGt("q", "creation_year", yearF(r))}
			}),
		mk("6", []query.TableRef{tQ, tA, tC}, []query.JoinPred{jAQ, jCQ},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fGt("q", "view_count", int64(500+r.Intn(3000))), fGt("cm", "score", int64(r.Intn(5)))}
			}),
		mk("7", []query.TableRef{tQ, tU, tB}, []query.JoinPred{jQU, jBU},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fGt("b", "date_year", yearF(r)), fGt("q", "score", int64(r.Intn(20)))}
			}),
		mk("8", []query.TableRef{tQ, tPL, tV}, []query.JoinPred{jPLQ, jVQ},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("pl", "link_type", int64(r.Intn(3))), fEq("v", "vote_type", int64(r.Intn(4)))}
			}),
		mk("11", []query.TableRef{tQ, tA, tU, tS}, []query.JoinPred{jAQ, jAU, jUS},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("s", "id", siteF(r)), fGt("a", "score", int64(r.Intn(10))), fGt("q", "creation_year", yearF(r))}
			}),
		mk("12", []query.TableRef{tQ, tTQ, tT, tA}, []query.JoinPred{jTQQ, jTQT, jAQ},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fLt("tg", "name_hash", int64(20+r.Intn(80))), fGt("a", "score", int64(r.Intn(8)))}
			}),
		mk("13", []query.TableRef{tQ, tU, tAcc, tB}, []query.JoinPred{jQU, jUAcc, jBU},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fGt("acc", "creation_year", yearF(r)), fGt("u", "reputation", int64(500+r.Intn(10000)))}
			}),
		mk("14", []query.TableRef{tQ, tA, tU, tB, tS}, []query.JoinPred{jAQ, jAU, jBU, jUS},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("s", "id", siteF(r)), fGt("b", "date_year", yearF(r)), fGt("q", "score", int64(r.Intn(15)))}
			}),
		mk("15", []query.TableRef{tQ, tTQ, tT, tV, tC}, []query.JoinPred{jTQQ, jTQT, jVQ, jCQ},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fLt("tg", "name_hash", int64(30+r.Intn(100))), fEq("v", "vote_type", int64(r.Intn(4)))}
			}),
		mk("16", []query.TableRef{tQ, tA, tU, tTQ, tT, tS}, []query.JoinPred{jAQ, jAU, jTQQ, jTQT, jQS},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("s", "id", siteF(r)), fLt("tg", "name_hash", int64(30+r.Intn(80))), fGt("u", "reputation", int64(200+r.Intn(3000)))}
			}),
	}
	if len(templates) != 12 {
		panic(fmt.Sprintf("workload: %d Stack templates, want 12", len(templates)))
	}
	var qs []*query.Query
	for _, tpl := range templates {
		qs = append(qs, tpl.instantiate(rng, 10)...)
	}
	return qs
}
