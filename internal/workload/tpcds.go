package workload

import (
	"fmt"
	"math/rand"

	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/engine/stats"
	"github.com/foss-db/foss/internal/engine/storage"
	"github.com/foss-db/foss/internal/query"
)

// tpcdsSchema declares a TPC-DS-style star/snowflake schema: three sales
// fact tables plus inventory, and the dimensions the 19 selected templates
// touch.
func tpcdsSchema() *catalog.Schema {
	s := catalog.NewSchema()
	s.AddTable(catalog.NewTable("date_dim", col("id", true), col("year", false), col("moy", false), col("dom", false)))
	s.AddTable(catalog.NewTable("time_dim", col("id", true), col("hour", false)))
	s.AddTable(catalog.NewTable("item", col("id", true), col("category", false), col("brand", false), col("price", false)))
	s.AddTable(catalog.NewTable("customer", col("id", true), col("cdemo_id", true), col("addr_id", true), col("birth_year", false)))
	s.AddTable(catalog.NewTable("customer_address", col("id", true), col("state", false), col("country", false)))
	s.AddTable(catalog.NewTable("customer_demographics", col("id", true), col("gender", false), col("education", false)))
	s.AddTable(catalog.NewTable("household_demographics", col("id", true), col("income_band", false)))
	s.AddTable(catalog.NewTable("store", col("id", true), col("state", false)))
	s.AddTable(catalog.NewTable("promotion", col("id", true), col("channel", false)))
	s.AddTable(catalog.NewTable("warehouse", col("id", true), col("state", false)))
	s.AddTable(catalog.NewTable("store_sales", col("id", true), col("date_id", true), col("item_id", true),
		col("cust_id", true), col("store_id", true), col("promo_id", true), col("hdemo_id", true), col("qty", false)))
	s.AddTable(catalog.NewTable("catalog_sales", col("id", true), col("date_id", true), col("item_id", true),
		col("cust_id", true), col("promo_id", true), col("qty", false)))
	s.AddTable(catalog.NewTable("web_sales", col("id", true), col("date_id", true), col("item_id", true),
		col("cust_id", true), col("time_id", true), col("qty", false)))
	s.AddTable(catalog.NewTable("inventory", col("id", true), col("date_id", true), col("item_id", true),
		col("wh_id", true), col("qty_on_hand", false)))

	for _, fact := range []string{"store_sales", "catalog_sales", "web_sales"} {
		s.AddFK(fact, "date_id", "date_dim", "id")
		s.AddFK(fact, "item_id", "item", "id")
		s.AddFK(fact, "cust_id", "customer", "id")
	}
	s.AddFK("store_sales", "store_id", "store", "id")
	s.AddFK("store_sales", "promo_id", "promotion", "id")
	s.AddFK("store_sales", "hdemo_id", "household_demographics", "id")
	s.AddFK("catalog_sales", "promo_id", "promotion", "id")
	s.AddFK("web_sales", "time_id", "time_dim", "id")
	s.AddFK("customer", "cdemo_id", "customer_demographics", "id")
	s.AddFK("customer", "addr_id", "customer_address", "id")
	s.AddFK("inventory", "date_id", "date_dim", "id")
	s.AddFK("inventory", "item_id", "item", "id")
	s.AddFK("inventory", "wh_id", "warehouse", "id")
	return s
}

// LoadTPCDS generates the TPC-DS-like workload: 19 templates × 6 queries,
// 5 train / 1 test per template.
func LoadTPCDS(opts Options) (*Workload, error) {
	opts = opts.normalized()
	schema := tpcdsSchema()
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	db := storage.NewDB(schema)
	rng := rand.New(rand.NewSource(opts.Seed))
	sc := opts.Scale

	nDate := scaled(1500, sc)
	nItem := scaled(3000, sc)
	nCust := scaled(8000, sc)
	nAddr := scaled(1500, sc)
	nCdemo := scaled(800, sc)
	nHdemo := scaled(200, sc)
	nStore := 24
	nPromo := 120
	nWh := 15
	nTime := scaled(500, sc)

	for i := 0; i < nDate; i++ {
		// years 1998..2003, holiday-season months over-represented late ids
		year := int64(1998 + i*6/nDate)
		moy := int64(rng.Intn(12) + 1)
		db.Table("date_dim").AppendRow(int64(i), year, moy, int64(rng.Intn(28)+1))
	}
	for i := 0; i < nTime; i++ {
		db.Table("time_dim").AppendRow(int64(i), int64(rng.Intn(24)))
	}
	for i := 0; i < nItem; i++ {
		// category correlates with popularity rank: popular items are in few
		// categories, defeating independence between category filter and join
		cat := int64(i * 10 / nItem)
		if rng.Float64() < 0.1 {
			cat = int64(rng.Intn(10))
		}
		db.Table("item").AppendRow(int64(i), cat, int64(rng.Intn(60)), int64(rng.Intn(200)+1))
	}
	for i := 0; i < nCust; i++ {
		db.Table("customer").AppendRow(int64(i), int64(rng.Intn(nCdemo)), int64(zipfRank(rng, nAddr, 1.6)), popularityYear(rng, i, nCust))
	}
	for i := 0; i < nAddr; i++ {
		db.Table("customer_address").AppendRow(int64(i), int64(zipfRank(rng, 50, 1.8)), int64(zipfRank(rng, 12, 2.5)))
	}
	for i := 0; i < nCdemo; i++ {
		db.Table("customer_demographics").AppendRow(int64(i), int64(rng.Intn(2)), int64(rng.Intn(7)))
	}
	for i := 0; i < nHdemo; i++ {
		db.Table("household_demographics").AppendRow(int64(i), int64(rng.Intn(20)))
	}
	for i := 0; i < nStore; i++ {
		db.Table("store").AppendRow(int64(i), int64(rng.Intn(12)))
	}
	for i := 0; i < nPromo; i++ {
		db.Table("promotion").AppendRow(int64(i), int64(rng.Intn(5)))
	}
	for i := 0; i < nWh; i++ {
		db.Table("warehouse").AppendRow(int64(i), int64(rng.Intn(12)))
	}

	for i := 0; i < scaled(60000, sc); i++ {
		db.Table("store_sales").AppendRow(int64(i),
			int64(zipfRank(rng, nDate, 1.6)), int64(activeRank(rng, nItem, 1.5, 0.35)),
			int64(activeRank(rng, nCust, 1.5, 0.4)), int64(zipfRank(rng, nStore, 2.2)),
			int64(zipfRank(rng, nPromo, 2.6)), int64(rng.Intn(nHdemo)), int64(rng.Intn(100)+1))
	}
	for i := 0; i < scaled(30000, sc); i++ {
		db.Table("catalog_sales").AppendRow(int64(i),
			int64(zipfRank(rng, nDate, 1.6)), int64(activeRank(rng, nItem, 1.5, 0.35)),
			int64(activeRank(rng, nCust, 1.5, 0.4)), int64(zipfRank(rng, nPromo, 2.6)), int64(rng.Intn(100)+1))
	}
	for i := 0; i < scaled(20000, sc); i++ {
		db.Table("web_sales").AppendRow(int64(i),
			int64(zipfRank(rng, nDate, 1.6)), int64(activeRank(rng, nItem, 1.5, 0.35)),
			int64(activeRank(rng, nCust, 1.5, 0.4)), int64(rng.Intn(nTime)), int64(rng.Intn(100)+1))
	}
	for i := 0; i < scaled(20000, sc); i++ {
		db.Table("inventory").AppendRow(int64(i),
			int64(rng.Intn(nDate)), int64(activeRank(rng, nItem, 1.5, 0.35)),
			int64(rng.Intn(nWh)), int64(rng.Intn(500)))
	}
	db.BuildAllIndexes()

	qs := tpcdsQueries(rand.New(rand.NewSource(opts.Seed + 1)))
	mustValidate(qs, db)

	// 5 train / 1 test per template.
	var train, test []*query.Query
	for i, q := range qs {
		if i%6 == 5 {
			test = append(test, q)
		} else {
			train = append(train, q)
		}
	}

	return &Workload{
		Name:      "tpcds",
		DB:        db,
		Stats:     stats.Build(db, opts.StatsSampleFrac, opts.Seed+3),
		Train:     train,
		Test:      test,
		MaxTables: maxTables(qs),
	}, nil
}

// tpcdsQueries builds 19 templates × 6 queries, named after the paper's
// selected TPC-DS template numbers.
func tpcdsQueries(rng *rand.Rand) []*query.Query {
	y := func() int64 { return int64(1998 + rng.Intn(6)) }
	tSS, tCS, tWS := tr("store_sales", "ss"), tr("catalog_sales", "cs"), tr("web_sales", "ws")
	tD, tI, tC := tr("date_dim", "d"), tr("item", "i"), tr("customer", "c")
	tCA, tCD := tr("customer_address", "ca"), tr("customer_demographics", "cd")
	tS, tP, tHD := tr("store", "s"), tr("promotion", "p"), tr("household_demographics", "hd")
	tINV, tW, tT := tr("inventory", "inv"), tr("warehouse", "w"), tr("time_dim", "td")

	jSSD := jp("ss", "date_id", "d", "id")
	jSSI := jp("ss", "item_id", "i", "id")
	jSSC := jp("ss", "cust_id", "c", "id")
	jSSS := jp("ss", "store_id", "s", "id")
	jSSP := jp("ss", "promo_id", "p", "id")
	jSSHD := jp("ss", "hdemo_id", "hd", "id")
	jCSD := jp("cs", "date_id", "d", "id")
	jCSI := jp("cs", "item_id", "i", "id")
	jCSC := jp("cs", "cust_id", "c", "id")
	jWSD := jp("ws", "date_id", "d", "id")
	jWSI := jp("ws", "item_id", "i", "id")
	jWSC := jp("ws", "cust_id", "c", "id")
	jWST := jp("ws", "time_id", "td", "id")
	jCCA := jp("c", "addr_id", "ca", "id")
	jCCD := jp("c", "cdemo_id", "cd", "id")
	jINVD := jp("inv", "date_id", "d", "id")
	jINVI := jp("inv", "item_id", "i", "id")
	jINVW := jp("inv", "wh_id", "w", "id")

	mk := func(name string, ts []query.TableRef, js []query.JoinPred, f func(*rand.Rand) []query.Filter) template {
		return template{name: "q" + name, tables: ts, joins: js, filters: f}
	}
	templates := []template{
		mk("3", []query.TableRef{tSS, tD, tI}, []query.JoinPred{jSSD, jSSI},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("d", "moy", int64(r.Intn(12)+1)), fEq("i", "brand", int64(r.Intn(60)))}
			}),
		mk("7", []query.TableRef{tSS, tD, tI, tC, tCD}, []query.JoinPred{jSSD, jSSI, jSSC, jCCD},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("cd", "gender", int64(r.Intn(2))), fEq("d", "year", y())}
			}),
		mk("12", []query.TableRef{tWS, tD, tI}, []query.JoinPred{jWSD, jWSI},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fIn("i", "category", int64(r.Intn(5)), int64(5+r.Intn(5))), fEq("d", "year", y())}
			}),
		mk("18", []query.TableRef{tCS, tD, tI, tC, tCD}, []query.JoinPred{jCSD, jCSI, jCSC, jCCD},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("cd", "education", int64(r.Intn(7))), fEq("d", "year", y())}
			}),
		mk("20", []query.TableRef{tCS, tD, tI}, []query.JoinPred{jCSD, jCSI},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fIn("i", "category", int64(r.Intn(4)), int64(4+r.Intn(4))), fEq("d", "moy", int64(r.Intn(12)+1))}
			}),
		mk("26", []query.TableRef{tCS, tD, tC, tCD, tP}, []query.JoinPred{jCSD, jCSC, jCCD, jp("cs", "promo_id", "p", "id")},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("cd", "gender", int64(r.Intn(2))), fEq("p", "channel", int64(r.Intn(5))), fEq("d", "year", y())}
			}),
		mk("27", []query.TableRef{tSS, tD, tI, tS}, []query.JoinPred{jSSD, jSSI, jSSS},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("s", "state", int64(r.Intn(12))), fEq("d", "year", y())}
			}),
		mk("37", []query.TableRef{tCS, tI, tINV, tD}, []query.JoinPred{jCSI, jINVI, jINVD},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fBetween("i", "price", int64(r.Intn(50)), int64(80+r.Intn(100))), fLt("inv", "qty_on_hand", int64(80+r.Intn(200)))}
			}),
		mk("42", []query.TableRef{tSS, tD, tI}, []query.JoinPred{jSSD, jSSI},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("i", "category", int64(r.Intn(10))), fEq("d", "year", y()), fEq("d", "moy", int64(r.Intn(12)+1))}
			}),
		mk("43", []query.TableRef{tSS, tD, tS}, []query.JoinPred{jSSD, jSSS},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("s", "state", int64(r.Intn(12))), fEq("d", "year", y())}
			}),
		mk("50", []query.TableRef{tSS, tD, tS, tI}, []query.JoinPred{jSSD, jSSS, jSSI},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("d", "moy", int64(r.Intn(12)+1)), fGt("i", "price", int64(r.Intn(100)))}
			}),
		mk("52", []query.TableRef{tSS, tD, tI}, []query.JoinPred{jSSD, jSSI},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("i", "brand", int64(r.Intn(60))), fEq("d", "year", y())}
			}),
		mk("55", []query.TableRef{tSS, tD, tI}, []query.JoinPred{jSSD, jSSI},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("i", "brand", int64(r.Intn(30))), fEq("d", "moy", int64(r.Intn(12)+1)), fEq("d", "year", y())}
			}),
		mk("62", []query.TableRef{tWS, tD, tTd(), tI}, []query.JoinPred{jWSD, jWST, jWSI},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("d", "year", y()), fLt("td", "hour", int64(6+r.Intn(16)))}
			}),
		mk("82", []query.TableRef{tSS, tI, tINV, tD, tW}, []query.JoinPred{jSSI, jINVI, jINVD, jINVW},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fBetween("i", "price", int64(r.Intn(40)), int64(60+r.Intn(120))), fLt("inv", "qty_on_hand", int64(100+r.Intn(300))), fEq("w", "state", int64(r.Intn(12)))}
			}),
		mk("91", []query.TableRef{tCS, tC, tCA, tCD, tD}, []query.JoinPred{jCSC, jCCA, jCCD, jCSD},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("ca", "state", int64(r.Intn(20))), fEq("d", "year", y()), fEq("cd", "gender", int64(r.Intn(2)))}
			}),
		mk("96", []query.TableRef{tSS, tHD, tS}, []query.JoinPred{jSSHD, jSSS},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("hd", "income_band", int64(r.Intn(20))), fEq("s", "state", int64(r.Intn(12)))}
			}),
		mk("98", []query.TableRef{tSS, tD, tI, tP}, []query.JoinPred{jSSD, jSSI, jSSP},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("i", "category", int64(r.Intn(10))), fEq("p", "channel", int64(r.Intn(5))), fEq("d", "year", y())}
			}),
		mk("99", []query.TableRef{tWS, tD, tI, tC, tCA}, []query.JoinPred{jWSD, jWSI, jWSC, jCCA},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("ca", "country", int64(r.Intn(4))), fEq("d", "year", y())}
			}),
	}
	if len(templates) != 19 {
		panic(fmt.Sprintf("workload: %d TPC-DS templates, want 19", len(templates)))
	}
	var qs []*query.Query
	for _, tpl := range templates {
		qs = append(qs, tpl.instantiate(rng, 6)...)
	}
	_ = tCA
	_ = tW
	_ = tT
	return qs
}

// tTd returns the time_dim ref (avoids an unused-variable dance above).
func tTd() query.TableRef { return tr("time_dim", "td") }
