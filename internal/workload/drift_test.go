package workload

import (
	"testing"

	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/query"
)

// driftSQLs renders a scenario's full stream for equality comparison.
func driftSQLs(s *DriftScenario) []string {
	var out []string
	for _, q := range s.Stream() {
		out = append(out, q.ID+"|"+q.SQL())
	}
	return out
}

// TestDriftScenarios is the table-driven sweep: every kind on every
// benchmark must generate, validate against the catalog, be deterministic
// per seed, respond to the seed, and actually shift the distribution.
func TestDriftScenarios(t *testing.T) {
	opts := DriftOptions{Seed: 7, PreLen: 40, PostLen: 40}
	for _, name := range Names() {
		w, err := Load(name, Options{Seed: 1, Scale: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		trainFP := map[uint64]bool{}
		for _, q := range w.Train {
			trainFP[q.Fingerprint()] = true
		}
		for _, kind := range DriftKinds() {
			t.Run(name+"/"+string(kind), func(t *testing.T) {
				s, err := Drift(w, kind, opts)
				if err != nil {
					t.Fatal(err)
				}
				if len(s.Pre) != opts.PreLen || len(s.Post) != opts.PostLen {
					t.Fatalf("lengths %d/%d, want %d/%d", len(s.Pre), len(s.Post), opts.PreLen, opts.PostLen)
				}
				if s.ShiftAt() != opts.PreLen {
					t.Fatalf("ShiftAt %d, want %d", s.ShiftAt(), opts.PreLen)
				}

				// Catalog validity: Drift validates internally, but assert the
				// invariants here too so a regression names the query.
				for _, q := range s.Stream() {
					if err := q.Validate(); err != nil {
						t.Fatalf("invalid query: %v", err)
					}
					if !q.Connected() {
						t.Fatalf("query %s disconnected", q.ID)
					}
					for _, tr := range q.Tables {
						if _, ok := w.DB.Tables[tr.Table]; !ok {
							t.Fatalf("query %s references unknown table %s", q.ID, tr.Table)
						}
					}
				}

				// Deterministic per seed: regeneration is bit-identical.
				again, err := Drift(w, kind, opts)
				if err != nil {
					t.Fatal(err)
				}
				a, b := driftSQLs(s), driftSQLs(again)
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("stream[%d] differs across identical seeds:\n%s\n%s", i, a[i], b[i])
					}
				}

				// The seed must matter.
				other, err := Drift(w, kind, DriftOptions{Seed: 8, PreLen: 40, PostLen: 40})
				if err != nil {
					t.Fatal(err)
				}
				c := driftSQLs(other)
				same := 0
				for i := range a {
					if a[i] == c[i] {
						same++
					}
				}
				if same == len(a) {
					t.Fatal("seed has no effect on the drift stream")
				}

				// The distribution must actually shift.
				switch kind {
				case DriftTemplateMix, DriftNovelTemplate:
					preH, postH := TemplateHistogram(s.Pre), TemplateHistogram(s.Post)
					if histogramsEqual(preH, postH) {
						t.Fatal("template histogram identical pre/post shift")
					}
					if kind == DriftTemplateMix {
						// mix shift: the two phases share no template at all
						for tpl := range preH {
							if postH[tpl] > 0 {
								t.Fatalf("template %s served in both phases of a mix shift", tpl)
							}
						}
					}
					if kind == DriftNovelTemplate {
						novel := 0
						for tpl, n := range postH {
							if len(tpl) > 6 && tpl[:6] == "novel:" {
								novel += n
							}
						}
						if novel == 0 {
							t.Fatal("no novel templates injected post-shift")
						}
					}
				case DriftSelectivity:
					// same templates, new parameters: post fingerprints must
					// leave the training distribution
					fresh := 0
					for _, q := range s.Post {
						if !trainFP[q.Fingerprint()] {
							fresh++
						}
					}
					if fresh == 0 {
						t.Fatal("selectivity shift produced no unseen fingerprints")
					}
					preH, postH := TemplateHistogram(s.Pre), TemplateHistogram(s.Post)
					if len(preH) == 0 || len(postH) == 0 {
						t.Fatal("empty histograms")
					}
				case DriftSchemaEvolution:
					assertSchemaEvolution(t, w, s)
				}
				if kind != DriftSchemaEvolution && s.DDL != nil {
					t.Fatalf("kind %s carries a DDL batch", kind)
				}
			})
		}
	}
}

// assertSchemaEvolution checks the schema-evolution invariants: the DDL batch
// drops an index that actually exists and applies cleanly to the workload's
// catalog, and the post-shift stream ramps toward queries joining on the
// dropped column.
func assertSchemaEvolution(t *testing.T, w *Workload, s *DriftScenario) {
	t.Helper()
	if len(s.DDL) == 0 {
		t.Fatal("schema-evolution scenario carries no DDL")
	}
	drop := s.DDL[0]
	if drop.Kind != catalog.DDLDropIndex {
		t.Fatalf("first DDL is %s, want %s", drop.Kind, catalog.DDLDropIndex)
	}
	if !isIndexed(w, drop.Table, drop.Column) {
		t.Fatalf("dropped index %s.%s does not exist in the catalog", drop.Table, drop.Column)
	}
	// The batch must apply cleanly, and the workload's own schema must not
	// move (the versioned catalog is copy-on-write).
	next, _, err := catalog.NewVersioned(w.DB.Schema).Apply(s.DDL)
	if err != nil {
		t.Fatalf("ddl batch does not apply: %v", err)
	}
	if _, evolved := next.Tables[drop.Table+"_evolved"]; !evolved {
		t.Fatal("evolved side table missing from post-DDL schema")
	}
	if !isIndexed(w, drop.Table, drop.Column) {
		t.Fatal("dry-apply mutated the workload's own catalog")
	}
	// Traffic ramp: the hot-join share in the last quarter of the post
	// stream must exceed the first quarter's.
	joinsHot := func(q *query.Query) bool {
		for _, j := range q.Joins {
			if (q.TableOf(j.LA) == drop.Table && j.LC == drop.Column) ||
				(q.TableOf(j.RA) == drop.Table && j.RC == drop.Column) {
				return true
			}
		}
		return false
	}
	quarter := len(s.Post) / 4
	early, late := 0, 0
	for i, q := range s.Post {
		if !joinsHot(q) {
			continue
		}
		if i < quarter {
			early++
		}
		if i >= len(s.Post)-quarter {
			late++
		}
	}
	if late == 0 {
		t.Fatal("no hot-column traffic at the end of the ramp")
	}
	if late <= early {
		t.Fatalf("hot-join traffic does not ramp: first quarter %d, last quarter %d", early, late)
	}
}

func histogramsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestDriftUnknownKind rejects kinds the generator does not know.
func TestDriftUnknownKind(t *testing.T) {
	w, err := Load("job", Options{Seed: 1, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drift(w, DriftKind("bogus"), DriftOptions{}); err == nil {
		t.Fatal("expected error for unknown drift kind")
	}
}

// TestDropLeafVariant covers the novel-template derivation directly: the
// variant must lose exactly one degree-1 alias and stay connected/filtered.
func TestDropLeafVariant(t *testing.T) {
	w, err := Load("job", Options{Seed: 1, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	derived := 0
	for _, base := range w.Train {
		v := dropLeafVariant(base)
		if v == nil {
			continue
		}
		derived++
		if v.NumTables() != base.NumTables()-1 {
			t.Fatalf("%s: variant has %d tables, base %d", base.ID, v.NumTables(), base.NumTables())
		}
		if len(v.Filters) == 0 {
			t.Fatalf("%s: variant lost every filter", base.ID)
		}
		if !v.Connected() {
			t.Fatalf("%s: variant disconnected", base.ID)
		}
		if v.Template == base.Template {
			t.Fatalf("%s: variant kept template name", base.ID)
		}
		if err := v.Validate(); err != nil {
			t.Fatalf("%s: %v", base.ID, err)
		}
		// the base query must be untouched by derivation
		if err := base.Validate(); err != nil {
			t.Fatalf("%s mutated: %v", base.ID, err)
		}
	}
	if derived < 10 {
		t.Fatalf("only %d/%d train queries admit a leaf drop", derived, len(w.Train))
	}
	_ = query.Query{}
}
