// Package workload generates the three benchmarks of the paper at laptop
// scale: JOB (IMDb-style, 21 relations, 33 templates, 113 queries, 94/19
// split), TPC-DS (star schema, 19 templates × 6 queries, 5/1 split) and
// Stack (StackExchange-style, 12 templates × 10 queries, 8/2 split).
//
// Data is synthetic but engineered to defeat the traditional estimator the
// same way the real datasets do: fact-table foreign keys follow Zipf
// popularity, and dimension attributes correlate with popularity (e.g. a
// title's production year correlates with how many cast_info rows reference
// it). Single-column histograms with the independence assumption therefore
// misestimate join fanouts by orders of magnitude on filtered queries, which
// is precisely the optimizer regret FOSS is designed to repair.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/engine/stats"
	"github.com/foss-db/foss/internal/engine/storage"
	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/query"
)

// Workload is a loaded benchmark: data, statistics, and the train/test query
// split.
type Workload struct {
	Name      string
	DB        *storage.DB
	Stats     *stats.Catalog
	Train     []*query.Query
	Test      []*query.Query
	MaxTables int // largest query arity; sizes the action space
}

// All returns train followed by test queries.
func (w *Workload) All() []*query.Query {
	out := make([]*query.Query, 0, len(w.Train)+len(w.Test))
	out = append(out, w.Train...)
	out = append(out, w.Test...)
	return out
}

// Options controls generation.
type Options struct {
	Seed  int64
	Scale float64 // 1.0 = default row counts; 0.25 = quarter size for tests
	// StatsSampleFrac is the fraction of rows the statistics builder samples
	// (estimation error source); 0 defaults to 0.3.
	StatsSampleFrac float64
}

// DefaultOptions returns full-scale generation with a fixed seed.
func DefaultOptions() Options { return Options{Seed: 42, Scale: 1.0, StatsSampleFrac: 0.3} }

func (o Options) normalized() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.StatsSampleFrac <= 0 {
		o.StatsSampleFrac = 0.3
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Load builds the named workload ("job", "tpcds", "stack").
func Load(name string, opts Options) (*Workload, error) {
	opts = opts.normalized()
	switch name {
	case "job":
		return LoadJOB(opts)
	case "tpcds":
		return LoadTPCDS(opts)
	case "stack":
		return LoadStack(opts)
	}
	return nil, fmt.Errorf("workload: %q: %w", name, fosserr.ErrUnknownWorkload)
}

// Names lists the available workloads.
func Names() []string { return []string{"job", "tpcds", "stack"} }

// ---- generation helpers ----

// scaled applies the scale factor with a minimum of 10 rows.
func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 10 {
		v = 10
	}
	return v
}

// zipfRank draws a rank in [0,n) with approximate Zipf(s) skew: rank 0 is the
// most popular.
func zipfRank(rng *rand.Rand, n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// inverse-CDF sampling of a power law on ranks
	u := rng.Float64()
	r := int(math.Pow(u, s) * float64(n))
	if r >= n {
		r = n - 1
	}
	return r
}

// activeRank draws a foreign-key rank concentrated on the "active prefix" of
// the referenced table: with 97% probability a Zipf draw within the top
// activeFrac of ranks, otherwise a uniform leak over the whole table. The
// entities outside the prefix are therefore (nearly) dead in the fact table —
// the anti-correlated slice a single-column histogram prices at full average
// fanout. This is the engineered estimator trap the workloads rely on.
func activeRank(rng *rand.Rand, n int, s, activeFrac float64) int {
	if rng.Float64() < 0.03 {
		return rng.Intn(n)
	}
	active := int(float64(n) * activeFrac)
	if active < 1 {
		active = 1
	}
	return zipfRank(rng, active, s)
}

// popularityYear maps a popularity rank to a tightly correlated "year":
// popular entities are recent. Range [1930, 2023] with small noise, so year
// filters act as (hidden) popularity filters that single-column histograms
// cannot see.
func popularityYear(rng *rand.Rand, rank, n int) int64 {
	frac := 1 - float64(rank)/float64(n) // popular -> close to 1
	base := 1930 + int(frac*90)
	noise := rng.Intn(7) - 3
	y := base + noise
	if y < 1930 {
		y = 1930
	}
	if y > 2023 {
		y = 2023
	}
	return int64(y)
}

// mustValidate panics if any query is structurally invalid (generator bug).
func mustValidate(qs []*query.Query, db *storage.DB) {
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			panic(err)
		}
		for _, t := range q.Tables {
			if _, ok := db.Tables[t.Table]; !ok {
				panic(fmt.Sprintf("workload: query %s references unknown table %s", q.ID, t.Table))
			}
		}
		if !q.Connected() {
			panic(fmt.Sprintf("workload: query %s has a disconnected join graph", q.ID))
		}
	}
}

func maxTables(qs []*query.Query) int {
	m := 2
	for _, q := range qs {
		if q.NumTables() > m {
			m = q.NumTables()
		}
	}
	return m
}

// template is a parameterized query shape: fixed tables and joins, filters
// drawn per instance.
type template struct {
	name    string
	tables  []query.TableRef
	joins   []query.JoinPred
	filters func(rng *rand.Rand) []query.Filter
}

// instantiate creates count queries from the template with distinct seeds.
func (t template) instantiate(rng *rand.Rand, count int) []*query.Query {
	out := make([]*query.Query, 0, count)
	for i := 0; i < count; i++ {
		q := &query.Query{
			ID:       fmt.Sprintf("%s_%d", t.name, i+1),
			Template: t.name,
			Tables:   append([]query.TableRef(nil), t.tables...),
			Joins:    append([]query.JoinPred(nil), t.joins...),
			Filters:  t.filters(rng),
		}
		out = append(out, q)
	}
	return out
}

func tr(table, alias string) query.TableRef { return query.TableRef{Table: table, Alias: alias} }

func jp(la, lc, ra, rc string) query.JoinPred { return query.JoinPred{LA: la, LC: lc, RA: ra, RC: rc} }

func fEq(alias, col string, v int64) query.Filter {
	return query.Filter{Alias: alias, Col: col, Op: query.Eq, Val: v}
}

func fGt(alias, col string, v int64) query.Filter {
	return query.Filter{Alias: alias, Col: col, Op: query.Gt, Val: v}
}

func fLt(alias, col string, v int64) query.Filter {
	return query.Filter{Alias: alias, Col: col, Op: query.Lt, Val: v}
}

func fBetween(alias, col string, lo, hi int64) query.Filter {
	return query.Filter{Alias: alias, Col: col, Op: query.Between, Val: lo, Hi: hi}
}

func fIn(alias, col string, vals ...int64) query.Filter {
	return query.Filter{Alias: alias, Col: col, Op: query.In, Set: vals}
}

// col is shorthand for catalog column construction.
func col(name string, indexed bool) catalog.Column {
	return catalog.Column{Name: name, Indexed: indexed}
}

// yearFilter draws one of three regimes on a popularity-correlated year
// column. Because year tracks popularity rank, the three regimes produce
// three distinct estimator failure modes the optimizer must navigate:
//
//   - popular slice (recent years): true join fanout far above average —
//     the estimator underestimates intermediates (nested-loop disasters);
//   - unpopular slice (old years): true fanout near zero — the estimator
//     overestimates, making the optimizer scan-and-hash when an index
//     nested-loop chain would be nearly free (the paper's query-1b shape);
//   - neutral mid-range: estimates roughly right.
func yearFilter(r *rand.Rand, alias, col string) query.Filter {
	switch r.Intn(3) {
	case 0:
		return fGt(alias, col, int64(2002+r.Intn(17)))
	case 1:
		return fLt(alias, col, int64(1945+r.Intn(35)))
	default:
		return fBetween(alias, col, int64(1950+r.Intn(30)), int64(1985+r.Intn(25)))
	}
}
