package workload

// Drift scenarios: deterministic serving-distribution shifts over a loaded
// benchmark, giving the online doctor loop something to adapt to. Three kinds
// mirror how production query mixes move under the feet of a learned
// optimizer:
//
//   - template-mix: the serving mix rotates from one half of the query
//     templates to the other (a product launch changes which reports run);
//   - selectivity: the same templates keep arriving but their parameters
//     shift into the popular/unpopular data slices where the traditional
//     estimator errs the most (a marketing push makes everyone query the
//     newest titles);
//   - novel-template: structurally new query shapes — leaf-dropped variants
//     of existing templates — are injected alongside the familiar mix (a new
//     dashboard ships);
//   - schema-evolution: the schema itself moves — a DDL batch drops the index
//     on the hottest join column and adds a fresh table at the shift point,
//     while post-shift traffic ramps toward the queries that join on the
//     now-unindexed column (an ops migration lands mid-day).
//
// All generation is pure function of (workload, kind, options): the same seed
// always yields the same query stream.

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/engine/stats"
	"github.com/foss-db/foss/internal/query"
)

// DriftKind names a deterministic serving-distribution shift scenario.
type DriftKind string

// The four drift scenario kinds.
const (
	DriftTemplateMix     DriftKind = "template-mix"
	DriftSelectivity     DriftKind = "selectivity"
	DriftNovelTemplate   DriftKind = "novel-template"
	DriftSchemaEvolution DriftKind = "schema-evolution"
)

// DriftKinds lists the available scenario kinds.
func DriftKinds() []DriftKind {
	return []DriftKind{DriftTemplateMix, DriftSelectivity, DriftNovelTemplate, DriftSchemaEvolution}
}

// DriftOptions controls scenario generation.
type DriftOptions struct {
	Seed    int64
	PreLen  int // queries before the shift
	PostLen int // queries after the shift
}

func (o DriftOptions) normalized() DriftOptions {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.PreLen <= 0 {
		o.PreLen = 60
	}
	if o.PostLen <= 0 {
		o.PostLen = 60
	}
	return o
}

// DriftScenario is a two-phase query stream: Pre draws from the workload's
// steady-state distribution, Post from the shifted one. A schema-evolution
// scenario additionally carries the DDL batch the harness applies to the live
// catalog at ShiftAt(), between the last Pre query and the first Post query;
// for the other kinds DDL is nil.
type DriftScenario struct {
	Kind DriftKind
	Pre  []*query.Query
	Post []*query.Query
	DDL  []catalog.DDL
}

// Stream returns the full serving sequence, Pre followed by Post.
func (s *DriftScenario) Stream() []*query.Query {
	out := make([]*query.Query, 0, len(s.Pre)+len(s.Post))
	out = append(out, s.Pre...)
	out = append(out, s.Post...)
	return out
}

// ShiftAt returns the stream index where the distribution shifts.
func (s *DriftScenario) ShiftAt() int { return len(s.Pre) }

// TemplateHistogram counts queries per template name.
func TemplateHistogram(qs []*query.Query) map[string]int {
	h := map[string]int{}
	for _, q := range qs {
		h[q.Template]++
	}
	return h
}

// Drift builds the named scenario over a loaded workload. Every generated
// query is validated against the workload's catalog before it is returned.
func Drift(w *Workload, kind DriftKind, opts DriftOptions) (*DriftScenario, error) {
	opts = opts.normalized()
	rng := rand.New(rand.NewSource(opts.Seed))
	var s *DriftScenario
	var err error
	switch kind {
	case DriftTemplateMix:
		s, err = driftTemplateMix(w, rng, opts)
	case DriftSelectivity:
		s, err = driftSelectivity(w, rng, opts)
	case DriftNovelTemplate:
		s, err = driftNovelTemplate(w, rng, opts)
	case DriftSchemaEvolution:
		s, err = driftSchemaEvolution(w, rng, opts)
	default:
		return nil, fmt.Errorf("workload: unknown drift kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	for _, q := range s.Stream() {
		if err := validateAgainst(q, w); err != nil {
			return nil, fmt.Errorf("workload: drift %s: %w", kind, err)
		}
	}
	if len(s.DDL) > 0 {
		// Dry-apply the batch on a throwaway versioned catalog (COW — the
		// workload's own schema is untouched) so a broken generator surfaces
		// here, not when the harness applies it to a live doctor.
		if _, _, err := catalog.NewVersioned(w.DB.Schema).Apply(s.DDL); err != nil {
			return nil, fmt.Errorf("workload: drift %s ddl: %w", kind, err)
		}
	}
	return s, nil
}

// validateAgainst checks a generated query structurally and against the
// workload's catalog (the non-panicking sibling of mustValidate, since drift
// generation is library API).
func validateAgainst(q *query.Query, w *Workload) error {
	if err := q.Validate(); err != nil {
		return err
	}
	for _, t := range q.Tables {
		tab, ok := w.DB.Tables[t.Table]
		if !ok {
			return fmt.Errorf("query %s references unknown table %s", q.ID, t.Table)
		}
		cols := map[string]bool{}
		for _, c := range tab.Meta.Columns {
			cols[c.Name] = true
		}
		for _, f := range q.Filters {
			if f.Alias == t.Alias && !cols[f.Col] {
				return fmt.Errorf("query %s filters unknown column %s.%s", q.ID, t.Table, f.Col)
			}
		}
	}
	if !q.Connected() {
		return fmt.Errorf("query %s has a disconnected join graph", q.ID)
	}
	return nil
}

// groupByTemplate partitions queries by template, with template names in
// sorted order for determinism.
func groupByTemplate(qs []*query.Query) ([]string, map[string][]*query.Query) {
	by := map[string][]*query.Query{}
	for _, q := range qs {
		by[q.Template] = append(by[q.Template], q)
	}
	names := make([]string, 0, len(by))
	for n := range by {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, by
}

// sampleFrom draws n queries uniformly (with replacement) from the pool.
func sampleFrom(rng *rand.Rand, pool []*query.Query, n int) []*query.Query {
	out := make([]*query.Query, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pool[rng.Intn(len(pool))])
	}
	return out
}

// driftTemplateMix serves one half of the templates pre-shift and the other
// half post-shift.
func driftTemplateMix(w *Workload, rng *rand.Rand, opts DriftOptions) (*DriftScenario, error) {
	names, by := groupByTemplate(w.Train)
	if len(names) < 2 {
		return nil, fmt.Errorf("template-mix drift needs >= 2 templates, have %d", len(names))
	}
	half := len(names) / 2
	var poolA, poolB []*query.Query
	for _, n := range names[:half] {
		poolA = append(poolA, by[n]...)
	}
	for _, n := range names[half:] {
		poolB = append(poolB, by[n]...)
	}
	return &DriftScenario{
		Kind: DriftTemplateMix,
		Pre:  sampleFrom(rng, poolA, opts.PreLen),
		Post: sampleFrom(rng, poolB, opts.PostLen),
	}, nil
}

// driftSelectivity keeps the template mix but re-parameterizes post-shift
// filters into the extreme data slices — range predicates move to the top or
// bottom decile of each column's domain, exactly where the correlated data
// makes single-column histograms misestimate the hardest.
func driftSelectivity(w *Workload, rng *rand.Rand, opts DriftOptions) (*DriftScenario, error) {
	pre := sampleFrom(rng, w.Train, opts.PreLen)
	post := make([]*query.Query, 0, opts.PostLen)
	for i := 0; i < opts.PostLen; i++ {
		base := w.Train[rng.Intn(len(w.Train))]
		post = append(post, shiftSelectivity(w, base, rng, i))
	}
	return &DriftScenario{Kind: DriftSelectivity, Pre: pre, Post: post}, nil
}

// shiftSelectivity clones a query with its range filters pushed into extreme
// deciles of the filtered column's domain (taken from the stats catalog).
// Equality and membership filters are left alone: they bind dimension keys
// whose domains are tiny.
func shiftSelectivity(w *Workload, base *query.Query, rng *rand.Rand, idx int) *query.Query {
	q := cloneQuery(base)
	q.ID = fmt.Sprintf("%s_sel%d", base.ID, idx)
	for i, f := range q.Filters {
		cs := columnStats(w, base, f.Alias, f.Col)
		if cs == nil {
			continue
		}
		span := cs.Max - cs.Min
		if span < 10 {
			continue
		}
		jitter := rng.Int63n(span/20 + 1)
		switch f.Op {
		case query.Gt, query.Ge:
			// top decile: the popular/recent slice, where true join fanout is
			// far above the histogram's average (underestimation regime)
			q.Filters[i].Val = cs.Min + span*17/20 + jitter
		case query.Lt, query.Le:
			// bottom decile: the near-dead slice, where the histogram prices
			// full average fanout that never materializes (overestimation)
			q.Filters[i].Val = cs.Min + span*3/20 - jitter
		case query.Between:
			lo := cs.Min + span*16/20 + jitter
			q.Filters[i].Val = lo
			q.Filters[i].Hi = lo + span/10
		}
	}
	return q
}

// driftNovelTemplate injects structurally new query shapes: leaf-dropped
// variants of existing templates, mixed 50/50 with the familiar stream.
func driftNovelTemplate(w *Workload, rng *rand.Rand, opts DriftOptions) (*DriftScenario, error) {
	pre := sampleFrom(rng, w.Train, opts.PreLen)
	// Deterministic novel pool: every train query that admits a leaf drop.
	var novel []*query.Query
	for _, base := range w.Train {
		if v := dropLeafVariant(base); v != nil {
			novel = append(novel, v)
		}
	}
	if len(novel) == 0 {
		return nil, fmt.Errorf("novel-template drift: no query admits a leaf drop")
	}
	post := make([]*query.Query, 0, opts.PostLen)
	for i := 0; i < opts.PostLen; i++ {
		if i%2 == 0 {
			post = append(post, novel[rng.Intn(len(novel))])
		} else {
			post = append(post, w.Train[rng.Intn(len(w.Train))])
		}
	}
	return &DriftScenario{Kind: DriftNovelTemplate, Pre: pre, Post: post}, nil
}

// driftSchemaEvolution emits a DDL batch at the shift point — drop the index
// on the workload's hottest join column, add a fresh side table — while the
// post-shift stream ramps linearly toward the queries that join on the
// now-unindexed column. The learned doctor's tier memory for those templates
// was priced against index access paths that no longer exist; the ramp gives
// it a graded, deterministic re-learning signal rather than a cliff.
func driftSchemaEvolution(w *Workload, rng *rand.Rand, opts DriftOptions) (*DriftScenario, error) {
	table, col, hotPool, coldPool, err := hottestIndexedJoinColumn(w)
	if err != nil {
		return nil, err
	}
	ddl := []catalog.DDL{
		{Kind: catalog.DDLDropIndex, Table: table, Column: col},
		{Kind: catalog.DDLAddTable, Table: table + "_evolved", Columns: []catalog.Column{
			{Name: "id", Indexed: true},
			{Name: table + "_" + col}, // reference back to the hot column
		}},
	}
	pre := sampleFrom(rng, w.Train, opts.PreLen)
	post := make([]*query.Query, 0, opts.PostLen)
	for i := 0; i < opts.PostLen; i++ {
		// Linear ramp: the share of hot-column traffic grows from ~0 to ~1
		// across the post window (the migration's consumers roll out slowly).
		if rng.Float64() < float64(i+1)/float64(opts.PostLen) {
			post = append(post, hotPool[rng.Intn(len(hotPool))])
		} else {
			post = append(post, coldPool[rng.Intn(len(coldPool))])
		}
	}
	return &DriftScenario{Kind: DriftSchemaEvolution, Pre: pre, Post: post, DDL: ddl}, nil
}

// hottestIndexedJoinColumn finds the most-joined indexed column whose query
// pool is a strict subset of the training stream (so the ramp toward it is an
// actual distribution shift — a column every query joins, like a ubiquitous
// dimension key, gives the doctor nothing to re-learn against). Ties break
// lexically on table.column for determinism. Returns the hot pool (queries
// joining on it) and the cold pool (the rest).
func hottestIndexedJoinColumn(w *Workload) (table, col string, hot, cold []*query.Query, err error) {
	counts := map[[2]string]int{}
	for _, q := range w.Train {
		for _, j := range q.Joins {
			for _, side := range [][2]string{{q.TableOf(j.LA), j.LC}, {q.TableOf(j.RA), j.RC}} {
				if isIndexed(w, side[0], side[1]) {
					counts[side]++
				}
			}
		}
	}
	cands := make([][2]string, 0, len(counts))
	for k := range counts {
		cands = append(cands, k)
	}
	sort.Slice(cands, func(a, b int) bool {
		if counts[cands[a]] != counts[cands[b]] {
			return counts[cands[a]] > counts[cands[b]]
		}
		return cands[a][0]+"."+cands[a][1] < cands[b][0]+"."+cands[b][1]
	})
	for _, c := range cands {
		hot, cold = splitByJoinColumn(w.Train, c[0], c[1])
		if len(hot) > 0 && len(cold) > 0 {
			return c[0], c[1], hot, cold, nil
		}
	}
	return "", "", nil, nil, fmt.Errorf("schema-evolution drift: no indexed join column splits the training stream")
}

// splitByJoinColumn partitions queries by whether any join predicate touches
// table.col.
func splitByJoinColumn(qs []*query.Query, table, col string) (hot, cold []*query.Query) {
	for _, q := range qs {
		touches := false
		for _, j := range q.Joins {
			if (q.TableOf(j.LA) == table && j.LC == col) ||
				(q.TableOf(j.RA) == table && j.RC == col) {
				touches = true
				break
			}
		}
		if touches {
			hot = append(hot, q)
		} else {
			cold = append(cold, q)
		}
	}
	return hot, cold
}

// isIndexed reports whether table.col exists and carries an index in the
// workload's catalog.
func isIndexed(w *Workload, table, col string) bool {
	tab, ok := w.DB.Tables[table]
	if !ok {
		return false
	}
	for _, c := range tab.Meta.Columns {
		if c.Name == col {
			return c.Indexed
		}
	}
	return false
}

// dropLeafVariant derives a novel template from a query by removing one
// degree-1 alias from its join graph (plus the joins and filters touching
// it), keeping the result connected, >= 3 tables, and still filtered. Returns
// nil when no alias qualifies.
func dropLeafVariant(base *query.Query) *query.Query {
	if base.NumTables() <= 3 {
		return nil
	}
	degree := map[string]int{}
	for _, j := range base.Joins {
		degree[j.LA]++
		degree[j.RA]++
	}
	for i := len(base.Tables) - 1; i >= 0; i-- {
		alias := base.Tables[i].Alias
		if degree[alias] != 1 {
			continue
		}
		q := cloneQuery(base)
		q.ID = base.ID + "_novel"
		q.Template = "novel:" + base.Template
		q.Tables = append(q.Tables[:i:i], q.Tables[i+1:]...)
		var joins []query.JoinPred
		for _, j := range base.Joins {
			if !j.Touches(alias) {
				joins = append(joins, j)
			}
		}
		q.Joins = joins
		var filters []query.Filter
		for _, f := range base.Filters {
			if f.Alias != alias {
				filters = append(filters, f)
			}
		}
		if len(filters) == 0 {
			continue // an unfiltered join star would dominate the stream
		}
		q.Filters = filters
		if !q.Connected() {
			continue
		}
		return q
	}
	return nil
}

// cloneQuery deep-copies a query so scenario mutations never alias the
// workload's own instances.
func cloneQuery(q *query.Query) *query.Query {
	c := &query.Query{
		ID:       q.ID,
		Template: q.Template,
		Tables:   append([]query.TableRef(nil), q.Tables...),
		Joins:    append([]query.JoinPred(nil), q.Joins...),
		Filters:  append([]query.Filter(nil), q.Filters...),
	}
	for i, f := range c.Filters {
		if f.Set != nil {
			c.Filters[i].Set = append([]int64(nil), f.Set...)
		}
	}
	return c
}

// columnStats resolves the stats entry for alias.col in the query, or nil.
func columnStats(w *Workload, q *query.Query, alias, col string) *stats.ColumnStats {
	table := q.TableOf(alias)
	if table == "" {
		return nil
	}
	ts := w.Stats.Table(table)
	if ts == nil {
		return nil
	}
	return ts.Cols[col]
}
