package workload

import (
	"math/rand"
	"testing"

	"github.com/foss-db/foss/internal/engine/exec"
	"github.com/foss-db/foss/internal/optimizer"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/query"
)

func TestPaperQueryCounts(t *testing.T) {
	cases := []struct {
		name              string
		train, test, tmpl int
	}{
		{"job", 94, 19, 33},
		{"tpcds", 95, 19, 19},
		{"stack", 96, 24, 12},
	}
	for _, c := range cases {
		w, err := Load(c.name, Options{Seed: 1, Scale: 0.1})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(w.Train) != c.train || len(w.Test) != c.test {
			t.Fatalf("%s: split %d/%d, want %d/%d", c.name, len(w.Train), len(w.Test), c.train, c.test)
		}
		tmpls := map[string]bool{}
		for _, q := range w.All() {
			tmpls[q.Template] = true
		}
		if len(tmpls) != c.tmpl {
			t.Fatalf("%s: %d templates, want %d", c.name, len(tmpls), c.tmpl)
		}
	}
}

func TestJOBHas21Relations(t *testing.T) {
	w, err := Load("job", Options{Seed: 1, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.DB.Tables) != 21 {
		t.Fatalf("JOB has %d relations, want 21", len(w.DB.Tables))
	}
}

func TestGenerationDeterministic(t *testing.T) {
	a, err := Load("job", Options{Seed: 5, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load("job", Options{Seed: 5, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if a.DB.TotalRows() != b.DB.TotalRows() {
		t.Fatal("row counts differ across identical seeds")
	}
	ta, tb := a.DB.Table("cast_info"), b.DB.Table("cast_info")
	for c := range ta.Cols {
		for r := range ta.Cols[c] {
			if ta.Cols[c][r] != tb.Cols[c][r] {
				t.Fatalf("cast_info[%d][%d] differs", c, r)
			}
		}
	}
	for i := range a.Train {
		if a.Train[i].ID != b.Train[i].ID || a.Train[i].SQL() != b.Train[i].SQL() {
			t.Fatalf("train query %d differs across identical seeds", i)
		}
	}
}

func TestSeedChangesQueries(t *testing.T) {
	a, _ := Load("job", Options{Seed: 5, Scale: 0.1})
	b, _ := Load("job", Options{Seed: 6, Scale: 0.1})
	same := 0
	for i := range a.Train {
		if a.Train[i].SQL() == b.Train[i].SQL() {
			same++
		}
	}
	if same == len(a.Train) {
		t.Fatal("seed has no effect on query constants")
	}
}

func TestAllQueriesPlanAndExecute(t *testing.T) {
	for _, name := range Names() {
		w, err := Load(name, Options{Seed: 2, Scale: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		opt := optimizer.New(w.DB, w.Stats)
		ex := exec.New(w.DB)
		for _, q := range w.All() {
			cp, err := opt.Plan(q)
			if err != nil {
				t.Fatalf("%s/%s: plan: %v", name, q.ID, err)
			}
			res := ex.Execute(cp, 0)
			if res.TimedOut {
				t.Fatalf("%s/%s: timed out without budget", name, q.ID)
			}
			if res.LatencyMs <= 0 {
				t.Fatalf("%s/%s: non-positive latency", name, q.ID)
			}
		}
	}
}

func TestQueriesAreConnectedAndWithinDPLimit(t *testing.T) {
	for _, name := range Names() {
		w, err := Load(name, Options{Seed: 3, Scale: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range w.All() {
			if !q.Connected() {
				t.Fatalf("%s/%s disconnected", name, q.ID)
			}
			if q.NumTables() < 3 || q.NumTables() > 12 {
				t.Fatalf("%s/%s has %d tables", name, q.ID, q.NumTables())
			}
		}
		if w.MaxTables < 3 {
			t.Fatalf("%s MaxTables %d", name, w.MaxTables)
		}
	}
}

// TestOptimizerRegretExists guards the core premise of the reproduction:
// there must be queries whose original plan a few Swap/Override edits improve
// substantially — otherwise FOSS has nothing to learn.
func TestOptimizerRegretExists(t *testing.T) {
	w, err := Load("job", Options{Seed: 1, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(w.DB, w.Stats)
	ex := exec.New(w.DB)
	rng := rand.New(rand.NewSource(7))
	bigWins := 0
	checked := 0
	for _, q := range w.All() {
		if q.NumTables() < 5 {
			continue
		}
		checked++
		if checked > 20 {
			break
		}
		cp, err := opt.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		orig := ex.Execute(cp, 0)
		icp, _ := plan.Extract(cp)
		space := plan.NewSpace(q.NumTables())
		best := orig.LatencyMs
		for try := 0; try < 120; try++ {
			cur := icp.Clone()
			var prev *plan.Action
			ok := true
			for s := 0; s < 1+rng.Intn(3); s++ {
				mask := space.Mask(cur, q, prev, plan.MaskConfig{})
				var legal []int
				for i, m := range mask {
					if m {
						legal = append(legal, i+1)
					}
				}
				if len(legal) == 0 {
					ok = false
					break
				}
				a := space.Decode(legal[rng.Intn(len(legal))])
				next, err := space.Apply(cur, a)
				if err != nil {
					ok = false
					break
				}
				cur = next
				prev = &a
			}
			if !ok {
				continue
			}
			hcp, err := opt.HintedPlan(q, cur)
			if err != nil {
				continue
			}
			if r := ex.Execute(hcp, best*1.2); !r.TimedOut && r.LatencyMs < best {
				best = r.LatencyMs
			}
		}
		if orig.LatencyMs/best > 1.8 {
			bigWins++
		}
	}
	if bigWins < 2 {
		t.Fatalf("only %d/%d large queries show >1.8x recoverable regret; the estimator traps are not firing", bigWins, checked)
	}
}

func TestEstimatorActuallyErrs(t *testing.T) {
	// The estimator must misestimate join cardinalities on correlated slices
	// (q-error well above 1); if it were exact there would be nothing to fix.
	w, err := Load("job", Options{Seed: 1, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(w.DB, w.Stats)
	ex := exec.New(w.DB)
	maxQErr := 1.0
	for _, q := range w.Train[:30] {
		cp, err := opt.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		res := ex.Execute(cp, 0)
		est := cp.Root.EstRows
		truth := float64(res.OutRows)
		if truth < 1 {
			truth = 1
		}
		if est < 1 {
			est = 1
		}
		qe := est / truth
		if qe < 1 {
			qe = 1 / qe
		}
		if qe > maxQErr {
			maxQErr = qe
		}
	}
	if maxQErr < 5 {
		t.Fatalf("max q-error %.1f; estimator is suspiciously accurate", maxQErr)
	}
}

var _ = query.Query{} // keep the import for helpers used above
