package workload

import (
	"math/rand"

	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/engine/stats"
	"github.com/foss-db/foss/internal/engine/storage"
	"github.com/foss-db/foss/internal/query"
)

// jobSchema declares the 21 IMDb-style relations of the Join Order Benchmark.
func jobSchema() *catalog.Schema {
	s := catalog.NewSchema()
	s.AddTable(catalog.NewTable("kind_type", col("id", true), col("kind", false)))
	s.AddTable(catalog.NewTable("info_type", col("id", true), col("info", false)))
	s.AddTable(catalog.NewTable("company_type", col("id", true), col("kind", false)))
	s.AddTable(catalog.NewTable("link_type", col("id", true), col("link", false)))
	s.AddTable(catalog.NewTable("role_type", col("id", true), col("role", false)))
	s.AddTable(catalog.NewTable("comp_cast_type", col("id", true), col("kind", false)))
	s.AddTable(catalog.NewTable("char_name", col("id", true), col("name_hash", false)))
	s.AddTable(catalog.NewTable("company_name", col("id", true), col("country_code", false), col("name_hash", false)))
	s.AddTable(catalog.NewTable("keyword", col("id", true), col("keyword_hash", false)))
	s.AddTable(catalog.NewTable("name", col("id", true), col("gender", false), col("name_pcode", false)))
	s.AddTable(catalog.NewTable("aka_name", col("id", true), col("person_id", true), col("name_hash", false)))
	s.AddTable(catalog.NewTable("title", col("id", true), col("kind_id", true), col("production_year", false), col("phonetic_code", false)))
	s.AddTable(catalog.NewTable("aka_title", col("id", true), col("movie_id", true), col("kind_id", false)))
	s.AddTable(catalog.NewTable("cast_info", col("id", true), col("person_id", true), col("movie_id", true), col("role_id", false), col("nr_order", false)))
	s.AddTable(catalog.NewTable("complete_cast", col("id", true), col("movie_id", true), col("subject_id", false), col("status_id", false)))
	s.AddTable(catalog.NewTable("movie_companies", col("id", true), col("movie_id", true), col("company_id", true), col("company_type_id", false)))
	s.AddTable(catalog.NewTable("movie_info", col("id", true), col("movie_id", true), col("info_type_id", false), col("info_val", false)))
	s.AddTable(catalog.NewTable("movie_info_idx", col("id", true), col("movie_id", true), col("info_type_id", false), col("info_val", false)))
	s.AddTable(catalog.NewTable("movie_keyword", col("id", true), col("movie_id", true), col("keyword_id", true)))
	s.AddTable(catalog.NewTable("movie_link", col("id", true), col("movie_id", true), col("linked_movie_id", true), col("link_type_id", false)))
	s.AddTable(catalog.NewTable("person_info", col("id", true), col("person_id", true), col("info_type_id", false), col("info_val", false)))

	s.AddFK("title", "kind_id", "kind_type", "id")
	s.AddFK("aka_title", "movie_id", "title", "id")
	s.AddFK("aka_name", "person_id", "name", "id")
	s.AddFK("cast_info", "person_id", "name", "id")
	s.AddFK("cast_info", "movie_id", "title", "id")
	s.AddFK("cast_info", "role_id", "role_type", "id")
	s.AddFK("complete_cast", "movie_id", "title", "id")
	s.AddFK("complete_cast", "subject_id", "comp_cast_type", "id")
	s.AddFK("complete_cast", "status_id", "comp_cast_type", "id")
	s.AddFK("movie_companies", "movie_id", "title", "id")
	s.AddFK("movie_companies", "company_id", "company_name", "id")
	s.AddFK("movie_companies", "company_type_id", "company_type", "id")
	s.AddFK("movie_info", "movie_id", "title", "id")
	s.AddFK("movie_info", "info_type_id", "info_type", "id")
	s.AddFK("movie_info_idx", "movie_id", "title", "id")
	s.AddFK("movie_info_idx", "info_type_id", "info_type", "id")
	s.AddFK("movie_keyword", "movie_id", "title", "id")
	s.AddFK("movie_keyword", "keyword_id", "keyword", "id")
	s.AddFK("movie_link", "movie_id", "title", "id")
	s.AddFK("movie_link", "linked_movie_id", "title", "id")
	s.AddFK("movie_link", "link_type_id", "link_type", "id")
	s.AddFK("person_info", "person_id", "name", "id")
	s.AddFK("person_info", "info_type_id", "info_type", "id")
	return s
}

// LoadJOB generates the JOB-like workload.
func LoadJOB(opts Options) (*Workload, error) {
	opts = opts.normalized()
	schema := jobSchema()
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	db := storage.NewDB(schema)
	rng := rand.New(rand.NewSource(opts.Seed))
	sc := opts.Scale

	nTitle := scaled(12000, sc)
	nName := scaled(8000, sc)
	nCompany := scaled(2000, sc)
	nKeyword := scaled(4000, sc)
	nChar := scaled(3000, sc)

	// Tiny dimension tables.
	for i := 0; i < 7; i++ {
		db.Table("kind_type").AppendRow(int64(i), int64(i))
	}
	for i := 0; i < 40; i++ {
		db.Table("info_type").AppendRow(int64(i), int64(i))
	}
	for i := 0; i < 4; i++ {
		db.Table("company_type").AppendRow(int64(i), int64(i))
	}
	for i := 0; i < 18; i++ {
		db.Table("link_type").AppendRow(int64(i), int64(i))
	}
	for i := 0; i < 12; i++ {
		db.Table("role_type").AppendRow(int64(i), int64(i))
	}
	for i := 0; i < 4; i++ {
		db.Table("comp_cast_type").AppendRow(int64(i), int64(i))
	}
	for i := 0; i < nChar; i++ {
		db.Table("char_name").AppendRow(int64(i), int64(rng.Intn(1000)))
	}
	for i := 0; i < nCompany; i++ {
		// country codes Zipf-skewed: code 0 ("us") dominates
		db.Table("company_name").AppendRow(int64(i), int64(zipfRank(rng, 30, 2.2)), int64(rng.Intn(500)))
	}
	for i := 0; i < nKeyword; i++ {
		db.Table("keyword").AppendRow(int64(i), int64(rng.Intn(2000)))
	}
	for i := 0; i < nName; i++ {
		db.Table("name").AppendRow(int64(i), int64(rng.Intn(3)), int64(rng.Intn(26)))
	}

	// Titles: popularity rank == id; kind and year correlate with rank.
	// Popular (low id) titles are recent movies; unpopular ones are old or TV
	// episodes. This correlation is what single-column histograms miss.
	for i := 0; i < nTitle; i++ {
		year := popularityYear(rng, i, nTitle)
		kind := int64(0) // movie
		if i > nTitle/2 && rng.Float64() < 0.6 {
			kind = int64(1 + rng.Intn(6)) // tv series, episode, ...
		}
		db.Table("title").AppendRow(int64(i), kind, year, int64(rng.Intn(100)))
	}
	for i := 0; i < scaled(3000, sc); i++ {
		db.Table("aka_title").AppendRow(int64(i), int64(activeRank(rng, nTitle, 1.6, 0.35)), int64(rng.Intn(7)))
	}
	for i := 0; i < scaled(4000, sc); i++ {
		db.Table("aka_name").AppendRow(int64(i), int64(activeRank(rng, nName, 1.6, 0.4)), int64(rng.Intn(500)))
	}

	// cast_info: movie popularity Zipf; person popularity Zipf; role
	// correlates with order (leading roles are rare).
	for i := 0; i < scaled(60000, sc); i++ {
		movie := activeRank(rng, nTitle, 1.6, 0.35)
		person := activeRank(rng, nName, 1.6, 0.4)
		order := rng.Intn(30)
		role := int64(rng.Intn(12))
		if order < 3 {
			role = int64(rng.Intn(2)) // actor/actress for leads
		}
		db.Table("cast_info").AppendRow(int64(i), int64(person), int64(movie), role, int64(order))
	}
	for i := 0; i < scaled(5000, sc); i++ {
		db.Table("complete_cast").AppendRow(int64(i), int64(activeRank(rng, nTitle, 1.6, 0.35)), int64(rng.Intn(4)), int64(rng.Intn(4)))
	}
	for i := 0; i < scaled(20000, sc); i++ {
		movie := activeRank(rng, nTitle, 1.6, 0.35)
		// production companies (type 0/1) dominate for popular movies
		ctype := int64(rng.Intn(4))
		if movie < nTitle/10 {
			ctype = int64(rng.Intn(2))
		}
		db.Table("movie_companies").AppendRow(int64(i), int64(movie), int64(activeRank(rng, nCompany, 1.6, 0.4)), ctype)
	}
	// movie_info: info types cluster by popularity (budget/gross info exists
	// mostly for popular movies).
	for i := 0; i < scaled(40000, sc); i++ {
		movie := activeRank(rng, nTitle, 1.6, 0.35)
		var it int64
		if movie < nTitle/8 {
			it = int64(rng.Intn(10)) // rich info for popular titles
		} else {
			it = int64(10 + rng.Intn(30))
		}
		db.Table("movie_info").AppendRow(int64(i), int64(movie), it, int64(rng.Intn(1000)))
	}
	for i := 0; i < scaled(10000, sc); i++ {
		movie := activeRank(rng, nTitle, 1.6, 0.35)
		db.Table("movie_info_idx").AppendRow(int64(i), int64(movie), int64(rng.Intn(5)), int64(rng.Intn(100)))
	}
	for i := 0; i < scaled(25000, sc); i++ {
		db.Table("movie_keyword").AppendRow(int64(i), int64(activeRank(rng, nTitle, 1.6, 0.35)), int64(activeRank(rng, nKeyword, 1.6, 0.4)))
	}
	for i := 0; i < scaled(3000, sc); i++ {
		db.Table("movie_link").AppendRow(int64(i), int64(activeRank(rng, nTitle, 1.6, 0.35)), int64(activeRank(rng, nTitle, 1.6, 0.35)), int64(rng.Intn(18)))
	}
	for i := 0; i < scaled(15000, sc); i++ {
		db.Table("person_info").AppendRow(int64(i), int64(activeRank(rng, nName, 1.6, 0.4)), int64(rng.Intn(40)), int64(rng.Intn(1000)))
	}
	db.BuildAllIndexes()

	qs := jobQueries(rand.New(rand.NewSource(opts.Seed+1)), nTitle)
	mustValidate(qs, db)

	// Balsa-style random partition: 94 train / 19 test of the 113 queries.
	split := rand.New(rand.NewSource(opts.Seed + 2))
	perm := split.Perm(len(qs))
	var train, test []*query.Query
	for i, p := range perm {
		if i < 19 {
			test = append(test, qs[p])
		} else {
			train = append(train, qs[p])
		}
	}

	return &Workload{
		Name:      "job",
		DB:        db,
		Stats:     stats.Build(db, opts.StatsSampleFrac, opts.Seed+3),
		Train:     train,
		Test:      test,
		MaxTables: maxTables(qs),
	}, nil
}

// jobQueries builds the 33 templates / 113 queries of the JOB-like workload.
func jobQueries(rng *rand.Rand, nTitle int) []*query.Query {
	infoLow := func() int64 { return int64(rng.Intn(10)) }
	infoHigh := func() int64 { return int64(10 + rng.Intn(30)) }

	// Join fragments reused across templates.
	tTitle := tr("title", "t")
	tCI := tr("cast_info", "ci")
	tN := tr("name", "n")
	tMC := tr("movie_companies", "mc")
	tCN := tr("company_name", "cn")
	tCT := tr("company_type", "ct")
	tMI := tr("movie_info", "mi")
	tMIX := tr("movie_info_idx", "mi_idx")
	tIT := tr("info_type", "it")
	tIT2 := tr("info_type", "it2")
	tMK := tr("movie_keyword", "mk")
	tK := tr("keyword", "k")
	tKT := tr("kind_type", "kt")
	tRT := tr("role_type", "rt")
	tAN := tr("aka_name", "an")
	tAT := tr("aka_title", "at")
	tCC := tr("complete_cast", "cc")
	tCCT := tr("comp_cast_type", "cct")
	tML := tr("movie_link", "ml")
	tLT := tr("link_type", "lt")
	tPI := tr("person_info", "pi")

	jTCi := jp("ci", "movie_id", "t", "id")
	jCiN := jp("ci", "person_id", "n", "id")
	jTMc := jp("mc", "movie_id", "t", "id")
	jMcCn := jp("mc", "company_id", "cn", "id")
	jMcCt := jp("mc", "company_type_id", "ct", "id")
	jTMi := jp("mi", "movie_id", "t", "id")
	jMiIt := jp("mi", "info_type_id", "it", "id")
	jTMix := jp("mi_idx", "movie_id", "t", "id")
	jMixIt := jp("mi_idx", "info_type_id", "it", "id")
	jMixIt2 := jp("mi_idx", "info_type_id", "it2", "id")
	jTMk := jp("mk", "movie_id", "t", "id")
	jMkK := jp("mk", "keyword_id", "k", "id")
	jTKt := jp("t", "kind_id", "kt", "id")
	jCiRt := jp("ci", "role_id", "rt", "id")
	jAnN := jp("an", "person_id", "n", "id")
	jAtT := jp("at", "movie_id", "t", "id")
	jCcT := jp("cc", "movie_id", "t", "id")
	jCcCct := jp("cc", "subject_id", "cct", "id")
	jMlT := jp("ml", "movie_id", "t", "id")
	jMlLt := jp("ml", "link_type_id", "lt", "id")
	jPiN := jp("pi", "person_id", "n", "id")
	jPiIt2 := jp("pi", "info_type_id", "it2", "id")

	templates := []template{
		// --- 3-4 table templates (families 1-10) ---
		{"1", []query.TableRef{tTitle, tMIX, tIT}, []query.JoinPred{jTMix, jMixIt},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("it", "id", int64(r.Intn(5))), yearFilter(r, "t", "production_year")}
			}},
		{"2", []query.TableRef{tTitle, tMI, tIT}, []query.JoinPred{jTMi, jMiIt},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("it", "id", infoLow()), yearFilter(r, "t", "production_year")}
			}},
		{"3", []query.TableRef{tTitle, tCI, tN}, []query.JoinPred{jTCi, jCiN},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("n", "gender", int64(r.Intn(3))), yearFilter(r, "t", "production_year")}
			}},
		{"4", []query.TableRef{tTitle, tMK, tK}, []query.JoinPred{jTMk, jMkK},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fLt("k", "keyword_hash", int64(50+r.Intn(400))), yearFilter(r, "t", "production_year")}
			}},
		{"5", []query.TableRef{tTitle, tMC, tCN}, []query.JoinPred{jTMc, jMcCn},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("cn", "country_code", int64(r.Intn(3))), yearFilter(r, "t", "production_year")}
			}},
		{"6", []query.TableRef{tTitle, tMC, tCT}, []query.JoinPred{jTMc, jMcCt},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("ct", "id", int64(r.Intn(4))), yearFilter(r, "t", "production_year")}
			}},
		{"7", []query.TableRef{tTitle, tKT, tMI}, []query.JoinPred{jTKt, jTMi},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("kt", "id", int64(r.Intn(3))), fEq("mi", "info_type_id", infoLow())}
			}},
		{"8", []query.TableRef{tTitle, tAT, tKT}, []query.JoinPred{jAtT, jTKt},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("kt", "id", int64(r.Intn(2))), yearFilter(r, "t", "production_year")}
			}},
		{"9", []query.TableRef{tTitle, tCC, tCCT}, []query.JoinPred{jCcT, jCcCct},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("cct", "id", int64(r.Intn(4))), yearFilter(r, "t", "production_year")}
			}},
		{"10", []query.TableRef{tTitle, tML, tLT}, []query.JoinPred{jMlT, jMlLt},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fIn("lt", "id", int64(r.Intn(9)), int64(9+r.Intn(9))), yearFilter(r, "t", "production_year")}
			}},

		// --- 4-5 table templates (families 11-20) ---
		{"11", []query.TableRef{tTitle, tCI, tN, tRT}, []query.JoinPred{jTCi, jCiN, jCiRt},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("rt", "id", int64(r.Intn(2))), fEq("n", "gender", int64(r.Intn(3))), yearFilter(r, "t", "production_year")}
			}},
		{"12", []query.TableRef{tTitle, tMC, tCN, tCT}, []query.JoinPred{jTMc, jMcCn, jMcCt},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("cn", "country_code", 0), fEq("ct", "id", int64(r.Intn(2))), yearFilter(r, "t", "production_year")}
			}},
		{"13", []query.TableRef{tTitle, tMI, tMIX, tIT}, []query.JoinPred{jTMi, jTMix, jMixIt},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("it", "id", int64(r.Intn(5))), fEq("mi", "info_type_id", infoLow()), yearFilter(r, "t", "production_year")}
			}},
		{"14", []query.TableRef{tTitle, tMK, tK, tMI}, []query.JoinPred{jTMk, jMkK, jTMi},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fLt("k", "keyword_hash", int64(100+r.Intn(300))), fEq("mi", "info_type_id", infoHigh())}
			}},
		{"15", []query.TableRef{tTitle, tCI, tN, tAN}, []query.JoinPred{jTCi, jCiN, jAnN},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("n", "gender", int64(r.Intn(2))), yearFilter(r, "t", "production_year")}
			}},
		{"16", []query.TableRef{tTitle, tKT, tMIX, tIT}, []query.JoinPred{jTKt, jTMix, jMixIt},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("kt", "id", 0), fEq("it", "id", int64(r.Intn(5))), fGt("mi_idx", "info_val", int64(r.Intn(60)))}
			}},
		{"17", []query.TableRef{tTitle, tCC, tCCT, tMK}, []query.JoinPred{jCcT, jCcCct, jTMk},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("cct", "id", int64(r.Intn(4))), yearFilter(r, "t", "production_year")}
			}},
		{"18", []query.TableRef{tTitle, tML, tLT, tKT}, []query.JoinPred{jMlT, jMlLt, jTKt},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("kt", "id", int64(r.Intn(2))), fLt("lt", "id", int64(3+r.Intn(10)))}
			}},
		{"19", []query.TableRef{tN, tPI, tIT2, tCI}, []query.JoinPred{jPiN, jPiIt2, jCiN},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("n", "gender", int64(r.Intn(3))), fEq("pi", "info_type_id", int64(r.Intn(40)))}
			}},
		{"20", []query.TableRef{tTitle, tCI, tRT, tMI}, []query.JoinPred{jTCi, jCiRt, jTMi},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("rt", "id", int64(r.Intn(12))), fEq("mi", "info_type_id", infoLow()), yearFilter(r, "t", "production_year")}
			}},

		// --- 5-6 table templates (families 21-28) ---
		{"21", []query.TableRef{tTitle, tCI, tN, tMC, tCN}, []query.JoinPred{jTCi, jCiN, jTMc, jMcCn},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("cn", "country_code", int64(r.Intn(2))), fEq("n", "gender", int64(r.Intn(3))), yearFilter(r, "t", "production_year")}
			}},
		{"22", []query.TableRef{tTitle, tMI, tIT, tMIX, tIT2}, []query.JoinPred{jTMi, jMiIt, jTMix, jMixIt2},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("it", "id", infoLow()), fEq("it2", "id", int64(r.Intn(5))), yearFilter(r, "t", "production_year")}
			}},
		{"23", []query.TableRef{tTitle, tMK, tK, tMC, tCN}, []query.JoinPred{jTMk, jMkK, jTMc, jMcCn},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("cn", "country_code", 0), fLt("k", "keyword_hash", int64(100+r.Intn(400)))}
			}},
		{"24", []query.TableRef{tTitle, tCI, tN, tKT, tRT}, []query.JoinPred{jTCi, jCiN, jTKt, jCiRt},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("kt", "id", 0), fEq("rt", "id", int64(r.Intn(2))), yearFilter(r, "t", "production_year")}
			}},
		{"25", []query.TableRef{tTitle, tMC, tCN, tMI, tIT}, []query.JoinPred{jTMc, jMcCn, jTMi, jMiIt},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("cn", "country_code", int64(r.Intn(3))), fEq("it", "id", infoLow()), yearFilter(r, "t", "production_year")}
			}},
		{"26", []query.TableRef{tTitle, tMK, tK, tCI, tN}, []query.JoinPred{jTMk, jMkK, jTCi, jCiN},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fLt("k", "keyword_hash", int64(50+r.Intn(200))), fEq("n", "gender", int64(r.Intn(2)))}
			}},
		{"27", []query.TableRef{tTitle, tCC, tCCT, tMK, tK}, []query.JoinPred{jCcT, jCcCct, jTMk, jMkK},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("cct", "id", int64(r.Intn(4))), fLt("k", "keyword_hash", int64(100+r.Intn(300)))}
			}},
		{"28", []query.TableRef{tTitle, tML, tLT, tMK, tK}, []query.JoinPred{jMlT, jMlLt, jTMk, jMkK},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fLt("lt", "id", int64(4+r.Intn(10))), fLt("k", "keyword_hash", int64(100+r.Intn(400)))}
			}},

		// --- 6-8 table templates (families 29-33) ---
		{"29", []query.TableRef{tTitle, tCI, tN, tMC, tCN, tCT}, []query.JoinPred{jTCi, jCiN, jTMc, jMcCn, jMcCt},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("cn", "country_code", 0), fEq("ct", "id", int64(r.Intn(2))), fEq("n", "gender", int64(r.Intn(3))), yearFilter(r, "t", "production_year")}
			}},
		{"30", []query.TableRef{tTitle, tMI, tIT, tCI, tN, tRT}, []query.JoinPred{jTMi, jMiIt, jTCi, jCiN, jCiRt},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("it", "id", infoLow()), fEq("rt", "id", int64(r.Intn(2))), yearFilter(r, "t", "production_year")}
			}},
		{"31", []query.TableRef{tTitle, tMK, tK, tMI, tMIX, tIT}, []query.JoinPred{jTMk, jMkK, jTMi, jTMix, jMixIt},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fLt("k", "keyword_hash", int64(100+r.Intn(200))), fEq("it", "id", int64(r.Intn(5))), fEq("mi", "info_type_id", infoLow())}
			}},
		{"32", []query.TableRef{tTitle, tCI, tN, tMK, tK, tKT, tRT}, []query.JoinPred{jTCi, jCiN, jTMk, jMkK, jTKt, jCiRt},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("kt", "id", 0), fEq("rt", "id", int64(r.Intn(2))), fLt("k", "keyword_hash", int64(100+r.Intn(300))), yearFilter(r, "t", "production_year")}
			}},
		{"33", []query.TableRef{tTitle, tCI, tN, tMC, tCN, tMI, tIT, tKT}, []query.JoinPred{jTCi, jCiN, jTMc, jMcCn, jTMi, jMiIt, jTKt},
			func(r *rand.Rand) []query.Filter {
				return []query.Filter{fEq("kt", "id", 0), fEq("cn", "country_code", 0), fEq("it", "id", infoLow()), fEq("n", "gender", int64(r.Intn(2))), yearFilter(r, "t", "production_year")}
			}},
	}

	// 113 queries over 33 templates: the first 14 templates get 4 variants,
	// the rest get 3 (14*4 + 19*3 = 113), echoing JOB's uneven families.
	var qs []*query.Query
	for i, tpl := range templates {
		count := 3
		if i < 14 {
			count = 4
		}
		qs = append(qs, tpl.instantiate(rng, count)...)
	}
	return qs
}
