package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the bit-identical replay guarantee on the decision
// paths: the packages whose outputs land in plans, hints, tier routes, WAL
// records, and catalog fingerprints (internal/planner, internal/learner,
// internal/tier, internal/aam, the gate's hash ring, and the versioned
// catalog — whose epoch hash replicas compare to detect divergence) must not
// consult ambient entropy.
//
// Three concrete prohibitions:
//
//  1. Global math/rand functions (Intn, Float64, Shuffle, ...). Seeded
//     generators — rand.New(rand.NewSource(seed)) and methods on a
//     *rand.Rand — are the sanctioned idiom and stay legal.
//
//  2. Wall-clock reads outside the latency-measurement idiom. time.Now()
//     is allowed only when its result is assigned to a variable that the
//     same function later feeds to time.Since or (time.Time).Sub — i.e.
//     `start := time.Now(); ...; elapsed := time.Since(start)`. Anything
//     else (seeding a generator from time.Now().UnixNano() being the
//     classic offender) is a finding.
//
//  3. Raw map-range emission: a `for k, v := range m` over a map whose body
//     appends into a slice visible outside the loop, sends on a channel, or
//     calls an emission-verb method (Append/Write/Encode/Emit/Journal)
//     publishes Go's randomized iteration order. Appending is forgiven when
//     the same function sorts the destination after the loop — the
//     collect-then-sort idiom tier.Memory.Export uses.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "decision paths must not read ambient entropy or emit map order",
	PkgScope: func(path string) bool {
		return pathHasSuffix(path,
			"internal/planner", "internal/learner", "internal/tier",
			"internal/aam", "internal/gate", "internal/engine/catalog")
	},
	FileScope: func(path, filename string) bool {
		// Only the consistent-hash ring in internal/gate is a decision
		// path; the proxy around it does timeouts and failover on purpose.
		if pathHasSuffix(path, "internal/gate") {
			return strings.HasSuffix(filename, "/ring.go")
		}
		return true
	},
	Run: runDeterminism,
}

// globalRandFuncs are the math/rand (and v2) package functions backed by the
// shared, non-reproducible global source. Constructors (New, NewSource,
// NewZipf, NewPCG, NewChaCha8) are deliberately absent.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint": true, "Uint64N": true, "Uint32N": true,
}

// emissionVerbs are method names whose invocation inside a map-range body is
// treated as publishing the iteration order (WAL appends, hint encoders,
// buffer writers).
var emissionVerbs = map[string]bool{
	"Append": true, "Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Encode": true, "Emit": true, "Journal": true,
}

func runDeterminism(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGlobalRand(p, fd.Body)
			checkWallClock(p, fd.Body)
			checkMapEmission(p, fd.Body)
		}
	}
}

func checkGlobalRand(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := pkgFuncOf(p.Info, call)
		if !ok || (pkg != "math/rand" && pkg != "math/rand/v2") {
			return true
		}
		if globalRandFuncs[name] {
			p.Reportf(call.Pos(),
				"global math/rand.%s uses the shared unseeded source; thread a seeded *rand.Rand through instead", name)
		}
		return true
	})
}

// checkWallClock flags time.Now() calls that are not part of a timing idiom.
func checkWallClock(p *Pass, body *ast.BlockStmt) {
	// First pass: variables consumed by time.Since(v) or by either side of
	// x.Sub(v), anywhere in the function (including deferred closures) —
	// both ends of a Sub are part of the elapsed-time idiom.
	timed := map[types.Object]bool{}
	mark := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			timed[p.Info.Uses[id]] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if pkgFuncCall(p.Info, call, "time", "Since") {
			mark(call.Args[0])
			return true
		}
		if recv, fn, isMethod := methodCallOf(p.Info, call); isMethod &&
			fn.Name() == "Sub" && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			mark(call.Args[0])
			mark(recv)
		}
		return true
	})

	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || !pkgFuncCall(p.Info, call, "time", "Now") {
			return true
		}
		if !timingIdiom(p, call, stack, timed) {
			p.Reportf(call.Pos(),
				"wall-clock read outside a timing idiom; only `v := time.Now()` later consumed by time.Since(v)/x.Sub(v) is deterministic-replay safe")
		}
		return true
	})
}

// timingIdiom reports whether the time.Now() call at the top of stack is the
// sole RHS of an assignment to a variable the function times with
// time.Since/Sub.
func timingIdiom(p *Pass, call *ast.CallExpr, stack []ast.Node, timed map[types.Object]bool) bool {
	if len(stack) < 2 {
		return false
	}
	asg, ok := stack[len(stack)-2].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || asg.Rhs[0] != call {
		return false
	}
	lhs, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Info.Defs[lhs]
	if obj == nil {
		obj = p.Info.Uses[lhs]
	}
	return obj != nil && timed[obj]
}

// sortFuncs are the package sort entry points that neutralize collect-order.
var sortFuncs = map[string]bool{
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	"Strings": true, "Ints": true, "Float64s": true,
}

// checkMapEmission flags order-publishing statements inside map ranges.
func checkMapEmission(p *Pass, body *ast.BlockStmt) {
	// Destinations sorted anywhere in this function, by expression text:
	// append targets matching one are exempt (collect-then-sort idiom).
	sorted := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if pkg, name, isFn := pkgFuncOf(p.Info, call); isFn {
			isSort := (pkg == "sort" && sortFuncs[name]) ||
				(pkg == "slices" && strings.HasPrefix(name, "Sort"))
			if isSort {
				sorted[types.ExprString(call.Args[0])] = true
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.SendStmt:
				p.Reportf(s.Pos(), "channel send inside a map range publishes map iteration order")
			case *ast.CallExpr:
				if id, isID := s.Fun.(*ast.Ident); isID && id.Name == "append" && len(s.Args) > 0 {
					dst := types.ExprString(s.Args[0])
					if !sorted[dst] {
						p.Reportf(s.Pos(),
							"append to %s inside a map range emits map iteration order; sort %s after the loop or iterate sorted keys", dst, dst)
					}
					return true
				}
				if _, fn, isMethod := methodCallOf(p.Info, s); isMethod && emissionVerbs[fn.Name()] {
					p.Reportf(s.Pos(),
						"%s call inside a map range emits map iteration order; collect and sort first", fn.Name())
				}
			}
			return true
		})
		return true
	})
}
