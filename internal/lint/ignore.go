package lint

import (
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	rules  []string // rule names, or ["all"]
	reason string
	used   bool
}

// parseIgnores scans a package's comments for //lint:ignore directives.
// The accepted grammar is
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// and a directive suppresses findings of the named rules on its own line or
// the line immediately below (so it can trail the offending statement or sit
// on its own line above it). A directive with no reason is returned with an
// empty reason — the runner turns that into a finding instead of honoring it.
func parseIgnores(fset *token.FileSet, pkg *Package) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				d := &ignoreDirective{pos: fset.Position(c.Pos())}
				if len(fields) > 0 {
					d.rules = strings.Split(fields[0], ",")
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// matches reports whether the directive covers a diagnostic.
func (d *ignoreDirective) matches(diag Diagnostic) bool {
	if diag.Pos.Filename != d.pos.Filename {
		return false
	}
	if diag.Pos.Line != d.pos.Line && diag.Pos.Line != d.pos.Line+1 {
		return false
	}
	for _, r := range d.rules {
		if r == "all" || r == diag.Rule {
			return true
		}
	}
	return false
}

// applyIgnores filters diags through the package's directives. Malformed
// directives (no rule, or no reason) suppress nothing and are reported as
// rule-"ignore" findings; valid ones knock out matching diagnostics and are
// tallied. The returned slice is the surviving findings plus the directive
// findings.
func applyIgnores(diags []Diagnostic, dirs []*ignoreDirective) (kept []Diagnostic, suppressed int) {
	valid := make([]*ignoreDirective, 0, len(dirs))
	for _, d := range dirs {
		switch {
		case len(d.rules) == 0:
			kept = append(kept, Diagnostic{
				Pos:     d.pos,
				Rule:    "ignore",
				Message: "lint:ignore directive names no rule (want //lint:ignore <rule> <reason>)",
			})
		case d.reason == "":
			kept = append(kept, Diagnostic{
				Pos:     d.pos,
				Rule:    "ignore",
				Message: "lint:ignore directive has no reason — the reason is mandatory, it is the audit trail",
			})
		default:
			valid = append(valid, d)
		}
	}
	for _, diag := range diags {
		ignored := false
		for _, d := range valid {
			if d.matches(diag) {
				d.used = true
				ignored = true
				suppressed++
				break
			}
		}
		if !ignored {
			kept = append(kept, diag)
		}
	}
	return kept, suppressed
}
