// Package lint is FOSS's in-tree static-analysis suite: a zero-dependency
// driver (stdlib go/parser + go/types only — go.mod stays empty) that loads
// the whole module, type-checks it, and runs a pluggable set of analyzers,
// each encoding one load-bearing invariant the repository's PRs established
// in prose:
//
//   - determinism: decision paths never consult ambient entropy (global
//     math/rand, wall clock outside timing idioms) and never emit
//     map-iteration order into plans, hints, or WAL records (PR 1/2).
//   - goroutine: internal/service and internal/shard never start raw
//     goroutines — everything flows through the wg-tracked Loop.spawn /
//     drain machinery so Close can prove the loop quiesced (PR 5).
//   - sentinel: fosserr sentinels are compared with errors.Is, never ==,
//     and every sentinel is re-exported at the root package (PR 3).
//   - fsyncrename: in internal/store an os.Rename durability point is
//     always preceded by a File.Sync in the same function (PR 4).
//   - ctxfirst: exported blocking APIs take context.Context first (PR 3).
//   - statsorder: atomic counters bump before Histogram.Observe on the
//     same stats struct, preserving the torn-read snapshot audit (PR 7).
//
// Diagnostics print as "file:line: [rule] message". A finding can be
// suppressed in source with a mandatory-reason directive on the same or the
// preceding line:
//
//	//lint:ignore <rule> <reason>
//
// A directive without a reason is itself a finding (rule "ignore");
// suppressions are counted and surfaced in the run summary, never silent.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, positioned in the loaded fileset.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the canonical "file:line: [rule] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Analyzer is one pluggable rule. PkgScope limits which packages the rule
// inspects (nil = every loaded package); FileScope refines that to
// individual files (nil = every file of an in-scope package). Scoping is
// lifted wholesale when the runner is Unscoped — that is how the seeded
// violation fixtures under testdata/ are proven to fire.
type Analyzer struct {
	Name string
	Doc  string

	PkgScope  func(pkgPath string) bool
	FileScope func(pkgPath, filename string) bool

	Run func(p *Pass)
}

// Pass is one (analyzer, package) unit of work. Files holds only the files
// the analyzer's scope admits; TypesInfo/TypesPkg cover the whole package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Fset     *token.FileSet
	Files    []*ast.File
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding for this pass's rule.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// ---- shared AST/type helpers used by several analyzers ----

// pkgFuncCall reports whether call invokes the package-level function
// pkg.name (matching the import path, not the local alias), e.g.
// pkgFuncCall(info, c, "math/rand", "Intn").
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	p, n, ok := pkgFuncOf(info, call)
	return ok && p == pkgPath && n == name
}

// pkgFuncOf resolves call's callee as a package-qualified function,
// returning its import path and name.
func pkgFuncOf(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// methodCallOf resolves call as a method invocation, returning the receiver
// expression and the *types.Func. Package-qualified function calls are
// rejected (they have no receiver expression).
func methodCallOf(info *types.Info, call *ast.CallExpr) (recv ast.Expr, fn *types.Func, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, false
	}
	if id, isID := sel.X.(*ast.Ident); isID {
		if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
			return nil, nil, false
		}
	}
	f, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || f.Type().(*types.Signature).Recv() == nil {
		return nil, nil, false
	}
	return sel.X, f, true
}

// rootIdent strips selectors, indexes, parens, stars, and type asserts off
// an expression and returns the root identifier, or nil (e.g. the root is a
// call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// namedTypeIs reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func namedTypeIs(t types.Type, pkgPath, name string) bool {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// pathHasSuffix reports whether an import path ends with one of the given
// slash-separated suffixes (matched on component boundaries, so
// "internal/gate" matches ".../internal/gate" but not ".../internal/gateway").
func pathHasSuffix(path string, suffixes ...string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// sortDiags orders diagnostics by file, line, column, then rule — the
// stable presentation order of every run.
func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}
