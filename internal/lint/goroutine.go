package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Goroutine enforces PR 5's lifecycle contract in internal/service and
// internal/shard: Loop.Close proves quiescence by draining a WaitGroup, so
// every goroutine in those packages must be accounted for. A `go` statement
// is legal only when it is
//
//   - inside the spawn helper itself (the one place the wg.Add/Done pairing
//     is centralized),
//   - a wg-tracked launch: the spawned closure defers W.Done() and the same
//     function called W.Add(...) before the go statement (Router.Close's
//     parallel drain), or
//   - an awaited waiter: the spawned closure closes a channel the enclosing
//     function receives from (Loop.Close's bounded wg.Wait select).
//
// Anything else is a raw goroutine Close cannot see — exactly the leak the
// lifecycle work eliminated.
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "service/shard goroutines must flow through spawn or tracked drain machinery",
	PkgScope: func(path string) bool {
		return pathHasSuffix(path, "internal/service", "internal/shard")
	},
	Run: runGoroutine,
}

func runGoroutine(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "spawn" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !trackedGoroutine(p, fd.Body, g) {
					p.Reportf(g.Pos(),
						"raw goroutine in %s: route it through the wg-tracked spawn helper or an awaited drain pattern so Close can drain it", fd.Name.Name)
				}
				return true
			})
		}
	}
}

// trackedGoroutine reports whether the go statement matches one of the two
// sanctioned shapes (wg-tracked or awaited-waiter).
func trackedGoroutine(p *Pass, fnBody *ast.BlockStmt, g *ast.GoStmt) bool {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	return wgTracked(p, fnBody, g, lit) || awaitedWaiter(p, fnBody, lit)
}

// wgTracked: closure defers W.Done() and W.Add(...) appears in the function
// before the go statement, for the same waitgroup expression W.
func wgTracked(p *Pass, fnBody *ast.BlockStmt, g *ast.GoStmt, lit *ast.FuncLit) bool {
	var wgExpr string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if recv, fn, isMethod := methodCallOf(p.Info, d.Call); isMethod &&
			fn.Name() == "Done" && isWaitGroup(p.Info.TypeOf(recv)) {
			wgExpr = types.ExprString(recv)
			return false
		}
		return true
	})
	if wgExpr == "" {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= g.Pos() {
			return true
		}
		if recv, fn, isMethod := methodCallOf(p.Info, call); isMethod &&
			fn.Name() == "Add" && isWaitGroup(p.Info.TypeOf(recv)) &&
			types.ExprString(recv) == wgExpr {
			found = true
		}
		return true
	})
	return found
}

// awaitedWaiter: closure closes a channel the enclosing function receives
// from (directly or in a select), so the goroutine's lifetime is bounded by
// the function's.
func awaitedWaiter(p *Pass, fnBody *ast.BlockStmt, lit *ast.FuncLit) bool {
	closed := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, isID := call.Fun.(*ast.Ident); isID && id.Name == "close" && len(call.Args) == 1 {
			if arg, isArg := call.Args[0].(*ast.Ident); isArg {
				closed[p.Info.Uses[arg]] = true
			}
		}
		return true
	})
	if len(closed) == 0 {
		return false
	}
	awaited := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		u, ok := n.(*ast.UnaryExpr)
		if !ok || u.Op != token.ARROW {
			return true
		}
		if id, isID := u.X.(*ast.Ident); isID && closed[p.Info.Uses[id]] {
			awaited = true
		}
		return true
	})
	return awaited
}

func isWaitGroup(t types.Type) bool {
	return t != nil && namedTypeIs(t, "sync", "WaitGroup")
}
