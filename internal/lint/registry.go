package lint

// All returns the full analyzer suite in presentation order. The pseudo-rule
// "ignore" (malformed //lint:ignore directives) is not listed here — it is
// part of the runner and cannot be deselected.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		Goroutine,
		Sentinel,
		FsyncRename,
		CtxFirst,
		StatsOrder,
	}
}
