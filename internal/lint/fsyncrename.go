package lint

import (
	"go/ast"
	"go/types"
)

// FsyncRename enforces PR 4's durability point in internal/store: the
// temp-write → fsync → rename protocol. An os.Rename that publishes a file
// into the state dir without a preceding (*os.File).Sync in the same
// function can surface a zero-length or torn file after a crash — the
// rename is only atomic about *which* inode appears, not about whether its
// bytes reached the platter.
//
// The mechanical form: every os.Rename call must be preceded, lexically
// within the same function, by a Sync() call on an *os.File.
var FsyncRename = &Analyzer{
	Name: "fsyncrename",
	Doc:  "store renames must be dominated by a File.Sync durability point",
	PkgScope: func(path string) bool {
		return pathHasSuffix(path, "internal/store")
	},
	Run: runFsyncRename,
}

func runFsyncRename(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRenames(p, fd)
		}
	}
}

func checkRenames(p *Pass, fd *ast.FuncDecl) {
	// Positions of every (*os.File).Sync call in the function.
	var syncs []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, fn, isMethod := methodCallOf(p.Info, call); isMethod &&
			fn.Name() == "Sync" && isOSFile(p.Info.TypeOf(recv)) {
			syncs = append(syncs, call)
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !pkgFuncCall(p.Info, call, "os", "Rename") {
			return true
		}
		dominated := false
		for _, s := range syncs {
			if s.Pos() < call.Pos() {
				dominated = true
				break
			}
		}
		if !dominated {
			p.Reportf(call.Pos(),
				"os.Rename in %s without a preceding File.Sync: the rename publishes bytes that may not be durable yet (fsync the temp file first)", fd.Name.Name)
		}
		return true
	})
}

func isOSFile(t types.Type) bool {
	return t != nil && namedTypeIs(t, "os", "File")
}
