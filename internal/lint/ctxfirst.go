package lint

import (
	"go/ast"
	"go/types"
)

// CtxFirst enforces PR 3's context plumbing convention on the public
// surface of the blocking layers (internal/core, service, shard, repl,
// gate): when an exported function, exported method, or exported interface
// method takes a context.Context, it takes it as the FIRST parameter. A ctx
// buried mid-signature reads as optional, breaks the mechanical
// "first-arg-cancels" expectation every caller in the tree relies on, and
// diverges from the stdlib convention the rest of the API follows.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "exported blocking APIs take context.Context as their first parameter",
	PkgScope: func(path string) bool {
		return pathHasSuffix(path,
			"internal/core", "internal/service", "internal/shard",
			"internal/repl", "internal/gate")
	},
	Run: runCtxFirst,
}

func runCtxFirst(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !exportedAPI(d) {
					continue
				}
				checkCtxPosition(p, d.Name.Name, d.Type)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					iface, ok := ts.Type.(*ast.InterfaceType)
					if !ok {
						continue
					}
					for _, m := range iface.Methods.List {
						ft, ok := m.Type.(*ast.FuncType)
						if !ok || len(m.Names) == 0 || !m.Names[0].IsExported() {
							continue
						}
						checkCtxPosition(p, ts.Name.Name+"."+m.Names[0].Name, ft)
					}
				}
			}
		}
	}
}

// exportedAPI: exported name, and for methods an exported receiver type
// (methods on unexported types are not part of the package's surface).
func exportedAPI(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

func checkCtxPosition(p *Pass, name string, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(p.Info.TypeOf(field.Type)) && idx != 0 {
			p.Reportf(field.Pos(),
				"%s takes context.Context as parameter %d; exported blocking APIs take ctx first", name, idx+1)
		}
		idx += n
	}
}

func isContextType(t types.Type) bool {
	return t != nil && namedTypeIs(t, "context", "Context")
}
