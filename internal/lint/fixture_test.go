package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// want is one expectation comment: `// want `regex“ trailing the line a
// finding must land on.
type want struct {
	file  string
	line  int
	regex *regexp.Regexp
	hit   bool
}

var wantRe = regexp.MustCompile("// want `([^`]+)`")

func collectWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regex: %v", e.Name(), i+1, err)
			}
			wants = append(wants, &want{file: e.Name(), line: i + 1, regex: re})
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}
	return wants
}

// TestFixtures proves every analyzer fires on its seeded-violation corpus
// and stays silent everywhere else in it: findings and want comments must
// match one-to-one.
func TestFixtures(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name)
			wants := collectWants(t, dir)
			sum, err := Run(Options{
				Patterns: []string{"./" + filepath.ToSlash(dir)},
				Rules:    []string{a.Name},
				Unscoped: true,
			})
			if err != nil {
				t.Fatalf("lint run: %v", err)
			}
			for _, d := range sum.Findings {
				if matchDiag(wants, d.Pos.Filename, d.Pos.Line, fmt.Sprintf("[%s] %s", d.Rule, d.Message)) {
					continue
				}
				t.Errorf("unexpected finding: %s", d)
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.regex)
				}
			}
		})
	}
}

func matchDiag(wants []*want, filename string, line int, rendered string) bool {
	base := filepath.Base(filename)
	for _, w := range wants {
		if w.hit || w.file != base || w.line != line {
			continue
		}
		if w.regex.MatchString(rendered) {
			w.hit = true
			return true
		}
	}
	return false
}

// TestSuiteCleanOnOwnPackage is the self-check: the analyzer suite, run
// scoped exactly as CI runs it, reports nothing on internal/lint itself.
func TestSuiteCleanOnOwnPackage(t *testing.T) {
	sum, err := Run(Options{Patterns: []string{"."}})
	if err != nil {
		t.Fatalf("lint run: %v", err)
	}
	for _, d := range sum.Findings {
		t.Errorf("finding on internal/lint: %s", d)
	}
}

// TestUnknownRule pins the error path -rules takes on a typo.
func TestUnknownRule(t *testing.T) {
	_, err := Run(Options{Patterns: []string{"."}, Rules: []string{"nope"}})
	if err == nil || !strings.Contains(err.Error(), `unknown rule "nope"`) {
		t.Fatalf("want unknown-rule error, got %v", err)
	}
}
