// Package fixture seeds statsorder-rule violations: counters bumping after
// the histogram they bound has already observed.
package fixture

import (
	"sync/atomic"
	"time"

	"github.com/foss-db/foss/internal/metrics"
)

type stats struct {
	served  atomic.Uint64
	hits    atomic.Uint64
	rawHits uint64
	hist    metrics.Histogram
}

func good(s *stats, d time.Duration) {
	s.served.Add(1)
	s.hits.Add(1)
	s.hist.Observe(d) // ok: counters first
}

func bad(s *stats, d time.Duration) {
	s.hist.Observe(d)
	s.served.Add(1) // want `atomic counter on "s" bumps after a Histogram\.Observe`
}

func badLegacyAtomic(s *stats, d time.Duration) {
	s.hist.Observe(d)
	atomic.AddUint64(&s.rawHits, 1) // want `atomic counter on "s" bumps after a Histogram\.Observe`
}

func branches(s *stats, d time.Duration, fast bool) {
	switch {
	case fast:
		s.hist.Observe(d)
	default:
		s.served.Add(1) // ok: sibling branch, not the same path
		s.hist.Observe(d)
	}
}

func twoStructs(a, b *stats, d time.Duration) {
	a.hist.Observe(d)
	b.served.Add(1) // ok: different stats struct
}

func guarded(s *stats, d time.Duration, tiered bool) {
	s.served.Add(1)
	if tiered {
		s.hits.Add(1) // ok: nested block preceding the observe
	}
	s.hist.Observe(d)
}
