// Package fixture seeds goroutine-rule violations: raw goroutines outside
// the spawn / wg-tracked / awaited-waiter shapes must fire.
package fixture

import "sync"

type loop struct{ wg sync.WaitGroup }

// spawn is the allowlisted centralization point: the analyzer skips it by
// name, mirroring service.Loop.spawn.
func (l *loop) spawn(f func()) {
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		f()
	}()
}

func raw() {
	go func() {}() // want `raw goroutine in raw`
}

func rawNamed(f func()) {
	go f() // want `raw goroutine in rawNamed`
}

func tracked(l *loop, f func()) {
	l.wg.Add(1)
	go func() { // ok: wg-tracked (Add before, deferred Done inside)
		defer l.wg.Done()
		f()
	}()
}

func waiter(l *loop) {
	done := make(chan struct{})
	go func() { // ok: awaited waiter (closes done, received below)
		l.wg.Wait()
		close(done)
	}()
	<-done
}

func doneWithoutAdd(l *loop) {
	go func() { // want `raw goroutine in doneWithoutAdd`
		defer l.wg.Done()
	}()
}

func closeWithoutAwait(l *loop) {
	done := make(chan struct{})
	go func() { // want `raw goroutine in closeWithoutAwait`
		close(done)
	}()
}
