// Package fixture seeds fsyncrename-rule violations: renames that publish
// bytes no Sync made durable.
package fixture

import "os"

func publishUnsynced(tmp *os.File, from, to string) error {
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(from, to) // want `os\.Rename in publishUnsynced without a preceding File\.Sync`
}

func publishSynced(tmp *os.File, from, to string) error {
	if err := tmp.Sync(); err != nil { // ok: durability point before the rename
		return err
	}
	return os.Rename(from, to)
}

func syncAfterRename(tmp *os.File, from, to string) error {
	if err := os.Rename(from, to); err != nil { // want `without a preceding File\.Sync`
		return err
	}
	return tmp.Sync()
}
