// Package fixture seeds determinism-rule violations: every `want` line must
// fire, every other line must stay silent. Loaded unscoped by the fixture
// tests and by the ci.sh rule-fires gate.
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

type wal struct{}

func (w *wal) Append(rec string) {}

func pick(n int) int {
	return rand.Intn(n) // want `global math/rand\.Intn`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand\.Shuffle`
}

func seeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed)) // ok: seeded generator
	return rng.Intn(n)
}

func seedFromClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `wall-clock read outside a timing idiom`
}

func stamp() int64 {
	now := time.Now() // want `wall-clock read outside a timing idiom`
	return now.UnixNano()
}

func timing() time.Duration {
	start := time.Now() // ok: consumed by time.Since below
	work()
	return time.Since(start)
}

func timingSub() time.Duration {
	t0 := time.Now() // ok: consumed by Sub below
	work()
	t1 := time.Now() // ok: receiver of Sub below
	return t1.Sub(t0)
}

func work() {}

func emitUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside a map range`
	}
	return keys
}

func emitSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // ok: sorted after the loop
	}
	sort.Strings(keys)
	return keys
}

func journal(w *wal, m map[string]int) {
	for k := range m {
		w.Append(k) // want `Append call inside a map range`
	}
}

func send(ch chan string, m map[string]int) {
	for k := range m {
		ch <- k // want `channel send inside a map range`
	}
}

func accumulate(m map[string]int) int {
	n := 0
	for _, v := range m { // ok: commutative fold, no order emitted
		n += v
	}
	return n
}
