// Catalog-shaped determinism violations: the versioned catalog's epoch hash
// is compared across replicas, so feeding a hasher in map order (or salting
// it with entropy) silently forks the fleet. Every `want` line must fire,
// every other line must stay silent.
package fixture

import (
	"hash/fnv"
	"math/rand"
	"sort"
)

type column struct{ name string }

func hashSchemaUnsorted(tables map[string][]column) uint64 {
	h := fnv.New64a()
	for name, cols := range tables {
		h.Write([]byte(name)) // want `Write call inside a map range`
		for _, c := range cols {
			h.Write([]byte(c.name)) // want `Write call inside a map range`
		}
	}
	return h.Sum64()
}

func hashSchemaSorted(tables map[string][]column) uint64 {
	names := make([]string, 0, len(tables))
	for name := range tables {
		names = append(names, name) // ok: sorted after the loop
	}
	sort.Strings(names)
	h := fnv.New64a()
	for _, name := range names {
		h.Write([]byte(name))
		for _, c := range tables[name] {
			h.Write([]byte(c.name))
		}
	}
	return h.Sum64()
}

func saltEpoch(epoch uint64) uint64 {
	return epoch ^ rand.Uint64() // want `global math/rand\.Uint64`
}
