// Package fixture seeds ctxfirst-rule violations: exported APIs burying
// context.Context past the first parameter.
package fixture

import "context"

type Server struct{}

func (s *Server) Serve(ctx context.Context, addr string) error { // ok: ctx first
	return nil
}

func (s *Server) Drain(timeout int, ctx context.Context) error { // want `Drain takes context\.Context as parameter 2`
	return nil
}

func Run(name string, seed int64, ctx context.Context) error { // want `Run takes context\.Context as parameter 3`
	return nil
}

func helper(name string, ctx context.Context) {} // ok: unexported

type internalServer struct{}

func (s *internalServer) Wait(gen uint64, ctx context.Context) {} // ok: unexported receiver type

type Source interface {
	Fetch(ctx context.Context, name string) ([]byte, error) // ok: ctx first
	Wait(gen uint64, ctx context.Context) error             // want `Source\.Wait takes context\.Context as parameter 2`
}
