// Package fixture seeds sentinel-rule violations: identity comparisons
// against sentinel errors, and a deliberately partial re-export surface.
package fixture

import (
	"errors"

	"github.com/foss-db/foss/internal/fosserr"
)

// Partial re-export surface: aliasing one sentinel obliges the package to
// carry all of them, so this line anchors the completeness finding.
var ErrNoPlan = fosserr.ErrNoPlan // want `fixture re-exports fosserr sentinels but is missing`

func classify(err error) string {
	if err == fosserr.ErrNotOnline { // want `fosserr\.ErrNotOnline compared with ==`
		return "offline"
	}
	if err != ErrNoPlan { // want `ErrNoPlan compared with !=`
		return "other"
	}
	if errors.Is(err, fosserr.ErrLoopClosed) { // ok: errors.Is
		return "closed"
	}
	if err == nil { // ok: nil check, not a sentinel comparison
		return "none"
	}
	return "plan"
}
