// Package fixture exercises the //lint:ignore directive machinery: a valid
// directive suppresses, a reasonless one is itself a finding and suppresses
// nothing.
package fixture

import "math/rand"

func suppressed(n int) int {
	//lint:ignore determinism fixture proves suppression works
	return rand.Intn(n) // ok: suppressed by the directive above
}

func reasonless(n int) int {
	//lint:ignore determinism
	return rand.Intn(n) // NOT suppressed: the directive above has no reason
}

func ruleless(n int) int {
	//lint:ignore
	return n
}
