package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package of the module under analysis.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (as the go command would) inside dir, parses and
// type-checks every matching non-standard package, and returns them in
// deterministic (import-path) order alongside the shared FileSet.
//
// Dependency types — including the whole standard library — are imported
// from compiler export data produced by a single `go list -export -deps`
// invocation, so the only toolchain requirement is the go command itself:
// no x/tools, no source-importing the stdlib, and the warm-cache wall time
// for the full module stays well under a second. Test files are not loaded;
// the invariants guard production paths (and several rules would drown in
// test scaffolding noise otherwise).
func Load(dir string, patterns []string) (*token.FileSet, []*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("lint: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, strings.TrimSpace(stderr.String()))
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			// go list -export already compiled the package, so a type error
			// here means the loader itself is wrong — surface it loudly
			// rather than analyzing half-typed syntax.
			return nil, nil, fmt.Errorf("lint: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return fset, pkgs, nil
}
