package lint

import (
	"go/ast"
	"strings"
)

// StatsOrder enforces PR 7's torn-read audit, module-wide: on any write
// path that touches both, atomic counters bump BEFORE the latency histogram
// observes. Readers snapshot histograms before counters, so this pairing is
// what makes every concurrent scrape satisfy Σ histogram counts ≤ served —
// an Observe that precedes its counters lets a scrape land in between and
// read a histogram ahead of the counter that bounds it.
//
// Mechanical form: within one statement list (block, case clause, comm
// clause — branches of a switch are independent paths and never compared
// against each other), no atomic-counter Add rooted at the same stats
// struct may appear in a statement AFTER one containing a Histogram.Observe
// on that struct. Function literals are separate bodies: a deferred
// closure's events are not part of the enclosing sequence.
var StatsOrder = &Analyzer{
	Name: "statsorder",
	Doc:  "atomic counters bump before Histogram.Observe on the same stats struct",
	Run:  runStatsOrder,
}

func runStatsOrder(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkStatsBody(p, fn.Body)
				}
			case *ast.FuncLit:
				checkStatsBody(p, fn.Body)
				return false // its nested blocks are checked via the recursion below
			}
			return true
		})
	}
}

// checkStatsBody walks every statement list reachable from body without
// crossing into nested function literals.
func checkStatsBody(p *Pass, body *ast.BlockStmt) {
	var walkList func(list []ast.Stmt)
	walkList = func(list []ast.Stmt) {
		// A switch or select body surfaces as a list of clauses. Clauses are
		// alternative paths, not a sequence — each body is its own list and
		// siblings are never compared against each other.
		if len(list) > 0 {
			switch list[0].(type) {
			case *ast.CaseClause, *ast.CommClause:
				for _, c := range list {
					switch cc := c.(type) {
					case *ast.CaseClause:
						walkList(cc.Body)
					case *ast.CommClause:
						walkList(cc.Body)
					}
				}
				return
			}
		}
		checkList(p, list)
		for _, s := range list {
			ast.Inspect(s, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.BlockStmt:
					walkList(x.List)
					return false
				}
				return true
			})
		}
	}
	walkList(body.List)
}

// checkList compares the order of counter-adds and histogram-observes among
// the top-level statements of one list. Events inside a statement's subtree
// share that statement's index, so an if/else containing both kinds is
// judged by its own inner lists, not here.
func checkList(p *Pass, list []ast.Stmt) {
	type event struct {
		idx     int
		pos     ast.Node
		observe bool
		root    string
	}
	var events []event
	for i, s := range list {
		ast.Inspect(s, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if root, ok := atomicAddRoot(p, call); ok {
				events = append(events, event{i, call, false, root})
			} else if root, ok := histObserveRoot(p, call); ok {
				events = append(events, event{i, call, true, root})
			}
			return true
		})
	}
	firstObserve := map[string]int{}
	for _, e := range events {
		if e.observe {
			if _, seen := firstObserve[e.root]; !seen {
				firstObserve[e.root] = e.idx
			}
		}
	}
	for _, e := range events {
		if e.observe {
			continue
		}
		if oi, seen := firstObserve[e.root]; seen && e.idx > oi {
			p.Reportf(e.pos.Pos(),
				"atomic counter on %q bumps after a Histogram.Observe on the same stats struct; counters must precede observes so concurrent scrapes stay coherent", e.root)
		}
	}
}

// atomicAddRoot matches X.Add(...) on a sync/atomic integer (or the
// package-level atomic.Add* forms) and returns the root identifier of the
// stats struct the counter hangs off.
func atomicAddRoot(p *Pass, call *ast.CallExpr) (string, bool) {
	if recv, fn, isMethod := methodCallOf(p.Info, call); isMethod && fn.Name() == "Add" {
		if fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
			if id := rootIdent(recv); id != nil {
				return id.Name, true
			}
		}
		return "", false
	}
	if pkg, name, ok := pkgFuncOf(p.Info, call); ok && pkg == "sync/atomic" &&
		strings.HasPrefix(name, "Add") && len(call.Args) > 0 {
		arg := call.Args[0]
		if u, isU := arg.(*ast.UnaryExpr); isU {
			arg = u.X
		}
		if id := rootIdent(arg); id != nil {
			return id.Name, true
		}
	}
	return "", false
}

// histObserveRoot matches X.Observe(...) where X is the metrics Histogram
// and returns the root identifier the histogram hangs off.
func histObserveRoot(p *Pass, call *ast.CallExpr) (string, bool) {
	recv, fn, isMethod := methodCallOf(p.Info, call)
	if !isMethod || fn.Name() != "Observe" {
		return "", false
	}
	if fn.Pkg() == nil || !pathHasSuffix(fn.Pkg().Path(), "internal/metrics") {
		return "", false
	}
	if id := rootIdent(recv); id != nil {
		return id.Name, true
	}
	return "", false
}
