package lint

import (
	"fmt"
	"time"
)

// Options configures one lint run.
type Options struct {
	// Dir is the working directory patterns resolve in (default ".").
	Dir string
	// Patterns are go-command package patterns (default ./...).
	Patterns []string
	// Rules restricts the run to the named analyzers (default: all).
	Rules []string
	// Unscoped lifts every analyzer's package/file scoping — used to prove
	// rules fire on the seeded-violation fixtures, which necessarily live
	// outside the production paths the scopes name.
	Unscoped bool
}

// Summary is the outcome of a run.
type Summary struct {
	// Findings are the surviving diagnostics in stable order (includes
	// rule-"ignore" findings for malformed directives).
	Findings []Diagnostic
	// Suppressed counts diagnostics knocked out by valid ignore directives.
	Suppressed int
	// IgnoreDirectives counts every //lint:ignore seen, valid or not.
	IgnoreDirectives int
	// Packages is the number of packages analyzed.
	Packages int
	// Duration is the wall time of load + analysis.
	Duration time.Duration
}

// Run loads the requested packages and applies the selected analyzers.
func Run(opts Options) (*Summary, error) {
	start := time.Now()
	analyzers, err := selectAnalyzers(opts.Rules)
	if err != nil {
		return nil, err
	}
	dir := opts.Dir
	if dir == "" {
		dir = "."
	}
	fset, pkgs, err := Load(dir, opts.Patterns)
	if err != nil {
		return nil, err
	}

	sum := &Summary{Packages: len(pkgs)}
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			if !opts.Unscoped && a.PkgScope != nil && !a.PkgScope(pkg.Path) {
				continue
			}
			files := pkg.Files
			if !opts.Unscoped && a.FileScope != nil {
				files = files[:0:0]
				for _, f := range pkg.Files {
					if a.FileScope(pkg.Path, fset.Position(f.Pos()).Filename) {
						files = append(files, f)
					}
				}
				if len(files) == 0 {
					continue
				}
			}
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Fset:     fset,
				Files:    files,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
		dirs := parseIgnores(fset, pkg)
		sum.IgnoreDirectives += len(dirs)
		kept, suppressed := applyIgnores(diags, dirs)
		sum.Suppressed += suppressed
		sum.Findings = append(sum.Findings, kept...)
	}
	sortDiags(sum.Findings)
	sum.Duration = time.Since(start)
	return sum, nil
}

// selectAnalyzers resolves rule names against the registry, defaulting to
// the full suite.
func selectAnalyzers(rules []string) ([]*Analyzer, error) {
	if len(rules) == 0 {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, r := range rules {
		a, ok := byName[r]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q (have %s)", r, ruleNames())
		}
		out = append(out, a)
	}
	return out, nil
}

func ruleNames() string {
	s := ""
	for i, a := range All() {
		if i > 0 {
			s += ", "
		}
		s += a.Name
	}
	return s
}
