package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Sentinel enforces PR 3's error-classification contract, module-wide:
//
//  1. A comparison against a sentinel error value — any package-level Err*
//     variable of type error, which covers internal/fosserr and the root
//     package's re-exports — must go through errors.Is, never == or !=.
//     Every layer wraps sentinels with %w, so an identity comparison is a
//     latent bug that works in unit tests and fails across one wrap.
//
//  2. Any package that re-exports fosserr sentinels (declares a var
//     initialized from one, as the root foss package does) must re-export
//     every sentinel fosserr declares: a partial surface strands callers
//     who classify errors without importing internal packages.
var Sentinel = &Analyzer{
	Name: "sentinel",
	Doc:  "fosserr sentinels: errors.Is comparisons only, complete root re-exports",
	Run:  runSentinel,
}

const fosserrPath = "internal/fosserr"

func runSentinel(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			for _, side := range []ast.Expr{be.X, be.Y} {
				if name, isSentinel := sentinelRef(p.Info, side); isSentinel {
					p.Reportf(be.Pos(),
						"%s compared with %s; sentinels travel wrapped (%%w) — use errors.Is(err, %s)",
						name, be.Op, name)
					break
				}
			}
			return true
		})
	}
	checkReexports(p)
}

// sentinelRef reports whether e denotes a package-level Err* variable of
// type error, returning its display name.
func sentinelRef(info *types.Info, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok || !strings.HasPrefix(obj.Name(), "Err") {
		return "", false
	}
	// Package-level (sentinel) vars only: locals named err... don't match
	// the Err prefix anyway, but be precise about scope.
	if obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	if !types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
		return "", false
	}
	return types.ExprString(e), true
}

// checkReexports: if this package aliases at least one fosserr sentinel
// (var X = fosserr.ErrY), it is a re-export surface and must carry all of
// them under their original names.
func checkReexports(p *Pass) {
	var fosserrPkg *types.Package
	for _, imp := range p.Pkg.Types.Imports() {
		if pathHasSuffix(imp.Path(), fosserrPath) {
			fosserrPkg = imp
			break
		}
	}
	if fosserrPkg == nil {
		return
	}

	// Collect this package's aliases of fosserr sentinels, remembering where
	// the re-export block lives so the diagnostic lands on it.
	aliased := map[string]bool{}
	var anchor token.Pos
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, v := range vs.Values {
					sel, ok := v.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					obj, ok := p.Info.Uses[sel.Sel].(*types.Var)
					if !ok || obj.Pkg() == nil || !pathHasSuffix(obj.Pkg().Path(), fosserrPath) {
						continue
					}
					if strings.HasPrefix(obj.Name(), "Err") {
						aliased[vs.Names[i].Name] = true
						if !anchor.IsValid() {
							anchor = vs.Names[i].Pos()
						}
					}
				}
			}
		}
	}
	if len(aliased) == 0 {
		return
	}

	var missing []string
	scope := fosserrPkg.Scope()
	for _, name := range scope.Names() {
		v, ok := scope.Lookup(name).(*types.Var)
		if !ok || !strings.HasPrefix(name, "Err") {
			continue
		}
		if !types.Identical(v.Type(), types.Universe.Lookup("error").Type()) {
			continue
		}
		if !aliased[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		p.Reportf(anchor, "%s re-exports fosserr sentinels but is missing %d of them: %s",
			p.Pkg.Types.Name(), len(missing), strings.Join(missing, ", "))
	}
}
