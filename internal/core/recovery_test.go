package core

import (
	"errors"
	"testing"

	"github.com/foss-db/foss/internal/backend"
	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/service"
	"github.com/foss-db/foss/internal/store"
	"github.com/foss-db/foss/internal/workload"
)

// recoveryConfig shrinks the training budget: recovery semantics do not
// depend on model quality.
func recoveryConfig(c *Config) {
	c.Learner.Iterations = 1
	c.Learner.RealPerIter = 5
	c.Learner.SimPerIter = 12
	c.Learner.ValidatePerIter = 5
	c.Learner.InferenceRollouts = 1 // greedy only: plan choice is pure weights
}

// durableLoopConfig keeps the drift detector quiet (this test is about
// durability, not adaptation) and checkpoints frequently.
func durableLoopConfig(st *store.Store) service.Config {
	return service.Config{
		Detector:          service.DetectorConfig{Window: 8, Threshold: 1e9, MinSamples: 8, NoveltyFrac: 0},
		Cooldown:          1 << 30,
		RetrainIterations: 1,
		Background:        false,
		Store:             st,
		CheckpointEvery:   0, // explicit checkpoints only: the test controls the cadence
	}
}

// TestCrashRecoveryBitIdentical is the acceptance-criteria test: run the
// online loop with a store attached, checkpoint mid-stream, keep serving
// (those records live only in the WAL), then "crash" — abandon the process
// state — and rebuild a fresh System from disk alone. The recovered doctor
// must resume at the pre-crash epoch, hold the pre-crash execution buffer,
// and serve bit-identical plans; a second recovery from the same directory
// must be indistinguishable from the first (WAL-replay determinism).
func TestCrashRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	sys := smallSystem(t, recoveryConfig)
	if err := sys.Train(nil); err != nil {
		t.Fatal(err)
	}
	info, err := sys.RecoverOnline(durableLoopConfig(st), st)
	if err != nil {
		t.Fatal(err)
	}
	if info.Recovered {
		t.Fatal("fresh store claims recovery")
	}

	queries := sys.W.Train[:10]
	// Serve + record the first half, checkpoint, then the second half: the
	// post-checkpoint feedback exists only in the WAL.
	for _, q := range queries[:5] {
		if _, _, err := sys.ServeStep(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Online().Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries[5:] {
		if _, _, err := sys.ServeStep(q); err != nil {
			t.Fatal(err)
		}
	}

	// The pre-crash ground truth: plans and buffer for the whole stream.
	wantPlans := make([]string, len(queries))
	wantLat := make([]float64, len(queries))
	for i, q := range queries {
		res, err := sys.Serve(q)
		if err != nil {
			t.Fatal(err)
		}
		wantPlans[i] = res.Eval.ICP.Key()
		wantLat[i] = sys.Execute(res.Eval.CP)
	}
	wantEpoch := sys.OnlineStats().Epoch
	wantBuffer := len(sys.ExportBuffer())
	preStats := sys.OnlineStats()
	if preStats.WALEntries == 0 {
		t.Fatal("no WAL entries journaled during serving")
	}
	if err := st.Close(); err != nil { // crash: the process state is gone
		t.Fatal(err)
	}

	recover := func(label string) (*System, RecoveryInfo, *store.Store) {
		st2, err := store.Open(dir)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		fresh := smallSystem(t, func(c *Config) {
			recoveryConfig(c)
			c.Seed = 777 // different init: recovery must overwrite every weight
		})
		info, err := fresh.RecoverOnline(durableLoopConfig(st2), st2)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !info.Recovered {
			t.Fatalf("%s: checkpoint on disk not recovered", label)
		}
		return fresh, info, st2
	}

	sysA, infoA, stA2 := recover("first recovery")
	if got := sysA.OnlineStats().Epoch; got != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", got, wantEpoch)
	}
	if infoA.WALReplayed == 0 {
		t.Fatal("post-checkpoint feedback not replayed from the WAL")
	}
	if got := len(sysA.ExportBuffer()); got != wantBuffer {
		t.Fatalf("recovered buffer has %d executions, want %d", got, wantBuffer)
	}
	if got := sysA.OnlineStats().RecoveredEpoch; got != wantEpoch {
		t.Fatalf("stats recovered epoch %d, want %d", got, wantEpoch)
	}
	for i, q := range queries {
		res, err := sysA.Serve(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Eval.ICP.Key() != wantPlans[i] {
			t.Fatalf("query %s: recovered plan %s != pre-crash %s", q.ID, res.Eval.ICP.Key(), wantPlans[i])
		}
		if lat := sysA.Execute(res.Eval.CP); lat != wantLat[i] {
			t.Fatalf("query %s: recovered latency %v != pre-crash %v", q.ID, lat, wantLat[i])
		}
	}

	// Determinism: a second, independent recovery from the same directory
	// reconstructs identical state — buffer order included (the AAM's
	// training-sample order depends on it). The first recovery's store must
	// release the directory lock first, as a real restart would.
	if err := stA2.Close(); err != nil {
		t.Fatal(err)
	}
	sysB, infoB, stB2 := recover("second recovery")
	defer stB2.Close()
	if infoA != infoB {
		t.Fatalf("recoveries diverge: %+v vs %+v", infoA, infoB)
	}
	bufA, bufB := sysA.ExportBuffer(), sysB.ExportBuffer()
	if len(bufA) != len(bufB) {
		t.Fatalf("buffer sizes diverge: %d vs %d", len(bufA), len(bufB))
	}
	for i := range bufA {
		if bufA[i].Query.ID != bufB[i].Query.ID || !bufA[i].ICP.Equal(bufB[i].ICP) ||
			bufA[i].Step != bufB[i].Step || bufA[i].LatencyMs != bufB[i].LatencyMs {
			t.Fatalf("buffer entry %d diverges: %+v vs %+v", i, bufA[i], bufB[i])
		}
	}
	stA, stB := sysA.OnlineStats(), sysB.OnlineStats()
	if stA.WindowMean != stB.WindowMean || stA.WindowNovel != stB.WindowNovel || stA.Replayed != stB.Replayed {
		t.Fatalf("detector state diverges: %+v vs %+v", stA, stB)
	}
}

// TestDDLWarmRestartResumesAtPostDDLCatalogEpoch: a DDL applied mid-stream
// checkpoints immediately, so a crash after it warm-starts on the evolved
// schema — same catalog epoch and hash, no re-applied migration, serving
// intact.
func TestDDLWarmRestartResumesAtPostDDLCatalogEpoch(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sys := smallSystem(t, recoveryConfig)
	if err := sys.Train(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RecoverOnline(durableLoopConfig(st), st); err != nil {
		t.Fatal(err)
	}
	for _, q := range sys.W.Train[:3] {
		if _, _, err := sys.ServeStep(q); err != nil {
			t.Fatal(err)
		}
	}
	epoch, err := sys.Online().ApplyDDL([]catalog.DDL{
		{Kind: catalog.DDLAddTable, Table: "evolved", Columns: []catalog.Column{{Name: "id", Indexed: true}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("catalog epoch %d after one DDL, want 1", epoch)
	}
	for _, q := range sys.W.Train[3:6] {
		if _, _, err := sys.ServeStep(q); err != nil {
			t.Fatal(err)
		}
	}
	wantHash := sys.CatalogHash()
	if err := st.Close(); err != nil { // crash
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	fresh := smallSystem(t, func(c *Config) { recoveryConfig(c); c.Seed = 999 })
	info, err := fresh.RecoverOnline(durableLoopConfig(st2), st2)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Recovered || info.CatalogEpoch != epoch {
		t.Fatalf("recovery info %+v, want recovered at catalog epoch %d", info, epoch)
	}
	if got := fresh.CatalogEpoch(); got != epoch {
		t.Fatalf("recovered system at catalog epoch %d, want %d", got, epoch)
	}
	if got := fresh.CatalogHash(); got != wantHash {
		t.Fatalf("recovered catalog hash %016x, want %016x", got, wantHash)
	}
	if got := fresh.Online().CatalogEpoch(); got != epoch {
		t.Fatalf("recovered loop at catalog epoch %d, want %d", got, epoch)
	}
	// The recovered doctor serves the steady workload on the evolved schema.
	if _, err := fresh.Serve(sys.W.Test[0]); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRejections is the table-driven guard around Load: snapshots
// from another backend, another format version, or a damaged file must be
// classified by sentinel errors — never loaded silently.
func TestSnapshotRejections(t *testing.T) {
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	recoveryConfig(&cfg)
	cfg.Learner.Iterations = 0
	newSys := func(be backend.Backend) *System {
		opts := []Option{}
		if be != nil {
			opts = append(opts, WithBackend(be))
		}
		sys, err := New(w, cfg, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	selinger := newSys(nil)
	blob, err := selinger.Save()
	if err != nil {
		t.Fatal(err)
	}
	env, err := store.Unseal(blob)
	if err != nil {
		t.Fatal(err)
	}
	reseal := func(backendName string, payload []byte) []byte {
		b, err := store.Seal(backendName, payload)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	corrupt := append([]byte(nil), blob...)
	corrupt[len(corrupt)/2] ^= 0x01

	cases := []struct {
		name   string
		target *System
		data   []byte
		want   error
	}{
		{"cross-backend (selinger snapshot into gaussim)", newSys(backend.NewGaussim(w.DB, w.Stats)), blob, fosserr.ErrBackendMismatch},
		{"forged backend tag", selinger, reseal("gaussim", env.Payload), fosserr.ErrBackendMismatch},
		{"version skew", selinger, versionSkewed(t, env.Payload), fosserr.ErrSnapshotVersion},
		{"corrupt payload", selinger, corrupt, fosserr.ErrSnapshotCorrupt},
		{"truncated", selinger, blob[:len(blob)/3], fosserr.ErrSnapshotCorrupt},
		{"legacy raw gob", selinger, env.Payload, fosserr.ErrSnapshotCorrupt},
		{"empty", selinger, nil, fosserr.ErrSnapshotCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.target.Load(tc.data)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Load = %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}

	// The valid snapshot still loads — the rejections above are not a
	// gate that rejects everything.
	if err := newSys(nil).Load(blob); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
}

// versionSkewed rebuilds an envelope claiming a future format version. It
// goes through the store package's own Seal, then patches the version by
// re-encoding — kept here so core's tests do not depend on envelope wire
// internals beyond what Seal/Unseal expose.
func versionSkewed(t *testing.T, payload []byte) []byte {
	t.Helper()
	b, err := store.SealVersion(store.Version+1, "selinger", payload)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRecoverOnlineColdStartCheckpoints proves the fossd cold-start flow:
// attach a store, write an explicit checkpoint, and the next process can
// warm-start. Exercised at the core level so the CI recovery gate has a
// fast in-process mirror.
func TestRecoverOnlineColdStartCheckpoints(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sys := smallSystem(t, recoveryConfig)
	if err := sys.Train(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RecoverOnline(durableLoopConfig(st), st); err != nil {
		t.Fatal(err)
	}
	name, err := sys.Online().Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if name == "" {
		t.Fatal("empty checkpoint name")
	}
	st.Close()

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if m, ok := st2.Latest(); !ok || m.Checkpoint != name {
		t.Fatalf("manifest %+v, want checkpoint %s", m, name)
	}
	fresh := smallSystem(t, func(c *Config) { recoveryConfig(c); c.Seed = 42 })
	info, err := fresh.RecoverOnline(durableLoopConfig(st2), st2)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Recovered || info.Epoch != 1 {
		t.Fatalf("warm start info %+v", info)
	}
	q := sys.W.Test[0]
	a, err := sys.Serve(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.Serve(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Eval.ICP.Key() != b.Eval.ICP.Key() {
		t.Fatal("warm-started system serves a different plan")
	}
}
