package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/nn"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/store"
)

// snapshot is the serialized form of a trained system's learned state: the
// AAM and every agent's state network and policy heads. The workload and
// configuration are not persisted — callers re-create the System with the
// same Config over the same workload, then Load.
type snapshot struct {
	AAM      []byte
	Agents   [][]byte
	MaxSteps int
	// Workload fingerprints the data the models were trained over (see
	// workloadIdentity); a snapshot must not load into a system whose
	// workload was generated differently.
	Workload string
}

// Save serializes the trained models (AAM + per-agent networks) inside the
// versioned, checksummed, backend-tagged snapshot envelope (internal/store).
// The envelope is what makes snapshots safe to persist: Load rejects
// cross-backend blobs, version skew, and bit rot instead of silently
// restoring weights into a system they were never trained for. The weight
// read runs under the runtime's shared lock — concurrent with serving,
// mutually exclusive with training/Load — so a snapshot can never capture
// half-applied weights.
func (s *System) Save() (out []byte, err error) {
	err = s.RT.Shared(func() error {
		out, err = s.save()
		return err
	})
	return out, err
}

func (s *System) save() ([]byte, error) {
	snap := snapshot{MaxSteps: s.Cfg.MaxSteps, Workload: s.workloadIdentity()}
	blob, err := nn.SaveParams(s.AAM)
	if err != nil {
		return nil, fmt.Errorf("core: save AAM: %w", err)
	}
	snap.AAM = blob
	for i, pl := range s.Planners {
		ab, err := nn.SaveParams(agentModule{pl.Agent})
		if err != nil {
			return nil, fmt.Errorf("core: save agent %d: %w", i, err)
		}
		snap.Agents = append(snap.Agents, ab)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, err
	}
	// Tag with the backend pointer's own name (not RT.BackendID, whose lock
	// this shared section already holds — the two are kept in sync by
	// SetBackend).
	return store.Seal(s.Backend.Name(), buf.Bytes())
}

// workloadIdentity fingerprints the workload a snapshot was trained over:
// name, schema width, data volume, and split sizes. Different -scale or
// -seed flags change the data (and therefore the statistics the model
// internalized), so a warm restart over a differently generated workload
// must refuse the snapshot rather than serve from mismatched beliefs.
func (s *System) workloadIdentity() string {
	return fmt.Sprintf("%s/tables=%d/rows=%d/queries=%d+%d",
		s.W.Name, len(s.W.DB.Tables), s.W.DB.TotalRows(), len(s.W.Train), len(s.W.Test))
}

// Load restores models previously produced by Save into this System. The
// System must have been built with the same Config (network sizes, agent
// count) over the same schema, AND the same optimizer backend: the envelope
// is validated first — version skew fails with fosserr.ErrSnapshotVersion,
// corruption with fosserr.ErrSnapshotCorrupt, and a snapshot trained under
// a different backend with fosserr.ErrBackendMismatch (a selinger-trained
// doctor must never serve gaussim plans). The serving path is quiesced
// while weights are swapped, and cached plans (chosen by the previous
// weights) are invalidated.
func (s *System) Load(data []byte) error {
	return s.RT.Exclusive(func() error { return s.load(data) })
}

func (s *System) load(data []byte) error {
	env, err := store.Unseal(data)
	if err != nil {
		return fmt.Errorf("core: load: %w", err)
	}
	// s.Backend.Name(), not s.BackendName(): load runs under RT's exclusive
	// lock, which RT.BackendID would try to RLock again.
	if env.Backend != s.Backend.Name() {
		return fmt.Errorf("core: snapshot trained under backend %q, this system runs %q: %w",
			env.Backend, s.Backend.Name(), fosserr.ErrBackendMismatch)
	}
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(env.Payload)).Decode(&snap); err != nil {
		return fmt.Errorf("core: snapshot payload decode: %v: %w", err, fosserr.ErrSnapshotCorrupt)
	}
	if want := s.workloadIdentity(); snap.Workload != want {
		return fmt.Errorf("core: snapshot trained over workload %q, this system runs %q (same name but different -scale/-seed generates different data): %w",
			snap.Workload, want, fosserr.ErrBackendMismatch)
	}
	if snap.MaxSteps != s.Cfg.MaxSteps {
		return fmt.Errorf("core: snapshot maxsteps %d != config %d", snap.MaxSteps, s.Cfg.MaxSteps)
	}
	if len(snap.Agents) != len(s.Planners) {
		return fmt.Errorf("core: snapshot has %d agents, config %d", len(snap.Agents), len(s.Planners))
	}
	if err := nn.LoadParams(s.AAM, snap.AAM); err != nil {
		return fmt.Errorf("core: load AAM: %w", err)
	}
	for i, pl := range s.Planners {
		if err := nn.LoadParams(agentModule{pl.Agent}, snap.Agents[i]); err != nil {
			return fmt.Errorf("core: load agent %d: %w", i, err)
		}
	}
	return nil
}

// RebuildEval re-derives an executed candidate from its durable identity:
// the incomplete plan is hint-completed by the backend and re-encoded, both
// deterministic, so a candidate rebuilt from a checkpoint or WAL record is
// interchangeable with the one that was executed live. Latency is NaN on
// return; callers restore the journaled outcome. Runs under the runtime's
// shared lock (the tier-1 serving path rebuilds greedy candidates live, and
// a catalog rekey repoints the planner's backend), and refuses queries whose
// tables a DDL has since dropped with fosserr.ErrCatalogStale.
func (s *System) RebuildEval(q *query.Query, icp plan.ICP, step int) (*planner.PlanEval, error) {
	var pe *planner.PlanEval
	err := s.RT.Shared(func() error {
		if err := s.CheckCatalog(q); err != nil {
			return err
		}
		var err error
		pe, err = s.Planners[0].NewEval(q, icp, step)
		return err
	})
	if err != nil {
		return nil, err
	}
	return pe, nil
}

// ExportBuffer snapshots the execution buffer in durable form (checkpoint
// ingredient).
func (s *System) ExportBuffer() []store.ExecRecord { return s.Learner.Buf.Export() }

// ImportBuffer restores an exported execution buffer, rebuilding each
// record's complete plan and encoding through this system's backend. Records
// whose tables a later DDL dropped are skipped, not failed: a checkpoint
// imaged around a drop-table legitimately carries pre-DDL experience the
// evolved schema cannot re-derive.
func (s *System) ImportBuffer(recs []store.ExecRecord) error {
	keep := recs[:0:0]
	for _, r := range recs {
		if s.CheckCatalog(r.Query) == nil {
			keep = append(keep, r)
		}
	}
	return s.Learner.Buf.Import(keep, func(r store.ExecRecord) (*planner.PlanEval, error) {
		return s.RebuildEval(r.Query, r.ICP, r.Step)
	})
}

// Clone builds a fresh System over the same workload, configuration, and
// backend with the trained weights mirrored in. Execution buffer, plan
// cache, and RNG streams start fresh — callers that need shared experience
// copy the buffer themselves (as EnableOnline does). The clone shares the
// source's live-catalog world: a DDL applied through either replica rebuilds
// one generation that both repoint to.
func (s *System) Clone() (*System, error) {
	opts := []Option{withWorld(s.world)}
	if s.sharedPool != nil {
		opts = append(opts, WithPool(s.sharedPool))
	}
	c, err := New(s.W, s.Cfg, opts...)
	if err != nil {
		return nil, fmt.Errorf("core: clone: %w", err)
	}
	blob, err := s.Save()
	if err != nil {
		return nil, fmt.Errorf("core: clone snapshot: %w", err)
	}
	if err := c.Load(blob); err != nil {
		return nil, fmt.Errorf("core: clone load: %w", err)
	}
	return c, nil
}

// agentModule adapts an agent (state network + policy heads) to nn.Module.
type agentModule struct {
	a interface {
		Params() []*nn.Tensor
	}
}

func (m agentModule) Params() []*nn.Tensor { return m.a.Params() }
