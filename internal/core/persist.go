package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"github.com/foss-db/foss/internal/nn"
)

// snapshot is the serialized form of a trained system's learned state: the
// AAM and every agent's state network and policy heads. The workload and
// configuration are not persisted — callers re-create the System with the
// same Config over the same workload, then Load.
type snapshot struct {
	AAM      []byte
	Agents   [][]byte
	MaxSteps int
}

// Save serializes the trained models (AAM + per-agent networks).
func (s *System) Save() ([]byte, error) {
	snap := snapshot{MaxSteps: s.Cfg.MaxSteps}
	blob, err := nn.SaveParams(s.AAM)
	if err != nil {
		return nil, fmt.Errorf("core: save AAM: %w", err)
	}
	snap.AAM = blob
	for i, pl := range s.Planners {
		ab, err := nn.SaveParams(agentModule{pl.Agent})
		if err != nil {
			return nil, fmt.Errorf("core: save agent %d: %w", i, err)
		}
		snap.Agents = append(snap.Agents, ab)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Load restores models previously produced by Save into this System. The
// System must have been built with the same Config (network sizes, agent
// count) over the same schema. The serving path is quiesced while weights
// are swapped, and cached plans (chosen by the previous weights) are
// invalidated.
func (s *System) Load(data []byte) error {
	return s.RT.Exclusive(func() error { return s.load(data) })
}

func (s *System) load(data []byte) error {
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return err
	}
	if snap.MaxSteps != s.Cfg.MaxSteps {
		return fmt.Errorf("core: snapshot maxsteps %d != config %d", snap.MaxSteps, s.Cfg.MaxSteps)
	}
	if len(snap.Agents) != len(s.Planners) {
		return fmt.Errorf("core: snapshot has %d agents, config %d", len(snap.Agents), len(s.Planners))
	}
	if err := nn.LoadParams(s.AAM, snap.AAM); err != nil {
		return fmt.Errorf("core: load AAM: %w", err)
	}
	for i, pl := range s.Planners {
		if err := nn.LoadParams(agentModule{pl.Agent}, snap.Agents[i]); err != nil {
			return fmt.Errorf("core: load agent %d: %w", i, err)
		}
	}
	return nil
}

// Clone builds a fresh System over the same workload, configuration, and
// backend with the trained weights mirrored in. Execution buffer, plan
// cache, and RNG streams start fresh — callers that need shared experience
// copy the buffer themselves (as EnableOnline does).
func (s *System) Clone() (*System, error) {
	c, err := New(s.W, s.Cfg, WithBackend(s.Backend))
	if err != nil {
		return nil, fmt.Errorf("core: clone: %w", err)
	}
	blob, err := s.Save()
	if err != nil {
		return nil, fmt.Errorf("core: clone snapshot: %w", err)
	}
	if err := c.Load(blob); err != nil {
		return nil, fmt.Errorf("core: clone load: %w", err)
	}
	return c, nil
}

// agentModule adapts an agent (state network + policy heads) to nn.Module.
type agentModule struct {
	a interface {
		Params() []*nn.Tensor
	}
}

func (m agentModule) Params() []*nn.Tensor { return m.a.Params() }
