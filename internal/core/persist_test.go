package core

import (
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	sys := smallSystem(t, func(c *Config) {
		c.Learner.Iterations = 1
		c.Learner.SimPerIter = 10
		c.Learner.RealPerIter = 5
		c.Learner.InferenceRollouts = 1 // greedy only: deterministic given weights
	})
	if err := sys.Train(nil); err != nil {
		t.Fatal(err)
	}
	blob, err := sys.Save()
	if err != nil {
		t.Fatal(err)
	}

	// A freshly built system with the same config must produce identical
	// plans after Load.
	fresh := smallSystem(t, func(c *Config) {
		c.Seed = 999 // different init; Load must overwrite it
		c.Learner.Iterations = 1
		c.Learner.SimPerIter = 10
		c.Learner.RealPerIter = 5
		c.Learner.InferenceRollouts = 1
	})
	if err := fresh.Load(blob); err != nil {
		t.Fatal(err)
	}
	q := sys.W.Test[0]
	a, _, err := sys.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := fresh.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Execute(a) != fresh.Execute(b) {
		t.Fatal("loaded system produces a different plan than the saved one")
	}
}

func TestLoadRejectsMismatchedConfig(t *testing.T) {
	sys := smallSystem(t, func(c *Config) {
		c.Learner.Iterations = 0
	})
	blob, err := sys.Save()
	if err != nil {
		t.Fatal(err)
	}
	other := smallSystem(t, func(c *Config) {
		c.MaxSteps = 5
		c.Learner.Iterations = 0
	})
	if err := other.Load(blob); err == nil {
		t.Fatal("mismatched maxsteps accepted")
	}
	twoAgents := smallSystem(t, func(c *Config) {
		c.Agents = 2
		c.Learner.Iterations = 0
	})
	if err := twoAgents.Load(blob); err == nil {
		t.Fatal("mismatched agent count accepted")
	}
}
