package core

// Online doctor façade: EnableOnline builds the blue/green replica pair and
// the service loop; Serve/Record/ServeStep run the paper's
// Optimize → Execute → Record cycle with drift-aware background retraining
// and zero-downtime model hot-swap. See internal/service for the protocol.

import (
	"fmt"

	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/service"
)

// EnableOnline turns this (typically already trained) system into the active
// replica of an online doctor loop. A standby replica is built over the same
// workload and configuration, the trained weights and execution buffer are
// mirrored onto it, and the drift detector is seeded with the training
// split's fingerprints.
func (s *System) EnableOnline(cfg service.Config) error {
	if s.online != nil {
		return fmt.Errorf("core: online loop already enabled")
	}
	standby, err := s.Clone()
	if err != nil {
		return fmt.Errorf("core: build standby replica: %w", err)
	}
	// The standby learns from the same accumulated experience: seed its
	// buffer with the active replica's executions (entries are immutable
	// once latency is set, so sharing them is safe).
	for _, pe := range s.Learner.Buf.All() {
		standby.Learner.Buf.Add(pe)
	}
	s.online = service.New(cfg, s, standby, s.W.Train)
	return nil
}

// Online returns the service loop, or nil before EnableOnline.
func (s *System) Online() *service.Loop { return s.online }

// Serve optimizes one query through the online loop's active replica —
// lock-free with respect to background retraining and hot-swaps. EnableOnline
// must have been called.
func (s *System) Serve(q *query.Query) (service.Result, error) {
	if s.online == nil {
		return service.Result{}, fmt.Errorf("core: Serve before EnableOnline")
	}
	return s.online.Serve(q)
}

// Record feeds one executed plan's observed latency back into the loop:
// buffer ingestion, drift detection, and (possibly) a background retrain.
func (s *System) Record(q *query.Query, pe *planner.PlanEval, latencyMs float64) error {
	if s.online == nil {
		return fmt.Errorf("core: Record before EnableOnline")
	}
	s.online.Record(q, pe, latencyMs)
	return nil
}

// ServeStep runs one full doctor-loop turn (Serve, Execute, Record),
// returning the serve result and the observed latency.
func (s *System) ServeStep(q *query.Query) (service.Result, float64, error) {
	if s.online == nil {
		return service.Result{}, 0, fmt.Errorf("core: ServeStep before EnableOnline")
	}
	return s.online.Step(q)
}

// OnlineStats snapshots the loop's counters (zero value before EnableOnline).
func (s *System) OnlineStats() service.Stats {
	if s.online == nil {
		return service.Stats{}
	}
	return s.online.Stats()
}
