package core

// Online doctor façade: EnableOnline builds the blue/green replica pair and
// the service loop; Serve/Record/ServeStep run the paper's
// Optimize → Execute → Record cycle with drift-aware background retraining
// and zero-downtime model hot-swap. See internal/service for the protocol.

import (
	"context"
	"fmt"

	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/service"
	"github.com/foss-db/foss/internal/store"
)

// EnableOnline turns this (typically already trained) system into the active
// replica of an online doctor loop. A standby replica is built over the same
// workload, configuration, and backend; the trained weights and execution
// buffer are mirrored onto it, and the drift detector is seeded with the
// training split's fingerprints.
func (s *System) EnableOnline(cfg service.Config) error {
	if s.online != nil {
		return fmt.Errorf("core: online loop already enabled")
	}
	standby, err := s.Clone()
	if err != nil {
		return fmt.Errorf("core: build standby replica: %w", err)
	}
	// The standby learns from the same accumulated experience: seed its
	// buffer with the active replica's executions (entries are immutable
	// once latency is set, so sharing them is safe).
	for _, pe := range s.Learner.Buf.All() {
		standby.Learner.Buf.Add(pe)
	}
	s.online = service.New(cfg, s, standby, s.W.Train)
	return nil
}

// Online returns the service loop, or nil before EnableOnline.
func (s *System) Online() *service.Loop { return s.online }

// Close drains the system for a lossless shutdown. With an online loop
// enabled it stops intake, awaits (or past ctx's deadline, cancels) any
// in-flight background retrain, and takes a final checkpoint when a store
// is attached — see service.Loop.Close for the contract. Without one it is
// a no-op: an offline System holds no background goroutines. Idempotent.
// The caller still owns (and closes, afterwards) any store it opened.
func (s *System) Close(ctx context.Context) error {
	if s.online == nil {
		return nil
	}
	return s.online.Close(ctx)
}

// RecoveryInfo summarizes what RecoverOnline restored from disk.
type RecoveryInfo struct {
	// Recovered reports whether a durable checkpoint existed (false = cold
	// start: the loop was enabled with the store attached but nothing to
	// restore).
	Recovered      bool
	Checkpoint     string // checkpoint filename recovered from
	Epoch          uint64 // serving epoch resumed at
	CatalogEpoch   uint64 // catalog epoch restored (0 = load-time schema)
	BufferRestored int    // execution-buffer entries restored from the checkpoint
	WALReplayed    int    // feedback records replayed from the WAL tail
}

// RecoverOnline is EnableOnline backed by a durability store: if the store
// holds a checkpoint, the trained weights, execution buffer, and serving
// epoch are restored from it and the feedback WAL's tail is replayed —
// rebuilding the drift detector's state deterministically — before the loop
// takes traffic. Serving resumes bit-identical to the pre-crash replica (no
// retraining). A checkpoint trained under a different backend or written by
// a different format version is rejected (fosserr.ErrBackendMismatch /
// fosserr.ErrSnapshotVersion) rather than loaded silently.
//
// On a cold start (empty store) the loop simply starts journaling into the
// store. Must be called before any training or serving traffic this
// process intends to keep — recovery overwrites the system's weights.
func (s *System) RecoverOnline(cfg service.Config, st *store.Store) (RecoveryInfo, error) {
	if s.online != nil {
		return RecoveryInfo{}, fmt.Errorf("core: online loop already enabled")
	}
	if st == nil {
		return RecoveryInfo{}, fmt.Errorf("core: RecoverOnline without a store: %w", fosserr.ErrNoStore)
	}
	cfg.Store = st
	rec, err := st.Recover()
	if err != nil {
		return RecoveryInfo{}, fmt.Errorf("core: recover: %w", err)
	}
	if rec == nil {
		return RecoveryInfo{}, s.EnableOnline(cfg)
	}
	// The checkpoint's catalog restores BEFORE any weights or feedback load:
	// buffer import and WAL replay re-derive plans through the backend,
	// which must be the schema generation the records were produced against.
	// A system whose live catalog already moved past the checkpoint's epoch
	// refuses the warm start (fosserr.ErrCatalogMismatch) rather than serve
	// cross-epoch state.
	if err := s.SyncCatalog(rec.Checkpoint.CatalogEpoch, rec.Checkpoint.CatalogHash, rec.Checkpoint.CatalogDDL); err != nil {
		return RecoveryInfo{}, fmt.Errorf("core: recover catalog: %w", err)
	}
	// Load validates the envelope: backend identity, format version,
	// checksum. This is where a gaussim system refuses a selinger snapshot.
	if err := s.Load(rec.Checkpoint.Model); err != nil {
		return RecoveryInfo{}, fmt.Errorf("core: recover model: %w", err)
	}
	if err := s.ImportBuffer(rec.Checkpoint.Buffer); err != nil {
		return RecoveryInfo{}, fmt.Errorf("core: recover buffer: %w", err)
	}
	cfg.InitialEpoch = rec.Checkpoint.Epoch
	if err := s.EnableOnline(cfg); err != nil {
		return RecoveryInfo{}, err
	}
	// Tier-0 plan memory restores before the WAL tail replays — exactly the
	// order the live loop produced the state in (checkpoint image, then
	// post-horizon feedback).
	if err := s.online.ImportTier(rec.Checkpoint.Tier); err != nil {
		return RecoveryInfo{}, fmt.Errorf("core: recover tier memory: %w", err)
	}
	n, err := s.online.Replay(rec.Tail)
	if err != nil {
		return RecoveryInfo{}, fmt.Errorf("core: replay wal: %w", err)
	}
	return RecoveryInfo{
		Recovered:      true,
		Checkpoint:     rec.Manifest.Checkpoint,
		Epoch:          rec.Checkpoint.Epoch,
		CatalogEpoch:   s.CatalogEpoch(),
		BufferRestored: len(rec.Checkpoint.Buffer),
		WALReplayed:    n,
	}, nil
}

// EnableFollower turns this system into a read-only serving replica of the
// leader whose checkpoint ck came from: the checkpoint's weights, buffer,
// tier pins, and epoch are installed and the loop comes up with
// cfg.Follower forced on and no store attached — a follower never trains,
// never journals, and never checkpoints; it advances only by applying the
// leader's published checkpoints (service.Loop.ApplyCheckpoint, typically
// driven by a repl.Tailer).
func (s *System) EnableFollower(cfg service.Config, ck store.Checkpoint) error {
	if s.online != nil {
		return fmt.Errorf("core: online loop already enabled")
	}
	// The leader's catalog restores first: a follower booting from a
	// post-DDL checkpoint must rebuild plans against the evolved schema.
	if err := s.SyncCatalog(ck.CatalogEpoch, ck.CatalogHash, ck.CatalogDDL); err != nil {
		return fmt.Errorf("core: follower boot catalog: %w", err)
	}
	// Load validates the envelope-free model image against this system's
	// backend — a gaussim follower refuses a selinger leader's checkpoint.
	if err := s.Load(ck.Model); err != nil {
		return fmt.Errorf("core: follower boot model: %w", err)
	}
	if err := s.ImportBuffer(ck.Buffer); err != nil {
		return fmt.Errorf("core: follower boot buffer: %w", err)
	}
	cfg.Follower = true
	cfg.Store = nil
	cfg.InitialEpoch = ck.Epoch
	if err := s.EnableOnline(cfg); err != nil {
		return err
	}
	if err := s.online.ImportTier(ck.Tier); err != nil {
		return fmt.Errorf("core: follower boot tier memory: %w", err)
	}
	return nil
}

// ServeContext optimizes one query through the online loop's active replica
// — lock-free with respect to background retraining and hot-swaps.
// EnableOnline must have been called (errors.Is(err, foss.ErrNotOnline)
// otherwise).
func (s *System) ServeContext(ctx context.Context, q *query.Query) (service.Result, error) {
	if s.online == nil {
		return service.Result{}, fmt.Errorf("core: Serve before EnableOnline: %w", fosserr.ErrNotOnline)
	}
	return s.online.Serve(ctx, q)
}

// Serve is ServeContext without cancellation.
//
// Deprecated: use ServeContext.
func (s *System) Serve(q *query.Query) (service.Result, error) {
	return s.ServeContext(context.Background(), q)
}

// ServeBatch optimizes a batch of queries through the active replica in one
// pass, sharing the batched AAM scoring across them. out[i] corresponds to
// qs[i]; all results come from one model generation (a single epoch).
func (s *System) ServeBatch(ctx context.Context, qs []*query.Query) ([]service.Result, error) {
	if s.online == nil {
		return nil, fmt.Errorf("core: ServeBatch before EnableOnline: %w", fosserr.ErrNotOnline)
	}
	return s.online.ServeBatch(ctx, qs)
}

// Record feeds one executed plan's observed latency back into the loop:
// buffer ingestion, drift detection, and (possibly) a background retrain.
// Feedback arriving after Close began is refused with ErrLoopClosed.
func (s *System) Record(q *query.Query, pe *planner.PlanEval, latencyMs float64) error {
	if s.online == nil {
		return fmt.Errorf("core: Record before EnableOnline: %w", fosserr.ErrNotOnline)
	}
	if !s.online.Record(q, pe, latencyMs) && s.online.Closed() {
		return fmt.Errorf("core: record: %w", fosserr.ErrLoopClosed)
	}
	return nil
}

// ServeStepContext runs one full doctor-loop turn (Serve, Execute, Record),
// returning the serve result and the observed latency.
func (s *System) ServeStepContext(ctx context.Context, q *query.Query) (service.Result, float64, error) {
	if s.online == nil {
		return service.Result{}, 0, fmt.Errorf("core: ServeStep before EnableOnline: %w", fosserr.ErrNotOnline)
	}
	return s.online.Step(ctx, q)
}

// ServeStep is ServeStepContext without cancellation.
//
// Deprecated: use ServeStepContext.
func (s *System) ServeStep(q *query.Query) (service.Result, float64, error) {
	return s.ServeStepContext(context.Background(), q)
}

// OnlineStats snapshots the loop's counters (zero value before EnableOnline).
func (s *System) OnlineStats() service.Stats {
	if s.online == nil {
		return service.Stats{}
	}
	return s.online.Stats()
}
