package core

import (
	"testing"

	"github.com/foss-db/foss/internal/service"
	"github.com/foss-db/foss/internal/store"
	"github.com/foss-db/foss/internal/tier"
)

// tierLoopConfig is the durable loop with tier-0 plan memory on and a
// one-win promotion threshold, so tests can pin deterministically.
func tierLoopConfig(st *store.Store) service.Config {
	cfg := durableLoopConfig(st)
	cfg.Tier = tier.Config{Memory: true, PromoteAfter: 1}
	return cfg
}

// TestTierMemorySurvivesRestart is the warm-restart guarantee for the plan
// memory: promote a pin, checkpoint, crash, recover a fresh System from disk
// — the pin must be back (rebuilt through the recovered model, not copied as
// bytes) and serve the identical plan at tier 0.
func TestTierMemorySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sys := smallSystem(t, recoveryConfig)
	if err := sys.Train(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RecoverOnline(tierLoopConfig(st), st); err != nil {
		t.Fatal(err)
	}
	q := sys.W.Train[0]
	res, err := sys.Serve(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != tier.Tier2 {
		t.Fatalf("novel query served at tier %d, want 2", res.Tier)
	}
	// Record a latency far below any expert baseline: one win promotes.
	sys.Online().Record(q, res.Eval, 0.001)
	if st := sys.OnlineStats(); st.Promotions != 1 || st.PinnedPlans != 1 {
		t.Fatalf("promotion did not land: %+v", st)
	}
	hit, err := sys.Serve(q)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Tier != tier.Tier0 {
		t.Fatalf("pinned query served at tier %d, want 0", hit.Tier)
	}
	wantKey := hit.Eval.ICP.Key()
	if wantKey != res.Eval.ICP.Key() {
		t.Fatal("tier-0 hit differs from the tier-2 plan it was promoted from")
	}
	if _, err := sys.Online().Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil { // crash: process state is gone
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	fresh := smallSystem(t, func(c *Config) { recoveryConfig(c); c.Seed = 909 })
	info, err := fresh.RecoverOnline(tierLoopConfig(st2), st2)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Recovered {
		t.Fatal("checkpoint on disk not recovered")
	}
	if got := fresh.OnlineStats().PinnedPlans; got != 1 {
		t.Fatalf("recovered plan memory holds %d pins, want 1", got)
	}
	rec, err := fresh.Serve(q)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Tier != tier.Tier0 {
		t.Fatalf("recovered system serves the pinned query at tier %d, want 0", rec.Tier)
	}
	if rec.Eval.ICP.Key() != wantKey {
		t.Fatalf("recovered pin %s != pre-crash %s", rec.Eval.ICP.Key(), wantKey)
	}
	if rec.Eval.CP == nil {
		t.Fatal("recovered pin was not re-derived into a complete executable plan")
	}
}
