package core

import (
	"testing"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/learner"
	"github.com/foss-db/foss/internal/metrics"
	"github.com/foss-db/foss/internal/workload"
)

func smallSystem(t *testing.T, mutate func(*Config)) *System {
	t.Helper()
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.StateNet = aam.StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	cfg.Learner.Iterations = 3
	cfg.Learner.RealPerIter = 10
	cfg.Learner.SimPerIter = 40
	cfg.Learner.ValidatePerIter = 10
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestTrainImprovesOverExpert(t *testing.T) {
	sys := smallSystem(t, nil)
	var iters []learner.IterStats
	if err := sys.Train(func(st learner.IterStats) { iters = append(iters, st) }); err != nil {
		t.Fatal(err)
	}
	if len(iters) != 3 {
		t.Fatalf("expected 3 iterations, got %d", len(iters))
	}
	if iters[len(iters)-1].BufferSize == 0 {
		t.Fatal("execution buffer never filled")
	}

	var fossRes, pgRes []metrics.QueryResult
	for _, q := range sys.W.Train[:30] {
		fcp, _, err := sys.Optimize(q)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		ecp, _, err := sys.ExpertPlan(q)
		if err != nil {
			t.Fatal(err)
		}
		fossRes = append(fossRes, metrics.QueryResult{QueryID: q.ID, LatencyMs: sys.Execute(fcp)})
		pgRes = append(pgRes, metrics.QueryResult{QueryID: q.ID, LatencyMs: sys.Execute(ecp)})
	}
	wrl := metrics.WRL(fossRes, pgRes)
	gmrl := metrics.GMRL(fossRes, pgRes)
	t.Logf("after short training: WRL=%.3f GMRL=%.3f", wrl, gmrl)
	// Three iterations are far below convergence; the guarantee to hold is
	// "no disaster": the AAM selector keeps the original plan when no
	// candidate looks clearly better, so latency-only GMRL stays near 1.
	if gmrl > 1.3 {
		t.Fatalf("FOSS GMRL %.3f far worse than expert after training", gmrl)
	}
}

func TestOptimizeWithoutTrainingFallsBackSafely(t *testing.T) {
	sys := smallSystem(t, nil)
	q := sys.W.Train[0]
	cp, optTime, err := sys.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no plan returned")
	}
	if optTime <= 0 {
		t.Fatal("optimization time not measured")
	}
}

func TestConfigValidation(t *testing.T) {
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxSteps = 0
	if _, err := New(w, cfg); err == nil {
		t.Fatal("expected error for MaxSteps=0")
	}
}

func TestMultiAgentProducesPlan(t *testing.T) {
	sys := smallSystem(t, func(c *Config) {
		c.Agents = 2
		c.Learner.Iterations = 1
		c.Learner.SimPerIter = 15
		c.Learner.RealPerIter = 5
	})
	if len(sys.Planners) != 2 {
		t.Fatalf("expected 2 planners, got %d", len(sys.Planners))
	}
	if err := sys.Train(nil); err != nil {
		t.Fatal(err)
	}
	cp, _, err := sys.Optimize(sys.W.Train[1])
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("multi-agent optimize returned no plan")
	}
}

func TestAblationSwitchesRun(t *testing.T) {
	for _, mut := range []func(*Config){
		func(c *Config) { c.DisableSimulatedEnv = true },
		func(c *Config) { c.DisablePenalty = true },
		func(c *Config) { c.DisableValidation = true },
	} {
		sys := smallSystem(t, func(c *Config) {
			c.Learner.Iterations = 1
			c.Learner.SimPerIter = 10
			c.Learner.RealPerIter = 5
			mut(c)
		})
		if err := sys.Train(nil); err != nil {
			t.Fatal(err)
		}
	}
}
