package core

// The catalog world is the live schema substrate shared by a blue/green
// replica pair: one versioned catalog, one storage DB, one statistics
// catalog, one backend — all rebuilt copy-on-write when a DDL batch lands.
// Both replicas point at the same world (Clone threads it through), so a
// single apply produces a single new backend that each replica then repoints
// to under its own runtime's exclusive section (ResyncCatalog). In-flight
// serves keep reading the immutable old generation; nothing is ever mutated
// in place.

import (
	"fmt"
	"sync"

	"github.com/foss-db/foss/internal/backend"
	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/engine/stats"
	"github.com/foss-db/foss/internal/engine/storage"
	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/query"
)

// catalogStatsSeed seeds the deterministic full-scan statistics rebuild for
// tables a DDL batch touched. Unchanged tables keep their load-time stats
// objects by pointer, so pre-DDL plans are re-derived bit-identically.
const catalogStatsSeed = 1

// catalogWorld holds the live schema generation. All fields behind mu are
// replaced wholesale on apply, never mutated: a snapshot taken under the
// read lock stays internally consistent forever.
type catalogWorld struct {
	mu sync.RWMutex
	v  *catalog.Versioned
	db *storage.DB
	st *stats.Catalog
	be backend.Backend

	// frozen marks a world whose backend was built over a database this
	// package cannot see (WithBackend over a foreign DB): reads work, DDL is
	// refused.
	frozen bool
}

// newCatalogWorld wraps the system's initial backend. When the backend's
// schema is not the workload DB's schema (an exotic WithBackend), the world
// comes up frozen: everything serves normally, ApplyDDL refuses.
func newCatalogWorld(db *storage.DB, st *stats.Catalog, be backend.Backend) *catalogWorld {
	frozen := db == nil || be.Schema() != db.Schema
	return &catalogWorld{
		v:      catalog.NewVersioned(be.Schema()),
		db:     db,
		st:     st,
		be:     be,
		frozen: frozen,
	}
}

// baseSchema returns the immutable epoch-0 schema the world started from —
// the encoder's vocabulary base, shared by every replica over this world.
func (cw *catalogWorld) baseSchema() *catalog.Schema { return cw.v.Base() }

// snapshot returns the current generation: backend, schema, and epoch, all
// immutable.
func (cw *catalogWorld) snapshot() (backend.Backend, *catalog.Schema, uint64) {
	cw.mu.RLock()
	defer cw.mu.RUnlock()
	return cw.be, cw.v.Schema(), cw.v.Epoch()
}

// schema returns the current immutable schema snapshot.
func (cw *catalogWorld) schema() *catalog.Schema {
	cw.mu.RLock()
	defer cw.mu.RUnlock()
	return cw.v.Schema()
}

// setBackend repoints the world at a swapped-in backend (SetBackend's hook,
// called inside the runtime's exclusive section) so a later DDL apply
// rebuilds the current engine.
func (cw *catalogWorld) setBackend(b backend.Backend) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	cw.be = b
	cw.st = b.Stats()
}

// apply runs one DDL batch: new schema (copy-on-write), new DB (unchanged
// tables shared by pointer), new statistics (unchanged tables shared by
// pointer, touched tables rebuilt by a deterministic full scan), new backend
// at the new epoch. The batch is atomic — on error nothing is published.
func (cw *catalogWorld) apply(ddls []catalog.DDL) (uint64, error) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.frozen {
		return 0, fmt.Errorf("core: backend was built over a database the catalog cannot rebuild: %w", fosserr.ErrBadConfig)
	}
	schema, epoch, err := cw.v.Apply(ddls)
	if err != nil {
		return 0, err
	}
	db := rebuildDB(cw.db, schema)
	st := rebuildStats(cw.st, cw.db, db)
	be, err := backend.NewAt(cw.be.Name(), db, st, epoch)
	if err != nil {
		// Unreachable for the names the world was built with; keep the
		// invariant loud rather than silent.
		return 0, fmt.Errorf("core: rebuild backend after ddl: %w", err)
	}
	cw.db, cw.st, cw.be = db, st, be
	return epoch, nil
}

// rebuildDB materializes a storage DB for the evolved schema. Tables whose
// metadata pointer is unchanged are shared with the old DB (copy-on-write:
// the old generation keeps serving them untouched). Touched tables carry
// their column data over by name — DDL-added columns are deterministic
// zero-fill — and rebuild their indexes; DDL-added tables start empty.
func rebuildDB(old *storage.DB, schema *catalog.Schema) *storage.DB {
	db := &storage.DB{Schema: schema, Tables: make(map[string]*storage.Table, len(schema.Order))}
	for _, n := range schema.Order {
		meta := schema.Tables[n]
		if ot, ok := old.Tables[n]; ok && ot.Meta == meta {
			db.Tables[n] = ot
			continue
		}
		nt := storage.NewTable(meta)
		if ot, ok := old.Tables[n]; ok {
			rows := ot.NumRows()
			for ci, c := range meta.Columns {
				if oi := ot.Meta.ColIndex(c.Name); oi >= 0 {
					// Column slices are immutable post-load: sharing is safe.
					nt.Cols[ci] = ot.Cols[oi]
				} else {
					nt.Cols[ci] = make([]int64, rows)
				}
			}
		}
		nt.BuildIndexes()
		db.Tables[n] = nt
	}
	return db
}

// rebuildStats carries statistics over from the old catalog for tables the
// DDL batch left untouched (same *storage.Table pointer) and rebuilds the
// touched ones with a deterministic full scan.
func rebuildStats(old *stats.Catalog, oldDB, db *storage.DB) *stats.Catalog {
	cat := &stats.Catalog{Tables: make(map[string]*stats.TableStats, len(db.Schema.Order))}
	var changed []string
	for _, n := range db.Schema.Order {
		if ot, ok := oldDB.Tables[n]; ok && ot == db.Tables[n] {
			cat.Tables[n] = old.Tables[n]
			continue
		}
		changed = append(changed, n)
	}
	if len(changed) > 0 {
		sub := catalog.NewSchema()
		subDB := &storage.DB{Schema: sub, Tables: map[string]*storage.Table{}}
		for _, n := range changed {
			// TryAddTable cannot fail: names are unique within db.Schema.
			_ = sub.TryAddTable(db.Schema.Tables[n])
			subDB.Tables[n] = db.Tables[n]
		}
		fresh := stats.Build(subDB, 1.0, catalogStatsSeed)
		for _, n := range changed {
			cat.Tables[n] = fresh.Tables[n]
		}
	}
	return cat
}

// ApplyDDL applies a schema-evolution batch to this system's live catalog
// and repoints the system at the rebuilt backend under the runtime's
// exclusive section — the plan cache invalidates and rekeys atomically, so
// no plan chosen against the old schema can ever be served again. Returns
// the new catalog epoch.
//
// Under a live online loop, apply through service.Loop.ApplyDDL (the
// System.Online() handle) instead: the loop resyncs the standby replica and
// journals the batch; a direct ApplyDDL on the active replica would leave
// the standby planning against the old schema until the next loop-driven
// resync.
func (s *System) ApplyDDL(ddls []catalog.DDL) (uint64, error) {
	epoch, err := s.world.apply(ddls)
	if err != nil {
		return 0, err
	}
	if err := s.ResyncCatalog(); err != nil {
		return 0, err
	}
	return epoch, nil
}

// ResyncCatalog repoints this system at the world's current backend if its
// runtime is behind the world's catalog epoch. Idempotent; safe under
// concurrent serving (the repoint runs inside the runtime's exclusive
// section, like a backend swap or a weight load).
func (s *System) ResyncCatalog() error {
	be, schema, epoch := s.world.snapshot()
	if epoch <= s.RT.CatalogEpoch() {
		return nil
	}
	return s.RT.RekeyCatalog(epoch, func() error {
		s.Backend = be
		for _, pl := range s.Planners {
			pl.Opt = be
		}
		s.Learner.Exec = be
		// Grow the shared encoder's vocabulary for DDL-added tables/columns —
		// deterministic, append-only, folds to the none bucket past the
		// reserved headroom (Config.CatalogHeadroom).
		s.Enc.Extend(schema)
		return nil
	})
}

// CatalogEpoch returns the live catalog's epoch: the count of DDL statements
// applied since the load-time schema. 0 until the first ApplyDDL.
func (s *System) CatalogEpoch() uint64 { return s.world.v.Epoch() }

// CatalogHash returns the canonical hash of the live schema.
func (s *System) CatalogHash() uint64 { return s.world.v.Hash() }

// CatalogLog returns the full applied-DDL log (load-time schema → current).
func (s *System) CatalogLog() []catalog.DDL { return s.world.v.Log() }

// CatalogSchema returns the live schema snapshot (immutable).
func (s *System) CatalogSchema() *catalog.Schema { return s.world.schema() }

// CheckCatalog reports whether every table the query references still exists
// in the live schema; a reference to a DDL-dropped table fails with
// fosserr.ErrCatalogStale. The serving loop gates requests (and replayed
// feedback) through this rather than letting the planner trip over a table
// the storage layer no longer has.
func (s *System) CheckCatalog(q *query.Query) error {
	schema := s.world.schema()
	for _, t := range q.Tables {
		if _, ok := schema.Tables[t.Table]; !ok {
			return fmt.Errorf("core: query %s references table %q: %w", q.ID, t.Table, fosserr.ErrCatalogStale)
		}
	}
	return nil
}

// SyncCatalog brings the live catalog to exactly the given epoch by applying
// the missing suffix of the full DDL log — the warm-start half of schema
// durability: checkpoints carry (epoch, hash, log), and recovery replays the
// suffix before any weights load, so rebuilt plans re-derive against the
// same schema generation that produced them. A system already ahead of the
// checkpoint refuses with fosserr.ErrCatalogMismatch (the schema-evolution
// sibling of the backend-mismatch refusal); a hash divergence after replay
// refuses the same way.
func (s *System) SyncCatalog(epoch, hash uint64, log []catalog.DDL) error {
	cur := s.CatalogEpoch()
	if cur > epoch {
		return fmt.Errorf("core: live catalog at epoch %d, checkpoint at %d: %w", cur, epoch, fosserr.ErrCatalogMismatch)
	}
	if cur < epoch {
		if uint64(len(log)) != epoch {
			return fmt.Errorf("core: checkpoint catalog log has %d statements for epoch %d: %w",
				len(log), epoch, fosserr.ErrSnapshotCorrupt)
		}
		if _, err := s.ApplyDDL(log[cur:]); err != nil {
			return fmt.Errorf("core: re-apply catalog log: %w", err)
		}
	}
	if hash != 0 && s.CatalogHash() != hash {
		return fmt.Errorf("core: rebuilt catalog hash %#x != checkpoint %#x: %w",
			s.CatalogHash(), hash, fosserr.ErrCatalogMismatch)
	}
	return nil
}
