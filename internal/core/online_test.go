package core

import (
	"sync"
	"testing"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/service"
	"github.com/foss-db/foss/internal/workload"
)

// testConfig is smallSystem's configuration without the workload: the online
// tests build several systems over one shared workload.
func testConfig(mutate func(*Config)) Config {
	cfg := DefaultConfig()
	cfg.StateNet = aam.StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

// onlineConfig is a fast-reacting loop configuration for tests.
func onlineConfig(sync bool) service.Config {
	return service.Config{
		Detector: service.DetectorConfig{
			Window:      6,
			Threshold:   1.1,
			MinSamples:  6,
			NoveltyFrac: 0,
		},
		Cooldown:          6,
		RetrainIterations: 1,
		RetrainQueries:    8,
		Background:        !sync,
	}
}

// TestOnlineHotSwapUnderLoad is the zero-downtime proof, run under -race by
// CI: six goroutines serve continuously while recorded regressions force
// background retrains and hot-swaps. Every request must succeed, and within
// one epoch every (query, epoch) pair must resolve to exactly one plan — a
// cache hit that survived a swap would show up as a conflicting plan under
// the new epoch label.
func TestOnlineHotSwapUnderLoad(t *testing.T) {
	sys := smallSystem(t, func(c *Config) {
		c.PlanCache = 64
		c.Workers = 2
		c.Learner.Iterations = 1
		c.Learner.RealPerIter = 4
		c.Learner.SimPerIter = 12
		c.Learner.ValidatePerIter = 4
		c.Learner.InferenceRollouts = 2
	})
	if err := sys.Train(nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.EnableOnline(onlineConfig(false)); err != nil {
		t.Fatal(err)
	}
	queries := sys.W.Train[:8]
	expert := map[string]float64{}
	for _, q := range queries {
		ecp, _, err := sys.ExpertPlan(q)
		if err != nil {
			t.Fatal(err)
		}
		expert[q.ID] = sys.Execute(ecp)
	}

	var mu sync.Mutex
	planAt := map[[2]uint64]string{} // (epoch, fingerprint) -> ICP key
	var failures []string
	fail := func(msg string) {
		mu.Lock()
		failures = append(failures, msg)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				q := queries[(g*7+i)%len(queries)]
				res, err := sys.Serve(q)
				if err != nil {
					fail("serve " + q.ID + ": " + err.Error())
					return
				}
				if res.Eval == nil || res.Eval.CP == nil {
					fail("nil plan for " + q.ID)
					return
				}
				// Serve re-serves requests a swap overtook, so Result.Epoch
				// always names the generation that chose the plan: every
				// (epoch, query) pair must resolve to exactly one plan.
				key := [2]uint64{res.Epoch, q.Fingerprint()}
				icp := res.Eval.ICP.Key()
				mu.Lock()
				if prev, ok := planAt[key]; ok && prev != icp {
					failures = append(failures, "epoch-inconsistent plan for "+q.ID)
				} else {
					planAt[key] = icp
				}
				mu.Unlock()
				// Half the goroutines report 5x regressions, forcing the
				// detector past its threshold while serving continues.
				if g%2 == 0 {
					if err := sys.Record(q, res.Eval, expert[q.ID]*5); err != nil {
						fail("record: " + err.Error())
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	sys.Online().Wait()

	for _, f := range failures {
		t.Error(f)
	}
	st := sys.OnlineStats()
	if st.Swaps == 0 {
		t.Fatalf("no hot-swap happened under load: %+v", st)
	}
	if st.RetrainErrors != 0 {
		t.Fatalf("retrain errors under load: %+v", st)
	}
	if st.Epoch < 2 {
		t.Fatalf("epoch never advanced: %+v", st)
	}
	if st.Served != 6*30 {
		t.Fatalf("served %d, want %d (requests were lost)", st.Served, 6*30)
	}
}

// TestOnlineSwapInvalidatesPlanCache pins the epoch protocol down
// sequentially: hits before the swap, a mandatory miss at the new epoch
// right after it, hits again once the new model's cache warms.
func TestOnlineSwapInvalidatesPlanCache(t *testing.T) {
	sys := smallSystem(t, func(c *Config) {
		c.PlanCache = 64
		c.Learner.Iterations = 1
		c.Learner.RealPerIter = 4
		c.Learner.SimPerIter = 12
		c.Learner.ValidatePerIter = 4
		c.Learner.InferenceRollouts = 2
	})
	if err := sys.Train(nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.EnableOnline(onlineConfig(true)); err != nil {
		t.Fatal(err)
	}
	q := sys.W.Train[0]

	if res, err := sys.Serve(q); err != nil || res.CacheHit || res.Epoch != 1 {
		t.Fatalf("first serve: hit=%v epoch=%d err=%v", res.CacheHit, res.Epoch, err)
	}
	if res, err := sys.Serve(q); err != nil || !res.CacheHit || res.Epoch != 1 {
		t.Fatalf("second serve should hit at epoch 1: hit=%v epoch=%d err=%v", res.CacheHit, res.Epoch, err)
	}

	// Drive the detector over its threshold with synchronous retraining.
	for i := 1; i <= 6; i++ {
		other := sys.W.Train[i]
		res, err := sys.Serve(other)
		if err != nil {
			t.Fatal(err)
		}
		ecp, _, err := sys.ExpertPlan(other)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Record(other, res.Eval, sys.Execute(ecp)*5); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.OnlineStats()
	if st.Swaps != 1 || st.Epoch != 2 {
		t.Fatalf("expected one synchronous swap to epoch 2, got %+v", st)
	}

	// The promoted model's cache must start cold: no plan chosen by the old
	// weights survives the swap.
	if res, err := sys.Serve(q); err != nil || res.CacheHit || res.Epoch != 2 {
		t.Fatalf("post-swap serve must miss at epoch 2: hit=%v epoch=%d err=%v", res.CacheHit, res.Epoch, err)
	}
	if res, err := sys.Serve(q); err != nil || !res.CacheHit || res.Epoch != 2 {
		t.Fatalf("post-swap repeat should hit at epoch 2: hit=%v epoch=%d err=%v", res.CacheHit, res.Epoch, err)
	}
}

// onlineRun executes the full drifted-stream scenario once and returns the
// per-step online latencies, the indices served after the first swap, and
// the final stats. Everything inside is seeded, sequential, and synchronous,
// so two calls must agree bit-for-bit.
func onlineRun(t *testing.T) ([]float64, int, service.Stats, *workload.DriftScenario) {
	t.Helper()
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(func(c *Config) {
		c.PlanCache = 64
		c.Learner.Iterations = 2
		c.Learner.RealPerIter = 8
		c.Learner.SimPerIter = 30
		c.Learner.ValidatePerIter = 8
		c.Learner.InferenceRollouts = 2
	})
	sys, err := New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(nil); err != nil {
		t.Fatal(err)
	}

	scen, err := workload.Drift(w, workload.DriftSelectivity, workload.DriftOptions{
		Seed: 7, PreLen: 12, PostLen: 36,
	})
	if err != nil {
		t.Fatal(err)
	}

	err = sys.EnableOnline(service.Config{
		Detector: service.DetectorConfig{
			Window:      10,
			Threshold:   1.05,
			MinSamples:  10,
			NoveltyFrac: 0.5,
		},
		Cooldown:          12,
		RetrainIterations: 2,
		RetrainQueries:    24,
		Background:        false, // synchronous: bit-deterministic
	})
	if err != nil {
		t.Fatal(err)
	}

	stream := scen.Stream()
	lats := make([]float64, len(stream))
	firstSwap := -1
	for i, q := range stream {
		_, lat, err := sys.ServeStep(q)
		if err != nil {
			t.Fatalf("step %d (%s): %v", i, q.ID, err)
		}
		lats[i] = lat
		if firstSwap < 0 && sys.OnlineStats().Swaps > 0 {
			firstSwap = i
		}
	}
	return lats, firstSwap, sys.OnlineStats(), scen
}

// TestOnlineAdaptsToDrift is the end-to-end adaptation check: on a
// selectivity-shifted stream the online loop must detect drift, retrain, and
// from then on serve the shifted tail at least as well as the frozen
// offline model — deterministically per seed.
func TestOnlineAdaptsToDrift(t *testing.T) {
	lats, firstSwap, st, scen := onlineRun(t)
	if st.Drifts == 0 || st.Swaps == 0 {
		t.Fatalf("drift never detected on a shifted stream: %+v", st)
	}
	if firstSwap < 0 {
		t.Fatal("no swap index recorded")
	}
	if firstSwap >= len(lats)-5 {
		t.Fatalf("first swap at %d of %d leaves no tail to evaluate", firstSwap, len(lats))
	}

	// Frozen baseline: an identical system trained identically (same seeds)
	// but never retrained, evaluated on the exact post-swap tail.
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := New(w, testConfig(func(c *Config) {
		c.PlanCache = 64
		c.Learner.Iterations = 2
		c.Learner.RealPerIter = 8
		c.Learner.SimPerIter = 30
		c.Learner.ValidatePerIter = 8
		c.Learner.InferenceRollouts = 2
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := frozen.Train(nil); err != nil {
		t.Fatal(err)
	}

	stream := scen.Stream()
	var onlineSum, frozenSum float64
	n := 0
	for i := firstSwap + 1; i < len(stream); i++ {
		cp, _, err := frozen.Optimize(stream[i])
		if err != nil {
			t.Fatal(err)
		}
		frozenSum += frozen.Execute(cp)
		onlineSum += lats[i]
		n++
	}
	onlineMean, frozenMean := onlineSum/float64(n), frozenSum/float64(n)
	t.Logf("post-retrain tail (%d queries): online mean %.3fms, frozen mean %.3fms (swap at step %d, %+v)",
		n, onlineMean, frozenMean, firstSwap, st)
	if onlineMean > frozenMean*1.001 {
		t.Fatalf("online loop did not adapt: post-retrain mean %.3fms > frozen %.3fms", onlineMean, frozenMean)
	}
}

// TestOnlineRunDeterministic re-runs the full adaptation scenario and
// requires bit-identical latency sequences and counters.
func TestOnlineRunDeterministic(t *testing.T) {
	a, swapA, stA, _ := onlineRun(t)
	b, swapB, stB, _ := onlineRun(t)
	if swapA != swapB {
		t.Fatalf("first-swap index differs: %d vs %d", swapA, swapB)
	}
	if stA != stB {
		t.Fatalf("stats differ:\n%+v\n%+v", stA, stB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency[%d] differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestOnlineGuards: the façade must refuse to serve before EnableOnline and
// to enable twice.
func TestOnlineGuards(t *testing.T) {
	sys := smallSystem(t, func(c *Config) {
		c.Learner.Iterations = 1
		c.Learner.RealPerIter = 2
		c.Learner.SimPerIter = 4
		c.Learner.ValidatePerIter = 2
	})
	if _, err := sys.Serve(sys.W.Train[0]); err == nil {
		t.Fatal("Serve before EnableOnline must fail")
	}
	if err := sys.Record(sys.W.Train[0], nil, 1); err == nil {
		t.Fatal("Record before EnableOnline must fail")
	}
	if err := sys.EnableOnline(onlineConfig(true)); err != nil {
		t.Fatal(err)
	}
	if err := sys.EnableOnline(onlineConfig(true)); err == nil {
		t.Fatal("double EnableOnline must fail")
	}
	if st := sys.OnlineStats(); st.Epoch != 1 {
		t.Fatalf("fresh loop epoch %d, want 1", st.Epoch)
	}
}
