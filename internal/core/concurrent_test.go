package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/foss-db/foss/internal/learner"
)

// trainStats trains a fresh small system and returns its per-iteration stats
// plus the final buffer size.
func trainStats(t *testing.T, workers int) ([]learner.IterStats, int, *System) {
	t.Helper()
	sys := smallSystem(t, func(c *Config) {
		c.Workers = workers
		c.PlanCache = 64
		c.Learner.Iterations = 2
		c.Learner.RealPerIter = 6
		c.Learner.SimPerIter = 20
		c.Learner.ValidatePerIter = 6
	})
	var iters []learner.IterStats
	if err := sys.Train(func(st learner.IterStats) { iters = append(iters, st) }); err != nil {
		t.Fatal(err)
	}
	return iters, sys.Learner.Buf.Size(), sys
}

func statsEqual(a, b []learner.IterStats) error {
	if len(a) != len(b) {
		return fmt.Errorf("iteration counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("iter %d stats differ:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	return nil
}

// TestParallelTrainingDeterministic trains twice at Workers=3 and requires
// bit-identical iteration stats and buffer contents: parallel episode
// collection must not depend on goroutine scheduling.
func TestParallelTrainingDeterministic(t *testing.T) {
	s1, n1, _ := trainStats(t, 3)
	s2, n2, _ := trainStats(t, 3)
	if err := statsEqual(s1, s2); err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Fatalf("buffer sizes differ: %d vs %d", n1, n2)
	}
}

// TestWorkersZeroAndOneIdentical: both values select the sequential path and
// must match exactly.
func TestWorkersZeroAndOneIdentical(t *testing.T) {
	s0, n0, _ := trainStats(t, 0)
	s1, n1, _ := trainStats(t, 1)
	if err := statsEqual(s0, s1); err != nil {
		t.Fatal(err)
	}
	if n0 != n1 {
		t.Fatalf("buffer sizes differ: %d vs %d", n0, n1)
	}
}

// TestConcurrentOptimizeMatchesSerial serves queries from many goroutines
// after training and checks every concurrent answer equals the serial one
// (per-query seeded rollouts + read-only forwards), and that repeats hit the
// plan cache.
func TestConcurrentOptimizeMatchesSerial(t *testing.T) {
	_, _, sys := trainStats(t, 2)
	queries := sys.W.Train[:6]

	serial := map[string]float64{}
	for _, q := range queries {
		cp, _, err := sys.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		serial[q.ID] = sys.Execute(cp)
	}
	sys.RT.InvalidateCache()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2*len(queries); i++ {
				q := queries[(g+i)%len(queries)]
				cp, _, err := sys.Optimize(q)
				if err != nil {
					errs <- err
					return
				}
				if lat := sys.Execute(cp); lat != serial[q.ID] {
					errs <- fmt.Errorf("%s: concurrent plan latency %v != serial %v", q.ID, lat, serial[q.ID])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := sys.RT.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("expected cache hits, got %+v", st)
	}
}

// TestTrainInvalidatesPlanCache: a cached plan must not survive retraining.
func TestTrainInvalidatesPlanCache(t *testing.T) {
	_, _, sys := trainStats(t, 1)
	q := sys.W.Train[0]
	if _, hit, _, err := sys.OptimizeCached(q); err != nil || hit {
		t.Fatalf("first optimize: hit=%v err=%v", hit, err)
	}
	if _, hit, _, err := sys.OptimizeCached(q); err != nil || !hit {
		t.Fatalf("second optimize should hit the cache: hit=%v err=%v", hit, err)
	}
	if err := sys.Train(nil); err != nil {
		t.Fatal(err)
	}
	if _, hit, _, err := sys.OptimizeCached(q); err != nil || hit {
		t.Fatalf("post-train optimize served a stale cached plan: hit=%v err=%v", hit, err)
	}
}
