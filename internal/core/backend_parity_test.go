package core_test

// Cross-backend contract tests for the Backend redesign:
//
//   - TestSelingerGoldenBitIdentical replays the exact pre-refactor run
//     captured in testdata/golden_selinger.txt and requires bit-identical
//     plans and latencies — the proof that extracting the Backend interface
//     changed nothing for the default engine.
//   - TestCrossBackendParity drives the full train→serve→record doctor loop
//     over every registered backend behind the same interface.
//   - TestOptimizeBatchMatchesSingle pins the batched serving path to the
//     sequential one, per backend.
//   - TestSetBackendCacheIsolation proves a live backend swap can never
//     serve a plan completed by the previous backend.
//   - TestServeBatchCancellation (-race) proves an in-flight ServeBatch
//     returns promptly once its deadline passes.
//   - TestHTTPRoundTripRealSystem runs the wire surface over a genuinely
//     trained system: /v1/optimize → /v1/feedback → /v1/stats.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/backend"
	"github.com/foss-db/foss/internal/core"
	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/service"
	"github.com/foss-db/foss/internal/workload"
)

// tinyConfig is the fast cross-backend training budget.
func tinyConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.StateNet = aam.StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	cfg.Learner.Iterations = 1
	cfg.Learner.RealPerIter = 6
	cfg.Learner.SimPerIter = 20
	cfg.Learner.ValidatePerIter = 6
	cfg.Learner.InferenceRollouts = 2
	return cfg
}

// TestSelingerGoldenBitIdentical reruns the run captured before the Backend
// refactor (same workload, seed, and schedule) and compares every chosen
// plan and latency bit-for-bit against the stored trace.
func TestSelingerGoldenBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("golden replay is a full small training run")
	}
	f, err := os.Open("testdata/golden_selinger.txt")
	if err != nil {
		t.Fatalf("golden trace missing: %v", err)
	}
	defer f.Close()

	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Learner.Iterations = 2
	cfg.Learner.RealPerIter = 8
	cfg.Learner.SimPerIter = 40
	cfg.Learner.ValidatePerIter = 8
	sys, err := core.New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := sys.TrainContext(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if sys.BackendName() != "selinger" {
		t.Fatalf("default backend is %q", sys.BackendName())
	}

	got := map[string]string{}
	var bufLine string
	for _, q := range w.Test {
		pe, _, _, err := sys.OptimizeEvalContext(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		ecp, _, err := sys.ExpertPlan(q)
		if err != nil {
			t.Fatal(err)
		}
		got[q.ID] = fmt.Sprintf("%s icp=%q lat=%x expert=%x",
			q.ID, pe.ICP.Key(), sys.Execute(pe.CP), sys.Execute(ecp))
	}
	bufLine = fmt.Sprintf("buffer=%d", sys.Learner.Buf.Size())

	sc := bufio.NewScanner(f)
	lines := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "workload=") {
			continue
		}
		lines++
		if strings.HasPrefix(line, "buffer=") {
			if bufLine != line {
				t.Errorf("execution buffer diverged: got %s, golden %s", bufLine, line)
			}
			continue
		}
		qid := strings.Fields(line)[0]
		if got[qid] != line {
			t.Errorf("query %s diverged from pre-refactor behavior:\n  got    %s\n  golden %s", qid, got[qid], line)
		}
	}
	if lines < 10 {
		t.Fatalf("golden trace suspiciously short (%d lines)", lines)
	}
}

// TestCrossBackendParity: every registered backend completes the full
// train→serve→record doctor loop behind the same interface, with plausible
// counters and executable plans.
func TestCrossBackendParity(t *testing.T) {
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, name := range backend.Names() {
		t.Run(name, func(t *testing.T) {
			be, err := backend.New(name, w.DB, w.Stats)
			if err != nil {
				t.Fatal(err)
			}
			cfg := tinyConfig()
			cfg.PlanCache = 32
			sys, err := core.New(w, cfg, core.WithBackend(be))
			if err != nil {
				t.Fatal(err)
			}
			if sys.BackendName() != name {
				t.Fatalf("BackendName %q, want %q", sys.BackendName(), name)
			}
			if err := sys.TrainContext(ctx, nil); err != nil {
				t.Fatalf("train on %s: %v", name, err)
			}
			if sys.Learner.Buf.Size() == 0 {
				t.Fatal("training filled no execution buffer")
			}
			err = sys.EnableOnline(service.Config{
				Detector:          service.DetectorConfig{Window: 8, Threshold: 1e12, MinSamples: 8},
				Cooldown:          4,
				RetrainIterations: 1,
				Background:        false,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range w.Train[:10] {
				res, lat, err := sys.ServeStepContext(ctx, q)
				if err != nil {
					t.Fatalf("serve %s on %s: %v", q.ID, name, err)
				}
				if res.Eval == nil || res.Eval.CP == nil || lat <= 0 {
					t.Fatalf("implausible serve result on %s: %+v lat=%v", name, res, lat)
				}
			}
			st := sys.OnlineStats()
			if st.Served != 10 || st.Recorded != 10 {
				t.Fatalf("loop counters on %s: %+v", name, st)
			}
			// repeated queries must hit the (backend-keyed) plan cache
			if _, err := sys.ServeContext(ctx, w.Train[0]); err != nil {
				t.Fatal(err)
			}
			if cs := sys.CacheStats(); cs.Hits == 0 {
				t.Fatalf("no cache hits after repeat serving on %s: %+v", name, cs)
			}
		})
	}
}

// TestOptimizeBatchMatchesSingle: the batched inference path must be
// bit-identical to per-query optimization on every backend.
func TestOptimizeBatchMatchesSingle(t *testing.T) {
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, name := range backend.Names() {
		t.Run(name, func(t *testing.T) {
			be, err := backend.New(name, w.DB, w.Stats)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := core.New(w, tinyConfig(), core.WithBackend(be))
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.TrainContext(ctx, nil); err != nil {
				t.Fatal(err)
			}
			qs := w.Test
			batched, _, _, err := sys.OptimizeEvalBatch(ctx, qs)
			if err != nil {
				t.Fatal(err)
			}
			for i, q := range qs {
				pe, _, _, err := sys.OptimizeEvalContext(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				if !pe.ICP.Equal(batched[i].ICP) {
					t.Fatalf("%s/%s: batch chose %q, single chose %q", name, q.ID, batched[i].ICP.Key(), pe.ICP.Key())
				}
				if bl, sl := sys.Execute(batched[i].CP), sys.Execute(pe.CP); bl != sl {
					t.Fatalf("%s/%s: batch latency %v != single %v", name, q.ID, bl, sl)
				}
			}
		})
	}
}

// TestSetBackendCacheIsolation: swapping backends under a live system must
// repoint every engine touchpoint and never serve a cached plan across the
// swap — including a swap back to the original backend.
func TestSetBackendCacheIsolation(t *testing.T) {
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfg := tinyConfig()
	cfg.PlanCache = 64
	sys, err := core.New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainContext(ctx, nil); err != nil {
		t.Fatal(err)
	}

	q := w.Train[0]
	if _, hit, _, err := sys.OptimizeCachedContext(ctx, q); err != nil || hit {
		t.Fatalf("cold serve: hit=%v err=%v", hit, err)
	}
	if _, hit, _, err := sys.OptimizeCachedContext(ctx, q); err != nil || !hit {
		t.Fatalf("warm serve: hit=%v err=%v", hit, err)
	}

	gau := backend.NewGaussim(w.DB, w.Stats)
	if err := sys.SetBackend(gau); err != nil {
		t.Fatal(err)
	}
	if sys.BackendName() != "gaussim" || sys.Backend.Name() != "gaussim" {
		t.Fatalf("backend not swapped: %s/%s", sys.BackendName(), sys.Backend.Name())
	}
	pe, hit, _, err := sys.OptimizeEvalContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("plan served across backends after SetBackend")
	}
	// the served plan must have been completed by gaussim: hinting its ICP
	// through gaussim reproduces it, and execution uses gaussim's latency
	// surface
	gcp, err := gau.HintedPlan(q, pe.ICP)
	if err != nil {
		t.Fatal(err)
	}
	if gau.Execute(gcp, 0).LatencyMs != sys.Execute(pe.CP) {
		t.Fatal("served plan does not execute on the gaussim surface")
	}

	// swap back: still no cross-backend serving
	sel := backend.NewSelinger(w.DB, w.Stats)
	if err := sys.SetBackend(sel); err != nil {
		t.Fatal(err)
	}
	if _, hit, _, _ := sys.OptimizeCachedContext(ctx, q); hit {
		t.Fatal("stale pre-swap plan resurrected after swapping back")
	}

	// a backend over a different schema is rejected
	w2, err := workload.Load("tpcds", workload.Options{Seed: 1, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetBackend(backend.NewSelinger(w2.DB, w2.Stats)); !errors.Is(err, fosserr.ErrBackendMismatch) {
		t.Fatalf("cross-schema swap error = %v, want ErrBackendMismatch", err)
	}
	if err := sys.SetBackend(nil); !errors.Is(err, fosserr.ErrBadConfig) {
		t.Fatalf("nil swap error = %v, want ErrBadConfig", err)
	}

	// once the online loop exists, swaps are rejected: a drift-triggered
	// hot-swap would publish the standby replica still wired to the old
	// backend, silently undoing the swap
	if err := sys.EnableOnline(service.Config{
		Detector:   service.DetectorConfig{Window: 8, Threshold: 1e12, MinSamples: 8},
		Cooldown:   1 << 30,
		Background: false,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetBackend(gau); !errors.Is(err, fosserr.ErrBackendMismatch) {
		t.Fatalf("swap under live online loop = %v, want ErrBackendMismatch", err)
	}
}

// TestServeBatchCancellation: an in-flight batched serve must return
// promptly once the deadline passes, with the context error surfaced and no
// partial results. Run under -race in CI.
func TestServeBatchCancellation(t *testing.T) {
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Learner.InferenceRollouts = 4 // make the batch genuinely slow
	sys, err := core.New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainContext(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.EnableOnline(service.Config{
		Detector:   service.DetectorConfig{Window: 8, Threshold: 1e12, MinSamples: 8},
		Cooldown:   1 << 30,
		Background: true,
	}); err != nil {
		t.Fatal(err)
	}

	// Deadline mid-batch: the whole train split, cold cache, several
	// rollouts per query — far more work than 10ms.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := sys.ServeBatch(ctx, w.Train)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("ServeBatch ignored its deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if res != nil {
		t.Fatal("partial results returned after cancellation")
	}
	// "promptly": bounded by one in-flight rollout, not the whole batch. A
	// full batch takes many seconds at this scale; allow generous -race
	// headroom.
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}

	// an already-expired context short-circuits before any work
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := sys.ServeBatch(done, w.Train); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled err = %v", err)
	}

	// the loop still serves normally afterwards
	if _, err := sys.ServeContext(context.Background(), w.Train[0]); err != nil {
		t.Fatalf("loop wedged after cancellation: %v", err)
	}
}

// TestHTTPRoundTripRealSystem drives the wire surface over a genuinely
// trained system — the curl workflow of fossd -serve-http, in-process.
func TestHTTPRoundTripRealSystem(t *testing.T) {
	w, err := workload.Load("job", workload.Options{Seed: 1, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.PlanCache = 32
	sys, err := core.New(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainContext(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.EnableOnline(service.Config{
		Detector:   service.DetectorConfig{Window: 8, Threshold: 1e12, MinSamples: 8},
		Cooldown:   1 << 30,
		Background: false,
	}); err != nil {
		t.Fatal(err)
	}
	byID := map[string]*query.Query{}
	for _, q := range w.All() {
		byID[q.ID] = q
	}
	h := service.NewHTTPServer(sys.Online(), service.HTTPOptions{
		Resolve: func(id string) *query.Query { return byID[id] },
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	qid := w.Test[0].ID
	code, row := postJSONT(t, ts.URL+"/v1/optimize", `{"query_id": "`+qid+`", "execute": true}`)
	if code != http.StatusOK {
		t.Fatalf("optimize %d: %v", code, row)
	}
	lat, _ := row["latency_ms"].(float64)
	if lat <= 0 {
		t.Fatalf("server-side execution reported latency %v", row["latency_ms"])
	}
	plan, _ := row["plan"].(map[string]any)
	if plan == nil || plan["icp_key"] == "" {
		t.Fatalf("no plan in %v", row)
	}

	// client-side execution path: optimize, then report feedback
	code, row = postJSONT(t, ts.URL+"/v1/optimize", `{"query_id": "`+qid+`"}`)
	if code != http.StatusOK || row["cache_hit"] != true {
		t.Fatalf("repeat optimize %d (cache_hit=%v)", code, row["cache_hit"])
	}
	code, fb := postJSONT(t, ts.URL+"/v1/feedback",
		fmt.Sprintf(`{"serve_id": %q, "latency_ms": %v}`, row["serve_id"], lat))
	if code != http.StatusOK || fb["recorded"] != true {
		t.Fatalf("feedback %d: %v", code, fb)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	decodeJSONT(t, resp, &st)
	if st["backend"] != "selinger" {
		t.Fatalf("stats backend %v", st["backend"])
	}
	if s, _ := st["stats"].(map[string]any); s["Served"].(float64) < 2 || s["Recorded"].(float64) < 2 {
		t.Fatalf("stats counters %v", s)
	}
}

// postJSONT posts a JSON body and decodes the JSON response.
func postJSONT(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	decodeJSONT(t, resp, &out)
	return resp.StatusCode, out
}

func decodeJSONT(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
}
