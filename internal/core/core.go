// Package core assembles the FOSS system: the planner (DRL agent over plan
// edits), the asymmetric advantage model, the simulated learner, and the
// traditional optimizer + executor substrate, behind a small Train/Optimize
// API. The root package foss re-exports this for library users.
package core

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/engine/exec"
	"github.com/foss-db/foss/internal/learner"
	"github.com/foss-db/foss/internal/optimizer"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/planenc"
	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/runtime"
	"github.com/foss-db/foss/internal/service"
	"github.com/foss-db/foss/internal/workload"
)

// Config collects every tunable of a FOSS instance.
type Config struct {
	Seed     int64
	MaxSteps int // plan-edit episode length (paper default 3)
	Agents   int // multi-agent switch (paper §VI-C5); 1 = single agent

	// Workers bounds the training episode fan-out (see learner.Config). 0/1
	// runs the sequential loop; higher values parallelize episode collection
	// deterministically for the fixed worker count.
	Workers int
	// PlanCache is the serving-path plan cache capacity in entries (keyed by
	// query fingerprint, invalidated on Train/Load). 0 — the default —
	// disables caching, keeping per-query optimization-time measurements
	// faithful (the experiments harness depends on that); serving deployments
	// like cmd/fossd opt in.
	PlanCache int

	StateNet aam.StateNetConfig
	Planner  planner.Config
	Learner  learner.Config

	// Ablation switches (Table II)
	DisableSimulatedEnv bool
	DisablePenalty      bool
	DisableValidation   bool
}

// DefaultConfig mirrors the paper's settings at repository scale.
func DefaultConfig() Config {
	return Config{
		Seed:      1,
		MaxSteps:  3,
		Agents:    1,
		Workers:   1,
		PlanCache: 0,
		StateNet:  aam.StateNetConfig{DModel: 32, Heads: 2, Layers: 1, FFDim: 64, StateDim: 32},
		Planner:   planner.DefaultConfig(),
		Learner:   learner.DefaultConfig(),
	}
}

// System is a trained (or trainable) FOSS instance bound to one workload.
type System struct {
	Cfg Config
	W   *workload.Workload

	Enc      *planenc.Encoder
	Opt      *optimizer.Optimizer
	Exec     *exec.Executor
	AAM      *aam.Model
	Learner  *learner.Learner
	Planners []*planner.Planner

	// RT arbitrates the concurrent serving path (cached, shared-locked
	// Optimize) against the exclusive training path.
	RT *runtime.Runtime

	// online is the doctor loop façade, set by EnableOnline.
	online *service.Loop

	// trainTime accumulates wall-clock spent training, in nanoseconds;
	// atomic because background retrains write it while serving code reads.
	trainTime atomic.Int64
}

// New builds a FOSS system over a loaded workload.
func New(w *workload.Workload, cfg Config) (*System, error) {
	if cfg.MaxSteps < 1 {
		return nil, fmt.Errorf("core: MaxSteps must be >= 1, got %d", cfg.MaxSteps)
	}
	if cfg.Agents < 1 {
		cfg.Agents = 1
	}
	enc := planenc.NewEncoder(w.DB.Schema)
	opt := optimizer.New(w.DB, w.Stats)
	ex := exec.New(w.DB)

	// Every component gets an independent seeded source: the AAM's weight
	// init, each agent's weight init, and each agent's action-sampling
	// stream never share a *rand.Rand, so constructing components in any
	// order (or in parallel) cannot perturb another component's stream.
	model := aam.NewModel(rand.New(rand.NewSource(cfg.Seed)), cfg.StateNet, enc.NumTables, enc.NumCols)

	space := plan.NewSpace(w.MaxTables)
	plCfg := cfg.Planner
	plCfg.MaxSteps = cfg.MaxSteps
	if cfg.DisablePenalty {
		plCfg.PenaltyGamma = 0
	}

	var planners []*planner.Planner
	for a := 0; a < cfg.Agents; a++ {
		agentCfg := plCfg
		// multi-agent: diversify strategies via discount factor and LR, as
		// the paper suggests
		agentCfg.PPO.Seed = cfg.Seed + int64(a)
		agentCfg.PPO.Gamma = plCfg.PPO.Gamma - 0.02*float64(a)
		lr := agentCfg.PPO.LR * (1 + 0.5*float64(a))
		agent := planner.NewAgent(rand.New(rand.NewSource(cfg.Seed+int64(100+a))),
			cfg.StateNet, enc.NumTables, enc.NumCols, space.Size(), agentCfg.Hidden, lr)
		// Decouple action sampling from the construction stream: weight init
		// consumed the rng above; sampling draws from its own source.
		agent.Rng = rand.New(rand.NewSource(cfg.Seed + int64(500+a)))
		planners = append(planners, &planner.Planner{
			Cfg:   agentCfg,
			Space: space,
			Enc:   enc,
			Opt:   opt,
			Agent: agent,
		})
	}

	lCfg := cfg.Learner
	lCfg.Seed = cfg.Seed
	lCfg.DisableSim = cfg.DisableSimulatedEnv
	lCfg.DisableValidation = cfg.DisableValidation
	lCfg.Agents = cfg.Agents
	lCfg.Workers = cfg.Workers

	sys := &System{
		Cfg:      cfg,
		W:        w,
		Enc:      enc,
		Opt:      opt,
		Exec:     ex,
		AAM:      model,
		Planners: planners,
	}
	sys.Learner = learner.New(w, planners, model, ex, lCfg)
	sys.RT = runtime.New(runtime.Config{Workers: cfg.Workers, CacheSize: cfg.PlanCache}, sys.Learner)
	// The runtime owns the worker pool; the learner's episode fan-out
	// borrows it rather than running a pool of its own.
	sys.Learner.UsePool(sys.RT.Pool())
	return sys, nil
}

// Train runs the simulated-learner loop with the serving path quiesced; any
// cached plans are invalidated afterwards since the models changed. progress
// may be nil.
func (s *System) Train(progress func(learner.IterStats)) error {
	start := time.Now()
	err := s.RT.Exclusive(func() error { return s.Learner.Train(progress) })
	s.trainTime.Add(int64(time.Since(start)))
	return err
}

// TrainOn runs incremental training over an explicit query set (the online
// service retrains on recently served queries this way) with the serving
// path quiesced; iterations overrides the configured schedule when positive.
func (s *System) TrainOn(queries []*query.Query, iterations int, progress func(learner.IterStats)) error {
	start := time.Now()
	err := s.RT.Exclusive(func() error { return s.Learner.TrainOn(queries, iterations, progress) })
	s.trainTime.Add(int64(time.Since(start)))
	return err
}

// TrainingTime reports cumulative wall-clock spent in Train/TrainOn.
func (s *System) TrainingTime() time.Duration { return time.Duration(s.trainTime.Load()) }

// Buffer exposes the learner's execution buffer (feedback ingestion point of
// the online loop).
func (s *System) Buffer() *learner.Buffer { return s.Learner.Buf }

// CacheStats snapshots the serving path's plan-cache counters.
func (s *System) CacheStats() runtime.CacheStats { return s.RT.CacheStats() }

// Optimize returns FOSS's chosen plan for the query along with the
// optimization time (model inference + hint completions), mirroring the
// paper's "SQL in → execution plan out" measurement. It serves through the
// runtime: concurrent calls are safe, and repeated queries hit the plan
// cache.
func (s *System) Optimize(q *query.Query) (*plan.CP, time.Duration, error) {
	cp, _, d, err := s.OptimizeCached(q)
	return cp, d, err
}

// OptimizeCached is Optimize exposing whether the plan came from the cache.
func (s *System) OptimizeCached(q *query.Query) (*plan.CP, bool, time.Duration, error) {
	pe, hit, d, err := s.OptimizeEval(q)
	if err != nil {
		return nil, false, 0, err
	}
	return pe.CP, hit, d, nil
}

// OptimizeEval is OptimizeCached returning the full evaluated candidate
// (plan, encoding, edit step) instead of just the complete plan — the online
// service records executed-plan feedback against it. The returned PlanEval
// may be shared with the plan cache: treat it as read-only.
func (s *System) OptimizeEval(q *query.Query) (*planner.PlanEval, bool, time.Duration, error) {
	start := time.Now()
	pe, hit, err := s.RT.Optimize(q)
	if err != nil {
		return nil, false, 0, err
	}
	return pe, hit, time.Since(start), nil
}

// ExpertPlan exposes the traditional optimizer's plan (the baseline).
func (s *System) ExpertPlan(q *query.Query) (*plan.CP, time.Duration, error) {
	start := time.Now()
	cp, err := s.Opt.Plan(q)
	if err != nil {
		return nil, 0, err
	}
	return cp, time.Since(start), nil
}

// Execute runs a plan to completion (no timeout) and returns its simulated
// latency in milliseconds.
func (s *System) Execute(cp *plan.CP) float64 {
	return s.Exec.Execute(cp, 0).LatencyMs
}
