// Package core assembles the FOSS system: the planner (DRL agent over plan
// edits), the asymmetric advantage model, the simulated learner, and a
// pluggable optimizer backend, behind a context-aware
// Train/Optimize/Serve API. The root package foss re-exports this for
// library users.
//
// The doctor is backend-generic: every interaction with the underlying
// engine — expert plan enumeration, hint-steered replanning, execution —
// goes through backend.Backend, so the same trained doctor machinery runs
// over the Selinger engine, the gaussim engine, or any future port (the
// paper validates against PostgreSQL and openGauss the same way).
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/backend"
	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/learner"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/planenc"
	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/runtime"
	"github.com/foss-db/foss/internal/service"
	"github.com/foss-db/foss/internal/workload"
)

// Config collects every tunable of a FOSS instance.
type Config struct {
	Seed     int64
	MaxSteps int // plan-edit episode length (paper default 3)
	Agents   int // multi-agent switch (paper §VI-C5); 1 = single agent

	// Workers bounds the training episode fan-out (see learner.Config). 0/1
	// runs the sequential loop; higher values parallelize episode collection
	// deterministically for the fixed worker count.
	Workers int
	// PlanCache is the serving-path plan cache capacity in entries (keyed by
	// backend identity × query fingerprint, invalidated on Train/Load). 0 —
	// the default — disables caching, keeping per-query optimization-time
	// measurements faithful (the experiments harness depends on that);
	// serving deployments like cmd/fossd opt in.
	PlanCache int

	// CatalogHeadroom reserves embedding-vocabulary capacity for online
	// schema evolution: up to CatalogHeadroom DDL-added tables (and
	// 8×CatalogHeadroom added columns) get real encoder ids instead of
	// folding into the none bucket. The reservation sizes the state network
	// and agent vocabularies at construction, so it must match across
	// replicas and restarts (snapshots refuse shape mismatches). 0 — the
	// default — sizes everything exactly to the load-time schema: encodings
	// stay bit-identical to a headroom-less build, and post-DDL additions
	// fold to the none bucket (still served correctly, just undistinguished
	// by the model).
	CatalogHeadroom int

	StateNet aam.StateNetConfig
	Planner  planner.Config
	Learner  learner.Config

	// Ablation switches (Table II)
	DisableSimulatedEnv bool
	DisablePenalty      bool
	DisableValidation   bool
}

// DefaultConfig mirrors the paper's settings at repository scale.
func DefaultConfig() Config {
	return Config{
		Seed:      1,
		MaxSteps:  3,
		Agents:    1,
		Workers:   1,
		PlanCache: 0,
		StateNet:  aam.StateNetConfig{DModel: 32, Heads: 2, Layers: 1, FFDim: 64, StateDim: 32},
		Planner:   planner.DefaultConfig(),
		Learner:   learner.DefaultConfig(),
	}
}

// Option customizes System construction beyond Config — the functional
// options of the public API.
type Option func(*options)

type options struct {
	backend   backend.Backend
	workers   *int
	planCache *int
	pool      *runtime.Pool
	world     *catalogWorld
}

// WithBackend builds the system over an explicit optimizer backend instead
// of the default Selinger engine.
func WithBackend(b backend.Backend) Option {
	return func(o *options) { o.backend = b }
}

// WithWorkers overrides Config.Workers.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = &n }
}

// WithPlanCache overrides Config.PlanCache.
func WithPlanCache(entries int) Option {
	return func(o *options) { o.planCache = &entries }
}

// withWorld shares an existing live-catalog world instead of minting a fresh
// one — Clone threads it through so a blue/green replica pair sees a single
// schema generation per DDL apply. Unexported: external callers always start
// from the backend they pass (or the default).
func withWorld(w *catalogWorld) Option {
	return func(o *options) { o.world = w }
}

// WithPool runs the system's training fan-out on an externally owned worker
// pool instead of a private one — the shard router hands one shared bounded
// pool to every tenant so K tenants never oversubscribe K×Workers
// goroutines. The pool's width overrides Config.Workers (the determinism
// contract keys on width, so the two must agree); ownership — including the
// Close duty for shared pools — stays with the caller.
func WithPool(p *runtime.Pool) Option {
	return func(o *options) { o.pool = p }
}

// System is a trained (or trainable) FOSS instance bound to one workload
// and one optimizer backend.
type System struct {
	Cfg Config
	W   *workload.Workload

	// Backend is the optimizer substrate under the doctor. Swap it with
	// SetBackend; never mutate it directly while serving.
	Backend backend.Backend

	Enc      *planenc.Encoder
	AAM      *aam.Model
	Learner  *learner.Learner
	Planners []*planner.Planner

	// RT arbitrates the concurrent serving path (cached, shared-locked
	// Optimize) against the exclusive training path.
	RT *runtime.Runtime

	// online is the doctor loop façade, set by EnableOnline.
	online *service.Loop

	// sharedPool remembers an externally owned pool (WithPool) so Clone —
	// and therefore the online standby replica — fans out on the same
	// bounded workers instead of minting a private pool.
	sharedPool *runtime.Pool

	// world is the live-catalog substrate (versioned schema + rebuilt
	// DB/stats/backend). Shared with Clone-built replicas, so one DDL apply
	// yields one new generation both replicas repoint to.
	world *catalogWorld

	// trainTime accumulates wall-clock spent training, in nanoseconds;
	// atomic because background retrains write it while serving code reads.
	trainTime atomic.Int64
}

// New builds a FOSS system over a loaded workload. By default it runs over
// the Selinger backend; pass WithBackend to target another engine.
func New(w *workload.Workload, cfg Config, opts ...Option) (*System, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.workers != nil {
		cfg.Workers = *o.workers
	}
	if o.planCache != nil {
		cfg.PlanCache = *o.planCache
	}
	if o.pool != nil {
		// Width and Workers must agree for the learner's per-worker RNG
		// streams to stay deterministic.
		cfg.Workers = o.pool.Workers()
	}
	if cfg.MaxSteps < 1 {
		return nil, fmt.Errorf("core: MaxSteps must be >= 1, got %d: %w", cfg.MaxSteps, fosserr.ErrBadConfig)
	}
	if cfg.Agents < 1 {
		cfg.Agents = 1
	}
	world := o.world
	b := o.backend
	if b == nil && world != nil {
		b, _, _ = world.snapshot()
	}
	if b == nil {
		b = backend.NewSelinger(w.DB, w.Stats)
	}
	if world == nil {
		world = newCatalogWorld(w.DB, b.Stats(), b)
	}

	// The encoder's vocabulary is anchored at the world's epoch-0 schema
	// plus the configured evolution headroom, then extended to the current
	// schema — so a replica built after a DDL apply assigns the same ids (and
	// sizes the same model shapes) as one that lived through it.
	enc := planenc.NewEncoder(world.baseSchema()).
		WithHeadroom(cfg.CatalogHeadroom, 8*cfg.CatalogHeadroom)
	enc.Extend(world.schema())

	// Every component gets an independent seeded source: the AAM's weight
	// init, each agent's weight init, and each agent's action-sampling
	// stream never share a *rand.Rand, so constructing components in any
	// order (or in parallel) cannot perturb another component's stream.
	// Vocabularies size from the encoder's capacity (base schema + headroom),
	// not its current occupancy, so weight shapes never change under DDL.
	model := aam.NewModel(rand.New(rand.NewSource(cfg.Seed)), cfg.StateNet, enc.CapTables, enc.CapCols)

	space := plan.NewSpace(w.MaxTables)
	plCfg := cfg.Planner
	plCfg.MaxSteps = cfg.MaxSteps
	if cfg.DisablePenalty {
		plCfg.PenaltyGamma = 0
	}

	var planners []*planner.Planner
	for a := 0; a < cfg.Agents; a++ {
		agentCfg := plCfg
		// multi-agent: diversify strategies via discount factor and LR, as
		// the paper suggests
		agentCfg.PPO.Seed = cfg.Seed + int64(a)
		agentCfg.PPO.Gamma = plCfg.PPO.Gamma - 0.02*float64(a)
		lr := agentCfg.PPO.LR * (1 + 0.5*float64(a))
		agent := planner.NewAgent(rand.New(rand.NewSource(cfg.Seed+int64(100+a))),
			cfg.StateNet, enc.CapTables, enc.CapCols, space.Size(), agentCfg.Hidden, lr)
		// Decouple action sampling from the construction stream: weight init
		// consumed the rng above; sampling draws from its own source.
		agent.Rng = rand.New(rand.NewSource(cfg.Seed + int64(500+a)))
		planners = append(planners, &planner.Planner{
			Cfg:   agentCfg,
			Space: space,
			Enc:   enc,
			Opt:   b,
			Agent: agent,
		})
	}

	lCfg := cfg.Learner
	lCfg.Seed = cfg.Seed
	lCfg.DisableSim = cfg.DisableSimulatedEnv
	lCfg.DisableValidation = cfg.DisableValidation
	lCfg.Agents = cfg.Agents
	lCfg.Workers = cfg.Workers

	sys := &System{
		Cfg:        cfg,
		W:          w,
		Backend:    b,
		Enc:        enc,
		AAM:        model,
		Planners:   planners,
		sharedPool: o.pool,
		world:      world,
	}
	sys.Learner = learner.New(w, planners, model, b, lCfg)
	sys.RT = runtime.New(runtime.Config{
		Workers:   cfg.Workers,
		CacheSize: cfg.PlanCache,
		BackendID: b.Name(),
		Pool:      o.pool,
	}, sys.Learner)
	// The runtime owns the worker pool; the learner's episode fan-out
	// borrows it rather than running a pool of its own.
	sys.Learner.UsePool(sys.RT.Pool())
	// A replica built over an already-evolved world starts its cache
	// identity at the world's catalog epoch (nothing is cached yet; the
	// rekey just aligns the identity).
	if _, _, ep := world.snapshot(); ep > 0 {
		if err := sys.RT.RekeyCatalog(ep, nil); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// BackendName reports the identity of the backend currently under the
// doctor.
func (s *System) BackendName() string { return s.RT.BackendID() }

// SetBackend swaps the optimizer backend under the doctor: the serving path
// is quiesced, every component that talks to the engine is repointed, and
// the plan cache is invalidated and rekeyed so no plan completed by the old
// backend can ever be served from the new one. The learned models carry
// over — the point of the paper's backend portability — but feedback
// gathered on the old backend stays in the buffer, so a retrain after a
// swap blends both engines' experience unless the caller resets it.
//
// SetBackend is rejected once EnableOnline has built the blue/green replica
// pair: the standby replica is wired to the original backend, and a
// drift-triggered hot-swap would publish it — silently undoing the swap.
// Swap backends first, then enable the online loop.
func (s *System) SetBackend(b backend.Backend) error {
	if b == nil {
		return fmt.Errorf("core: nil backend: %w", fosserr.ErrBadConfig)
	}
	if s.online != nil {
		return fmt.Errorf("core: cannot swap backends under a live online loop (standby replica still targets %q); swap before EnableOnline: %w",
			s.Backend.Name(), fosserr.ErrBackendMismatch)
	}
	if b.Schema() != s.Backend.Schema() {
		return fmt.Errorf("core: backend %q serves a different schema: %w", b.Name(), fosserr.ErrBackendMismatch)
	}
	return s.RT.Rekey(b.Name(), func() error {
		s.Backend = b
		for _, pl := range s.Planners {
			pl.Opt = b
		}
		s.Learner.Exec = b
		// The live-catalog world follows the swap: a later DDL apply rebuilds
		// the new engine, not the one it replaced.
		s.world.setBackend(b)
		return nil
	})
}

// TrainContext runs the simulated-learner loop with the serving path
// quiesced; any cached plans are invalidated afterwards since the models
// changed. progress may be nil. Cancellation is honored between episodes; a
// canceled training run leaves the models mid-schedule but structurally
// consistent (updates are applied between episodes, never during one).
func (s *System) TrainContext(ctx context.Context, progress func(learner.IterStats)) error {
	start := time.Now()
	err := s.RT.Exclusive(func() error { return s.Learner.Train(ctx, progress) })
	s.trainTime.Add(int64(time.Since(start)))
	return err
}

// Train is TrainContext without cancellation.
//
// Deprecated: use TrainContext.
func (s *System) Train(progress func(learner.IterStats)) error {
	return s.TrainContext(context.Background(), progress)
}

// TrainOnContext runs incremental training over an explicit query set (the
// online service retrains on recently served queries this way) with the
// serving path quiesced; iterations overrides the configured schedule when
// positive.
func (s *System) TrainOnContext(ctx context.Context, queries []*query.Query, iterations int, progress func(learner.IterStats)) error {
	start := time.Now()
	err := s.RT.Exclusive(func() error { return s.Learner.TrainOn(ctx, queries, iterations, progress) })
	s.trainTime.Add(int64(time.Since(start)))
	return err
}

// TrainOn is TrainOnContext without cancellation.
//
// Deprecated: use TrainOnContext.
func (s *System) TrainOn(queries []*query.Query, iterations int, progress func(learner.IterStats)) error {
	return s.TrainOnContext(context.Background(), queries, iterations, progress)
}

// TrainingTime reports cumulative wall-clock spent in Train/TrainOn.
func (s *System) TrainingTime() time.Duration { return time.Duration(s.trainTime.Load()) }

// Buffer exposes the learner's execution buffer (feedback ingestion point of
// the online loop).
func (s *System) Buffer() *learner.Buffer { return s.Learner.Buf }

// CacheStats snapshots the serving path's plan-cache counters.
func (s *System) CacheStats() runtime.CacheStats { return s.RT.CacheStats() }

// OptimizeContext returns FOSS's chosen plan for the query along with the
// optimization time (model inference + hint completions), mirroring the
// paper's "SQL in → execution plan out" measurement. It serves through the
// runtime: concurrent calls are safe, repeated queries hit the plan cache,
// and cancellation is honored between rollouts.
func (s *System) OptimizeContext(ctx context.Context, q *query.Query) (*plan.CP, time.Duration, error) {
	cp, _, d, err := s.OptimizeCachedContext(ctx, q)
	return cp, d, err
}

// Optimize is OptimizeContext without cancellation.
//
// Deprecated: use OptimizeContext.
func (s *System) Optimize(q *query.Query) (*plan.CP, time.Duration, error) {
	return s.OptimizeContext(context.Background(), q)
}

// OptimizeCachedContext is OptimizeContext exposing whether the plan came
// from the cache.
func (s *System) OptimizeCachedContext(ctx context.Context, q *query.Query) (*plan.CP, bool, time.Duration, error) {
	pe, hit, d, err := s.OptimizeEvalContext(ctx, q)
	if err != nil {
		return nil, false, 0, err
	}
	return pe.CP, hit, d, nil
}

// OptimizeCached is OptimizeCachedContext without cancellation.
//
// Deprecated: use OptimizeCachedContext.
func (s *System) OptimizeCached(q *query.Query) (*plan.CP, bool, time.Duration, error) {
	return s.OptimizeCachedContext(context.Background(), q)
}

// OptimizeEvalContext is OptimizeCachedContext returning the full evaluated
// candidate (plan, encoding, edit step) instead of just the complete plan —
// the online service records executed-plan feedback against it. The returned
// PlanEval may be shared with the plan cache: treat it as read-only.
func (s *System) OptimizeEvalContext(ctx context.Context, q *query.Query) (*planner.PlanEval, bool, time.Duration, error) {
	start := time.Now()
	pe, hit, err := s.RT.Optimize(ctx, q)
	if err != nil {
		return nil, false, 0, err
	}
	return pe, hit, time.Since(start), nil
}

// OptimizeEval is OptimizeEvalContext without cancellation.
//
// Deprecated: use OptimizeEvalContext.
func (s *System) OptimizeEval(q *query.Query) (*planner.PlanEval, bool, time.Duration, error) {
	return s.OptimizeEvalContext(context.Background(), q)
}

// OptimizeEvalBatch doctors a batch of queries in one pass: cache hits
// resolve immediately and all misses share one batched state-network
// scoring pass (see learner.OptimizeBatch). out[i] and hits[i] correspond
// to qs[i]; the duration covers the whole batch. Results are bit-identical
// to per-query OptimizeEvalContext calls.
func (s *System) OptimizeEvalBatch(ctx context.Context, qs []*query.Query) ([]*planner.PlanEval, []bool, time.Duration, error) {
	start := time.Now()
	pes, hits, err := s.RT.OptimizeBatch(ctx, qs)
	if err != nil {
		return nil, nil, 0, err
	}
	return pes, hits, time.Since(start), nil
}

// OptimizeBatch is OptimizeEvalBatch returning just the complete plans.
func (s *System) OptimizeBatch(ctx context.Context, qs []*query.Query) ([]*plan.CP, time.Duration, error) {
	pes, _, d, err := s.OptimizeEvalBatch(ctx, qs)
	if err != nil {
		return nil, 0, err
	}
	cps := make([]*plan.CP, len(pes))
	for i, pe := range pes {
		cps[i] = pe.CP
	}
	return cps, d, nil
}

// ExplainCandidates re-derives the candidate pool the doctor would consider
// for q under the CURRENT model and scores every candidate against the
// selected plan — the substrate of the HTTP /v1/explain surface. It runs
// under the runtime's shared lock like any serve, so it can interleave with
// traffic but never observes a half-applied retrain. Note the scores reflect
// the model as of this call: explaining a serve from an earlier epoch after
// a hot-swap scores the same pool under the newer model.
func (s *System) ExplainCandidates(ctx context.Context, q *query.Query) ([]planner.CandidateScore, error) {
	var scores []planner.CandidateScore
	err := s.RT.Shared(func() error {
		var err error
		_, scores, err = s.Learner.Explain(ctx, q)
		return err
	})
	if err != nil {
		return nil, err
	}
	return scores, nil
}

// ExpertPlan exposes the backend's native cost-based plan (the baseline).
// It runs under the runtime's shared lock: concurrent with serving, never
// interleaved with a backend swap or catalog rekey repointing s.Backend.
func (s *System) ExpertPlan(q *query.Query) (*plan.CP, time.Duration, error) {
	start := time.Now()
	var cp *plan.CP
	err := s.RT.Shared(func() error {
		if err := s.CheckCatalog(q); err != nil {
			return err
		}
		var err error
		cp, err = s.Backend.Plan(q)
		return err
	})
	if err != nil {
		return nil, 0, err
	}
	return cp, time.Since(start), nil
}

// Execute runs a plan to completion (no timeout) and returns its simulated
// latency in milliseconds, as charged by the current backend. It runs under
// the runtime's shared lock, so the backend pointer read can never race a
// swap or catalog rekey. A plan whose query references a DDL-dropped table
// (served just before the drop landed) returns NaN instead of executing —
// the online loop counts it as a stale invalidation and drops the feedback.
func (s *System) Execute(cp *plan.CP) float64 {
	lat := math.NaN()
	_ = s.RT.Shared(func() error {
		if cp.Q != nil {
			if err := s.CheckCatalog(cp.Q); err != nil {
				return err
			}
		}
		lat = s.Backend.Execute(cp, 0).LatencyMs
		return nil
	})
	return lat
}
