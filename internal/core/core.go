// Package core assembles the FOSS system: the planner (DRL agent over plan
// edits), the asymmetric advantage model, the simulated learner, and the
// traditional optimizer + executor substrate, behind a small Train/Optimize
// API. The root package foss re-exports this for library users.
package core

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/engine/exec"
	"github.com/foss-db/foss/internal/learner"
	"github.com/foss-db/foss/internal/optimizer"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/planenc"
	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/workload"
)

// Config collects every tunable of a FOSS instance.
type Config struct {
	Seed     int64
	MaxSteps int // plan-edit episode length (paper default 3)
	Agents   int // multi-agent switch (paper §VI-C5); 1 = single agent

	StateNet aam.StateNetConfig
	Planner  planner.Config
	Learner  learner.Config

	// Ablation switches (Table II)
	DisableSimulatedEnv bool
	DisablePenalty      bool
	DisableValidation   bool
}

// DefaultConfig mirrors the paper's settings at repository scale.
func DefaultConfig() Config {
	return Config{
		Seed:     1,
		MaxSteps: 3,
		Agents:   1,
		StateNet: aam.StateNetConfig{DModel: 32, Heads: 2, Layers: 1, FFDim: 64, StateDim: 32},
		Planner:  planner.DefaultConfig(),
		Learner:  learner.DefaultConfig(),
	}
}

// System is a trained (or trainable) FOSS instance bound to one workload.
type System struct {
	Cfg Config
	W   *workload.Workload

	Enc      *planenc.Encoder
	Opt      *optimizer.Optimizer
	Exec     *exec.Executor
	AAM      *aam.Model
	Learner  *learner.Learner
	Planners []*planner.Planner

	trainTime time.Duration
}

// New builds a FOSS system over a loaded workload.
func New(w *workload.Workload, cfg Config) (*System, error) {
	if cfg.MaxSteps < 1 {
		return nil, fmt.Errorf("core: MaxSteps must be >= 1, got %d", cfg.MaxSteps)
	}
	if cfg.Agents < 1 {
		cfg.Agents = 1
	}
	enc := planenc.NewEncoder(w.DB.Schema)
	opt := optimizer.New(w.DB, w.Stats)
	ex := exec.New(w.DB)

	rng := rand.New(rand.NewSource(cfg.Seed))
	model := aam.NewModel(rng, cfg.StateNet, enc.NumTables, enc.NumCols)

	space := plan.NewSpace(w.MaxTables)
	plCfg := cfg.Planner
	plCfg.MaxSteps = cfg.MaxSteps
	if cfg.DisablePenalty {
		plCfg.PenaltyGamma = 0
	}

	var planners []*planner.Planner
	for a := 0; a < cfg.Agents; a++ {
		agentCfg := plCfg
		// multi-agent: diversify strategies via discount factor and LR, as
		// the paper suggests
		agentCfg.PPO.Seed = cfg.Seed + int64(a)
		agentCfg.PPO.Gamma = plCfg.PPO.Gamma - 0.02*float64(a)
		lr := agentCfg.PPO.LR * (1 + 0.5*float64(a))
		agent := planner.NewAgent(rand.New(rand.NewSource(cfg.Seed+int64(100+a))),
			cfg.StateNet, enc.NumTables, enc.NumCols, space.Size(), agentCfg.Hidden, lr)
		planners = append(planners, &planner.Planner{
			Cfg:   agentCfg,
			Space: space,
			Enc:   enc,
			Opt:   opt,
			Agent: agent,
		})
	}

	lCfg := cfg.Learner
	lCfg.Seed = cfg.Seed
	lCfg.DisableSim = cfg.DisableSimulatedEnv
	lCfg.DisableValidation = cfg.DisableValidation
	lCfg.Agents = cfg.Agents

	sys := &System{
		Cfg:      cfg,
		W:        w,
		Enc:      enc,
		Opt:      opt,
		Exec:     ex,
		AAM:      model,
		Planners: planners,
	}
	sys.Learner = learner.New(w, planners, model, ex, lCfg)
	return sys, nil
}

// Train runs the simulated-learner loop. progress may be nil.
func (s *System) Train(progress func(learner.IterStats)) error {
	start := time.Now()
	err := s.Learner.Train(progress)
	s.trainTime += time.Since(start)
	return err
}

// TrainingTime reports cumulative wall-clock spent in Train.
func (s *System) TrainingTime() time.Duration { return s.trainTime }

// Optimize returns FOSS's chosen plan for the query along with the
// optimization time (model inference + hint completions), mirroring the
// paper's "SQL in → execution plan out" measurement.
func (s *System) Optimize(q *query.Query) (*plan.CP, time.Duration, error) {
	start := time.Now()
	pe, err := s.Learner.Optimize(q)
	if err != nil {
		return nil, 0, err
	}
	return pe.CP, time.Since(start), nil
}

// ExpertPlan exposes the traditional optimizer's plan (the baseline).
func (s *System) ExpertPlan(q *query.Query) (*plan.CP, time.Duration, error) {
	start := time.Now()
	cp, err := s.Opt.Plan(q)
	if err != nil {
		return nil, 0, err
	}
	return cp, time.Since(start), nil
}

// Execute runs a plan to completion (no timeout) and returns its simulated
// latency in milliseconds.
func (s *System) Execute(cp *plan.CP) float64 {
	return s.Exec.Execute(cp, 0).LatencyMs
}
