package store

// Read-only store access: the follower's view of a leader's state
// directory. A ReadStore never writes — no WAL open (opening the journal
// would truncate the writer's torn tail out from under it), no MkdirAll, no
// manifest updates — and holds a SHARED flock on its own LOCK.read file
// instead of the writer's exclusive LOCK, so any number of followers can
// tail a directory concurrently with the live leader, and a restarting
// leader is never blocked by a lingering reader. The writer's atomic
// publish protocol (temp + fsync + rename) is what makes lock-free reading
// sound: every file a reader opens is either absent or complete.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

const readLockName = "LOCK.read"

// ReadStore is a read-only handle on a state directory: manifest tailing
// plus checkpoint fetches, safe concurrently with the owning writer and
// with other readers.
type ReadStore struct {
	dir  string
	lock *os.File
}

// OpenReadOnly opens a state directory for tailing. The directory must
// exist (a follower pointed at a typo'd path should fail loudly, not
// create an empty directory and tail it forever); it need not hold a
// checkpoint yet — Latest reports ok=false until the leader publishes one.
func OpenReadOnly(dir string) (*ReadStore, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("store: open read-only %s: %w", dir, err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("store: open read-only %s: not a directory", dir)
	}
	lock, err := acquireSharedLock(filepath.Join(dir, readLockName))
	if err != nil {
		return nil, err
	}
	return &ReadStore{dir: dir, lock: lock}, nil
}

// Dir returns the state directory path.
func (rs *ReadStore) Dir() string { return rs.dir }

// Latest returns the current manifest, or ok=false when no durable
// checkpoint is published yet. Reads are tolerant of torn observation: a
// manifest that fails to parse or checksum (possible when the directory is
// a non-atomically synced copy) is retried briefly and then reported as
// absent — the tailer's next poll picks it up; nothing errors.
func (rs *ReadStore) Latest() (Manifest, bool) {
	for attempt := 0; ; attempt++ {
		if m, ok := readManifest(rs.dir); ok {
			return m, true
		}
		// Distinguish "no manifest yet" (nothing to retry) from "file
		// present but unreadable" (likely mid-copy: give the writer a
		// moment).
		if _, err := os.Stat(filepath.Join(rs.dir, manifestName)); err != nil || attempt >= 3 {
			return Manifest{}, false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// ReadCheckpoint returns the raw sealed blob of a checkpoint by name. The
// caller validates and decodes it with DecodeCheckpoint; a checkpoint the
// manifest names is complete by the publish protocol (blob rename precedes
// manifest rename).
func (rs *ReadStore) ReadCheckpoint(name string) ([]byte, error) {
	return readCheckpointBlob(rs.dir, name)
}

// Close releases the shared read lock.
func (rs *ReadStore) Close() error {
	if rs.lock != nil {
		releaseLock(rs.lock)
		rs.lock = nil
	}
	return nil
}
