package store

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/query"
)

// ExecRecord is one execution-buffer entry in durable form: the query, the
// incomplete plan that was executed, the edit step it was produced at, and
// the observed outcome. The complete plan and its encoding are re-derived on
// import (deterministic under a fixed backend), so the format survives
// tensor-layout changes.
type ExecRecord struct {
	Query     *query.Query
	ICP       plan.ICP
	Step      int
	LatencyMs float64
	TimedOut  bool
}

// Checkpoint is the durable image of the active replica at one instant: the
// sealed model snapshot, the execution buffer, the serving epoch, the WAL
// sequence the image is current through (recovery replays only entries after
// it), and the tier router's plan memory. Tier is nil when tiered serving is
// off — and absent entirely in pre-tier checkpoints, which gob decodes as
// nil, keeping old state directories loadable.
type Checkpoint struct {
	Model  []byte // sealed envelope produced by core's Save
	Buffer []ExecRecord
	Epoch  uint64
	WALSeq uint64
	Tier   *TierState
	// CatalogEpoch/CatalogHash/CatalogDDL pin the schema generation the
	// image was taken at: the epoch (DDL statements applied since load), the
	// canonical schema hash, and the full applied-DDL log — recovery replays
	// the log over the load-time schema before loading the model, and
	// refuses cross-epoch warm-starts the way backend mismatches are
	// refused. All three gob-decode as zero/nil in pre-catalog checkpoints,
	// which reads as "epoch 0, no DDL" — exactly right.
	CatalogEpoch uint64
	CatalogHash  uint64
	CatalogDDL   []catalog.DDL
}

// TierState is the durable image of the tier router: every pinned tier-0
// plan plus the per-fingerprint routing history. Pins carry the same durable
// identity as WAL feedback records (query × incomplete plan × step) — the
// complete plan and encoding are re-derived on import, so the format
// survives tensor-layout changes exactly like the execution buffer does.
type TierState struct {
	Pins    []PinnedPlan
	History []TierHistory
}

// PinnedPlan is one tier-0 plan-memory entry in durable form.
type PinnedPlan struct {
	Fingerprint uint64
	Query       *query.Query
	ICP         plan.ICP
	Step        int
	LatencyMs   float64 // best observed latency that earned the pin
	Epoch       uint64  // model epoch the pin was promoted at
}

// TierHistory is one fingerprint's routing history in durable form.
type TierHistory struct {
	Fingerprint uint64
	Seen        uint64
	Wins        int
	Regressed   bool
}

// Manifest points at the latest good checkpoint. It is the recovery root:
// written atomically (temp + rename) after the checkpoint file itself is
// durable, so a crash between the two leaves the previous manifest — and
// therefore a consistent recovery — intact.
type Manifest struct {
	Version    int    `json:"version"`
	Checkpoint string `json:"checkpoint"` // filename under checkpoints/
	Backend    string `json:"backend"`
	Epoch      uint64 `json:"epoch"`
	WALSeq     uint64 `json:"wal_seq"`
	// CRC is the IEEE checksum over the other fields' canonical form. It
	// guards readers that observe the manifest through a non-atomic channel
	// (an rsync'd copy, a snapshotting filesystem, a partial HTTP body): a
	// torn manifest fails the check and reads as "not yet published" instead
	// of poisoning a follower. 0 (absent in pre-repl manifests) skips the
	// check for backward compatibility.
	CRC uint32 `json:"crc,omitempty"`
}

// checksum computes the manifest's integrity check over every field except
// CRC itself.
func (m Manifest) checksum() uint32 {
	return crc32.ChecksumIEEE([]byte(fmt.Sprintf("%d|%s|%s|%d|%d",
		m.Version, m.Checkpoint, m.Backend, m.Epoch, m.WALSeq)))
}

const (
	manifestName   = "MANIFEST"
	walName        = "wal.log"
	lockName       = "LOCK"
	checkpointDir  = "checkpoints"
	keepCheckpoint = 2 // the manifest target plus one predecessor
)

// Store is one state directory: the WAL plus the checkpoint/manifest pair,
// held exclusively through an advisory lock for the store's lifetime.
type Store struct {
	dir  string
	wal  *WAL
	lock *os.File
}

// Open opens (creating if needed) a state directory. Exactly one live Store
// may hold a directory at a time: Open takes an exclusive flock on its LOCK
// file and fails fast with fosserr.ErrStoreLocked when another store — a
// second process, or two shards misconfigured onto one directory inside
// this one — already holds it. Two writers interleaving appends on one WAL
// would corrupt it silently; the lock turns that misconfiguration into a
// startup error. A kernel-held flock dies with its process, so a kill -9
// never strands a stale lock.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, checkpointDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	lock, err := acquireLock(filepath.Join(dir, lockName))
	if err != nil {
		return nil, err
	}
	wal, err := OpenWAL(filepath.Join(dir, walName))
	if err != nil {
		releaseLock(lock)
		return nil, err
	}
	// Make the state directory's own entries (wal.log, checkpoints/)
	// durable: a wal.log created just before power loss must not vanish
	// with its acknowledged records.
	if err := syncDir(dir); err != nil {
		wal.Close()
		releaseLock(lock)
		return nil, err
	}
	return &Store{dir: dir, wal: wal, lock: lock}, nil
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

// WAL returns the feedback journal.
func (s *Store) WAL() *WAL { return s.wal }

// Close closes the WAL and releases the directory lock, letting the next
// Open (a warm restart, a failover peer) take over the state.
func (s *Store) Close() error {
	err := s.wal.Close()
	if s.lock != nil {
		releaseLock(s.lock)
		s.lock = nil
	}
	return err
}

// Latest returns the current manifest, or ok=false when the directory has
// no durable checkpoint yet (cold start).
func (s *Store) Latest() (Manifest, bool) {
	return readManifest(s.dir)
}

// readManifest loads and validates a directory's manifest. A missing file,
// malformed JSON, or a CRC mismatch all read as "no manifest" — on the
// writer's own filesystem the atomic rename makes those impossible in
// steady state, but a reader observing a synced copy mid-transfer sees a
// torn file as not-yet-published rather than an error. Manifests without a
// CRC (written before the field existed) are accepted.
func readManifest(dir string) (Manifest, bool) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return Manifest{}, false
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil || m.Checkpoint == "" {
		return Manifest{}, false
	}
	if m.CRC != 0 && m.CRC != m.checksum() {
		return Manifest{}, false
	}
	return m, true
}

// ReadCheckpoint returns the raw sealed blob of a checkpoint file by name —
// the replication fetch path. The name is validated against the checkpoint
// naming scheme so a wire-supplied name can never escape the checkpoints
// directory.
func (s *Store) ReadCheckpoint(name string) ([]byte, error) {
	return readCheckpointBlob(s.dir, name)
}

func readCheckpointBlob(dir, name string) ([]byte, error) {
	if !ValidCheckpointName(name) {
		return nil, fmt.Errorf("store: invalid checkpoint name %q", name)
	}
	blob, err := os.ReadFile(filepath.Join(dir, checkpointDir, name))
	if err != nil {
		return nil, fmt.Errorf("store: read checkpoint %s: %w", name, err)
	}
	return blob, nil
}

// ValidCheckpointName reports whether name matches the ckpt-<epoch>-<seq>.snap
// scheme WriteCheckpoint produces — the allowlist for wire-supplied
// checkpoint fetches (no separators, no traversal).
func ValidCheckpointName(name string) bool {
	const prefix, suffix = "ckpt-", ".snap"
	if len(name) != len(prefix)+8+1+12+len(suffix) {
		return false
	}
	if name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	for i, c := range mid {
		if i == 8 {
			if c != '-' {
				return false
			}
			continue
		}
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// DecodeCheckpoint validates a sealed checkpoint blob and decodes it,
// returning the checkpoint and the backend tag it was sealed under — the
// follower-side half of WriteCheckpoint.
func DecodeCheckpoint(blob []byte) (Checkpoint, string, error) {
	env, err := Unseal(blob)
	if err != nil {
		return Checkpoint{}, "", err
	}
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(env.Payload)).Decode(&ck); err != nil {
		return Checkpoint{}, "", fmt.Errorf("store: checkpoint decode: %v: %w", err, fosserr.ErrSnapshotCorrupt)
	}
	return ck, env.Backend, nil
}

// WriteCheckpoint seals the checkpoint into an envelope, writes it with
// temp+rename+fsync, repoints the manifest atomically, and prunes old
// checkpoint files. It returns the checkpoint filename. The manifest only
// moves forward: a write carrying an older (epoch, WAL sequence) than the
// current recovery point leaves the manifest alone, so a slow concurrent
// checkpointer can never repoint recovery at stale state.
func (s *Store) WriteCheckpoint(backend string, ck Checkpoint) (string, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(ck); err != nil {
		return "", fmt.Errorf("store: checkpoint encode: %w", err)
	}
	blob, err := Seal(backend, payload.Bytes())
	if err != nil {
		return "", err
	}
	// Widths chosen so lexicographic order == chronological order for the
	// lifetime of any plausible deployment (prune sorts these names): 10^8
	// epochs, 10^12 journaled executions.
	name := fmt.Sprintf("ckpt-%08d-%012d.snap", ck.Epoch, ck.WALSeq)
	path := filepath.Join(s.dir, checkpointDir, name)
	if err := atomicWrite(path, blob); err != nil {
		return "", err
	}
	if cur, ok := s.Latest(); ok && (cur.Epoch > ck.Epoch || (cur.Epoch == ck.Epoch && cur.WALSeq > ck.WALSeq)) {
		s.prune(cur.Checkpoint)
		return name, nil
	}
	m := Manifest{Version: 1, Checkpoint: name, Backend: backend, Epoch: ck.Epoch, WALSeq: ck.WALSeq}
	m.CRC = m.checksum()
	mj, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", err
	}
	if err := atomicWrite(filepath.Join(s.dir, manifestName), append(mj, '\n')); err != nil {
		return "", err
	}
	s.prune(name)
	return name, nil
}

// Recovery is everything a warm restart rebuilds from: the manifest's
// checkpoint plus the WAL tail journaled after it.
type Recovery struct {
	Manifest   Manifest
	Checkpoint Checkpoint
	Tail       []WALEntry
}

// Recover loads the latest checkpoint and the WAL entries past it. It
// returns (nil, nil) on a cold start (no manifest). The checkpoint's
// envelope is validated here (version, checksum); its backend tag is
// returned via the manifest for the caller to check against the live
// system — the inner model blob re-validates on Load anyway.
func (s *Store) Recover() (*Recovery, error) {
	m, ok := s.Latest()
	if !ok {
		return nil, nil
	}
	blob, err := os.ReadFile(filepath.Join(s.dir, checkpointDir, m.Checkpoint))
	if err != nil {
		return nil, fmt.Errorf("store: read checkpoint %s: %w", m.Checkpoint, err)
	}
	env, err := Unseal(blob)
	if err != nil {
		return nil, fmt.Errorf("store: checkpoint %s: %w", m.Checkpoint, err)
	}
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(env.Payload)).Decode(&ck); err != nil {
		return nil, fmt.Errorf("store: checkpoint %s decode: %v: %w", m.Checkpoint, err, fosserr.ErrSnapshotCorrupt)
	}
	rec := &Recovery{Manifest: m, Checkpoint: ck}
	err = s.wal.Replay(ck.WALSeq, func(e WALEntry) error {
		rec.Tail = append(rec.Tail, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// prune removes checkpoint files older than the keepCheckpoint most recent,
// never touching the manifest target. Best-effort: pruning failures are not
// recovery failures.
func (s *Store) prune(current string) {
	dir := filepath.Join(s.dir, checkpointDir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // ckpt-<epoch>-<seq> sorts chronologically
	if len(names) <= keepCheckpoint {
		return
	}
	for _, n := range names[:len(names)-keepCheckpoint] {
		if n != current {
			_ = os.Remove(filepath.Join(dir, n))
		}
	}
}

// atomicWrite lands data at path via temp file + fsync + rename + parent
// directory fsync, so readers never observe a half-written file, a crash
// leaves either the old or the new content, and the rename itself survives
// power loss (a renamed file whose directory entry was never flushed would
// silently unwind on reboot).
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("store: rename into %s: %w", path, err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so entry creations/renames inside it are
// durable. Best-effort on filesystems that refuse directory fsync (returns
// their error for callers that care).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}
