package store

import (
	"errors"
	"path/filepath"
	"testing"

	"github.com/foss-db/foss/internal/fosserr"
)

// TestOpenRefusesDoubleOpen: two live stores on one state directory would
// interleave WAL appends and corrupt the journal — the second Open must
// fail fast with ErrStoreLocked, and a Close must hand the directory over.
func TestOpenRefusesDoubleOpen(t *testing.T) {
	dir := t.TempDir()
	st1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, fosserr.ErrStoreLocked) {
		t.Fatalf("second open error = %v, want ErrStoreLocked", err)
	}
	// The refused open must not have disturbed the holder: its WAL still
	// accepts appends.
	if _, err := st1.WAL().Append(WALEntry{Kind: KindSwap, Epoch: 2}); err != nil {
		t.Fatalf("holder's WAL broken by refused open: %v", err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	defer st2.Close()
	if got := st2.WAL().Len(); got != 1 {
		t.Fatalf("takeover lost the journal: len=%d, want 1", got)
	}
}

// TestLockScopedPerDirectory: sibling tenant directories under one root
// lock independently — the sharded layout <state-dir>/<tenant>/ depends on
// that.
func TestLockScopedPerDirectory(t *testing.T) {
	root := t.TempDir()
	a, err := Open(filepath.Join(root, "acme"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(filepath.Join(root, "globex"))
	if err != nil {
		t.Fatalf("sibling dir refused: %v", err)
	}
	defer b.Close()
}
