package store

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/query"
)

func testQuery(v int64) *query.Query {
	return &query.Query{
		ID:     "wal_q",
		Tables: []query.TableRef{{Table: "t", Alias: "t"}, {Table: "u", Alias: "u"}},
		Joins:  []query.JoinPred{{LA: "t", LC: "id", RA: "u", RC: "id"}},
		Filters: []query.Filter{
			{Alias: "t", Col: "c", Op: query.Eq, Val: v},
		},
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	payload := []byte("the learned state")
	blob, err := Seal("selinger", payload)
	if err != nil {
		t.Fatal(err)
	}
	env, err := Unseal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if env.Backend != "selinger" || env.Version != Version || !bytes.Equal(env.Payload, payload) {
		t.Fatalf("round trip mangled envelope: %+v", env)
	}
}

func TestUnsealRejections(t *testing.T) {
	good, err := Seal("selinger", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	// A version-skewed envelope: same wire shape, future version number.
	var skew bytes.Buffer
	skew.WriteString(magic)
	if err := gob.NewEncoder(&skew).Encode(sealed{Version: Version + 1, Backend: "selinger", Payload: []byte("p")}); err != nil {
		t.Fatal(err)
	}
	// A corrupt envelope: one payload byte flipped after sealing.
	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)-1] ^= 0xff

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"raw legacy gob", []byte("not an envelope at all"), fosserr.ErrSnapshotCorrupt},
		{"empty", nil, fosserr.ErrSnapshotCorrupt},
		{"version skew", skew.Bytes(), fosserr.ErrSnapshotVersion},
		{"flipped payload byte", corrupt, fosserr.ErrSnapshotCorrupt},
		{"truncated envelope", good[:len(good)/2], fosserr.ErrSnapshotCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Unseal(tc.data)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
}

func TestWALAppendReplayAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		seq, err := w.Append(WALEntry{
			Kind:        KindFeedback,
			Fingerprint: uint64(i),
			Query:       testQuery(i),
			ICP:         plan.ICP{Order: []string{"t", "u"}, Methods: []plan.JoinMethod{0}},
			Step:        1,
			LatencyMs:   float64(i) * 1.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq %d, want %d", seq, i)
		}
	}
	if _, err := w.Append(WALEntry{Kind: KindSwap, Epoch: 2}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Reopen: sequence numbering and count must continue where they left off.
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Len() != 4 || w2.LastSeq() != 4 {
		t.Fatalf("reopened wal: len=%d lastSeq=%d, want 4/4", w2.Len(), w2.LastSeq())
	}
	var got []WALEntry
	if err := w2.Replay(2, func(e WALEntry) error { got = append(got, e); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Seq != 3 || got[1].Kind != KindSwap || got[1].Epoch != 2 {
		t.Fatalf("replay after seq 2: %+v", got)
	}
	if got[0].Query.Filters[0].Val != 3 || got[0].LatencyMs != 4.5 {
		t.Fatalf("feedback entry mangled: %+v", got[0])
	}
}

func TestWALTornTailTruncatedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 2; i++ {
		if _, err := w.Append(WALEntry{Kind: KindFeedback, Fingerprint: uint64(i), Query: testQuery(i), LatencyMs: 1}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Simulate a crash mid-append: chop bytes off the last record.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Len() != 1 || w2.LastSeq() != 1 {
		t.Fatalf("torn tail not dropped: len=%d lastSeq=%d", w2.Len(), w2.LastSeq())
	}
	// The journal must be appendable again, on a clean record boundary.
	if seq, err := w2.Append(WALEntry{Kind: KindFeedback, Fingerprint: 9, Query: testQuery(9), LatencyMs: 1}); err != nil || seq != 2 {
		t.Fatalf("append after torn-tail truncation: seq=%d err=%v", seq, err)
	}
	n := 0
	if err := w2.Replay(0, func(WALEntry) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replay after repair saw %d records, want 2", n)
	}
}

func TestCheckpointManifestAndPrune(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, ok := st.Latest(); ok {
		t.Fatal("fresh store claims a manifest")
	}
	if rec, err := st.Recover(); err != nil || rec != nil {
		t.Fatalf("fresh store recovery: rec=%v err=%v, want nil/nil", rec, err)
	}

	model, err := Seal("selinger", []byte("weights"))
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for epoch := uint64(1); epoch <= 4; epoch++ {
		last, err = st.WriteCheckpoint("selinger", Checkpoint{
			Model:  model,
			Buffer: []ExecRecord{{Query: testQuery(int64(epoch)), Step: 0, LatencyMs: 5}},
			Epoch:  epoch,
			WALSeq: epoch * 10,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	m, ok := st.Latest()
	if !ok || m.Checkpoint != last || m.Epoch != 4 || m.WALSeq != 40 || m.Backend != "selinger" {
		t.Fatalf("manifest %+v, want checkpoint %s epoch 4", m, last)
	}
	rec, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint.Epoch != 4 || len(rec.Checkpoint.Buffer) != 1 || !bytes.Equal(rec.Checkpoint.Model, model) {
		t.Fatalf("recovered checkpoint mangled: %+v", rec.Checkpoint)
	}
	// The manifest never moves backwards: a late write carrying an older
	// (epoch, walseq) leaves the newer recovery point in place.
	if _, err := st.WriteCheckpoint("selinger", Checkpoint{Model: model, Epoch: 2, WALSeq: 5}); err != nil {
		t.Fatal(err)
	}
	if m, _ := st.Latest(); m.Epoch != 4 || m.WALSeq != 40 {
		t.Fatalf("stale checkpoint repointed the manifest: %+v", m)
	}

	// Old checkpoints pruned down to keepCheckpoint, manifest target kept.
	entries, err := os.ReadDir(filepath.Join(st.Dir(), checkpointDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != keepCheckpoint {
		t.Fatalf("prune left %d checkpoints, want %d", len(entries), keepCheckpoint)
	}
	found := false
	for _, e := range entries {
		if e.Name() == last {
			found = true
		}
	}
	if !found {
		t.Fatal("prune removed the manifest's checkpoint")
	}
}

func TestRecoverRejectsCorruptCheckpoint(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	model, _ := Seal("selinger", []byte("weights"))
	name, err := st.WriteCheckpoint("selinger", Checkpoint{Model: model, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(st.Dir(), checkpointDir, name)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0xff
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recover(); !errors.Is(err, fosserr.ErrSnapshotCorrupt) {
		t.Fatalf("corrupt checkpoint recovery: %v, want ErrSnapshotCorrupt", err)
	}
}
