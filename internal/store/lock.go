package store

import (
	"errors"
	"fmt"
	"os"
	"syscall"

	"github.com/foss-db/foss/internal/fosserr"
)

// acquireLock takes a non-blocking exclusive flock on path, creating the
// file if needed. flock is advisory but exactly right here: every writer of
// a state directory is this package, the lock is scoped to the open file
// description (so two Opens inside one process conflict just like two
// processes do), and the kernel releases it when the holder dies — a
// SIGKILLed doctor never needs a lock-cleanup step before its warm restart.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open lockfile %s: %w", path, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
			return nil, fmt.Errorf("store: %s held by another live store: %w", path, fosserr.ErrStoreLocked)
		}
		return nil, fmt.Errorf("store: flock %s: %w", path, err)
	}
	return f, nil
}

// acquireSharedLock takes a non-blocking shared flock on path, creating the
// file if needed. Readers share it freely with each other. It is taken on a
// DIFFERENT file than the writer's exclusive lock (LOCK.read vs LOCK):
// flock's SH/EX conflict is symmetric, so a reader holding LOCK_SH on the
// writer's lockfile would both fail against a live leader and block a
// restarting leader against a lingering reader — exactly the coupling a
// read-only open must not introduce. Reader correctness never came from the
// lock anyway (every file a reader opens is published atomically via
// temp+rename); the shared lock only marks reader liveness so tooling can
// tell "tailed" from "abandoned".
func acquireSharedLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open read lockfile %s: %w", path, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_SH|syscall.LOCK_NB); err != nil {
		f.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
			return nil, fmt.Errorf("store: %s held exclusively: %w", path, fosserr.ErrStoreLocked)
		}
		return nil, fmt.Errorf("store: flock %s: %w", path, err)
	}
	return f, nil
}

// releaseLock drops the flock and closes the lockfile. Best-effort: closing
// the descriptor releases the lock even if the explicit unlock fails.
func releaseLock(f *os.File) {
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	_ = f.Close()
}
