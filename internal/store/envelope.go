// Package store is the durability subsystem of the online doctor: the
// versioned snapshot envelope every persisted model travels in, the
// append-only feedback WAL that makes executed-plan experience survive a
// crash, and the checkpoint/manifest layout that lets a restarted fossd
// recover model weights, execution buffer, and epoch from disk and resume
// serving without retraining.
//
// On-disk layout of a state directory:
//
//	state/
//	  MANIFEST              # JSON pointer at the latest good checkpoint
//	  wal.log               # append-only feedback journal
//	  checkpoints/
//	    ckpt-000007.snap    # sealed envelope around a Checkpoint gob
//
// Everything durable goes through the envelope: a magic prefix, a format
// version, the identity of the optimizer backend the state was learned
// under, and a CRC32 of the payload. Load-time validation turns the silent
// cross-backend snapshot load (the originating bug) into
// fosserr.ErrBackendMismatch, version skew into fosserr.ErrSnapshotVersion,
// and bit rot into fosserr.ErrSnapshotCorrupt.
package store

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/crc32"

	"github.com/foss-db/foss/internal/fosserr"
)

// magic prefixes every sealed envelope. A raw gob (the pre-envelope snapshot
// format) can never start with these bytes, so legacy blobs are rejected
// loudly instead of half-decoding.
const magic = "FOSSNAP\x01"

// Version is the envelope format version this build writes and the only one
// it accepts. Bump it when the sealed payload's schema changes
// incompatibly.
const Version uint32 = 1

// Envelope is the decoded header + payload of a sealed blob.
type Envelope struct {
	Version uint32
	// Backend identifies the optimizer backend the sealed state was learned
	// under. Consumers reject a mismatch: a doctor trained over selinger
	// must never be served over gaussim.
	Backend string
	Payload []byte
}

// sealed is the gob wire form following the magic prefix.
type sealed struct {
	Version uint32
	Backend string
	CRC     uint32
	Payload []byte
}

// Seal wraps a payload in the versioned, checksummed, backend-tagged
// envelope.
func Seal(backend string, payload []byte) ([]byte, error) {
	return SealVersion(Version, backend, payload)
}

// SealVersion is Seal with an explicit version number. Normal writers use
// Seal; migration tooling and version-skew tests reach for this.
func SealVersion(version uint32, backend string, payload []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	env := sealed{
		Version: version,
		Backend: backend,
		CRC:     crc32.ChecksumIEEE(payload),
		Payload: payload,
	}
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return nil, fmt.Errorf("store: seal: %w", err)
	}
	return buf.Bytes(), nil
}

// Unseal validates a sealed blob — magic, version, checksum — and returns
// the envelope. Callers check Envelope.Backend themselves (only they know
// which backend they are running over).
func Unseal(data []byte) (Envelope, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return Envelope{}, fmt.Errorf("store: not a FOSS snapshot envelope (legacy raw gob or foreign file): %w", fosserr.ErrSnapshotCorrupt)
	}
	var env sealed
	if err := gob.NewDecoder(bytes.NewReader(data[len(magic):])).Decode(&env); err != nil {
		return Envelope{}, fmt.Errorf("store: envelope decode: %v: %w", err, fosserr.ErrSnapshotCorrupt)
	}
	if env.Version != Version {
		return Envelope{}, fmt.Errorf("store: snapshot envelope version %d, this build speaks %d: %w", env.Version, Version, fosserr.ErrSnapshotVersion)
	}
	if crc32.ChecksumIEEE(env.Payload) != env.CRC {
		return Envelope{}, fmt.Errorf("store: payload checksum mismatch: %w", fosserr.ErrSnapshotCorrupt)
	}
	return Envelope{Version: env.Version, Backend: env.Backend, Payload: env.Payload}, nil
}
