package store

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/foss-db/foss/internal/fosserr"
)

// TestReadOnlyLockCombinations pins the fleet's locking matrix: a writer
// and any number of readers coexist on one directory (in either open
// order), readers coexist with each other, and two writers still exclude.
func TestReadOnlyLockCombinations(t *testing.T) {
	dir := t.TempDir()

	// writer then reader
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatalf("reader against live writer: %v", err)
	}

	// reader then reader
	r2, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatalf("second concurrent reader: %v", err)
	}

	// writer vs writer still excludes
	if _, err := Open(dir); !errors.Is(err, fosserr.ErrStoreLocked) {
		t.Fatalf("second writer: want ErrStoreLocked, got %v", err)
	}

	// reader then writer: a restarting leader must never block on readers
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir)
	if err != nil {
		t.Fatalf("writer restart with two live readers: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenReadOnlyMissingDir: a follower pointed at a nonexistent path
// fails loudly instead of creating and tailing an empty directory.
func TestOpenReadOnlyMissingDir(t *testing.T) {
	if _, err := OpenReadOnly(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("want error for missing directory")
	}
}

// TestManifestCRCRejectsTornWrite: a manifest whose CRC does not match its
// fields (a torn or bit-flipped observation through a non-atomic sync
// channel) reads as not-yet-published, never as a bogus recovery point.
func TestManifestCRCRejectsTornWrite(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.WriteCheckpoint("fake", Checkpoint{Model: []byte("m"), Epoch: 1, WALSeq: 0}); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if m, ok := rs.Latest(); !ok || m.Epoch != 1 || m.CRC == 0 {
		t.Fatalf("intact manifest: ok=%v m=%+v", ok, m)
	}

	// Truncated mid-write: invalid JSON.
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := rs.Latest(); ok {
		t.Fatal("torn manifest read as published")
	}

	// Valid JSON, wrong CRC: fields from one write, checksum from another.
	tampered := []byte(`{"version":1,"checkpoint":"ckpt-00000001-000000000000.snap","backend":"fake","epoch":9,"wal_seq":0,"crc":12345}` + "\n")
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := rs.Latest(); ok {
		t.Fatal("CRC-mismatched manifest read as published")
	}

	// Pre-CRC manifest (field absent): accepted for back-compat.
	legacy := []byte(`{"version":1,"checkpoint":"ckpt-00000001-000000000000.snap","backend":"fake","epoch":1,"wal_seq":0}` + "\n")
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	if m, ok := rs.Latest(); !ok || m.Epoch != 1 {
		t.Fatalf("legacy manifest without CRC: ok=%v m=%+v", ok, m)
	}
}

// TestPublishTailRace races a publishing writer against a tailing reader:
// the reader must never observe an error, a torn manifest, or a manifest
// going backwards, and every checkpoint the manifest names must decode
// intact at the moment it is current.
func TestPublishTailRace(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rs, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	const rounds = 40
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= rounds; i++ {
			if _, err := st.WriteCheckpoint("fake", Checkpoint{
				Model:  []byte("model"),
				Epoch:  uint64(i),
				WALSeq: uint64(i),
			}); err != nil {
				t.Errorf("publish %d: %v", i, err)
				return
			}
		}
	}()

	var lastEpoch uint64
	for {
		m, ok := rs.Latest()
		if !ok {
			continue
		}
		if m.Epoch < lastEpoch {
			t.Fatalf("manifest went backwards: %d after %d", m.Epoch, lastEpoch)
		}
		lastEpoch = m.Epoch
		blob, err := rs.ReadCheckpoint(m.Checkpoint)
		if err != nil {
			// The leader prunes old checkpoints: a fetch can lose the race
			// with a newer publish, but then the manifest must have moved on.
			if m2, ok2 := rs.Latest(); ok2 && m2.Checkpoint != m.Checkpoint {
				continue
			}
			t.Fatalf("fetch current checkpoint %s: %v", m.Checkpoint, err)
		}
		ck, backend, err := DecodeCheckpoint(blob)
		if err != nil {
			t.Fatalf("decode %s: %v", m.Checkpoint, err)
		}
		if backend != "fake" || ck.Epoch != m.Epoch {
			t.Fatalf("checkpoint/manifest mismatch: ck.Epoch=%d m.Epoch=%d", ck.Epoch, m.Epoch)
		}
		if m.Epoch == rounds {
			break
		}
	}
	wg.Wait()
}

// TestValidCheckpointName pins the wire-fetch allowlist.
func TestValidCheckpointName(t *testing.T) {
	if !ValidCheckpointName("ckpt-00000001-000000000042.snap") {
		t.Fatal("canonical name rejected")
	}
	for _, bad := range []string{
		"", "ckpt-1-2.snap", "../../etc/passwd",
		"ckpt-00000001-000000000042.snap.bak",
		"ckpt-0000000a-000000000042.snap",
		"ckpt-00000001/000000000042.snap",
		"ckpt-00000001-00000000004.snapp",
	} {
		if ValidCheckpointName(bad) {
			t.Fatalf("accepted %q", bad)
		}
	}
}
