package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/query"
)

// RecordKind distinguishes WAL record types.
type RecordKind uint8

const (
	// KindFeedback journals one executed plan's identity and observed
	// latency — appended by Record before the feedback enters the execution
	// buffer.
	KindFeedback RecordKind = iota
	// KindSwap journals a completed hot-swap (epoch bump). Replay uses it to
	// reset the drift detector's rolling window at the same points the live
	// loop did.
	KindSwap
	// KindPromote journals a fingerprint's plan entering tier-0 plan memory
	// (its observed latency beat the expert baseline over the promotion
	// streak). Informational: replay re-derives promotions from the feedback
	// records themselves, so these records exist for auditability, not state.
	KindPromote
	// KindDemote journals a pinned plan's escalation back to tier 2 after a
	// latency regression. Informational, like KindPromote.
	KindDemote
	// KindDDL journals one applied schema-evolution batch: the DDL statements
	// themselves plus the serving epoch the apply published. Replay re-applies
	// the batch to the catalog at the same point in the feedback stream the
	// live loop did, so recovered state is planned against the same schema
	// generations.
	KindDDL
)

// WALEntry is one journal record. Feedback entries carry the executed
// plan's durable identity — the query itself (so replay is self-contained:
// drift-generated queries are not in any workload split), the incomplete
// plan, and the edit step — plus the observed latency. The complete plan
// and its encoding are NOT journaled: both are deterministic functions of
// (query, ICP) under a fixed backend, so replay re-derives them, keeping
// the on-disk format independent of tensor-layout changes.
type WALEntry struct {
	Seq         uint64
	Kind        RecordKind
	Fingerprint uint64
	Query       *query.Query // nil for swap records
	ICP         plan.ICP
	Step        int
	LatencyMs   float64
	TimedOut    bool
	Epoch       uint64        // swap/ddl records: the serving epoch published
	DDL         []catalog.DDL // ddl records: the applied batch (absent decodes nil)
}

// walRecordLimit bounds one record's encoded size — a corrupted length
// prefix must not drive a multi-gigabyte allocation during replay.
const walRecordLimit = 1 << 24

// WAL is the append-only feedback journal. Appends are serialized by the
// caller (the loop journals under its own ordering); Len/LastSeq are safe
// to read concurrently with appends only from the appending goroutine's
// perspective — the loop snapshots them under its lock.
type WAL struct {
	f       *os.File
	path    string
	nextSeq uint64
	count   uint64
	// end is the offset just past the last durable record. A failed append
	// truncates back to it — a torn frame left mid-file would make every
	// later (successfully fsynced) record unreachable to replay.
	end int64
	// broken latches when a failed append cannot be rolled back; further
	// appends refuse rather than acknowledge records replay will never see.
	broken bool
}

// OpenWAL opens (creating if absent) the journal at path, scans it to find
// the next sequence number, and truncates any torn tail — a crash mid-append
// leaves a half-written record that replay and future appends must not trip
// over.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	w := &WAL{f: f, path: path, nextSeq: 1} // sequences start at 1; 0 means "before everything"
	goodEnd := int64(0)
	err = replayFile(f, func(e WALEntry, end int64) {
		w.nextSeq = e.Seq + 1
		w.count++
		goodEnd = end
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop the torn tail (if any) so appends extend a clean record boundary.
	if fi, err := f.Stat(); err == nil && fi.Size() > goodEnd {
		if err := f.Truncate(goodEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncate torn wal tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	w.end = goodEnd
	return w, nil
}

// Append journals one entry (assigning its sequence number), syncs it to
// disk, and returns the sequence. The fsync is the durability point: a
// feedback record that Append returned for survives a crash. A failed
// append rolls the file back to the last durable record boundary; if even
// that fails the journal latches broken and refuses further appends —
// acknowledging records that a torn mid-file frame would hide from replay
// is worse than not journaling at all.
func (w *WAL) Append(e WALEntry) (uint64, error) {
	if w.broken {
		return 0, fmt.Errorf("store: wal broken by an earlier failed append (reopen to repair): %w", fosserr.ErrSnapshotCorrupt)
	}
	e.Seq = w.nextSeq
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(e); err != nil {
		return 0, fmt.Errorf("store: wal encode: %w", err)
	}
	var frame bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	frame.Write(hdr[:])
	frame.Write(payload.Bytes())
	if _, err := w.f.Write(frame.Bytes()); err != nil {
		w.rollback()
		return 0, fmt.Errorf("store: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.rollback()
		return 0, fmt.Errorf("store: wal sync: %w", err)
	}
	w.nextSeq = e.Seq + 1
	w.count++
	w.end += int64(frame.Len())
	return e.Seq, nil
}

// rollback truncates a possibly-torn frame back to the last durable record
// boundary after a failed append, latching broken if the file cannot be
// restored.
func (w *WAL) rollback() {
	if err := w.f.Truncate(w.end); err != nil {
		w.broken = true
		return
	}
	if _, err := w.f.Seek(w.end, io.SeekStart); err != nil {
		w.broken = true
	}
}

// Len returns the number of intact records in the journal.
func (w *WAL) Len() uint64 { return w.count }

// LastSeq returns the sequence of the most recent record, or 0 when the
// journal is empty (sequences start at 1).
func (w *WAL) LastSeq() uint64 { return w.nextSeq - 1 }

// Close closes the underlying file.
func (w *WAL) Close() error { return w.f.Close() }

// Replay streams every intact record with Seq > afterSeq, in order. A torn
// or corrupt tail ends the stream silently (those bytes never acknowledged
// as durable); corruption before the end surfaces the same way — everything
// after the first bad frame is unreachable, which is the append-only
// contract.
func (w *WAL) Replay(afterSeq uint64, fn func(WALEntry) error) error {
	f, err := os.Open(w.path)
	if err != nil {
		return fmt.Errorf("store: wal replay open: %w", err)
	}
	defer f.Close()
	var inner error
	err = replayFile(f, func(e WALEntry, _ int64) {
		if inner != nil || e.Seq <= afterSeq {
			return
		}
		inner = fn(e)
	})
	if err != nil {
		return err
	}
	return inner
}

// replayFile decodes frames from the start of f, calling fn with each intact
// entry and the file offset just past it. It stops (without error) at the
// first torn or corrupt frame.
func replayFile(f *os.File, fn func(e WALEntry, end int64)) error {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	// Counting wraps the buffered reader, not the file: the count must be
	// bytes this decoder consumed, not bytes the buffer prefetched.
	r := newCountingReader(bufio.NewReader(f))
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // clean end or torn header
			}
			return err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > walRecordLimit {
			return nil // corrupt length prefix: treat as torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // torn payload
			}
			return err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return nil // bit rot or torn write: stop at the last good frame
		}
		var e WALEntry
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
			return nil // framed but undecodable: same treatment
		}
		fn(e, r.n)
	}
}

// countingReader tracks how many bytes have been consumed, so replay knows
// the offset of the last intact record boundary.
type countingReader struct {
	r io.Reader
	n int64
}

func newCountingReader(r io.Reader) *countingReader { return &countingReader{r: r} }

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
