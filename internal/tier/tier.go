// Package tier implements the three-tier optimizer that fronts the online
// doctor: a learned router sends each query to the cheapest tier whose
// history says it can be trusted.
//
//   - Tier 0 — plan memory: a per-tenant map from query fingerprint (scoped
//     by the shared composite serving identity, backend × epoch) to the best
//     observed plan. A plan is pinned only after its observed latency beat
//     the expert baseline over a configurable win streak, so a tier-0 hit is
//     a plan feedback has already proven. Hits cost one map lookup —
//     microseconds, zero allocations.
//   - Tier 1 — greedy micro-planner: a statistics-free greedy join orderer
//     (see Greedy) for fingerprints with history but no pinned winner.
//     Microsecond-class, deterministic, no model forwards.
//   - Tier 2 — full AAM steering: the doctor's complete scoring pass, for
//     novel or regressed queries. Unchanged by this package.
//
// The router is deterministic: decisions are a pure function of the
// per-fingerprint history, which is itself a pure function of the feedback
// stream — replaying the same traffic yields the same tier choices and the
// same plans. Feedback drives both directions: wins promote a fingerprint
// toward tier 0, a regression past EscalateRatio escalates it back to tier 2
// immediately. Hot-swaps invalidate all pins (the new model must re-earn
// them), mirroring the runtime plan cache's invalidation — both are keyed
// through runtime.Identity so they can never desynchronize.
package tier

import (
	"sort"
	"sync"

	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/runtime"
	"github.com/foss-db/foss/internal/store"
)

// Tier labels, in escalation order.
const (
	Tier0 = 0 // plan-memory hit
	Tier1 = 1 // greedy micro-planner
	Tier2 = 2 // full AAM steering
)

// Config tunes the tiered serving path.
type Config struct {
	// Memory enables tier 0: feedback-promoted plan pinning.
	Memory bool
	// Greedy enables tier 1: the greedy micro-planner for fingerprints with
	// history but no pin.
	Greedy bool
	// PromoteAfter is the consecutive-win streak (observed latency beating
	// the expert baseline) required before a fingerprint's best plan is
	// pinned into tier-0 memory. Default 3.
	PromoteAfter int
	// EscalateRatio is the latency/expert ratio past which a fast-path plan
	// is escalated back to tier 2 (pin dropped, fingerprint marked regressed
	// until the next epoch). Default 1.5.
	EscalateRatio float64
}

// Enabled reports whether any fast tier is on.
func (c Config) Enabled() bool { return c.Memory || c.Greedy }

func (c Config) withDefaults() Config {
	if c.PromoteAfter < 1 {
		c.PromoteAfter = 3
	}
	if c.EscalateRatio <= 0 {
		c.EscalateRatio = 1.5
	}
	return c
}

// History is one fingerprint's routing state. Seen survives epoch bumps
// (the router still knows the fingerprint is repeat traffic); Wins, the
// regression latch, and the best-candidate tracking are identity-scoped and
// reset on invalidation.
type History struct {
	Seen      uint64
	Wins      int
	Regressed bool

	best    *planner.PlanEval
	bestLat float64
	bestID  runtime.Identity
}

// Decision is one routing outcome.
type Decision struct {
	Tier int
	// Pin is the pinned plan when Tier == Tier0.
	Pin *planner.PlanEval
}

// Outcome reports what one feedback observation changed.
type Outcome struct {
	Promoted bool
	Demoted  bool
	// Pin and PinLatency identify the promoted plan when Promoted (for WAL
	// journaling).
	Pin        *planner.PlanEval
	PinLatency float64
}

// Memory is the tier router's state: pinned tier-0 plans, cached tier-1
// greedy completions, and per-fingerprint history. Safe for concurrent use;
// Route is a read-lock lookup so the serving fast path never contends with
// anything but promotions.
type Memory struct {
	cfg Config

	mu     sync.RWMutex
	pins   map[runtime.PlanKey]*planner.PlanEval
	pinLat map[runtime.PlanKey]float64
	greedy map[runtime.PlanKey]*planner.PlanEval
	hist   map[uint64]*History
}

// NewMemory builds an empty router state.
func NewMemory(cfg Config) *Memory {
	return &Memory{
		cfg:    cfg.withDefaults(),
		pins:   map[runtime.PlanKey]*planner.PlanEval{},
		pinLat: map[runtime.PlanKey]float64{},
		greedy: map[runtime.PlanKey]*planner.PlanEval{},
		hist:   map[uint64]*History{},
	}
}

// Config returns the (defaulted) configuration.
func (m *Memory) Config() Config { return m.cfg }

// Route picks the tier for one fingerprint under the given serving identity.
// Deterministic: the decision depends only on state derived from the
// feedback stream.
func (m *Memory) Route(id runtime.Identity, fp uint64) Decision {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.cfg.Memory {
		if pe, ok := m.pins[id.Key(fp)]; ok {
			return Decision{Tier: Tier0, Pin: pe}
		}
	}
	if m.cfg.Greedy {
		if h, ok := m.hist[fp]; ok && h.Seen >= 1 && !h.Regressed {
			return Decision{Tier: Tier1}
		}
	}
	return Decision{Tier: Tier2}
}

// GreedyCached returns the cached tier-1 completion for the key, if any.
func (m *Memory) GreedyCached(key runtime.PlanKey) (*planner.PlanEval, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	pe, ok := m.greedy[key]
	return pe, ok
}

// StoreGreedy caches a tier-1 completion (invalidated with the pins).
func (m *Memory) StoreGreedy(key runtime.PlanKey, pe *planner.PlanEval) {
	m.mu.Lock()
	m.greedy[key] = pe
	m.mu.Unlock()
}

// Observe ingests one executed plan's feedback and drives promotion and
// escalation. The executed plan is classified as fast-path by plan identity
// (ICP + step equality against the pin, or against the greedy completion
// for this query) rather than by journaled tier labels — so WAL replay,
// which re-feeds the same observations, reconstructs the identical state.
func (m *Memory) Observe(id runtime.Identity, fp uint64, q *query.Query, pe *planner.PlanEval, latencyMs, expertMs float64) Outcome {
	m.mu.Lock()
	defer m.mu.Unlock()

	h := m.hist[fp]
	if h == nil {
		h = &History{}
		m.hist[fp] = h
	}
	h.Seen++

	key := id.Key(fp)
	pin, pinned := m.pins[key]
	onPin := pinned && pin.Step == pe.Step && pin.ICP.Equal(pe.ICP)
	onGreedy := false
	if !onPin && m.cfg.Greedy && pe.Step == 0 {
		// Recompute rather than consult the greedy cache: the recomputation
		// is pure and microsecond-cheap, and it classifies identically during
		// live serving and WAL replay (where the cache starts empty).
		if gicp, ok := Greedy(q); ok && gicp.Equal(pe.ICP) {
			onGreedy = true
		}
	}

	// Escalation: a fast-path plan that regressed past the ratio goes back
	// to tier 2 until the next epoch re-earns trust.
	if (onPin || onGreedy) && expertMs > 0 && latencyMs > m.cfg.EscalateRatio*expertMs {
		delete(m.pins, key)
		delete(m.pinLat, key)
		delete(m.greedy, key)
		h.Regressed = true
		h.Wins = 0
		h.best = nil
		return Outcome{Demoted: onPin}
	}

	win := expertMs > 0 && latencyMs <= expertMs
	if win {
		h.Wins++
	} else {
		h.Wins = 0
	}

	// Track the best plan observed under this identity — the promotion
	// candidate. A stale-identity best (pre-swap) never gets pinned.
	if h.bestID != id {
		h.best = nil
	}
	if win && (h.best == nil || latencyMs < h.bestLat) {
		h.best = pe
		h.bestLat = latencyMs
		h.bestID = id
	}

	if m.cfg.Memory && !h.Regressed && !pinned && h.Wins >= m.cfg.PromoteAfter && h.best != nil && h.bestID == id {
		m.pins[key] = h.best
		m.pinLat[key] = h.bestLat
		return Outcome{Promoted: true, Pin: h.best, PinLatency: h.bestLat}
	}
	return Outcome{}
}

// Invalidate drops every pin and cached greedy completion and resets the
// identity-scoped history (win streaks, regression latches, promotion
// candidates), keeping only the Seen counts. Called on hot-swap, in the
// same step that invalidates the runtime plan cache.
func (m *Memory) Invalidate() {
	m.mu.Lock()
	defer m.mu.Unlock()
	clear(m.pins)
	clear(m.pinLat)
	clear(m.greedy)
	for _, h := range m.hist {
		h.Wins = 0
		h.Regressed = false
		h.best = nil
		h.bestLat = 0
		h.bestID = runtime.Identity{}
	}
}

// Pinned returns the number of live tier-0 pins.
func (m *Memory) Pinned() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pins)
}

// Export snapshots the router state in durable form, sorted by fingerprint
// for deterministic images. Pins carry (query, ICP, step) — the same
// identity WAL feedback records use — so import re-derives the complete
// plan under the recovered model.
func (m *Memory) Export() *store.TierState {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ts := &store.TierState{}
	for key, pe := range m.pins {
		ts.Pins = append(ts.Pins, store.PinnedPlan{
			Fingerprint: key.Fp,
			Query:       pe.Q,
			ICP:         pe.ICP.Clone(),
			Step:        pe.Step,
			LatencyMs:   m.pinLat[key],
			Epoch:       key.Epoch,
		})
	}
	sort.Slice(ts.Pins, func(i, j int) bool { return ts.Pins[i].Fingerprint < ts.Pins[j].Fingerprint })
	for fp, h := range m.hist {
		ts.History = append(ts.History, store.TierHistory{
			Fingerprint: fp,
			Seen:        h.Seen,
			Wins:        h.Wins,
			Regressed:   h.Regressed,
		})
	}
	sort.Slice(ts.History, func(i, j int) bool { return ts.History[i].Fingerprint < ts.History[j].Fingerprint })
	return ts
}

// Import restores an exported image: every pin is rebuilt through the
// caller's deterministic re-derivation (hint completion + encoding under
// the recovered model) and re-keyed under the current serving identity.
// nil state is a no-op.
func (m *Memory) Import(ts *store.TierState, id runtime.Identity, rebuild func(q *query.Query, icp plan.ICP, step int) (*planner.PlanEval, error)) error {
	if ts == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range ts.History {
		m.hist[p.Fingerprint] = &History{Seen: p.Seen, Wins: p.Wins, Regressed: p.Regressed}
	}
	if !m.cfg.Memory {
		return nil
	}
	for _, p := range ts.Pins {
		pe, err := rebuild(p.Query, p.ICP, p.Step)
		if err != nil {
			return err
		}
		key := id.Key(p.Fingerprint)
		m.pins[key] = pe
		m.pinLat[key] = p.LatencyMs
	}
	return nil
}
