package tier

import (
	"sort"

	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/query"
)

// Greedy builds a left-deep join order for the query with a statistics-free
// greedy heuristic (the janus-datalog design: selectivity proxies from the
// query text alone, early termination instead of exhaustive search). It is
// the tier-1 micro-planner: microsecond-class, deterministic, no catalog
// access, no model forwards.
//
// Heuristics, in order:
//   - Start from the most-filtered alias (equality and IN predicates score
//     highest — they bind hardest).
//   - Grow over the connected frontier, preferring the candidate with the
//     best combined score of its own filters and the join predicates binding
//     it to the prefix (more bindings → smaller intermediate result).
//   - Early termination: a candidate bound by ≥2 join predicates that also
//     carries a filter is taken immediately — scanning the rest of the
//     frontier cannot beat a doubly-bound filtered extension by this
//     heuristic's own lights, and not scanning is what keeps the planner in
//     microseconds on wide queries.
//
// All joins get HashJoin — the robust default when no statistics inform the
// choice. Ties break lexicographically, so the order is a pure function of
// the query. ok is false for queries with a disconnected join graph (a
// greedy left-deep order would force a cross product; those go to tier 2).
func Greedy(q *query.Query) (plan.ICP, bool) {
	n := q.NumTables()
	if n == 0 {
		return plan.ICP{}, false
	}
	if n == 1 {
		return plan.ICP{Order: []string{q.Tables[0].Alias}}, true
	}
	if !q.Connected() {
		return plan.ICP{}, false
	}

	aliases := q.Aliases()
	sort.Strings(aliases)

	filterScore := func(alias string) int {
		s := 0
		for _, f := range q.FiltersOn(alias) {
			switch f.Op {
			case query.Eq, query.In:
				s += 2
			default:
				s++
			}
		}
		return s
	}

	start, best := "", -1
	for _, a := range aliases { // sorted: ties break lexicographically
		if s := filterScore(a); s > best {
			start, best = a, s
		}
	}

	order := make([]string, 0, n)
	order = append(order, start)
	set := map[string]bool{start: true}
	for len(order) < n {
		pick, pickGain := "", -1
		for _, a := range aliases {
			if set[a] {
				continue
			}
			binds := len(q.JoinsBetween(set, a))
			if binds == 0 {
				continue // not on the connected frontier
			}
			fs := filterScore(a)
			if binds >= 2 && fs > 0 {
				pick = a // early termination: doubly bound and filtered
				break
			}
			if gain := 2*fs + binds; gain > pickGain {
				pick, pickGain = a, gain
			}
		}
		if pick == "" {
			return plan.ICP{}, false // unreachable for a connected graph
		}
		order = append(order, pick)
		set[pick] = true
	}

	methods := make([]plan.JoinMethod, n-1)
	for i := range methods {
		methods[i] = plan.HashJoin
	}
	return plan.ICP{Order: order, Methods: methods}, true
}
