package tier

import (
	"testing"

	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/runtime"
)

// TestIdentityDesync is the invariant the runtime.Identity comment promises:
// the plan-cache LRU and the tier plan memory key through the same composite
// identity, so for any combination of model-epoch bump, catalog-epoch bump,
// and backend switch, the two structures always agree on hit vs miss — a
// stale identity can never hit one cache while missing the other.
func TestIdentityDesync(t *testing.T) {
	base := runtime.Identity{Backend: "selinger", Epoch: 1, Catalog: 1}
	cases := []struct {
		name string
		id   runtime.Identity
		hit  bool
	}{
		{"same identity", base, true},
		{"model epoch bump", runtime.Identity{Backend: "selinger", Epoch: 2, Catalog: 1}, false},
		{"catalog epoch bump", runtime.Identity{Backend: "selinger", Epoch: 1, Catalog: 2}, false},
		{"backend switch", runtime.Identity{Backend: "gaussim", Epoch: 1, Catalog: 1}, false},
		{"model+catalog bump", runtime.Identity{Backend: "selinger", Epoch: 2, Catalog: 2}, false},
		{"all three moved", runtime.Identity{Backend: "gaussim", Epoch: 2, Catalog: 2}, false},
		{"catalog rollback", runtime.Identity{Backend: "selinger", Epoch: 1, Catalog: 0}, false},
	}

	q := chainQuery("a")
	fp := q.Fingerprint()
	icp, _ := Greedy(q)
	pe := eval(q, icp)

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Seed both structures under the base identity.
			lru := runtime.NewLRU[runtime.PlanKey, *planner.PlanEval](16)
			lru.Put(base.Key(fp), pe)
			mem := NewMemory(Config{Memory: true, PromoteAfter: 1})
			if out := mem.Observe(base, fp, q, pe, 5, 10); !out.Promoted {
				t.Fatal("fixture did not pin")
			}

			_, lruHit := lru.Get(tc.id.Key(fp))
			tierHit := mem.Route(tc.id, fp).Tier == Tier0
			if lruHit != tierHit {
				t.Fatalf("LRU and tier memory desynced: lru=%v tier=%v", lruHit, tierHit)
			}
			if lruHit != tc.hit {
				t.Fatalf("hit = %v, want %v", lruHit, tc.hit)
			}
		})
	}
}
