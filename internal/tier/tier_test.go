package tier

import (
	"math"
	"testing"

	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/runtime"
)

// chainQuery builds a connected chain query a—b—c—d with an equality filter
// on the given alias.
func chainQuery(filtered string) *query.Query {
	return &query.Query{
		ID:       "chain",
		Template: "t",
		Tables: []query.TableRef{
			{Table: "ta", Alias: "a"}, {Table: "tb", Alias: "b"},
			{Table: "tc", Alias: "c"}, {Table: "td", Alias: "d"},
		},
		Joins: []query.JoinPred{
			{LA: "a", LC: "id", RA: "b", RC: "aid"},
			{LA: "b", LC: "id", RA: "c", RC: "bid"},
			{LA: "c", LC: "id", RA: "d", RC: "cid"},
		},
		Filters: []query.Filter{{Alias: filtered, Col: "x", Op: query.Eq, Val: 1}},
	}
}

func TestGreedyDeterministicAndConnected(t *testing.T) {
	q := chainQuery("c")
	icp, ok := Greedy(q)
	if !ok {
		t.Fatal("connected chain rejected")
	}
	if len(icp.Order) != 4 || len(icp.Methods) != 3 {
		t.Fatalf("order %v methods %v", icp.Order, icp.Methods)
	}
	if icp.Order[0] != "c" {
		t.Fatalf("greedy must start from the most-filtered alias, got %v", icp.Order)
	}
	if !q.IsConnectedOrder(icp.Order) {
		t.Fatalf("greedy emitted a cross product: %v", icp.Order)
	}
	for _, m := range icp.Methods {
		if m != plan.HashJoin {
			t.Fatalf("non-hash join in statistics-free plan: %v", icp.Methods)
		}
	}
	for i := 0; i < 10; i++ {
		again, ok := Greedy(chainQuery("c"))
		if !ok || !again.Equal(icp) {
			t.Fatalf("run %d diverged: %v vs %v", i, again, icp)
		}
	}
}

func TestGreedyRejectsDisconnected(t *testing.T) {
	q := &query.Query{
		ID: "cross", Template: "t",
		Tables: []query.TableRef{{Table: "ta", Alias: "a"}, {Table: "tb", Alias: "b"}},
	}
	if _, ok := Greedy(q); ok {
		t.Fatal("disconnected join graph accepted — would be a cross product")
	}
}

func TestGreedySingleTable(t *testing.T) {
	q := &query.Query{
		ID: "one", Template: "t",
		Tables: []query.TableRef{{Table: "ta", Alias: "a"}},
	}
	icp, ok := Greedy(q)
	if !ok || len(icp.Order) != 1 || icp.Order[0] != "a" {
		t.Fatalf("single-table greedy: %v ok=%v", icp, ok)
	}
}

func eval(q *query.Query, icp plan.ICP) *planner.PlanEval {
	return &planner.PlanEval{Q: q, ICP: icp, Latency: math.NaN()}
}

// TestMemoryPromoteRouteEscalate drives one fingerprint through the full
// lifecycle: tier 2 → win streak → pinned tier 0 → regression → escalated
// back with the latch held.
func TestMemoryPromoteRouteEscalate(t *testing.T) {
	m := NewMemory(Config{Memory: true, PromoteAfter: 2})
	id := runtime.Identity{Backend: "b", Epoch: 1}
	q := chainQuery("a")
	fp := q.Fingerprint()
	icp, _ := Greedy(q)
	pe := eval(q, icp)

	if d := m.Route(id, fp); d.Tier != Tier2 {
		t.Fatalf("novel fingerprint routed to tier %d", d.Tier)
	}
	if out := m.Observe(id, fp, q, pe, 5, 10); out.Promoted {
		t.Fatal("promoted after one win")
	}
	out := m.Observe(id, fp, q, pe, 5, 10)
	if !out.Promoted || out.Pin != pe || out.PinLatency != 5 {
		t.Fatalf("second win must promote: %+v", out)
	}
	if d := m.Route(id, fp); d.Tier != Tier0 || d.Pin != pe {
		t.Fatalf("pinned fingerprint routed to tier %d", d.Tier)
	}
	// A different identity (post-swap epoch) must miss.
	if d := m.Route(runtime.Identity{Backend: "b", Epoch: 2}, fp); d.Tier != Tier2 {
		t.Fatalf("stale-epoch pin answered: tier %d", d.Tier)
	}
	// Regression past 1.5× the expert escalates and latches.
	if out := m.Observe(id, fp, q, pe, 100, 10); !out.Demoted {
		t.Fatalf("regressed pin not demoted: %+v", out)
	}
	if d := m.Route(id, fp); d.Tier != Tier2 {
		t.Fatalf("escalated fingerprint routed to tier %d", d.Tier)
	}
	for i := 0; i < 5; i++ {
		if out := m.Observe(id, fp, q, pe, 5, 10); out.Promoted {
			t.Fatal("regression latch did not hold")
		}
	}
	// Invalidate (the hot-swap hook) clears the latch: trust can be re-earned
	// under the new identity.
	m.Invalidate()
	id2 := runtime.Identity{Backend: "b", Epoch: 2}
	m.Observe(id2, fp, q, pe, 5, 10)
	if out := m.Observe(id2, fp, q, pe, 5, 10); !out.Promoted {
		t.Fatalf("post-invalidate epoch could not re-promote: %+v", out)
	}
}

// TestMemoryExportImportRoundtrip: a recovered Memory serves the same pins
// and histories as the one that exported them, re-keyed under the current
// identity through the caller's rebuild hook.
func TestMemoryExportImportRoundtrip(t *testing.T) {
	m := NewMemory(Config{Memory: true, PromoteAfter: 1})
	id := runtime.Identity{Backend: "b", Epoch: 3}
	q := chainQuery("b")
	fp := q.Fingerprint()
	icp, _ := Greedy(q)
	if out := m.Observe(id, fp, q, eval(q, icp), 4, 10); !out.Promoted {
		t.Fatal("fixture did not promote")
	}
	ts := m.Export()
	if len(ts.Pins) != 1 || len(ts.History) != 1 {
		t.Fatalf("export: %d pins %d histories", len(ts.Pins), len(ts.History))
	}
	if ts.Pins[0].Fingerprint != fp || !ts.Pins[0].ICP.Equal(icp) || ts.Pins[0].Epoch != 3 {
		t.Fatalf("exported pin %+v", ts.Pins[0])
	}

	m2 := NewMemory(Config{Memory: true, PromoteAfter: 1})
	rebuilt := 0
	err := m2.Import(ts, id, func(q *query.Query, icp plan.ICP, step int) (*planner.PlanEval, error) {
		rebuilt++
		return &planner.PlanEval{Q: q, ICP: icp, Step: step, Latency: math.NaN()}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt != 1 {
		t.Fatalf("rebuild hook called %d times, want 1", rebuilt)
	}
	d := m2.Route(id, fp)
	if d.Tier != Tier0 || !d.Pin.ICP.Equal(icp) {
		t.Fatalf("imported pin does not serve: tier=%d", d.Tier)
	}
	if m2.Pinned() != 1 {
		t.Fatalf("pinned count %d", m2.Pinned())
	}
	// nil state is a clean no-op (old checkpoints without a tier section).
	if err := m2.Import(nil, id, nil); err != nil {
		t.Fatal(err)
	}
}
