package aam

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/foss-db/foss/internal/planenc"
)

func TestAdvInitRange(t *testing.T) {
	f := func(l, r float64) bool {
		latL := math.Abs(l) + 0.001
		latR := math.Abs(r) + 0.001
		a := AdvInit(latL, latR)
		return a <= 1 && !math.IsNaN(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestScoreOfThresholds(t *testing.T) {
	cases := []struct {
		adv  float64
		want int
	}{
		{-3, 0}, {0, 0}, {0.05, 0}, {0.051, 1}, {0.3, 1}, {0.5, 1}, {0.51, 2}, {0.99, 2},
	}
	for _, c := range cases {
		if got := ScoreOf(c.adv); got != c.want {
			t.Fatalf("ScoreOf(%f) = %d, want %d", c.adv, got, c.want)
		}
	}
}

func TestScoreSemantics(t *testing.T) {
	// r twice as fast as l: saving 0.5 -> score 1 (boundary); 60% saving -> 2.
	if s := ScoreOf(AdvInit(100, 40)); s != 2 {
		t.Fatalf("60%% saving scored %d", s)
	}
	if s := ScoreOf(AdvInit(100, 90)); s != 1 {
		t.Fatalf("10%% saving scored %d", s)
	}
	if s := ScoreOf(AdvInit(100, 200)); s != 0 {
		t.Fatalf("regression scored %d", s)
	}
}

func TestMidpoints(t *testing.T) {
	if Midpoint(0) != 0 {
		t.Fatal("Midpoint(0)")
	}
	if math.Abs(Midpoint(1)-0.275) > 1e-9 {
		t.Fatalf("Midpoint(1) = %f", Midpoint(1))
	}
	if math.Abs(Midpoint(2)-0.75) > 1e-9 {
		t.Fatalf("Midpoint(2) = %f", Midpoint(2))
	}
}

// syntheticEncoded builds a fake encoded plan whose features encode a hidden
// "goodness" g in the row-bucket feature, so the model has signal to learn.
func syntheticEncoded(g int) *planenc.Encoded {
	n := 3
	enc := &planenc.Encoded{
		Ops:     []int{planenc.OpHashJoin, planenc.OpSeqScan, planenc.OpSeqScan},
		Tables:  []int{2, 0, 1},
		Columns: []int{0, 1, 1},
		RowBkt:  []int{g, g, g},
		Heights: []int{1, 0, 0},
		Structs: []int{planenc.StructRoot, planenc.StructLeft, planenc.StructRight},
		Mask:    make([]bool, n*n),
		N:       n,
	}
	for i := 0; i < n*n; i++ {
		enc.Mask[i] = true
	}
	return enc
}

func TestModelAsymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	m := NewModel(rng, cfg, 4, 4)
	a, b := syntheticEncoded(2), syntheticEncoded(7)
	lr := m.Logits(a, b, 0, 0.5).Detach()
	rl := m.Logits(b, a, 0.5, 0).Detach()
	diff := 0.0
	for i := range lr.Data {
		diff += math.Abs(lr.Data[i] + rl.Data[i])
	}
	if diff < 1e-6 {
		t.Fatal("model output is perfectly antisymmetric; position encoding has no effect")
	}
}

func TestModelLearnsSyntheticAdvantage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	m := NewModel(rng, cfg, 4, 4)

	// goodness g in 0..9; latency ~ 2^g. label = ScoreOf(AdvInit(2^gl, 2^gr))
	var samples []Sample
	for gl := 0; gl < 10; gl += 1 {
		for gr := 0; gr < 10; gr += 1 {
			latL, latR := math.Pow(2, float64(gl)), math.Pow(2, float64(gr))
			samples = append(samples, Sample{
				EncL: syntheticEncoded(gl), EncR: syntheticEncoded(gr),
				StepL: 0, StepR: 0.5,
				Label: ScoreOf(AdvInit(latL, latR)),
			})
		}
	}
	tc := DefaultTrainConfig()
	tc.Epochs = 30
	tc.LR = 3e-3
	losses := m.Train(samples, tc)
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
	if acc := m.Accuracy(samples); acc < 0.85 {
		t.Fatalf("AAM accuracy %.2f on separable synthetic task", acc)
	}
}

func TestTrainEmptyIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	m := NewModel(rng, cfg, 4, 4)
	if out := m.Train(nil, DefaultTrainConfig()); out != nil {
		t.Fatal("training on empty set should be a no-op")
	}
}

func TestStateNetDeterministicForward(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	s := NewStateNet(rng, cfg, 4, 4)
	enc := syntheticEncoded(3)
	a := s.Forward(enc, 0.3).Detach()
	b := s.Forward(enc, 0.3).Detach()
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("state network forward is nondeterministic")
		}
	}
	c := s.Forward(enc, 0.9).Detach()
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
		}
	}
	if same {
		t.Fatal("step status has no effect on state representation")
	}
}
