package aam

import (
	"math/rand"
	"testing"
)

// TestScoreBatchAllocsBounded pins the tier-2 scoring path's allocation
// count: with the sync.Pool scratch in place, a warm ScoreBatch allocates
// only the tensors the autograd graph genuinely owns, not staging buffers
// (ids, masks, block descriptors, the encs slice). The budget has ~50%
// headroom over the measured count — it's a tripwire for regressions that
// add per-node or per-pair allocations to the batched forward.
func TestScoreBatchAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	rng := rand.New(rand.NewSource(21))
	cfg := StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	m := NewModel(rng, cfg, 4, 4)

	pairs := make([]Pair, 8)
	for i := range pairs {
		pairs[i] = Pair{
			EncL:  variableEncoded(rng, 4),
			EncR:  variableEncoded(rng, 4),
			StepL: rng.Float64(),
			StepR: rng.Float64(),
		}
	}
	m.ScoreBatch(pairs) // warm the scratch pool

	avg := testing.AllocsPerRun(20, func() { m.ScoreBatch(pairs) })
	const budget = 3600 // measured ~2400 with the pooled scratch
	if avg > budget {
		t.Fatalf("ScoreBatch allocates %.0f objects per call, budget %d", avg, budget)
	}
}
