// Package aam implements the paper's asymmetric advantage model and the
// transformer-based state network that both the AAM and the planner's agent
// use to represent plan states.
package aam

import (
	"math/rand"

	"github.com/foss-db/foss/internal/nn"
	"github.com/foss-db/foss/internal/planenc"
)

// StateNetConfig sizes the state network.
type StateNetConfig struct {
	DModel   int // transformer width
	Heads    int
	Layers   int
	FFDim    int
	StateDim int // width of the final state representation vector
}

// DefaultStateNetConfig returns the sizes used throughout the repository.
func DefaultStateNetConfig() StateNetConfig {
	return StateNetConfig{DModel: 64, Heads: 4, Layers: 2, FFDim: 128, StateDim: 64}
}

// StateNet is ϕ: it embeds the four node features plus height and structure
// type, runs reachability-masked multi-head attention, mean-pools the node
// representations, concatenates the step status, and projects to statevec.
type StateNet struct {
	Cfg StateNetConfig

	OpEmb     *nn.Embedding
	TableEmb  *nn.Embedding
	ColEmb    *nn.Embedding
	RowEmb    *nn.Embedding
	HeightEmb *nn.Embedding
	StructEmb *nn.Embedding

	InProj *nn.Linear
	Blocks []*nn.TransformerLayer
	OutLN  *nn.LayerNorm
	Out    *nn.Linear // [DModel+1 (step)] -> StateDim
}

// Feature embedding widths. The four node features are concatenated into a
// node vector of width 4*featDim + 2*posDim before projection.
const (
	featDim = 16
	posDim  = 8
)

// NewStateNet creates a state network for a schema with the given vocabulary
// sizes (numTables, numCols from the planenc.Encoder).
func NewStateNet(rng *rand.Rand, cfg StateNetConfig, numTables, numCols int) *StateNet {
	inWidth := 4*featDim + 2*posDim
	s := &StateNet{
		Cfg:       cfg,
		OpEmb:     nn.NewEmbedding(rng, planenc.NumOps, featDim),
		TableEmb:  nn.NewEmbedding(rng, numTables+1, featDim),
		ColEmb:    nn.NewEmbedding(rng, numCols+1, featDim),
		RowEmb:    nn.NewEmbedding(rng, planenc.RowBuckets, featDim),
		HeightEmb: nn.NewEmbedding(rng, planenc.MaxHeight, posDim),
		StructEmb: nn.NewEmbedding(rng, planenc.NumStructs, posDim),
		InProj:    nn.NewLinear(rng, inWidth, cfg.DModel),
		OutLN:     nn.NewLayerNorm(cfg.DModel),
		Out:       nn.NewLinear(rng, cfg.DModel+1, cfg.StateDim),
	}
	for i := 0; i < cfg.Layers; i++ {
		s.Blocks = append(s.Blocks, nn.NewTransformerLayer(rng, cfg.DModel, cfg.Heads, cfg.FFDim))
	}
	return s
}

// Forward produces the state representation vector [1, StateDim] for an
// encoded plan at step status t/maxsteps.
func (s *StateNet) Forward(enc *planenc.Encoded, step float64) *nn.Tensor {
	node := nn.Concat(
		s.OpEmb.Forward(enc.Ops),
		s.TableEmb.Forward(enc.Tables),
		s.ColEmb.Forward(enc.Columns),
		s.RowEmb.Forward(enc.RowBkt),
		s.HeightEmb.Forward(enc.Heights),
		s.StructEmb.Forward(enc.Structs),
	)
	x := s.InProj.Forward(node)
	for _, b := range s.Blocks {
		x = b.Forward(x, enc.Mask)
	}
	x = s.OutLN.Forward(x)
	pooled := nn.RowsMean(x, nil)                   // [1, DModel]
	withStep := nn.Concat(pooled, stepTensor(step)) // [1, DModel+1]
	return nn.Tanh(s.Out.Forward(withStep))         // [1, StateDim]
}

func stepTensor(step float64) *nn.Tensor {
	return nn.NewTensor([]float64{step}, 1, 1)
}

// Params implements nn.Module.
func (s *StateNet) Params() []*nn.Tensor {
	var ps []*nn.Tensor
	for _, m := range []nn.Module{s.OpEmb, s.TableEmb, s.ColEmb, s.RowEmb, s.HeightEmb, s.StructEmb, s.InProj} {
		ps = append(ps, m.Params()...)
	}
	for _, b := range s.Blocks {
		ps = append(ps, b.Params()...)
	}
	ps = append(ps, s.OutLN.Params()...)
	ps = append(ps, s.Out.Params()...)
	return ps
}
