package aam

import (
	"math/rand"
	"testing"

	"github.com/foss-db/foss/internal/planenc"
)

// variableEncoded builds a fake encoded plan with n nodes and a banded
// reachability mask, so batch tests cover varying sequence lengths and
// nontrivial masking.
func variableEncoded(rng *rand.Rand, n int) *planenc.Encoded {
	enc := &planenc.Encoded{
		Ops:     make([]int, n),
		Tables:  make([]int, n),
		Columns: make([]int, n),
		RowBkt:  make([]int, n),
		Heights: make([]int, n),
		Structs: make([]int, n),
		Mask:    make([]bool, n*n),
		N:       n,
	}
	for i := 0; i < n; i++ {
		enc.Ops[i] = rng.Intn(planenc.NumOps)
		enc.Tables[i] = rng.Intn(4)
		enc.Columns[i] = rng.Intn(4)
		enc.RowBkt[i] = rng.Intn(planenc.RowBuckets)
		enc.Heights[i] = rng.Intn(4)
		enc.Structs[i] = rng.Intn(planenc.NumStructs)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			enc.Mask[i*n+j] = i == j || i-j == 1 || j-i == 1
		}
	}
	return enc
}

func TestForwardBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := StateNetConfig{DModel: 16, Heads: 2, Layers: 2, FFDim: 32, StateDim: 16}
	s := NewStateNet(rng, cfg, 4, 4)

	var encs []*planenc.Encoded
	var steps []float64
	for i := 0; i < 7; i++ {
		encs = append(encs, variableEncoded(rng, 1+rng.Intn(6)))
		steps = append(steps, float64(i)/7)
	}
	batch := s.ForwardBatch(encs, steps).Detach()
	dim := batch.Shape[1]
	for i, enc := range encs {
		want := s.Forward(enc, steps[i]).Detach()
		for j := 0; j < dim; j++ {
			if batch.Data[i*dim+j] != want.Data[j] {
				t.Fatalf("plan %d dim %d: batch %v != sequential %v",
					i, j, batch.Data[i*dim+j], want.Data[j])
			}
		}
	}
}

func TestScoreBatchMatchesScore(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cfg := StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	m := NewModel(rng, cfg, 4, 4)

	// More pairs than one scoreChunk holds, to exercise chunking.
	var pairs []Pair
	for i := 0; i < scoreChunk+9; i++ {
		pairs = append(pairs, Pair{
			EncL:  variableEncoded(rng, 1+rng.Intn(5)),
			EncR:  variableEncoded(rng, 1+rng.Intn(5)),
			StepL: rng.Float64(),
			StepR: rng.Float64(),
		})
	}
	got := m.ScoreBatch(pairs)
	for i, p := range pairs {
		want := m.Score(p.EncL, p.EncR, p.StepL, p.StepR)
		if got[i] != want {
			t.Fatalf("pair %d: ScoreBatch %d != Score %d", i, got[i], want)
		}
	}
}

func TestLogitsBatchMatchesLogits(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cfg := StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	m := NewModel(rng, cfg, 4, 4)

	var pairs []Pair
	for i := 0; i < 5; i++ {
		pairs = append(pairs, Pair{
			EncL:  variableEncoded(rng, 2+rng.Intn(4)),
			EncR:  variableEncoded(rng, 2+rng.Intn(4)),
			StepL: rng.Float64(),
			StepR: rng.Float64(),
		})
	}
	batch := m.LogitsBatch(pairs).Detach()
	for i, p := range pairs {
		want := m.Logits(p.EncL, p.EncR, p.StepL, p.StepR).Detach()
		for j := 0; j < NumScores; j++ {
			if batch.Data[i*NumScores+j] != want.Data[j] {
				t.Fatalf("pair %d logit %d: batch %v != sequential %v",
					i, j, batch.Data[i*NumScores+j], want.Data[j])
			}
		}
	}
}

func TestScoreStatesMatchesScore(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	cfg := StateNetConfig{DModel: 16, Heads: 2, Layers: 1, FFDim: 32, StateDim: 16}
	m := NewModel(rng, cfg, 4, 4)

	var encs []*planenc.Encoded
	var steps []float64
	for i := 0; i < 6; i++ {
		encs = append(encs, variableEncoded(rng, 1+rng.Intn(5)))
		steps = append(steps, float64(i)/6)
	}
	sv := m.StatesBatch(encs, steps)
	for l := 0; l < len(encs); l++ {
		for r := 0; r < len(encs); r++ {
			if l == r {
				continue
			}
			want := m.Score(encs[l], encs[r], steps[l], steps[r])
			if got := m.ScoreStates(sv, l, r); got != want {
				t.Fatalf("(%d,%d): ScoreStates %d != Score %d", l, r, got, want)
			}
		}
	}
}
