package aam

import (
	"math"
	"sync"

	"github.com/foss-db/foss/internal/nn"
	"github.com/foss-db/foss/internal/planenc"
)

// scoreChunk bounds how many plans are stacked into one batched forward.
// Plans inside a chunk share every dense matmul; attention stays per-plan
// (block-diagonal), so the only cost of a larger chunk is peak memory.
const scoreChunk = 32

// batchScratch pools the staging buffers a batched forward copies encoded
// plans through. Everything pooled here is dead before the borrowing call
// returns: the embedding lookups copy their id slices, the block descriptors
// only borrow mask pointers that each Encoded owns, and the encs slice is
// iterated, never stored. Two buffers are deliberately NOT pooled because
// the autograd graph retains them past the forward: `lengths` (captured by
// SegmentMean's backward closure) and `steps` (adopted by NewTensor).
type batchScratch struct {
	ops, tables, cols, rowBkt, heights, structs []int
	masks                                       [][]bool
	encs                                        []*planenc.Encoded
}

var scratchPool = sync.Pool{New: func() any { return &batchScratch{} }}

// ForwardBatch produces the state representation vectors [N, StateDim] for N
// encoded plans in one stacked forward pass: embeddings, the input
// projection, layer norms and feed-forward MLPs run over all plans' nodes at
// once, and attention is evaluated per plan block. Row i is bit-identical to
// Forward(encs[i], steps[i]).
func (s *StateNet) ForwardBatch(encs []*planenc.Encoded, steps []float64) *nn.Tensor {
	if len(encs) != len(steps) {
		panic("aam: ForwardBatch length mismatch")
	}
	n := len(encs)
	lengths := make([]int, n) // retained by SegmentMean's backward closure — never pooled
	sc := scratchPool.Get().(*batchScratch)
	masks := sc.masks[:0]
	for i, enc := range encs {
		lengths[i] = enc.N
		masks = append(masks, enc.Mask)
	}
	ops := sc.ops[:0]
	tables := sc.tables[:0]
	cols := sc.cols[:0]
	rowBkt := sc.rowBkt[:0]
	heights := sc.heights[:0]
	structs := sc.structs[:0]
	for _, enc := range encs {
		ops = append(ops, enc.Ops...)
		tables = append(tables, enc.Tables...)
		cols = append(cols, enc.Columns...)
		rowBkt = append(rowBkt, enc.RowBkt...)
		heights = append(heights, enc.Heights...)
		structs = append(structs, enc.Structs...)
	}
	node := nn.Concat(
		s.OpEmb.Forward(ops),
		s.TableEmb.Forward(tables),
		s.ColEmb.Forward(cols),
		s.RowEmb.Forward(rowBkt),
		s.HeightEmb.Forward(heights),
		s.StructEmb.Forward(structs),
	)
	bs := nn.BorrowBlocks(lengths, masks)
	// The embeddings copied the ids and the block descriptors hold the mask
	// pointers; the staging buffers are dead. Clear the mask pointers so the
	// pool never pins an encoding alive, then recycle.
	for i := range masks {
		masks[i] = nil
	}
	sc.ops, sc.tables, sc.cols, sc.rowBkt, sc.heights, sc.structs, sc.masks =
		ops, tables, cols, rowBkt, heights, structs, masks
	scratchPool.Put(sc)
	x := s.InProj.Forward(node) // [ΣSeq, DModel]
	for _, b := range s.Blocks {
		x = b.ForwardBlocks(x, bs.Blocks())
	}
	x = s.OutLN.Forward(x)
	bs.Release()
	pooled := nn.SegmentMean(x, lengths)                     // [N, DModel]
	withStep := nn.Concat(pooled, nn.NewTensor(steps, n, 1)) // [N, DModel+1]
	return nn.Tanh(s.Out.Forward(withStep))                  // [N, StateDim]
}

// Pair is one (left, right) plan comparison for batched scoring.
type Pair struct {
	EncL, EncR   *planenc.Encoded
	StepL, StepR float64
}

// LogitsBatch computes the K advantage logits for every pair in one batched
// forward: all 2N plan states are produced by a single ForwardBatch, then the
// pairwise head runs as two stacked matmuls. Row i is bit-identical to
// Logits(pairs[i]...).
func (m *Model) LogitsBatch(pairs []Pair) *nn.Tensor {
	n := len(pairs)
	sc := scratchPool.Get().(*batchScratch)
	encs := sc.encs
	if cap(encs) < 2*n {
		encs = make([]*planenc.Encoded, 2*n)
	}
	encs = encs[:2*n]
	steps := make([]float64, 2*n) // adopted by NewTensor inside ForwardBatch — never pooled
	for i, p := range pairs {
		encs[i], steps[i] = p.EncL, p.StepL
		encs[n+i], steps[n+i] = p.EncR, p.StepR
	}
	sv := m.State.ForwardBatch(encs, steps)
	// ForwardBatch iterates encs without storing it; clear the pointers so the
	// pool never pins an encoding alive, then recycle.
	for i := range encs {
		encs[i] = nil
	}
	sc.encs = encs
	scratchPool.Put(sc)
	svL := nn.Rows(sv, 0, n)
	svR := nn.Rows(sv, n, n)
	hl := nn.ReLU(m.FC1.Forward(nn.AddRowVector(svL, m.PosL)))
	hr := nn.ReLU(m.FC1.Forward(nn.AddRowVector(svR, m.PosR)))
	return m.FC2.Forward(nn.Sub(hl, hr)) // [N, NumScores]
}

// ScoreBatch returns the predicted advantage class for every pair. It is the
// batched equivalent of calling Score per pair (identical results), with the
// work of 2N state-network forwards collapsed into ⌈2N/scoreChunk⌉ stacked
// passes.
func (m *Model) ScoreBatch(pairs []Pair) []int {
	out := make([]int, len(pairs))
	half := scoreChunk / 2
	if half < 1 {
		half = 1
	}
	for start := 0; start < len(pairs); start += half {
		end := start + half
		if end > len(pairs) {
			end = len(pairs)
		}
		logits := m.LogitsBatch(pairs[start:end]).Detach()
		k := logits.Shape[1]
		for i := 0; i < end-start; i++ {
			best, bi := math.Inf(-1), 0
			for j := 0; j < k; j++ {
				if v := logits.Data[i*k+j]; v > best {
					best, bi = v, j
				}
			}
			out[start+i] = bi
		}
	}
	return out
}

// StatesBatch exposes the batched state vectors [N, StateDim] for a set of
// plans (used by the temporal plan selector, which chains pairwise
// comparisons over a fixed candidate pool).
func (m *Model) StatesBatch(encs []*planenc.Encoded, steps []float64) *nn.Tensor {
	return m.State.ForwardBatch(encs, steps).Detach()
}

// ScoreStates returns the predicted advantage class of plan r over plan l
// given precomputed state vectors (rows l and r of a StatesBatch result).
// Identical to Score on the same plans.
func (m *Model) ScoreStates(sv *nn.Tensor, l, r int) int {
	svL := nn.Rows(sv, l, 1)
	svR := nn.Rows(sv, r, 1)
	hl := nn.ReLU(m.FC1.Forward(nn.Add(svL, m.PosL)))
	hr := nn.ReLU(m.FC1.Forward(nn.Add(svR, m.PosR)))
	logits := m.FC2.Forward(nn.Sub(hl, hr)).Detach()
	best, bi := math.Inf(-1), 0
	for i, v := range logits.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}
