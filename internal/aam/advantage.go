package aam

import (
	"math"
	"math/rand"

	"github.com/foss-db/foss/internal/nn"
	"github.com/foss-db/foss/internal/planenc"
)

// NumScores is K, the number of advantage classes.
const NumScores = 3

// Partition is the ordered point set {d1, d2} splitting (−∞, 1] into the
// K=3 score intervals, per §IV-B of the paper: score 0 = "not better than 5%
// saving", 1 = "5–50% saving", 2 = ">50% saving".
var Partition = [2]float64{0.05, 0.50}

// AdvInit is the initial advantage function: how much better plan r is than
// plan l, expressed as the fractional time saving 1 − lat(r)/lat(l). Its
// range is exactly the paper's (−∞, 1].
func AdvInit(latL, latR float64) float64 {
	if latL <= 0 {
		latL = 1e-9
	}
	return 1 - latR/latL
}

// ScoreOf discretizes an initial advantage into a class {0,1,2}.
func ScoreOf(advInit float64) int {
	switch {
	case advInit > Partition[1]:
		return 2
	case advInit > Partition[0]:
		return 1
	default:
		return 0
	}
}

// Midpoint is the paper's D̂: a representative advantage magnitude for each
// score class (interval midpoints, D̂(0)=0).
func Midpoint(score int) float64 {
	switch score {
	case 1:
		return (Partition[0] + Partition[1]) / 2
	case 2:
		return (Partition[1] + 1) / 2
	}
	return 0
}

// Model is the asymmetric advantage model θadv: a shared state network plus
// a position-aware pairwise output layer
// FC2(FC1(ϕ(l)⊕pos_left) − FC1(ϕ(r)⊕pos_right)) → K logits.
// The position vectors make the model asymmetric by construction: swapping
// the inputs does not negate the output.
type Model struct {
	State *StateNet
	PosL  *nn.Tensor
	PosR  *nn.Tensor
	FC1   *nn.Linear
	FC2   *nn.Linear

	hidden int
}

// NewModel creates an advantage model over the given state network sizes.
func NewModel(rng *rand.Rand, cfg StateNetConfig, numTables, numCols int) *Model {
	h := cfg.StateDim
	m := &Model{
		State:  NewStateNet(rng, cfg, numTables, numCols),
		PosL:   nn.Zeros(1, cfg.StateDim).Param(),
		PosR:   nn.Zeros(1, cfg.StateDim).Param(),
		FC1:    nn.NewLinear(rng, cfg.StateDim, h),
		FC2:    nn.NewLinear(rng, h, NumScores),
		hidden: h,
	}
	for i := range m.PosL.Data {
		m.PosL.Data[i] = rng.NormFloat64() * 0.05
		m.PosR.Data[i] = rng.NormFloat64() * 0.05
	}
	return m
}

// Params implements nn.Module.
func (m *Model) Params() []*nn.Tensor {
	ps := m.State.Params()
	ps = append(ps, m.PosL, m.PosR)
	ps = append(ps, m.FC1.Params()...)
	ps = append(ps, m.FC2.Params()...)
	return ps
}

// Logits computes the K advantage logits for the pair (l, r) at the given
// step statuses.
func (m *Model) Logits(encL, encR *planenc.Encoded, stepL, stepR float64) *nn.Tensor {
	svL := m.State.Forward(encL, stepL)
	svR := m.State.Forward(encR, stepR)
	hl := nn.ReLU(m.FC1.Forward(nn.Add(svL, m.PosL)))
	hr := nn.ReLU(m.FC1.Forward(nn.Add(svR, m.PosR)))
	return m.FC2.Forward(nn.Sub(hl, hr))
}

// Score returns the predicted advantage class of r over l.
func (m *Model) Score(encL, encR *planenc.Encoded, stepL, stepR float64) int {
	logits := m.Logits(encL, encR, stepL, stepR).Detach()
	best, bi := math.Inf(-1), 0
	for i, v := range logits.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Sample is one supervised training pair for the AAM.
type Sample struct {
	EncL, EncR   *planenc.Encoded
	StepL, StepR float64
	Label        int // true advantage class ScoreOf(AdvInit(latL, latR))
}

// LossConfig parameterizes the asymmetric loss of §IV-C.
type LossConfig struct {
	GammaPos float64 // decay for the true-label term (γ+)
	GammaNeg float64 // decay for the other terms (γ−), γ+ < γ−
	Epsilon  float64 // label smoothing ε
}

// DefaultLossConfig mirrors the paper's choices (K=3, ε=0.1) with the
// standard asymmetric-loss decay pair.
func DefaultLossConfig() LossConfig {
	return LossConfig{GammaPos: 1, GammaNeg: 4, Epsilon: 0.1}
}

// PairLoss computes the asymmetric focal loss with label smoothing for one
// sample as a scalar graph node. The focal decay factors (1−p̂)^γ are
// treated as constants (detached), the standard focal-loss implementation
// choice.
func (m *Model) PairLoss(s Sample, cfg LossConfig) *nn.Tensor {
	logits := m.Logits(s.EncL, s.EncR, s.StepL, s.StepR)
	logp := nn.LogSoftmax(logits)
	// probabilities (detached) for the focal factors
	p := make([]float64, NumScores)
	for j := 0; j < NumScores; j++ {
		p[j] = math.Exp(logp.Data[j])
	}
	w := make([]float64, NumScores)
	for j := 0; j < NumScores; j++ {
		var smoothed, phat, gamma float64
		if j == s.Label {
			smoothed = 1 - cfg.Epsilon
			phat = p[j]
			gamma = cfg.GammaPos
		} else {
			smoothed = cfg.Epsilon / float64(NumScores-1)
			phat = 1 - p[j]
			gamma = cfg.GammaNeg
		}
		w[j] = smoothed * math.Pow(1-clamp01(phat), gamma)
	}
	weights := nn.NewTensor(w, 1, NumScores)
	return nn.Neg(nn.Sum(nn.Mul(logp, weights)))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// TrainConfig parameterizes supervised AAM training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Loss      LossConfig
	Seed      int64
}

// DefaultTrainConfig returns settings that converge quickly at repo scale.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 3, BatchSize: 16, LR: 1e-3, Loss: DefaultLossConfig(), Seed: 1}
}

// Train fits the model to the samples and returns the mean loss per epoch.
func (m *Model) Train(samples []Sample, cfg TrainConfig) []float64 {
	if len(samples) == 0 {
		return nil
	}
	opt := nn.NewAdam(m.Params(), cfg.LR)
	opt.ClipNorm = 5
	rng := rand.New(rand.NewSource(cfg.Seed))
	var epochLosses []float64
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	for ep := 0; ep < cfg.Epochs; ep++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		total := 0.0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			opt.ZeroGrad()
			var batch *nn.Tensor
			for _, i := range idx[start:end] {
				l := m.PairLoss(samples[i], cfg.Loss)
				if batch == nil {
					batch = l
				} else {
					batch = nn.Add(batch, l)
				}
			}
			loss := nn.Scale(batch, 1/float64(end-start))
			loss.Backward()
			opt.Step()
			total += loss.Item() * float64(end-start)
		}
		epochLosses = append(epochLosses, total/float64(len(idx)))
	}
	return epochLosses
}

// Accuracy returns the fraction of samples whose predicted class matches.
func (m *Model) Accuracy(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	pairs := make([]Pair, len(samples))
	for i, s := range samples {
		pairs[i] = Pair{EncL: s.EncL, EncR: s.EncR, StepL: s.StepL, StepR: s.StepR}
	}
	ok := 0
	for i, score := range m.ScoreBatch(pairs) {
		if score == samples[i].Label {
			ok++
		}
	}
	return float64(ok) / float64(len(samples))
}
