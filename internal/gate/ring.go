// Package gate fronts a replicated serving fleet: a consistent-hash ring
// maps tenants onto fleet members with minimal movement when membership
// changes, and an HTTP proxy forwards each /v1/t/{tenant}/* request to the
// owning process — with optional failover to the next replica in the
// tenant's preference list when the owner is unreachable.
//
// The gate holds no model state and makes no routing decisions beyond
// hashing: it can restart, or run replicated itself, without any handoff.
package gate

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is an immutable consistent-hash ring over fleet members. Each member
// projects VNodes virtual points onto the 64-bit hash circle; a key is
// owned by the first member point at or clockwise from the key's hash.
// Immutability keeps lookups lock-free: membership changes build a new Ring.
type Ring struct {
	points  []ringPoint // sorted by hash
	members []string    // sorted, deduped
}

type ringPoint struct {
	hash   uint64
	member string
}

// DefaultVNodes balances ownership to within a few percent for small
// fleets without bloating the point list.
const DefaultVNodes = 128

// NewRing builds a ring over the given members (deduped; order does not
// matter — two gates configured with the same set in any order agree on
// every owner). vnodes <= 0 uses DefaultVNodes.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := map[string]bool{}
	r := &Ring{}
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		r.members = append(r.members, m)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", m, i)), member: m})
		}
	}
	sort.Strings(r.members)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by name so every gate agrees.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the ring's member set, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns key's preference list: the first n distinct members
// clockwise from the key's hash. The list is what failover walks — the
// owner first, then the members that would own the key if the ones before
// them left the ring.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := map[string]bool{}
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			owners = append(owners, p.member)
		}
	}
	return owners
}

// hash64 is fnv64a with a splitmix64 finalizer. Raw FNV-1a multiplies the
// last byte's contribution only once, so near-identical strings ("m#0",
// "m#1", …) land adjacent on the circle and a member's vnodes clump into
// one arc; the avalanche step spreads them uniformly.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
