package gate

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRingDeterministicAndBalanced: the same membership in any order maps
// every key identically, and ownership spreads across members.
func TestRingDeterministicAndBalanced(t *testing.T) {
	a := NewRing([]string{"n1:1", "n2:1", "n3:1"}, 64)
	b := NewRing([]string{"n3:1", "n1:1", "n2:1"}, 64)
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		key := "tenant" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("order-dependent owner for %q", key)
		}
		counts[a.Owner(key)]++
	}
	for _, m := range a.Members() {
		if counts[m] == 0 {
			t.Fatalf("member %s owns nothing: %v", m, counts)
		}
	}
}

// TestRingMinimalMovement: removing one member of five reassigns only the
// keys that member owned — everything else stays put.
func TestRingMinimalMovement(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1", "d:1", "e:1"}
	before := NewRing(members, 64)
	after := NewRing(members[:4], 64) // e leaves
	moved, kept := 0, 0
	for i := 0; i < 1000; i++ {
		key := "k" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
		ob, oa := before.Owner(key), after.Owner(key)
		if ob == "e:1" {
			if oa == "e:1" {
				t.Fatalf("key %q still owned by removed member", key)
			}
			continue
		}
		if ob == oa {
			kept++
		} else {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved between surviving members (kept %d) — not minimal", moved, kept)
	}
}

// TestRingOwnersPreferenceList: distinct members, owner first, capped at
// membership size.
func TestRingOwnersPreferenceList(t *testing.T) {
	r := NewRing([]string{"x:1", "y:1", "z:1"}, 64)
	owners := r.Owners("tenant-a", 5)
	if len(owners) != 3 {
		t.Fatalf("owners = %v, want 3 distinct", owners)
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("duplicate in preference list: %v", owners)
		}
		seen[o] = true
	}
	if owners[0] != r.Owner("tenant-a") {
		t.Fatalf("preference list head %q != owner %q", owners[0], r.Owner("tenant-a"))
	}
}

// member spins up a fake fleet process that records which paths it saw.
func member(t *testing.T, name string) (*httptest.Server, *[]string) {
	t.Helper()
	var paths []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		paths = append(paths, r.URL.Path)
		switch {
		case r.URL.Path == "/metrics":
			io.WriteString(w, "# HELP foss_served_total Queries served.\n# TYPE foss_served_total counter\nfoss_served_total 7\n")
		case r.URL.Path == "/v1/stats":
			io.WriteString(w, `{"backend":"`+name+`"}`)
		default:
			body, _ := io.ReadAll(r.Body)
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, `{"member":"`+name+`","echo":`+strings.TrimSpace(string(body))+`}`)
		}
	}))
	t.Cleanup(srv.Close)
	return srv, &paths
}

// TestProxyRoutesToOwner: a tenant request lands on exactly the ring owner,
// path intact.
func TestProxyRoutesToOwner(t *testing.T) {
	s1, p1 := member(t, "m1")
	s2, p2 := member(t, "m2")
	p, err := NewProxy(Options{Members: []string{s1.URL, s2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	gw := httptest.NewServer(p)
	defer gw.Close()

	resp, err := http.Post(gw.URL+"/v1/t/acme/optimize", "application/json", strings.NewReader(`{"q":1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"echo":{"q":1}`) {
		t.Fatalf("status=%d body=%s", resp.StatusCode, body)
	}
	want := p.Ring().Owner("acme")
	hits1, hits2 := len(*p1), len(*p2)
	switch want {
	case s1.URL:
		if hits1 != 1 || hits2 != 0 {
			t.Fatalf("owner %s: hits m1=%d m2=%d", want, hits1, hits2)
		}
		if (*p1)[0] != "/v1/t/acme/optimize" {
			t.Fatalf("path rewritten: %v", *p1)
		}
	case s2.URL:
		if hits2 != 1 || hits1 != 0 {
			t.Fatalf("owner %s: hits m1=%d m2=%d", want, hits1, hits2)
		}
	default:
		t.Fatalf("owner %q is neither member", want)
	}
}

// TestProxyFailover: with the owner down, the request lands on the next
// member of the preference list; without failover it is a 502.
func TestProxyFailover(t *testing.T) {
	s1, _ := member(t, "m1")
	s2, _ := member(t, "m2")
	// Find a tenant owned by s1, then kill s1.
	probe, err := NewProxy(Options{Members: []string{s1.URL, s2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	tenant := ""
	for _, cand := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		if probe.Ring().Owner(cand) == s1.URL {
			tenant = cand
			break
		}
	}
	if tenant == "" {
		t.Fatal("no tenant hashed onto s1")
	}
	s1.Close()

	strict, _ := NewProxy(Options{Members: []string{s1.URL, s2.URL}})
	gw := httptest.NewServer(strict)
	resp, err := http.Get(gw.URL + "/v1/t/" + tenant + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	gw.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("no-failover status = %d, want 502", resp.StatusCode)
	}

	failover, _ := NewProxy(Options{Members: []string{s1.URL, s2.URL}, Failover: true})
	gw2 := httptest.NewServer(failover)
	defer gw2.Close()
	resp2, err := http.Get(gw2.URL + "/v1/t/" + tenant + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != 200 || !strings.Contains(string(body), `"member":"m2"`) {
		t.Fatalf("failover: status=%d body=%s", resp2.StatusCode, body)
	}
}

// TestProxyMetricsMerge: one scrape carries every member's series under
// instance labels, family headers unrepeated, plus the gate's own counters.
func TestProxyMetricsMerge(t *testing.T) {
	s1, _ := member(t, "m1")
	s2, _ := member(t, "m2")
	p, err := NewProxy(Options{Members: []string{s1.URL, s2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	gw := httptest.NewServer(p)
	defer gw.Close()

	resp, err := http.Get(gw.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if n := strings.Count(text, "# TYPE foss_served_total counter"); n != 1 {
		t.Fatalf("family header repeated %d times:\n%s", n, text)
	}
	for _, m := range []string{s1.URL, s2.URL} {
		if !strings.Contains(text, `foss_served_total{instance="`+m+`"} 7`) {
			t.Fatalf("missing instance series for %s:\n%s", m, text)
		}
	}
	if !strings.Contains(text, "foss_gate_proxied_total") || !strings.Contains(text, "foss_gate_failovers_total") {
		t.Fatalf("gate counters missing:\n%s", text)
	}
}

// TestProxyStatsFanOut: /v1/stats aggregates each member's body keyed by
// address, and /v1/gate reports membership.
func TestProxyStatsFanOut(t *testing.T) {
	s1, _ := member(t, "m1")
	s2, _ := member(t, "m2")
	p, err := NewProxy(Options{Members: []string{s1.URL, s2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	gw := httptest.NewServer(p)
	defer gw.Close()

	resp, err := http.Get(gw.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var agg struct {
		Members map[string]json.RawMessage `json:"members"`
		Errors  map[string]string          `json:"errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(agg.Members) != 2 || len(agg.Errors) != 0 {
		t.Fatalf("agg = %+v", agg)
	}

	resp2, err := http.Get(gw.URL + "/v1/gate?tenant=acme")
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Members []string `json:"members"`
		Owners  []string `json:"owners"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if len(info.Members) != 2 || len(info.Owners) != 2 {
		t.Fatalf("gate info = %+v", info)
	}
	if info.Owners[0] != p.Ring().Owner("acme") {
		t.Fatalf("owners[0] = %q, want ring owner %q", info.Owners[0], p.Ring().Owner("acme"))
	}
}

// TestInjectLabel covers both sample shapes.
func TestInjectLabel(t *testing.T) {
	if got := injectLabel(`foss_epoch 3`, "instance", "a:1"); got != `foss_epoch{instance="a:1"} 3` {
		t.Fatalf("bare: %s", got)
	}
	if got := injectLabel(`foss_x{tenant="t"} 1`, "instance", "a:1"); got != `foss_x{instance="a:1",tenant="t"} 1` {
		t.Fatalf("labeled: %s", got)
	}
}
