package gate

// proxy.go — the fleet front end. Tenant-scoped requests are forwarded to
// the member that owns the tenant on the ring; /metrics and /v1/stats fan
// out to every member and merge, so one scrape sees the whole fleet.
//
//	/v1/t/{tenant}/*  → proxied to the owning member (failover optional)
//	/metrics          → every member's exposition, instance-labeled + merged,
//	                    plus the gate's own foss_gate_* counters
//	/v1/stats         → per-member stats bodies keyed by address
//	/v1/gate          → membership, ring parameters; ?tenant=x adds the
//	                    tenant's preference list
//
// Failover forwards only on transport errors (connect refused/reset, i.e.
// the member is gone) — an HTTP error status is a real answer from a live
// owner and is relayed as-is, never retried against a replica that would
// answer differently (a 403 from a follower is not an outage).

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/foss-db/foss/internal/metrics"
)

// Options configures a Proxy.
type Options struct {
	// Members is the fleet: one address per serving process
	// ("host:port" or "http://host:port").
	Members []string
	// VNodes is the ring's virtual-node count per member (0 = DefaultVNodes).
	VNodes int
	// Failover walks the tenant's preference list on transport errors.
	Failover bool
	// Client overrides the forwarding client (tests); nil uses a 30s-timeout
	// default.
	Client *http.Client
}

// Proxy is the gate's http.Handler. Safe for concurrent use.
type Proxy struct {
	ring     *Ring
	bases    map[string]string // member -> normalized base URL
	client   *http.Client
	failover bool
	mux      *http.ServeMux

	proxied   map[string]*atomic.Uint64 // per-member forwarded requests
	failovers atomic.Uint64
	errors    atomic.Uint64
}

// NewProxy builds the gate over a fleet membership list.
func NewProxy(opts Options) (*Proxy, error) {
	if len(opts.Members) == 0 {
		return nil, fmt.Errorf("gate: no members")
	}
	p := &Proxy{
		ring:     NewRing(opts.Members, opts.VNodes),
		bases:    map[string]string{},
		client:   opts.Client,
		failover: opts.Failover,
		mux:      http.NewServeMux(),
		proxied:  map[string]*atomic.Uint64{},
	}
	if p.client == nil {
		p.client = &http.Client{Timeout: 30 * time.Second}
	}
	for _, m := range p.ring.Members() {
		base := m
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		p.bases[m] = strings.TrimRight(base, "/")
		p.proxied[m] = &atomic.Uint64{}
	}
	p.mux.HandleFunc("/v1/t/", p.handleTenant)
	p.mux.HandleFunc("/metrics", p.handleMetrics)
	p.mux.HandleFunc("/v1/stats", p.handleStats)
	p.mux.HandleFunc("/v1/gate", p.handleGate)
	return p, nil
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) { p.mux.ServeHTTP(w, r) }

// Ring exposes the routing ring (the fossd gate banner prints ownership).
func (p *Proxy) Ring() *Ring { return p.ring }

// maxProxyBody bounds a buffered request body. Backends cap bodies at
// 1 MiB; the gate allows one byte more so an oversized body still reaches
// the backend's own 413 instead of being mangled here.
const maxProxyBody = 1<<20 + 1

func (p *Proxy) handleTenant(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/t/")
	tenant, _, _ := strings.Cut(rest, "/")
	if tenant == "" {
		http.Error(w, `{"error":"want /v1/t/{tenant}/..."}`, http.StatusNotFound)
		return
	}
	n := 1
	if p.failover {
		n = len(p.ring.Members())
	}
	owners := p.ring.Owners(tenant, n)

	// Buffer the body once so failover can replay it against the next
	// member in the preference list.
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody))
	if err != nil {
		http.Error(w, `{"error":"read request body"}`, http.StatusBadRequest)
		return
	}

	var lastErr error
	for i, member := range owners {
		resp, respBody, err := p.forward(r, member, body)
		if err != nil {
			// Transport failure: the member is unreachable — including one
			// that died mid-response, which is why forward buffers the body
			// before anything is relayed. Anything the member actually said
			// in full — any status — is final.
			lastErr = err
			if i+1 < len(owners) {
				p.failovers.Add(1)
			}
			continue
		}
		p.proxied[member].Add(1)
		relay(w, resp, respBody)
		return
	}
	p.errors.Add(1)
	http.Error(w, fmt.Sprintf(`{"error":"no member reachable for tenant %q: %v"}`, tenant, lastErr),
		http.StatusBadGateway)
}

// forward replays the inbound request against one member and buffers the
// whole response before anything reaches the client. A member killed
// mid-body therefore surfaces as a transport error the caller can still
// fail over — once headers were streamed through, the only option left
// would be a torn response.
func (p *Proxy) forward(r *http.Request, member string, body []byte) (*http.Response, []byte, error) {
	url := p.bases[member] + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, strings.NewReader(string(body)))
	if err != nil {
		return nil, nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, nil, fmt.Errorf("%s died mid-response: %w", member, err)
	}
	return resp, respBody, nil
}

// relay writes a fully buffered member response through to the client.
func relay(w http.ResponseWriter, resp *http.Response, body []byte) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// fanOut GETs path on every member concurrently; bodies come back keyed by
// member, errors separately.
func (p *Proxy) fanOut(r *http.Request, path string) (map[string][]byte, map[string]string) {
	members := p.ring.Members()
	bodies := make(map[string][]byte, len(members))
	errs := map[string]string{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, p.bases[m]+path, nil)
			if err == nil {
				var resp *http.Response
				if resp, err = p.client.Do(req); err == nil {
					defer resp.Body.Close()
					var b []byte
					if b, err = io.ReadAll(io.LimitReader(resp.Body, 8<<20)); err == nil {
						if resp.StatusCode != http.StatusOK {
							err = fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(b)))
						} else {
							mu.Lock()
							bodies[m] = b
							mu.Unlock()
							return
						}
					}
				}
			}
			mu.Lock()
			errs[m] = err.Error()
			mu.Unlock()
		}(m)
	}
	wg.Wait()
	return bodies, errs
}

func (p *Proxy) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, `{"error":"GET required"}`, http.StatusMethodNotAllowed)
		return
	}
	bodies, errs := p.fanOut(r, "/v1/stats")
	var b strings.Builder
	b.WriteString(`{"members":{`)
	first := true
	for _, m := range p.ring.Members() {
		body, ok := bodies[m]
		if !ok {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%q:%s", m, strings.TrimSpace(string(body)))
	}
	b.WriteString(`},"errors":{`)
	first = true
	keys := make([]string, 0, len(errs))
	for m := range errs {
		keys = append(keys, m)
	}
	sort.Strings(keys)
	for _, m := range keys {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%q:%q", m, errs[m])
	}
	b.WriteString(`}}`)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, b.String())
}

func (p *Proxy) handleGate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, `{"error":"GET required"}`, http.StatusMethodNotAllowed)
		return
	}
	var b strings.Builder
	b.WriteString(`{"members":[`)
	for i, m := range p.ring.Members() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q", m)
	}
	fmt.Fprintf(&b, `],"failover":%v`, p.failover)
	if tenant := r.URL.Query().Get("tenant"); tenant != "" {
		owners := p.ring.Owners(tenant, len(p.ring.Members()))
		fmt.Fprintf(&b, `,"tenant":%q,"owners":[`, tenant)
		for i, m := range owners {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%q", m)
		}
		b.WriteByte(']')
	}
	b.WriteByte('}')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, b.String())
}

// handleMetrics merges every member's exposition under instance labels and
// appends the gate's own counters. Family headers (# HELP/# TYPE) are kept
// from the first member that emits them — the text format forbids repeats.
func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, `{"error":"GET required"}`, http.StatusMethodNotAllowed)
		return
	}
	bodies, errs := p.fanOut(r, "/metrics")
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)

	seenFamily := map[string]bool{}
	for _, m := range p.ring.Members() {
		body, ok := bodies[m]
		if !ok {
			continue
		}
		sc := bufio.NewScanner(strings.NewReader(string(body)))
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
			case strings.HasPrefix(line, "#"):
				// "# HELP name ..." / "# TYPE name ...": keep the first copy.
				fields := strings.Fields(line)
				if len(fields) >= 3 {
					key := fields[1] + " " + fields[2]
					if seenFamily[key] {
						continue
					}
					seenFamily[key] = true
				}
				fmt.Fprintln(w, line)
			default:
				fmt.Fprintln(w, injectLabel(line, "instance", m))
			}
		}
	}

	var e metrics.Expo
	e.Family("foss_gate_proxied_total", "Requests forwarded per member.", "counter")
	for _, m := range p.ring.Members() {
		e.Uint("foss_gate_proxied_total", []metrics.Label{{Key: "member", Value: m}}, p.proxied[m].Load())
	}
	e.Family("foss_gate_failovers_total", "Forwards retried against the next member after a transport error.", "counter")
	e.Uint("foss_gate_failovers_total", nil, p.failovers.Load())
	e.Family("foss_gate_errors_total", "Tenant requests no member answered.", "counter")
	e.Uint("foss_gate_errors_total", nil, p.errors.Load())
	e.Family("foss_gate_scrape_errors", "Members unreachable during this scrape.", "gauge")
	e.Sample("foss_gate_scrape_errors", nil, float64(len(errs)))
	_, _ = e.WriteTo(w)
}

// injectLabel rewrites one exposition sample line to carry an extra label.
func injectLabel(line, key, val string) string {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		return line[:i+1] + fmt.Sprintf("%s=%q,", key, val) + line[i+1:]
	}
	if i := strings.IndexByte(line, ' '); i >= 0 {
		return line[:i] + fmt.Sprintf("{%s=%q}", key, val) + line[i:]
	}
	return line
}
