package plan

import (
	"fmt"
	"strings"
)

// FormatHints renders an ICP as pg_hint_plan-style hint text — the textual
// interface the paper uses to steer PostgreSQL:
//
//	/*+ Leading((((a b) c) d)) HashJoin(a b) NestLoop(a b c) */
//
// Leading fixes the left-deep join order; each method hint names the full
// prefix joined at that level, bottom-up.
func (p ICP) FormatHints() string {
	if len(p.Order) == 0 {
		return "/*+ */"
	}
	var b strings.Builder
	b.WriteString("/*+ Leading(")
	b.WriteString(leadingTree(p.Order))
	b.WriteString(")")
	for i, m := range p.Methods {
		b.WriteString(" ")
		b.WriteString(methodHintName(m))
		b.WriteString("(")
		b.WriteString(strings.Join(p.Order[:i+2], " "))
		b.WriteString(")")
	}
	b.WriteString(" */")
	return b.String()
}

func leadingTree(order []string) string {
	s := order[0]
	for _, a := range order[1:] {
		s = "(" + s + " " + a + ")"
	}
	return s
}

func methodHintName(m JoinMethod) string {
	switch m {
	case HashJoin:
		return "HashJoin"
	case MergeJoin:
		return "MergeJoin"
	case NestLoop:
		return "NestLoop"
	}
	return "?"
}

// ParseHints parses hint text produced by FormatHints back into an ICP.
// It accepts the subset of pg_hint_plan syntax this repository emits:
// one Leading((...)) clause and zero or more method clauses whose last
// alias identifies the join level.
func ParseHints(text string) (ICP, error) {
	text = strings.TrimSpace(text)
	text = strings.TrimPrefix(text, "/*+")
	text = strings.TrimSuffix(text, "*/")
	var icp ICP

	rest := strings.TrimSpace(text)
	for len(rest) > 0 {
		name, arg, tail, err := nextClause(rest)
		if err != nil {
			return ICP{}, err
		}
		rest = tail
		switch name {
		case "Leading":
			order, err := parseLeading(arg)
			if err != nil {
				return ICP{}, err
			}
			icp.Order = order
			if icp.Methods == nil {
				icp.Methods = make([]JoinMethod, len(order)-1)
				for i := range icp.Methods {
					icp.Methods[i] = HashJoin // pg default when unhinted
				}
			}
		case "HashJoin", "MergeJoin", "NestLoop":
			if icp.Order == nil {
				return ICP{}, fmt.Errorf("plan: method hint before Leading")
			}
			aliases := strings.Fields(arg)
			if len(aliases) < 2 {
				return ICP{}, fmt.Errorf("plan: method hint %s needs >=2 aliases", name)
			}
			last := aliases[len(aliases)-1]
			level := -1
			for i, a := range icp.Order {
				if a == last {
					level = i - 1
				}
			}
			if level < 0 || level >= len(icp.Methods) {
				return ICP{}, fmt.Errorf("plan: method hint %s(%s) does not match Leading order", name, arg)
			}
			switch name {
			case "HashJoin":
				icp.Methods[level] = HashJoin
			case "MergeJoin":
				icp.Methods[level] = MergeJoin
			case "NestLoop":
				icp.Methods[level] = NestLoop
			}
		default:
			return ICP{}, fmt.Errorf("plan: unknown hint clause %q", name)
		}
	}
	if icp.Order == nil {
		return ICP{}, fmt.Errorf("plan: no Leading clause in hints")
	}
	return icp, nil
}

// nextClause splits "Name(arg) rest" respecting nested parentheses in arg.
func nextClause(s string) (name, arg, rest string, err error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 {
		return "", "", "", fmt.Errorf("plan: malformed hint clause %q", s)
	}
	name = strings.TrimSpace(s[:open])
	depth := 0
	for i := open; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return name, s[open+1 : i], strings.TrimSpace(s[i+1:]), nil
			}
		}
	}
	return "", "", "", fmt.Errorf("plan: unbalanced parentheses in %q", s)
}

// parseLeading flattens the left-deep Leading tree into the bottom-up order.
func parseLeading(arg string) ([]string, error) {
	arg = strings.TrimSpace(arg)
	// strip nesting: the left-deep tree (((a b) c) d) flattens to the token
	// sequence a b c d in order
	cleaned := strings.NewReplacer("(", " ", ")", " ").Replace(arg)
	order := strings.Fields(cleaned)
	if len(order) == 0 {
		return nil, fmt.Errorf("plan: empty Leading clause")
	}
	seen := map[string]bool{}
	for _, a := range order {
		if seen[a] {
			return nil, fmt.Errorf("plan: alias %q repeated in Leading", a)
		}
		seen[a] = true
	}
	return order, nil
}
