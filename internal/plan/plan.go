// Package plan defines the two plan representations of the paper and the
// action space that edits them:
//
//   - CP (complete plan): the full physical operator tree the executor runs —
//     scans with access paths, joins with physical methods, annotated with
//     estimated and (after execution) true cardinalities.
//   - ICP (incomplete plan): just the left-deep join order and the join
//     methods, i.e. what FOSS edits and what steers the traditional optimizer
//     via the hint mechanism (the pg_hint_plan analog).
//
// Leaves are labeled T1..Tn bottom-up (T1 = deepest-left table, T2 = its
// sibling, T3 the next leaf up, ...) and joins O1..O(n-1) bottom-up, matching
// the paper's Fig. 2.
package plan

import (
	"fmt"
	"strings"

	"github.com/foss-db/foss/internal/query"
)

// JoinMethod is a physical join operator. The set Op of the paper.
type JoinMethod int

// Join methods (|Op| = 3, as in PostgreSQL).
const (
	HashJoin JoinMethod = iota
	MergeJoin
	NestLoop
)

// NumJoinMethods is |Op|.
const NumJoinMethods = 3

func (m JoinMethod) String() string {
	switch m {
	case HashJoin:
		return "HashJoin"
	case MergeJoin:
		return "MergeJoin"
	case NestLoop:
		return "NestLoop"
	}
	return "?"
}

// ScanMethod is a physical access path for a base table.
type ScanMethod int

// Scan methods.
const (
	SeqScan ScanMethod = iota
	IndexScan
)

func (m ScanMethod) String() string {
	if m == IndexScan {
		return "IndexScan"
	}
	return "SeqScan"
}

// Node is one operator in a complete plan tree. Scan nodes have Alias set
// and no children; join nodes have both children.
type Node struct {
	// Scan fields
	Alias    string
	Scan     ScanMethod
	IdxCol   string // column used by IndexScan (filter column)
	IdxFlt   int    // index into query filters served by the index, -1 if none
	ScanPred []query.Filter

	// Join fields
	Method JoinMethod
	Preds  []query.JoinPred
	Left   *Node
	Right  *Node

	// Annotations
	EstRows float64
	EstCost float64 // cumulative estimated cost of the subtree
}

// IsScan reports whether the node is a leaf scan.
func (n *Node) IsScan() bool { return n.Left == nil && n.Right == nil }

// CP is a complete plan for a query.
type CP struct {
	Root *Node
	Q    *query.Query
}

// String renders the plan tree in a compact indented form.
func (cp *CP) String() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		if n.IsScan() {
			fmt.Fprintf(&b, "%s(%s) rows=%.0f\n", n.Scan, n.Alias, n.EstRows)
			return
		}
		fmt.Fprintf(&b, "%s rows=%.0f cost=%.0f\n", n.Method, n.EstRows, n.EstCost)
		walk(n.Left, depth+1)
		walk(n.Right, depth+1)
	}
	if cp.Root != nil {
		walk(cp.Root, 0)
	}
	return b.String()
}

// ICP is the incomplete plan: a left-deep join order plus join methods.
// Order[0] and Order[1] are the two deepest leaves (T1, T2); Order[k] for
// k >= 2 is the leaf joined at level k-1 (T_{k+1}). Methods[i] is the method
// of join O_{i+1} (bottom-up), len(Methods) == len(Order)-1.
type ICP struct {
	Order   []string
	Methods []JoinMethod
}

// Clone deep-copies the ICP.
func (p ICP) Clone() ICP {
	return ICP{
		Order:   append([]string(nil), p.Order...),
		Methods: append([]JoinMethod(nil), p.Methods...),
	}
}

// Equal reports whether two ICPs describe the same incomplete plan.
func (p ICP) Equal(o ICP) bool {
	if len(p.Order) != len(o.Order) || len(p.Methods) != len(o.Methods) {
		return false
	}
	for i := range p.Order {
		if p.Order[i] != o.Order[i] {
			return false
		}
	}
	for i := range p.Methods {
		if p.Methods[i] != o.Methods[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string usable as a map key (episode dedupe).
func (p ICP) Key() string {
	var b strings.Builder
	for i, a := range p.Order {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a)
	}
	b.WriteByte('|')
	for _, m := range p.Methods {
		b.WriteByte(byte('0' + int(m)))
	}
	return b.String()
}

// NumTables returns the number of leaves.
func (p ICP) NumTables() int { return len(p.Order) }

func (p ICP) String() string {
	var b strings.Builder
	b.WriteString("ICP[")
	for i, a := range p.Order {
		if i > 0 {
			b.WriteString(" ⋈ ")
		}
		b.WriteString(a)
		if i > 0 && i-1 < len(p.Methods) {
			fmt.Fprintf(&b, "(%s)", shortMethod(p.Methods[i-1]))
		}
	}
	b.WriteString("]")
	return b.String()
}

func shortMethod(m JoinMethod) string {
	switch m {
	case HashJoin:
		return "H"
	case MergeJoin:
		return "M"
	case NestLoop:
		return "N"
	}
	return "?"
}

// Extract derives the ICP (join order + methods) from a complete left-deep
// plan, the planner's first step on the original plan.
func Extract(cp *CP) (ICP, error) {
	var icp ICP
	n := cp.Root
	var methods []JoinMethod
	for n != nil && !n.IsScan() {
		if n.Right == nil || !n.Right.IsScan() {
			return ICP{}, fmt.Errorf("plan: not left-deep at %v", n.Method)
		}
		methods = append(methods, n.Method)
		icp.Order = append(icp.Order, n.Right.Alias)
		n = n.Left
	}
	if n == nil {
		return ICP{}, fmt.Errorf("plan: empty tree")
	}
	icp.Order = append(icp.Order, n.Alias)
	// We walked top-down; reverse to bottom-up order.
	for i, j := 0, len(icp.Order)-1; i < j; i, j = i+1, j-1 {
		icp.Order[i], icp.Order[j] = icp.Order[j], icp.Order[i]
	}
	for i, j := 0, len(methods)-1; i < j; i, j = i+1, j-1 {
		methods[i], methods[j] = methods[j], methods[i]
	}
	icp.Methods = methods
	return icp, nil
}

// LeafLabel returns the alias at label Tk (1-based), or "".
func (p ICP) LeafLabel(k int) string {
	if k < 1 || k > len(p.Order) {
		return ""
	}
	return p.Order[k-1]
}

// ParentJoinOf returns the bottom-up join label Ok (1-based) that is the
// parent of leaf Tk: T1 and T2 join at O1; Tk (k>=3) joins at O_{k-1}.
func ParentJoinOf(leaf int) int {
	if leaf <= 2 {
		return 1
	}
	return leaf - 1
}
