package plan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/foss-db/foss/internal/query"
)

func chainQuery(n int) *query.Query {
	// a1 - a2 - ... - an chain join graph
	q := &query.Query{ID: "chain"}
	for i := 0; i < n; i++ {
		q.Tables = append(q.Tables, query.TableRef{Table: "t", Alias: alias(i)})
	}
	for i := 0; i+1 < n; i++ {
		q.Joins = append(q.Joins, query.JoinPred{LA: alias(i), LC: "id", RA: alias(i + 1), RC: "fk"})
	}
	return q
}

func starQuery(n int) *query.Query {
	// a0 joined with a1..a(n-1)
	q := &query.Query{ID: "star"}
	for i := 0; i < n; i++ {
		q.Tables = append(q.Tables, query.TableRef{Table: "t", Alias: alias(i)})
	}
	for i := 1; i < n; i++ {
		q.Joins = append(q.Joins, query.JoinPred{LA: alias(0), LC: "id", RA: alias(i), RC: "fk"})
	}
	return q
}

func alias(i int) string { return string(rune('a' + i)) }

func defaultICP(n int) ICP {
	icp := ICP{}
	for i := 0; i < n; i++ {
		icp.Order = append(icp.Order, alias(i))
	}
	for i := 0; i+1 < n; i++ {
		icp.Methods = append(icp.Methods, HashJoin)
	}
	return icp
}

func TestActionEncodeDecodeBijection(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 12, 16} {
		s := NewSpace(n)
		seen := map[string]int{}
		for id := 1; id <= s.Size(); id++ {
			a := s.Decode(id)
			if got := s.Encode(a); got != id {
				t.Fatalf("N=%d: Encode(Decode(%d)) = %d (%v)", n, id, got, a)
			}
			k := a.String()
			if prev, dup := seen[k]; dup {
				t.Fatalf("N=%d: ids %d and %d decode to same action %s", n, prev, id, k)
			}
			seen[k] = id
		}
		if len(seen) != s.Size() {
			t.Fatalf("N=%d: %d distinct actions, want %d", n, len(seen), s.Size())
		}
	}
}

func TestActionSpaceSizes(t *testing.T) {
	s := NewSpace(5)
	if s.NumSwaps() != 10 {
		t.Fatalf("Is = %d, want 10", s.NumSwaps())
	}
	if s.NumOverrides() != 12 {
		t.Fatalf("Io = %d, want 12", s.NumOverrides())
	}
	// Block layout per the paper: B1=1, B2=1+(n-1)=5, B3=5+(n-2)=8, B4=10.
	if s.blockStart(2) != 5 || s.blockStart(3) != 8 || s.blockStart(4) != 10 {
		t.Fatalf("block starts %d %d %d", s.blockStart(2), s.blockStart(3), s.blockStart(4))
	}
	// First swap id is (1,2), last swap id is (n-1, n).
	if a := s.Decode(1); a.L != 1 || a.R != 2 {
		t.Fatalf("Decode(1) = %v", a)
	}
	if a := s.Decode(10); a.L != 4 || a.R != 5 {
		t.Fatalf("Decode(10) = %v", a)
	}
	// Paper: a = Is+Io decodes to Override(O1, Op1); a = Is+1 to O(n-1), Op|Op|.
	if a := s.Decode(s.Size()); a.I != 1 || a.Method != JoinMethod(0) {
		t.Fatalf("Decode(last) = %v", a)
	}
	if a := s.Decode(s.NumSwaps() + 1); a.I != 4 || a.Method != JoinMethod(2) {
		t.Fatalf("Decode(Is+1) = %v", a)
	}
}

func TestSwapIsInvolution(t *testing.T) {
	f := func(nRaw uint8, lRaw, rRaw uint8) bool {
		n := int(nRaw)%6 + 3 // 3..8
		l := int(lRaw)%n + 1
		r := int(rRaw)%n + 1
		if l == r {
			return true
		}
		if l > r {
			l, r = r, l
		}
		s := NewSpace(n)
		icp := defaultICP(n)
		a := Action{Kind: SwapAction, L: l, R: r}
		once, err := s.Apply(icp, a)
		if err != nil {
			return false
		}
		twice, err := s.Apply(once, a)
		if err != nil {
			return false
		}
		return twice.Equal(icp) && !once.Equal(icp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOverrideIsIdempotent(t *testing.T) {
	s := NewSpace(4)
	icp := defaultICP(4)
	a := Action{Kind: OverrideAction, I: 2, Method: NestLoop}
	once, err := s.Apply(icp, a)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := s.Apply(once, a)
	if err != nil {
		t.Fatal(err)
	}
	if !once.Equal(twice) {
		t.Fatal("override not idempotent")
	}
	if icp.Methods[1] != HashJoin {
		t.Fatal("Apply mutated its input")
	}
}

func TestMinStepsProperties(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 3
		s := NewSpace(n)
		orig := defaultICP(n)
		cur := orig.Clone()
		taken := int(steps) % 6
		for i := 0; i < taken; i++ {
			var a Action
			if rng.Intn(2) == 0 {
				l := rng.Intn(n) + 1
				r := rng.Intn(n) + 1
				for r == l {
					r = rng.Intn(n) + 1
				}
				if l > r {
					l, r = r, l
				}
				a = Action{Kind: SwapAction, L: l, R: r}
			} else {
				a = Action{Kind: OverrideAction, I: rng.Intn(n-1) + 1, Method: JoinMethod(rng.Intn(NumJoinMethods))}
			}
			next, err := s.Apply(cur, a)
			if err != nil {
				return false
			}
			cur = next
		}
		ms := MinSteps(orig, cur)
		if ms > taken {
			return false // min steps can never exceed actual steps taken
		}
		if cur.Equal(orig) != (ms == 0) {
			return false // ms == 0 iff identical
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMinStepsExact(t *testing.T) {
	orig := defaultICP(4) // order a,b,c,d methods H,H,H
	cur := ICP{Order: []string{"b", "a", "c", "d"}, Methods: []JoinMethod{HashJoin, NestLoop, HashJoin}}
	if got := MinSteps(orig, cur); got != 2 { // one swap + one override
		t.Fatalf("MinSteps = %d, want 2", got)
	}
	// 3-cycle a->b->c->a needs two transpositions
	cur2 := ICP{Order: []string{"c", "a", "b", "d"}, Methods: []JoinMethod{HashJoin, HashJoin, HashJoin}}
	if got := MinSteps(orig, cur2); got != 2 {
		t.Fatalf("MinSteps 3-cycle = %d, want 2", got)
	}
}

func TestMaskArity(t *testing.T) {
	// Space sized for 6 tables, query with only 4: swaps touching T5/T6 and
	// overrides on O4/O5 must be masked out.
	s := NewSpace(6)
	q := starQuery(4)
	icp := defaultICP(4)
	mask := s.Mask(icp, q, nil, MaskConfig{AllowCrossProducts: true})
	for id := 1; id <= s.Size(); id++ {
		a := s.Decode(id)
		legal := mask[id-1]
		switch a.Kind {
		case SwapAction:
			if a.R > 4 && legal {
				t.Fatalf("swap %v should be masked for 4-table query", a)
			}
			if a.R <= 4 && !legal {
				t.Fatalf("swap %v should be legal", a)
			}
		case OverrideAction:
			if a.I > 3 && legal {
				t.Fatalf("override %v should be masked", a)
			}
			if a.I <= 3 && legal && icp.Methods[a.I-1] == a.Method {
				t.Fatalf("no-op override %v should be masked", a)
			}
		}
	}
}

func TestMaskConnectivity(t *testing.T) {
	// chain a-b-c-d: order [a b c d] is connected; swapping a and d gives
	// [d b c a]: prefix {d,b} is disconnected -> illegal without cross joins.
	s := NewSpace(4)
	q := chainQuery(4)
	icp := defaultICP(4)
	noCross := s.Mask(icp, q, nil, MaskConfig{})
	withCross := s.Mask(icp, q, nil, MaskConfig{AllowCrossProducts: true})
	idAD := s.Encode(Action{Kind: SwapAction, L: 1, R: 4})
	if noCross[idAD-1] {
		t.Fatal("disconnecting swap should be masked without cross products")
	}
	if !withCross[idAD-1] {
		t.Fatal("swap should be legal when cross products allowed")
	}
	// swapping b and c keeps the chain connected: a-c? a joins b only...
	// chain: a-b, b-c, c-d. order [a c b d]: prefix {a,c} has no join -> masked.
	idBC := s.Encode(Action{Kind: SwapAction, L: 2, R: 3})
	if noCross[idBC-1] {
		t.Fatal("swap(b,c) disconnects prefix {a,c} on a chain; must be masked")
	}
	// on a star query every non-hub permutation keeps connectivity as long as
	// the hub stays first; swapping spokes 2 and 3 is fine.
	qs := starQuery(4)
	m := s.Mask(defaultICP(4), qs, nil, MaskConfig{})
	idCD := s.Encode(Action{Kind: SwapAction, L: 3, R: 4})
	if !m[idCD-1] {
		t.Fatal("spoke swap should be legal on star query")
	}
}

func TestMaskRestrictAfterSwap(t *testing.T) {
	s := NewSpace(4)
	q := starQuery(4)
	icp := defaultICP(4)
	prev := &Action{Kind: SwapAction, L: 1, R: 3}
	mask := s.Mask(icp, q, prev, MaskConfig{RestrictAfterSwap: true})
	for id := 1; id <= s.Size(); id++ {
		if !mask[id-1] {
			continue
		}
		a := s.Decode(id)
		if a.Kind != OverrideAction {
			t.Fatalf("after swap only overrides allowed, got %v", a)
		}
		// parents of T1 and T3 are O1 and O2
		if a.I != 1 && a.I != 2 {
			t.Fatalf("override %v not on parent of swapped leaves", a)
		}
	}
}

func TestExtractRoundTrip(t *testing.T) {
	// Build a left-deep CP by hand: ((a ⋈H b) ⋈N c)
	leafA := &Node{Alias: "a"}
	leafB := &Node{Alias: "b"}
	leafC := &Node{Alias: "c"}
	j1 := &Node{Method: HashJoin, Left: leafA, Right: leafB}
	j2 := &Node{Method: NestLoop, Left: j1, Right: leafC}
	cp := &CP{Root: j2}
	icp, err := Extract(cp)
	if err != nil {
		t.Fatal(err)
	}
	want := ICP{Order: []string{"a", "b", "c"}, Methods: []JoinMethod{HashJoin, NestLoop}}
	if !icp.Equal(want) {
		t.Fatalf("Extract = %v, want %v", icp, want)
	}
}

func TestExtractRejectsBushy(t *testing.T) {
	// (a ⋈ b) ⋈ (c ⋈ d) is bushy: right child is a join
	l := &Node{Method: HashJoin, Left: &Node{Alias: "a"}, Right: &Node{Alias: "b"}}
	r := &Node{Method: HashJoin, Left: &Node{Alias: "c"}, Right: &Node{Alias: "d"}}
	cp := &CP{Root: &Node{Method: HashJoin, Left: l, Right: r}}
	if _, err := Extract(cp); err == nil {
		t.Fatal("expected error for bushy plan")
	}
}

func TestICPKeyDistinguishes(t *testing.T) {
	a := ICP{Order: []string{"a", "b", "c"}, Methods: []JoinMethod{HashJoin, NestLoop}}
	b := ICP{Order: []string{"a", "b", "c"}, Methods: []JoinMethod{HashJoin, MergeJoin}}
	c := ICP{Order: []string{"a", "c", "b"}, Methods: []JoinMethod{HashJoin, NestLoop}}
	if a.Key() == b.Key() || a.Key() == c.Key() || b.Key() == c.Key() {
		t.Fatal("ICP keys collide")
	}
	if a.Key() != a.Clone().Key() {
		t.Fatal("clone changes key")
	}
}

func TestParentJoinOf(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 3, 7: 6}
	for leaf, want := range cases {
		if got := ParentJoinOf(leaf); got != want {
			t.Fatalf("ParentJoinOf(%d) = %d, want %d", leaf, got, want)
		}
	}
}
