package plan

import (
	"fmt"
	"strings"
	"testing"
)

// fuzzICP derives a structurally valid ICP from fuzz inputs: n tables
// (clamped to 2..9), a join order permuted by permSeed, and methods decoded
// from methodBits two bits at a time.
func fuzzICP(n uint8, methodBits uint32, permSeed uint64) ICP {
	tables := 2 + int(n)%8
	order := make([]string, tables)
	for i := range order {
		order[i] = fmt.Sprintf("a%d", i)
	}
	// Fisher-Yates driven by a splitmix-style stream: deterministic in
	// permSeed, covers every permutation as the fuzzer explores.
	s := permSeed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := tables - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	methods := make([]JoinMethod, tables-1)
	for i := range methods {
		methods[i] = JoinMethod((methodBits >> (2 * i)) % uint32(NumJoinMethods))
	}
	return ICP{Order: order, Methods: methods}
}

// FuzzHintsRoundTrip: every structurally valid ICP must survive
// FormatHints → ParseHints bit-for-bit. The online service replays plans
// through this textual steering surface, so the round-trip is load-bearing.
func FuzzHintsRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint32(0), uint64(0))
	f.Add(uint8(2), uint32(0b011011), uint64(42))
	f.Add(uint8(7), uint32(0xffffffff), uint64(7))
	f.Add(uint8(255), uint32(0x2491), uint64(1<<63))
	f.Fuzz(func(t *testing.T, n uint8, methodBits uint32, permSeed uint64) {
		icp := fuzzICP(n, methodBits, permSeed)
		text := icp.FormatHints()
		parsed, err := ParseHints(text)
		if err != nil {
			t.Fatalf("ParseHints(%q) failed on formatter output: %v", text, err)
		}
		if !icp.Equal(parsed) {
			t.Fatalf("round-trip mismatch:\n  in:  %v\n  txt: %s\n  out: %v", icp, text, parsed)
		}
		// a second trip through the formatter must be a fixed point
		if again := parsed.FormatHints(); again != text {
			t.Fatalf("formatter not a fixed point: %q vs %q", text, again)
		}
	})
}

// FuzzParseHints throws arbitrary text at the parser: it must never panic,
// and anything it accepts must re-format and re-parse stably.
func FuzzParseHints(f *testing.F) {
	f.Add("/*+ Leading(((a b) c)) HashJoin(a b) NestLoop(a b c) */")
	f.Add("/*+ Leading(a) */")
	f.Add("/*+ */")
	f.Add("Leading((a b)")
	f.Add("/*+ MergeJoin(a b) */")
	f.Add("/*+ Leading((a a)) */")
	f.Add("garbage (((")
	f.Fuzz(func(t *testing.T, text string) {
		icp, err := ParseHints(text)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if len(icp.Order) == 0 {
			t.Fatalf("ParseHints(%q) accepted an ICP with no join order", text)
		}
		if len(icp.Methods) != len(icp.Order)-1 {
			t.Fatalf("ParseHints(%q): %d methods for %d tables", text, len(icp.Methods), len(icp.Order))
		}
		seen := map[string]bool{}
		for _, a := range icp.Order {
			if seen[a] || strings.TrimSpace(a) == "" {
				t.Fatalf("ParseHints(%q) accepted duplicate/empty alias %q", text, a)
			}
			seen[a] = true
		}
		// accepted input must survive the canonical round-trip
		canon := icp.FormatHints()
		again, err := ParseHints(canon)
		if err != nil {
			t.Fatalf("re-parse of canonical %q failed: %v", canon, err)
		}
		if !icp.Equal(again) {
			t.Fatalf("canonical round-trip mismatch for %q: %v vs %v", text, icp, again)
		}
	})
}
