package plan

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatHints(t *testing.T) {
	icp := ICP{
		Order:   []string{"a", "b", "c"},
		Methods: []JoinMethod{NestLoop, HashJoin},
	}
	h := icp.FormatHints()
	for _, want := range []string{"/*+", "Leading(((a b) c))", "NestLoop(a b)", "HashJoin(a b c)", "*/"} {
		if !strings.Contains(h, want) {
			t.Fatalf("hints missing %q: %s", want, h)
		}
	}
}

func TestHintsRoundTripProperty(t *testing.T) {
	aliases := []string{"t", "ci", "n", "mc", "cn", "mi", "it", "mk"}
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%6 + 2 // 2..7 tables
		perm := rng.Perm(len(aliases))[:n]
		icp := ICP{}
		for _, p := range perm {
			icp.Order = append(icp.Order, aliases[p])
		}
		for i := 0; i+1 < n; i++ {
			icp.Methods = append(icp.Methods, JoinMethod(rng.Intn(NumJoinMethods)))
		}
		parsed, err := ParseHints(icp.FormatHints())
		if err != nil {
			return false
		}
		return parsed.Equal(icp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseHintsRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"/*+ */",
		"/*+ HashJoin(a b) */",                // method before Leading
		"/*+ Leading((a a)) */",               // repeated alias
		"/*+ Leading((a b) HashJoin(a b) */",  // unbalanced parens
		"/*+ Leading((a b)) FooJoin(a b) */",  // unknown clause
		"/*+ Leading((a b)) HashJoin(z q) */", // aliases not in order
		"/*+ Leading((a b)) HashJoin(a) */",   // too few aliases
	}
	for _, h := range bad {
		if _, err := ParseHints(h); err == nil {
			t.Fatalf("malformed hint accepted: %q", h)
		}
	}
}

func TestParseHintsDefaultsUnhintedJoins(t *testing.T) {
	icp, err := ParseHints("/*+ Leading(((a b) c)) NestLoop(a b c) */")
	if err != nil {
		t.Fatal(err)
	}
	// join (a b) was not hinted: defaults to HashJoin; (ab c) is NestLoop
	if icp.Methods[0] != HashJoin || icp.Methods[1] != NestLoop {
		t.Fatalf("methods = %v", icp.Methods)
	}
}
