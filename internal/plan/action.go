package plan

import (
	"fmt"

	"github.com/foss-db/foss/internal/query"
)

// ActionKind distinguishes the two edit types of the paper.
type ActionKind int

// Action kinds.
const (
	SwapAction ActionKind = iota
	OverrideAction
)

// Action is a decoded action: Swap(T_L, T_R) exchanges the leaves at labels
// L and R; Override(O_I, Method) rewrites the join method at label I.
type Action struct {
	Kind   ActionKind
	L, R   int // leaf labels for Swap (1-based, L < R)
	I      int // join label for Override (1-based)
	Method JoinMethod
}

func (a Action) String() string {
	if a.Kind == SwapAction {
		return fmt.Sprintf("Swap(T%d,T%d)", a.L, a.R)
	}
	return fmt.Sprintf("Override(O%d,%s)", a.I, a.Method)
}

// Space is the integer action space for schemas with up to N tables, as
// defined in the paper: actions 1..Is are swaps, Is+1..Is+Io are overrides,
// with Is = N(N-1)/2 and Io = |Op|·(N-1).
//
// Note on the paper's decode formulas: the published swap decode
// "r = a − B_l + 2" is correct only for l = 1; the general inverse of the
// B_k block layout is r = a − B_l + l + 1, which is what Decode implements
// (and what the property test round-trips).
type Space struct {
	N int // maximum number of tables
}

// NewSpace creates the action space for queries of up to n tables.
func NewSpace(n int) Space {
	if n < 2 {
		panic("plan: action space needs at least 2 tables")
	}
	return Space{N: n}
}

// NumSwaps returns Is.
func (s Space) NumSwaps() int { return s.N * (s.N - 1) / 2 }

// NumOverrides returns Io.
func (s Space) NumOverrides() int { return NumJoinMethods * (s.N - 1) }

// Size returns Is + Io, the total number of action ids.
func (s Space) Size() int { return s.NumSwaps() + s.NumOverrides() }

// blockStart returns B_l: the first action id of the swap block for left
// label l (1-based), per the paper's B_k definition.
func (s Space) blockStart(l int) int {
	if l == 1 {
		return 1
	}
	b := 1
	for i := 2; i <= l; i++ {
		b += s.N - i + 1
	}
	return b
}

// Encode maps an action to its integer id in [1, Size()].
func (s Space) Encode(a Action) int {
	switch a.Kind {
	case SwapAction:
		l, r := a.L, a.R
		if l > r {
			l, r = r, l
		}
		if l < 1 || r > s.N || l == r {
			panic(fmt.Sprintf("plan: invalid swap (%d,%d) for N=%d", a.L, a.R, s.N))
		}
		return s.blockStart(l) + (r - l - 1)
	case OverrideAction:
		if a.I < 1 || a.I > s.N-1 || a.Method < 0 || int(a.Method) >= NumJoinMethods {
			panic(fmt.Sprintf("plan: invalid override (%d,%v) for N=%d", a.I, a.Method, s.N))
		}
		// Inverse of the paper's decode: i = ceil((Is+Io+1-a)/|Op|),
		// j = ((Is+Io-a) mod |Op|) + 1 with j = method index (1-based).
		is, io := s.NumSwaps(), s.NumOverrides()
		j := int(a.Method) + 1
		return is + io - ((a.I-1)*NumJoinMethods + (j - 1))
	}
	panic("plan: unknown action kind")
}

// Decode maps an integer id back to an action.
func (s Space) Decode(id int) Action {
	is, io := s.NumSwaps(), s.NumOverrides()
	if id < 1 || id > is+io {
		panic(fmt.Sprintf("plan: action id %d out of range [1,%d]", id, is+io))
	}
	if id <= is {
		// find the block l with B_l <= id < B_{l+1}
		l := 1
		for l < s.N-1 && id >= s.blockStart(l+1) {
			l++
		}
		r := id - s.blockStart(l) + l + 1
		return Action{Kind: SwapAction, L: l, R: r}
	}
	// Paper formulas: i = ceil((Is+Io+1-a)/|Op|), j = ((Is+Io-a) mod |Op|)+1.
	i := (is + io + 1 - id + NumJoinMethods - 1) / NumJoinMethods
	j := (is+io-id)%NumJoinMethods + 1
	return Action{Kind: OverrideAction, I: i, Method: JoinMethod(j - 1)}
}

// Apply executes the action on a copy of the ICP and returns it.
// Swap labels beyond the ICP's table count or override labels beyond its
// join count are rejected with an error (they should have been masked).
func (s Space) Apply(icp ICP, a Action) (ICP, error) {
	out := icp.Clone()
	switch a.Kind {
	case SwapAction:
		n := icp.NumTables()
		if a.L < 1 || a.R > n || a.L >= a.R {
			return ICP{}, fmt.Errorf("plan: swap (%d,%d) illegal for %d tables", a.L, a.R, n)
		}
		out.Order[a.L-1], out.Order[a.R-1] = out.Order[a.R-1], out.Order[a.L-1]
	case OverrideAction:
		if a.I < 1 || a.I > len(icp.Methods) {
			return ICP{}, fmt.Errorf("plan: override O%d illegal for %d joins", a.I, len(icp.Methods))
		}
		out.Methods[a.I-1] = a.Method
	}
	return out, nil
}

// MaskConfig controls which actions the validity check permits.
type MaskConfig struct {
	// AllowCrossProducts permits swaps that disconnect the left-deep join
	// prefix. Off by default, mirroring pg_hint_plan practice.
	AllowCrossProducts bool
	// RestrictAfterSwap enables the paper's heuristic pruning rule: after a
	// Swap(Tl,Tr), the next action must be an Override on the parent join of
	// Tl or Tr.
	RestrictAfterSwap bool
}

// Mask computes the legality mask over action ids [1..Size()] for the
// current ICP of query q. mask[id-1] == true means id is legal.
// prev is the previously applied action (nil at the first step); when
// cfg.RestrictAfterSwap is set and prev was a swap, only the overrides on
// the parent joins of the swapped leaves remain legal.
func (s Space) Mask(icp ICP, q *query.Query, prev *Action, cfg MaskConfig) []bool {
	mask := make([]bool, s.Size())
	n := icp.NumTables()

	if prev != nil && prev.Kind == SwapAction && cfg.RestrictAfterSwap {
		allowed := map[int]bool{ParentJoinOf(prev.L): true, ParentJoinOf(prev.R): true}
		for id := 1; id <= s.Size(); id++ {
			a := s.Decode(id)
			if a.Kind == OverrideAction && a.I <= len(icp.Methods) && allowed[a.I] {
				// skip no-op overrides to the current method
				if icp.Methods[a.I-1] != a.Method {
					mask[id-1] = true
				}
			}
		}
		return mask
	}

	for id := 1; id <= s.Size(); id++ {
		a := s.Decode(id)
		switch a.Kind {
		case SwapAction:
			if a.R > n {
				continue // arity mask: labels beyond the query's tables
			}
			if !cfg.AllowCrossProducts {
				next, err := s.Apply(icp, a)
				if err != nil {
					continue
				}
				if !q.IsConnectedOrder(next.Order) {
					continue
				}
			}
			mask[id-1] = true
		case OverrideAction:
			if a.I > len(icp.Methods) {
				continue
			}
			if icp.Methods[a.I-1] == a.Method {
				continue // no-op
			}
			mask[id-1] = true
		}
	}
	return mask
}

// MinSteps returns the minimum number of actions needed to transform the
// original ICP into cur: the minimum number of transpositions to realize the
// leaf permutation (n − number of permutation cycles) plus the number of
// join positions whose method differs. Used by the paper's penalty term.
func MinSteps(orig, cur ICP) int {
	if len(orig.Order) != len(cur.Order) {
		panic("plan: MinSteps on ICPs of different arity")
	}
	pos := make(map[string]int, len(orig.Order))
	for i, a := range orig.Order {
		pos[a] = i
	}
	n := len(cur.Order)
	perm := make([]int, n)
	for i, a := range cur.Order {
		p, ok := pos[a]
		if !ok {
			panic(fmt.Sprintf("plan: MinSteps alias %q absent from original", a))
		}
		perm[i] = p
	}
	seen := make([]bool, n)
	cycles := 0
	for i := 0; i < n; i++ {
		if seen[i] {
			continue
		}
		cycles++
		for j := i; !seen[j]; j = perm[j] {
			seen[j] = true
		}
	}
	steps := n - cycles
	for i := range cur.Methods {
		if cur.Methods[i] != orig.Methods[i] {
			steps++
		}
	}
	return steps
}
