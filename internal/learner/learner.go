// Package learner implements the paper's simulated learner (Fig. 3): the
// training loop that alternates between (a) executing candidate plans in the
// real environment to fill the execution buffer, (b) supervising the
// asymmetric advantage model on plan pairs from that buffer, (c) letting the
// planner's agent interact cheaply with the simulated environment
// (traditional optimizer as state transitioner + AAM as reward indicator)
// to generate ample experience for PPO updates, and (d) validating promising
// plans found in simulation by executing them for real, which both corrects
// AAM drift and enriches its training pool.
package learner

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/engine/exec"
	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/rl"
	"github.com/foss-db/foss/internal/runtime"
	"github.com/foss-db/foss/internal/store"
	"github.com/foss-db/foss/internal/workload"
)

// Buffer is the execution buffer: every executed candidate plan per query.
// It is safe for concurrent use; parallel episode collection adds executed
// plans from many workers.
type Buffer struct {
	mu      sync.Mutex
	byQuery map[string][]*planner.PlanEval
	order   []string
}

// NewBuffer creates an empty execution buffer.
func NewBuffer() *Buffer {
	return &Buffer{byQuery: map[string][]*planner.PlanEval{}}
}

// Add records an executed plan (its Latency must be set). Duplicate ICPs for
// the same query keep only the first execution (latencies are deterministic).
func (b *Buffer) Add(pe *planner.PlanEval) {
	if pe == nil || !pe.HasLatency() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	qid := pe.Q.ID
	for _, old := range b.byQuery[qid] {
		if old.ICP.Equal(pe.ICP) {
			return
		}
	}
	if _, ok := b.byQuery[qid]; !ok {
		b.order = append(b.order, qid)
	}
	b.byQuery[qid] = append(b.byQuery[qid], pe)
}

// All returns every stored execution in deterministic insertion order. The
// online service uses it to seed a standby replica's buffer with the active
// replica's accumulated experience.
func (b *Buffer) All() []*planner.PlanEval {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []*planner.PlanEval
	for _, qid := range b.order {
		out = append(out, b.byQuery[qid]...)
	}
	return out
}

// Export snapshots the buffer in durable, engine-independent form: each
// execution's query, incomplete plan, step, and observed outcome. Records
// come out in the buffer's canonical order — the same order All() and
// Samples() iterate — so an export→import round trip reproduces iteration
// order (and therefore AAM sample order) exactly.
func (b *Buffer) Export() []store.ExecRecord {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []store.ExecRecord
	for _, qid := range b.order {
		for _, pe := range b.byQuery[qid] {
			out = append(out, store.ExecRecord{
				Query:     pe.Q,
				ICP:       pe.ICP.Clone(),
				Step:      pe.Step,
				LatencyMs: pe.Latency,
				TimedOut:  pe.TimedOut,
			})
		}
	}
	return out
}

// Import restores exported records: rebuild re-derives each record's
// complete plan and encoding (a deterministic function of query × ICP under
// a fixed backend), the observed outcome is restored onto the rebuilt
// candidate, and Add ingests it (deduplicating entries the buffer already
// holds). Records are imported in order, preserving the exported canonical
// order.
func (b *Buffer) Import(recs []store.ExecRecord, rebuild func(store.ExecRecord) (*planner.PlanEval, error)) error {
	for _, r := range recs {
		pe, err := rebuild(r)
		if err != nil {
			return fmt.Errorf("learner: import %s step %d: %w", r.Query.ID, r.Step, err)
		}
		pe.Latency = r.LatencyMs
		pe.TimedOut = r.TimedOut
		b.Add(pe)
	}
	return nil
}

// Size returns the total number of executions stored.
func (b *Buffer) Size() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, v := range b.byQuery {
		n += len(v)
	}
	return n
}

// Original returns the recorded step-0 plan for a query, or nil.
func (b *Buffer) Original(qid string) *planner.PlanEval {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.original(qid)
}

func (b *Buffer) original(qid string) *planner.PlanEval {
	for _, pe := range b.byQuery[qid] {
		if pe.Step == 0 {
			return pe
		}
	}
	return nil
}

// Refs assembles the paper's episode-bounty reference set for a query: the
// best-performing and median-performing executed plans that beat the
// original, plus the original, with refb_i = AdvInit(lat_orig, lat_ref_i).
func (b *Buffer) Refs(qid string) []planner.Ref {
	b.mu.Lock()
	defer b.mu.Unlock()
	orig := b.original(qid)
	if orig == nil {
		return nil
	}
	var better []*planner.PlanEval
	for _, pe := range b.byQuery[qid] {
		if !pe.TimedOut && pe.Latency < orig.Latency {
			better = append(better, pe)
		}
	}
	sort.Slice(better, func(i, j int) bool { return better[i].Latency < better[j].Latency })
	best, median := orig, orig
	if len(better) > 0 {
		best = better[0]
		median = better[len(better)/2]
	}
	mk := func(pe *planner.PlanEval) planner.Ref {
		return planner.Ref{Eval: pe, RefB: aam.AdvInit(orig.Latency, pe.Latency)}
	}
	return []planner.Ref{mk(best), mk(median), mk(orig)}
}

// Samples builds the AAM supervised training set: all ordered pairs of
// executed plans of the same query, excluding pairs where both timed out
// (their relative order is unknowable), labeled with the true advantage
// class. maxSteps normalizes the step-status feature.
func (b *Buffer) Samples(maxSteps int) []aam.Sample {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []aam.Sample
	for _, qid := range b.order {
		plans := b.byQuery[qid]
		for i := 0; i < len(plans); i++ {
			for j := 0; j < len(plans); j++ {
				if i == j {
					continue
				}
				l, r := plans[i], plans[j]
				if l.TimedOut && r.TimedOut {
					continue
				}
				out = append(out, aam.Sample{
					EncL: l.Enc, EncR: r.Enc,
					StepL: l.StepStatus(maxSteps), StepR: r.StepStatus(maxSteps),
					Label: aam.ScoreOf(aam.AdvInit(l.Latency, r.Latency)),
				})
			}
		}
	}
	return out
}

// Config drives the training loop.
type Config struct {
	Iterations      int // outer loop iterations
	RealPerIter     int // queries rolled out in the real environment per iteration
	SimPerIter      int // simulated episodes per iteration (the paper's 900-episode updates, scaled)
	ValidatePerIter int // promising plans executed (validated) per iteration
	AAMTrain        aam.TrainConfig
	Seed            int64

	// Ablation switches (Table II).
	DisableSim        bool // Off-Simulated: agent learns from real episodes only
	DisableValidation bool // Off-Validation: no promising-plan execution
	Agents            int  // multi-agent switch; 0/1 = single agent

	// InferenceRollouts is the number of episodes each agent runs per query
	// at inference time: one greedy plus (InferenceRollouts-1) stochastic
	// rollouts whose candidates all enter the AAM selection. More rollouts
	// widen the candidate set at the cost of optimization time.
	InferenceRollouts int

	// Workers bounds the episode fan-out of the real, simulated, and
	// validation phases. Workers <= 1 runs the original sequential loop
	// (bit-identical to the single-threaded implementation). Workers > 1
	// partitions episodes round-robin over that many goroutines with
	// per-worker seeded RNGs: results are deterministic for a fixed worker
	// count, with episodes inside a phase seeing the execution buffer as of
	// the phase start (buffer merges happen in episode order at the phase
	// boundary).
	Workers int
}

// DefaultConfig returns a laptop-scale training schedule.
func DefaultConfig() Config {
	return Config{
		Iterations:        8,
		RealPerIter:       24,
		SimPerIter:        150,
		ValidatePerIter:   24,
		AAMTrain:          aam.DefaultTrainConfig(),
		Seed:              1,
		Agents:            1,
		InferenceRollouts: 4,
		Workers:           1,
	}
}

// Learner owns one FOSS training run.
type Learner struct {
	W        *workload.Workload
	Planners []*planner.Planner // one per agent (shared Enc/backend, distinct nets)
	AAM      *aam.Model
	Exec     planner.Executor // the backend's execution surface
	Buf      *Buffer
	Cfg      Config

	rng     *rand.Rand
	pool    *runtime.Pool
	origMap map[string]*planner.PlanEval // cached original plans per query

	// iterBase offsets the per-phase RNG seeds across repeated Train/TrainOn
	// calls so an online retrain never replays the worker streams of an
	// earlier run.
	iterBase int

	// TrainingTime accumulates wall-clock spent in Train.
	TrainingTime time.Duration
}

// New assembles a learner from pre-built components. planners must share the
// encoder and backend; each brings its own agent. ex is the backend's
// execution surface (any planner.Executor).
func New(w *workload.Workload, planners []*planner.Planner, model *aam.Model, ex planner.Executor, cfg Config) *Learner {
	if cfg.Agents < 1 {
		cfg.Agents = 1
	}
	return &Learner{
		W:        w,
		Planners: planners,
		AAM:      model,
		Exec:     ex,
		Buf:      NewBuffer(),
		Cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		pool:     runtime.NewPool(cfg.Workers),
		origMap:  map[string]*planner.PlanEval{},
	}
}

// UsePool replaces the learner's episode pool, letting the enclosing runtime
// own the worker pool shared by training and any other fan-out. The pool's
// width must equal Config.Workers for the documented determinism contract to
// hold.
func (l *Learner) UsePool(p *runtime.Pool) {
	if p != nil {
		l.pool = p
	}
}

// original returns (and caches) the step-0 evaluated plan for q, executing
// it if needed.
func (l *Learner) original(q *query.Query) (*planner.PlanEval, error) {
	if pe, ok := l.origMap[q.ID]; ok {
		return pe, nil
	}
	pe, err := l.Planners[0].OriginalEval(q)
	if err != nil {
		return nil, err
	}
	res := l.Exec.Execute(pe.CP, 0)
	pe.Latency = res.LatencyMs
	pe.TimedOut = res.TimedOut
	l.origMap[q.ID] = pe
	l.Buf.Add(pe)
	return pe, nil
}

// IterStats summarizes one outer iteration for progress callbacks.
type IterStats struct {
	Iter        int
	BufferSize  int
	AAMLoss     float64
	AAMAccuracy float64
	PPO         rl.Stats
	Validated   int
}

// Train runs the full loop over the workload's train split. progress may be
// nil. Cancellation is honored between episodes and iterations.
func (l *Learner) Train(ctx context.Context, progress func(IterStats)) error {
	return l.TrainOn(ctx, l.W.Train, 0, progress)
}

// TrainOn runs the training loop over an explicit query set — the online
// service retrains on recently served queries this way, adapting the models
// to the live distribution rather than the offline train split. iterations
// overrides Cfg.Iterations when positive (incremental refreshes use a shorter
// schedule than the offline run). progress may be nil.
func (l *Learner) TrainOn(ctx context.Context, queries []*query.Query, iterations int, progress func(IterStats)) error {
	start := time.Now()
	defer func() { l.TrainingTime += time.Since(start) }()

	if ctx == nil {
		ctx = context.Background()
	}
	if len(queries) == 0 {
		return fmt.Errorf("learner: no queries to train on: %w", fosserr.ErrBadConfig)
	}
	iters := l.Cfg.Iterations
	if iterations > 0 {
		iters = iterations
	}
	for iter := 0; iter < iters; iter++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		st := IterStats{Iter: iter}

		// (a) real-environment episodes to gather executions
		realTrans, err := l.realPhase(ctx, queries, l.iterBase+iter)
		if err != nil {
			return err
		}

		// (b) AAM supervised training from the execution buffer
		samples := l.Buf.Samples(l.Planners[0].Cfg.MaxSteps)
		if len(samples) > 0 {
			losses := l.AAM.Train(samples, l.Cfg.AAMTrain)
			st.AAMLoss = losses[len(losses)-1]
			if len(samples) > 200 {
				samples = samples[:200]
			}
			st.AAMAccuracy = l.AAM.Accuracy(samples)
		}

		// (c) simulated episodes + PPO update per agent
		if l.Cfg.DisableSim {
			// Off-Simulated ablation: the agent updates from the (scarce)
			// real experience instead.
			for ai, pl := range l.Planners {
				if len(realTrans[ai]) > 0 {
					st.PPO = pl.Update(realTrans[ai])
				}
			}
		} else {
			promising, err := l.simPhase(ctx, queries, l.iterBase+iter, &st)
			if err != nil {
				return err
			}
			// (d) promising-plan validation
			if !l.Cfg.DisableValidation {
				st.Validated = l.validate(promising)
			}
		}

		st.BufferSize = l.Buf.Size()
		if progress != nil {
			progress(st)
		}
	}
	l.iterBase += iters
	return nil
}

// Phase identifiers, mixed into per-worker RNG seeds so each phase of each
// iteration draws from an independent stream.
const (
	phaseReal = iota
	phaseSim
)

// phaseSeed derives a worker RNG seed from (base seed, iteration, phase,
// worker) with splitmix-style mixing, so no two (iter, phase, worker)
// combinations collide.
func phaseSeed(base int64, iter, phase, worker int) int64 {
	z := uint64(base)
	for _, v := range []uint64{uint64(iter), uint64(phase), uint64(worker)} {
		z += 0x9e3779b97f4a7c15 + v
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return int64(z >> 1)
}

// episodeJob is one scheduled episode: its agent, query, cached original
// plan, and the bounty reference set snapshotted at phase start.
type episodeJob struct {
	agent int
	q     *query.Query
	orig  *planner.PlanEval
	refs  []planner.Ref
}

// episodeOut is one episode's result plus every plan it executed (recorded
// locally so buffer merges can happen in deterministic episode order).
type episodeOut struct {
	ep       *planner.EpisodeResult
	executed []*planner.PlanEval
	err      error
}

// buildJobs samples perAgent queries per agent from the main RNG stream,
// resolves (and caches) the original plans sequentially, and snapshots the
// episode-bounty references as of the phase start.
func (l *Learner) buildJobs(queries []*query.Query, perAgent int) ([]episodeJob, error) {
	jobs := make([]episodeJob, 0, len(l.Planners)*perAgent)
	for ai := range l.Planners {
		for e := 0; e < perAgent; e++ {
			jobs = append(jobs, episodeJob{agent: ai, q: queries[l.rng.Intn(len(queries))]})
		}
	}
	for i := range jobs {
		orig, err := l.original(jobs[i].q)
		if err != nil {
			return nil, err
		}
		jobs[i].orig = orig
	}
	refsByQ := map[string][]planner.Ref{}
	for i := range jobs {
		qid := jobs[i].q.ID
		if _, ok := refsByQ[qid]; !ok {
			refsByQ[qid] = l.Buf.Refs(qid)
		}
		jobs[i].refs = refsByQ[qid]
	}
	return jobs, nil
}

// runEpisodes fans jobs out over the worker pool. Each worker owns a seeded
// RNG and processes its (round-robin assigned) jobs in order, so the result
// set is deterministic for a fixed worker count. makeEnv builds a
// per-episode environment; record captures executed plans for the ordered
// post-phase buffer merge.
func (l *Learner) runEpisodes(ctx context.Context, jobs []episodeJob, iter, phase int, makeEnv func(record func(*planner.PlanEval)) planner.Environment) ([]episodeOut, error) {
	outs := make([]episodeOut, len(jobs))
	rngs := make([]*rand.Rand, l.pool.Workers())
	for w := range rngs {
		rngs[w] = rand.New(rand.NewSource(phaseSeed(l.Cfg.Seed, iter, phase, w)))
	}
	err := l.pool.RunCtx(ctx, len(jobs), func(w, i int) {
		j := jobs[i]
		var executed []*planner.PlanEval
		env := makeEnv(func(pe *planner.PlanEval) { executed = append(executed, pe) })
		ep, err := l.Planners[j.agent].RunEpisodeWithRng(j.q, j.orig, env, j.refs, true, rngs[w])
		outs[i] = episodeOut{ep: ep, executed: executed, err: err}
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// realPhase runs real-environment episodes on randomly sampled queries and
// returns the transitions per agent (used directly in the Off-Simulated
// ablation; otherwise only their side effect — buffer fills — matters).
func (l *Learner) realPhase(ctx context.Context, queries []*query.Query, iter int) ([][]rl.Transition, error) {
	if l.Cfg.Workers <= 1 {
		return l.realPhaseSeq(ctx, queries)
	}
	return l.realPhasePar(ctx, queries, iter)
}

// realPhaseSeq is the original single-threaded loop, kept verbatim so
// Workers<=1 stays bit-identical to the sequential implementation.
func (l *Learner) realPhaseSeq(ctx context.Context, queries []*query.Query) ([][]rl.Transition, error) {
	out := make([][]rl.Transition, len(l.Planners))
	for ai, pl := range l.Planners {
		env := &planner.RealEnv{Exec: l.Exec, OnExecuted: func(pe *planner.PlanEval) { l.Buf.Add(pe) }}
		for e := 0; e < l.Cfg.RealPerIter; e++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			q := queries[l.rng.Intn(len(queries))]
			orig, err := l.original(q)
			if err != nil {
				return nil, err
			}
			ep, err := pl.RunEpisodeFrom(q, orig, env, l.Buf.Refs(q.ID), true)
			if err != nil {
				return nil, err
			}
			out[ai] = append(out[ai], ep.Transitions...)
		}
	}
	return out, nil
}

func (l *Learner) realPhasePar(ctx context.Context, queries []*query.Query, iter int) ([][]rl.Transition, error) {
	jobs, err := l.buildJobs(queries, l.Cfg.RealPerIter)
	if err != nil {
		return nil, err
	}
	outs, err := l.runEpisodes(ctx, jobs, iter, phaseReal, func(record func(*planner.PlanEval)) planner.Environment {
		return &planner.RealEnv{Exec: l.Exec, OnExecuted: record}
	})
	if err != nil {
		return nil, err
	}
	out := make([][]rl.Transition, len(l.Planners))
	for i, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		for _, pe := range o.executed {
			l.Buf.Add(pe)
		}
		out[jobs[i].agent] = append(out[jobs[i].agent], o.ep.Transitions...)
	}
	return out, nil
}

// simPhase runs simulated episodes (AAM as reward indicator) and one PPO
// update per agent, returning the promising plans found.
func (l *Learner) simPhase(ctx context.Context, queries []*query.Query, iter int, st *IterStats) ([]*planner.PlanEval, error) {
	if l.Cfg.Workers <= 1 {
		return l.simPhaseSeq(ctx, queries, st)
	}
	return l.simPhasePar(ctx, queries, iter, st)
}

// simPhaseSeq is the original single-threaded loop, kept verbatim so
// Workers<=1 stays bit-identical to the sequential implementation.
func (l *Learner) simPhaseSeq(ctx context.Context, queries []*query.Query, st *IterStats) ([]*planner.PlanEval, error) {
	var promising []*planner.PlanEval
	for _, pl := range l.Planners {
		simEnv := &planner.SimEnv{Model: l.AAM, MaxSteps: pl.Cfg.MaxSteps}
		var trans []rl.Transition
		for e := 0; e < l.Cfg.SimPerIter; e++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			q := queries[l.rng.Intn(len(queries))]
			orig, err := l.original(q)
			if err != nil {
				return nil, err
			}
			ep, err := pl.RunEpisodeFrom(q, orig, simEnv, l.Buf.Refs(q.ID), true)
			if err != nil {
				return nil, err
			}
			trans = append(trans, ep.Transitions...)
			if ep.Final != nil && ep.Final.Step > 0 {
				promising = append(promising, ep.Final)
			}
		}
		st.PPO = pl.Update(trans)
	}
	return promising, nil
}

func (l *Learner) simPhasePar(ctx context.Context, queries []*query.Query, iter int, st *IterStats) ([]*planner.PlanEval, error) {
	jobs, err := l.buildJobs(queries, l.Cfg.SimPerIter)
	if err != nil {
		return nil, err
	}
	outs, err := l.runEpisodes(ctx, jobs, iter, phaseSim, func(func(*planner.PlanEval)) planner.Environment {
		return &planner.SimEnv{Model: l.AAM, MaxSteps: l.Planners[0].Cfg.MaxSteps}
	})
	if err != nil {
		return nil, err
	}
	var promising []*planner.PlanEval
	trans := make([][]rl.Transition, len(l.Planners))
	for i, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		trans[jobs[i].agent] = append(trans[jobs[i].agent], o.ep.Transitions...)
		if o.ep.Final != nil && o.ep.Final.Step > 0 {
			promising = append(promising, o.ep.Final)
		}
	}
	for ai, pl := range l.Planners {
		st.PPO = pl.Update(trans[ai])
	}
	return promising, nil
}

// validate executes up to ValidatePerIter distinct promising plans under the
// dynamic timeout and adds the results to the buffer. With Workers > 1 the
// selected plans execute in parallel; selection order and buffer merges stay
// deterministic.
func (l *Learner) validate(promising []*planner.PlanEval) int {
	l.rng.Shuffle(len(promising), func(i, j int) { promising[i], promising[j] = promising[j], promising[i] })
	if l.Cfg.Workers <= 1 {
		n := 0
		for _, pe := range promising {
			if n >= l.Cfg.ValidatePerIter {
				break
			}
			if pe.HasLatency() {
				continue
			}
			res := l.Exec.Execute(pe.CP, l.validateTimeout(pe))
			pe.Latency = res.LatencyMs
			pe.TimedOut = res.TimedOut
			l.Buf.Add(pe)
			n++
		}
		return n
	}
	var selected []*planner.PlanEval
	for _, pe := range promising {
		if len(selected) >= l.Cfg.ValidatePerIter {
			break
		}
		if pe.HasLatency() {
			continue
		}
		selected = append(selected, pe)
	}
	results := make([]exec.Result, len(selected))
	l.pool.Run(len(selected), func(_, i int) {
		results[i] = l.Exec.Execute(selected[i].CP, l.validateTimeout(selected[i]))
	})
	for i, pe := range selected {
		pe.Latency = results[i].LatencyMs
		pe.TimedOut = results[i].TimedOut
		l.Buf.Add(pe)
	}
	return len(selected)
}

// validateTimeout computes the dynamic validation timeout (1.5× the original
// plan's latency, 0 = none when the original is unknown).
func (l *Learner) validateTimeout(pe *planner.PlanEval) float64 {
	if orig := l.origMap[pe.Q.ID]; orig != nil {
		return orig.Latency * l.Planners[0].Cfg.TimeoutFactor
	}
	return 0
}

// Optimize doctors one query at inference time. Every agent generates its
// candidate sequences in the simulated environment — one greedy episode plus
// InferenceRollouts−1 stochastic ones, widening the candidate pool the way
// the paper's multi-agent mode does — and the AAM selects the estimated-best
// plan in temporal order (one batched state-network pass over the pool). The
// original plan is always a candidate, so FOSS never does worse than its own
// selector believes.
//
// Optimize is safe for concurrent use (while no training runs): stochastic
// rollouts draw from an RNG seeded by the query fingerprint, so the result
// for a query is deterministic regardless of request interleaving.
// Cancellation is honored between rollouts.
func (l *Learner) Optimize(ctx context.Context, q *query.Query) (*planner.PlanEval, error) {
	pool, err := l.candidates(ctx, q)
	if err != nil {
		return nil, err
	}
	best := planner.SelectBest(l.AAM, pool, l.Planners[0].Cfg.MaxSteps)
	if best == nil {
		return nil, errNoCandidate
	}
	return best, nil
}

// Explain doctors one query the way Optimize does but additionally returns
// the full deduplicated candidate pool as a per-candidate score card: each
// entry carries its hint set and the AAM's advantage class of the winner
// over it. The winner is bit-identical to Optimize on the same model state
// (same fingerprint-seeded rollouts, same selection chain); the extra cost
// is one pairwise comparison per losing candidate.
func (l *Learner) Explain(ctx context.Context, q *query.Query) (*planner.PlanEval, []planner.CandidateScore, error) {
	pool, err := l.candidates(ctx, q)
	if err != nil {
		return nil, nil, err
	}
	best, scores := planner.ExplainSelection(l.AAM, pool, l.Planners[0].Cfg.MaxSteps)
	if best < 0 {
		return nil, nil, errNoCandidate
	}
	return pool[best], scores, nil
}

// candidates generates the deduplicated candidate pool for one query: every
// agent's greedy episode plus its stochastic rollouts, RNG seeded by the
// query fingerprint so the pool is independent of request interleaving.
func (l *Learner) candidates(ctx context.Context, q *query.Query) ([]*planner.PlanEval, error) {
	rollouts := l.Cfg.InferenceRollouts
	if rollouts < 1 {
		rollouts = 1
	}
	rng := rand.New(rand.NewSource(int64(q.Fingerprint()>>1) ^ l.Cfg.Seed))
	var pool []*planner.PlanEval
	seen := map[string]bool{}
	addCands := func(cands []*planner.PlanEval) {
		for _, c := range cands {
			if !seen[c.ICP.Key()] {
				seen[c.ICP.Key()] = true
				pool = append(pool, c)
			}
		}
	}
	for _, pl := range l.Planners {
		simEnv := &planner.SimEnv{Model: l.AAM, MaxSteps: pl.Cfg.MaxSteps}
		orig, err := pl.OriginalEval(q)
		if err != nil {
			return nil, err
		}
		for r := 0; r < rollouts; r++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			ep, err := pl.RunEpisodeWithRng(q, orig, simEnv, nil, r > 0, rng)
			if err != nil {
				return nil, err
			}
			addCands(ep.Candidates)
		}
	}
	return pool, nil
}

// OptimizeBatch doctors a batch of queries at once: per-query candidate
// generation fans out over the worker pool (each query's rollouts stay on
// their fingerprint-seeded RNG, so results are bit-identical to Optimize
// regardless of batching or worker count), then ONE batched state-network
// pass scores every candidate of every query and each query runs its
// temporal selection over its slice. out[i] corresponds to qs[i].
// Cancellation is honored between rollouts; on cancellation no partial
// results are returned.
func (l *Learner) OptimizeBatch(ctx context.Context, qs []*query.Query) ([]*planner.PlanEval, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pools := make([][]*planner.PlanEval, len(qs))
	errs := make([]error, len(qs))
	if err := l.pool.RunCtx(ctx, len(qs), func(_, i int) {
		pools[i], errs[i] = l.candidates(ctx, qs[i])
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := planner.SelectBestMulti(l.AAM, pools, l.Planners[0].Cfg.MaxSteps)
	for _, pe := range out {
		if pe == nil {
			return nil, errNoCandidate
		}
	}
	return out, nil
}

var errNoCandidate = fmt.Errorf("learner: %w", fosserr.ErrNoCandidate)

// KnownBest returns, for each query id, the lowest-latency non-timeout
// execution seen during training (used by the Fig. 7/8 analyses).
func (l *Learner) KnownBest() map[string]*planner.PlanEval {
	out := map[string]*planner.PlanEval{}
	l.Buf.mu.Lock()
	defer l.Buf.mu.Unlock()
	for qid, plans := range l.Buf.byQuery {
		for _, pe := range plans {
			if pe.TimedOut {
				continue
			}
			if cur, ok := out[qid]; !ok || pe.Latency < cur.Latency {
				out[qid] = pe
			}
		}
	}
	return out
}
