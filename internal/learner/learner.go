// Package learner implements the paper's simulated learner (Fig. 3): the
// training loop that alternates between (a) executing candidate plans in the
// real environment to fill the execution buffer, (b) supervising the
// asymmetric advantage model on plan pairs from that buffer, (c) letting the
// planner's agent interact cheaply with the simulated environment
// (traditional optimizer as state transitioner + AAM as reward indicator)
// to generate ample experience for PPO updates, and (d) validating promising
// plans found in simulation by executing them for real, which both corrects
// AAM drift and enriches its training pool.
package learner

import (
	"math/rand"
	"sort"
	"time"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/engine/exec"
	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/rl"
	"github.com/foss-db/foss/internal/workload"
)

// Buffer is the execution buffer: every executed candidate plan per query.
type Buffer struct {
	byQuery map[string][]*planner.PlanEval
	order   []string
}

// NewBuffer creates an empty execution buffer.
func NewBuffer() *Buffer {
	return &Buffer{byQuery: map[string][]*planner.PlanEval{}}
}

// Add records an executed plan (its Latency must be set). Duplicate ICPs for
// the same query keep only the first execution (latencies are deterministic).
func (b *Buffer) Add(pe *planner.PlanEval) {
	if pe == nil || !pe.HasLatency() {
		return
	}
	qid := pe.Q.ID
	for _, old := range b.byQuery[qid] {
		if old.ICP.Equal(pe.ICP) {
			return
		}
	}
	if _, ok := b.byQuery[qid]; !ok {
		b.order = append(b.order, qid)
	}
	b.byQuery[qid] = append(b.byQuery[qid], pe)
}

// Size returns the total number of executions stored.
func (b *Buffer) Size() int {
	n := 0
	for _, v := range b.byQuery {
		n += len(v)
	}
	return n
}

// Original returns the recorded step-0 plan for a query, or nil.
func (b *Buffer) Original(qid string) *planner.PlanEval {
	for _, pe := range b.byQuery[qid] {
		if pe.Step == 0 {
			return pe
		}
	}
	return nil
}

// Refs assembles the paper's episode-bounty reference set for a query: the
// best-performing and median-performing executed plans that beat the
// original, plus the original, with refb_i = AdvInit(lat_orig, lat_ref_i).
func (b *Buffer) Refs(qid string) []planner.Ref {
	orig := b.Original(qid)
	if orig == nil {
		return nil
	}
	var better []*planner.PlanEval
	for _, pe := range b.byQuery[qid] {
		if !pe.TimedOut && pe.Latency < orig.Latency {
			better = append(better, pe)
		}
	}
	sort.Slice(better, func(i, j int) bool { return better[i].Latency < better[j].Latency })
	best, median := orig, orig
	if len(better) > 0 {
		best = better[0]
		median = better[len(better)/2]
	}
	mk := func(pe *planner.PlanEval) planner.Ref {
		return planner.Ref{Eval: pe, RefB: aam.AdvInit(orig.Latency, pe.Latency)}
	}
	return []planner.Ref{mk(best), mk(median), mk(orig)}
}

// Samples builds the AAM supervised training set: all ordered pairs of
// executed plans of the same query, excluding pairs where both timed out
// (their relative order is unknowable), labeled with the true advantage
// class. maxSteps normalizes the step-status feature.
func (b *Buffer) Samples(maxSteps int) []aam.Sample {
	var out []aam.Sample
	for _, qid := range b.order {
		plans := b.byQuery[qid]
		for i := 0; i < len(plans); i++ {
			for j := 0; j < len(plans); j++ {
				if i == j {
					continue
				}
				l, r := plans[i], plans[j]
				if l.TimedOut && r.TimedOut {
					continue
				}
				out = append(out, aam.Sample{
					EncL: l.Enc, EncR: r.Enc,
					StepL: l.StepStatus(maxSteps), StepR: r.StepStatus(maxSteps),
					Label: aam.ScoreOf(aam.AdvInit(l.Latency, r.Latency)),
				})
			}
		}
	}
	return out
}

// Config drives the training loop.
type Config struct {
	Iterations      int // outer loop iterations
	RealPerIter     int // queries rolled out in the real environment per iteration
	SimPerIter      int // simulated episodes per iteration (the paper's 900-episode updates, scaled)
	ValidatePerIter int // promising plans executed (validated) per iteration
	AAMTrain        aam.TrainConfig
	Seed            int64

	// Ablation switches (Table II).
	DisableSim        bool // Off-Simulated: agent learns from real episodes only
	DisableValidation bool // Off-Validation: no promising-plan execution
	Agents            int  // multi-agent switch; 0/1 = single agent

	// InferenceRollouts is the number of episodes each agent runs per query
	// at inference time: one greedy plus (InferenceRollouts-1) stochastic
	// rollouts whose candidates all enter the AAM selection. More rollouts
	// widen the candidate set at the cost of optimization time.
	InferenceRollouts int
}

// DefaultConfig returns a laptop-scale training schedule.
func DefaultConfig() Config {
	return Config{
		Iterations:        8,
		RealPerIter:       24,
		SimPerIter:        150,
		ValidatePerIter:   24,
		AAMTrain:          aam.DefaultTrainConfig(),
		Seed:              1,
		Agents:            1,
		InferenceRollouts: 4,
	}
}

// Learner owns one FOSS training run.
type Learner struct {
	W        *workload.Workload
	Planners []*planner.Planner // one per agent (shared Enc/Opt, distinct nets)
	AAM      *aam.Model
	Exec     *exec.Executor
	Buf      *Buffer
	Cfg      Config

	rng     *rand.Rand
	origMap map[string]*planner.PlanEval // cached original plans per query

	// TrainingTime accumulates wall-clock spent in Train.
	TrainingTime time.Duration
}

// New assembles a learner from pre-built components. planners must share the
// encoder and optimizer; each brings its own agent.
func New(w *workload.Workload, planners []*planner.Planner, model *aam.Model, ex *exec.Executor, cfg Config) *Learner {
	if cfg.Agents < 1 {
		cfg.Agents = 1
	}
	return &Learner{
		W:        w,
		Planners: planners,
		AAM:      model,
		Exec:     ex,
		Buf:      NewBuffer(),
		Cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		origMap:  map[string]*planner.PlanEval{},
	}
}

// original returns (and caches) the step-0 evaluated plan for q, executing
// it if needed.
func (l *Learner) original(q *query.Query) (*planner.PlanEval, error) {
	if pe, ok := l.origMap[q.ID]; ok {
		return pe, nil
	}
	pe, err := l.Planners[0].OriginalEval(q)
	if err != nil {
		return nil, err
	}
	res := l.Exec.Execute(pe.CP, 0)
	pe.Latency = res.LatencyMs
	pe.TimedOut = res.TimedOut
	l.origMap[q.ID] = pe
	l.Buf.Add(pe)
	return pe, nil
}

// IterStats summarizes one outer iteration for progress callbacks.
type IterStats struct {
	Iter        int
	BufferSize  int
	AAMLoss     float64
	AAMAccuracy float64
	PPO         rl.Stats
	Validated   int
}

// Train runs the full loop. progress may be nil.
func (l *Learner) Train(progress func(IterStats)) error {
	start := time.Now()
	defer func() { l.TrainingTime += time.Since(start) }()

	queries := l.W.Train
	for iter := 0; iter < l.Cfg.Iterations; iter++ {
		st := IterStats{Iter: iter}

		// (a) real-environment episodes to gather executions
		realTrans, err := l.realPhase(queries)
		if err != nil {
			return err
		}

		// (b) AAM supervised training from the execution buffer
		samples := l.Buf.Samples(l.Planners[0].Cfg.MaxSteps)
		if len(samples) > 0 {
			losses := l.AAM.Train(samples, l.Cfg.AAMTrain)
			st.AAMLoss = losses[len(losses)-1]
			if len(samples) > 200 {
				samples = samples[:200]
			}
			st.AAMAccuracy = l.AAM.Accuracy(samples)
		}

		// (c) simulated episodes + PPO update per agent
		if l.Cfg.DisableSim {
			// Off-Simulated ablation: the agent updates from the (scarce)
			// real experience instead.
			for ai, pl := range l.Planners {
				if len(realTrans[ai]) > 0 {
					st.PPO = pl.Update(realTrans[ai])
				}
			}
		} else {
			var promising []*planner.PlanEval
			for _, pl := range l.Planners {
				simEnv := &planner.SimEnv{Model: l.AAM, MaxSteps: pl.Cfg.MaxSteps}
				var trans []rl.Transition
				for e := 0; e < l.Cfg.SimPerIter; e++ {
					q := queries[l.rng.Intn(len(queries))]
					orig, err := l.original(q)
					if err != nil {
						return err
					}
					ep, err := pl.RunEpisodeFrom(q, orig, simEnv, l.Buf.Refs(q.ID), true)
					if err != nil {
						return err
					}
					trans = append(trans, ep.Transitions...)
					if ep.Final != nil && ep.Final.Step > 0 {
						promising = append(promising, ep.Final)
					}
				}
				st.PPO = pl.Update(trans)
			}
			// (d) promising-plan validation
			if !l.Cfg.DisableValidation {
				st.Validated = l.validate(promising)
			}
		}

		st.BufferSize = l.Buf.Size()
		if progress != nil {
			progress(st)
		}
	}
	return nil
}

// realPhase runs real-environment episodes on randomly sampled queries and
// returns the transitions per agent (used directly in the Off-Simulated
// ablation; otherwise only their side effect — buffer fills — matters).
func (l *Learner) realPhase(queries []*query.Query) ([][]rl.Transition, error) {
	out := make([][]rl.Transition, len(l.Planners))
	for ai, pl := range l.Planners {
		env := &planner.RealEnv{Exec: l.Exec, OnExecuted: func(pe *planner.PlanEval) { l.Buf.Add(pe) }}
		for e := 0; e < l.Cfg.RealPerIter; e++ {
			q := queries[l.rng.Intn(len(queries))]
			orig, err := l.original(q)
			if err != nil {
				return nil, err
			}
			ep, err := pl.RunEpisodeFrom(q, orig, env, l.Buf.Refs(q.ID), true)
			if err != nil {
				return nil, err
			}
			out[ai] = append(out[ai], ep.Transitions...)
		}
	}
	return out, nil
}

// validate executes up to ValidatePerIter distinct promising plans under the
// dynamic timeout and adds the results to the buffer.
func (l *Learner) validate(promising []*planner.PlanEval) int {
	l.rng.Shuffle(len(promising), func(i, j int) { promising[i], promising[j] = promising[j], promising[i] })
	n := 0
	for _, pe := range promising {
		if n >= l.Cfg.ValidatePerIter {
			break
		}
		if pe.HasLatency() {
			continue
		}
		orig := l.origMap[pe.Q.ID]
		timeout := 0.0
		if orig != nil {
			timeout = orig.Latency * l.Planners[0].Cfg.TimeoutFactor
		}
		res := l.Exec.Execute(pe.CP, timeout)
		pe.Latency = res.LatencyMs
		pe.TimedOut = res.TimedOut
		l.Buf.Add(pe)
		n++
	}
	return n
}

// Optimize doctors one query at inference time. Every agent generates its
// candidate sequences in the simulated environment — one greedy episode plus
// InferenceRollouts−1 stochastic ones, widening the candidate pool the way
// the paper's multi-agent mode does — and the AAM selects the estimated-best
// plan in temporal order. The original plan is always a candidate, so FOSS
// never does worse than its own selector believes.
func (l *Learner) Optimize(q *query.Query) (*planner.PlanEval, error) {
	rollouts := l.Cfg.InferenceRollouts
	if rollouts < 1 {
		rollouts = 1
	}
	maxSteps := l.Planners[0].Cfg.MaxSteps
	var pool []*planner.PlanEval
	seen := map[string]bool{}
	addCands := func(cands []*planner.PlanEval) {
		for _, c := range cands {
			if !seen[c.ICP.Key()] {
				seen[c.ICP.Key()] = true
				pool = append(pool, c)
			}
		}
	}
	for _, pl := range l.Planners {
		simEnv := &planner.SimEnv{Model: l.AAM, MaxSteps: pl.Cfg.MaxSteps}
		orig, err := pl.OriginalEval(q)
		if err != nil {
			return nil, err
		}
		for r := 0; r < rollouts; r++ {
			ep, err := pl.RunEpisodeFrom(q, orig, simEnv, nil, r > 0)
			if err != nil {
				return nil, err
			}
			addCands(ep.Candidates)
		}
	}
	best := planner.SelectBest(l.AAM, pool, maxSteps)
	if best == nil {
		return nil, errNoCandidate
	}
	return best, nil
}

var errNoCandidate = errorString("learner: no candidate plan produced")

type errorString string

func (e errorString) Error() string { return string(e) }

// KnownBest returns, for each query id, the lowest-latency non-timeout
// execution seen during training (used by the Fig. 7/8 analyses).
func (l *Learner) KnownBest() map[string]*planner.PlanEval {
	out := map[string]*planner.PlanEval{}
	for qid, plans := range l.Buf.byQuery {
		for _, pe := range plans {
			if pe.TimedOut {
				continue
			}
			if cur, ok := out[qid]; !ok || pe.Latency < cur.Latency {
				out[qid] = pe
			}
		}
	}
	return out
}
