package learner

import (
	"math"
	"testing"

	"github.com/foss-db/foss/internal/aam"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/store"
)

func eval(qid string, step int, lat float64, timedOut bool) *planner.PlanEval {
	q := &query.Query{ID: qid}
	return &planner.PlanEval{
		Q:        q,
		ICP:      fakeICP(step),
		Step:     step,
		Latency:  lat,
		TimedOut: timedOut,
	}
}

func fakeICP(step int) plan.ICP {
	icp := plan.ICP{Order: []string{"a", "b", "c"}, Methods: make([]plan.JoinMethod, 2)}
	for i := range icp.Methods {
		icp.Methods[i] = plan.JoinMethod((step + i) % 3)
	}
	return icp
}

// TestBufferExportImportRoundTrip: export must preserve the buffer's
// canonical order and import must reconstruct it exactly (order included —
// AAM sample order depends on it), deduplicating entries already present.
func TestBufferExportImportRoundTrip(t *testing.T) {
	b := NewBuffer()
	b.Add(eval("q2", 0, 100, false))
	b.Add(eval("q1", 0, 80, false))
	b.Add(eval("q2", 1, 50, false))
	b.Add(eval("q1", 2, 120, true))

	recs := b.Export()
	if len(recs) != 4 {
		t.Fatalf("exported %d records, want 4", len(recs))
	}
	// Canonical order: grouped by first-seen query, insertion order within.
	wantOrder := []struct {
		qid  string
		step int
	}{{"q2", 0}, {"q2", 1}, {"q1", 0}, {"q1", 2}}
	for i, w := range wantOrder {
		if recs[i].Query.ID != w.qid || recs[i].Step != w.step {
			t.Fatalf("export[%d] = %s/%d, want %s/%d", i, recs[i].Query.ID, recs[i].Step, w.qid, w.step)
		}
	}

	rebuilt := NewBuffer()
	err := rebuilt.Import(recs, func(r store.ExecRecord) (*planner.PlanEval, error) {
		return &planner.PlanEval{Q: r.Query, ICP: r.ICP, Step: r.Step, Latency: math.NaN()}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := rebuilt.Export()
	if len(got) != len(recs) {
		t.Fatalf("round trip size %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Query.ID != recs[i].Query.ID || !got[i].ICP.Equal(recs[i].ICP) ||
			got[i].Step != recs[i].Step || got[i].LatencyMs != recs[i].LatencyMs || got[i].TimedOut != recs[i].TimedOut {
			t.Fatalf("round trip entry %d: %+v != %+v", i, got[i], recs[i])
		}
	}
	// Importing into a buffer that already holds the entries is a no-op.
	if err := rebuilt.Import(recs, func(r store.ExecRecord) (*planner.PlanEval, error) {
		return &planner.PlanEval{Q: r.Query, ICP: r.ICP, Step: r.Step, Latency: math.NaN()}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if rebuilt.Size() != 4 {
		t.Fatalf("re-import duplicated entries: size %d", rebuilt.Size())
	}
}

func TestBufferDedupAndRefs(t *testing.T) {
	b := NewBuffer()
	orig := eval("q1", 0, 100, false)
	b.Add(orig)
	b.Add(orig) // duplicate ICP: ignored
	if b.Size() != 1 {
		t.Fatalf("buffer size %d after duplicate add", b.Size())
	}
	better := eval("q1", 1, 40, false)
	worse := eval("q1", 2, 300, false)
	b.Add(better)
	b.Add(worse)
	if b.Size() != 3 {
		t.Fatalf("buffer size %d", b.Size())
	}
	refs := b.Refs("q1")
	if len(refs) != 3 {
		t.Fatalf("want 3 refs, got %d", len(refs))
	}
	// best = 40ms plan, refb = 1 - 40/100 = 0.6
	if refs[0].Eval.Latency != 40 || math.Abs(refs[0].RefB-0.6) > 1e-9 {
		t.Fatalf("best ref wrong: %+v", refs[0])
	}
	// original: refb = 0
	if refs[2].Eval.Latency != 100 || refs[2].RefB != 0 {
		t.Fatalf("orig ref wrong: %+v", refs[2])
	}
}

func TestBufferRefsWithoutBetterPlans(t *testing.T) {
	b := NewBuffer()
	b.Add(eval("q2", 0, 50, false))
	b.Add(eval("q2", 1, 90, false)) // worse than original
	refs := b.Refs("q2")
	for _, r := range refs {
		if r.Eval.Latency != 50 || r.RefB != 0 {
			t.Fatalf("with no better plan all refs must be the original: %+v", r)
		}
	}
}

func TestSamplesFilterDoubleTimeouts(t *testing.T) {
	b := NewBuffer()
	b.Add(eval("q3", 0, 100, false))
	b.Add(eval("q3", 1, 150, true))
	b.Add(eval("q3", 2, 150, true))
	samples := b.Samples(3)
	// pairs among 3 plans = 6 ordered; pairs (1,2) and (2,1) are both
	// timeouts -> filtered; 4 remain
	if len(samples) != 4 {
		t.Fatalf("want 4 samples after double-timeout filtering, got %d", len(samples))
	}
	for _, s := range samples {
		if s.Label < 0 || s.Label >= aam.NumScores {
			t.Fatalf("label out of range: %d", s.Label)
		}
	}
}

func TestSamplesLabels(t *testing.T) {
	b := NewBuffer()
	b.Add(eval("q4", 0, 100, false))
	b.Add(eval("q4", 1, 30, false)) // 70% saving vs orig -> score 2
	samples := b.Samples(3)
	found := false
	for _, s := range samples {
		if s.StepL == 0 && s.StepR > 0 && s.Label == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("expected a (orig, much-better) pair labeled 2")
	}
}

func TestKnownBestIgnoresTimeouts(t *testing.T) {
	b := NewBuffer()
	b.Add(eval("q5", 0, 100, false))
	b.Add(eval("q5", 1, 10, true)) // timed out: not a real measurement
	b.Add(eval("q5", 2, 60, false))
	l := &Learner{Buf: b}
	kb := l.KnownBest()
	if kb["q5"].Latency != 60 {
		t.Fatalf("known best should skip timeouts: got %f", kb["q5"].Latency)
	}
}

func TestBufferIgnoresUnexecuted(t *testing.T) {
	b := NewBuffer()
	pe := eval("q6", 0, 0, false)
	pe.Latency = math.NaN()
	b.Add(pe)
	if b.Size() != 0 {
		t.Fatal("unexecuted plan entered the buffer")
	}
}
