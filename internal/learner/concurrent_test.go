package learner

import (
	"fmt"
	"sync"
	"testing"
)

// TestBufferConcurrentAdd hammers the buffer from parallel writers (run
// under -race in CI) and checks that dedup and totals survive.
func TestBufferConcurrentAdd(t *testing.T) {
	b := NewBuffer()
	const writers = 8
	const perWriter = 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Distinct queries per writer plus a shared query where every
				// writer races to insert the same ICPs.
				b.Add(eval(fmt.Sprintf("w%d-q%d", w, i), i%3, 100+float64(i), false))
				b.Add(eval("shared", i%3, 50, false))
			}
		}(w)
	}
	wg.Wait()

	// Each writer contributed perWriter distinct (qid, step-ICP) plans; the
	// shared query dedups to the 3 distinct ICPs (steps 0,1,2).
	want := writers*perWriter + 3
	if got := b.Size(); got != want {
		t.Fatalf("buffer size %d, want %d", got, want)
	}
	if refs := b.Refs("shared"); len(refs) != 3 {
		t.Fatalf("refs on shared query: %d", len(refs))
	}
}

// TestBufferConcurrentReaders mixes readers and writers.
func TestBufferConcurrentReaders(t *testing.T) {
	b := NewBuffer()
	b.Add(eval("q", 0, 100, false))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				switch i % 4 {
				case 0:
					b.Add(eval("q", 1+i%5, 90-float64(i%5), false))
				case 1:
					b.Size()
				case 2:
					b.Refs("q")
				case 3:
					b.Samples(3)
				}
			}
		}(w)
	}
	wg.Wait()
	if b.Original("q") == nil {
		t.Fatal("original lost")
	}
}

func TestPhaseSeedsDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for iter := 0; iter < 8; iter++ {
		for phase := 0; phase < 2; phase++ {
			for w := 0; w < 16; w++ {
				s := phaseSeed(1, iter, phase, w)
				if seen[s] {
					t.Fatalf("seed collision at iter=%d phase=%d worker=%d", iter, phase, w)
				}
				seen[s] = true
			}
		}
	}
}
