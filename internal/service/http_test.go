package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/store"
)

// newWireFixture builds the HTTP surface over a fake-replica loop whose
// resolver serves fq(v) for any numeric id "qv".
func newWireFixture(t *testing.T, cfg Config) (*httptest.Server, *fakeReplica, *fakeReplica) {
	t.Helper()
	blue, green := newFake("blue"), newFake("green")
	lp := New(cfg, blue, green, nil)
	h := NewHTTPServer(lp, HTTPOptions{Resolve: func(id string) *query.Query {
		v, err := strconv.ParseInt(strings.TrimPrefix(id, "q"), 10, 64)
		if err != nil || !strings.HasPrefix(id, "q") {
			return nil
		}
		return fq(v)
	}})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, blue, green
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

// TestHTTPOptimizeFeedbackRoundTrip drives the wire protocol end to end:
// optimize by query_id → serve_id → feedback → stats reflect the recorded
// execution; a second feedback for the same serve_id is rejected.
func TestHTTPOptimizeFeedbackRoundTrip(t *testing.T) {
	cfg := syncConfig()
	cfg.Detector.Threshold = 100 // never drift
	ts, blue, _ := newWireFixture(t, cfg)

	code, out := postJSON(t, ts.URL+"/v1/optimize", `{"query_id": "q1"}`)
	if code != http.StatusOK {
		t.Fatalf("optimize status %d: %v", code, out)
	}
	serveID, _ := out["serve_id"].(string)
	if serveID == "" {
		t.Fatalf("no serve_id in %v", out)
	}
	if out["query_id"] != "q1" || out["epoch"] != float64(1) {
		t.Fatalf("unexpected row %v", out)
	}
	if _, ok := out["plan"].(map[string]any); !ok {
		t.Fatalf("no plan summary in %v", out)
	}
	if blue.serves.Load() != 1 {
		t.Fatalf("replica served %d times", blue.serves.Load())
	}

	code, out = postJSON(t, ts.URL+"/v1/feedback", `{"serve_id": "`+serveID+`", "latency_ms": 42.5}`)
	if code != http.StatusOK || out["recorded"] != true {
		t.Fatalf("feedback status %d: %v", code, out)
	}
	// replay of the same serve_id must 404 (one feedback per serve)
	if code, _ = postJSON(t, ts.URL+"/v1/feedback", `{"serve_id": "`+serveID+`", "latency_ms": 42.5}`); code != http.StatusNotFound {
		t.Fatalf("replayed feedback status %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["backend"] != "fake" {
		t.Fatalf("stats backend %v", st["backend"])
	}
	stats, _ := st["stats"].(map[string]any)
	if stats["Served"] != float64(1) || stats["Recorded"] != float64(1) {
		t.Fatalf("stats counters %v", stats)
	}
	if st["pending_feedback"] != float64(0) {
		t.Fatalf("pending %v after feedback", st["pending_feedback"])
	}
}

// TestHTTPBatchOptimize: query_ids ride the batched serving path and return
// one row per query, order-aligned.
func TestHTTPBatchOptimize(t *testing.T) {
	cfg := syncConfig()
	cfg.Detector.Threshold = 100
	ts, blue, _ := newWireFixture(t, cfg)

	code, out := postJSON(t, ts.URL+"/v1/optimize", `{"query_ids": ["q1", "q2", "q3"]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	rows, _ := out["results"].([]any)
	if len(rows) != 3 {
		t.Fatalf("rows %v", out)
	}
	seen := map[string]bool{}
	for i, r := range rows {
		row := r.(map[string]any)
		if row["query_id"] != "q"+strconv.Itoa(i+1) {
			t.Fatalf("row %d misaligned: %v", i, row)
		}
		id := row["serve_id"].(string)
		if seen[id] {
			t.Fatalf("duplicate serve_id %s", id)
		}
		seen[id] = true
	}
	if blue.serves.Load() != 3 {
		t.Fatalf("replica served %d, want 3", blue.serves.Load())
	}
}

// TestHTTPServerSideExecute: "execute": true runs the doctor-loop turn in
// one call — the response carries the observed latency and the feedback is
// already recorded.
func TestHTTPServerSideExecute(t *testing.T) {
	cfg := syncConfig()
	cfg.Detector.Threshold = 100
	ts, _, _ := newWireFixture(t, cfg)

	code, out := postJSON(t, ts.URL+"/v1/optimize", `{"query_id": "q7", "execute": true}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	if out["latency_ms"] != float64(10) { // the fake executes everything at 10ms
		t.Fatalf("latency %v", out["latency_ms"])
	}
	code, st := postJSON(t, ts.URL+"/v1/optimize", `{"query_id": "q7"}`)
	_ = st
	if code != http.StatusOK {
		t.Fatalf("second optimize status %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if s := stats["stats"].(map[string]any); s["Recorded"] != float64(1) {
		t.Fatalf("server-side execute did not record: %v", s)
	}
}

// TestHTTPErrors covers the wire-level failure modes.
func TestHTTPErrors(t *testing.T) {
	cfg := syncConfig()
	cfg.Detector.Threshold = 100
	ts, _, _ := newWireFixture(t, cfg)

	cases := []struct {
		path, body string
		want       int
	}{
		{"/v1/optimize", `{`, http.StatusBadRequest},                                      // malformed JSON
		{"/v1/optimize", `{}`, http.StatusBadRequest},                                     // no queries
		{"/v1/optimize", `{"query_id": "nope"}`, http.StatusNotFound},                     // unknown id
		{"/v1/optimize", `{"query": {"tables": [], "joins": []}}`, http.StatusBadRequest}, // invalid spec
		{"/v1/feedback", `{"serve_id": "s999", "latency_ms": 5}`, http.StatusNotFound},    // unknown serve
		{"/v1/feedback", `{"serve_id": "s1", "latency_ms": -1}`, http.StatusBadRequest},   // bad latency
	}
	for _, c := range cases {
		if code, out := postJSON(t, ts.URL+c.path, c.body); code != c.want {
			t.Fatalf("POST %s %s → %d (want %d): %v", c.path, c.body, code, c.want, out)
		}
	}
	// wrong methods
	resp, err := http.Get(ts.URL + "/v1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET optimize → %d", resp.StatusCode)
	}
}

// TestHTTPFeedbackZeroLatency is the regression test for the dropped
// sub-millisecond executions: a latency_ms of 0 is a legitimate observation
// (fast executions round down to it) and must be recorded, while negative
// values stay rejected.
func TestHTTPFeedbackZeroLatency(t *testing.T) {
	cfg := syncConfig()
	cfg.Detector.Threshold = 100
	ts, _, _ := newWireFixture(t, cfg)

	_, out := postJSON(t, ts.URL+"/v1/optimize", `{"query_id": "q1"}`)
	serveID := out["serve_id"].(string)
	code, out := postJSON(t, ts.URL+"/v1/feedback", `{"serve_id": "`+serveID+`", "latency_ms": 0}`)
	if code != http.StatusOK || out["recorded"] != true {
		t.Fatalf("zero-latency feedback dropped: status %d %v", code, out)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if s := st["stats"].(map[string]any); s["Recorded"] != float64(1) {
		t.Fatalf("zero-latency execution not recorded: %v", s)
	}
}

// TestHTTPStrictBodies: handlers cap request bodies (413) and reject
// unknown fields (400) instead of half-parsing a misspelled spec.
func TestHTTPStrictBodies(t *testing.T) {
	cfg := syncConfig()
	cfg.Detector.Threshold = 100
	ts, _, _ := newWireFixture(t, cfg)

	for _, c := range []struct{ path, body string }{
		{"/v1/optimize", `{"query_id": "q1", "exekute": true}`},
		{"/v1/feedback", `{"serve_id": "s1", "latencyms": 5}`},
	} {
		if code, out := postJSON(t, ts.URL+c.path, c.body); code != http.StatusBadRequest {
			t.Fatalf("unknown field in %s accepted: %d %v", c.path, code, out)
		}
	}

	huge := `{"query_id": "q1", "query": {"tables": [{"table": "` + strings.Repeat("x", maxBodyBytes) + `"}]}}`
	if code, out := postJSON(t, ts.URL+"/v1/optimize", huge); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d %v", code, out)
	}
}

// TestHTTPCheckpoint: the trigger endpoint writes a durable checkpoint when
// a store is attached and 412s when the loop runs in memory.
func TestHTTPCheckpoint(t *testing.T) {
	cfg := syncConfig()
	cfg.Detector.Threshold = 100
	ts, _, _ := newWireFixture(t, cfg)
	if code, out := postJSON(t, ts.URL+"/v1/checkpoint", `{}`); code != http.StatusPreconditionFailed {
		t.Fatalf("checkpoint without store: %d %v", code, out)
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cfg.Store = st
	ts2, _, _ := newWireFixture(t, cfg)
	code, out := postJSON(t, ts2.URL+"/v1/checkpoint", `{}`)
	if code != http.StatusOK {
		t.Fatalf("checkpoint: %d %v", code, out)
	}
	name, _ := out["checkpoint"].(string)
	if m, ok := st.Latest(); !ok || m.Checkpoint != name {
		t.Fatalf("manifest %+v does not point at %q", m, name)
	}
	// Stats surface the durability counters.
	resp, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sj map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&sj); err != nil {
		t.Fatal(err)
	}
	if s := sj["stats"].(map[string]any); s["Checkpoints"] != float64(1) {
		t.Fatalf("stats missing checkpoint counter: %v", s)
	}
}

// TestHTTPPendingEviction: the serve ring is bounded — old serve_ids are
// evicted FIFO once MaxPending is exceeded, and late feedback for one is
// answered 410 Gone (distinct from 404 for an id that never existed).
func TestHTTPPendingEviction(t *testing.T) {
	cfg := syncConfig()
	cfg.Detector.Threshold = 100
	blue, green := newFake("blue"), newFake("green")
	lp := New(cfg, blue, green, nil)
	h := NewHTTPServer(lp, HTTPOptions{
		MaxPending: 2,
		Resolve: func(id string) *query.Query {
			v, _ := strconv.ParseInt(strings.TrimPrefix(id, "q"), 10, 64)
			return fq(v)
		},
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	var first string
	for i := 1; i <= 3; i++ {
		_, out := postJSON(t, ts.URL+"/v1/optimize", `{"query_id": "q`+strconv.Itoa(i)+`"}`)
		if i == 1 {
			first = out["serve_id"].(string)
		}
	}
	if code, _ := postJSON(t, ts.URL+"/v1/feedback", `{"serve_id": "`+first+`", "latency_ms": 5}`); code != http.StatusGone {
		t.Fatalf("evicted serve_id should get 410 Gone, got %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/feedback", `{"serve_id": "s999", "latency_ms": 5}`); code != http.StatusNotFound {
		t.Fatalf("never-issued serve_id should get 404, got %d", code)
	}
	if _, out := getJSON(t, ts.URL+"/v1/stats"); out["expired_serve_ids"].(float64) != 1 {
		t.Fatalf("stats should count 1 expiration: %v", out["expired_serve_ids"])
	}
}

// TestServeIDExpiry pins the ring's classification below the HTTP layer:
// pending ids resolve once, evicted ids fail errors.Is(ErrServeIDExpired),
// ids the server never issued (or malformed ones) fail as plain unknowns.
func TestServeIDExpiry(t *testing.T) {
	cfg := syncConfig()
	cfg.Detector.Threshold = 100
	blue, green := newFake("blue"), newFake("green")
	lp := New(cfg, blue, green, nil)
	h := NewHTTPServer(lp, HTTPOptions{MaxPending: 2})

	ids := make([]string, 3)
	for i := range ids {
		pe, _, _, _ := blue.OptimizeEvalContext(context.Background(), fq(int64(i)))
		ids[i] = h.remember(fq(int64(i)), pe, Result{})
	}
	// ids[0] was evicted by ids[2]'s arrival.
	if _, err := h.take(ids[0]); !errors.Is(err, fosserr.ErrServeIDExpired) {
		t.Fatalf("evicted id error = %v, want ErrServeIDExpired", err)
	}
	if h.expired.Load() != 1 {
		t.Fatalf("expirations = %d, want 1", h.expired.Load())
	}
	// live ids resolve exactly once; a second take is unknown, NOT expired
	// (the client already consumed it — 404 tells them so).
	if _, err := h.take(ids[2]); err != nil {
		t.Fatalf("live id: %v", err)
	}
	if _, err := h.take(ids[2]); err == nil || errors.Is(err, fosserr.ErrServeIDExpired) {
		t.Fatalf("double-take error = %v, want plain unknown", err)
	}
	// never-issued and malformed ids are unknowns, not expiries
	for _, id := range []string{"s999", "bogus", "s1x", ""} {
		if _, err := h.take(id); err == nil || errors.Is(err, fosserr.ErrServeIDExpired) {
			t.Fatalf("id %q error = %v, want plain unknown", id, err)
		}
	}

	// An id consumed by feedback BEFORE the ring pushes it out is not an
	// expiry: when later serves pop it off the ring, the counter must not
	// move, the 410 horizon must not advance over it, and its duplicate
	// report stays a plain 404, not a 410.
	h2 := NewHTTPServer(lp, HTTPOptions{MaxPending: 2})
	pe, _, _, _ := blue.OptimizeEvalContext(context.Background(), fq(10))
	early := h2.remember(fq(10), pe, Result{})
	if _, err := h2.take(early); err != nil {
		t.Fatalf("fresh id: %v", err)
	}
	for i := int64(11); i < 13; i++ {
		pe, _, _, _ := blue.OptimizeEvalContext(context.Background(), fq(i))
		h2.remember(fq(i), pe, Result{}) // the second pops the consumed id off the ring
	}
	if got := h2.expired.Load(); got != 0 {
		t.Fatalf("expirations = %d, want 0 (the consumed id must not count)", got)
	}
	if _, err := h2.take(early); err == nil || errors.Is(err, fosserr.ErrServeIDExpired) {
		t.Fatalf("duplicate report of a consumed id = %v, want plain unknown", err)
	}
}
