// Package service runs FOSS as an online, self-improving doctor: the full
// Optimize → Execute → Record loop of the paper's framing, kept learning
// after deployment. Executed-plan feedback flows back into the learner's
// execution buffer; a rolling regression-vs-expert drift detector decides
// when the serving model has fallen behind the workload; and retraining
// happens in the background on a standby replica that is then published by
// an atomic pointer swap — serving never blocks on training and never sees a
// half-updated model.
//
// # Hot-swap protocol
//
// The loop owns two replicas in blue/green rotation:
//
//  1. Serve reads the active replica through an atomic pointer. Requests
//     take the replica's shared (RLock) serving path; no Loop-level lock is
//     on the request path.
//  2. Drift triggers retraining on the standby replica, which has no
//     traffic: its exclusive train lock is uncontended, so the retrain
//     blocks nobody. Recorded feedback keeps flowing into both replicas'
//     buffers meanwhile.
//  3. When retraining finishes, the standby is published by a single atomic
//     store with a bumped epoch. Its plan cache was invalidated when its
//     training lock released, so every post-swap plan is chosen (and cached)
//     by the new model: a cache hit at epoch e always matches a miss at
//     epoch e.
//  4. In-flight requests on the demoted replica drain under its RLock and
//     finish on the old-but-consistent model. The demoted replica then has
//     the new weights copied in (its exclusive lock waits for exactly those
//     stragglers) and becomes the next standby.
//
// The package talks to replicas through the small Replica interface; core
// wires two *core.System instances in and re-exports the loop as
// System.Serve / System.Record.
package service

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/foss-db/foss/internal/engine/catalog"
	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/learner"
	"github.com/foss-db/foss/internal/metrics"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/runtime"
	"github.com/foss-db/foss/internal/store"
	"github.com/foss-db/foss/internal/tier"
)

// Replica is the surface the loop needs from one doctor instance. Two
// instances over the same workload form the blue/green pair; *core.System
// implements it.
type Replica interface {
	// OptimizeEvalContext serves one query through the replica's cached,
	// shared-locked path, returning the full evaluated candidate and a
	// cache-hit flag. Cancellation is honored between rollouts.
	OptimizeEvalContext(ctx context.Context, q *query.Query) (*planner.PlanEval, bool, time.Duration, error)
	// OptimizeEvalBatch serves a batch in one pass, sharing the batched AAM
	// scoring across cache misses; out[i]/hits[i] correspond to qs[i].
	OptimizeEvalBatch(ctx context.Context, qs []*query.Query) ([]*planner.PlanEval, []bool, time.Duration, error)
	// TrainOnContext runs incremental training over the query set under the
	// replica's exclusive lock; its plan cache is invalidated afterwards.
	TrainOnContext(ctx context.Context, queries []*query.Query, iterations int, progress func(learner.IterStats)) error
	// BackendName identifies the optimizer backend under the replica.
	BackendName() string
	// Save / Load snapshot and restore the learned weights (Load quiesces
	// the replica's serving path while weights are copied).
	Save() ([]byte, error)
	Load(data []byte) error
	// ExpertPlan returns the traditional optimizer's plan, the drift
	// detector's latency baseline.
	ExpertPlan(q *query.Query) (*plan.CP, time.Duration, error)
	// Execute runs a plan and returns its latency in milliseconds.
	Execute(cp *plan.CP) float64
	// Buffer exposes the replica's execution buffer for feedback ingestion.
	Buffer() *learner.Buffer
	// CacheStats snapshots the replica's plan-cache counters.
	CacheStats() runtime.CacheStats
	// RebuildEval re-derives an executed candidate from its durable identity
	// (query × incomplete plan × step) — WAL replay and checkpoint import go
	// through it. Latency is unset on return.
	RebuildEval(q *query.Query, icp plan.ICP, step int) (*planner.PlanEval, error)

	// ApplyDDL applies a schema-evolution batch to the replica's live
	// catalog and repoints it at the rebuilt backend under its own
	// train/serve arbiter. Returns the new catalog epoch. For a blue/green
	// pair over one shared catalog world, applying through either replica
	// produces the single new generation the other picks up via
	// ResyncCatalog.
	ApplyDDL(ddls []catalog.DDL) (uint64, error)
	// ResyncCatalog repoints the replica at its catalog world's current
	// generation; a no-op when already current.
	ResyncCatalog() error
	// SyncCatalog brings the replica's catalog to exactly the given epoch by
	// replaying the missing suffix of the full DDL log — the checkpoint
	// restore path. A replica already past the epoch (or hashing differently
	// after replay) refuses with fosserr.ErrCatalogMismatch.
	SyncCatalog(epoch, hash uint64, log []catalog.DDL) error
	// CheckCatalog fails with fosserr.ErrCatalogStale when the query
	// references schema objects the live catalog no longer has.
	CheckCatalog(q *query.Query) error
	// CatalogEpoch, CatalogHash, and CatalogLog expose the live catalog's
	// durable identity — the checkpoint ingredients.
	CatalogEpoch() uint64
	CatalogHash() uint64
	CatalogLog() []catalog.DDL
}

// Config tunes the online loop.
type Config struct {
	Detector DetectorConfig

	// Cooldown is the minimum number of recorded executions between retrain
	// triggers, preventing swap thrash while a fresh model warms its window.
	Cooldown int
	// RetrainIterations is the learner schedule per background retrain
	// (incremental: much shorter than the offline run).
	RetrainIterations int
	// RetrainQueries caps how many distinct recent queries a retrain uses
	// (the most recently served ones win).
	RetrainQueries int
	// Background runs retraining on its own goroutine. Synchronous mode
	// (false) retrains inside the Record call that tripped the detector —
	// deterministic, used by tests and reproducibility runs.
	Background bool

	// Store attaches a durability store: every Record journals the executed
	// plan to the store's WAL before ingestion, every hot-swap writes a
	// checkpoint of the freshly published replica, and CheckpointEvery adds
	// a periodic cadence. nil runs the loop purely in memory (the pre-PR-4
	// behavior).
	Store *store.Store
	// CheckpointEvery is the number of recorded executions between periodic
	// checkpoints; 0 checkpoints only on hot-swaps and explicit Checkpoint
	// calls.
	CheckpointEvery int
	// InitialEpoch sets the epoch the loop starts serving at — recovery
	// resumes the pre-crash generation count instead of restarting at 1.
	// 0 means 1 (a fresh loop).
	InitialEpoch uint64

	// Tier configures the tiered fast path in front of the doctor: tier-0
	// plan memory (feedback-promoted pins) and the tier-1 greedy
	// micro-planner. The zero value disables both — every request takes the
	// full tier-2 path, the pre-PR-6 behavior.
	Tier tier.Config

	// Follower marks this loop as a read-only serving replica in a
	// replicated fleet: it serves traffic and hot-swaps models published by
	// its leader (ApplyCheckpoint), but never triggers retraining of its
	// own — drift observations still feed the detector's window (visible in
	// stats), they just cannot start a training run. Followers run without
	// a Store; feedback reaching one is the wire layer's problem (it
	// forwards to the leader).
	Follower bool

	// Advisor configures the async self-diagnosis advisor: a background
	// goroutine (owned by the loop, drained by Close) that watches the
	// feedback stream and emits structured findings — sustained regression
	// vs the expert baseline, plan-memory thrash, cooldown-starved drift.
	// The zero value disables it; serving pays nothing either way (the
	// Record-side hand-off is one non-blocking channel send).
	Advisor AdvisorConfig
}

// DefaultConfig returns a serving-oriented configuration.
func DefaultConfig() Config {
	return Config{
		Detector: DetectorConfig{
			Window:      32,
			Threshold:   1.15,
			MinSamples:  16,
			NoveltyFrac: 0.6,
		},
		Cooldown:          32,
		RetrainIterations: 2,
		RetrainQueries:    48,
		Background:        true,
	}
}

// Result is one served request.
type Result struct {
	// Eval is the chosen candidate (plan, encoding, step) — hand it back to
	// Record together with the observed latency.
	Eval *planner.PlanEval
	// Epoch identifies the model generation that chose the plan; it bumps on
	// every hot-swap.
	Epoch uint64
	// CacheHit reports whether the plan came from the active replica's cache
	// (or, for tier-0/1 results, from the loop's own plan memory).
	CacheHit bool
	// OptTime is the optimization time (model inference + hint completion).
	OptTime time.Duration
	// Tier reports which serving tier produced the plan: 0 = plan-memory
	// hit, 1 = greedy micro-planner, 2 = full AAM steering (always 2 when
	// tiered serving is disabled).
	Tier int
}

// Stats snapshots the loop's counters.
type Stats struct {
	Epoch         uint64 // current model generation (starts at 1)
	Served        uint64
	CacheHits     uint64
	Recorded      uint64
	Drifts        uint64 // detector firings that triggered a retrain
	Retrains      uint64 // retrains started
	Swaps         uint64 // hot-swaps completed
	RetrainErrors uint64
	ExpertErrors  uint64 // expert-baseline failures (those records feed a neutral ratio)
	Retraining    bool
	Closed        bool    // Close has begun: intake is stopped
	WindowMean    float64 // rolling mean regression ratio
	WindowNovel   float64 // rolling novel-fingerprint fraction

	// Durability counters (zero when no store is attached).
	WALEntries       uint64 // intact records in the journal, replayed + live
	Replayed         uint64 // WAL records replayed into this loop at recovery
	Checkpoints      uint64 // checkpoints written by this loop
	RecoveredEpoch   uint64 // epoch restored from disk at startup (0 = cold start)
	WALErrors        uint64 // journal append failures (feedback kept in memory only)
	CheckpointErrors uint64 // checkpoint write failures (the previous recovery point stands)

	// Schema-evolution counters.
	CatalogEpoch       uint64 // live catalog generation (count of applied DDL statements)
	CatalogApplies     uint64 // DDL batches applied through this loop
	StaleInvalidations uint64 // requests/feedback refused because a DDL outdated their schema

	// Tiered-serving counters (zero when tiering is disabled).
	Tier0Hits   uint64  // serves answered from plan memory
	Tier1Hits   uint64  // serves answered by the greedy micro-planner
	Tier2Serves uint64  // serves that took the full AAM path
	Promotions  uint64  // plans pinned into tier-0 memory
	Demotions   uint64  // pins escalated back to tier 2 on regression
	PinnedPlans int     // live tier-0 pins right now
	Tier0AvgUs  float64 // mean serve time per tier, microseconds
	Tier1AvgUs  float64
	Tier2AvgUs  float64
}

// Loop is the online doctor service over a blue/green replica pair.
type Loop struct {
	cfg Config
	det *Detector

	active atomic.Pointer[slot]

	// mu guards the standby replica, the recent-query ring, the expert
	// latency cache, and the cooldown counter. Never taken by Serve.
	mu           sync.Mutex
	standby      Replica
	recent       []*query.Query
	recentSet    map[uint64]bool
	expertLat    map[uint64]float64
	sinceRetrain int

	retraining atomic.Bool
	wg         sync.WaitGroup
	advWG      sync.WaitGroup // advisor goroutine: loop-lifetime, so outside wg (Wait must not block on it)

	// Lifecycle: closed flips once, under lifeMu, which spawn also holds —
	// so after Close observes closed and drains wg, no new background
	// goroutine can ever start (the flag check and the wg.Add are one
	// critical section). baseCtx is the parent of every background retrain;
	// Close cancels it when the drain deadline passes.
	lifeMu   sync.Mutex
	closed   atomic.Bool
	closeErr error
	closing  sync.Once
	baseCtx  context.Context
	stopBase context.CancelFunc

	// store is the durability subsystem (nil = in-memory loop). WAL appends
	// happen under mu (Record's ordering lock doubles as the journal lock);
	// checkpoint writes serialize on ckMu so a periodic trigger and a
	// post-swap checkpoint never interleave their temp/rename dance.
	st             *store.Store
	ckMu           sync.Mutex
	checkpointing  atomic.Bool
	recoveredEpoch uint64 // set during Replay, before traffic

	// tiers is the tier router's state (nil = tiering disabled, every serve
	// takes the full path). backendName is cached at construction so the
	// tier-0 hit path builds its identity key without touching the replica.
	tiers       *tier.Memory
	backendName string

	served, cacheHits, recorded atomic.Uint64
	drifts, retrains, swaps     atomic.Uint64
	retrainErrors, expertErrors atomic.Uint64
	checkpoints, replayed       atomic.Uint64
	walErrors, ckErrors         atomic.Uint64

	// catalogEpoch mirrors the active replica's live-catalog epoch so the
	// serving fast paths key plan memory by it without touching the replica
	// (the replicas share one catalog world, so one value describes both).
	// It moves only under mu (ApplyDDL, checkpoint/DDL replay), strictly
	// upward.
	catalogEpoch       atomic.Uint64
	catalogApplies     atomic.Uint64
	staleInvalidations atomic.Uint64

	t0Hits, t1Hits, t2Serves  atomic.Uint64
	promotions, demotions     atomic.Uint64
	t0Nanos, t1Nanos, t2Nanos atomic.Int64

	// hist holds the per-tier serve-latency histograms behind /metrics,
	// indexed by tier. Embedded by value: observing is two atomic adds on a
	// fixed array, nothing the tier-0 zero-allocation budget can feel. Every
	// serve observes exactly one histogram AFTER bumping served, and readers
	// snapshot the histograms BEFORE loading served, so Σ histogram counts ≤
	// Served in any concurrent snapshot (equal once traffic quiesces).
	hist [3]metrics.Histogram

	// adv is the async advisor (nil = disabled). Its goroutine is spawned
	// through lp.spawn, so Close's WaitGroup drain covers it; advStop is
	// closed at the start of shutdown to release it from its channel wait.
	adv     *advisor
	advStop chan struct{}
}

// slot pairs a replica with the epoch it was published at.
type slot struct {
	r     Replica
	epoch uint64
}

// New assembles a loop over an active/standby replica pair. known seeds the
// detector's fingerprint set (typically the training split). The active
// replica should carry the trained models; the standby must mirror them
// (core.EnableOnline handles the initial sync).
func New(cfg Config, active, standby Replica, known []*query.Query) *Loop {
	if cfg.Cooldown < 1 {
		cfg.Cooldown = 1
	}
	if cfg.RetrainIterations < 1 {
		cfg.RetrainIterations = 1
	}
	if cfg.RetrainQueries < 1 {
		cfg.RetrainQueries = 48
	}
	fps := make([]uint64, 0, len(known))
	for _, q := range known {
		fps = append(fps, q.Fingerprint())
	}
	lp := &Loop{
		cfg:         cfg,
		det:         NewDetector(cfg.Detector, fps),
		standby:     standby,
		recentSet:   map[uint64]bool{},
		expertLat:   map[uint64]float64{},
		st:          cfg.Store,
		backendName: active.BackendName(),
	}
	if cfg.Tier.Enabled() {
		lp.tiers = tier.NewMemory(cfg.Tier)
	}
	lp.baseCtx, lp.stopBase = context.WithCancel(context.Background())
	lp.catalogEpoch.Store(active.CatalogEpoch())
	epoch := cfg.InitialEpoch
	if epoch == 0 {
		epoch = 1
	}
	lp.active.Store(&slot{r: active, epoch: epoch})
	if cfg.Advisor.Enabled {
		lp.adv = newAdvisor(cfg.Advisor)
		lp.advStop = make(chan struct{})
		// Tracked on its own WaitGroup, not lp.wg: the advisor runs for the
		// loop's whole life, so counting it in lp.wg would make Wait — which
		// drains transient retrain/checkpoint work — block until Close.
		lp.advWG.Add(1)
		go func() {
			defer lp.advWG.Done()
			lp.adv.run(lp.advStop)
		}()
	}
	return lp
}

// Serve optimizes one query on the active replica. It never blocks on
// retraining or swaps: the only synchronization on this path is the active
// replica's shared serving lock and atomic pointer loads. A request that a
// hot-swap overtakes mid-flight (the demoted replica may already carry the
// freshly mirrored weights by the time the request acquires its read lock)
// is re-served on the new active, so Result.Epoch always identifies the
// model generation that actually chose the plan.
func (lp *Loop) Serve(ctx context.Context, q *query.Query) (Result, error) {
	if lp.closed.Load() {
		return Result{}, fmt.Errorf("service: serve: %w", fosserr.ErrLoopClosed)
	}
	if err := lp.active.Load().r.CheckCatalog(q); err != nil {
		// The query references schema a DDL has since dropped; refusing here
		// (rather than letting the planner trip over missing storage) is the
		// serving half of the catalog contract.
		lp.staleInvalidations.Add(1)
		return Result{}, fmt.Errorf("service: serve: %w", err)
	}
	if lp.tiers != nil {
		if res, ok := lp.serveTiered(q); ok {
			return res, nil
		}
	}
	for {
		s := lp.active.Load()
		pe, hit, d, err := s.r.OptimizeEvalContext(ctx, q)
		if err != nil {
			return Result{}, err
		}
		if lp.active.Load() != s {
			// a swap landed while this request was in flight; swaps are rare
			// (cooldown-gated), so the retry loop terminates in practice
			// after one extra pass
			continue
		}
		lp.served.Add(1)
		if hit {
			lp.cacheHits.Add(1)
		}
		if lp.tiers != nil {
			lp.t2Serves.Add(1)
			lp.t2Nanos.Add(int64(d))
		}
		lp.hist[tier.Tier2].Observe(d)
		return Result{Eval: pe, Epoch: s.epoch, CacheHit: hit, OptTime: d, Tier: tier.Tier2}, nil
	}
}

// serveTiered attempts the tier-0/1 fast paths; ok=false falls through to
// the full tier-2 path. The tier-0 hit path is allocation-free: a memoized
// fingerprint, an atomic slot load, and one read-locked map lookup. The
// swap-recheck mirrors Serve's: a routing decision made against a demoted
// slot is retried so Result.Epoch always names the generation whose pin (or
// greedy cache) answered.
func (lp *Loop) serveTiered(q *query.Query) (Result, bool) {
	start := time.Now()
	fp := q.Fingerprint()
	for {
		s := lp.active.Load()
		id := runtime.Identity{Backend: lp.backendName, Epoch: s.epoch, Catalog: lp.catalogEpoch.Load()}
		d := lp.tiers.Route(id, fp)
		switch d.Tier {
		case tier.Tier0:
			if lp.active.Load() != s {
				continue
			}
			lp.served.Add(1)
			lp.t0Hits.Add(1)
			el := time.Since(start)
			lp.t0Nanos.Add(int64(el))
			lp.hist[tier.Tier0].Observe(el)
			return Result{Eval: d.Pin, Epoch: s.epoch, CacheHit: true, OptTime: el, Tier: tier.Tier0}, true
		case tier.Tier1:
			key := id.Key(fp)
			pe, cached := lp.tiers.GreedyCached(key)
			if !cached {
				gicp, ok := tier.Greedy(q)
				if !ok {
					return Result{}, false // disconnected join graph: tier 2
				}
				var err error
				pe, err = s.r.RebuildEval(q, gicp, 0)
				if err != nil {
					return Result{}, false
				}
				lp.tiers.StoreGreedy(key, pe)
			}
			if lp.active.Load() != s {
				continue
			}
			lp.served.Add(1)
			lp.t1Hits.Add(1)
			el := time.Since(start)
			lp.t1Nanos.Add(int64(el))
			lp.hist[tier.Tier1].Observe(el)
			return Result{Eval: pe, Epoch: s.epoch, CacheHit: cached, OptTime: el, Tier: tier.Tier1}, true
		default:
			return Result{}, false
		}
	}
}

// ServeBatch optimizes a batch of queries on the active replica in one pass:
// cache hits resolve immediately and all misses share one batched
// state-network scoring pass, so out[i] is bit-identical to Serve(ctx,
// qs[i]) while costing a fraction of the model forwards. The whole batch is
// served by a single model generation — a swap that lands mid-batch re-serves
// the batch on the new active — and cancellation returns promptly with no
// partial results.
func (lp *Loop) ServeBatch(ctx context.Context, qs []*query.Query) ([]Result, error) {
	if lp.closed.Load() {
		return nil, fmt.Errorf("service: serve batch: %w", fosserr.ErrLoopClosed)
	}
	r := lp.active.Load().r
	for _, q := range qs {
		if err := r.CheckCatalog(q); err != nil {
			// All-or-nothing, like cancellation: no partial batches.
			lp.staleInvalidations.Add(1)
			return nil, fmt.Errorf("service: serve batch: %w", err)
		}
	}
	for {
		s := lp.active.Load()
		out := make([]Result, len(qs))
		// With tiering on, pinned fingerprints answer from plan memory and
		// only the rest pay the batched scoring pass (tier-1 items ride the
		// batch: its shared inference already amortizes their cost).
		missQs := qs
		var missIdx []int
		if lp.tiers != nil {
			id := runtime.Identity{Backend: lp.backendName, Epoch: s.epoch, Catalog: lp.catalogEpoch.Load()}
			missQs = make([]*query.Query, 0, len(qs))
			missIdx = make([]int, 0, len(qs))
			for i, q := range qs {
				if d := lp.tiers.Route(id, q.Fingerprint()); d.Tier == tier.Tier0 {
					out[i] = Result{Eval: d.Pin, Epoch: s.epoch, CacheHit: true, Tier: tier.Tier0}
					continue
				}
				missQs = append(missQs, q)
				missIdx = append(missIdx, i)
			}
		}
		if len(missQs) > 0 {
			pes, hits, d, err := s.r.OptimizeEvalBatch(ctx, missQs)
			if err != nil {
				return nil, err
			}
			for j := range missQs {
				i := j
				if missIdx != nil {
					i = missIdx[j]
				}
				out[i] = Result{Eval: pes[j], Epoch: s.epoch, CacheHit: hits[j], OptTime: d, Tier: tier.Tier2}
			}
		}
		if lp.active.Load() != s {
			continue
		}
		for i := range out {
			lp.served.Add(1)
			if out[i].CacheHit {
				lp.cacheHits.Add(1)
			}
			if lp.tiers != nil {
				if out[i].Tier == tier.Tier0 {
					lp.t0Hits.Add(1)
				} else {
					lp.t2Serves.Add(1)
					lp.t2Nanos.Add(int64(out[i].OptTime))
				}
			}
			// Tier-0 batch rows carry a zero OptTime (the pin answered inside
			// the shared routing pass); they observe 0 so the histogram count
			// still equals the serve count.
			lp.hist[out[i].Tier].Observe(out[i].OptTime)
		}
		return out, nil
	}
}

// Record ingests one executed plan: the query, the candidate Serve returned,
// and the latency observed when it ran. With a store attached, the
// execution is journaled to the WAL first — the durability point precedes
// ingestion, so a crash at any later point replays this record. The
// execution then lands in both replicas' buffers (so the next retrain
// learns from it), feeds the drift detector, and — when the window signals
// drift past the cooldown — triggers a retrain.
//
// A zero latency is legitimate (sub-millisecond executions round to 0);
// only negative values are rejected. The return reports whether the
// observation was ingested: false for invalid arguments and for feedback
// arriving after Close began (intake stopped; the final checkpoint must
// stay the last word) — wire callers answer 503, not a false ack.
func (lp *Loop) Record(q *query.Query, pe *planner.PlanEval, latencyMs float64) bool {
	if q == nil || pe == nil || latencyMs < 0 || lp.closed.Load() {
		return false
	}
	if lp.active.Load().r.CheckCatalog(q) != nil {
		// Feedback produced against a schema generation a DDL has since
		// retired cannot be re-derived deterministically; drop it (counted in
		// StaleInvalidations) rather than journal a record replay could never
		// rebuild.
		lp.staleInvalidations.Add(1)
		return false
	}
	fp := q.Fingerprint()

	// The expert baseline resolves before the ordering lock: the tier
	// router's Observe runs inside it and judges wins/regressions against
	// the same baseline the drift detector uses. (expertLatency takes mu
	// briefly for its cache; the plan+execute runs unlocked either way.)
	expert := lp.expertLatency(lp.active.Load().r, q, fp)

	// Resolve the replica pair under mu: the swap updates the active pointer
	// and the standby field inside the same critical section, so this
	// snapshot can never see the demoted replica on both sides (which would
	// leave the newly promoted model without the feedback). The WAL append
	// AND the buffer ingestion ride the same lock: Checkpoint captures its
	// WAL horizon under mu, so every journaled record at or below that
	// horizon is provably already in the exported buffer — an entry can
	// never fall between the checkpoint image and the replay tail. The tier
	// router's Observe rides the same lock for the same reason: a checkpoint's
	// exported tier state is exactly the state produced by the records at or
	// below its WAL horizon. The fsync inside Append makes this critical
	// section the feedback throughput ceiling; that is the price of the
	// durability point preceding ingestion (group commit is the known escape
	// hatch if a deployment ever needs more).
	lp.mu.Lock()
	if lp.st != nil {
		_, err := lp.st.WAL().Append(store.WALEntry{
			Kind:        store.KindFeedback,
			Fingerprint: fp,
			Query:       q,
			ICP:         pe.ICP.Clone(),
			Step:        pe.Step,
			LatencyMs:   latencyMs,
			TimedOut:    false,
		})
		if err != nil {
			// Feedback survives in memory either way; the journal gap is
			// counted and visible in /v1/stats.
			lp.walErrors.Add(1)
		}
	}
	s := lp.active.Load()
	bufs := []*learner.Buffer{s.r.Buffer()}
	if lp.standby != nil {
		bufs = append(bufs, lp.standby.Buffer())
	}
	// The cached PlanEval is shared by concurrent readers: feedback gets its
	// own copies, one per buffer, with the observed latency filled in.
	for _, buf := range bufs {
		fb := *pe
		fb.Latency = latencyMs
		fb.TimedOut = false
		buf.Add(&fb)
	}
	lp.noteRecent(q, fp)
	lp.sinceRetrain++
	ready := lp.sinceRetrain >= lp.cfg.Cooldown
	var tout tier.Outcome
	if lp.tiers != nil {
		id := runtime.Identity{Backend: lp.backendName, Epoch: s.epoch, Catalog: lp.catalogEpoch.Load()}
		tout = lp.tiers.Observe(id, fp, q, pe, latencyMs, expert)
		if lp.st != nil && tout.Promoted {
			// Journal the promotion for auditability; replay re-derives the
			// pin from the feedback records, so a lost append costs nothing.
			if _, err := lp.st.WAL().Append(store.WALEntry{
				Kind:        store.KindPromote,
				Fingerprint: fp,
				Query:       tout.Pin.Q,
				ICP:         tout.Pin.ICP.Clone(),
				Step:        tout.Pin.Step,
				LatencyMs:   tout.PinLatency,
				Epoch:       s.epoch,
			}); err != nil {
				lp.walErrors.Add(1)
			}
		}
		if lp.st != nil && tout.Demoted {
			if _, err := lp.st.WAL().Append(store.WALEntry{
				Kind:        store.KindDemote,
				Fingerprint: fp,
				Epoch:       s.epoch,
			}); err != nil {
				lp.walErrors.Add(1)
			}
		}
	}
	// The promotion/demotion/recorded bumps ride the same critical section
	// that produced them, so no concurrent snapshot can observe a demotion
	// without its causing promotion, or a WAL entry count behind the
	// recorded count it implies (Stats loads the subordinate counter first;
	// see the ordering note there).
	if tout.Promoted {
		lp.promotions.Add(1)
	}
	if tout.Demoted {
		lp.demotions.Add(1)
	}
	n := lp.recorded.Add(1)
	lp.mu.Unlock()

	ratio := 1.0
	if expert > 0 {
		ratio = latencyMs / expert
	}
	sig := lp.det.Observe(fp, ratio)
	if lp.adv != nil {
		// Non-blocking hand-off: a saturated advisor drops (and counts) the
		// observation rather than slowing feedback ingestion.
		lp.adv.offer(advisorObs{
			fp:           fp,
			qid:          q.ID,
			epoch:        s.epoch,
			ratio:        ratio,
			promoted:     tout.Promoted,
			demoted:      tout.Demoted,
			driftBlocked: sig.Drift && !ready,
			catEpoch:     lp.catalogEpoch.Load(),
			t0Hits:       lp.t0Hits.Load(),
			served:       lp.served.Load(),
		})
	}

	if sig.Drift && ready {
		lp.triggerRetrain()
	}
	if lp.st != nil && lp.cfg.CheckpointEvery > 0 && n%uint64(lp.cfg.CheckpointEvery) == 0 {
		lp.triggerCheckpoint()
	}
	return true
}

// Step runs one full doctor-loop turn: Serve, Execute on the active replica,
// Record. It returns the serve result and the observed latency.
func (lp *Loop) Step(ctx context.Context, q *query.Query) (Result, float64, error) {
	res, err := lp.Serve(ctx, q)
	if err != nil {
		return Result{}, 0, err
	}
	lat := lp.active.Load().r.Execute(res.Eval.CP)
	if math.IsNaN(lat) {
		// A DDL landed between Serve and Execute and dropped schema the plan
		// depends on; the replica refused to run it. Count the invalidation
		// and surface the staleness instead of recording a NaN latency.
		lp.staleInvalidations.Add(1)
		return res, 0, fmt.Errorf("service: step %s: %w", q.ID, fosserr.ErrCatalogStale)
	}
	lp.Record(q, res.Eval, lat)
	return res, lat, nil
}

// Wait blocks until every in-flight background retrain has finished
// (including its hot-swap and weight mirroring). The advisor goroutine is
// not waited on — it lives until Close — so Wait returns on a quiet loop
// even with the advisor enabled.
func (lp *Loop) Wait() { lp.wg.Wait() }

// Close drains the loop for a lossless shutdown: intake stops (Serve and
// ServeBatch fail with fosserr.ErrLoopClosed, Record drops), every in-flight
// background retrain and checkpoint goroutine is awaited — past ctx's
// deadline the retrain's context is canceled instead, bounding the wait by
// one training episode — and, with a store attached, a final checkpoint
// images the surviving state so a SIGTERM deploy recovers exactly like a
// kill-9 does, minus the WAL replay. Idempotent and safe for concurrent
// use: every caller blocks until the one shutdown finishes and sees its
// result. The store itself stays open — its owner closes it after Close
// returns (final checkpoint before WAL release, never the reverse).
func (lp *Loop) Close(ctx context.Context) error {
	lp.closing.Do(func() {
		lp.lifeMu.Lock()
		lp.closed.Store(true)
		lp.lifeMu.Unlock()

		// Release the advisor before draining: its goroutine blocks on the
		// intake channel, so the stop signal must precede the advWG wait. It
		// drains whatever Record already handed off, then exits.
		if lp.advStop != nil {
			close(lp.advStop)
		}

		done := make(chan struct{})
		go func() {
			lp.wg.Wait()
			lp.advWG.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			// Drain deadline passed: cancel the retrain mid-schedule and wait
			// for it to unwind (TrainOnContext checks between episodes).
			lp.stopBase()
			<-done
		}
		lp.stopBase()

		if lp.st != nil {
			if _, err := lp.Checkpoint(); err != nil {
				lp.ckErrors.Add(1)
				lp.closeErr = fmt.Errorf("service: close: final checkpoint: %w", err)
			}
		}
	})
	return lp.closeErr
}

// Closed reports whether Close has begun.
func (lp *Loop) Closed() bool { return lp.closed.Load() }

// Active returns the replica currently serving (for evaluation harnesses).
func (lp *Loop) Active() Replica { return lp.active.Load().r }

// Epoch returns the current model generation.
func (lp *Loop) Epoch() uint64 { return lp.active.Load().epoch }

// Stats snapshots the counters.
//
// Snapshot consistency: counters are lock-free on the write side, so a
// concurrent scrape can land between any two bumps — but never incoherently.
// Each subordinate counter is loaded BEFORE the counter that bounds it
// (cache hits and tier hits before served, demotions before promotions,
// recorded before the WAL length, per-tier nanos before per-tier hits), and
// the write side bumps them in the opposite order (or under one critical
// section). Every snapshot therefore satisfies the cross-counter invariants:
// CacheHits ≤ Served, Tier0+Tier1+Tier2 ≤ Served, Demotions ≤ Promotions,
// and (with a clean journal) Recorded ≤ WALEntries. The -race scrape test
// pins exactly these.
func (lp *Loop) Stats() Stats {
	win := lp.det.WindowState()
	st := Stats{
		CacheHits:        lp.cacheHits.Load(),
		Drifts:           lp.drifts.Load(),
		Retrains:         lp.retrains.Load(),
		Swaps:            lp.swaps.Load(),
		RetrainErrors:    lp.retrainErrors.Load(),
		ExpertErrors:     lp.expertErrors.Load(),
		Retraining:       lp.retraining.Load(),
		Closed:           lp.closed.Load(),
		WindowMean:       win.Mean,
		WindowNovel:      win.NovelFrac,
		Replayed:         lp.replayed.Load(),
		Checkpoints:      lp.checkpoints.Load(),
		RecoveredEpoch:   lp.recoveredEpoch,
		WALErrors:        lp.walErrors.Load(),
		CheckpointErrors: lp.ckErrors.Load(),
		// Applies before epoch (and ApplyDDL stores the epoch first), so
		// every snapshot satisfies CatalogApplies ≤ CatalogEpoch — each
		// apply carries at least one statement.
		CatalogApplies:     lp.catalogApplies.Load(),
		CatalogEpoch:       lp.catalogEpoch.Load(),
		StaleInvalidations: lp.staleInvalidations.Load(),
	}
	if lp.tiers != nil {
		// Nanos before hits: a torn average can only undercount, never
		// divide fresh nanos by stale hits.
		t0n, t1n, t2n := lp.t0Nanos.Load(), lp.t1Nanos.Load(), lp.t2Nanos.Load()
		st.Tier0Hits = lp.t0Hits.Load()
		st.Tier1Hits = lp.t1Hits.Load()
		st.Tier2Serves = lp.t2Serves.Load()
		st.Demotions = lp.demotions.Load()
		st.Promotions = lp.promotions.Load()
		st.PinnedPlans = lp.tiers.Pinned()
		if st.Tier0Hits > 0 {
			st.Tier0AvgUs = float64(t0n) / float64(st.Tier0Hits) / 1e3
		}
		if st.Tier1Hits > 0 {
			st.Tier1AvgUs = float64(t1n) / float64(st.Tier1Hits) / 1e3
		}
		if st.Tier2Serves > 0 {
			st.Tier2AvgUs = float64(t2n) / float64(st.Tier2Serves) / 1e3
		}
	}
	st.Recorded = lp.recorded.Load()
	st.Served = lp.served.Load()
	st.Epoch = lp.active.Load().epoch
	if lp.st != nil {
		lp.mu.Lock()
		st.WALEntries = lp.st.WAL().Len()
		lp.mu.Unlock()
	}
	return st
}

// ServeHistograms snapshots the per-tier serve-latency histograms (indexed
// by tier). Callers composing a scrape must snapshot these BEFORE calling
// Stats so Σ counts ≤ Stats().Served holds under concurrent traffic.
func (lp *Loop) ServeHistograms() [3]metrics.HistSnapshot {
	return [3]metrics.HistSnapshot{
		lp.hist[0].Snapshot(), lp.hist[1].Snapshot(), lp.hist[2].Snapshot(),
	}
}

// expertLatency returns (computing and caching on first use) the traditional
// optimizer's latency for the query — the drift detector's baseline. Failures
// are counted but not cached, so a transient error does not permanently pin
// the query's regression ratio at neutral.
func (lp *Loop) expertLatency(r Replica, q *query.Query, fp uint64) float64 {
	lp.mu.Lock()
	if lat, ok := lp.expertLat[fp]; ok {
		lp.mu.Unlock()
		return lat
	}
	lp.mu.Unlock()
	// Plan + execute outside the lock: both are read-only on shared state.
	cp, _, err := r.ExpertPlan(q)
	if err != nil {
		lp.expertErrors.Add(1)
		return 0
	}
	lat := r.Execute(cp)
	lp.mu.Lock()
	lp.expertLat[fp] = lat
	lp.mu.Unlock()
	return lat
}

// noteRecent tracks the distinct recently served queries, newest last,
// bounded by RetrainQueries. Caller holds mu.
func (lp *Loop) noteRecent(q *query.Query, fp uint64) {
	if lp.recentSet[fp] {
		return
	}
	lp.recentSet[fp] = true
	lp.recent = append(lp.recent, q)
	if len(lp.recent) > lp.cfg.RetrainQueries {
		drop := lp.recent[0]
		lp.recent = append(lp.recent[:0], lp.recent[1:]...)
		delete(lp.recentSet, drop.Fingerprint())
	}
}

// spawn starts a tracked background goroutine, refusing once Close has begun:
// the closed check and the wg.Add share lifeMu with Close's flag flip, so a
// goroutine can never slip in between Close marking the loop closed and
// Close draining the WaitGroup (that goroutine would outlive Close — the
// exact leak Close exists to prevent).
func (lp *Loop) spawn(f func()) bool {
	lp.lifeMu.Lock()
	defer lp.lifeMu.Unlock()
	if lp.closed.Load() {
		return false
	}
	lp.wg.Add(1)
	go func() {
		defer lp.wg.Done()
		f()
	}()
	return true
}

// triggerRetrain starts (at most) one retrain; concurrent triggers collapse.
// The drift/retrain counters bump inside the work itself, so a trigger that
// spawn refuses (Close won the race) leaves the stats truthful: no retrain
// ran, none is counted.
func (lp *Loop) triggerRetrain() {
	if lp.closed.Load() || lp.cfg.Follower {
		return
	}
	if !lp.retraining.CompareAndSwap(false, true) {
		return
	}
	run := func() {
		lp.drifts.Add(1)
		lp.retrains.Add(1)
		lp.retrain()
	}
	if lp.cfg.Background {
		if !lp.spawn(run) {
			lp.retraining.Store(false)
		}
	} else {
		run()
	}
}

// retrain runs the incremental schedule on the standby, hot-swaps it in, and
// mirrors the new weights onto the demoted replica.
func (lp *Loop) retrain() {
	defer lp.retraining.Store(false)

	lp.mu.Lock()
	standby := lp.standby
	queries := append([]*query.Query(nil), lp.recent...)
	lp.mu.Unlock()
	if standby == nil || len(queries) == 0 {
		return
	}

	// baseCtx, not Background: a Close whose drain deadline passes cancels
	// it, bounding shutdown by one training episode instead of the full
	// incremental schedule.
	if err := standby.TrainOnContext(lp.baseCtx, queries, lp.cfg.RetrainIterations, nil); err != nil {
		lp.retrainErrors.Add(1)
		return
	}

	// Publish: one atomic store; Serve never waits. The standby's cache was
	// invalidated when TrainOn's exclusive section ended, so the new epoch
	// starts cold — no plan chosen by the old weights can be served again.
	lp.mu.Lock()
	// A DDL that landed during training left the standby on the old catalog
	// generation (ApplyDDL never waits behind a training lock); repoint it
	// before it takes traffic. Idempotent and cheap when already current.
	if err := standby.ResyncCatalog(); err != nil {
		lp.mu.Unlock()
		lp.retrainErrors.Add(1)
		return
	}
	// The active pointer loads inside the same critical section that
	// publishes, so an ApplyDDL epoch bump between the read and the store
	// can never be overwritten.
	old := lp.active.Load()
	lp.active.Store(&slot{r: standby, epoch: old.epoch + 1})
	lp.standby = old.r
	lp.sinceRetrain = 0
	if lp.tiers != nil {
		// The new model must re-earn every pin: plan memory and the runtime
		// LRU invalidate in the same step (and share the epoch-scoped key, so
		// even a racing pre-invalidation lookup under the new epoch misses).
		lp.tiers.Invalidate()
	}
	if lp.st != nil {
		// Journal the epoch bump: replay resets the drift window at the same
		// points the live loop did.
		if _, err := lp.st.WAL().Append(store.WALEntry{Kind: store.KindSwap, Epoch: old.epoch + 1}); err != nil {
			lp.walErrors.Add(1)
		}
	}
	lp.mu.Unlock()
	lp.swaps.Add(1)
	lp.det.Reset()

	// Mirror the fresh weights onto the demoted replica so the next retrain
	// starts from the generation being served. Load's exclusive lock waits
	// only for that replica's draining in-flight requests.
	blob, err := standby.Save()
	if err != nil {
		lp.retrainErrors.Add(1)
		return
	}
	if err := old.r.Load(blob); err != nil {
		lp.retrainErrors.Add(1)
	}

	// Every epoch bump lands on disk: the published generation becomes the
	// recovery point, so a crash after a swap restarts on the adapted model,
	// not the offline one. A failure here is a durability problem, not a
	// training one — it gets its own counter.
	if lp.st != nil {
		if _, err := lp.Checkpoint(); err != nil {
			lp.ckErrors.Add(1)
		}
	}
}

// ApplyCheckpoint hot-swaps a leader-published checkpoint into this loop —
// the follower half of the blue/green machinery. The checkpoint's model
// loads into the standby replica (its exclusive load lock waits only for
// that replica's draining stragglers, never blocking serving), the standby
// publishes at the checkpoint's epoch — so leader and follower agree on the
// generation a plan came from — tier pins re-import under the new epoch,
// and the demoted replica mirrors the new weights to become the next
// standby. Stale or already-applied generations (epoch ≤ current) are
// skipped. Safe to call while traffic serves; callers serialize with each
// other (the repl tailer is a single goroutine).
func (lp *Loop) ApplyCheckpoint(ck store.Checkpoint) error {
	if lp.closed.Load() {
		return fmt.Errorf("service: apply checkpoint: %w", fosserr.ErrLoopClosed)
	}
	if ck.Epoch <= lp.active.Load().epoch {
		return nil
	}
	lp.mu.Lock()
	standby := lp.standby
	lp.mu.Unlock()
	if standby == nil {
		return fmt.Errorf("service: apply checkpoint: no standby replica")
	}
	// The leader's catalog restores before its weights: a checkpoint taken
	// after a DDL carries (epoch, hash, log), and the follower replays the
	// missing suffix through its shared catalog world — both replicas'
	// backends rebuild to the leader's schema generation — before the model
	// image (whose buffer/tier state was produced against that generation)
	// is touched. A follower somehow ahead of the leader's catalog refuses
	// (fosserr.ErrCatalogMismatch) rather than serve cross-epoch state.
	if err := standby.SyncCatalog(ck.CatalogEpoch, ck.CatalogHash, ck.CatalogDDL); err != nil {
		return fmt.Errorf("service: apply checkpoint: %w", err)
	}
	// Load validates the sealed model (backend identity, version, checksum)
	// — a checkpoint from a differently-configured leader is refused here,
	// before anything is published.
	if err := standby.Load(ck.Model); err != nil {
		return fmt.Errorf("service: apply checkpoint: %w", err)
	}
	lp.mu.Lock()
	old := lp.active.Load()
	if ck.Epoch <= old.epoch {
		// A competing apply (or local swap) got there first.
		lp.mu.Unlock()
		return nil
	}
	lp.active.Store(&slot{r: standby, epoch: ck.Epoch})
	lp.standby = old.r
	lp.catalogEpoch.Store(standby.CatalogEpoch())
	if lp.tiers != nil {
		// Same invalidation contract as a local hot-swap: the new model's
		// pins arrive below from the checkpoint's exported tier state.
		lp.tiers.Invalidate()
	}
	lp.mu.Unlock()
	lp.swaps.Add(1)
	lp.det.Reset()

	// Mirror onto the demoted replica so the next apply loads into a
	// replica already carrying the current generation. The catalog resync is
	// a shared-world no-op for core replicas but keeps the contract honest
	// for any Replica wiring distinct worlds.
	if err := old.r.ResyncCatalog(); err != nil {
		return fmt.Errorf("service: apply checkpoint: mirror catalog: %w", err)
	}
	if err := old.r.Load(ck.Model); err != nil {
		return fmt.Errorf("service: apply checkpoint: mirror: %w", err)
	}
	// The leader's feedback-proven plan memory rides the checkpoint:
	// followers serve tier-0 repeats without ever having recorded the
	// feedback that earned the pins.
	if err := lp.ImportTier(ck.Tier); err != nil {
		return fmt.Errorf("service: apply checkpoint: tier import: %w", err)
	}
	return nil
}

// ApplyDDL applies one schema-evolution batch to the serving pair — the
// loop-level entry point for live DDL. The batch applies through the active
// replica, building one new copy-on-write generation in the replicas' shared
// catalog world; the serving epoch bumps so every epoch-keyed consumer
// (tier-0 plan memory, the runtime plan cache, the replication tailer
// comparing manifest epochs) sees a new generation without a weight swap; the
// batch journals as a KindDDL WAL record and the post-DDL state checkpoints
// immediately, so a warm restart resumes at the evolved schema. Serving never
// blocks: requests in flight complete at the old (immutable) generation, and
// only Record's ordering lock is held while the world rebuilds. Returns the
// new catalog epoch. Followers refuse with fosserr.ErrNotLeader — their
// catalog advances through ApplyCheckpoint.
func (lp *Loop) ApplyDDL(ddls []catalog.DDL) (uint64, error) {
	if lp.closed.Load() {
		return 0, fmt.Errorf("service: apply ddl: %w", fosserr.ErrLoopClosed)
	}
	if lp.cfg.Follower {
		return 0, fmt.Errorf("service: apply ddl: %w", fosserr.ErrNotLeader)
	}
	if len(ddls) == 0 {
		return 0, fmt.Errorf("service: apply ddl: empty batch: %w", fosserr.ErrBadConfig)
	}
	lp.mu.Lock()
	old := lp.active.Load()
	epoch, err := old.r.ApplyDDL(ddls)
	if err != nil {
		lp.mu.Unlock()
		return 0, fmt.Errorf("service: apply ddl: %w", err)
	}
	// The standby deliberately does NOT resync here: it may be mid-retrain,
	// holding its exclusive training lock for a whole schedule, and a DDL
	// must never wait on training. It repoints at the shared world's new
	// generation before it can ever serve — the retrain publish path and
	// ApplyCheckpoint both resync under this same mu.
	lp.active.Store(&slot{r: old.r, epoch: old.epoch + 1})
	lp.catalogEpoch.Store(epoch)
	lp.catalogApplies.Add(1)
	// Expert baselines were measured against the old statistics; keeping
	// them would judge post-DDL plans against a retired cost surface.
	clear(lp.expertLat)
	// Prune retrain candidates the new schema outdated, so the next
	// background retrain never plans a dropped table.
	keep := lp.recent[:0]
	for _, q := range lp.recent {
		if old.r.CheckCatalog(q) == nil {
			keep = append(keep, q)
		} else {
			delete(lp.recentSet, q.Fingerprint())
		}
	}
	lp.recent = keep
	if lp.tiers != nil {
		// Same invalidation contract as a hot-swap: every pin re-earns its
		// place against the evolved schema (and the catalog-scoped identity
		// key makes even a racing stale lookup miss).
		lp.tiers.Invalidate()
	}
	var t0, served uint64
	if lp.adv != nil {
		t0, served = lp.t0Hits.Load(), lp.served.Load()
	}
	if lp.st != nil {
		if _, err := lp.st.WAL().Append(store.WALEntry{
			Kind:  store.KindDDL,
			Epoch: old.epoch + 1,
			DDL:   ddls,
		}); err != nil {
			lp.walErrors.Add(1)
		}
	}
	lp.mu.Unlock()
	// The drift window would mix pre- and post-DDL regression ratios
	// meaninglessly; start clean, exactly like a swap does.
	lp.det.Reset()
	if lp.adv != nil {
		// Schema-change marker: the advisor compares the tier-0 hit rate
		// before the apply with the window after it (FindingSchemaChurn).
		lp.adv.offer(advisorObs{ddl: true, epoch: old.epoch + 1, catEpoch: epoch, t0Hits: t0, served: served})
	}
	// The post-DDL generation becomes the recovery point immediately — a
	// crash after a DDL restarts on the evolved schema without re-planning
	// the migration.
	if lp.st != nil {
		if _, err := lp.Checkpoint(); err != nil {
			lp.ckErrors.Add(1)
		}
	}
	return epoch, nil
}

// CatalogEpoch returns the live catalog generation the loop is serving at.
func (lp *Loop) CatalogEpoch() uint64 { return lp.catalogEpoch.Load() }

// Follower reports whether this loop is a read-only serving replica.
func (lp *Loop) Follower() bool { return lp.cfg.Follower }

// ReplManifest returns the durable manifest this loop's store currently
// publishes — the leader half of checkpoint replication. ok=false when no
// checkpoint has landed yet; fosserr.ErrNoStore without a store.
func (lp *Loop) ReplManifest() (store.Manifest, bool, error) {
	if lp.st == nil {
		return store.Manifest{}, false, fmt.Errorf("service: repl manifest: %w", fosserr.ErrNoStore)
	}
	m, ok := lp.st.Latest()
	return m, ok, nil
}

// ReplCheckpointBlob returns the raw sealed blob of a named checkpoint from
// this loop's store (name validated against the checkpoint scheme).
func (lp *Loop) ReplCheckpointBlob(name string) ([]byte, error) {
	if lp.st == nil {
		return nil, fmt.Errorf("service: repl checkpoint: %w", fosserr.ErrNoStore)
	}
	return lp.st.ReadCheckpoint(name)
}

// Checkpoint writes a durable image of the active replica — sealed model
// snapshot, execution buffer, epoch — and repoints the manifest at it.
// Returns the checkpoint filename. Safe for concurrent use; concurrent
// writers serialize.
func (lp *Loop) Checkpoint() (string, error) {
	if lp.st == nil {
		return "", fmt.Errorf("service: checkpoint: %w", fosserr.ErrNoStore)
	}
	lp.ckMu.Lock()
	defer lp.ckMu.Unlock()

	for {
		// Capture the WAL horizon before imaging: entries journaled while
		// the image is being taken appear in the replay tail as well as
		// (possibly) the image; buffer ingestion deduplicates, so recovery
		// stays exact. The tier state exports under the same single mu
		// acquisition — Record's Observe rides mu too, so the exported pins
		// are exactly the state the records at or below seq produced.
		lp.mu.Lock()
		seq := lp.st.WAL().LastSeq()
		var tierState *store.TierState
		if lp.tiers != nil {
			tierState = lp.tiers.Export()
		}
		s := lp.active.Load()
		// The catalog triple captures under the same mu acquisition as the
		// WAL horizon: ApplyDDL journals and bumps under this lock, so the
		// image's schema generation matches the records at or below seq.
		catEpoch, catHash, catLog := s.r.CatalogEpoch(), s.r.CatalogHash(), s.r.CatalogLog()
		lp.mu.Unlock()
		// Save runs under the replica's shared lock: concurrent with its
		// serving reads, mutually exclusive with the weight mirroring a
		// hot-swap performs on a just-demoted replica — the image can never
		// capture half-copied weights.
		blob, err := s.r.Save()
		if err != nil {
			return "", fmt.Errorf("service: checkpoint save: %w", err)
		}
		buffer := s.r.Buffer().Export()
		if lp.active.Load() != s {
			// A swap landed while this replica was being imaged: the image
			// is of a demoted generation. Re-image the new active (swaps are
			// cooldown-gated, so this terminates after one extra pass).
			continue
		}
		name, err := lp.st.WriteCheckpoint(s.r.BackendName(), store.Checkpoint{
			Model:        blob,
			Buffer:       buffer,
			Epoch:        s.epoch,
			WALSeq:       seq,
			Tier:         tierState,
			CatalogEpoch: catEpoch,
			CatalogHash:  catHash,
			CatalogDDL:   catLog,
		})
		if err != nil {
			return "", err
		}
		lp.checkpoints.Add(1)
		return name, nil
	}
}

// triggerCheckpoint starts (at most) one background checkpoint; concurrent
// triggers collapse.
func (lp *Loop) triggerCheckpoint() {
	if !lp.checkpointing.CompareAndSwap(false, true) {
		return
	}
	ok := lp.spawn(func() {
		defer lp.checkpointing.Store(false)
		if _, err := lp.Checkpoint(); err != nil {
			lp.ckErrors.Add(1)
		}
	})
	if !ok {
		lp.checkpointing.Store(false)
	}
}

// Replay re-ingests a recovered WAL tail before the loop takes traffic:
// feedback records rebuild their executed candidate (deterministic hint
// completion + encoding) and flow through buffer ingestion and the drift
// detector exactly as the live Record did — the regression ratio is
// recomputed against the same deterministic expert baseline — and swap
// records reset the detector window at the same points the live loop did.
// No WAL appends and no retrain triggers happen during replay. Returns the
// number of feedback records restored.
func (lp *Loop) Replay(entries []store.WALEntry) (int, error) {
	s := lp.active.Load()
	n := 0
	for _, e := range entries {
		switch e.Kind {
		case store.KindSwap:
			lp.det.Reset()
			if lp.tiers != nil {
				lp.tiers.Invalidate()
			}
			continue
		case store.KindDDL:
			// Re-apply the schema evolution at the same stream position the
			// live loop did: feedback below this record rebuilt against the
			// old generation, feedback above rebuilds against the new one.
			// (A DDL already folded into the recovered checkpoint never
			// appears in the tail — the checkpoint's WAL horizon is past it.)
			if _, err := s.r.ApplyDDL(e.DDL); err != nil {
				return n, fmt.Errorf("service: replay ddl seq %d: %w", e.Seq, err)
			}
			lp.mu.Lock()
			standby := lp.standby
			clear(lp.expertLat)
			lp.mu.Unlock()
			if standby != nil {
				if err := standby.ResyncCatalog(); err != nil {
					return n, fmt.Errorf("service: replay ddl seq %d: standby: %w", e.Seq, err)
				}
			}
			lp.catalogEpoch.Store(s.r.CatalogEpoch())
			lp.det.Reset()
			if lp.tiers != nil {
				lp.tiers.Invalidate()
			}
			continue
		case store.KindFeedback:
		case store.KindPromote, store.KindDemote:
			// Informational: the tier state re-derives from the feedback
			// records themselves, exactly as the live Observe produced it.
			continue
		default:
			continue // unknown kind from a future writer: skip, don't fail
		}
		if err := s.r.CheckCatalog(e.Query); err != nil {
			// Feedback journaled before a later DDL dropped its tables cannot
			// rebuild against the evolved schema. The live loop would have
			// refused it post-DDL; replay skips it (counted), not fails.
			lp.staleInvalidations.Add(1)
			continue
		}
		pe, err := s.r.RebuildEval(e.Query, e.ICP, e.Step)
		if err != nil {
			return n, fmt.Errorf("service: replay seq %d (%s): %w", e.Seq, e.Query.ID, err)
		}
		pe.Latency = e.LatencyMs
		pe.TimedOut = e.TimedOut
		s.r.Buffer().Add(pe)
		lp.mu.Lock()
		standby := lp.standby
		lp.noteRecent(e.Query, e.Fingerprint)
		lp.sinceRetrain++
		lp.mu.Unlock()
		if standby != nil {
			fb := *pe
			standby.Buffer().Add(&fb)
		}
		expert := lp.expertLatency(s.r, e.Query, e.Fingerprint)
		ratio := 1.0
		if expert > 0 {
			ratio = e.LatencyMs / expert
		}
		lp.det.Observe(e.Fingerprint, ratio)
		if lp.tiers != nil {
			// Same classification the live Observe ran (plan identity, not
			// journaled labels), so replayed state equals pre-crash state.
			id := runtime.Identity{Backend: lp.backendName, Epoch: s.epoch, Catalog: lp.catalogEpoch.Load()}
			lp.tiers.Observe(id, e.Fingerprint, e.Query, pe, e.LatencyMs, expert)
		}
		n++
	}
	lp.replayed.Store(uint64(n))
	lp.recoveredEpoch = s.epoch
	return n, nil
}

// ImportTier restores the tier router's durable state from a recovered
// checkpoint, re-deriving every pinned plan through the active replica's
// deterministic RebuildEval and re-keying it under the current serving
// identity. Runs before Replay ingests the WAL tail. No-op when tiering is
// disabled or the checkpoint predates tiered serving (nil state).
func (lp *Loop) ImportTier(ts *store.TierState) error {
	if lp.tiers == nil || ts == nil {
		return nil
	}
	s := lp.active.Load()
	id := runtime.Identity{Backend: lp.backendName, Epoch: s.epoch, Catalog: lp.catalogEpoch.Load()}
	return lp.tiers.Import(ts, id, func(q *query.Query, icp plan.ICP, step int) (*planner.PlanEval, error) {
		return s.r.RebuildEval(q, icp, step)
	})
}

// String renders the counters compactly (fossd's -online output). The
// durability block appears only when a store is in play.
func (s Stats) String() string {
	out := fmt.Sprintf(
		"epoch=%d served=%d cacheHits=%d recorded=%d drifts=%d retrains=%d swaps=%d errs=%d expertErrs=%d windowMean=%.3f windowNovel=%.2f",
		s.Epoch, s.Served, s.CacheHits, s.Recorded, s.Drifts, s.Retrains, s.Swaps, s.RetrainErrors, s.ExpertErrors, s.WindowMean, s.WindowNovel)
	if s.WALEntries > 0 || s.Checkpoints > 0 || s.RecoveredEpoch > 0 {
		out += fmt.Sprintf(" wal=%d replayed=%d checkpoints=%d recoveredEpoch=%d", s.WALEntries, s.Replayed, s.Checkpoints, s.RecoveredEpoch)
	}
	if s.CatalogEpoch > 0 || s.StaleInvalidations > 0 {
		out += fmt.Sprintf(" catalogEpoch=%d ddlApplies=%d staleInvalidations=%d",
			s.CatalogEpoch, s.CatalogApplies, s.StaleInvalidations)
	}
	if s.Tier0Hits > 0 || s.Tier1Hits > 0 || s.Tier2Serves > 0 || s.PinnedPlans > 0 {
		out += fmt.Sprintf(" tier0=%d tier1=%d tier2=%d pins=%d promotions=%d demotions=%d",
			s.Tier0Hits, s.Tier1Hits, s.Tier2Serves, s.PinnedPlans, s.Promotions, s.Demotions)
	}
	return out
}
