// Package service runs FOSS as an online, self-improving doctor: the full
// Optimize → Execute → Record loop of the paper's framing, kept learning
// after deployment. Executed-plan feedback flows back into the learner's
// execution buffer; a rolling regression-vs-expert drift detector decides
// when the serving model has fallen behind the workload; and retraining
// happens in the background on a standby replica that is then published by
// an atomic pointer swap — serving never blocks on training and never sees a
// half-updated model.
//
// # Hot-swap protocol
//
// The loop owns two replicas in blue/green rotation:
//
//  1. Serve reads the active replica through an atomic pointer. Requests
//     take the replica's shared (RLock) serving path; no Loop-level lock is
//     on the request path.
//  2. Drift triggers retraining on the standby replica, which has no
//     traffic: its exclusive train lock is uncontended, so the retrain
//     blocks nobody. Recorded feedback keeps flowing into both replicas'
//     buffers meanwhile.
//  3. When retraining finishes, the standby is published by a single atomic
//     store with a bumped epoch. Its plan cache was invalidated when its
//     training lock released, so every post-swap plan is chosen (and cached)
//     by the new model: a cache hit at epoch e always matches a miss at
//     epoch e.
//  4. In-flight requests on the demoted replica drain under its RLock and
//     finish on the old-but-consistent model. The demoted replica then has
//     the new weights copied in (its exclusive lock waits for exactly those
//     stragglers) and becomes the next standby.
//
// The package talks to replicas through the small Replica interface; core
// wires two *core.System instances in and re-exports the loop as
// System.Serve / System.Record.
package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/foss-db/foss/internal/learner"
	"github.com/foss-db/foss/internal/plan"
	"github.com/foss-db/foss/internal/planner"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/runtime"
)

// Replica is the surface the loop needs from one doctor instance. Two
// instances over the same workload form the blue/green pair; *core.System
// implements it.
type Replica interface {
	// OptimizeEvalContext serves one query through the replica's cached,
	// shared-locked path, returning the full evaluated candidate and a
	// cache-hit flag. Cancellation is honored between rollouts.
	OptimizeEvalContext(ctx context.Context, q *query.Query) (*planner.PlanEval, bool, time.Duration, error)
	// OptimizeEvalBatch serves a batch in one pass, sharing the batched AAM
	// scoring across cache misses; out[i]/hits[i] correspond to qs[i].
	OptimizeEvalBatch(ctx context.Context, qs []*query.Query) ([]*planner.PlanEval, []bool, time.Duration, error)
	// TrainOnContext runs incremental training over the query set under the
	// replica's exclusive lock; its plan cache is invalidated afterwards.
	TrainOnContext(ctx context.Context, queries []*query.Query, iterations int, progress func(learner.IterStats)) error
	// BackendName identifies the optimizer backend under the replica.
	BackendName() string
	// Save / Load snapshot and restore the learned weights (Load quiesces
	// the replica's serving path while weights are copied).
	Save() ([]byte, error)
	Load(data []byte) error
	// ExpertPlan returns the traditional optimizer's plan, the drift
	// detector's latency baseline.
	ExpertPlan(q *query.Query) (*plan.CP, time.Duration, error)
	// Execute runs a plan and returns its latency in milliseconds.
	Execute(cp *plan.CP) float64
	// Buffer exposes the replica's execution buffer for feedback ingestion.
	Buffer() *learner.Buffer
	// CacheStats snapshots the replica's plan-cache counters.
	CacheStats() runtime.CacheStats
}

// Config tunes the online loop.
type Config struct {
	Detector DetectorConfig

	// Cooldown is the minimum number of recorded executions between retrain
	// triggers, preventing swap thrash while a fresh model warms its window.
	Cooldown int
	// RetrainIterations is the learner schedule per background retrain
	// (incremental: much shorter than the offline run).
	RetrainIterations int
	// RetrainQueries caps how many distinct recent queries a retrain uses
	// (the most recently served ones win).
	RetrainQueries int
	// Background runs retraining on its own goroutine. Synchronous mode
	// (false) retrains inside the Record call that tripped the detector —
	// deterministic, used by tests and reproducibility runs.
	Background bool
}

// DefaultConfig returns a serving-oriented configuration.
func DefaultConfig() Config {
	return Config{
		Detector: DetectorConfig{
			Window:      32,
			Threshold:   1.15,
			MinSamples:  16,
			NoveltyFrac: 0.6,
		},
		Cooldown:          32,
		RetrainIterations: 2,
		RetrainQueries:    48,
		Background:        true,
	}
}

// Result is one served request.
type Result struct {
	// Eval is the chosen candidate (plan, encoding, step) — hand it back to
	// Record together with the observed latency.
	Eval *planner.PlanEval
	// Epoch identifies the model generation that chose the plan; it bumps on
	// every hot-swap.
	Epoch uint64
	// CacheHit reports whether the plan came from the active replica's cache.
	CacheHit bool
	// OptTime is the optimization time (model inference + hint completion).
	OptTime time.Duration
}

// Stats snapshots the loop's counters.
type Stats struct {
	Epoch         uint64 // current model generation (starts at 1)
	Served        uint64
	CacheHits     uint64
	Recorded      uint64
	Drifts        uint64 // detector firings that triggered a retrain
	Retrains      uint64 // retrains started
	Swaps         uint64 // hot-swaps completed
	RetrainErrors uint64
	ExpertErrors  uint64 // expert-baseline failures (those records feed a neutral ratio)
	Retraining    bool
	WindowMean    float64 // rolling mean regression ratio
	WindowNovel   float64 // rolling novel-fingerprint fraction
}

// Loop is the online doctor service over a blue/green replica pair.
type Loop struct {
	cfg Config
	det *Detector

	active atomic.Pointer[slot]

	// mu guards the standby replica, the recent-query ring, the expert
	// latency cache, and the cooldown counter. Never taken by Serve.
	mu           sync.Mutex
	standby      Replica
	recent       []*query.Query
	recentSet    map[uint64]bool
	expertLat    map[uint64]float64
	sinceRetrain int

	retraining atomic.Bool
	wg         sync.WaitGroup

	served, cacheHits, recorded atomic.Uint64
	drifts, retrains, swaps     atomic.Uint64
	retrainErrors, expertErrors atomic.Uint64
}

// slot pairs a replica with the epoch it was published at.
type slot struct {
	r     Replica
	epoch uint64
}

// New assembles a loop over an active/standby replica pair. known seeds the
// detector's fingerprint set (typically the training split). The active
// replica should carry the trained models; the standby must mirror them
// (core.EnableOnline handles the initial sync).
func New(cfg Config, active, standby Replica, known []*query.Query) *Loop {
	if cfg.Cooldown < 1 {
		cfg.Cooldown = 1
	}
	if cfg.RetrainIterations < 1 {
		cfg.RetrainIterations = 1
	}
	if cfg.RetrainQueries < 1 {
		cfg.RetrainQueries = 48
	}
	fps := make([]uint64, 0, len(known))
	for _, q := range known {
		fps = append(fps, q.Fingerprint())
	}
	lp := &Loop{
		cfg:       cfg,
		det:       NewDetector(cfg.Detector, fps),
		standby:   standby,
		recentSet: map[uint64]bool{},
		expertLat: map[uint64]float64{},
	}
	lp.active.Store(&slot{r: active, epoch: 1})
	return lp
}

// Serve optimizes one query on the active replica. It never blocks on
// retraining or swaps: the only synchronization on this path is the active
// replica's shared serving lock and atomic pointer loads. A request that a
// hot-swap overtakes mid-flight (the demoted replica may already carry the
// freshly mirrored weights by the time the request acquires its read lock)
// is re-served on the new active, so Result.Epoch always identifies the
// model generation that actually chose the plan.
func (lp *Loop) Serve(ctx context.Context, q *query.Query) (Result, error) {
	for {
		s := lp.active.Load()
		pe, hit, d, err := s.r.OptimizeEvalContext(ctx, q)
		if err != nil {
			return Result{}, err
		}
		if lp.active.Load() != s {
			// a swap landed while this request was in flight; swaps are rare
			// (cooldown-gated), so the retry loop terminates in practice
			// after one extra pass
			continue
		}
		lp.served.Add(1)
		if hit {
			lp.cacheHits.Add(1)
		}
		return Result{Eval: pe, Epoch: s.epoch, CacheHit: hit, OptTime: d}, nil
	}
}

// ServeBatch optimizes a batch of queries on the active replica in one pass:
// cache hits resolve immediately and all misses share one batched
// state-network scoring pass, so out[i] is bit-identical to Serve(ctx,
// qs[i]) while costing a fraction of the model forwards. The whole batch is
// served by a single model generation — a swap that lands mid-batch re-serves
// the batch on the new active — and cancellation returns promptly with no
// partial results.
func (lp *Loop) ServeBatch(ctx context.Context, qs []*query.Query) ([]Result, error) {
	for {
		s := lp.active.Load()
		pes, hits, d, err := s.r.OptimizeEvalBatch(ctx, qs)
		if err != nil {
			return nil, err
		}
		if lp.active.Load() != s {
			continue
		}
		out := make([]Result, len(qs))
		for i := range qs {
			lp.served.Add(1)
			if hits[i] {
				lp.cacheHits.Add(1)
			}
			out[i] = Result{Eval: pes[i], Epoch: s.epoch, CacheHit: hits[i], OptTime: d}
		}
		return out, nil
	}
}

// Record ingests one executed plan: the query, the candidate Serve returned,
// and the latency observed when it ran. The execution lands in both
// replicas' buffers (so the next retrain learns from it), feeds the drift
// detector, and — when the window signals drift past the cooldown — triggers
// a retrain.
func (lp *Loop) Record(q *query.Query, pe *planner.PlanEval, latencyMs float64) {
	if q == nil || pe == nil || latencyMs <= 0 {
		return
	}
	fp := q.Fingerprint()

	// Resolve the replica pair under mu: the swap updates the active pointer
	// and the standby field inside the same critical section, so this
	// snapshot can never see the demoted replica on both sides (which would
	// leave the newly promoted model without the feedback).
	lp.mu.Lock()
	s := lp.active.Load()
	bufs := []*learner.Buffer{s.r.Buffer()}
	if lp.standby != nil {
		bufs = append(bufs, lp.standby.Buffer())
	}
	lp.noteRecent(q, fp)
	lp.sinceRetrain++
	ready := lp.sinceRetrain >= lp.cfg.Cooldown
	lp.mu.Unlock()

	// The cached PlanEval is shared by concurrent readers: feedback gets its
	// own copies, one per buffer, with the observed latency filled in.
	for _, buf := range bufs {
		fb := *pe
		fb.Latency = latencyMs
		fb.TimedOut = false
		buf.Add(&fb)
	}

	expert := lp.expertLatency(s.r, q, fp)

	ratio := 1.0
	if expert > 0 {
		ratio = latencyMs / expert
	}
	sig := lp.det.Observe(fp, ratio)
	lp.recorded.Add(1)

	if sig.Drift && ready {
		lp.triggerRetrain()
	}
}

// Step runs one full doctor-loop turn: Serve, Execute on the active replica,
// Record. It returns the serve result and the observed latency.
func (lp *Loop) Step(ctx context.Context, q *query.Query) (Result, float64, error) {
	res, err := lp.Serve(ctx, q)
	if err != nil {
		return Result{}, 0, err
	}
	lat := lp.active.Load().r.Execute(res.Eval.CP)
	lp.Record(q, res.Eval, lat)
	return res, lat, nil
}

// Wait blocks until every in-flight background retrain has finished
// (including its hot-swap and weight mirroring).
func (lp *Loop) Wait() { lp.wg.Wait() }

// Active returns the replica currently serving (for evaluation harnesses).
func (lp *Loop) Active() Replica { return lp.active.Load().r }

// Epoch returns the current model generation.
func (lp *Loop) Epoch() uint64 { return lp.active.Load().epoch }

// Stats snapshots the counters.
func (lp *Loop) Stats() Stats {
	win := lp.det.WindowState()
	return Stats{
		Epoch:         lp.active.Load().epoch,
		Served:        lp.served.Load(),
		CacheHits:     lp.cacheHits.Load(),
		Recorded:      lp.recorded.Load(),
		Drifts:        lp.drifts.Load(),
		Retrains:      lp.retrains.Load(),
		Swaps:         lp.swaps.Load(),
		RetrainErrors: lp.retrainErrors.Load(),
		ExpertErrors:  lp.expertErrors.Load(),
		Retraining:    lp.retraining.Load(),
		WindowMean:    win.Mean,
		WindowNovel:   win.NovelFrac,
	}
}

// expertLatency returns (computing and caching on first use) the traditional
// optimizer's latency for the query — the drift detector's baseline. Failures
// are counted but not cached, so a transient error does not permanently pin
// the query's regression ratio at neutral.
func (lp *Loop) expertLatency(r Replica, q *query.Query, fp uint64) float64 {
	lp.mu.Lock()
	if lat, ok := lp.expertLat[fp]; ok {
		lp.mu.Unlock()
		return lat
	}
	lp.mu.Unlock()
	// Plan + execute outside the lock: both are read-only on shared state.
	cp, _, err := r.ExpertPlan(q)
	if err != nil {
		lp.expertErrors.Add(1)
		return 0
	}
	lat := r.Execute(cp)
	lp.mu.Lock()
	lp.expertLat[fp] = lat
	lp.mu.Unlock()
	return lat
}

// noteRecent tracks the distinct recently served queries, newest last,
// bounded by RetrainQueries. Caller holds mu.
func (lp *Loop) noteRecent(q *query.Query, fp uint64) {
	if lp.recentSet[fp] {
		return
	}
	lp.recentSet[fp] = true
	lp.recent = append(lp.recent, q)
	if len(lp.recent) > lp.cfg.RetrainQueries {
		drop := lp.recent[0]
		lp.recent = append(lp.recent[:0], lp.recent[1:]...)
		delete(lp.recentSet, drop.Fingerprint())
	}
}

// triggerRetrain starts (at most) one retrain; concurrent triggers collapse.
func (lp *Loop) triggerRetrain() {
	if !lp.retraining.CompareAndSwap(false, true) {
		return
	}
	lp.drifts.Add(1)
	lp.retrains.Add(1)
	if lp.cfg.Background {
		lp.wg.Add(1)
		go func() {
			defer lp.wg.Done()
			lp.retrain()
		}()
	} else {
		lp.retrain()
	}
}

// retrain runs the incremental schedule on the standby, hot-swaps it in, and
// mirrors the new weights onto the demoted replica.
func (lp *Loop) retrain() {
	defer lp.retraining.Store(false)

	lp.mu.Lock()
	standby := lp.standby
	queries := append([]*query.Query(nil), lp.recent...)
	lp.mu.Unlock()
	if standby == nil || len(queries) == 0 {
		return
	}

	if err := standby.TrainOnContext(context.Background(), queries, lp.cfg.RetrainIterations, nil); err != nil {
		lp.retrainErrors.Add(1)
		return
	}

	// Publish: one atomic store; Serve never waits. The standby's cache was
	// invalidated when TrainOn's exclusive section ended, so the new epoch
	// starts cold — no plan chosen by the old weights can be served again.
	old := lp.active.Load()
	lp.mu.Lock()
	lp.active.Store(&slot{r: standby, epoch: old.epoch + 1})
	lp.standby = old.r
	lp.sinceRetrain = 0
	lp.mu.Unlock()
	lp.swaps.Add(1)
	lp.det.Reset()

	// Mirror the fresh weights onto the demoted replica so the next retrain
	// starts from the generation being served. Load's exclusive lock waits
	// only for that replica's draining in-flight requests.
	blob, err := standby.Save()
	if err != nil {
		lp.retrainErrors.Add(1)
		return
	}
	if err := old.r.Load(blob); err != nil {
		lp.retrainErrors.Add(1)
	}
}

// String renders the counters compactly (fossd's -online output).
func (s Stats) String() string {
	return fmt.Sprintf(
		"epoch=%d served=%d cacheHits=%d recorded=%d drifts=%d retrains=%d swaps=%d errs=%d expertErrs=%d windowMean=%.3f windowNovel=%.2f",
		s.Epoch, s.Served, s.CacheHits, s.Recorded, s.Drifts, s.Retrains, s.Swaps, s.RetrainErrors, s.ExpertErrors, s.WindowMean, s.WindowNovel)
}
