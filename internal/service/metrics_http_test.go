package service

// GET /metrics golden-format tests: the scrape must be valid Prometheus text
// exposition — every family declared exactly once (# HELP then # TYPE before
// its first sample), histogram buckets cumulative and monotone with
// +Inf == _count, per-tenant labels on every series of a fleet scrape — and
// its counters must agree with the loop's stats.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/foss-db/foss/internal/fosserr"
	"github.com/foss-db/foss/internal/query"
	"github.com/foss-db/foss/internal/tier"
)

// promPage is a parsed text-exposition page.
type promPage struct {
	help, typ map[string]string // family → help/type
	samples   []promSample      // in page order
	order     map[string]int    // family → index of first sample line
	declared  map[string]int    // family → line index of its # TYPE
}

type promSample struct {
	name   string // full sample name (foo, foo_bucket, foo_sum, ...)
	labels string // raw label block, "" when absent
	value  float64
	line   int
}

// parseProm parses the exposition text strictly enough to catch format bugs:
// duplicate family declarations, samples without a declared family,
// unparsable values.
func parseProm(t *testing.T, body string) *promPage {
	t.Helper()
	p := &promPage{
		help: map[string]string{}, typ: map[string]string{},
		order: map[string]int{}, declared: map[string]int{},
	}
	for i, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, _ := strings.Cut(rest, " ")
			if _, dup := p.help[name]; dup {
				t.Fatalf("line %d: duplicate # HELP for %s", i, name)
			}
			p.help[name] = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			if _, dup := p.typ[name]; dup {
				t.Fatalf("line %d: duplicate # TYPE for %s", i, name)
			}
			p.typ[name] = typ
			p.declared[name] = i
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form %q", i, line)
		}
		nameAndLabels, valStr, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("line %d: no value in %q", i, line)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", i, valStr, err)
		}
		name, labels := nameAndLabels, ""
		if j := strings.IndexByte(nameAndLabels, '{'); j >= 0 {
			name = nameAndLabels[:j]
			labels = nameAndLabels[j:]
			if !strings.HasSuffix(labels, "}") {
				t.Fatalf("line %d: unterminated label block %q", i, line)
			}
		}
		fam := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && p.typ[base] == "histogram" {
				fam = base
			}
		}
		if _, ok := p.typ[fam]; !ok {
			t.Fatalf("line %d: sample %s has no declared family", i, name)
		}
		if p.declared[fam] > i {
			t.Fatalf("line %d: sample %s precedes its # TYPE declaration", i, name)
		}
		if _, seen := p.order[fam]; !seen {
			p.order[fam] = i
		}
		p.samples = append(p.samples, promSample{name: name, labels: labels, value: val, line: i})
	}
	return p
}

func scrapeMetrics(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestMetricsGoldenFormat drives traffic through a tiered loop, scrapes
// /metrics, and validates the page structurally plus against the stats.
func TestMetricsGoldenFormat(t *testing.T) {
	cfg := syncConfig()
	cfg.Detector.Threshold = 100
	cfg.Tier = tier.Config{Memory: true, PromoteAfter: 1}
	ts, _, _ := newWireFixture(t, cfg)

	const serves = 6
	for i := 1; i <= serves; i++ {
		_, row := postJSON(t, ts.URL+"/v1/optimize", `{"query_id": "q`+strconv.Itoa(i%3)+`"}`)
		sid := row["serve_id"].(string)
		if code, _ := postJSON(t, ts.URL+"/v1/feedback", `{"serve_id": "`+sid+`", "latency_ms": 5}`); code != http.StatusOK {
			t.Fatalf("feedback %d failed", i)
		}
	}

	body, ctype := scrapeMetrics(t, ts.URL+"/metrics")
	if ctype != promContentType {
		t.Fatalf("content type %q, want %q", ctype, promContentType)
	}
	p := parseProm(t, body)

	// Every family has both comments and at least one sample.
	for fam := range p.typ {
		if p.help[fam] == "" {
			t.Fatalf("family %s has no # HELP", fam)
		}
		if _, ok := p.order[fam]; !ok {
			t.Fatalf("family %s declared but has no samples", fam)
		}
	}
	for fam := range p.help {
		if p.typ[fam] == "" {
			t.Fatalf("family %s has # HELP but no # TYPE", fam)
		}
	}

	// Single-tenant scrape: no tenant labels anywhere.
	for _, s := range p.samples {
		if strings.Contains(s.labels, "tenant=") {
			t.Fatalf("line %d: tenant label on a single-tenant scrape: %s%s", s.line, s.name, s.labels)
		}
	}

	// The histogram: per-tier series with cumulative monotone buckets and
	// +Inf == _count; the summed counts equal the served total (quiescent).
	find := func(name, labels string) (float64, bool) {
		for _, s := range p.samples {
			if s.name == name && s.labels == labels {
				return s.value, true
			}
		}
		return 0, false
	}
	served, ok := find("foss_served_total", "")
	if !ok || served != serves {
		t.Fatalf("foss_served_total = %v (present %v), want %d", served, ok, serves)
	}
	var histTotal float64
	for tierN := 0; tierN < 3; tierN++ {
		tl := fmt.Sprintf(`{tier="%d"}`, tierN)
		var buckets []promSample
		for _, s := range p.samples {
			if s.name == "foss_serve_latency_seconds_bucket" && strings.Contains(s.labels, fmt.Sprintf(`tier="%d"`, tierN)) {
				buckets = append(buckets, s)
			}
		}
		if len(buckets) == 0 {
			t.Fatalf("no buckets for tier %d", tierN)
		}
		sort.SliceStable(buckets, func(i, j int) bool { return buckets[i].line < buckets[j].line })
		for i := 1; i < len(buckets); i++ {
			if buckets[i].value < buckets[i-1].value {
				t.Fatalf("tier %d buckets not cumulative: %v then %v", tierN, buckets[i-1], buckets[i])
			}
		}
		last := buckets[len(buckets)-1]
		if !strings.Contains(last.labels, `le="+Inf"`) {
			t.Fatalf("tier %d: last bucket %s is not +Inf", tierN, last.labels)
		}
		count, ok := find("foss_serve_latency_seconds_count", tl)
		if !ok || count != last.value {
			t.Fatalf("tier %d: _count %v != +Inf bucket %v", tierN, count, last.value)
		}
		histTotal += count
	}
	if histTotal != served {
		t.Fatalf("Σ histogram counts %v != served %v after quiescence", histTotal, served)
	}
	if rec, _ := find("foss_recorded_total", ""); rec != serves {
		t.Fatalf("foss_recorded_total = %v, want %d", rec, serves)
	}
	// PromoteAfter=1 with winning feedback: the tier counters moved.
	if promos, _ := find("foss_tier_promotions_total", ""); promos == 0 {
		t.Fatal("no promotions despite winning feedback on repeat fingerprints")
	}
	if t0, ok := find("foss_tier_serves_total", `{tier="0"}`); !ok || t0 == 0 {
		t.Fatalf("tier-0 serve counter = %v (present %v), want > 0", t0, ok)
	}

	// Wrong method refused.
	resp, err := http.Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics status %d", resp.StatusCode)
	}
}

// fakeRegistry is a TenantRegistry over in-process HTTPServers, for fleet
// scrape tests without booting real shards.
type fakeRegistry struct {
	names   []string
	servers map[string]*HTTPServer
}

func (f *fakeRegistry) TenantServer(name string) (*HTTPServer, error) {
	s, ok := f.servers[name]
	if !ok {
		return nil, fosserr.ErrUnknownTenant
	}
	return s, nil
}
func (f *fakeRegistry) TenantNames() []string { return f.names }
func (f *fakeRegistry) CreateTenant(context.Context, WireTenantSpec) (*HTTPServer, error) {
	return nil, fosserr.ErrBadConfig
}

// TestMetricsAggregateTenantLabels: the fleet scrape emits every family once
// with one tenant-labeled series per tenant, and the per-tenant endpoint
// carries the same label.
func TestMetricsAggregateTenantLabels(t *testing.T) {
	cfg := syncConfig()
	cfg.Detector.Threshold = 100
	reg := &fakeRegistry{servers: map[string]*HTTPServer{}}
	for _, name := range []string{"acme", "globex"} {
		blue, green := newFake(name+"-blue"), newFake(name+"-green")
		lp := New(cfg, blue, green, nil)
		h := NewHTTPServer(lp, HTTPOptions{Resolve: func(id string) *query.Query {
			v, _ := strconv.ParseInt(strings.TrimPrefix(id, "q"), 10, 64)
			return fq(v)
		}})
		reg.names = append(reg.names, name)
		reg.servers[name] = h
	}
	ts := httptest.NewServer(NewMultiHTTPServer(reg))
	t.Cleanup(ts.Close)

	// Asymmetric traffic so the per-tenant series are distinguishable.
	postJSON(t, ts.URL+"/v1/t/acme/optimize", `{"query_id": "q1"}`)
	postJSON(t, ts.URL+"/v1/t/acme/optimize", `{"query_id": "q2"}`)
	postJSON(t, ts.URL+"/v1/t/globex/optimize", `{"query_id": "q1"}`)

	body, ctype := scrapeMetrics(t, ts.URL+"/metrics")
	if ctype != promContentType {
		t.Fatalf("content type %q", ctype)
	}
	p := parseProm(t, body)
	// Every sample on the aggregate page is tenant-labeled, and every family
	// covers both tenants.
	perFamily := map[string]map[string]bool{}
	for _, s := range p.samples {
		if !strings.Contains(s.labels, `tenant="acme"`) && !strings.Contains(s.labels, `tenant="globex"`) {
			t.Fatalf("line %d: unlabeled series on aggregate scrape: %s%s", s.line, s.name, s.labels)
		}
		for _, tn := range []string{"acme", "globex"} {
			if strings.Contains(s.labels, `tenant="`+tn+`"`) {
				if perFamily[s.name] == nil {
					perFamily[s.name] = map[string]bool{}
				}
				perFamily[s.name][tn] = true
			}
		}
	}
	for name, tenants := range perFamily {
		if len(tenants) != 2 {
			t.Fatalf("family sample %s covers %v, want both tenants", name, tenants)
		}
	}
	var acmeServed, globexServed float64
	for _, s := range p.samples {
		if s.name != "foss_served_total" {
			continue
		}
		switch s.labels {
		case `{tenant="acme"}`:
			acmeServed = s.value
		case `{tenant="globex"}`:
			globexServed = s.value
		}
	}
	if acmeServed != 2 || globexServed != 1 {
		t.Fatalf("per-tenant served = acme:%v globex:%v, want 2/1", acmeServed, globexServed)
	}

	// The tenant-scoped endpoint reports only that tenant, same label.
	body, _ = scrapeMetrics(t, ts.URL+"/v1/t/acme/metrics")
	tp := parseProm(t, body)
	for _, s := range tp.samples {
		if !strings.Contains(s.labels, `tenant="acme"`) {
			t.Fatalf("tenant-scoped scrape leaked unlabeled/foreign series: %s%s", s.name, s.labels)
		}
	}
}
